package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"repro/internal/graph"
)

// Wire format: every record is a length-prefixed, checksummed frame
//
//	[4 bytes little-endian payload length]
//	[4 bytes little-endian CRC-32C of the payload]
//	[payload: one JSON mutation document]
//
// The CRC covers only the payload; the length prefix is validated by
// bounds (a frame can never exceed maxRecordSize), so any bit flip in
// either field is caught before a byte of the payload is trusted. A
// record that does not fully fit in the remaining bytes is a torn tail —
// the crash left a partial write — and is distinguished from checksum
// corruption so recovery can report what it truncated.

const (
	frameHeaderSize = 8
	// maxRecordSize bounds one mutation document; a length prefix above it
	// is treated as corruption, not as an instruction to allocate.
	maxRecordSize = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks an incomplete final frame (crash mid-append).
var errTorn = errors.New("wal: torn record")

// errCorrupt marks a frame whose length or checksum is invalid.
var errCorrupt = errors.New("wal: corrupt record")

// recordDoc is the JSON payload of one logged mutation.
type recordDoc struct {
	Op     string       `json:"op"`
	UID    int64        `json:"uid"`
	Class  string       `json:"class,omitempty"`
	Src    int64        `json:"src,omitempty"`
	Dst    int64        `json:"dst,omitempty"`
	Fields graph.Fields `json:"fields,omitempty"`
	At     string       `json:"at"`
}

const recordTimeLayout = time.RFC3339Nano

// encodeRecord renders one mutation as a full wire frame.
func encodeRecord(m *graph.Mutation) ([]byte, error) {
	payload, err := json.Marshal(recordDoc{
		Op:     m.Op.String(),
		UID:    int64(m.UID),
		Class:  m.Class,
		Src:    int64(m.Src),
		Dst:    int64(m.Dst),
		Fields: m.Fields,
		At:     m.At.Format(recordTimeLayout),
	})
	if err != nil {
		return nil, fmt.Errorf("wal: encoding mutation %s uid %d: %w", m.Op, m.UID, err)
	}
	if len(payload) > maxRecordSize {
		return nil, fmt.Errorf("wal: mutation %s uid %d encodes to %d bytes (max %d)",
			m.Op, m.UID, len(payload), maxRecordSize)
	}
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderSize:], payload)
	return frame, nil
}

// uint32frame reads the little-endian length prefix of a frame.
func uint32frame(b []byte) uint32 {
	return binary.LittleEndian.Uint32(b[0:4])
}

// verifyFrameChecksum checks a complete frame's CRC without decoding the
// payload.
func verifyFrameChecksum(frame []byte) error {
	payload := frame[frameHeaderSize:]
	want := binary.LittleEndian.Uint32(frame[4:8])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", errCorrupt, want, got)
	}
	return nil
}

// DecodeRecord reads one frame from the front of b, returning the decoded
// mutation and the number of bytes consumed — the exported form the
// replication follower uses to ingest a shipped batch. IsTorn
// distinguishes "the batch ends mid-frame" (resume from the last whole
// record) from real corruption.
func DecodeRecord(b []byte) (*graph.Mutation, int, error) {
	return decodeRecord(b)
}

// FrameChecksum reads the stored CRC-32C out of a frame's header — the
// value the chained prefix hash is built over. The frame must be at
// least a whole header (callers pass frames DecodeRecord or frameSize
// already validated).
func FrameChecksum(frame []byte) uint32 {
	return binary.LittleEndian.Uint32(frame[4:8])
}

// IsTorn reports whether err marks an incomplete frame — the benign end
// of a cut-off batch or a crash tail, as opposed to corruption.
func IsTorn(err error) bool { return errors.Is(err, errTorn) }

// IsCorrupt reports whether err marks an invalid frame (bad length,
// checksum, or payload document).
func IsCorrupt(err error) bool { return errors.Is(err, errCorrupt) }

// decodeRecord reads one frame from the front of b, returning the decoded
// mutation and the number of bytes consumed. It returns errTorn when b
// ends before the frame does and errCorrupt when the length bound, the
// checksum, or the payload document is invalid.
func decodeRecord(b []byte) (*graph.Mutation, int, error) {
	if len(b) < frameHeaderSize {
		return nil, 0, errTorn
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n == 0 || n > maxRecordSize {
		return nil, 0, fmt.Errorf("%w: implausible length prefix %d", errCorrupt, n)
	}
	if len(b) < frameHeaderSize+int(n) {
		return nil, 0, errTorn
	}
	payload := b[frameHeaderSize : frameHeaderSize+int(n)]
	want := binary.LittleEndian.Uint32(b[4:8])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, 0, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", errCorrupt, want, got)
	}
	var doc recordDoc
	if err := json.Unmarshal(payload, &doc); err != nil {
		return nil, 0, fmt.Errorf("%w: undecodable payload: %v", errCorrupt, err)
	}
	op, err := graph.ParseMutationOp(doc.Op)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	at, err := time.Parse(recordTimeLayout, doc.At)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: bad timestamp %q: %v", errCorrupt, doc.At, err)
	}
	return &graph.Mutation{
		Op:     op,
		UID:    graph.UID(doc.UID),
		Class:  doc.Class,
		Src:    graph.UID(doc.Src),
		Dst:    graph.UID(doc.Dst),
		Fields: doc.Fields,
		At:     at,
	}, frameHeaderSize + int(n), nil
}
