// Package wal gives the temporal graph store durability: an append-only,
// CRC-checksummed, length-prefixed log of every store mutation, periodic
// checkpoints in the existing history format, and crash recovery that
// replays the log on top of the latest checkpoint.
//
// The durability contract is write-ahead: a Manager installed as the
// store's mutation hook appends (and, by default, fsyncs) each record
// while the store's write lock is held, before the mutation becomes
// visible in memory — so the log order is exactly the store's
// serialization order and an acknowledged write is always on disk.
// Because every record carries its transaction timestamp, replay through
// graph.ApplyMutation reproduces the identical temporal version history,
// not merely the same live state.
//
// Checkpoints rotate the log instead of blocking it: the active segment
// is sealed, a new one opened, and the store's full history is snapshotted
// while writes continue into the new segment. Replay is idempotent (the
// store skips records it already reflects), which makes the
// checkpoint/segment overlap window harmless and keeps every crash point
// of the checkpoint protocol itself recoverable. Recovery tolerates a
// torn or corrupt tail — the signature of a crash mid-append — by
// truncating the log at the first bad record; corruption anywhere else is
// an error, never silently skipped.
package wal

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

const (
	segmentPrefix  = "wal-"
	segmentSuffix  = ".log"
	indexSuffix    = ".idx"
	checkpointName = "checkpoint"
	checkpointTemp = "checkpoint.tmp"
)

// File is the write handle the Manager appends through. *os.File satisfies
// it; fault-injection tests substitute wrappers that fail or tear writes
// (see internal/chaos).
type File interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
}

// Options configures a Manager.
type Options struct {
	// NoSync disables the fsync after every append. The log is then only
	// as durable as the OS page cache, but appends are dramatically
	// cheaper; Checkpoint still syncs everything it writes. Tests use it
	// to keep randomized workloads fast.
	NoSync bool

	// OpenFile overrides how the Manager opens files it writes (segments
	// and checkpoint temporaries), mirroring os.OpenFile. nil uses the
	// real filesystem. Recovery reads and renames always use the real
	// filesystem: fault injection models a crashing writer, not a lying
	// reader.
	OpenFile func(name string, flag int, perm os.FileMode) (File, error)
}

func (o Options) open(name string, flag int) (File, error) {
	if o.OpenFile != nil {
		return o.OpenFile(name, flag, 0o644)
	}
	return os.OpenFile(name, flag, 0o644)
}

// RecoveryStats reports what Open found and did while recovering.
type RecoveryStats struct {
	// CheckpointLoaded is true when a checkpoint file was restored.
	CheckpointLoaded bool
	// Segments is the number of log segments scanned.
	Segments int
	// RecordsApplied counts replayed mutations the store applied.
	RecordsApplied int
	// RecordsSkipped counts records the store already reflected (the
	// checkpoint/segment overlap window).
	RecordsSkipped int
	// TailTruncated is true when a torn or corrupt tail was cut off.
	TailTruncated bool
	// DroppedBytes is the number of tail bytes discarded by truncation.
	DroppedBytes int64
	// StaleTempRemoved is true when a leftover checkpoint temporary from
	// a crashed checkpoint was deleted.
	StaleTempRemoved bool
}

func (s RecoveryStats) String() string {
	msg := fmt.Sprintf("replayed %d records (%d already in checkpoint) from %d segments",
		s.RecordsApplied, s.RecordsSkipped, s.Segments)
	if s.CheckpointLoaded {
		msg = "loaded checkpoint, " + msg
	}
	if s.TailTruncated {
		msg += fmt.Sprintf(", truncated %d-byte torn tail", s.DroppedBytes)
	}
	return msg
}

// walObs caches the registry metrics the hot append path records.
type walObs struct {
	appends      *obs.Counter
	appendBytes  *obs.Counter
	appendErrors *obs.Counter
	fsyncs       *obs.Counter
	fsyncMS      *obs.Histogram
	checkpoints  *obs.Counter
	checkpointMS *obs.Histogram
}

// segMeta is the in-memory index of one on-disk segment: its sequence
// number and the global stream index of its first record. The persisted
// form is the segment's ".idx" sidecar file, written when the segment is
// created, so stream positions survive primary restarts — a follower that
// resumes "from record N" after the primary recovered gets exactly the
// records it would have gotten before the crash.
type segMeta struct {
	seq   uint64
	start uint64
	// hash is the chained prefix hash at start — the chain state after
	// folding in every record before this segment. Persisted in the
	// sidecar beside start, so lineage comparisons survive checkpoints
	// deleting the earlier segments the chain ran over.
	hash uint64
}

// Manager is an open write-ahead log bound to one directory. Its Append
// method is installed as the store's mutation hook; Checkpoint and Close
// are safe to call concurrently with appends, and ReadRecords/Snapshot
// serve the replication stream concurrently with everything else.
type Manager struct {
	dir  string
	opts Options

	// cpMu serializes checkpoints against each other.
	cpMu sync.Mutex

	mu     sync.Mutex
	f      File
	seq    uint64
	size   int64 // bytes in the active segment
	broken error // set when the log can no longer accept appends
	o      *walObs

	// segs lists every on-disk segment with its global start index,
	// ascending; the last entry is the active segment. next is the global
	// index the next appended record will take; notify is closed (and
	// replaced) on every durable append, waking long-poll readers.
	segs   []segMeta
	next   uint64
	notify chan struct{}

	// logID is the log's identity, minted when the directory is first
	// opened and persisted in it; replication feeds echo it so a follower
	// can detect being repointed at an unrelated log. It changes only via
	// AdoptStream, when a promoted follower takes over its primary's log.
	logID string
	// epoch is the log's durable primary epoch (see epoch.go); hash is
	// the chained prefix hash at next, updated on every append.
	epoch uint64
	hash  uint64

	stats RecoveryStats
}

// Open recovers the log directory into st (which must be empty) and
// returns a Manager appending to it: load the checkpoint if one exists,
// replay every segment in order, truncate a torn tail, and open the
// newest segment for appending. The caller wires durability up with
// st.SetMutationHook(mgr.Append).
func Open(dir string, st *graph.Store, opts Options) (*Manager, RecoveryStats, error) {
	var stats RecoveryStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, stats, fmt.Errorf("wal: creating directory: %w", err)
	}
	logID, err := loadOrMintLogID(dir)
	if err != nil {
		return nil, stats, err
	}
	epoch, err := loadOrMintEpoch(dir)
	if err != nil {
		return nil, stats, err
	}

	// A checkpoint temporary is a checkpoint that never committed: the
	// rename is the commit point, so the temp is garbage.
	tmp := filepath.Join(dir, checkpointTemp)
	if _, err := os.Stat(tmp); err == nil {
		if err := os.Remove(tmp); err != nil {
			return nil, stats, fmt.Errorf("wal: removing stale checkpoint temp: %w", err)
		}
		stats.StaleTempRemoved = true
	}

	cp := filepath.Join(dir, checkpointName)
	if f, err := os.Open(cp); err == nil {
		err = st.LoadHistory(f)
		f.Close()
		if err != nil {
			return nil, stats, fmt.Errorf("wal: loading checkpoint: %w", err)
		}
		stats.CheckpointLoaded = true
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, stats, fmt.Errorf("wal: opening checkpoint: %w", err)
	}

	seqs, err := listSegments(dir)
	if err != nil {
		return nil, stats, err
	}
	stats.Segments = len(seqs)
	crcs := make([][]uint32, len(seqs))
	for i, seq := range seqs {
		c, err := replaySegment(dir, seq, i == len(seqs)-1, st, &stats)
		if err != nil {
			return nil, stats, err
		}
		crcs[i] = c
	}

	// Reconstruct each segment's global start index and prefix-hash chain
	// state: trust the ".idx" sidecar when present (it survives
	// checkpoints deleting earlier segments — for the oldest on-disk
	// segment it is the only source), and derive by chaining record
	// counts/CRCs when not (a legacy directory, or a sidecar lost to a
	// crash mid-rotation; safe because the one sidecar that is ever
	// load-bearing, the rotated segment's, is made durable inside
	// Checkpoint before its predecessors are pruned, so a sidecar-less
	// oldest segment always starts the stream at zero).
	segs := make([]segMeta, len(seqs))
	var start uint64
	hash := PrefixHashSeed
	for i, seq := range seqs {
		if s, h, hashOK, ok := readSegIdx(dir, seq); ok {
			if i > 0 && s != start {
				return nil, stats, fmt.Errorf("wal: segment %d index sidecar says start %d, chained replay says %d",
					seq, s, start)
			}
			start = s
			if hashOK {
				if i > 0 && h != hash {
					return nil, stats, fmt.Errorf("wal: segment %d index sidecar says prefix hash %016x, chained replay says %016x",
						seq, h, hash)
				}
				hash = h
			}
			// A legacy hash-less sidecar on the oldest segment keeps the
			// seed chain state: cross-node lineage comparison only becomes
			// meaningful once both logs carry hashed sidecars, which every
			// rotation from now on writes.
		}
		segs[i] = segMeta{seq: seq, start: start, hash: hash}
		start += uint64(len(crcs[i]))
		for _, crc := range crcs[i] {
			hash = ChainHash(hash, crc)
		}
	}

	seq := uint64(1)
	if n := len(seqs); n > 0 {
		seq = seqs[n-1]
	} else {
		segs = []segMeta{{seq: seq, start: 0, hash: PrefixHashSeed}}
		hash = PrefixHashSeed
	}
	path := segmentPath(dir, seq)
	f, err := opts.open(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND)
	if err != nil {
		return nil, stats, fmt.Errorf("wal: opening active segment: %w", err)
	}
	size := int64(0)
	if fi, err := os.Stat(path); err == nil {
		size = fi.Size()
	}
	return &Manager{dir: dir, opts: opts, f: f, seq: seq, size: size, stats: stats,
		segs: segs, next: start, hash: hash, epoch: epoch,
		notify: make(chan struct{}), logID: logID}, stats, nil
}

func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", segmentPrefix, seq, segmentSuffix))
}

// listSegments returns the sequence numbers of every segment in dir, in
// ascending order.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing directory: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		var seq uint64
		if _, err := fmt.Sscanf(name, segmentPrefix+"%d"+segmentSuffix, &seq); err == nil && segmentPath(dir, seq) == filepath.Join(dir, name) {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// replaySegment applies one segment's records to the store, returning
// the stored CRC of each record the segment holds (after any tail
// truncation) — the inputs the prefix-hash chain is rebuilt from. A torn
// or corrupt record in the final segment is the crash tail: the file is
// truncated at the first bad record and replay stops there. The same
// damage in an earlier segment cannot be a crash artifact (segments are
// synced before rotation) and is reported as an error.
func replaySegment(dir string, seq uint64, last bool, st *graph.Store, stats *RecoveryStats) ([]uint32, error) {
	path := segmentPath(dir, seq)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: reading segment %d: %w", seq, err)
	}
	off := 0
	var crcs []uint32
	for off < len(data) {
		m, n, err := decodeRecord(data[off:])
		if err != nil {
			if !last || !(errors.Is(err, errTorn) || errors.Is(err, errCorrupt)) {
				return crcs, fmt.Errorf("wal: segment %d offset %d: %w", seq, off, err)
			}
			if terr := os.Truncate(path, int64(off)); terr != nil {
				return crcs, fmt.Errorf("wal: truncating torn tail of segment %d at %d: %w", seq, off, terr)
			}
			stats.TailTruncated = true
			stats.DroppedBytes = int64(len(data) - off)
			return crcs, nil
		}
		applied, err := st.ApplyMutation(m)
		if err != nil {
			return crcs, fmt.Errorf("wal: replaying segment %d offset %d: %w", seq, off, err)
		}
		if applied {
			stats.RecordsApplied++
		} else {
			stats.RecordsSkipped++
		}
		crcs = append(crcs, FrameChecksum(data[off:off+n]))
		off += n
	}
	return crcs, nil
}

// Append logs one mutation, making it durable before the store applies
// it. It is installed as the store's MutationHook, so it runs under the
// store's write lock; an error aborts the mutation. A partial write is
// rolled back by truncating the segment; if that rollback fails the log
// is latched broken and every later append fails fast, because an
// unrepaired torn middle would corrupt all subsequent records.
//
// When ctx carries a request span (obs.SpanFromContext), the append is
// recorded as a "WALAppend" child span, so the durability cost of an
// ingest shows up inside its end-to-end trace.
func (mgr *Manager) Append(ctx context.Context, m *graph.Mutation) error {
	start := time.Now()
	frame, err := encodeRecord(m)
	if err != nil {
		return err
	}
	mgr.mu.Lock()
	if mgr.broken != nil {
		mgr.mu.Unlock()
		return fmt.Errorf("wal: log is broken: %w", mgr.broken)
	}
	o := mgr.o.load()
	n, err := mgr.f.Write(frame)
	if err != nil {
		o.appendErrors.Add(1)
		if n > 0 {
			if terr := mgr.f.Truncate(mgr.size); terr != nil {
				mgr.broken = fmt.Errorf("torn append could not be rolled back: %v (append: %w)", terr, err)
			}
		}
		mgr.mu.Unlock()
		return fmt.Errorf("wal: appending %s uid %d: %w", m.Op, m.UID, err)
	}
	mgr.size += int64(n)
	if !mgr.opts.NoSync {
		syncStart := time.Now()
		if err := mgr.f.Sync(); err != nil {
			// The record is written but not durably: the safe reading is
			// "not acknowledged", so fail the mutation and roll back.
			o.appendErrors.Add(1)
			if terr := mgr.f.Truncate(mgr.size - int64(n)); terr != nil {
				mgr.broken = fmt.Errorf("unsynced append could not be rolled back: %v (sync: %w)", terr, err)
			} else {
				mgr.size -= int64(n)
			}
			mgr.mu.Unlock()
			return fmt.Errorf("wal: syncing %s uid %d: %w", m.Op, m.UID, err)
		}
		o.fsyncs.Add(1)
		o.fsyncMS.Observe(float64(time.Since(syncStart)) / 1e6)
	}
	o.appends.Add(1)
	o.appendBytes.Add(int64(n))
	mgr.next++
	mgr.hash = ChainHash(mgr.hash, FrameChecksum(frame))
	// Wake long-poll stream readers: the closed channel is the broadcast,
	// a fresh one arms the next wait.
	close(mgr.notify)
	mgr.notify = make(chan struct{})
	mgr.mu.Unlock()

	if parent := obs.SpanFromContext(ctx); parent != nil {
		sp := parent.Child("WALAppend", m.Op.String())
		sp.AddDuration(time.Since(start))
		sp.Add("bytes", int64(n))
	}
	return nil
}

// Checkpoint snapshots the store's full history and contracts the log:
// the active segment is sealed and a fresh one opened (appends continue
// immediately), the snapshot is written and atomically renamed over the
// previous checkpoint, and sealed segments are deleted. Every crash point
// is safe: until the rename commits, recovery uses the old checkpoint
// plus all segments; after it, replay of any leftover segment records is
// idempotent.
func (mgr *Manager) Checkpoint(st *graph.Store) error {
	mgr.cpMu.Lock()
	defer mgr.cpMu.Unlock()
	start := time.Now()

	// Seal the active segment and rotate. From here on, concurrent
	// mutations land in the new segment.
	mgr.mu.Lock()
	if mgr.broken != nil {
		mgr.mu.Unlock()
		return fmt.Errorf("wal: log is broken: %w", mgr.broken)
	}
	if err := mgr.f.Sync(); err != nil {
		mgr.mu.Unlock()
		return fmt.Errorf("wal: syncing segment before rotation: %w", err)
	}
	if err := mgr.f.Close(); err != nil {
		mgr.broken = fmt.Errorf("sealed segment close failed: %w", err)
		mgr.mu.Unlock()
		return fmt.Errorf("wal: closing sealed segment: %w", err)
	}
	sealed := mgr.seq
	mgr.seq++
	// The rotated segment's first record is the next global index; persist
	// that (and the prefix-hash chain state at it) in the sidecar before
	// any record lands, so stream offsets and lineage survive recovery
	// even after the sealed segments are deleted.
	if err := writeSegIdx(mgr.opts, mgr.dir, mgr.seq, mgr.next, mgr.hash); err != nil {
		mgr.broken = fmt.Errorf("rotation failed: %w", err)
		mgr.mu.Unlock()
		return err
	}
	f, err := mgr.opts.open(segmentPath(mgr.dir, mgr.seq), os.O_WRONLY|os.O_CREATE|os.O_APPEND)
	if err != nil {
		mgr.broken = fmt.Errorf("rotation failed: %w", err)
		mgr.mu.Unlock()
		return fmt.Errorf("wal: opening rotated segment: %w", err)
	}
	mgr.f = f
	mgr.size = 0
	mgr.segs = append(mgr.segs, segMeta{seq: mgr.seq, start: mgr.next, hash: mgr.hash})
	mgr.mu.Unlock()

	// Snapshot outside the log lock; WriteHistory holds the store's read
	// lock, so the image contains everything up to rotation and possibly
	// a prefix of the new segment — replay idempotence absorbs that.
	if err := mgr.writeCheckpoint(st); err != nil {
		return err
	}

	// The sealed segments are now fully contained in the checkpoint.
	for _, seq := range mustListSegments(mgr.dir) {
		if seq <= sealed {
			if err := os.Remove(segmentPath(mgr.dir, seq)); err != nil {
				return fmt.Errorf("wal: removing sealed segment %d: %w", seq, err)
			}
			os.Remove(segmentIdxPath(mgr.dir, seq))
		}
	}
	mgr.mu.Lock()
	for len(mgr.segs) > 0 && mgr.segs[0].seq <= sealed {
		mgr.segs = mgr.segs[1:]
	}
	mgr.mu.Unlock()
	o := mgr.metrics()
	o.checkpoints.Add(1)
	o.checkpointMS.Observe(float64(time.Since(start)) / 1e6)
	return nil
}

// metrics returns the attached sink under the log lock (no-op when none).
func (mgr *Manager) metrics() *walObs {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	return mgr.o.load()
}

// writeCheckpoint writes, syncs, and atomically installs the snapshot.
func (mgr *Manager) writeCheckpoint(st *graph.Store) error {
	tmp := filepath.Join(mgr.dir, checkpointTemp)
	f, err := mgr.opts.open(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC)
	if err != nil {
		return fmt.Errorf("wal: creating checkpoint temp: %w", err)
	}
	if err := st.WriteHistory(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: writing checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(mgr.dir, checkpointName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: installing checkpoint: %w", err)
	}
	syncDir(mgr.dir)
	return nil
}

// syncDir flushes directory metadata (the rename) to disk, best-effort:
// not every filesystem supports fsync on a directory handle.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// mustListSegments is listSegments for paths already proven readable.
func mustListSegments(dir string) []uint64 {
	seqs, _ := listSegments(dir)
	return seqs
}

// Close syncs and closes the active segment. The Manager must not be
// used afterwards.
func (mgr *Manager) Close() error {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if mgr.f == nil {
		return nil
	}
	f := mgr.f
	mgr.f = nil
	mgr.broken = errors.New("wal: manager closed")
	if !mgr.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: syncing on close: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: closing active segment: %w", err)
	}
	return nil
}

// Dir returns the log directory.
func (mgr *Manager) Dir() string { return mgr.dir }

// Size reports the byte size of the active segment — the durable log
// bytes appended since the last rotation.
func (mgr *Manager) Size() int64 {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	return mgr.size
}

// RecoveryStats returns what Open recovered.
func (mgr *Manager) RecoveryStats() RecoveryStats { return mgr.stats }

// Instrument attaches a metrics registry: appends, appended bytes, fsyncs,
// append errors, checkpoints, and checkpoint duration are recorded under
// "wal.*" names, and the recovery outcome counters are published once at
// attach time. A nil registry detaches.
func (mgr *Manager) Instrument(reg *obs.Registry) {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if reg == nil {
		mgr.o = nil
		return
	}
	mgr.o = &walObs{
		appends:      reg.Counter("wal.appends"),
		appendBytes:  reg.Counter("wal.append_bytes"),
		appendErrors: reg.Counter("wal.append_errors"),
		fsyncs:       reg.Counter("wal.fsyncs"),
		fsyncMS:      reg.Histogram("wal.fsync_ms"),
		checkpoints:  reg.Counter("wal.checkpoints"),
		checkpointMS: reg.Histogram("wal.checkpoint_ms"),
	}
	reg.GaugeFunc("wal.next_index", func() float64 { return float64(mgr.NextIndex()) })
	reg.GaugeFunc("wal.base_index", func() float64 { return float64(mgr.BaseIndex()) })
	reg.Counter("wal.recoveries").Add(1)
	reg.Counter("wal.recovered_records").Add(int64(mgr.stats.RecordsApplied))
	reg.Counter("wal.recovery_skipped_records").Add(int64(mgr.stats.RecordsSkipped))
	if mgr.stats.TailTruncated {
		reg.Counter("wal.tail_truncations").Add(1)
	}
}

// load returns the metrics sink, never nil field-wise: a nil *walObs
// yields nil metrics whose methods are no-ops (see internal/obs).
func (o *walObs) load() *walObs {
	if o == nil {
		return &walObs{}
	}
	return o
}
