package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chaos"
	"repro/internal/graph"
	"repro/internal/temporal"
)

// copyDir copies every regular file of src into a fresh temp dir.
func copyDir(t testing.TB, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// runGolden executes a deterministic workload against a WAL-backed store,
// optionally checkpointing at mutation checkpointAt, and returns the live
// store plus the acknowledgement ledger: every acknowledged mutation with
// the segment and offset its record ends at.
func runGolden(t testing.TB, dir string, seed int64, n, checkpointAt int) (*graph.Store, []ackedMutation) {
	t.Helper()
	st := newTestStore(t)
	mgr, _, err := Open(dir, st, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	var acked []ackedMutation
	seg := func() uint64 {
		seqs, err := listSegments(dir)
		if err != nil || len(seqs) == 0 {
			t.Fatalf("listSegments: %v %v", seqs, err)
		}
		return seqs[len(seqs)-1]
	}
	captureAcked(st, mgr, seg, &acked)
	if checkpointAt > 0 {
		if got := workload(t, st, st.Clock(), seed, checkpointAt); got != checkpointAt {
			t.Fatalf("golden workload acked %d/%d before checkpoint", got, checkpointAt)
		}
		if err := mgr.Checkpoint(st); err != nil {
			t.Fatal(err)
		}
		n -= checkpointAt
		seed++
	}
	if got := workload(t, st, st.Clock(), seed, n); got != n {
		t.Fatalf("golden workload acked %d/%d", got, n)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	return st, acked
}

// referenceStore incrementally replays acked[:k] mutations, reusing the
// store across successively larger prefixes.
type referenceStore struct {
	t     testing.TB
	st    *graph.Store
	next  int
	bytes []byte
}

func newReferenceStore(t testing.TB) *referenceStore {
	r := &referenceStore{t: t, st: newTestStore(t)}
	r.bytes = historyBytes(t, r.st)
	return r
}

// historyAt returns the serialized history of the store holding exactly
// the first k acknowledged mutations. k must not decrease across calls.
func (r *referenceStore) historyAt(acked []ackedMutation, k int) []byte {
	if k < r.next {
		r.t.Fatalf("reference store cannot rewind: at %d, asked for %d", r.next, k)
	}
	for ; r.next < k; r.next++ {
		m := acked[r.next].m
		if _, err := r.st.ApplyMutation(&m); err != nil {
			r.t.Fatalf("reference replay of mutation %d (%s uid %d): %v", r.next, m.Op, m.UID, err)
		}
		r.bytes = nil
	}
	if r.bytes == nil {
		r.bytes = historyBytes(r.t, r.st)
	}
	return r.bytes
}

// TestCrashPointProperty is the headline durability property: for every
// byte offset at which the active log can be cut — every possible crash
// point of a randomized mutation workload — recovery produces a store
// whose full temporal history equals the reference store holding exactly
// the acknowledged prefix of mutations whose records made it to disk. No
// acknowledged write is lost, no torn record surfaces.
func TestCrashPointProperty(t *testing.T) {
	golden := t.TempDir()
	_, acked := runGolden(t, golden, 42, 30, 0)
	data, err := os.ReadFile(segmentPath(golden, 1))
	if err != nil {
		t.Fatal(err)
	}
	total := int64(len(data))
	if want := acked[len(acked)-1].end; total != want {
		t.Fatalf("segment size %d != last acked end %d", total, want)
	}

	stride := int64(1)
	if testing.Short() {
		stride = 13
	}
	offsets := make([]int64, 0, total/stride+2)
	for off := int64(0); off < total; off += stride {
		offsets = append(offsets, off)
	}
	offsets = append(offsets, total)
	ref := newReferenceStore(t)
	ends := make(map[int64]bool, len(acked))
	for _, a := range acked {
		ends[a.end] = true
	}
	k := 0
	for _, off := range offsets {
		// Acknowledged prefix that fully fits in off bytes.
		for k < len(acked) && acked[k].end <= off {
			k++
		}
		dir := t.TempDir()
		if err := os.WriteFile(segmentPath(dir, 1), data[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		st := newTestStore(t)
		mgr, stats, err := Open(dir, st, Options{NoSync: true})
		if err != nil {
			t.Fatalf("offset %d: recovery failed: %v", off, err)
		}
		if stats.RecordsApplied != k {
			t.Fatalf("offset %d: applied %d records, want %d", off, stats.RecordsApplied, k)
		}
		wantTorn := off != 0 && !ends[off]
		if stats.TailTruncated != wantTorn {
			t.Fatalf("offset %d: TailTruncated = %v, want %v (%+v)", off, stats.TailTruncated, wantTorn, stats)
		}
		if got, want := historyBytes(t, st), ref.historyAt(acked, k); !bytes.Equal(got, want) {
			t.Fatalf("offset %d: recovered history (%d records) differs from acknowledged prefix", off, k)
		}
		if vs := st.CheckInvariants(); len(vs) != 0 {
			t.Fatalf("offset %d: recovered store violates invariants: %v", off, vs)
		}
		mgr.Close()
	}
	if k != len(acked) {
		t.Fatalf("sweep never reached the full prefix: %d/%d", k, len(acked))
	}
}

// TestCrashPointPropertyAcrossCheckpoint sweeps crash offsets over the
// active segment of a log that has already been checkpointed, so recovery
// exercises checkpoint load + overlapping-segment replay at every cut.
func TestCrashPointPropertyAcrossCheckpoint(t *testing.T) {
	golden := t.TempDir()
	_, acked := runGolden(t, golden, 99, 120, 60)
	active := acked[len(acked)-1].seg
	if active < 2 {
		t.Fatalf("checkpoint did not rotate: active segment %d", active)
	}
	data, err := os.ReadFile(segmentPath(golden, active))
	if err != nil {
		t.Fatal(err)
	}
	total := int64(len(data))

	// Offsets to test: every record boundary in the active segment, its
	// immediate neighbors, and offset zero (crash right after rotation).
	offsets := map[int64]bool{0: true, 1: true, total: true}
	ends := map[int64]bool{0: true}
	for _, a := range acked {
		if a.seg != active {
			continue
		}
		ends[a.end] = true
		offsets[a.end] = true
		if a.end > 0 {
			offsets[a.end-1] = true
		}
		if a.end < total {
			offsets[a.end+1] = true
		}
	}
	sorted := make([]int64, 0, len(offsets))
	for off := range offsets {
		sorted = append(sorted, off)
	}
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}

	ref := newReferenceStore(t)
	base := 0
	for _, a := range acked {
		if a.seg != active {
			base++
		}
	}
	k := base
	for _, off := range sorted {
		for k < len(acked) && acked[k].seg == active && acked[k].end <= off {
			k++
		}
		dir := copyDir(t, golden)
		if err := os.Truncate(segmentPath(dir, active), off); err != nil {
			t.Fatal(err)
		}
		st := newTestStore(t)
		mgr, stats, err := Open(dir, st, Options{NoSync: true})
		if err != nil {
			t.Fatalf("offset %d: recovery failed: %v", off, err)
		}
		if !stats.CheckpointLoaded {
			t.Fatalf("offset %d: checkpoint not loaded", off)
		}
		if wantTorn := !ends[off]; stats.TailTruncated != wantTorn {
			t.Fatalf("offset %d: TailTruncated = %v, want %v", off, stats.TailTruncated, wantTorn)
		}
		if got, want := historyBytes(t, st), ref.historyAt(acked, k); !bytes.Equal(got, want) {
			t.Fatalf("offset %d: recovered history (%d records) differs from acknowledged prefix", off, k)
		}
		if vs := st.CheckInvariants(); len(vs) != 0 {
			t.Fatalf("offset %d: recovered store violates invariants: %v", off, vs)
		}
		mgr.Close()
	}
	if k != len(acked) {
		t.Fatalf("sweep never reached the full prefix: %d/%d", k, len(acked))
	}
}

// TestChaosCrashRecovery runs the workload against a WAL on a crash-
// injected filesystem: after a fixed byte budget, the write in flight is
// torn and every later write, fsync, and truncate fails — including the
// manager's own rollback repair. Recovery with a healthy filesystem must
// restore exactly the acknowledged prefix.
func TestChaosCrashRecovery(t *testing.T) {
	budgets := []int64{0, 1, 37, 256, 900, 2000, 5000}
	for _, budget := range budgets {
		fs := chaos.NewCrashFS(budget)
		dir := t.TempDir()
		st := newTestStore(t)
		mgr, _, err := Open(dir, st, Options{
			NoSync: true,
			OpenFile: func(name string, flag int, perm os.FileMode) (File, error) {
				return fs.OpenFile(name, flag, perm)
			},
		})
		if err != nil {
			t.Fatalf("budget %d: open: %v", budget, err)
		}
		var acked []ackedMutation
		captureAcked(st, mgr, func() uint64 { return 1 }, &acked)
		n := workload(t, st, st.Clock(), budget, 400)
		if n == 400 && budget < 5000 {
			t.Fatalf("budget %d: workload survived the crash budget", budget)
		}
		if n != len(acked) {
			t.Fatalf("budget %d: %d acked hooks vs %d acked mutations", budget, len(acked), n)
		}
		mgr.Close()

		// The dying process could not repair its torn tail (truncate fails
		// post-crash), so recovery must cope with whatever is on disk.
		st2 := newTestStore(t)
		mgr2, stats, err := Open(dir, st2, Options{NoSync: true})
		if err != nil {
			t.Fatalf("budget %d: recovery: %v", budget, err)
		}
		if fs.Crashed() && stats.RecordsApplied < len(acked) {
			t.Fatalf("budget %d: lost acknowledged writes: applied %d < acked %d",
				budget, stats.RecordsApplied, len(acked))
		}
		ref := newReferenceStore(t)
		if !bytes.Equal(historyBytes(t, st2), ref.historyAt(acked, len(acked))) {
			t.Fatalf("budget %d: recovered history differs from acknowledged prefix", budget)
		}
		if vs := st2.CheckInvariants(); len(vs) != 0 {
			t.Fatalf("budget %d: recovered store violates invariants: %v", budget, vs)
		}
		mgr2.Close()
	}
}

// TestChaosAppendFailureLatches verifies that once an append cannot be
// rolled back (the crash also breaks Truncate), the manager refuses all
// further appends instead of risking interleaved garbage.
func TestChaosAppendFailureLatches(t *testing.T) {
	fs := chaos.NewCrashFS(64)
	dir := t.TempDir()
	st := newTestStore(t)
	mgr, _, err := Open(dir, st, Options{
		NoSync: true,
		OpenFile: func(name string, flag int, perm os.FileMode) (File, error) {
			return fs.OpenFile(name, flag, perm)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st.SetMutationHook(mgr.Append)
	var firstErr error
	for i := 0; i < 50 && firstErr == nil; i++ {
		_, firstErr = st.InsertNode("Host", graph.Fields{"id": i})
	}
	if firstErr == nil {
		t.Fatal("no append failed within budget")
	}
	if !errors.Is(firstErr, chaos.ErrCrashed) {
		t.Fatalf("first failure = %v, want ErrCrashed in chain", firstErr)
	}
	// The store must have rejected the mutation, not half-applied it.
	mustNoViolations(t, st)
	if _, err := st.InsertNode("Host", graph.Fields{"id": 10_000}); err == nil {
		t.Fatal("append after unrepairable failure succeeded")
	}
}

// TestCrashDuringCheckpoint cuts the crash budget so the machine dies
// while writing checkpoint.tmp; the half-written temp must be discarded
// and the sealed segments must still recover the full history.
func TestCrashDuringCheckpoint(t *testing.T) {
	// First measure a healthy run to find the byte cost of the log phase.
	probeDir := t.TempDir()
	probeStore := newTestStore(t)
	probeMgr, _, err := Open(probeDir, probeStore, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	probeStore.SetMutationHook(probeMgr.Append)
	workload(t, probeStore, probeStore.Clock(), 5, 80)
	logBytes := probeMgr.Size()
	probeMgr.Close()

	// Now rerun with a budget that survives the log writes but dies inside
	// the checkpoint snapshot.
	fs := chaos.NewCrashFS(logBytes + 100)
	dir := t.TempDir()
	st := newTestStore(t)
	mgr, _, err := Open(dir, st, Options{
		NoSync: true,
		OpenFile: func(name string, flag int, perm os.FileMode) (File, error) {
			return fs.OpenFile(name, flag, perm)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st.SetMutationHook(mgr.Append)
	if n := workload(t, st, st.Clock(), 5, 80); n != 80 {
		t.Fatalf("workload acked %d/80 before checkpoint", n)
	}
	if err := mgr.Checkpoint(st); err == nil {
		t.Fatal("checkpoint survived the crash budget")
	}
	mgr.Close()

	st2 := newTestStore(t)
	mgr2, stats, err := Open(dir, st2, Options{NoSync: true})
	if err != nil {
		t.Fatalf("recovery after mid-checkpoint crash: %v", err)
	}
	defer mgr2.Close()
	if stats.CheckpointLoaded {
		t.Error("half-written checkpoint was trusted")
	}
	if !bytes.Equal(historyBytes(t, st), historyBytes(t, st2)) {
		t.Error("recovery after mid-checkpoint crash lost history")
	}
	mustNoViolations(t, st2)
}

func BenchmarkWALAppend(b *testing.B) {
	for _, bc := range []struct {
		name   string
		noSync bool
	}{{"sync", false}, {"nosync", true}} {
		b.Run(bc.name, func(b *testing.B) {
			st := graph.NewStore(testSchema(b), temporal.NewManualClock(t0))
			mgr, _, err := Open(b.TempDir(), st, Options{NoSync: bc.noSync})
			if err != nil {
				b.Fatal(err)
			}
			defer mgr.Close()
			st.SetMutationHook(mgr.Append)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.InsertNode("Host", graph.Fields{"id": i}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(mgr.Size())/float64(b.N), "bytes/record")
		})
	}
}

// BenchmarkMutateNoWAL measures the plain mutation path with no hook
// installed — the baseline the WAL-off path must stay within noise of.
func BenchmarkMutateNoWAL(b *testing.B) {
	st := graph.NewStore(testSchema(b), temporal.NewManualClock(t0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.InsertNode("Host", graph.Fields{"id": i}); err != nil {
			b.Fatal(err)
		}
	}
}
