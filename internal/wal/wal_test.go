package wal

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/temporal"
)

var t0 = time.Date(2017, 2, 15, 0, 0, 0, 0, time.UTC)

func testSchema(t testing.TB) *schema.Schema {
	t.Helper()
	s := schema.New()
	must := func(_ *schema.Class, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.DefineNode("VM", "", schema.Field{Name: "status", Type: schema.TypeString}))
	must(s.DefineNode("Host", ""))
	must(s.DefineEdge("HostedOn", ""))
	must(s.DefineEdge("ConnectsTo", ""))
	s.AllowEdge("HostedOn", "VM", "Host")
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	return s
}

func newTestStore(t testing.TB) *graph.Store {
	t.Helper()
	return graph.NewStore(testSchema(t), temporal.NewManualClock(t0))
}

// ackedMutation is one acknowledged write of a golden run together with
// the log offset its record ends at (within the then-active segment).
type ackedMutation struct {
	m   graph.Mutation
	seg uint64
	end int64
}

func cloneMutation(m *graph.Mutation) graph.Mutation {
	c := *m
	if m.Fields != nil {
		c.Fields = m.Fields.Clone()
	}
	return c
}

// captureAcked chains the manager's Append with a recorder of every
// acknowledged mutation and its end offset.
func captureAcked(st *graph.Store, mgr *Manager, seg func() uint64, out *[]ackedMutation) {
	st.SetMutationHook(func(ctx context.Context, m *graph.Mutation) error {
		if err := mgr.Append(ctx, m); err != nil {
			return err
		}
		*out = append(*out, ackedMutation{m: cloneMutation(m), seg: seg(), end: mgr.Size()})
		return nil
	})
}

// workload drives a deterministic randomized mutation mix (inserts,
// updates, deletes with cascades) against the store, stopping at the
// first failed mutation — the moment the simulated process died. It
// returns how many mutations were acknowledged.
func workload(t testing.TB, st *graph.Store, clock *temporal.Clock, seed int64, n int) int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	// Namespace unique ids by seed so successive workload phases against
	// the same store never collide on the schema-unique "id" field.
	nextID := int(seed)*1_000_000 + 1
	acked := 0
	var nodes, edges []graph.UID
	prune := func(uids []graph.UID) []graph.UID {
		out := uids[:0]
		for _, uid := range uids {
			if st.Object(uid).Current() != nil {
				out = append(out, uid)
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		if clock != nil && rng.Intn(3) == 0 {
			clock.Advance(time.Duration(1+rng.Intn(120)) * time.Second)
		}
		var err error
		switch p := rng.Float64(); {
		case p < 0.35 || len(nodes) < 2:
			class, fields := "Host", graph.Fields{"id": nextID}
			if rng.Intn(2) == 0 {
				class, fields = "VM", graph.Fields{"id": nextID, "status": "Green"}
			}
			nextID++
			var uid graph.UID
			if uid, err = st.InsertNode(class, fields); err == nil {
				nodes = append(nodes, uid)
			}
		case p < 0.55:
			src := nodes[rng.Intn(len(nodes))]
			dst := nodes[rng.Intn(len(nodes))]
			var uid graph.UID
			if uid, err = st.InsertEdge("ConnectsTo", src, dst, graph.Fields{"id": nextID}); err == nil {
				edges = append(edges, uid)
			}
			nextID++
		case p < 0.80:
			uid := nodes[rng.Intn(len(nodes))]
			obj := st.Object(uid)
			fields := obj.Current().Fields.Clone()
			if obj.Class.Name == "VM" {
				fields["status"] = []string{"Green", "Yellow", "Red"}[rng.Intn(3)]
			}
			err = st.Update(uid, fields)
		default:
			if len(edges) > 0 && rng.Intn(2) == 0 {
				err = st.Delete(edges[rng.Intn(len(edges))])
			} else {
				err = st.Delete(nodes[rng.Intn(len(nodes))])
			}
			nodes, edges = prune(nodes), prune(edges)
		}
		if err != nil {
			t.Logf("workload: mutation %d failed: %v", i, err)
			return acked
		}
		acked++
	}
	return acked
}

func historyBytes(t testing.TB, st *graph.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.WriteHistory(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// mustNoViolations fails the test when the store breaks any invariant.
func mustNoViolations(t testing.TB, st *graph.Store) {
	t.Helper()
	for _, v := range st.CheckInvariants() {
		t.Errorf("invariant violation: %s", v)
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t)
	mgr, stats, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CheckpointLoaded || stats.RecordsApplied != 0 {
		t.Fatalf("fresh open recovered something: %+v", stats)
	}
	st.SetMutationHook(mgr.Append)
	clock := st.Clock()
	if n := workload(t, st, clock, 7, 200); n != 200 {
		t.Fatalf("workload acked %d/200", n)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := newTestStore(t)
	mgr2, stats, err := Open(dir, st2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	if stats.TailTruncated || stats.RecordsSkipped != 0 {
		t.Errorf("clean log recovered dirty: %+v", stats)
	}
	if stats.RecordsApplied != 200 {
		t.Errorf("RecordsApplied = %d, want 200", stats.RecordsApplied)
	}
	if !bytes.Equal(historyBytes(t, st), historyBytes(t, st2)) {
		t.Error("recovered history differs from original")
	}
	mustNoViolations(t, st2)

	// The recovered store accepts new writes with monotonic timestamps.
	st2.SetMutationHook(mgr2.Append)
	if _, err := st2.InsertNode("Host", graph.Fields{"id": 100000}); err != nil {
		t.Fatalf("post-recovery insert: %v", err)
	}
}

func TestCheckpointContractsLog(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t)
	mgr, _, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.SetMutationHook(mgr.Append)
	workload(t, st, st.Clock(), 11, 150)
	if err := mgr.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	if mgr.Size() != 0 {
		t.Errorf("active segment size after checkpoint = %d", mgr.Size())
	}
	seqs, _ := listSegments(dir)
	if len(seqs) != 1 || seqs[0] != 2 {
		t.Errorf("segments after checkpoint = %v, want [2]", seqs)
	}
	workload(t, st, st.Clock(), 12, 150)
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := newTestStore(t)
	mgr2, stats, err := Open(dir, st2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	if !stats.CheckpointLoaded {
		t.Error("checkpoint not loaded")
	}
	if !bytes.Equal(historyBytes(t, st), historyBytes(t, st2)) {
		t.Error("checkpoint+log recovery differs from original")
	}
	mustNoViolations(t, st2)

	// A second checkpoint from the recovered manager still works.
	if err := mgr2.Checkpoint(st2); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t)
	mgr, _, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var acked []ackedMutation
	captureAcked(st, mgr, func() uint64 { return 1 }, &acked)
	workload(t, st, st.Clock(), 3, 50)
	mgr.Close()

	path := segmentPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-way through the final record: a torn append.
	cut := acked[len(acked)-2].end + 3
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := newTestStore(t)
	mgr2, stats, err := Open(dir, st2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	if !stats.TailTruncated || stats.DroppedBytes != 3 {
		t.Errorf("stats = %+v, want tail truncation of 3 bytes", stats)
	}
	if stats.RecordsApplied != len(acked)-1 {
		t.Errorf("RecordsApplied = %d, want %d", stats.RecordsApplied, len(acked)-1)
	}
	if fi, _ := os.Stat(path); fi.Size() != acked[len(acked)-2].end {
		t.Errorf("torn tail not truncated on disk: size %d", fi.Size())
	}
	mustNoViolations(t, st2)

	// Appends after a truncated recovery extend the repaired log cleanly.
	st2.SetMutationHook(mgr2.Append)
	if _, err := st2.InsertNode("Host", graph.Fields{"id": 999999}); err != nil {
		t.Fatal(err)
	}
	mgr2.Close()
	st3 := newTestStore(t)
	mgr3, stats, err := Open(dir, st3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr3.Close()
	if stats.TailTruncated {
		t.Error("repaired log still reads as torn")
	}
	if !bytes.Equal(historyBytes(t, st2), historyBytes(t, st3)) {
		t.Error("post-repair append lost")
	}
}

func TestRecoverRejectsMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t)
	mgr, _, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.SetMutationHook(mgr.Append)
	workload(t, st, st.Clock(), 5, 50)
	// Seal segment 1 by checkpointing... no: corruption must be mid-log in
	// a sealed segment. Rotate via checkpoint, then corrupt the sealed
	// segment after removing the checkpoint so recovery must read it.
	if err := mgr.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	workload(t, st, st.Clock(), 6, 50)
	mgr.Close()

	// Simulate a non-tail corruption: flip one byte in the middle of the
	// first half of segment 2 while valid records follow it.
	path := segmentPath(dir, 2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte(nil), data...)
	corrupted[20] ^= 0xFF
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	// The final segment tolerates this (truncate-at-first-bad-record) —
	// but a sealed, non-final segment must not. Add a segment after it.
	if err := os.WriteFile(segmentPath(dir, 3), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := newTestStore(t)
	if _, _, err := Open(dir, st2, Options{}); err == nil {
		t.Fatal("mid-log corruption silently accepted")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestOpenIgnoresStaleCheckpointTemp(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t)
	mgr, _, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.SetMutationHook(mgr.Append)
	workload(t, st, st.Clock(), 9, 40)
	mgr.Close()
	// A crash mid-checkpoint leaves checkpoint.tmp; it must be discarded,
	// not trusted.
	if err := os.WriteFile(filepath.Join(dir, checkpointTemp), []byte("half a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2 := newTestStore(t)
	mgr2, stats, err := Open(dir, st2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	if !stats.StaleTempRemoved {
		t.Error("stale checkpoint temp not reported")
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointTemp)); !os.IsNotExist(err) {
		t.Error("stale checkpoint temp still present")
	}
	if !bytes.Equal(historyBytes(t, st), historyBytes(t, st2)) {
		t.Error("recovery with stale temp differs")
	}
}

func TestOpenRequiresEmptyStore(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t)
	mgr, _, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.SetMutationHook(mgr.Append)
	workload(t, st, st.Clock(), 2, 20)
	if err := mgr.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	mgr.Close()

	dirty := newTestStore(t)
	if _, err := dirty.InsertNode("Host", graph.Fields{"id": 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, dirty, Options{}); err == nil {
		t.Fatal("recovery into a non-empty store accepted")
	}
}

func TestConcurrentMutationsAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	st := graph.NewStore(testSchema(t), nil) // wall clock: concurrent writers
	mgr, _, err := Open(dir, st, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	mgr.Instrument(reg)
	st.SetMutationHook(mgr.Append)

	const writers, each = 4, 120
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				uid, err := st.InsertNode("VM", graph.Fields{"id": w*100000 + i, "status": "Green"})
				if err != nil {
					t.Error(err)
					return
				}
				switch i % 3 {
				case 1:
					if err := st.Update(uid, graph.Fields{"id": w*100000 + i, "status": "Red"}); err != nil {
						t.Error(err)
					}
				case 2:
					if err := st.Delete(uid); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 6; i++ {
			if err := mgr.Checkpoint(st); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("wal.appends").Value() != writers*each*5/3 {
		// 120 inserts + 40 updates + 40 deletes per writer.
		t.Errorf("wal.appends = %d, want %d", reg.Counter("wal.appends").Value(), writers*each*5/3)
	}

	st2 := graph.NewStore(testSchema(t), nil)
	mgr2, _, err := Open(dir, st2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	if !bytes.Equal(historyBytes(t, st), historyBytes(t, st2)) {
		t.Error("recovery after concurrent churn differs from live store")
	}
	mustNoViolations(t, st2)
}

func TestRecordCodec(t *testing.T) {
	m := &graph.Mutation{
		Op: graph.OpInsertEdge, UID: 42, Class: "ConnectsTo", Src: 7, Dst: 9,
		Fields: graph.Fields{"id": 42}, At: t0.Add(time.Hour),
	}
	frame, err := encodeRecord(m)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := decodeRecord(frame)
	if err != nil || n != len(frame) {
		t.Fatalf("decode: %v (n=%d)", err, n)
	}
	if got.Op != m.Op || got.UID != m.UID || got.Class != m.Class ||
		got.Src != m.Src || got.Dst != m.Dst || !got.At.Equal(m.At) {
		t.Errorf("round trip mismatch: %+v", got)
	}

	for name, corrupt := range map[string]func([]byte) []byte{
		"torn header":  func(b []byte) []byte { return b[:5] },
		"torn payload": func(b []byte) []byte { return b[:len(b)-2] },
		"flipped crc":  func(b []byte) []byte { c := append([]byte(nil), b...); c[5] ^= 1; return c },
		"flipped byte": func(b []byte) []byte { c := append([]byte(nil), b...); c[12] ^= 1; return c },
		"huge length":  func(b []byte) []byte { c := append([]byte(nil), b...); c[3] = 0xFF; return c },
	} {
		if _, _, err := decodeRecord(corrupt(frame)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
