package wal

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/temporal"
)

// streamFixture is a WAL-backed store with the append hook installed,
// plus a deterministic workload driver.
type streamFixture struct {
	t     *testing.T
	dir   string
	st    *graph.Store
	mgr   *Manager
	clock *temporal.Clock
}

func newStreamFixture(t *testing.T) *streamFixture {
	t.Helper()
	dir := t.TempDir()
	st := newTestStore(t)
	mgr, _, err := Open(dir, st, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	st.SetMutationHook(func(ctx context.Context, m *graph.Mutation) error {
		return mgr.Append(ctx, m)
	})
	return &streamFixture{t: t, dir: dir, st: st, mgr: mgr, clock: st.Clock()}
}

func (f *streamFixture) run(seed int64, n int) {
	f.t.Helper()
	if got := workload(f.t, f.st, f.clock, seed, n); got != n {
		f.t.Fatalf("workload acked %d/%d mutations", got, n)
	}
}

// replayInto decodes a shipped batch and applies every record to st.
func replayInto(t *testing.T, st *graph.Store, batch []byte) int {
	t.Helper()
	applied := 0
	for len(batch) > 0 {
		m, n, err := DecodeRecord(batch)
		if err != nil {
			t.Fatalf("decoding shipped batch: %v", err)
		}
		if _, err := st.ApplyMutation(m); err != nil {
			t.Fatalf("applying shipped record: %v", err)
		}
		batch = batch[n:]
		applied++
	}
	return applied
}

// TestStreamIndexStableAcrossReopen pins the global-index contract: the
// stream position is the count of records ever appended, and both
// NextIndex and BaseIndex survive restarts — including after checkpoints
// have pruned the early segments whose record counts originally defined
// the positions.
func TestStreamIndexStableAcrossReopen(t *testing.T) {
	f := newStreamFixture(t)
	f.run(1, 40)
	if got := f.mgr.NextIndex(); got != 40 {
		t.Fatalf("NextIndex = %d, want 40", got)
	}
	if got := f.mgr.BaseIndex(); got != 0 {
		t.Fatalf("BaseIndex = %d, want 0", got)
	}

	if err := f.mgr.Checkpoint(f.st); err != nil {
		t.Fatal(err)
	}
	if got := f.mgr.BaseIndex(); got != 40 {
		t.Fatalf("BaseIndex after checkpoint = %d, want 40", got)
	}
	f.run(2, 25)
	if got := f.mgr.NextIndex(); got != 65 {
		t.Fatalf("NextIndex = %d, want 65", got)
	}
	f.mgr.Close()

	// Reopen: segment 1 is gone, so only the ".idx" sidecar knows the
	// surviving segment starts at 40.
	st2 := newTestStore(t)
	mgr2, _, err := Open(f.dir, st2, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	if got := mgr2.NextIndex(); got != 65 {
		t.Fatalf("NextIndex after reopen = %d, want 65", got)
	}
	if got := mgr2.BaseIndex(); got != 40 {
		t.Fatalf("BaseIndex after reopen = %d, want 40", got)
	}
}

// TestReadRecordsRoundTrip ships the whole stream in one batch and in
// byte-capped batches; replaying either onto a fresh store must
// reproduce the primary's history byte for byte.
func TestReadRecordsRoundTrip(t *testing.T) {
	f := newStreamFixture(t)
	f.run(3, 120)
	want := historyBytes(t, f.st)

	t.Run("one batch", func(t *testing.T) {
		batch, next, err := f.mgr.ReadRecords(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if next != 120 {
			t.Fatalf("next = %d, want 120", next)
		}
		replica := newTestStore(t)
		if n := replayInto(t, replica, batch); n != 120 {
			t.Fatalf("replayed %d records, want 120", n)
		}
		if !bytes.Equal(historyBytes(t, replica), want) {
			t.Fatal("replica history differs from primary")
		}
	})

	t.Run("capped batches", func(t *testing.T) {
		replica := newTestStore(t)
		var cur uint64
		batches := 0
		for cur < f.mgr.NextIndex() {
			batch, next, err := f.mgr.ReadRecords(cur, 200)
			if err != nil {
				t.Fatal(err)
			}
			if next <= cur {
				t.Fatalf("batch at %d made no progress", cur)
			}
			replayInto(t, replica, batch)
			cur = next
			batches++
		}
		if batches < 2 {
			t.Fatalf("cap of 200 bytes produced only %d batch(es)", batches)
		}
		if !bytes.Equal(historyBytes(t, replica), want) {
			t.Fatal("replica history differs from primary")
		}
	})

	// Caught-up readers get an empty batch, not an error.
	batch, next, err := f.mgr.ReadRecords(f.mgr.NextIndex(), 0)
	if err != nil || len(batch) != 0 || next != f.mgr.NextIndex() {
		t.Fatalf("caught-up read = (%d bytes, next %d, %v)", len(batch), next, err)
	}
	// Positions beyond the end are the reader's bug.
	if _, _, err := f.mgr.ReadRecords(f.mgr.NextIndex()+1, 0); err == nil {
		t.Fatal("read beyond log end succeeded")
	}
}

// TestReconnectAtRotationBoundary drives the exact segment-rotation edge:
// a follower that disconnects with its last applied record being the
// final record of a sealed segment must resume — from a position that is
// simultaneously "end of pruned segment N" and "start of live segment
// N+1" — without a re-bootstrap, and without skipping or repeating a
// record.
func TestReconnectAtRotationBoundary(t *testing.T) {
	f := newStreamFixture(t)
	f.run(4, 30)

	// Follower replicates everything, then the stream is severed.
	replica := newTestStore(t)
	batch, next, err := f.mgr.ReadRecords(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	replayInto(t, replica, batch)
	if next != 30 {
		t.Fatalf("follower applied through %d, want 30", next)
	}

	// While it is away, the primary checkpoints (sealing and pruning the
	// only segment the follower ever read) and keeps writing.
	if err := f.mgr.Checkpoint(f.st); err != nil {
		t.Fatal(err)
	}
	if got := f.mgr.BaseIndex(); got != 30 {
		t.Fatalf("BaseIndex = %d, want the rotation boundary 30", got)
	}
	f.run(5, 17)

	// Reconnect at exactly the boundary: position 30 is the first record
	// of the rotated segment, so this must stream — not ErrTruncatedStream.
	batch, next, err = f.mgr.ReadRecords(30, 0)
	if err != nil {
		t.Fatalf("resume at rotation boundary: %v", err)
	}
	if n := replayInto(t, replica, batch); n != 17 {
		t.Fatalf("resumed batch carried %d records, want 17", n)
	}
	if next != 47 {
		t.Fatalf("resumed through %d, want 47", next)
	}
	if !bytes.Equal(historyBytes(t, replica), historyBytes(t, f.st)) {
		t.Fatal("replica history differs from primary after boundary resume")
	}

	// One record earlier is inside the pruned segment: that reader is
	// told to bootstrap.
	if _, _, err := f.mgr.ReadRecords(29, 0); !errors.Is(err, ErrTruncatedStream) {
		t.Fatalf("read into pruned segment: err = %v, want ErrTruncatedStream", err)
	}
}

// TestBootstrapFromMidStreamCheckpoint is the new-follower path: the
// checkpoint it bootstraps from was taken mid-stream (writes continued
// after it), so the follower must load the snapshot, resume the record
// feed at the returned index, and converge on the primary's history.
func TestBootstrapFromMidStreamCheckpoint(t *testing.T) {
	f := newStreamFixture(t)

	// No checkpoint yet: bootstrap must say so.
	if _, _, _, err := f.mgr.Snapshot(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Snapshot on fresh log: err = %v, want ErrNoCheckpoint", err)
	}

	f.run(6, 50)
	if err := f.mgr.Checkpoint(f.st); err != nil {
		t.Fatal(err)
	}
	f.run(7, 35)

	rc, resume, _, err := f.mgr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	replica := newTestStore(t)
	if err := replica.LoadHistory(rc); err != nil {
		t.Fatal(err)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if resume != 50 {
		t.Fatalf("snapshot resume index = %d, want 50", resume)
	}

	batch, next, err := f.mgr.ReadRecords(resume, 0)
	if err != nil {
		t.Fatal(err)
	}
	replayInto(t, replica, batch)
	if next != 85 {
		t.Fatalf("caught up through %d, want 85", next)
	}
	if !bytes.Equal(historyBytes(t, replica), historyBytes(t, f.st)) {
		t.Fatal("bootstrapped replica history differs from primary")
	}
	mustNoViolations(t, replica)
}

// TestSnapshotOverlapIsIdempotent covers the rotation overlap window: a
// checkpoint taken after more writes landed contains records at or past
// the follower's resume index, so the resumed feed re-delivers mutations
// the snapshot already reflects. ApplyMutation must absorb them.
func TestSnapshotOverlapIsIdempotent(t *testing.T) {
	f := newStreamFixture(t)
	f.run(8, 20)
	if err := f.mgr.Checkpoint(f.st); err != nil {
		t.Fatal(err)
	}
	f.run(9, 20)

	rc, resume, _, err := f.mgr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	replica := newTestStore(t)
	if err := replica.LoadHistory(rc); err != nil {
		t.Fatal(err)
	}
	rc.Close()

	// Second checkpoint AFTER the snapshot was opened: the new snapshot
	// covers through 40, but our replica resumes from 20. The feed below
	// the new base is gone — and that is fine, because replaying from any
	// index ≤ applied state must be a no-op prefix.
	if err := f.mgr.Checkpoint(f.st); err != nil {
		t.Fatal(err)
	}
	f.run(10, 10)

	if _, _, err := f.mgr.ReadRecords(resume, 0); !errors.Is(err, ErrTruncatedStream) {
		t.Fatalf("resume below new base: err = %v, want ErrTruncatedStream", err)
	}
	// The follower re-bootstraps from the fresher checkpoint; records it
	// already holds replay as no-ops is not required here — LoadHistory
	// needs an empty store — so it starts clean, as the protocol demands.
	rc2, resume2, _, err := f.mgr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	replica2 := newTestStore(t)
	if err := replica2.LoadHistory(rc2); err != nil {
		t.Fatal(err)
	}
	rc2.Close()
	batch, next, err := f.mgr.ReadRecords(resume2, 0)
	if err != nil {
		t.Fatal(err)
	}
	replayInto(t, replica2, batch)
	if next != 50 {
		t.Fatalf("caught up through %d, want 50", next)
	}
	if !bytes.Equal(historyBytes(t, replica2), historyBytes(t, f.st)) {
		t.Fatal("re-bootstrapped replica history differs from primary")
	}
}

// TestChangedWakesWaiters pins the long-poll primitive: grab the
// channel, re-check NextIndex, select — no lost wakeups.
func TestChangedWakesWaiters(t *testing.T) {
	f := newStreamFixture(t)
	f.run(11, 3)

	ch := f.mgr.Changed()
	if f.mgr.NextIndex() != 3 {
		t.Fatalf("NextIndex = %d, want 3", f.mgr.NextIndex())
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ch:
		case <-time.After(10 * time.Second):
			t.Error("append did not wake the waiter")
		}
	}()
	f.run(12, 1)
	<-done
	if f.mgr.NextIndex() != 4 {
		t.Fatalf("NextIndex = %d, want 4", f.mgr.NextIndex())
	}
}

// TestLogIDStableAcrossReopen pins log identity: minted once per
// directory, 32 hex chars, stable across restarts, distinct per log.
func TestLogIDStableAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	open := func(d string) *Manager {
		t.Helper()
		mgr, _, err := Open(d, newTestStore(t), Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		return mgr
	}
	mgr := open(dir)
	id := mgr.LogID()
	if len(id) != 32 {
		t.Fatalf("LogID() = %q, want 32 hex chars", id)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	mgr2 := open(dir)
	defer mgr2.Close()
	if mgr2.LogID() != id {
		t.Fatalf("log identity changed across reopen: %q -> %q", id, mgr2.LogID())
	}
	mgr3 := open(t.TempDir())
	defer mgr3.Close()
	if mgr3.LogID() == id {
		t.Fatal("two distinct WAL directories share a log identity")
	}
}
