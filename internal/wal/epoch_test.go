package wal

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

// TestEpochAndHashSurviveReopen pins the durability half of the fencing
// contract: the primary epoch and the chained prefix hash are recovered
// byte-for-byte from disk, so a crash-restarted primary still knows its
// era and its lineage summary.
func TestEpochAndHashSurviveReopen(t *testing.T) {
	f := newStreamFixture(t)
	if got := f.mgr.Epoch(); got != 1 {
		t.Fatalf("fresh log epoch = %d, want 1", got)
	}
	f.run(1, 25)
	if err := f.mgr.SetEpoch(4); err != nil {
		t.Fatal(err)
	}
	next, hash := f.mgr.StreamHash()
	if hash == PrefixHashSeed {
		t.Fatal("25 appends left the prefix hash at the seed")
	}
	if err := f.mgr.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := newTestStore(t)
	mgr2, _, err := Open(f.dir, st2, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	if got := mgr2.Epoch(); got != 4 {
		t.Fatalf("reopened epoch = %d, want 4", got)
	}
	if n2, h2 := mgr2.StreamHash(); n2 != next || h2 != hash {
		t.Fatalf("reopened stream hash = (%d, %016x), want (%d, %016x)", n2, h2, next, hash)
	}
	// More writes keep extending the same chain: the recovered hash is
	// the live chain state, not a frozen copy.
	st2.SetMutationHook(func(ctx context.Context, m *graph.Mutation) error {
		return mgr2.Append(ctx, m)
	})
	if got := workload(t, st2, st2.Clock(), 9, 5); got != 5 {
		t.Fatalf("post-reopen workload acked %d/5", got)
	}
	if _, h3 := mgr2.StreamHash(); h3 == hash {
		t.Fatal("appends after reopen did not advance the prefix hash")
	}
}

// TestSetEpochMovesOnlyForward pins the monotonicity rule epochs order
// eras by.
func TestSetEpochMovesOnlyForward(t *testing.T) {
	f := newStreamFixture(t)
	if err := f.mgr.SetEpoch(3); err != nil {
		t.Fatal(err)
	}
	if err := f.mgr.SetEpoch(3); err != nil {
		t.Fatalf("equal epoch should be a no-op, got %v", err)
	}
	if err := f.mgr.SetEpoch(2); err == nil {
		t.Fatal("lowering the epoch succeeded")
	}
	if got := f.mgr.Epoch(); got != 3 {
		t.Fatalf("epoch after rejected lowering = %d, want 3", got)
	}
}

// TestMangledEpochFileRefusesOpen: a corrupted epoch file must surface
// as an error, not silently re-mint era 1 — resetting the era could let
// a superseded primary masquerade as current.
func TestMangledEpochFileRefusesOpen(t *testing.T) {
	f := newStreamFixture(t)
	f.run(1, 3)
	if err := f.mgr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(f.dir, "epoch"), []byte("banana\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(f.dir, newTestStore(t), Options{NoSync: true})
	if err == nil || !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("open over a mangled epoch file = %v, want epoch error", err)
	}
}

// TestPrefixHashDetectsFork is the lineage check in miniature: two logs
// that applied the same records agree at every shared position, and the
// moment their histories diverge the hashes at equal positions disagree
// — while the hash at the common prefix still matches, which is exactly
// how a follower localizes "same log, different era" vs "forked log".
func TestPrefixHashDetectsFork(t *testing.T) {
	a := newStreamFixture(t)
	b := newStreamFixture(t)
	a.run(1, 12)
	b.run(1, 12)

	an, ah := a.mgr.StreamHash()
	bn, bh := b.mgr.StreamHash()
	if an != bn || ah != bh {
		t.Fatalf("identical workloads disagree: (%d, %016x) vs (%d, %016x)", an, ah, bn, bh)
	}

	// Fork: same number of further records, different contents.
	a.run(2, 5)
	b.run(3, 5)
	an2, ah2 := a.mgr.StreamHash()
	bn2, bh2 := b.mgr.StreamHash()
	if an2 != bn2 {
		t.Fatalf("forked logs at different positions: %d vs %d", an2, bn2)
	}
	if ah2 == bh2 {
		t.Fatal("forked histories produced the same prefix hash")
	}
	// The shared prefix still agrees on both sides of the fork.
	aph, err := a.mgr.PrefixHash(an)
	if err != nil {
		t.Fatal(err)
	}
	bph, err := b.mgr.PrefixHash(bn)
	if err != nil {
		t.Fatal(err)
	}
	if aph != bph || aph != ah {
		t.Fatalf("common-prefix hashes disagree: a=%016x b=%016x, want %016x", aph, bph, ah)
	}
}

// TestAdoptStreamSurvivesReopen: a promoted follower grafts the
// primary's identity, position, and hash onto its empty log under a
// bumped epoch, and all of it must survive a crash-restart — the
// adopted lineage is what post-promotion forks are detected against.
func TestAdoptStreamSurvivesReopen(t *testing.T) {
	p := newStreamFixture(t)
	p.run(1, 18)
	next, hash := p.mgr.StreamHash()

	fdir := t.TempDir()
	fst := newTestStore(t)
	fmgr, _, err := Open(fdir, fst, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := fmgr.AdoptStream(p.mgr.LogID(), next, 2, hash); err != nil {
		t.Fatal(err)
	}
	if got := fmgr.Epoch(); got != 2 {
		t.Fatalf("adopted epoch = %d, want 2", got)
	}
	if n, h := fmgr.StreamHash(); n != next || h != hash {
		t.Fatalf("adopted stream hash = (%d, %016x), want (%d, %016x)", n, h, next, hash)
	}
	// Adoption is exclusive to empty logs and never rewinds an era.
	if err := p.mgr.AdoptStream("other", 0, 9, PrefixHashSeed); err == nil {
		t.Fatal("adopting onto a log with its own records succeeded")
	}
	if err := fmgr.AdoptStream(p.mgr.LogID(), next, 1, hash); err == nil {
		t.Fatal("adopting a lower epoch succeeded")
	}
	if err := fmgr.Close(); err != nil {
		t.Fatal(err)
	}

	mgr2, _, err := Open(fdir, newTestStore(t), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	if got := mgr2.LogID(); got != p.mgr.LogID() {
		t.Fatalf("reopened log id = %q, want the adopted %q", got, p.mgr.LogID())
	}
	if got := mgr2.Epoch(); got != 2 {
		t.Fatalf("reopened adopted epoch = %d, want 2", got)
	}
	if n, h := mgr2.StreamHash(); n != next || h != hash {
		t.Fatalf("reopened adopted stream hash = (%d, %016x), want (%d, %016x)", n, h, next, hash)
	}
	if got, err := mgr2.PrefixHash(next); err != nil || got != hash {
		t.Fatalf("PrefixHash(%d) = (%016x, %v), want (%016x, nil)", next, got, err, hash)
	}
}
