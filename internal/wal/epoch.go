package wal

// This file is the log's era and lineage state: a durable, monotonic
// primary epoch (bumped on every promotion, so two primaries can always
// be ordered) and a chained prefix hash over record checksums (so two
// nodes can cheaply decide "same history through position N" without
// shipping records). Together they are what failover fencing and fork
// detection are built on: the epoch says which era of the log a node
// speaks for, the prefix hash says whether two logs carrying the same
// identity actually share a history.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// epochName is the file persisting the log's primary epoch inside the
// WAL directory, beside log.id.
const epochName = "epoch"

// PrefixHashSeed is the chained prefix hash of the empty stream — the
// hash "at position 0" of a log that began at position 0. The chain is
// FNV-1a-shaped over each record's stored CRC-32C: cheap, stateless, and
// identical on every node that applied the same records in the same
// order.
const PrefixHashSeed uint64 = 0xcbf29ce484222325

// prefixHashPrime is the FNV-64 prime the chain multiplies by.
const prefixHashPrime uint64 = 0x100000001b3

// ChainHash folds one record's stored CRC-32C into a chained prefix
// hash: the hash at position N+1 is ChainHash(hash at N, CRC of record
// N). Followers use it to mirror the primary's chain record by record.
func ChainHash(h uint64, crc uint32) uint64 {
	return (h ^ uint64(crc)) * prefixHashPrime
}

// loadOrMintEpoch reads the directory's persisted primary epoch, durably
// writing the initial epoch 1 when the file does not exist. Unlike a
// missing log identity, a mangled epoch file is NOT silently re-minted:
// resetting an era could let a superseded primary masquerade as current,
// so it is surfaced as an error for the operator.
func loadOrMintEpoch(dir string) (uint64, error) {
	path := filepath.Join(dir, epochName)
	if data, err := os.ReadFile(path); err == nil {
		e, perr := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
		if perr != nil || e == 0 {
			return 0, fmt.Errorf("wal: mangled epoch file %q (%q); refusing to reset the log's era", path, strings.TrimSpace(string(data)))
		}
		return e, nil
	} else if !errors.Is(err, os.ErrNotExist) {
		return 0, fmt.Errorf("wal: reading epoch: %w", err)
	}
	if err := writeEpochFile(dir, 1); err != nil {
		return 0, err
	}
	return 1, nil
}

// writeEpochFile durably persists an epoch value (temp+rename+dir sync,
// so a crash can never leave a torn epoch — only the previous one).
func writeEpochFile(dir string, epoch uint64) error {
	if err := writeFileDurable(dir, epochName, strconv.FormatUint(epoch, 10)+"\n"); err != nil {
		return fmt.Errorf("wal: persisting epoch %d: %w", epoch, err)
	}
	return nil
}

// Epoch returns the log's current primary epoch: 1 for a freshly minted
// log, bumped durably on every promotion. A higher epoch always denotes
// a newer era of the same log.
func (mgr *Manager) Epoch() uint64 {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	return mgr.epoch
}

// SetEpoch durably raises the log's epoch. Equal is a no-op; lowering is
// an error — epochs order eras and only ever move forward.
func (mgr *Manager) SetEpoch(epoch uint64) error {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if epoch < mgr.epoch {
		return fmt.Errorf("wal: epoch moves only forward (at %d, asked to set %d)", mgr.epoch, epoch)
	}
	if epoch == mgr.epoch {
		return nil
	}
	if err := writeEpochFile(mgr.dir, epoch); err != nil {
		return err
	}
	mgr.epoch = epoch
	return nil
}

// StreamHash returns the log's durable end and the chained prefix hash
// at that end — the O(1) "summary of everything ever appended" a feed
// response stamps so a caught-up follower verifies lineage per poll.
func (mgr *Manager) StreamHash() (next, hash uint64) {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	return mgr.next, mgr.hash
}

// PrefixHash returns the chained prefix hash at stream position pos: the
// hash after folding in records [base, pos). Positions contracted into a
// checkpoint return ErrTruncatedStream (their chain start survives only
// as the oldest sidecar); pos == NextIndex() is O(1).
func (mgr *Manager) PrefixHash(pos uint64) (uint64, error) {
	mgr.mu.Lock()
	segs := make([]segMeta, len(mgr.segs))
	copy(segs, mgr.segs)
	next, end := mgr.next, mgr.hash
	mgr.mu.Unlock()

	if pos > next {
		return 0, fmt.Errorf("wal: stream position %d is beyond the log end %d", pos, next)
	}
	if pos == next {
		return end, nil
	}
	if len(segs) == 0 || pos < segs[0].start {
		return 0, fmt.Errorf("%w (want hash at %d, oldest on disk %d)", ErrTruncatedStream, pos, segs[0].start)
	}
	si := 0
	for i, s := range segs {
		if s.start <= pos {
			si = i
		}
	}
	if segs[si].start == pos {
		return segs[si].hash, nil
	}
	data, err := os.ReadFile(segmentPath(mgr.dir, segs[si].seq))
	if err != nil {
		if os.IsNotExist(err) {
			// A concurrent checkpoint pruned the segment under us.
			return 0, fmt.Errorf("%w (segment %d removed)", ErrTruncatedStream, segs[si].seq)
		}
		return 0, fmt.Errorf("wal: reading segment %d: %w", segs[si].seq, err)
	}
	h, off := segs[si].hash, 0
	for k := segs[si].start; k < pos; k++ {
		n, err := frameSize(data[off:])
		if err != nil {
			return 0, fmt.Errorf("wal: segment %d offset %d: %w", segs[si].seq, off, err)
		}
		h = ChainHash(h, FrameChecksum(data[off:off+n]))
		off += n
	}
	return h, nil
}

// AdoptStream grafts a replicated stream's identity onto this (empty)
// log: a follower that replayed records [0, next) of log logID promotes
// by adopting that identity, position, and prefix hash into its own WAL,
// so its post-promotion appends continue the SAME log at the SAME
// positions under a new epoch. That alignment is what makes forks
// detectable — a partitioned old primary appending at those positions
// produces different records, and any follower comparing prefix hashes
// sees the histories disagree instead of silently interleaving them.
//
// The log must be empty of its own records (a follower's local WAL never
// sees replicated appends — they bypass the mutation hook). Persistence
// order is position, then epoch, then identity: the identity write is
// the commit point, so a crash mid-adoption leaves a log that never
// claimed the primary's lineage.
func (mgr *Manager) AdoptStream(logID string, next, epoch, hash uint64) error {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if mgr.broken != nil {
		return fmt.Errorf("wal: log is broken: %w", mgr.broken)
	}
	if mgr.next != 0 || mgr.size != 0 {
		return fmt.Errorf("wal: cannot adopt stream identity onto a log with its own records (next %d, active segment %d bytes)", mgr.next, mgr.size)
	}
	if epoch < mgr.epoch {
		return fmt.Errorf("wal: adopting epoch %d would rewind this log's epoch %d", epoch, mgr.epoch)
	}
	if err := writeSegIdx(mgr.opts, mgr.dir, mgr.seq, next, hash); err != nil {
		return err
	}
	if err := writeEpochFile(mgr.dir, epoch); err != nil {
		return err
	}
	if err := writeLogIDFile(mgr.dir, logID); err != nil {
		return err
	}
	mgr.logID = logID
	mgr.next = next
	mgr.epoch = epoch
	mgr.hash = hash
	mgr.segs = []segMeta{{seq: mgr.seq, start: next, hash: hash}}
	close(mgr.notify)
	mgr.notify = make(chan struct{})
	return nil
}

// writeFileDurable writes name inside dir via temp+rename with fsyncs on
// both the file and the directory, so the content is either the old
// value or the new one — never torn.
func writeFileDurable(dir, name, contents string) error {
	path := filepath.Join(dir, name)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(contents)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}
