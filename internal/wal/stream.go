package wal

// This file is the replication read side of the log: every record has a
// global stream index (0-based, dense, stable across restarts thanks to
// the per-segment ".idx" sidecars), and a Manager can serve any suffix of
// the stream that checkpointing has not yet contracted away. internal/repl
// builds the primary's HTTP feed on ReadRecords/Changed and the follower
// bootstrap path on Snapshot.

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// ErrTruncatedStream reports that the requested stream position has been
// absorbed into a checkpoint: the records are no longer on disk as log
// segments, and the reader must bootstrap from Snapshot instead.
var ErrTruncatedStream = errors.New("wal: requested records contracted into a checkpoint")

// ErrNoCheckpoint reports that Snapshot was asked for a checkpoint that
// does not exist (a log that has never been checkpointed serves its whole
// history through ReadRecords).
var ErrNoCheckpoint = errors.New("wal: no checkpoint exists")

// IsTruncatedStream reports whether err is ErrTruncatedStream.
func IsTruncatedStream(err error) bool { return errors.Is(err, ErrTruncatedStream) }

// IsNoCheckpoint reports whether err is ErrNoCheckpoint.
func IsNoCheckpoint(err error) bool { return errors.Is(err, ErrNoCheckpoint) }

// logIDName is the file persisting the log's immutable identity inside
// the WAL directory.
const logIDName = "log.id"

// LogID returns the log's immutable identity: 32 hex characters minted
// the first time the directory was opened and persisted alongside the
// segments. Two WAL directories never share an ID, so replication
// followers use it to refuse a feed from an unrelated log.
func (mgr *Manager) LogID() string { return mgr.logID }

// loadOrMintLogID reads the directory's persisted log identity, minting
// and durably writing a fresh one when none (or a mangled one) exists.
// The write is temp+rename, so a crash can never leave a torn identity —
// only a missing one, which re-mints. Re-minting after such a crash is
// safe: no follower can have pinned an identity that never became
// durable.
func loadOrMintLogID(dir string) (string, error) {
	path := filepath.Join(dir, logIDName)
	if data, err := os.ReadFile(path); err == nil {
		id := strings.TrimSpace(string(data))
		if len(id) == 32 {
			if _, err := hex.DecodeString(id); err == nil {
				return id, nil
			}
		}
		// Mangled: fall through and mint a replacement. Followers pinned to
		// the old identity park fatal rather than silently diverging.
	} else if !errors.Is(err, os.ErrNotExist) {
		return "", fmt.Errorf("wal: reading log identity: %w", err)
	}
	var raw [16]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return "", fmt.Errorf("wal: minting log identity: %w", err)
	}
	id := hex.EncodeToString(raw[:])
	if err := writeLogIDFile(dir, id); err != nil {
		return "", err
	}
	return id, nil
}

// writeLogIDFile durably persists the log identity (temp+rename+dir
// sync). Besides minting, AdoptStream uses it to rewrite the identity
// when a promoted follower takes over its primary's log.
func writeLogIDFile(dir, id string) error {
	if err := writeFileDurable(dir, logIDName, id+"\n"); err != nil {
		return fmt.Errorf("wal: persisting log identity: %w", err)
	}
	return nil
}

// NextIndex returns the global stream index the next appended record will
// take — equivalently, the number of records ever appended to this log.
func (mgr *Manager) NextIndex() uint64 {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	return mgr.next
}

// BaseIndex returns the global index of the oldest record still on disk
// as a log segment. Positions below it are only reachable via Snapshot.
func (mgr *Manager) BaseIndex() uint64 {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if len(mgr.segs) == 0 {
		return mgr.next
	}
	return mgr.segs[0].start
}

// Changed returns a channel closed on the next durable append. To wait
// for records past index n without losing a wakeup: grab the channel,
// re-check NextIndex() > n, then select on the channel.
func (mgr *Manager) Changed() <-chan struct{} {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	return mgr.notify
}

// ReadRecords copies raw record frames starting at global index from,
// stopping at the durable end of the log or once maxBytes (0 = unbounded)
// is reached — always shipping at least one whole frame when any is
// available. It returns the frames and the index of the record after the
// last one shipped; an empty batch with next == from means the reader is
// caught up. ErrTruncatedStream means from predates the oldest segment.
//
// Reads are safe concurrently with appends, checkpoints, and torn-append
// rollbacks: the batch is bounded by the record count that was durable at
// entry, so a partially written (or about-to-be-rolled-back) tail frame
// is never shipped.
func (mgr *Manager) ReadRecords(from uint64, maxBytes int) ([]byte, uint64, error) {
	mgr.mu.Lock()
	segs := make([]segMeta, len(mgr.segs))
	copy(segs, mgr.segs)
	next := mgr.next
	mgr.mu.Unlock()

	if from > next {
		return nil, from, fmt.Errorf("wal: stream position %d is beyond the log end %d", from, next)
	}
	if from == next {
		return nil, from, nil
	}
	if len(segs) == 0 || from < segs[0].start {
		return nil, from, fmt.Errorf("%w (want %d, oldest on disk %d)", ErrTruncatedStream, from, mgr.BaseIndex())
	}
	si := 0
	for i, s := range segs {
		if s.start <= from {
			si = i
		}
	}

	var out []byte
	cur := from
	for i := si; i < len(segs) && cur < next; i++ {
		segEnd := next
		if i+1 < len(segs) {
			segEnd = segs[i+1].start
		}
		if cur >= segEnd {
			continue
		}
		data, err := os.ReadFile(segmentPath(mgr.dir, segs[i].seq))
		if err != nil {
			// A concurrent checkpoint may delete a sealed segment under us.
			// Anything already copied is still a valid batch; an empty read
			// means the position is gone and the caller must bootstrap.
			if os.IsNotExist(err) {
				if len(out) > 0 {
					return out, cur, nil
				}
				return nil, from, fmt.Errorf("%w (segment %d removed)", ErrTruncatedStream, segs[i].seq)
			}
			return nil, from, fmt.Errorf("wal: reading segment %d: %w", segs[i].seq, err)
		}
		off := 0
		for skip := cur - segs[i].start; skip > 0; skip-- {
			n, err := frameSize(data[off:])
			if err != nil {
				return nil, from, fmt.Errorf("wal: segment %d offset %d: %w", segs[i].seq, off, err)
			}
			off += n
		}
		for cur < segEnd {
			n, err := frameSize(data[off:])
			if err != nil {
				return nil, from, fmt.Errorf("wal: segment %d offset %d: %w", segs[i].seq, off, err)
			}
			out = append(out, data[off:off+n]...)
			off += n
			cur++
			if maxBytes > 0 && len(out) >= maxBytes {
				return out, cur, nil
			}
		}
	}
	return out, cur, nil
}

// Snapshot opens the latest checkpoint for reading and returns the stream
// index a reader should resume from after loading it, plus the chained
// prefix hash at that index (captured atomically with it, so a
// bootstrapping follower can seed its own chain). The checkpoint may
// contain records at or past the returned index (the rotation overlap
// window); replaying them through graph.ApplyMutation is idempotent, so
// resuming at the returned index is always correct. The caller closes the
// reader.
func (mgr *Manager) Snapshot() (io.ReadCloser, uint64, uint64, error) {
	// Read the resume index before opening: the checkpoint on disk at (or
	// replaced after) this moment always covers at least through the
	// current base, so a concurrent checkpoint swap stays safe.
	mgr.mu.Lock()
	base, hash := mgr.next, mgr.hash
	if len(mgr.segs) > 0 {
		base, hash = mgr.segs[0].start, mgr.segs[0].hash
	}
	mgr.mu.Unlock()
	f, err := os.Open(checkpointPath(mgr.dir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, 0, ErrNoCheckpoint
		}
		return nil, 0, 0, fmt.Errorf("wal: opening checkpoint: %w", err)
	}
	return f, base, hash, nil
}

// HasCheckpoint reports whether a committed checkpoint exists on disk.
func (mgr *Manager) HasCheckpoint() bool {
	_, err := os.Stat(checkpointPath(mgr.dir))
	return err == nil
}

func checkpointPath(dir string) string {
	return filepath.Join(dir, checkpointName)
}

// ---- segment index sidecars ----

func segmentIdxPath(dir string, seq uint64) string {
	return strings.TrimSuffix(segmentPath(dir, seq), segmentSuffix) + indexSuffix
}

// writeSegIdx persists a segment's global start index and the chained
// prefix hash at that index, synced, through the Manager's (possibly
// fault-injected) file opener. Format: "start hash\n" with the hash in
// hex; readers also accept the legacy single-field form.
func writeSegIdx(opts Options, dir string, seq, start, hash uint64) error {
	f, err := opts.open(segmentIdxPath(dir, seq), os.O_WRONLY|os.O_CREATE|os.O_TRUNC)
	if err != nil {
		return fmt.Errorf("wal: creating segment %d index sidecar: %w", seq, err)
	}
	line := strconv.FormatUint(start, 10) + " " + strconv.FormatUint(hash, 16) + "\n"
	if _, err := f.Write([]byte(line)); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment %d index sidecar: %w", seq, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing segment %d index sidecar: %w", seq, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: closing segment %d index sidecar: %w", seq, err)
	}
	return nil
}

// readSegIdx loads a segment's persisted start index and prefix hash; ok
// is false when the sidecar is missing or unparseable (recovery then
// derives the start by chaining record counts from stream position
// zero). hashOK is false for a legacy single-field sidecar, which
// predates prefix hashing.
func readSegIdx(dir string, seq uint64) (start, hash uint64, hashOK, ok bool) {
	data, err := os.ReadFile(segmentIdxPath(dir, seq))
	if err != nil {
		return 0, 0, false, false
	}
	fields := strings.Fields(string(data))
	if len(fields) == 0 {
		return 0, 0, false, false
	}
	start, err = strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return 0, 0, false, false
	}
	if len(fields) >= 2 {
		if hash, err = strconv.ParseUint(fields[1], 16, 64); err == nil {
			return start, hash, true, true
		}
	}
	return start, 0, false, true
}

// frameSize validates one frame's header and checksum and returns its
// full byte length, without decoding the payload document — the cheap
// walk the stream reader uses to slice frames out of a segment.
func frameSize(b []byte) (int, error) {
	if len(b) < frameHeaderSize {
		return 0, errTorn
	}
	n := int(uint32frame(b))
	if n == 0 || n > maxRecordSize {
		return 0, fmt.Errorf("%w: implausible length prefix %d", errCorrupt, n)
	}
	if len(b) < frameHeaderSize+n {
		return 0, errTorn
	}
	if err := verifyFrameChecksum(b[:frameHeaderSize+n]); err != nil {
		return 0, err
	}
	return frameHeaderSize + n, nil
}
