package wal

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/graph"
)

// fuzzSeedMutations are realistic mutations whose encoded frames seed
// the corpus: every op, edge endpoints, rich field payloads, and
// non-UTC timestamps, so the fuzzer starts from real wire bytes rather
// than having to discover the frame layout from scratch.
func fuzzSeedMutations() []*graph.Mutation {
	at := time.Date(2017, 2, 15, 9, 30, 0, 123456789, time.UTC)
	return []*graph.Mutation{
		{Op: graph.OpInsertNode, UID: 1, Class: "ComputeHost",
			Fields: graph.Fields{"id": 1001, "name": "host-1", "rack": "rz", "status": "Active"}, At: at},
		{Op: graph.OpInsertEdge, UID: 2, Class: "OnServer", Src: 7, Dst: 1,
			Fields: graph.Fields{"id": 2001}, At: at.Add(time.Second)},
		{Op: graph.OpUpdate, UID: 1,
			Fields: graph.Fields{"status": "Maintenance", "weight": 2.5, "note": "unicode ✓ \"quoted\""},
			At:     at.Add(2 * time.Second).In(time.FixedZone("NPT", 5*3600+45*60))},
		{Op: graph.OpDelete, UID: 2, At: at.Add(3 * time.Second)},
	}
}

// FuzzDecodeRecord throws arbitrary bytes at the WAL frame decoder and
// pins its contract: it never panics, never over-consumes, classifies
// every failure as torn or corrupt (the two outcomes recovery and the
// replication follower branch on), and accepted frames survive an
// encode/decode round trip.
func FuzzDecodeRecord(f *testing.F) {
	var frames [][]byte
	for _, m := range fuzzSeedMutations() {
		frame, err := encodeRecord(m)
		if err != nil {
			f.Fatal(err)
		}
		frames = append(frames, frame)
		f.Add(frame)
	}
	// A shipped batch (two whole frames back to back), a torn tail, a
	// flipped payload byte, and degenerate headers.
	f.Add(append(append([]byte{}, frames[0]...), frames[1]...))
	f.Add(frames[0][:len(frames[0])-3])
	bad := append([]byte{}, frames[2]...)
	bad[len(bad)-1] ^= 0x40
	f.Add(bad)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4})

	f.Fuzz(func(t *testing.T, b []byte) {
		m, n, err := DecodeRecord(b)
		if err != nil {
			if m != nil || n != 0 {
				t.Fatalf("failed decode returned (m=%v, n=%d); want (nil, 0)", m, n)
			}
			if !IsTorn(err) && !IsCorrupt(err) {
				t.Fatalf("decode error is neither torn nor corrupt: %v", err)
			}
			return
		}
		if m == nil {
			t.Fatal("nil mutation with nil error")
		}
		if n < frameHeaderSize || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if got := FrameChecksum(b[:n]); got != uint32frame(b[4:8]) {
			t.Fatalf("FrameChecksum = %08x, header says %08x", got, uint32frame(b[4:8]))
		}
		// Round trip: a mutation the decoder accepts must re-encode, and
		// decoding the re-encoded frame must reproduce it field for field.
		frame, err := encodeRecord(m)
		if err != nil {
			t.Fatalf("re-encoding accepted mutation: %v", err)
		}
		m2, n2, err := DecodeRecord(frame)
		if err != nil {
			t.Fatalf("re-decoding re-encoded frame: %v", err)
		}
		if n2 != len(frame) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(frame))
		}
		if m2.Op != m.Op || m2.UID != m.UID || m2.Class != m.Class || m2.Src != m.Src || m2.Dst != m.Dst {
			t.Fatalf("round trip changed identity: %+v -> %+v", m, m2)
		}
		if !m2.At.Equal(m.At) {
			t.Fatalf("round trip changed timestamp: %v -> %v", m.At, m2.At)
		}
		if !reflect.DeepEqual(m2.Fields, m.Fields) {
			t.Fatalf("round trip changed fields: %v -> %v", m.Fields, m2.Fields)
		}
	})
}
