package relational

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/netmodel"
	"repro/internal/plan"
	"repro/internal/rpe"
	"repro/internal/temporal"
)

var t0 = time.Date(2017, 2, 15, 0, 0, 0, 0, time.UTC)

func demoBackend(t *testing.T) (*Backend, *netmodel.Demo) {
	t.Helper()
	st := graph.NewStore(netmodel.MustSchema(), temporal.NewManualClock(t0))
	d, err := netmodel.BuildDemo(st, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return New(st), d
}

func checked(t *testing.T, b *Backend, src string) *rpe.Checked {
	t.Helper()
	c, err := rpe.CheckString(src, b.Store().Schema())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustAnchor(t *testing.T, b *Backend, view graph.View, c *rpe.Checked) []graph.UID {
	t.Helper()
	out, err := b.AnchorElements(view, c, c.Atoms()[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func mustEdges(t *testing.T, b *Backend, view graph.View, node graph.UID, dir plan.Direction, atom *rpe.Atom, c *rpe.Checked) []graph.UID {
	t.Helper()
	out, err := b.IncidentEdges(view, node, dir, atom, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestIncidentEdgesClassPruning(t *testing.T) {
	b, d := demoBackend(t)
	view := graph.CurrentView(b.Store())
	c := checked(t, b, "VM()->OnServer()->Host()")
	var onServerAtom *rpe.Atom
	for _, a := range c.Atoms() {
		if a.Class == "OnServer" {
			onServerAtom = a
		}
	}
	// With the OnServer hint, only the placement edge's table is probed.
	pruned := mustEdges(t, b, view, d.VM1, plan.Forward, onServerAtom, c)
	if len(pruned) != 1 {
		t.Fatalf("pruned probe = %d edges, want 1 (OnServer only)", len(pruned))
	}
	if b.Store().Object(pruned[0]).Class.Name != netmodel.OnServer {
		t.Fatalf("pruned probe returned %s", b.Store().Object(pruned[0]).Class.Name)
	}
	// Without a hint, every table is probed: both incident edges return
	// (OnServer + VirtualLink).
	all := mustEdges(t, b, view, d.VM1, plan.Forward, nil, c)
	if len(all) != 2 {
		t.Fatalf("unhinted probe = %d edges, want 2", len(all))
	}
}

func TestIncidentEdgesAbstractClassHint(t *testing.T) {
	b, d := demoBackend(t)
	view := graph.CurrentView(b.Store())
	// A Vertical hint must probe the whole Vertical subtree's tables:
	// fw-vnf has two ComposedOf out-edges.
	c := checked(t, b, "VNF()->Vertical()->VFC()")
	var vert *rpe.Atom
	for _, a := range c.Atoms() {
		if a.Class == "Vertical" {
			vert = a
		}
	}
	got := mustEdges(t, b, view, d.FirewallVNF, plan.Forward, vert, c)
	if len(got) != 2 {
		t.Fatalf("Vertical subtree probe = %d, want 2", len(got))
	}
}

func TestIndexRefreshIsIncremental(t *testing.T) {
	b, d := demoBackend(t)
	view := graph.CurrentView(b.Store())
	c := checked(t, b, "VM()->OnServer()->Host()")
	// Prime the indexes.
	before := mustEdges(t, b, view, d.Host1, plan.Backward, nil, c)
	// New edges inserted after the first refresh must appear on the next
	// access.
	vm, err := b.Store().InsertNode("VMWare", graph.Fields{"id": int64(5000), "name": "late-vm", "status": "Green"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Store().InsertEdge(netmodel.OnServer, vm, d.Host1, graph.Fields{"id": int64(5001)}); err != nil {
		t.Fatal(err)
	}
	after := mustEdges(t, b, view, d.Host1, plan.Backward, nil, c)
	if len(after) != len(before)+1 {
		t.Fatalf("incremental refresh missed the new edge: %d -> %d", len(before), len(after))
	}
}

func TestHistoryRowsStayIndexed(t *testing.T) {
	b, d := demoBackend(t)
	c := checked(t, b, "VM()->OnServer()->Host()")
	// Prime, then delete a placement edge; the history row must remain
	// reachable for temporal queries while the current view hides it via
	// visibility filtering in the engine.
	cur := graph.CurrentView(b.Store())
	primed := mustEdges(t, b, cur, d.Host1, plan.Backward, nil, c)
	var placement graph.UID
	for _, e := range primed {
		if b.Store().Object(e).Class.Name == netmodel.OnServer {
			placement = e
		}
	}
	b.Store().Clock().Advance(time.Hour)
	if err := b.Store().Delete(placement); err != nil {
		t.Fatal(err)
	}
	again := mustEdges(t, b, graph.CurrentView(b.Store()), d.Host1, plan.Backward, nil, c)
	found := false
	for _, e := range again {
		if e == placement {
			found = true
		}
	}
	if !found {
		t.Fatal("deleted edge dropped from the index; history queries would miss it")
	}
	if graph.CurrentView(b.Store()).Visible(b.Store().Object(placement)) {
		t.Fatal("deleted edge still visible in the current view")
	}
	if !graph.PointView(b.Store(), t0.Add(time.Minute)).Visible(b.Store().Object(placement)) {
		t.Fatal("deleted edge invisible in the past")
	}
}

func TestAnchorElementsTableScan(t *testing.T) {
	b, _ := demoBackend(t)
	view := graph.CurrentView(b.Store())
	c := checked(t, b, "Switch()")
	// Switch subtree: two TORs and one spine.
	if got := mustAnchor(t, b, view, c); len(got) != 3 {
		t.Fatalf("Switch subtree scan = %d, want 3", len(got))
	}
	c = checked(t, b, "TORSwitch(name='tor-1')")
	got := mustAnchor(t, b, view, c)
	if len(got) != 2 { // table scan over TORSwitch, predicate applied later
		t.Fatalf("TORSwitch table scan = %d, want 2", len(got))
	}
}
