// Package relational implements Nepal's relational backend, emulating the
// paper's PostgreSQL target (§5.2–5.3): one table per node and edge class
// with INHERITS-style containment, per-table hash indexes on edge source
// and target ids, TEMP-table pathway extension via bulk joins, and
// history tables behind __historical views for temporal queries.
//
// The physical property the paper's §6 ablation measures lives here: an
// Extend step whose edge atom names a specific class probes only that
// class subtree's tables (small, relevant edges only), while an Extend
// through a generic edge class with a field predicate must read every
// incident edge from every table and filter afterwards — the difference
// that took the legacy bottom-up query from 0.672s to 0.049s when 66 edge
// subclasses replaced a single class.
package relational

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/rpe"
	"repro/internal/schema"
)

// Backend is the relational accessor over a temporal graph store. It
// maintains derived per-class adjacency indexes (the per-table hash
// indexes on source_id_/target_id_) incrementally.
type Backend struct {
	store *graph.Store

	mu sync.Mutex
	// bySrc and byDst map edge class name -> node uid -> edge uids, the
	// in-memory image of per-class tables indexed by endpoint.
	bySrc map[string]map[graph.UID][]graph.UID
	byDst map[string]map[graph.UID][]graph.UID
	// indexedThrough is the highest UID already folded into the indexes;
	// endpoints are immutable so edges never need reindexing.
	indexedThrough graph.UID

	obs atomic.Pointer[backendObs]
}

// backendObs caches the registry counters an instrumented backend
// records; nil (the default) disables recording. The hinted/unpruned
// split makes the §6 ablation's physical difference directly readable
// from the metrics dump: hinted probes touch only one class subtree's
// hash indexes, unpruned probes join every edge table.
type backendObs struct {
	anchorProbes  *obs.Counter
	uniqueLookups *obs.Counter
	hintedProbes  *obs.Counter
	unprunedProbe *obs.Counter
}

// New returns a backend over the store.
func New(store *graph.Store) *Backend {
	return &Backend{
		store: store,
		bySrc: make(map[string]map[graph.UID][]graph.UID),
		byDst: make(map[string]map[graph.UID][]graph.UID),
	}
}

// Name implements plan.Accessor.
func (b *Backend) Name() string { return "relational" }

// Store implements plan.Accessor.
func (b *Backend) Store() *graph.Store { return b.store }

// Instrument attaches a metrics registry: anchor probes, unique-index
// lookups, and hinted vs unpruned adjacency probes are then counted under
// "backend.relational.*". A nil registry detaches.
func (b *Backend) Instrument(r *obs.Registry) {
	if r == nil {
		b.obs.Store(nil)
		return
	}
	b.obs.Store(&backendObs{
		anchorProbes:  r.Counter("backend.relational.anchor_probes"),
		uniqueLookups: r.Counter("backend.relational.unique_lookups"),
		hintedProbes:  r.Counter("backend.relational.hinted_probes"),
		unprunedProbe: r.Counter("backend.relational.unpruned_probes"),
	})
}

// refreshCheckStride bounds how many UIDs an index rebuild folds between
// governor checks: large enough that the check cost vanishes against the
// map inserts, small enough that a deadline aborts a bulk rebuild within
// microseconds.
const refreshCheckStride = 1024

// refresh folds edges inserted since the last call into the per-class
// indexes. History rows stay indexed (the __history tables share the
// indexes); temporal visibility is applied at read time.
//
// The rebuild checks the governor every refreshCheckStride UIDs. On abort
// it records the portion already folded (endpoints are immutable, so
// partial progress is always consistent) and returns the governance
// error; the next refresh — typically from an ungoverned or fresh query —
// resumes where the canceled one stopped.
func (b *Backend) refresh(gov *plan.Governor) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	lo, hi := b.store.UIDRange()
	if b.indexedThrough == 0 {
		b.indexedThrough = lo - 1
	}
	for uid := b.indexedThrough + 1; uid < hi; uid++ {
		if uid%refreshCheckStride == 0 {
			if err := gov.CheckNow(); err != nil {
				b.indexedThrough = uid - 1
				return err
			}
		}
		obj := b.store.Object(uid)
		if obj == nil || !obj.IsEdge() {
			continue
		}
		name := obj.Class.Name
		src := b.bySrc[name]
		if src == nil {
			src = make(map[graph.UID][]graph.UID)
			b.bySrc[name] = src
		}
		src[obj.Src] = append(src[obj.Src], uid)
		dst := b.byDst[name]
		if dst == nil {
			dst = make(map[graph.UID][]graph.UID)
			b.byDst[name] = dst
		}
		dst[obj.Dst] = append(dst[obj.Dst], uid)
	}
	b.indexedThrough = hi - 1
	return nil
}

// AnchorElements implements the Select operator: a unique-index probe for
// unique-field equality, otherwise a scan of each concrete class table in
// the atom's subtree (SELECT ... FROM <class>__historical WHERE ...).
func (b *Backend) AnchorElements(view graph.View, c *rpe.Checked, a *rpe.Atom, gov *plan.Governor) ([]graph.UID, error) {
	o := b.obs.Load()
	if o != nil {
		o.anchorProbes.Add(1)
	}
	if err := gov.CheckNow(); err != nil {
		return nil, err
	}
	cls := c.ClassOf(a)
	if uid, ok := uniqueLookup(b.store, cls, a); ok {
		if o != nil {
			o.uniqueLookups.Add(1)
		}
		obj := b.store.Object(uid)
		if obj != nil && obj.Class.IsSubclassOf(cls) {
			return []graph.UID{uid}, nil
		}
		return nil, nil
	}
	return b.store.BySubtree(cls), nil
}

// IncidentEdges implements the Extend bulk-join access path. With a
// class-specific atom hint it probes only the hash indexes of the tables
// in that class subtree; without one it must union every edge table's
// probe for the node — the join-every-table case the ablation measures.
func (b *Backend) IncidentEdges(view graph.View, node graph.UID, dir plan.Direction, atom *rpe.Atom, c *rpe.Checked, gov *plan.Governor) ([]graph.UID, error) {
	if err := b.refresh(gov); err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	idx := b.bySrc
	if dir == plan.Backward {
		idx = b.byDst
	}
	if atom != nil {
		if o := b.obs.Load(); o != nil {
			o.hintedProbes.Add(1)
		}
		cls := c.ClassOf(atom)
		var out []graph.UID
		for _, name := range cls.SubtreeNames() {
			if m := idx[name]; m != nil {
				out = append(out, m[node]...)
			}
		}
		return out, nil
	}
	if o := b.obs.Load(); o != nil {
		o.unprunedProbe.Add(1)
	}
	var out []graph.UID
	for _, name := range schema.SortedNames(idx) {
		out = append(out, idx[name][node]...)
	}
	return out, nil
}

// uniqueLookup resolves an equality predicate on a unique field; the
// relational schema keeps a dedicated uniqueness table (§5.2), realized
// here by the store's unique index.
func uniqueLookup(st *graph.Store, cls *schema.Class, a *rpe.Atom) (graph.UID, bool) {
	for _, p := range a.Preds {
		if p.Op != rpe.OpEq {
			continue
		}
		for cur := cls; cur != nil; cur = cur.Parent {
			for _, f := range cur.OwnFields {
				if f.Name == p.Field && f.Unique {
					if uid, ok := st.LookupUnique(cur.Name, f.Name, p.Value); ok {
						return uid, true
					}
					return 0, true
				}
			}
		}
	}
	return 0, false
}
