package graph

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/temporal"
)

// ErrTruncated reports a persisted stream that ended before the declared
// content was read — the on-disk file lost its tail. Callers distinguish
// it (via errors.Is) from semantic corruption, which is never recoverable.
var ErrTruncated = errors.New("graph: truncated stream")

// ErrStoreNotEmpty reports an attempt to load a full history into a store
// that already holds objects; restores require a fresh store.
var ErrStoreNotEmpty = errors.New("graph: store is not empty")

// FormatError reports a persisted stream whose format tag is not one this
// build can read (a future or foreign format version).
type FormatError struct {
	Got  string // the format tag found in the stream
	Want string // the format this build reads
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("graph: unsupported stream format %q (this build reads %q)", e.Got, e.Want)
}

// History persistence: WriteHistory serializes the complete temporal
// store — every object with its full version history — and LoadHistory
// reconstructs it into an empty store. Unlike the Snapshot format (which
// carries only the live state of external sources), the history format is
// Nepal's own backup/restore and fixture-shipping representation: a
// header line followed by one JSON document per object, so multi-million
// object stores stream without building one giant value in memory.

// historyHeader is the first line of a history stream.
type historyHeader struct {
	Format  string `json:"format"`
	Objects int    `json:"objects"`
	NextUID int64  `json:"next_uid"`
}

// historyFormat identifies the stream format and version.
const historyFormat = "nepal-history/1"

// objectDoc is the wire form of one object with its versions.
type objectDoc struct {
	UID      int64        `json:"uid"`
	Class    string       `json:"class"`
	Src      int64        `json:"src,omitempty"`
	Dst      int64        `json:"dst,omitempty"`
	Versions []versionDoc `json:"versions"`
}

// versionDoc is the wire form of one version; End is empty for the
// current (open) version.
type versionDoc struct {
	Fields Fields `json:"fields"`
	Start  string `json:"start"`
	End    string `json:"end,omitempty"`
}

const historyTimeLayout = time.RFC3339Nano

// WriteHistory streams the full store (all objects, all versions) to w.
func (st *Store) WriteHistory(w io.Writer) error {
	st.mu.RLock()
	defer st.mu.RUnlock()

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(historyHeader{
		Format:  historyFormat,
		Objects: len(st.objects),
		NextUID: int64(st.nextUID),
	}); err != nil {
		return fmt.Errorf("graph: writing history header: %w", err)
	}
	for uid := UID(1); uid < st.nextUID; uid++ {
		obj := st.objects[uid]
		if obj == nil {
			continue
		}
		doc := objectDoc{
			UID:   int64(obj.UID),
			Class: obj.Class.Name,
			Src:   int64(obj.Src),
			Dst:   int64(obj.Dst),
		}
		for _, v := range obj.Versions {
			vd := versionDoc{Fields: v.Fields, Start: v.Period.Start.Format(historyTimeLayout)}
			if !v.Period.IsCurrent() {
				vd.End = v.Period.End.Format(historyTimeLayout)
			}
			doc.Versions = append(doc.Versions, vd)
		}
		if err := enc.Encode(doc); err != nil {
			return fmt.Errorf("graph: writing history object %d: %w", uid, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flushing history stream: %w", err)
	}
	return nil
}

// LoadHistory reconstructs a previously written history stream into st,
// which must be empty. Every version is validated against the schema
// (the strong-typing guarantee holds across restore), structural
// invariants are re-checked (edge endpoints exist and are nodes, version
// periods are ordered and non-overlapping, at most one open version),
// and the live unique indexes, adjacency, class indexes, and statistics
// are rebuilt. The store's clock is advanced past the newest stored
// timestamp so post-restore writes stay strictly monotonic.
//
// The load is atomic: everything is staged into scratch state and
// installed only after the whole stream has decoded and validated, so on
// any error — a truncated download, a torn file, a validation failure —
// st is left exactly as it was (empty) and a retry with a fresh stream
// is clean. Replication followers rely on this to survive a snapshot
// download severed mid-stream.
func (st *Store) LoadHistory(r io.Reader) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.objects) != 0 {
		return fmt.Errorf("%w: LoadHistory requires an empty store, found %d objects",
			ErrStoreNotEmpty, len(st.objects))
	}

	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr historyHeader
	if err := dec.Decode(&hdr); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("%w: history ended before the header", ErrTruncated)
		}
		return fmt.Errorf("graph: reading history header: %w", err)
	}
	if hdr.Format != historyFormat {
		return &FormatError{Got: hdr.Format, Want: historyFormat}
	}
	if hdr.Objects < 0 || hdr.NextUID < 0 {
		return fmt.Errorf("graph: history header has negative counts (objects=%d, next_uid=%d)",
			hdr.Objects, hdr.NextUID)
	}

	// Stage into a scratch store sharing the schema; st is untouched
	// until the commit at the bottom.
	tmp := NewStore(st.schema, nil)
	var latest time.Time
	for i := 0; i < hdr.Objects; i++ {
		var doc objectDoc
		if err := dec.Decode(&doc); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return fmt.Errorf("%w: history declares %d objects but ended after %d",
					ErrTruncated, hdr.Objects, i)
			}
			return fmt.Errorf("graph: reading history object %d/%d: %w", i+1, hdr.Objects, err)
		}
		obj, err := tmp.restoreObject(&doc)
		if err != nil {
			return err
		}
		for _, v := range obj.Versions {
			if v.Period.Start.After(latest) {
				latest = v.Period.Start
			}
			if !v.Period.IsCurrent() && v.Period.End.After(latest) {
				latest = v.Period.End
			}
		}
	}
	if dec.More() {
		return fmt.Errorf("graph: trailing data after the %d declared history objects", hdr.Objects)
	}

	// Endpoint integrity: every edge's endpoints must exist and be nodes,
	// and the endpoints must already exist whenever the edge does.
	for _, obj := range tmp.objects {
		if !obj.IsEdge() {
			continue
		}
		for _, end := range []UID{obj.Src, obj.Dst} {
			other := tmp.objects[end]
			if other == nil || other.IsEdge() {
				return fmt.Errorf("graph: history edge %d references invalid endpoint %d", obj.UID, end)
			}
		}
		tmp.out[obj.Src] = append(tmp.out[obj.Src], obj.UID)
		tmp.in[obj.Dst] = append(tmp.in[obj.Dst], obj.UID)
	}

	// Commit: install the fully validated state.
	st.objects, st.out, st.in = tmp.objects, tmp.out, tmp.in
	st.byClass, st.unique = tmp.byClass, tmp.unique
	st.classCount = tmp.classCount
	st.versionCount, st.liveCount = tmp.versionCount, tmp.liveCount
	if tmp.nextUID > st.nextUID {
		st.nextUID = tmp.nextUID
	}
	if UID(hdr.NextUID) > st.nextUID {
		st.nextUID = UID(hdr.NextUID)
	}
	// Advance the clock beyond everything restored.
	if !latest.IsZero() {
		st.clock.EnsureAfter(latest)
	}
	return nil
}

// restoreObject validates and installs one object document.
func (st *Store) restoreObject(doc *objectDoc) (*Object, error) {
	cls, ok := st.schema.Class(doc.Class)
	if !ok {
		return nil, fmt.Errorf("graph: history object %d has unknown class %q", doc.UID, doc.Class)
	}
	if cls.Abstract {
		return nil, fmt.Errorf("graph: history object %d uses abstract class %q", doc.UID, doc.Class)
	}
	if doc.UID <= 0 {
		return nil, fmt.Errorf("graph: history object has invalid uid %d", doc.UID)
	}
	uid := UID(doc.UID)
	if _, dup := st.objects[uid]; dup {
		return nil, fmt.Errorf("graph: duplicate uid %d in history", uid)
	}
	if len(doc.Versions) == 0 {
		return nil, fmt.Errorf("graph: history object %d has no versions", uid)
	}

	obj := &Object{UID: uid, Class: cls, Src: UID(doc.Src), Dst: UID(doc.Dst)}
	var prevEnd time.Time
	for vi, vd := range doc.Versions {
		if err := st.schema.ValidateRecord(doc.Class, vd.Fields); err != nil {
			return nil, fmt.Errorf("graph: history object %d version %d: %w", uid, vi, err)
		}
		start, err := time.Parse(historyTimeLayout, vd.Start)
		if err != nil {
			return nil, fmt.Errorf("graph: history object %d version %d start: %w", uid, vi, err)
		}
		period := temporal.Current(start)
		if vd.End != "" {
			end, err := time.Parse(historyTimeLayout, vd.End)
			if err != nil {
				return nil, fmt.Errorf("graph: history object %d version %d end: %w", uid, vi, err)
			}
			period = temporal.Between(start, end)
			if period.IsEmpty() {
				return nil, fmt.Errorf("graph: history object %d version %d has empty period", uid, vi)
			}
		} else if vi != len(doc.Versions)-1 {
			return nil, fmt.Errorf("graph: history object %d has an open non-final version", uid)
		}
		if vi > 0 && start.Before(prevEnd) {
			return nil, fmt.Errorf("graph: history object %d versions overlap", uid)
		}
		prevEnd = period.End
		obj.Versions = append(obj.Versions, Version{Fields: vd.Fields.Clone(), Period: period})
		st.versionCount++
	}

	st.objects[uid] = obj
	st.byClass[doc.Class] = append(st.byClass[doc.Class], uid)
	if uid >= st.nextUID {
		st.nextUID = uid + 1
	}
	if cur := obj.Current(); cur != nil {
		st.classCount[doc.Class]++
		st.liveCount++
		if err := st.claimUnique(cls, cur.Fields, 0); err != nil {
			return nil, fmt.Errorf("graph: history object %d: %w", uid, err)
		}
		st.recordUnique(cls, cur.Fields, uid)
	}
	return obj, nil
}
