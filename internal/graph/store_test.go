package graph

import (
	"testing"
	"time"

	"repro/internal/schema"
	"repro/internal/temporal"
)

var t0 = time.Date(2017, 2, 15, 0, 0, 0, 0, time.UTC)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s := schema.New()
	must := func(_ *schema.Class, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.DefineNode("VM", "", schema.Field{Name: "status", Type: schema.TypeString}))
	must(s.DefineNode("Host", ""))
	must(s.DefineNode("VNF", ""))
	must(s.DefineEdge("HostedOn", ""))
	must(s.DefineEdge("ConnectsTo", ""))
	s.AllowEdge("HostedOn", "VM", "Host")
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	return s
}

func newTestStore(t *testing.T) (*Store, *temporal.Clock) {
	t.Helper()
	clock := temporal.NewManualClock(t0)
	return NewStore(testSchema(t), clock), clock
}

func TestInsertAndLookup(t *testing.T) {
	st, _ := newTestStore(t)
	uid, err := st.InsertNode("VM", Fields{"id": 55, "status": "Green"})
	if err != nil {
		t.Fatal(err)
	}
	obj := st.Object(uid)
	if obj == nil || obj.Class.Name != "VM" {
		t.Fatalf("Object(%d) = %v", uid, obj)
	}
	if got := obj.Current().Fields["status"]; got != "Green" {
		t.Errorf("status = %v", got)
	}
	if found, ok := st.LookupUnique(schema.NodeRoot, "id", 55); !ok || found != uid {
		t.Errorf("LookupUnique = %v, %v", found, ok)
	}
	// Numeric representations must collide in the unique index.
	if _, err := st.InsertNode("Host", Fields{"id": float64(55)}); err == nil {
		t.Error("duplicate id across classes accepted")
	}
}

func TestInsertValidates(t *testing.T) {
	st, _ := newTestStore(t)
	if _, err := st.InsertNode("VM", Fields{"status": "Green"}); err == nil {
		t.Error("missing required id accepted")
	}
	if _, err := st.InsertNode("VM", Fields{"id": 1, "bogus": true}); err == nil {
		t.Error("undeclared field accepted")
	}
	if _, err := st.InsertNode("HostedOn", Fields{"id": 1}); err == nil {
		t.Error("edge class accepted as node")
	}
}

func TestEdgeRules(t *testing.T) {
	st, _ := newTestStore(t)
	vm, _ := st.InsertNode("VM", Fields{"id": 1, "status": "Green"})
	host, _ := st.InsertNode("Host", Fields{"id": 2})
	vnf, _ := st.InsertNode("VNF", Fields{"id": 3})

	if _, err := st.InsertEdge("HostedOn", vm, host, Fields{"id": 10}); err != nil {
		t.Errorf("allowed edge rejected: %v", err)
	}
	if _, err := st.InsertEdge("HostedOn", vnf, host, Fields{"id": 11}); err == nil {
		t.Error("schema-forbidden edge accepted (VNF cannot be HostedOn a Host directly)")
	}
	// ConnectsTo has no rules, so it is unconstrained.
	if _, err := st.InsertEdge("ConnectsTo", vnf, host, Fields{"id": 12}); err != nil {
		t.Errorf("unconstrained edge rejected: %v", err)
	}
	if _, err := st.InsertEdge("ConnectsTo", vm, 999, Fields{"id": 13}); err == nil {
		t.Error("edge to unknown node accepted")
	}
}

func TestAdjacency(t *testing.T) {
	st, _ := newTestStore(t)
	vm, _ := st.InsertNode("VM", Fields{"id": 1, "status": "Green"})
	host, _ := st.InsertNode("Host", Fields{"id": 2})
	e, _ := st.InsertEdge("HostedOn", vm, host, Fields{"id": 10})
	if out := st.OutEdges(vm); len(out) != 1 || out[0] != e {
		t.Errorf("OutEdges(vm) = %v", out)
	}
	if in := st.InEdges(host); len(in) != 1 || in[0] != e {
		t.Errorf("InEdges(host) = %v", in)
	}
	eo := st.Object(e)
	if eo.Src != vm || eo.Dst != host {
		t.Errorf("edge endpoints = %d -> %d", eo.Src, eo.Dst)
	}
}

func TestUpdateCreatesHistory(t *testing.T) {
	st, clock := newTestStore(t)
	uid, _ := st.InsertNode("VM", Fields{"id": 1, "status": "Green"})
	clock.Advance(time.Hour)
	if err := st.Update(uid, Fields{"id": 1, "status": "Red"}); err != nil {
		t.Fatal(err)
	}
	obj := st.Object(uid)
	if len(obj.Versions) != 2 {
		t.Fatalf("versions = %d", len(obj.Versions))
	}
	v0, v1 := obj.Versions[0], obj.Versions[1]
	if v0.Period.IsCurrent() || !v1.Period.IsCurrent() {
		t.Error("old version must be closed and new version current")
	}
	if !v0.Period.End.Equal(v1.Period.Start) {
		t.Error("versions must meet with no gap")
	}
	if v0.Fields["status"] != "Green" || v1.Fields["status"] != "Red" {
		t.Error("version fields wrong")
	}
	// The updated id remains claimed by this object.
	if _, err := st.InsertNode("Host", Fields{"id": 1}); err == nil {
		t.Error("id still live after update but re-claimable")
	}
}

func TestDeleteCascades(t *testing.T) {
	st, clock := newTestStore(t)
	vm, _ := st.InsertNode("VM", Fields{"id": 1, "status": "Green"})
	host, _ := st.InsertNode("Host", Fields{"id": 2})
	e, _ := st.InsertEdge("HostedOn", vm, host, Fields{"id": 10})
	clock.Advance(time.Hour)
	if err := st.Delete(host); err != nil {
		t.Fatal(err)
	}
	if st.Object(host).Current() != nil {
		t.Error("deleted node still current")
	}
	if st.Object(e).Current() != nil {
		t.Error("incident edge not cascaded on node delete")
	}
	if st.Object(vm).Current() == nil {
		t.Error("other endpoint must survive")
	}
	// id becomes reusable after delete.
	if _, err := st.InsertNode("Host", Fields{"id": 2}); err != nil {
		t.Errorf("id not released on delete: %v", err)
	}
	// Deleting again is a no-op.
	if err := st.Delete(host); err != nil {
		t.Errorf("double delete: %v", err)
	}
	if err := st.Delete(999); err == nil {
		t.Error("delete of unknown uid accepted")
	}
}

func TestUpdateDeletedRejected(t *testing.T) {
	st, _ := newTestStore(t)
	uid, _ := st.InsertNode("VM", Fields{"id": 1, "status": "Green"})
	if err := st.Delete(uid); err != nil {
		t.Fatal(err)
	}
	if err := st.Update(uid, Fields{"id": 1, "status": "Red"}); err == nil {
		t.Error("update of deleted object accepted")
	}
}

func TestVersionAt(t *testing.T) {
	st, clock := newTestStore(t)
	uid, _ := st.InsertNode("VM", Fields{"id": 1, "status": "Green"})
	clock.Advance(time.Hour) // t0+1h
	_ = st.Update(uid, Fields{"id": 1, "status": "Yellow"})
	clock.Advance(time.Hour) // t0+2h
	_ = st.Update(uid, Fields{"id": 1, "status": "Red"})
	obj := st.Object(uid)

	cases := []struct {
		at   time.Time
		want any
	}{
		{t0.Add(30 * time.Minute), "Green"},
		{t0.Add(90 * time.Minute), "Yellow"},
		{t0.Add(3 * time.Hour), "Red"},
	}
	for _, c := range cases {
		v := obj.VersionAt(c.at)
		if v == nil || v.Fields["status"] != c.want {
			t.Errorf("VersionAt(%v) = %v, want status %v", c.at, v, c.want)
		}
	}
	if v := obj.VersionAt(t0.Add(-time.Hour)); v != nil {
		t.Error("version visible before insert")
	}
}

func TestViewPointAndRange(t *testing.T) {
	st, clock := newTestStore(t)
	uid, _ := st.InsertNode("VM", Fields{"id": 1, "status": "Green"})
	clock.Advance(time.Hour)
	_ = st.Update(uid, Fields{"id": 1, "status": "Red"})
	clock.Advance(time.Hour)
	_ = st.Update(uid, Fields{"id": 1, "status": "Green"})
	obj := st.Object(uid)

	isGreen := func(f Fields) bool { return f["status"] == "Green" }

	// Point view inside the Red period.
	v := PointView(st, t0.Add(90*time.Minute))
	if _, ok := v.Match(obj, isGreen); ok {
		t.Error("green predicate matched during red period")
	}
	if _, ok := v.Match(obj, nil); !ok {
		t.Error("existence match failed during red period")
	}

	// Point view in the first Green period returns the maximal green range.
	v = PointView(st, t0.Add(30*time.Minute))
	set, ok := v.Match(obj, isGreen)
	if !ok {
		t.Fatal("green not matched in green period")
	}
	if len(set) == 0 || !set[0].Start.Equal(t0) || !set[0].End.Equal(t0.Add(time.Hour)) {
		t.Errorf("maximal green range = %v", set)
	}

	// Range view across everything: two green periods, second current.
	v = RangeView(st, t0, t0.Add(10*time.Hour))
	set, ok = v.Match(obj, isGreen)
	if !ok || len(set) != 2 {
		t.Fatalf("range green set = %v, %v", set, ok)
	}
	if !set[1].IsCurrent() {
		t.Error("second green period must be current")
	}

	// Range window that only covers the red period still reports unclipped
	// green? No: green does not overlap the window, so no match.
	v = RangeView(st, t0.Add(61*time.Minute), t0.Add(119*time.Minute))
	if _, ok = v.Match(obj, isGreen); ok {
		t.Error("green matched in a window covering only red")
	}
	// But existence matches, and the reported set is the full lifetime.
	set, ok = v.Match(obj, nil)
	if !ok || len(set) != 1 || !set[0].Start.Equal(t0) {
		t.Errorf("existence set = %v, %v (must be maximal, unclipped)", set, ok)
	}
}

func TestStatsAndCounts(t *testing.T) {
	st, _ := newTestStore(t)
	a, _ := st.InsertNode("VM", Fields{"id": 1, "status": "x"})
	_, _ = st.InsertNode("VM", Fields{"id": 2, "status": "x"})
	_, _ = st.InsertNode("Host", Fields{"id": 3})
	_ = st.Update(a, Fields{"id": 1, "status": "y"})
	_ = st.Delete(a)

	stats := st.Stats()
	if stats.ClassCount["VM"] != 1 || stats.ClassCount["Host"] != 1 {
		t.Errorf("stats = %v", stats.ClassCount)
	}
	live, versions := st.Counts()
	if live != 2 {
		t.Errorf("live = %d", live)
	}
	if versions != 4 { // 3 inserts + 1 update
		t.Errorf("versions = %d", versions)
	}
}

func TestBySubtree(t *testing.T) {
	st, _ := newTestStore(t)
	_, _ = st.InsertNode("VM", Fields{"id": 1, "status": "x"})
	_, _ = st.InsertNode("Host", Fields{"id": 2})
	node := st.Schema().MustClass(schema.NodeRoot)
	if got := st.BySubtree(node); len(got) != 2 {
		t.Errorf("BySubtree(Node) = %v", got)
	}
	vm := st.Schema().MustClass("VM")
	if got := st.BySubtree(vm); len(got) != 1 {
		t.Errorf("BySubtree(VM) = %v", got)
	}
}

func TestApplySnapshotRoundTrip(t *testing.T) {
	st, clock := newTestStore(t)
	snap1 := &Snapshot{
		Nodes: []NodeSpec{
			{Class: "VM", Fields: Fields{"id": 1, "status": "Green"}},
			{Class: "VM", Fields: Fields{"id": 2, "status": "Green"}},
			{Class: "Host", Fields: Fields{"id": 10}},
		},
		Edges: []EdgeSpec{
			{Class: "HostedOn", SrcID: 1, DstID: 10, Fields: Fields{"id": 100}},
			{Class: "HostedOn", SrcID: 2, DstID: 10, Fields: Fields{"id": 101}},
		},
	}
	stats, err := st.ApplySnapshot(snap1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NodesInserted != 3 || stats.EdgesInserted != 2 {
		t.Fatalf("initial load stats = %+v", stats)
	}

	// Re-applying the identical snapshot must be a no-op.
	clock.Advance(time.Hour)
	stats, err = st.ApplySnapshot(snap1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total() != 0 {
		t.Fatalf("idempotent reapply produced changes: %+v", stats)
	}

	// Second snapshot: VM 2 gone, VM 1 status change, new VM 3 migrated to
	// the host, edge 101 gone, new edge 102.
	clock.Advance(time.Hour)
	snap2 := &Snapshot{
		Nodes: []NodeSpec{
			{Class: "VM", Fields: Fields{"id": 1, "status": "Red"}},
			{Class: "VM", Fields: Fields{"id": 3, "status": "Green"}},
			{Class: "Host", Fields: Fields{"id": 10}},
		},
		Edges: []EdgeSpec{
			{Class: "HostedOn", SrcID: 1, DstID: 10, Fields: Fields{"id": 100}},
			{Class: "HostedOn", SrcID: 3, DstID: 10, Fields: Fields{"id": 102}},
		},
	}
	stats, err = st.ApplySnapshot(snap2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NodesInserted != 1 || stats.NodesUpdated != 1 || stats.NodesDeleted != 1 {
		t.Errorf("node stats = %+v", stats)
	}
	if stats.EdgesInserted != 1 || stats.EdgesDeleted != 1 {
		t.Errorf("edge stats = %+v", stats)
	}

	// History preserved: at t0, VM 1 was Green.
	uid, _ := st.LookupUnique(schema.NodeRoot, "id", 1)
	v := st.Object(uid).VersionAt(t0)
	if v == nil || v.Fields["status"] != "Green" {
		t.Errorf("history lost: VersionAt(t0) = %v", v)
	}

	// Export equals input (modulo ordering).
	out := st.CurrentSnapshot()
	if len(out.Nodes) != 3 || len(out.Edges) != 2 {
		t.Errorf("CurrentSnapshot = %d nodes, %d edges", len(out.Nodes), len(out.Edges))
	}
}

func TestApplySnapshotEndpointRewire(t *testing.T) {
	st, clock := newTestStore(t)
	base := &Snapshot{
		Nodes: []NodeSpec{
			{Class: "VM", Fields: Fields{"id": 1, "status": "Green"}},
			{Class: "Host", Fields: Fields{"id": 10}},
			{Class: "Host", Fields: Fields{"id": 11}},
		},
		Edges: []EdgeSpec{{Class: "HostedOn", SrcID: 1, DstID: 10, Fields: Fields{"id": 100}}},
	}
	if _, err := st.ApplySnapshot(base); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Hour)
	// Same edge id, new destination: a VM migration. Must delete + insert.
	base.Edges[0].DstID = 11
	stats, err := st.ApplySnapshot(base)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EdgesDeleted != 1 || stats.EdgesInserted != 1 {
		t.Errorf("rewire stats = %+v", stats)
	}
	host11, _ := st.LookupUnique(schema.NodeRoot, "id", 11)
	live := 0
	for _, e := range st.InEdges(host11) {
		if st.Object(e).Current() != nil {
			live++
		}
	}
	if live != 1 {
		t.Errorf("host 11 live in-edges = %d", live)
	}
}

func TestApplySnapshotErrors(t *testing.T) {
	st, _ := newTestStore(t)
	if _, err := st.ApplySnapshot(&Snapshot{Nodes: []NodeSpec{{Class: "VM", Fields: Fields{"status": "x"}}}}); err == nil {
		t.Error("node without id accepted")
	}
	if _, err := st.ApplySnapshot(&Snapshot{Edges: []EdgeSpec{{Class: "HostedOn", SrcID: 1, DstID: 2, Fields: Fields{"id": 5}}}}); err == nil {
		t.Error("edge with unknown endpoints accepted")
	}
	if _, err := st.ApplySnapshot(&Snapshot{Nodes: []NodeSpec{{Class: "Ghost", Fields: Fields{"id": 1}}}}); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestObjectLifetime(t *testing.T) {
	st, clock := newTestStore(t)
	uid, _ := st.InsertNode("VM", Fields{"id": 1, "status": "a"})
	clock.Advance(time.Hour)
	_ = st.Update(uid, Fields{"id": 1, "status": "b"})
	clock.Advance(time.Hour)
	_ = st.Delete(uid)
	life := st.Object(uid).Lifetime()
	if len(life) != 1 {
		t.Fatalf("lifetime = %v (updates must coalesce)", life)
	}
	if !life[0].Start.Equal(t0) || !life[0].End.Equal(t0.Add(2*time.Hour)) {
		t.Errorf("lifetime = %v", life)
	}
}
