package graph

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"reflect"
	"time"

	"repro/internal/schema"
)

// NodeSpec describes one node in an external inventory snapshot. Nodes are
// keyed by their schema-unique "id" field.
type NodeSpec struct {
	Class  string `json:"class"`
	Fields Fields `json:"fields"`
}

// EdgeSpec describes one edge in a snapshot. Endpoints reference node ids
// (not UIDs, which are internal); the edge itself is keyed by its own
// unique "id" field.
type EdgeSpec struct {
	Class  string `json:"class"`
	SrcID  any    `json:"src_id"`
	DstID  any    `json:"dst_id"`
	Fields Fields `json:"fields"`
}

// Snapshot is a full statement of a data source's contents at one moment.
// Several of Nepal's inventory sources provide periodic snapshots rather
// than update streams (§3.1); ApplySnapshot diffs a snapshot against the
// store to synthesize the equivalent inserts, updates, and deletes.
type Snapshot struct {
	Nodes []NodeSpec `json:"nodes"`
	Edges []EdgeSpec `json:"edges"`
}

// DiffStats reports what an ApplySnapshot call changed.
type DiffStats struct {
	NodesInserted, NodesUpdated, NodesDeleted int
	EdgesInserted, EdgesUpdated, EdgesDeleted int
}

// Total returns the total number of changes applied.
func (d DiffStats) Total() int {
	return d.NodesInserted + d.NodesUpdated + d.NodesDeleted +
		d.EdgesInserted + d.EdgesUpdated + d.EdgesDeleted
}

// ApplySnapshot is the update-by-snapshot service: it reconciles the store
// with snap. Objects present in snap but not in the store are inserted;
// objects whose fields differ are updated; live objects of classes that
// appear in snap but are absent from it are deleted. Objects of classes
// not mentioned in the snapshot at all are left untouched, so independent
// sources can own disjoint parts of the graph.
func (st *Store) ApplySnapshot(snap *Snapshot) (DiffStats, error) {
	var stats DiffStats
	defer func(start time.Time) { st.recordSnapshot(time.Since(start)) }(time.Now())

	nodeClasses := make(map[string]bool)
	seenNodes := make(map[UID]bool, len(snap.Nodes))
	for i := range snap.Nodes {
		n := &snap.Nodes[i]
		nodeClasses[n.Class] = true
		id, ok := n.Fields["id"]
		if !ok {
			return stats, fmt.Errorf("graph: snapshot node %d of class %s has no id", i, n.Class)
		}
		if uid, exists := st.LookupUnique(schema.NodeRoot, "id", id); exists {
			obj := st.Object(uid)
			if obj.Class.Name != n.Class {
				// A node changed class: model as delete + insert.
				if err := st.Delete(uid); err != nil {
					return stats, err
				}
				stats.NodesDeleted++
				newUID, err := st.InsertNode(n.Class, n.Fields)
				if err != nil {
					return stats, fmt.Errorf("graph: snapshot reinsert node id=%v: %w", id, err)
				}
				stats.NodesInserted++
				seenNodes[newUID] = true
				continue
			}
			if !sameFields(obj.Current().Fields, n.Fields) {
				if err := st.Update(uid, n.Fields); err != nil {
					return stats, fmt.Errorf("graph: snapshot update node id=%v: %w", id, err)
				}
				stats.NodesUpdated++
			}
			seenNodes[uid] = true
			continue
		}
		uid, err := st.InsertNode(n.Class, n.Fields)
		if err != nil {
			return stats, fmt.Errorf("graph: snapshot insert node id=%v: %w", id, err)
		}
		stats.NodesInserted++
		seenNodes[uid] = true
	}

	edgeClasses := make(map[string]bool)
	seenEdges := make(map[UID]bool, len(snap.Edges))
	for i := range snap.Edges {
		e := &snap.Edges[i]
		edgeClasses[e.Class] = true
		id, ok := e.Fields["id"]
		if !ok {
			return stats, fmt.Errorf("graph: snapshot edge %d of class %s has no id", i, e.Class)
		}
		src, okSrc := st.LookupUnique(schema.NodeRoot, "id", e.SrcID)
		dst, okDst := st.LookupUnique(schema.NodeRoot, "id", e.DstID)
		if !okSrc || !okDst {
			return stats, fmt.Errorf("graph: snapshot edge id=%v references unknown endpoint (%v -> %v)",
				id, e.SrcID, e.DstID)
		}
		if uid, exists := st.LookupUnique(schema.EdgeRoot, "id", id); exists {
			obj := st.Object(uid)
			if obj.Class.Name != e.Class || obj.Src != src || obj.Dst != dst {
				if err := st.Delete(uid); err != nil {
					return stats, err
				}
				stats.EdgesDeleted++
			} else {
				if !sameFields(obj.Current().Fields, e.Fields) {
					if err := st.Update(uid, e.Fields); err != nil {
						return stats, fmt.Errorf("graph: snapshot update edge id=%v: %w", id, err)
					}
					stats.EdgesUpdated++
				}
				seenEdges[uid] = true
				continue
			}
		}
		uid, err := st.InsertEdge(e.Class, src, dst, e.Fields)
		if err != nil {
			return stats, fmt.Errorf("graph: snapshot insert edge id=%v: %w", id, err)
		}
		stats.EdgesInserted++
		seenEdges[uid] = true
	}

	// Deletions: live objects of snapshot-owned classes that were not seen.
	// Edges first, so node deletion cascades don't double-count.
	for class := range edgeClasses {
		for _, uid := range st.ByClass(class) {
			obj := st.Object(uid)
			if obj.Current() != nil && !seenEdges[uid] {
				if err := st.Delete(uid); err != nil {
					return stats, err
				}
				stats.EdgesDeleted++
			}
		}
	}
	for class := range nodeClasses {
		for _, uid := range st.ByClass(class) {
			obj := st.Object(uid)
			if obj.Current() != nil && !seenNodes[uid] {
				if err := st.Delete(uid); err != nil {
					return stats, err
				}
				stats.NodesDeleted++
			}
		}
	}
	return stats, nil
}

// CurrentSnapshot exports the live graph as a Snapshot, the inverse of
// ApplySnapshot for classes with live objects.
func (st *Store) CurrentSnapshot() *Snapshot {
	st.mu.RLock()
	defer st.mu.RUnlock()
	snap := &Snapshot{}
	for uid := UID(1); uid < st.nextUID; uid++ {
		obj := st.objects[uid]
		if obj == nil {
			continue
		}
		cur := obj.Current()
		if cur == nil {
			continue
		}
		if obj.IsEdge() {
			srcCur := st.objects[obj.Src].Current()
			dstCur := st.objects[obj.Dst].Current()
			if srcCur == nil || dstCur == nil {
				continue
			}
			snap.Edges = append(snap.Edges, EdgeSpec{
				Class:  obj.Class.Name,
				SrcID:  srcCur.Fields["id"],
				DstID:  dstCur.Fields["id"],
				Fields: cur.Fields.Clone(),
			})
		} else {
			snap.Nodes = append(snap.Nodes, NodeSpec{Class: obj.Class.Name, Fields: cur.Fields.Clone()})
		}
	}
	return snap
}

// sameFields compares two field maps structurally, treating numerics that
// hold the same integral value as equal (JSON round-trips ints to float64).
func sameFields(a, b Fields) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok {
			return false
		}
		if valueKey(av) != valueKey(bv) && !reflect.DeepEqual(av, bv) {
			return false
		}
	}
	return true
}

// WriteSnapshot encodes snap as JSON to w.
func WriteSnapshot(w io.Writer, snap *Snapshot) error {
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// ReadSnapshot decodes a JSON snapshot from r, distinguishing a truncated
// stream (graph.ErrTruncated) from malformed content and rejecting
// trailing data after the snapshot document.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	dec := json.NewDecoder(r)
	var snap Snapshot
	if err := dec.Decode(&snap); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: snapshot ended mid-document", ErrTruncated)
		}
		return nil, fmt.Errorf("graph: decoding snapshot: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("graph: trailing data after snapshot document")
	}
	return &snap, nil
}
