package graph

import (
	"context"
	"fmt"
	"time"

	"repro/internal/schema"
)

// Mutation is the logical write-ahead record of one committed store
// mutation: the operation, the object it touched, and the transaction
// timestamp the store stamped it with. Replaying a mutation stream through
// ApplyMutation on an empty store (or on a checkpoint prefix of the same
// stream) reproduces the identical temporal version history, because every
// sys_period bound is derived from At rather than from a live clock.
//
// A Delete mutation carries only the deleted UID: the cascade to live
// incident edges is deterministic (adjacency slices preserve insertion
// order) and re-derived on replay, all closed at the same timestamp.
type Mutation struct {
	Op       MutationOp
	UID      UID
	Class    string // concrete class name; inserts only
	Src, Dst UID    // edge endpoints; InsertEdge only
	Fields   Fields // full field map; inserts and updates
	At       time.Time
}

// MutationOp enumerates the store's write operations.
type MutationOp uint8

const (
	OpInsertNode MutationOp = iota + 1
	OpInsertEdge
	OpUpdate
	OpDelete
)

// String returns the wire name of the operation.
func (op MutationOp) String() string {
	switch op {
	case OpInsertNode:
		return "insert_node"
	case OpInsertEdge:
		return "insert_edge"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// ParseMutationOp is the inverse of MutationOp.String.
func ParseMutationOp(s string) (MutationOp, error) {
	switch s {
	case "insert_node":
		return OpInsertNode, nil
	case "insert_edge":
		return OpInsertEdge, nil
	case "update":
		return OpUpdate, nil
	case "delete":
		return OpDelete, nil
	}
	return 0, fmt.Errorf("graph: unknown mutation op %q", s)
}

// MutationHook observes every mutation after validation and immediately
// before it is applied, while the store's write lock is held — so the hook
// call order is exactly the store's serialization order. A non-nil error
// aborts the mutation: nothing is applied and the caller sees the error.
// Durability layers (internal/wal) append and sync here, which makes
// "hook returned nil" the acknowledgement point: every acknowledged write
// is on disk before it is visible in memory. The context is the writer's
// request context, carrying trace identity so the durability layer can
// attach its spans (e.g. the WAL append) to the request's trace.
type MutationHook func(context.Context, *Mutation) error

// SetMutationHook installs the hook (nil removes it). Install before the
// store starts serving writes; the hook itself must not call back into the
// store (the write lock is held).
func (st *Store) SetMutationHook(h MutationHook) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.hook = h
}

// ApplyMutation replays one logged mutation at its recorded timestamp,
// bypassing the clock and the hook. It validates like the live write path
// and additionally tolerates records the store already reflects — an
// insert of an existing UID, an update whose version already exists, a
// delete of an already-closed object — reporting applied=false for them.
// That idempotence is what lets recovery replay a log whose prefix
// overlaps the checkpoint it starts from.
func (st *Store) ApplyMutation(m *Mutation) (applied bool, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	defer st.clock.EnsureAfter(m.At)

	switch m.Op {
	case OpInsertNode, OpInsertEdge:
		return st.replayInsert(m)
	case OpUpdate:
		return st.replayUpdate(m)
	case OpDelete:
		return st.replayDelete(m)
	}
	return false, fmt.Errorf("graph: replay of unknown mutation op %d", m.Op)
}

func (st *Store) replayInsert(m *Mutation) (bool, error) {
	if existing := st.objects[m.UID]; existing != nil {
		if existing.Class.Name != m.Class {
			return false, fmt.Errorf("graph: replay insert %d: store has class %s, log says %s",
				m.UID, existing.Class.Name, m.Class)
		}
		return false, nil // already present (checkpoint overlap)
	}
	if m.UID <= 0 {
		return false, fmt.Errorf("graph: replay insert with invalid uid %d", m.UID)
	}
	if err := st.schema.ValidateRecord(m.Class, m.Fields); err != nil {
		return false, fmt.Errorf("graph: replay insert %d: %w", m.UID, err)
	}
	c, _ := st.schema.Class(m.Class)
	kind := schema.NodeKind
	if m.Op == OpInsertEdge {
		kind = schema.EdgeKind
	}
	if c.Kind != kind {
		return false, fmt.Errorf("graph: replay insert %d: class %q is a %s class", m.UID, m.Class, c.Kind)
	}
	if kind == schema.EdgeKind {
		srcObj, dstObj := st.objects[m.Src], st.objects[m.Dst]
		if srcObj == nil || srcObj.Current() == nil || srcObj.IsEdge() {
			return false, fmt.Errorf("graph: replay edge %d: source %d is not a live node", m.UID, m.Src)
		}
		if dstObj == nil || dstObj.Current() == nil || dstObj.IsEdge() {
			return false, fmt.Errorf("graph: replay edge %d: target %d is not a live node", m.UID, m.Dst)
		}
		if !st.schema.EdgeAllowed(c, srcObj.Class, dstObj.Class) {
			return false, fmt.Errorf("graph: replay edge %d: schema permits no %s edge from %s to %s",
				m.UID, m.Class, srcObj.Class, dstObj.Class)
		}
	}
	if err := st.claimUnique(c, m.Fields, 0); err != nil {
		return false, fmt.Errorf("graph: replay insert %d: %w", m.UID, err)
	}
	st.installLocked(c, m.UID, m.Src, m.Dst, m.Fields, m.At)
	return true, nil
}

func (st *Store) replayUpdate(m *Mutation) (bool, error) {
	obj := st.objects[m.UID]
	if obj == nil {
		return false, fmt.Errorf("graph: replay update of unknown uid %d", m.UID)
	}
	for i := range obj.Versions {
		if obj.Versions[i].Period.Start.Equal(m.At) {
			return false, nil // version already present (checkpoint overlap)
		}
	}
	cur := obj.Current()
	if cur == nil {
		return false, fmt.Errorf("graph: replay update of deleted object %d", m.UID)
	}
	if err := st.schema.ValidateRecord(obj.Class.Name, m.Fields); err != nil {
		return false, fmt.Errorf("graph: replay update %d: %w", m.UID, err)
	}
	if err := st.claimUnique(obj.Class, m.Fields, m.UID); err != nil {
		return false, fmt.Errorf("graph: replay update %d: %w", m.UID, err)
	}
	st.updateLocked(obj, cur, m.Fields, m.At)
	return true, nil
}

func (st *Store) replayDelete(m *Mutation) (bool, error) {
	obj := st.objects[m.UID]
	if obj == nil {
		return false, fmt.Errorf("graph: replay delete of unknown uid %d", m.UID)
	}
	cur := obj.Current()
	if cur == nil {
		return false, nil // already closed (checkpoint overlap)
	}
	st.deleteAtLocked(obj, cur, m.At)
	return true, nil
}
