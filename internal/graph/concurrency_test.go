package graph

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/temporal"
)

// TestConcurrentReadersAndWriters exercises the store under parallel
// mutation and temporal reads; run with -race. Readers must always
// observe internally consistent objects (versions ordered, at most one
// current) while writers insert, update, and delete.
func TestConcurrentReadersAndWriters(t *testing.T) {
	st, _ := newTestStore(t)
	host, err := st.InsertNode("Host", Fields{"id": 1})
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const vmsPerWriter = 30
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < vmsPerWriter; i++ {
				id := int64(1000 + w*1000 + i)
				vm, err := st.InsertNode("VM", Fields{"id": id, "status": "Green"})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := st.InsertEdge("HostedOn", vm, host, Fields{"id": id + 100000}); err != nil {
					t.Error(err)
					return
				}
				if err := st.Update(vm, Fields{"id": id, "status": "Red"}); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					if err := st.Delete(vm); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}

	// Readers scan class indexes and version histories concurrently.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 50; pass++ {
				for _, uid := range st.ByClass("VM") {
					obj := st.Object(uid)
					if obj == nil {
						t.Error("indexed uid without object")
						return
					}
					current := 0
					for i, v := range obj.Versions {
						if v.Period.IsCurrent() {
							current++
						}
						if i > 0 && v.Period.Start.Before(obj.Versions[i-1].Period.Start) {
							t.Error("versions out of order")
							return
						}
					}
					if current > 1 {
						t.Error("object with two current versions")
						return
					}
				}
				_ = st.Stats()
				_, _ = st.Counts()
				_ = st.InEdges(host)
			}
		}()
	}
	wg.Wait()

	live, versions := st.Counts()
	wantLive := 1 + writers*vmsPerWriter*2 - writers*(vmsPerWriter/3+1)*2
	if live <= 0 || versions < live {
		t.Fatalf("counts inconsistent: live=%d versions=%d (rough expectation %d live)", live, versions, wantLive)
	}
}

// TestConcurrentUniqueClaims: two writers fighting over the same unique
// id — exactly one must win per id.
func TestConcurrentUniqueClaims(t *testing.T) {
	st := NewStore(testSchema(t), temporal.NewManualClock(t0))
	const ids = 50
	var wg sync.WaitGroup
	wins := make([][]bool, 2)
	for w := 0; w < 2; w++ {
		wins[w] = make([]bool, ids)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ids; i++ {
				if _, err := st.InsertNode("Host", Fields{"id": int64(i), "name": fmt.Sprintf("w%d-%d", w, i)}); err == nil {
					wins[w][i] = true
				}
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < ids; i++ {
		if wins[0][i] == wins[1][i] {
			t.Errorf("id %d: winner count != 1 (w0=%v w1=%v)", i, wins[0][i], wins[1][i])
		}
	}
}
