package graph

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/temporal"
)

// churn drives n randomized mutations (inserts, updates, deletes with
// cascades, clock advances) against the store, all derived from seed.
func churn(t *testing.T, st *Store, clock *temporal.Clock, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nextID := int(seed)*1_000_000 + 1
	var nodes, edges []UID
	prune := func(uids []UID) []UID {
		out := uids[:0]
		for _, uid := range uids {
			if st.Object(uid).Current() != nil {
				out = append(out, uid)
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			clock.Advance(time.Duration(1+rng.Intn(300)) * time.Second)
		}
		switch p := rng.Float64(); {
		case p < 0.35 || len(nodes) < 2:
			class, fields := "Host", Fields{"id": nextID}
			if rng.Intn(2) == 0 {
				class, fields = "VM", Fields{"id": nextID, "status": "Green"}
			}
			nextID++
			uid, err := st.InsertNode(class, fields)
			if err != nil {
				t.Fatalf("churn %d: insert: %v", i, err)
			}
			nodes = append(nodes, uid)
		case p < 0.55:
			uid, err := st.InsertEdge("ConnectsTo",
				nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))], Fields{"id": nextID})
			nextID++
			if err != nil {
				t.Fatalf("churn %d: insert edge: %v", i, err)
			}
			edges = append(edges, uid)
		case p < 0.80:
			uid := nodes[rng.Intn(len(nodes))]
			obj := st.Object(uid)
			fields := obj.Current().Fields.Clone()
			if obj.Class.Name == "VM" {
				fields["status"] = []string{"Green", "Yellow", "Red"}[rng.Intn(3)]
			}
			if err := st.Update(uid, fields); err != nil {
				t.Fatalf("churn %d: update: %v", i, err)
			}
		default:
			victim := nodes[rng.Intn(len(nodes))]
			if len(edges) > 0 && rng.Intn(2) == 0 {
				victim = edges[rng.Intn(len(edges))]
			}
			if err := st.Delete(victim); err != nil {
				t.Fatalf("churn %d: delete: %v", i, err)
			}
			nodes, edges = prune(nodes), prune(edges)
		}
	}
}

// TestHistoryChurnProperty is the persistence property test: under
// randomized mutation churn, WriteHistory -> LoadHistory reproduces an
// indistinguishable store — byte-identical re-serialization, equal
// counts and UID range, identical per-object version histories, and a
// clean invariant check.
func TestHistoryChurnProperty(t *testing.T) {
	seeds := []int64{1, 2, 3, 17, 1234}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		st, clock := newTestStore(t)
		churn(t, st, clock, seed, 300)

		var first bytes.Buffer
		if err := st.WriteHistory(&first); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		st2 := NewStore(testSchema(t), temporal.NewManualClock(t0))
		if err := st2.LoadHistory(bytes.NewReader(first.Bytes())); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		var second bytes.Buffer
		if err := st2.WriteHistory(&second); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("seed %d: reloaded store serializes differently", seed)
		}
		l1, v1 := st.Counts()
		l2, v2 := st2.Counts()
		if l1 != l2 || v1 != v2 {
			t.Fatalf("seed %d: counts (%d,%d) vs (%d,%d)", seed, l1, v1, l2, v2)
		}
		lo1, hi1 := st.UIDRange()
		lo2, hi2 := st2.UIDRange()
		if lo1 != lo2 || hi1 != hi2 {
			t.Fatalf("seed %d: uid range [%d,%d] vs [%d,%d]", seed, lo1, hi1, lo2, hi2)
		}
		if vs := st2.CheckInvariants(); len(vs) != 0 {
			t.Fatalf("seed %d: reloaded store violates invariants: %v", seed, vs)
		}

		// The reloaded store continues to accept the same churn stream.
		churn(t, st2, st2.Clock(), seed+1000, 50)
		if vs := st2.CheckInvariants(); len(vs) != 0 {
			t.Fatalf("seed %d: post-reload churn violates invariants: %v", seed, vs)
		}
	}
}

// TestPersistTypedErrors pins the error contract of the persistence
// layer: truncation, format mismatch, and non-empty-store refusal are
// distinguishable with errors.Is / errors.As.
func TestPersistTypedErrors(t *testing.T) {
	st, _ := buildHistoryFixture(t)
	var buf bytes.Buffer
	if err := st.WriteHistory(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	fresh := func() *Store { return NewStore(testSchema(t), temporal.NewManualClock(t0)) }

	// Truncation anywhere — inside the header or mid-object — is
	// ErrTruncated, so operators can tell a torn file from a corrupt one.
	for _, cut := range []int{0, 10, len(good) / 2, len(good) - 2} {
		err := fresh().LoadHistory(strings.NewReader(good[:cut]))
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}

	// A future or foreign format version surfaces as *FormatError.
	bad := strings.Replace(good, historyFormat, "nepal-history/99", 1)
	var fe *FormatError
	if err := fresh().LoadHistory(strings.NewReader(bad)); !errors.As(err, &fe) {
		t.Errorf("format mismatch err = %v, want *FormatError", err)
	} else if fe.Got != "nepal-history/99" || fe.Want != historyFormat {
		t.Errorf("FormatError = %+v", fe)
	}

	// Loading into a non-empty store is ErrStoreNotEmpty.
	dirty := fresh()
	if _, err := dirty.InsertNode("Host", Fields{"id": 5}); err != nil {
		t.Fatal(err)
	}
	if err := dirty.LoadHistory(strings.NewReader(good)); !errors.Is(err, ErrStoreNotEmpty) {
		t.Errorf("non-empty store err = %v, want ErrStoreNotEmpty", err)
	}

	// Trailing garbage after the declared object count is rejected.
	if err := fresh().LoadHistory(strings.NewReader(good + `{"uid":999}` + "\n")); err == nil {
		t.Error("trailing data accepted")
	}

	// ReadSnapshot distinguishes truncation the same way.
	if _, err := ReadSnapshot(strings.NewReader(`{"nodes":[{"class":"VM"`)); !errors.Is(err, ErrTruncated) {
		t.Errorf("snapshot truncation err = %v, want ErrTruncated", err)
	}
	if _, err := ReadSnapshot(strings.NewReader(`{"nodes":[]}{"nodes":[]}`)); err == nil {
		t.Error("snapshot trailing data accepted")
	}
}
