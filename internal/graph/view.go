package graph

import (
	"time"

	"repro/internal/temporal"
)

// View selects which temporal slice of a Store a query runs against.
//
// A point view (AT t, or the implicit "current snapshot") admits objects
// whose visible version at t satisfies the query. A range view
// (AT t1 : t2) admits objects that satisfy the query at some moment inside
// the window; per §4, the validity ranges reported for results are the
// *maximal* ranges in the database, which may extend beyond the window.
type View struct {
	store  *Store
	window temporal.Interval
	point  bool
	at     time.Time
}

// PointView returns a view of the database as of transaction time t.
func PointView(st *Store, t time.Time) View {
	return View{store: st, point: true, at: t, window: temporal.Between(t, t.Add(time.Nanosecond))}
}

// CurrentView returns a view of the current snapshot.
func CurrentView(st *Store) View { return PointView(st, st.Now()) }

// RangeView returns a view selecting over the window [t1, t2).
func RangeView(st *Store, t1, t2 time.Time) View {
	return View{store: st, window: temporal.Between(t1, t2)}
}

// Store returns the underlying store.
func (v View) Store() *Store { return v.store }

// IsPoint reports whether the view is a point (timeslice) view.
func (v View) IsPoint() bool { return v.point }

// At returns the timeslice instant of a point view.
func (v View) At() time.Time { return v.at }

// Window returns the selection window (for a point view, the degenerate
// nanosecond window at the instant).
func (v View) Window() temporal.Interval { return v.window }

// Pred tests one version's fields.
type Pred func(Fields) bool

// Match evaluates pred over the object's versions and returns the maximal
// (unclipped) periods during which the object existed and satisfied pred,
// restricted to versions that overlap the view's selection window... more
// precisely: ok is true when the returned set overlaps the window; the set
// itself contains all maximal match periods so that range queries report
// full assertion ranges as §4 requires.
func (v View) Match(obj *Object, pred Pred) (temporal.Set, bool) {
	if obj == nil {
		return nil, false
	}
	if v.point {
		ver := obj.VersionAt(v.at)
		if ver == nil || (pred != nil && !pred(ver.Fields)) {
			return nil, false
		}
		// Expand to the maximal contiguous match period around the instant
		// so that joins and result reporting see true assertion ranges.
		return v.maximalSet(obj, pred), true
	}
	set := v.maximalSet(obj, pred)
	if set.IsEmpty() {
		return nil, false
	}
	for _, iv := range set {
		if iv.Overlaps(v.window) {
			return set, true
		}
	}
	return nil, false
}

// maximalSet returns the normalized union of version periods where pred
// holds across the object's entire history.
func (v View) maximalSet(obj *Object, pred Pred) temporal.Set {
	set := make(temporal.Set, 0, len(obj.Versions))
	for i := range obj.Versions {
		ver := &obj.Versions[i]
		if pred == nil || pred(ver.Fields) {
			set = append(set, ver.Period)
		}
	}
	return set.Normalize()
}

// Visible reports whether the object exists anywhere in the view's window,
// regardless of field values. It is the allocation-free fast path the
// execution engines call per candidate element.
func (v View) Visible(obj *Object) bool {
	if v.point {
		return obj.VersionAt(v.at) != nil
	}
	for i := range obj.Versions {
		if obj.Versions[i].Period.Overlaps(v.window) {
			return true
		}
	}
	return false
}

// Satisfies reports whether the object satisfies pred at some instant the
// view admits: exactly at the point instant for point views, or during
// any version overlapping the window for range views. Like Visible it
// allocates nothing; Match is the variant that also reports the maximal
// periods.
func (v View) Satisfies(obj *Object, pred Pred) bool {
	if v.point {
		ver := obj.VersionAt(v.at)
		return ver != nil && (pred == nil || pred(ver.Fields))
	}
	for i := range obj.Versions {
		ver := &obj.Versions[i]
		if ver.Period.Overlaps(v.window) && (pred == nil || pred(ver.Fields)) {
			return true
		}
	}
	return false
}

// FieldsAt returns a representative field map for result rendering: the
// version at the point instant, or the latest version overlapping the
// window for a range view.
func (v View) FieldsAt(obj *Object) Fields {
	if v.point {
		if ver := obj.VersionAt(v.at); ver != nil {
			return ver.Fields
		}
		return nil
	}
	for i := len(obj.Versions) - 1; i >= 0; i-- {
		if obj.Versions[i].Period.Overlaps(v.window) {
			return obj.Versions[i].Fields
		}
	}
	return nil
}
