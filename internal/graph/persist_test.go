package graph

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/temporal"
)

// buildHistoryFixture creates a store with inserts, updates, deletes, and
// a migration so that the history stream carries every structural case.
func buildHistoryFixture(t *testing.T) (*Store, *temporal.Clock) {
	t.Helper()
	st, clock := newTestStore(t)
	vm1, _ := st.InsertNode("VM", Fields{"id": 1, "status": "Green"})
	vm2, _ := st.InsertNode("VM", Fields{"id": 2, "status": "Green"})
	h1, _ := st.InsertNode("Host", Fields{"id": 10})
	h2, _ := st.InsertNode("Host", Fields{"id": 11})
	e1, _ := st.InsertEdge("HostedOn", vm1, h1, Fields{"id": 100})
	_, _ = st.InsertEdge("HostedOn", vm2, h1, Fields{"id": 101})

	clock.Advance(time.Hour)
	_ = st.Update(vm1, Fields{"id": 1, "status": "Red"})
	clock.Advance(time.Hour)
	_ = st.Delete(e1)
	_, _ = st.InsertEdge("HostedOn", vm1, h2, Fields{"id": 102})
	clock.Advance(time.Hour)
	_ = st.Delete(vm2)
	return st, clock
}

func TestHistoryRoundTrip(t *testing.T) {
	st, _ := buildHistoryFixture(t)
	var buf bytes.Buffer
	if err := st.WriteHistory(&buf); err != nil {
		t.Fatal(err)
	}

	st2 := NewStore(testSchema(t), temporal.NewManualClock(t0))
	if err := st2.LoadHistory(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	// Counts match exactly.
	l1, v1 := st.Counts()
	l2, v2 := st2.Counts()
	if l1 != l2 || v1 != v2 {
		t.Fatalf("counts: (%d,%d) vs (%d,%d)", l1, v1, l2, v2)
	}

	// Every object's full version history survives.
	lo, hi := st.UIDRange()
	for uid := lo; uid < hi; uid++ {
		a, b := st.Object(uid), st2.Object(uid)
		if (a == nil) != (b == nil) {
			t.Fatalf("uid %d presence differs", uid)
		}
		if a == nil {
			continue
		}
		if a.Class.Name != b.Class.Name || a.Src != b.Src || a.Dst != b.Dst {
			t.Fatalf("uid %d identity differs", uid)
		}
		if len(a.Versions) != len(b.Versions) {
			t.Fatalf("uid %d versions %d vs %d", uid, len(a.Versions), len(b.Versions))
		}
		for i := range a.Versions {
			if !a.Versions[i].Period.Equal(b.Versions[i].Period) {
				t.Fatalf("uid %d version %d period differs", uid, i)
			}
			if !sameFields(a.Versions[i].Fields, b.Versions[i].Fields) {
				t.Fatalf("uid %d version %d fields differ", uid, i)
			}
		}
	}

	// Temporal queries behave identically: visibility at a mid-history
	// instant matches the original.
	mid := t0.Add(90 * time.Minute)
	for uid := lo; uid < hi; uid++ {
		a, b := st.Object(uid), st2.Object(uid)
		if a == nil {
			continue
		}
		av, bv := a.VersionAt(mid), b.VersionAt(mid)
		if (av == nil) != (bv == nil) {
			t.Fatalf("uid %d visibility at mid differs", uid)
		}
	}

	// Unique indexes rebuilt: live ids stay claimed, dead ids are free.
	if _, err := st2.InsertNode("VM", Fields{"id": 1}); err == nil {
		t.Fatal("live id re-claimable after restore")
	}
	if _, err := st2.InsertNode("VM", Fields{"id": 2}); err != nil {
		t.Fatalf("deleted id not released after restore: %v", err)
	}

	// Adjacency rebuilt; post-restore writes keep monotonic timestamps.
	vm1, _ := st2.LookupUnique("Node", "id", 1)
	if len(st2.OutEdges(vm1)) != 2 {
		t.Fatalf("restored adjacency = %d out edges, want 2", len(st2.OutEdges(vm1)))
	}
	if err := st2.Update(vm1, Fields{"id": 1, "status": "Blue"}); err != nil {
		t.Fatal(err)
	}
	obj := st2.Object(vm1)
	last := obj.Versions[len(obj.Versions)-1]
	prev := obj.Versions[len(obj.Versions)-2]
	if !last.Period.Start.After(prev.Period.Start) {
		t.Fatal("post-restore write broke timestamp monotonicity")
	}
}

func TestLoadHistoryValidation(t *testing.T) {
	st, _ := buildHistoryFixture(t)
	var buf bytes.Buffer
	if err := st.WriteHistory(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"garbage header":  "not json\n",
		"wrong format":    `{"format":"other/9","objects":0,"next_uid":1}` + "\n",
		"truncated":       good[:len(good)/2],
		"unknown class":   strings.Replace(good, `"class":"VM"`, `"class":"Blob"`, 1),
		"ill-typed field": strings.Replace(good, `"status":"Green"`, `"status":7`, 1),
	}
	for name, doc := range cases {
		st2 := NewStore(testSchema(t), temporal.NewManualClock(t0))
		if err := st2.LoadHistory(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Loading into a non-empty store is refused.
	st3 := NewStore(testSchema(t), temporal.NewManualClock(t0))
	if _, err := st3.InsertNode("Host", Fields{"id": 5}); err != nil {
		t.Fatal(err)
	}
	if err := st3.LoadHistory(strings.NewReader(good)); err == nil {
		t.Error("load into non-empty store accepted")
	}
}

// TestLoadHistoryAtomicOnFailure pins the staging contract: a load that
// fails partway (a snapshot download severed mid-stream) must leave the
// store exactly as it was — empty — so a retry with an intact stream
// succeeds instead of tripping ErrStoreNotEmpty on leftover state.
func TestLoadHistoryAtomicOnFailure(t *testing.T) {
	st, _ := buildHistoryFixture(t)
	var buf bytes.Buffer
	if err := st.WriteHistory(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	st2 := NewStore(testSchema(t), temporal.NewManualClock(t0))
	if err := st2.LoadHistory(bytes.NewReader(full[:len(full)-20])); err == nil {
		t.Fatal("truncated history load succeeded")
	}
	if live, versions := st2.Counts(); live != 0 || versions != 0 {
		t.Fatalf("failed load left state behind: live=%d versions=%d", live, versions)
	}
	if err := st2.LoadHistory(bytes.NewReader(full)); err != nil {
		t.Fatalf("retry after a failed load: %v", err)
	}
	l1, v1 := st.Counts()
	l2, v2 := st2.Counts()
	if l1 != l2 || v1 != v2 {
		t.Fatalf("counts after retried load: (%d,%d) vs (%d,%d)", l1, v1, l2, v2)
	}
}
