package graph

import (
	"fmt"

	"repro/internal/temporal"
)

// Violation is one breached store invariant found by CheckInvariants.
type Violation struct {
	// UID is the object the violation is anchored to (0 for store-wide
	// accounting violations).
	UID UID
	// Kind is a stable machine-readable category: "version-order",
	// "open-version", "endpoint", "edge-lifetime", "adjacency",
	// "unique-index", "uid-range", or "accounting".
	Kind string
	// Msg describes the violation.
	Msg string
}

func (v Violation) String() string {
	if v.UID == 0 {
		return fmt.Sprintf("[%s] %s", v.Kind, v.Msg)
	}
	return fmt.Sprintf("[%s] uid %d: %s", v.Kind, v.UID, v.Msg)
}

// CheckInvariants verifies the store's structural invariants and returns
// every violation found (nil for a healthy store). It is the shared
// checker behind `nepal -fsck` and the WAL crash-recovery tests:
//
//   - version histories are non-empty, ordered, non-overlapping, with no
//     empty periods and the open version (if any) final;
//   - every edge's endpoints exist, are nodes, and their lifetimes cover
//     the edge's lifetime;
//   - the adjacency indexes agree exactly with edge endpoints;
//   - the unique indexes hold exactly the live objects' unique values;
//   - every allocated UID lies below nextUID;
//   - live/version/per-class counters match the object table.
//
// The store is read-locked for the duration; the check is O(objects +
// versions + index entries).
func (st *Store) CheckInvariants() []Violation {
	st.mu.RLock()
	defer st.mu.RUnlock()

	var out []Violation
	add := func(uid UID, kind, format string, args ...any) {
		out = append(out, Violation{UID: uid, Kind: kind, Msg: fmt.Sprintf(format, args...)})
	}

	live, versions := 0, 0
	classCount := make(map[string]int)
	for uid, obj := range st.objects {
		if uid != obj.UID {
			add(uid, "uid-range", "object table key %d holds object with uid %d", uid, obj.UID)
		}
		if uid >= st.nextUID {
			add(uid, "uid-range", "uid at or above next_uid %d", st.nextUID)
		}
		versions += len(obj.Versions)
		if obj.Current() != nil {
			live++
			classCount[obj.Class.Name]++
		}
		out = append(out, checkVersions(obj)...)
		if obj.IsEdge() {
			out = append(out, st.checkEdge(obj)...)
		}
	}

	out = append(out, st.checkAdjacency()...)
	out = append(out, st.checkUnique()...)

	if live != st.liveCount {
		add(0, "accounting", "liveCount %d, but %d objects have a current version", st.liveCount, live)
	}
	if versions != st.versionCount {
		add(0, "accounting", "versionCount %d, but objects hold %d versions", st.versionCount, versions)
	}
	for class, n := range classCount {
		if st.classCount[class] != n {
			add(0, "accounting", "classCount[%s] %d, but %d live objects", class, st.classCount[class], n)
		}
	}
	for class, n := range st.classCount {
		if n != 0 && classCount[class] == 0 {
			add(0, "accounting", "classCount[%s] %d, but no live objects", class, n)
		}
	}
	return out
}

// checkVersions validates one object's version history ordering.
func checkVersions(obj *Object) []Violation {
	var out []Violation
	if len(obj.Versions) == 0 {
		return []Violation{{UID: obj.UID, Kind: "version-order", Msg: "object has no versions"}}
	}
	for i := range obj.Versions {
		v := &obj.Versions[i]
		if v.Period.IsEmpty() {
			out = append(out, Violation{UID: obj.UID, Kind: "version-order",
				Msg: fmt.Sprintf("version %d has empty period %v", i, v.Period)})
		}
		if v.Period.IsCurrent() && i != len(obj.Versions)-1 {
			out = append(out, Violation{UID: obj.UID, Kind: "open-version",
				Msg: fmt.Sprintf("non-final version %d is open", i)})
		}
		if i > 0 && obj.Versions[i-1].Period.End.After(v.Period.Start) {
			out = append(out, Violation{UID: obj.UID, Kind: "version-order",
				Msg: fmt.Sprintf("version %d starts before version %d ends", i, i-1)})
		}
	}
	return out
}

// checkEdge validates an edge's endpoints and temporal containment.
func (st *Store) checkEdge(obj *Object) []Violation {
	var out []Violation
	for _, end := range []UID{obj.Src, obj.Dst} {
		other := st.objects[end]
		if other == nil {
			out = append(out, Violation{UID: obj.UID, Kind: "endpoint",
				Msg: fmt.Sprintf("endpoint %d does not exist", end)})
			continue
		}
		if other.IsEdge() {
			out = append(out, Violation{UID: obj.UID, Kind: "endpoint",
				Msg: fmt.Sprintf("endpoint %d is an edge", end)})
			continue
		}
		if !covers(other.Lifetime(), obj.Lifetime()) {
			out = append(out, Violation{UID: obj.UID, Kind: "edge-lifetime",
				Msg: fmt.Sprintf("edge lifetime %v exceeds endpoint %d lifetime %v",
					obj.Lifetime(), end, other.Lifetime())})
		}
	}
	return out
}

// covers reports whether outer temporally contains inner.
func covers(outer, inner temporal.Set) bool {
	inner = inner.Normalize()
	clipped := inner.Intersect(outer)
	if len(clipped) != len(inner) {
		return false
	}
	for i := range inner {
		if !clipped[i].Equal(inner[i]) {
			return false
		}
	}
	return true
}

// checkAdjacency verifies that out/in index entries and edge endpoints
// agree in both directions.
func (st *Store) checkAdjacency() []Violation {
	var out []Violation
	seen := make(map[UID]int) // edge uid -> 1 (in out) | 2 (in in) | 3 (both)
	for node, edges := range st.out {
		for _, eid := range edges {
			e := st.objects[eid]
			if e == nil || !e.IsEdge() || e.Src != node {
				out = append(out, Violation{UID: eid, Kind: "adjacency",
					Msg: fmt.Sprintf("out[%d] lists uid %d which is not an edge from it", node, eid)})
				continue
			}
			seen[eid] |= 1
		}
	}
	for node, edges := range st.in {
		for _, eid := range edges {
			e := st.objects[eid]
			if e == nil || !e.IsEdge() || e.Dst != node {
				out = append(out, Violation{UID: eid, Kind: "adjacency",
					Msg: fmt.Sprintf("in[%d] lists uid %d which is not an edge into it", node, eid)})
				continue
			}
			seen[eid] |= 2
		}
	}
	for uid, obj := range st.objects {
		if !obj.IsEdge() {
			continue
		}
		if seen[uid]&1 == 0 {
			out = append(out, Violation{UID: uid, Kind: "adjacency",
				Msg: fmt.Sprintf("edge missing from out[%d]", obj.Src)})
		}
		if seen[uid]&2 == 0 {
			out = append(out, Violation{UID: uid, Kind: "adjacency",
				Msg: fmt.Sprintf("edge missing from in[%d]", obj.Dst)})
		}
	}
	return out
}

// checkUnique verifies the unique indexes against live objects: every
// index entry points at a live holder of the value, and every live
// object's unique values are indexed to it.
func (st *Store) checkUnique() []Violation {
	var out []Violation
	for key, entries := range st.unique {
		for vk, holder := range entries {
			obj := st.objects[holder]
			if obj == nil || obj.Current() == nil {
				out = append(out, Violation{UID: holder, Kind: "unique-index",
					Msg: fmt.Sprintf("%s.%s entry %q points at a dead object", key.class, key.field, vk)})
				continue
			}
			found := false
			st.eachUnique(obj.Class, obj.Current().Fields, func(k uniqueKey, v string) {
				if k == key && v == vk {
					found = true
				}
			})
			if !found {
				out = append(out, Violation{UID: holder, Kind: "unique-index",
					Msg: fmt.Sprintf("%s.%s entry %q not held by its owner", key.class, key.field, vk)})
			}
		}
	}
	for uid, obj := range st.objects {
		cur := obj.Current()
		if cur == nil {
			continue
		}
		st.eachUnique(obj.Class, cur.Fields, func(key uniqueKey, vk string) {
			if st.unique[key][vk] != uid {
				out = append(out, Violation{UID: uid, Kind: "unique-index",
					Msg: fmt.Sprintf("live value %q for %s.%s not indexed to owner", vk, key.class, key.field)})
			}
		})
	}
	return out
}
