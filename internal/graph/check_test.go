package graph

import (
	"strings"
	"testing"
	"time"

	"repro/internal/temporal"
)

// buildCheckedStore assembles a small healthy topology: two VMs on a
// host, one updated, one connection, one deleted VM.
func buildCheckedStore(t *testing.T) *Store {
	t.Helper()
	st, _ := newTestStore(t)
	vm1 := mustInsertNode(t, st, "VM", Fields{"id": 1, "status": "Green"})
	vm2 := mustInsertNode(t, st, "VM", Fields{"id": 2, "status": "Green"})
	host := mustInsertNode(t, st, "Host", Fields{"id": 10})
	mustInsertEdge(t, st, "HostedOn", vm1, host, Fields{"id": 100})
	mustInsertEdge(t, st, "HostedOn", vm2, host, Fields{"id": 101})
	mustInsertEdge(t, st, "ConnectsTo", vm1, vm2, Fields{"id": 102})
	if err := st.Update(vm1, Fields{"id": 1, "status": "Red"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(vm2); err != nil {
		t.Fatal(err)
	}
	return st
}

func mustInsertNode(t *testing.T, st *Store, class string, f Fields) UID {
	t.Helper()
	uid, err := st.InsertNode(class, f)
	if err != nil {
		t.Fatal(err)
	}
	return uid
}

func mustInsertEdge(t *testing.T, st *Store, class string, src, dst UID, f Fields) UID {
	t.Helper()
	uid, err := st.InsertEdge(class, src, dst, f)
	if err != nil {
		t.Fatal(err)
	}
	return uid
}

func TestCheckInvariantsHealthy(t *testing.T) {
	if vs := buildCheckedStore(t).CheckInvariants(); len(vs) != 0 {
		t.Fatalf("healthy store reported violations: %v", vs)
	}
	empty, _ := newTestStore(t)
	if vs := empty.CheckInvariants(); len(vs) != 0 {
		t.Fatalf("empty store reported violations: %v", vs)
	}
}

// TestCheckInvariantsDetectsCorruption corrupts the store's internals one
// invariant at a time and asserts the checker names each breach.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		kind    string
		corrupt func(t *testing.T, st *Store)
	}{
		{"uid above next_uid", "uid-range", func(t *testing.T, st *Store) {
			st.nextUID = 2
		}},
		{"object table key mismatch", "uid-range", func(t *testing.T, st *Store) {
			obj := st.objects[1]
			st.objects[99] = obj
			st.nextUID = 200
			// Key 99 now holds the object whose UID field says 1.
		}},
		{"empty version period", "version-order", func(t *testing.T, st *Store) {
			v := &st.objects[1].Versions[0]
			v.Period.End = v.Period.Start
		}},
		{"overlapping versions", "version-order", func(t *testing.T, st *Store) {
			obj := st.objects[1] // vm1: updated, two versions
			if len(obj.Versions) < 2 {
				t.Fatal("fixture changed: vm1 needs two versions")
			}
			obj.Versions[1].Period.Start = obj.Versions[0].Period.Start
		}},
		{"non-final open version", "open-version", func(t *testing.T, st *Store) {
			obj := st.objects[1]
			obj.Versions[0].Period.End = temporal.Forever
		}},
		{"edge endpoint missing", "endpoint", func(t *testing.T, st *Store) {
			delete(st.objects, 3) // the host, endpoint of two HostedOn edges
		}},
		{"edge outlives endpoint", "edge-lifetime", func(t *testing.T, st *Store) {
			// Shrink the host's lifetime to end before its edges do.
			obj := st.objects[3]
			obj.Versions[0].Period.End = obj.Versions[0].Period.Start.Add(time.Nanosecond)
		}},
		{"adjacency entry dropped", "adjacency", func(t *testing.T, st *Store) {
			st.out[1] = nil // vm1 no longer lists its outgoing edges
		}},
		{"adjacency entry forged", "adjacency", func(t *testing.T, st *Store) {
			st.in[1] = append(st.in[1], 4) // edge 4's Dst is the host, not vm1
		}},
		{"unique entry points at dead object", "unique-index", func(t *testing.T, st *Store) {
			for key, entries := range st.unique {
				for vk, holder := range entries {
					obj := st.objects[holder]
					cur := obj.Current()
					cur.Period.End = cur.Period.Start.Add(time.Nanosecond)
					_ = key
					_ = vk
					return
				}
			}
			t.Fatal("no unique entries to corrupt")
		}},
		{"live value unindexed", "unique-index", func(t *testing.T, st *Store) {
			for key, entries := range st.unique {
				for vk := range entries {
					delete(entries, vk)
					_ = key
					return
				}
			}
			t.Fatal("no unique entries to corrupt")
		}},
		{"accounting drift", "accounting", func(t *testing.T, st *Store) {
			st.liveCount += 3
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := buildCheckedStore(t)
			tc.corrupt(t, st)
			vs := st.CheckInvariants()
			if len(vs) == 0 {
				t.Fatalf("corruption went undetected")
			}
			found := false
			for _, v := range vs {
				if v.Kind == tc.kind {
					found = true
				}
				if v.String() == "" {
					t.Error("violation renders empty")
				}
			}
			if !found {
				t.Errorf("no %q violation among: %v", tc.kind, vs)
			}
		})
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{UID: 7, Kind: "endpoint", Msg: "endpoint 9 does not exist"}
	if s := v.String(); !strings.Contains(s, "uid 7") || !strings.Contains(s, "endpoint") {
		t.Errorf("String() = %q", s)
	}
	storeWide := Violation{Kind: "accounting", Msg: "drift"}
	if s := storeWide.String(); strings.Contains(s, "uid") {
		t.Errorf("store-wide violation mentions a uid: %q", s)
	}
}
