// Package graph implements Nepal's native temporal graph store: versioned
// nodes and edges stamped with transaction-time sys_period intervals,
// adjacency and class indexes, snapshot-at-time views, an update-by-snapshot
// diff service, and the storage accounting behind the paper's history
// overhead experiment.
//
// The store is the "graph data management layer" of §3.1: it translates
// inserts, updates, and deletes into versioned records, exactly as the
// temporal_tables Postgres extension keeps a current table plus a history
// table per class. Both query backends (internal/gremlin and
// internal/relational) execute over a *Store.
package graph

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/schema"
	"repro/internal/temporal"
)

// UID identifies a node or edge for its entire lifetime, across versions.
// Node and edge UIDs are drawn from the same sequence, so a pathway's
// uid_list is unambiguous.
type UID int64

// Fields is one version's attribute map. Values follow the schema type
// system (string, int64/int, float64, bool, []any, map[string]any).
type Fields map[string]any

// Clone copies the map one level deep; nested containers are treated as
// immutable once stored.
func (f Fields) Clone() Fields {
	out := make(Fields, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// Version is one temporal version of an object: the field values that held
// during Period.
type Version struct {
	Fields Fields
	Period temporal.Interval
}

// Object is a node or edge with its full version history. Versions are
// ordered by period start and non-overlapping; the last one is open
// (IsCurrent) unless the object has been deleted.
type Object struct {
	UID   UID
	Class *schema.Class
	// Src and Dst are the endpoint node UIDs; meaningful for edges only.
	// Endpoints are immutable: rewiring an edge is a delete plus an insert.
	Src, Dst UID
	Versions []Version
}

// IsEdge reports whether the object is an edge.
func (o *Object) IsEdge() bool { return o.Class.IsEdge() }

// Current returns the open version, or nil when the object is deleted.
func (o *Object) Current() *Version {
	if len(o.Versions) == 0 {
		return nil
	}
	v := &o.Versions[len(o.Versions)-1]
	if v.Period.IsCurrent() {
		return v
	}
	return nil
}

// VersionAt returns the version visible at time t, or nil.
func (o *Object) VersionAt(t time.Time) *Version {
	// Versions are few per object; linear scan from the end is fastest for
	// the common "current or near-current" case.
	for i := len(o.Versions) - 1; i >= 0; i-- {
		if o.Versions[i].Period.Contains(t) {
			return &o.Versions[i]
		}
		if o.Versions[i].Period.End.Before(t) {
			return nil
		}
	}
	return nil
}

// Lifetime returns the normalized set of periods during which the object
// existed (across all versions, regardless of field changes).
func (o *Object) Lifetime() temporal.Set {
	s := make(temporal.Set, len(o.Versions))
	for i, v := range o.Versions {
		s[i] = v.Period
	}
	return s.Normalize()
}

// Store is the temporal graph store. All methods are safe for concurrent
// use; reads proceed under a shared lock.
type Store struct {
	mu     sync.RWMutex
	schema *schema.Schema
	clock  *temporal.Clock

	objects map[UID]*Object
	nextUID UID

	// out and in map a node UID to the UIDs of its outgoing/incoming edges
	// (all classes, all times; visibility is filtered temporally at read).
	out map[UID][]UID
	in  map[UID][]UID

	// byClass maps a concrete class name to the UIDs of its objects.
	byClass map[string][]UID

	// unique indexes enforce schema Unique fields: for each declaring class
	// and field, valueKey -> owning UID among currently-live objects.
	unique map[uniqueKey]map[string]UID

	// classCount tracks live objects per concrete class (statistics for the
	// anchor cost model).
	classCount map[string]int
	// versionCount counts all versions ever stored (storage accounting).
	versionCount int
	liveCount    int

	// obs holds the optional metrics sink (see SetRegistry); read with a
	// single atomic load on the probe paths.
	obs atomic.Pointer[storeObs]

	// hook, when non-nil, observes each mutation after validation and
	// before application, under the write lock (see SetMutationHook).
	hook MutationHook
}

type uniqueKey struct {
	class string // class that declares the unique field
	field string
}

// NewStore returns an empty store over a finalized schema. A nil clock
// uses the wall clock; tests pass a manual clock for determinism.
func NewStore(s *schema.Schema, clock *temporal.Clock) *Store {
	if clock == nil {
		clock = &temporal.Clock{}
	}
	return &Store{
		schema:     s,
		clock:      clock,
		objects:    make(map[UID]*Object),
		out:        make(map[UID][]UID),
		in:         make(map[UID][]UID),
		byClass:    make(map[string][]UID),
		unique:     make(map[uniqueKey]map[string]UID),
		classCount: make(map[string]int),
		nextUID:    1,
	}
}

// Schema returns the store's schema.
func (st *Store) Schema() *schema.Schema { return st.schema }

// Clock returns the store's transaction clock.
func (st *Store) Clock() *temporal.Clock { return st.clock }

// Now reports the store's current transaction time.
func (st *Store) Now() time.Time { return st.clock.Now() }

// CommittedClock returns a replication-safe coverage watermark: every
// mutation stamped at or before the returned time has fully committed
// (its hook — WAL durability — ran and it is visible in memory), and
// every future mutation will be stamped strictly after it. It takes the
// read lock to exclude in-flight writers, then fences the clock; the
// replication source stamps feed batches with it so a follower that has
// replayed the log through the capture point can adopt it as its
// applied-through timestamp without missing a concurrent commit.
func (st *Store) CommittedClock() time.Time {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.clock.Fence()
}

// InsertNode validates and inserts a node record, returning its UID.
func (st *Store) InsertNode(class string, fields Fields) (UID, error) {
	return st.insert(context.Background(), class, 0, 0, fields, schema.NodeKind)
}

// InsertNodeCtx is InsertNode with a caller context; the context reaches
// the mutation hook so durability work is attributed to the request.
func (st *Store) InsertNodeCtx(ctx context.Context, class string, fields Fields) (UID, error) {
	return st.insert(ctx, class, 0, 0, fields, schema.NodeKind)
}

// InsertEdge validates and inserts an edge from src to dst. The edge class
// must permit the connection under the schema's allowed-edge rules, and
// both endpoints must be live.
func (st *Store) InsertEdge(class string, src, dst UID, fields Fields) (UID, error) {
	return st.insert(context.Background(), class, src, dst, fields, schema.EdgeKind)
}

// InsertEdgeCtx is InsertEdge with a caller context.
func (st *Store) InsertEdgeCtx(ctx context.Context, class string, src, dst UID, fields Fields) (UID, error) {
	return st.insert(ctx, class, src, dst, fields, schema.EdgeKind)
}

func (st *Store) insert(ctx context.Context, class string, src, dst UID, fields Fields, kind schema.Kind) (UID, error) {
	if err := st.schema.ValidateRecord(class, fields); err != nil {
		return 0, err
	}
	c, _ := st.schema.Class(class)
	if c.Kind != kind {
		return 0, fmt.Errorf("graph: class %q is a %s class", class, c.Kind)
	}

	st.mu.Lock()
	defer st.mu.Unlock()

	if kind == schema.EdgeKind {
		srcObj, dstObj := st.objects[src], st.objects[dst]
		if srcObj == nil || srcObj.Current() == nil || srcObj.IsEdge() {
			return 0, fmt.Errorf("graph: edge %s source %d is not a live node", class, src)
		}
		if dstObj == nil || dstObj.Current() == nil || dstObj.IsEdge() {
			return 0, fmt.Errorf("graph: edge %s target %d is not a live node", class, dst)
		}
		if !st.schema.EdgeAllowed(c, srcObj.Class, dstObj.Class) {
			return 0, fmt.Errorf("graph: schema permits no %s edge from %s to %s",
				class, srcObj.Class, dstObj.Class)
		}
	}

	if err := st.claimUnique(c, fields, 0); err != nil {
		return 0, err
	}

	uid := st.nextUID
	ts := st.clock.Next()
	op := OpInsertNode
	if kind == schema.EdgeKind {
		op = OpInsertEdge
	}
	if err := st.logMutation(ctx, &Mutation{Op: op, UID: uid, Class: class, Src: src, Dst: dst, Fields: fields, At: ts}); err != nil {
		return 0, err
	}
	st.installLocked(c, uid, src, dst, fields, ts)
	return uid, nil
}

// logMutation runs the hook, if any; a hook error aborts the mutation
// before anything is applied.
func (st *Store) logMutation(ctx context.Context, m *Mutation) error {
	if st.hook == nil {
		return nil
	}
	if err := st.hook(ctx, m); err != nil {
		return fmt.Errorf("graph: mutation rejected by log: %w", err)
	}
	return nil
}

// installLocked installs a fully validated object at a fixed timestamp.
// It is the shared tail of the live insert path and log replay.
func (st *Store) installLocked(c *schema.Class, uid UID, src, dst UID, fields Fields, ts time.Time) {
	obj := &Object{
		UID:      uid,
		Class:    c,
		Src:      src,
		Dst:      dst,
		Versions: []Version{{Fields: fields.Clone(), Period: temporal.Current(ts)}},
	}
	st.objects[uid] = obj
	st.byClass[c.Name] = append(st.byClass[c.Name], uid)
	st.classCount[c.Name]++
	st.versionCount++
	st.liveCount++
	st.recordUnique(c, fields, uid)
	if c.IsEdge() {
		st.out[src] = append(st.out[src], uid)
		st.in[dst] = append(st.in[dst], uid)
	}
	if uid >= st.nextUID {
		st.nextUID = uid + 1
	}
}

// Update closes the object's current version and opens a new one with the
// supplied full field map (Nepal's sources supply complete records, not
// patches). Updating a deleted object is an error.
func (st *Store) Update(uid UID, fields Fields) error {
	return st.UpdateCtx(context.Background(), uid, fields)
}

// UpdateCtx is Update with a caller context.
func (st *Store) UpdateCtx(ctx context.Context, uid UID, fields Fields) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	obj := st.objects[uid]
	if obj == nil {
		return fmt.Errorf("graph: update of unknown uid %d", uid)
	}
	cur := obj.Current()
	if cur == nil {
		return fmt.Errorf("graph: update of deleted object %d", uid)
	}
	if err := st.schema.ValidateRecord(obj.Class.Name, fields); err != nil {
		return err
	}
	if err := st.claimUnique(obj.Class, fields, uid); err != nil {
		return err
	}
	t := st.clock.Next()
	if err := st.logMutation(ctx, &Mutation{Op: OpUpdate, UID: uid, Fields: fields, At: t}); err != nil {
		return err
	}
	st.updateLocked(obj, cur, fields, t)
	return nil
}

// updateLocked closes cur and opens a new version at a fixed timestamp.
// Shared by the live update path and log replay.
func (st *Store) updateLocked(obj *Object, cur *Version, fields Fields, t time.Time) {
	st.releaseUnique(obj.Class, cur.Fields, obj.UID)
	st.recordUnique(obj.Class, fields, obj.UID)
	cur.Period.End = t
	obj.Versions = append(obj.Versions, Version{Fields: fields.Clone(), Period: temporal.Current(t)})
	st.versionCount++
}

// Delete closes the object's current version. Deleting a node also deletes
// its live incident edges, mirroring referential integrity in the
// relational mapping. Deleting a deleted object is a no-op.
func (st *Store) Delete(uid UID) error {
	return st.DeleteCtx(context.Background(), uid)
}

// DeleteCtx is Delete with a caller context.
func (st *Store) DeleteCtx(ctx context.Context, uid UID) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.deleteLocked(ctx, uid)
}

func (st *Store) deleteLocked(ctx context.Context, uid UID) error {
	obj := st.objects[uid]
	if obj == nil {
		return fmt.Errorf("graph: delete of unknown uid %d", uid)
	}
	cur := obj.Current()
	if cur == nil {
		return nil
	}
	t := st.clock.Next()
	if err := st.logMutation(ctx, &Mutation{Op: OpDelete, UID: uid, At: t}); err != nil {
		return err
	}
	st.deleteAtLocked(obj, cur, t)
	return nil
}

// deleteAtLocked closes the object — and, for a node, its live incident
// edges — at one shared timestamp t, so the whole cascade is a single
// atomic transaction-time event that log replay reproduces exactly.
func (st *Store) deleteAtLocked(obj *Object, cur *Version, t time.Time) {
	if !obj.IsEdge() {
		for _, eid := range st.out[obj.UID] {
			st.closeIfLive(eid, t)
		}
		for _, eid := range st.in[obj.UID] {
			st.closeIfLive(eid, t)
		}
	}
	st.closeObject(obj, cur, t)
}

func (st *Store) closeIfLive(uid UID, t time.Time) {
	if obj := st.objects[uid]; obj != nil {
		if cur := obj.Current(); cur != nil {
			st.closeObject(obj, cur, t)
		}
	}
}

func (st *Store) closeObject(obj *Object, cur *Version, t time.Time) {
	cur.Period.End = t
	st.releaseUnique(obj.Class, cur.Fields, obj.UID)
	st.classCount[obj.Class.Name]--
	st.liveCount--
}

// claimUnique verifies no other live object holds the unique field values
// in fields; self may already hold them (updates).
func (st *Store) claimUnique(c *schema.Class, fields Fields, self UID) error {
	for cur := c; cur != nil; cur = cur.Parent {
		for _, f := range cur.OwnFields {
			if !f.Unique {
				continue
			}
			v, ok := fields[f.Name]
			if !ok {
				continue
			}
			key := uniqueKey{class: cur.Name, field: f.Name}
			if held, exists := st.unique[key][valueKey(v)]; exists && held != self {
				return fmt.Errorf("graph: duplicate value %v for unique field %s.%s (held by uid %d)",
					v, cur.Name, f.Name, held)
			}
		}
	}
	return nil
}

func (st *Store) recordUnique(c *schema.Class, fields Fields, uid UID) {
	st.eachUnique(c, fields, func(key uniqueKey, vk string) {
		m := st.unique[key]
		if m == nil {
			m = make(map[string]UID)
			st.unique[key] = m
		}
		m[vk] = uid
	})
}

func (st *Store) releaseUnique(c *schema.Class, fields Fields, uid UID) {
	st.eachUnique(c, fields, func(key uniqueKey, vk string) {
		if m := st.unique[key]; m != nil && m[vk] == uid {
			delete(m, vk)
		}
	})
}

func (st *Store) eachUnique(c *schema.Class, fields Fields, fn func(uniqueKey, string)) {
	for cur := c; cur != nil; cur = cur.Parent {
		for _, f := range cur.OwnFields {
			if !f.Unique {
				continue
			}
			if v, ok := fields[f.Name]; ok {
				fn(uniqueKey{class: cur.Name, field: f.Name}, valueKey(v))
			}
		}
	}
}

// valueKey canonicalizes a field value for index keys: all integer-valued
// numerics collapse to the same key so that 5, int64(5) and 5.0 collide.
func valueKey(v any) string {
	switch n := v.(type) {
	case int:
		return fmt.Sprintf("i%d", int64(n))
	case int32:
		return fmt.Sprintf("i%d", int64(n))
	case int64:
		return fmt.Sprintf("i%d", n)
	case float64:
		if n == float64(int64(n)) {
			return fmt.Sprintf("i%d", int64(n))
		}
		return fmt.Sprintf("f%g", n)
	case string:
		return "s" + n
	case bool:
		return fmt.Sprintf("b%t", n)
	}
	return fmt.Sprintf("v%v", v)
}

// Object returns the object with the given UID, or nil.
func (st *Store) Object(uid UID) *Object {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.objects[uid]
}

// OutEdges returns the UIDs of all edges ever attached outgoing from the
// node (temporal filtering is the caller's concern). The returned slice
// must not be modified.
func (st *Store) OutEdges(node UID) []UID {
	if o := st.obs.Load(); o != nil {
		o.adjProbes.Add(1)
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.out[node]
}

// InEdges returns the UIDs of all edges ever attached incoming to the node.
func (st *Store) InEdges(node UID) []UID {
	if o := st.obs.Load(); o != nil {
		o.adjProbes.Add(1)
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.in[node]
}

// ByClass returns the UIDs of all objects whose concrete class is exactly
// name. The returned slice must not be modified.
func (st *Store) ByClass(name string) []UID {
	if o := st.obs.Load(); o != nil {
		o.classScans.Add(1)
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.byClass[name]
}

// BySubtree returns the UIDs of all objects of class c or any subclass.
func (st *Store) BySubtree(c *schema.Class) []UID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []UID
	for _, name := range c.SubtreeNames() {
		out = append(out, st.byClass[name]...)
	}
	return out
}

// LookupUnique resolves a unique field value to its live owner. The class
// must be the one declaring the unique field (e.g. Node for id).
func (st *Store) LookupUnique(class, field string, value any) (UID, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	uid, ok := st.unique[uniqueKey{class: class, field: field}][valueKey(value)]
	return uid, ok
}

// Stats returns live per-class record counts for the planner's cost model.
func (st *Store) Stats() *schema.Stats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	counts := make(map[string]int, len(st.classCount))
	for k, v := range st.classCount {
		counts[k] = v
	}
	return &schema.Stats{ClassCount: counts}
}

// Counts reports the number of live objects and total stored versions —
// the inputs to the history-overhead experiment (§6: 60 days of history
// cost 6%/16% extra versions versus ~5,900% for 60 full copies).
func (st *Store) Counts() (live, versions int) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.liveCount, st.versionCount
}

// UIDRange reports the half-open range of UIDs ever allocated, for
// iteration by backends building derived indexes.
func (st *Store) UIDRange() (lo, hi UID) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return 1, st.nextUID
}
