package graph

import (
	"time"

	"repro/internal/obs"
)

// storeObs caches the store's registry metrics so that instrumented reads
// cost one atomic pointer load plus an atomic add. The pointer lives in
// Store.obs; a nil pointer (the default) disables recording entirely.
type storeObs struct {
	adjProbes   *obs.Counter
	classScans  *obs.Counter
	snapshots   *obs.Counter
	snapshotMS  *obs.Histogram
	liveObjects *obs.Gauge
	versions    *obs.Gauge
}

// SetRegistry attaches a metrics registry to the store: adjacency probes
// (the physical reads behind the Extend operator), class-index scans (the
// reads behind Select), and update-by-snapshot reconciliations are then
// counted under "store.*" names. A nil registry detaches.
func (st *Store) SetRegistry(r *obs.Registry) {
	if r == nil {
		st.obs.Store(nil)
		return
	}
	o := &storeObs{
		adjProbes:   r.Counter("store.adjacency_probes"),
		classScans:  r.Counter("store.class_scans"),
		snapshots:   r.Counter("store.snapshots_applied"),
		snapshotMS:  r.Histogram("store.snapshot_apply_ms"),
		liveObjects: r.Gauge("store.live_objects"),
		versions:    r.Gauge("store.versions"),
	}
	st.obs.Store(o)
	st.syncGauges(o)
}

// syncGauges refreshes the store-size gauges from current counts.
func (st *Store) syncGauges(o *storeObs) {
	if o == nil {
		return
	}
	live, versions := st.Counts()
	o.liveObjects.Set(int64(live))
	o.versions.Set(int64(versions))
}

// recordSnapshot folds one ApplySnapshot run into the registry.
func (st *Store) recordSnapshot(d time.Duration) {
	o := st.obs.Load()
	if o == nil {
		return
	}
	o.snapshots.Add(1)
	o.snapshotMS.Observe(float64(d) / 1e6)
	st.syncGauges(o)
}
