package codegen

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/netmodel"
	"repro/internal/plan"
	"repro/internal/rpe"
	"repro/internal/temporal"
	"time"
)

func testPlan(t *testing.T, src string) *plan.Plan {
	t.Helper()
	sch := netmodel.MustSchema()
	clock := temporal.NewManualClock(time.Date(2017, 2, 15, 0, 0, 0, 0, time.UTC))
	st := graph.NewStore(sch, clock)
	if _, err := netmodel.BuildDemo(st, 1000); err != nil {
		t.Fatal(err)
	}
	c, err := rpe.CheckString(src, sch)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(c, st.Stats())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSQLGeneration(t *testing.T) {
	p := testPlan(t, "VNF()->[Vertical()]{1,6}->Host(id=1001)")
	sql := SQL(p, "2017-02-15 10:00:00")
	for _, want := range []string{
		"CREATE TEMP TABLE tmp_select",
		"Host__historical",
		"id_ = 1001",
		"sys_period @> '2017-02-15 10:00:00'::timestamptz",
		"NOT (H.id_ = ANY(T.uid_list))", // §5.2's cycle predicate
		"ExtendBlock {1,6}",
		"H.target_id_ = T.curr_uid", // backward extend from the anchor
		"uid_list",
		"concept_list",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
	// Snapshot query omits the temporal predicate.
	if strings.Contains(SQL(p, ""), "sys_period") {
		t.Error("snapshot SQL must not carry sys_period predicates")
	}
}

func TestSQLPredicateRendering(t *testing.T) {
	p := testPlan(t, "VM(status=~'Gr*', id IN (1, 2), flavor!='m1')->OnServer()->Host(id=1001)")
	sql := SQL(p, "")
	for _, want := range []string{
		"status_ LIKE 'Gr%'",
		"id_ IN (1, 2)",
		"flavor_ <> 'm1'",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestGremlinGeneration(t *testing.T) {
	p := testPlan(t, "VNF()->[Vertical()]{1,6}->Host(id=1001)")
	g := Gremlin(p)
	for _, want := range []string{
		"g.V()",
		"labelPrefix('Node:Host')",     // inheritance-path labels
		".has('id', 1001)",             // anchor predicate
		"labelPrefix('Edge:Vertical')", // prefix matching for subclasses
		"repeat(",
		".path()",
	} {
		if !strings.Contains(g, want) {
			t.Errorf("Gremlin missing %q:\n%s", want, g)
		}
	}
}

func TestGremlinEdgeAnchor(t *testing.T) {
	p := testPlan(t, "OnServer(id=1033)")
	g := Gremlin(p)
	if !strings.Contains(g, "g.E()") {
		t.Errorf("edge anchor must start at g.E():\n%s", g)
	}
}

func TestScriptGeneration(t *testing.T) {
	p := testPlan(t, "VNF()->[Vertical()]{1,6}->Host(id=1001)")
	s := Script(p, "postgres")
	for _, want := range []string{"channel()", "SELECT_anchor", "EXTEND_1", "collect("} {
		if !strings.Contains(s, want) {
			t.Errorf("script missing %q:\n%s", want, s)
		}
	}
}

func TestDDLGeneration(t *testing.T) {
	ddl := DDL(netmodel.MustSchema())
	for _, want := range []string{
		"CREATE TABLE Node (",
		"CREATE TABLE VM (", // concrete class
		"INHERITS (Container)",
		"CREATE TABLE VM__history () INHERITS (VM);",
		"CREATE VIEW VM__historical",
		"source_id_ BIGINT", // edges carry endpoints
		"nepal_uids",        // the uniqueness table
		"sys_period tstzrange",
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL missing %q", want)
		}
	}
}

func TestSQLStructuredPathPredicate(t *testing.T) {
	p := testPlan(t, "VirtualRouter(routingTable.address='10.0.0.0')->VirtualLink()->TenantNet(id=1009)")
	sql := SQL(p, "")
	if !strings.Contains(sql, `jsonb_path_exists(routingTable_, '$[*].address ? (@ == "10.0.0.0")')`) {
		t.Errorf("SQL missing jsonb path predicate:\n%s", sql)
	}
}
