package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/wal"
)

// FollowerConfig tunes one replication link. The zero value (plus a
// primary URL) follows with the defaults documented per field.
type FollowerConfig struct {
	// Primary is the primary server's base URL, e.g. "http://10.0.0.1:7474".
	Primary string
	// HTTPClient issues the feed requests; nil uses a private client with
	// no overall timeout (long-polls are bounded per request).
	HTTPClient *http.Client
	// PollWait is the long-poll hold the follower asks the primary for;
	// 0 means 20s.
	PollWait time.Duration
	// MaxBatchBytes is the per-batch cap the follower requests; 0 defers
	// to the primary's cap.
	MaxBatchBytes int
	// ReconnectMin/ReconnectMax bound the jittered exponential backoff
	// between failed feed requests; 0 means 50ms / 3s.
	ReconnectMin, ReconnectMax time.Duration
	// Logf receives one line per state transition (connect, sever,
	// bootstrap, promote); nil discards.
	Logf func(format string, args ...any)
	// OnApplied, when non-nil, observes every replicated mutation the
	// moment it is applied to the local store, with its global stream
	// index, in apply order. It runs on the pull loop — keep it cheap and
	// never let it block (the watch subsystem's replica feed enqueues into
	// a bounded ring here). Snapshot bootstraps jump the applied position
	// without per-record callbacks; observers must treat a non-contiguous
	// index as a gap.
	OnApplied func(index uint64, m *graph.Mutation)
	// Resume seeds the link with a previous link's stream state (see
	// StreamState), so a follower repointed at a new primary — typically
	// the sibling that won a failover — keeps its pinned log identity,
	// epoch, position, and prefix hash instead of starting as a blank
	// link over a non-empty store. nil starts fresh at position 0.
	Resume *StreamState
}

// StreamState is the resumable identity of a replication link: enough
// for a new Follower over the same store to continue exactly where this
// one stood, including the lineage checks. Captured with
// (*Follower).StreamState after Stop.
type StreamState struct {
	// LogID is the pinned primary log identity ("" before first contact).
	LogID string
	// Applied is the next stream index the link will request.
	Applied uint64
	// Epoch is the pinned primary epoch (0 before first contact with an
	// epoch-stamping primary).
	Epoch uint64
	// Hash is the chained prefix hash at Applied; HashKnown reports
	// whether the link ever learned it (it is seeded for links that
	// started at position 0 and adopted from snapshot bootstraps).
	Hash      uint64
	HashKnown bool
	// AppliedThrough is the staleness watermark at capture time.
	AppliedThrough time.Time
}

// Status is a point-in-time snapshot of a replication link, exposed via
// /readyz on replica servers.
type Status struct {
	// Applied is the next stream index the follower will request — the
	// count of records it has applied.
	Applied uint64
	// AppliedThrough is the staleness watermark: every primary mutation
	// at or before this timestamp is reflected in the local store.
	AppliedThrough time.Time
	// PrimaryNext is the primary's stream end as of the last contact.
	PrimaryNext uint64
	// LagRecords is max(PrimaryNext-Applied, 0) as of the last contact.
	LagRecords uint64
	// CaughtUp reports that the last poll found nothing to ship.
	CaughtUp bool
	// Promoted reports this node has been promoted to primary.
	Promoted bool
	// Reconnects counts feed requests that failed and were retried.
	Reconnects uint64
	// Bootstraps counts full snapshot loads (0 after a mere stream sever:
	// reconnecting resumes from Applied).
	Bootstraps uint64
	// LastContact is the local wall-clock time of the last successful
	// exchange with the primary (zero before the first).
	LastContact time.Time
	// LastError is the most recent feed failure ("" when healthy).
	LastError string
	// Epoch is the primary epoch this link is pinned to — after Promote,
	// the new epoch this node took the log over at.
	Epoch uint64
	// Diverged reports the link parked with ErrDiverged: the primary's
	// history and the locally applied history forked, and the replica
	// must be rebuilt rather than resumed.
	Diverged bool
}

// Follower replicates a primary's WAL into a local store. Create with
// NewFollower, start the pull loop with Start, and serve reads from the
// store at the staleness bounds Status/WaitUntil expose. A follower is
// promoted to primary with Promote.
type Follower struct {
	st  *graph.Store
	mgr *wal.Manager // optional local WAL; used to make promotion durable
	cfg FollowerConfig
	hc  *http.Client

	mu          sync.Mutex
	logID       string // primary log identity, pinned on first contact
	applied     uint64
	watermark   time.Time
	primaryNext uint64
	caughtUp    bool
	promoted    bool
	lastErr     error
	lastContact time.Time
	reconnects  uint64
	bootstraps  uint64
	// epoch is the pinned primary epoch; hash is the chained prefix hash
	// at applied (meaningful only when hashKnown — a link that started at
	// position 0 knows it from the seed, a bootstrap adopts it from the
	// snapshot). diverged latches when the link parks on a forked stream.
	epoch     uint64
	hash      uint64
	hashKnown bool
	diverged  bool
	changed   chan struct{} // closed+replaced whenever the watermark advances
	onApplied func(index uint64, m *graph.Mutation)

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}

	mBatches    *obs.Counter
	mRecords    *obs.Counter
	mBytes      *obs.Counter
	mReconnects *obs.Counter
	mBootstraps *obs.Counter
	mDiverged   *obs.Counter
}

// NewFollower returns an unstarted replication link that replays the
// primary at cfg.Primary into st. mgr may be nil (a purely in-memory
// replica); when present it is NOT written during replication — replayed
// records bypass the mutation hook — but Promote checkpoints into it so
// the replicated state is durable the moment the node starts acking
// writes of its own.
func NewFollower(st *graph.Store, mgr *wal.Manager, cfg FollowerConfig) *Follower {
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = 20 * time.Second
	}
	if cfg.ReconnectMin <= 0 {
		cfg.ReconnectMin = 50 * time.Millisecond
	}
	if cfg.ReconnectMax <= 0 {
		cfg.ReconnectMax = 3 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	f := &Follower{
		st: st, mgr: mgr, cfg: cfg, hc: hc,
		// A link starting at position 0 provably has the empty history:
		// its prefix-hash chain starts at the seed.
		hash: wal.PrefixHashSeed, hashKnown: true,
		changed: make(chan struct{}),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	f.onApplied = cfg.OnApplied
	if r := cfg.Resume; r != nil {
		f.logID = r.LogID
		f.applied = r.Applied
		f.epoch = r.Epoch
		f.hash, f.hashKnown = r.Hash, r.HashKnown
		f.watermark = r.AppliedThrough
	}
	return f
}

// SetOnApplied installs (or replaces) the per-record apply observer; see
// FollowerConfig.OnApplied. Install it before Start, or races the pull
// loop's capture per batch.
func (f *Follower) SetOnApplied(fn func(index uint64, m *graph.Mutation)) {
	f.mu.Lock()
	f.onApplied = fn
	f.mu.Unlock()
}

// StreamState captures the link's resumable identity — log ID, position,
// epoch, and prefix hash — for handing to a new Follower's Resume when
// repointing this store at a different primary. Meaningful once the link
// is stopped (a running link keeps moving underneath the snapshot).
func (f *Follower) StreamState() StreamState {
	f.mu.Lock()
	defer f.mu.Unlock()
	return StreamState{
		LogID:          f.logID,
		Applied:        f.applied,
		Epoch:          f.epoch,
		Hash:           f.hash,
		HashKnown:      f.hashKnown,
		AppliedThrough: f.watermark,
	}
}

// Instrument publishes the follower's counters and lag gauges.
func (f *Follower) Instrument(reg *obs.Registry) {
	f.mBatches = reg.Counter("repl.follower.batches")
	f.mRecords = reg.Counter("repl.follower.records_applied")
	f.mBytes = reg.Counter("repl.follower.bytes_received")
	f.mReconnects = reg.Counter("repl.follower.reconnects")
	f.mBootstraps = reg.Counter("repl.follower.bootstraps")
	f.mDiverged = reg.Counter("repl.follower.diverged")
	reg.GaugeFunc("repl.follower.applied_index", func() float64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		return float64(f.applied)
	})
	reg.GaugeFunc("repl.follower.lag_records", func() float64 {
		return float64(f.Status().LagRecords)
	})
}

// Start launches the pull loop. It is safe to call once; the loop runs
// until Stop or Promote.
func (f *Follower) Start() {
	f.startOnce.Do(func() { go f.run() })
}

// Stop terminates the pull loop and waits for it to exit. Idempotent.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.startOnce.Do(func() { close(f.done) }) // never started: nothing to wait for
	<-f.done
}

func (f *Follower) run() {
	defer close(f.done)
	backoff := f.cfg.ReconnectMin
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		err := f.syncOnce()
		if err == nil {
			backoff = f.cfg.ReconnectMin
			f.setErr(nil)
			continue
		}
		if errors.Is(err, errStopping) {
			return
		}
		if errors.Is(err, errFatal) {
			f.setErr(err)
			f.cfg.Logf("repl: replication halted: %v", err)
			return
		}
		f.setErr(err)
		f.mReconnects.Add(1)
		f.mu.Lock()
		f.reconnects++
		f.mu.Unlock()
		f.cfg.Logf("repl: feed from %s failed (retrying in %v): %v", f.cfg.Primary, backoff, err)
		// Jittered exponential backoff so a fleet of followers does not
		// hammer a recovering primary in lockstep.
		select {
		case <-f.stop:
			return
		case <-time.After(backoff/2 + time.Duration(rand.Int63n(int64(backoff)))):
		}
		if backoff *= 2; backoff > f.cfg.ReconnectMax {
			backoff = f.cfg.ReconnectMax
		}
	}
}

// errStopping aborts syncOnce when Stop fires mid-request.
var errStopping = errors.New("repl: follower stopping")

// errFatal marks conditions retrying cannot fix; the pull loop parks
// with the error in Status.LastError instead of hot-looping on it.
var errFatal = errors.New("repl: unrecoverable")

// errNeedBootstrap routes a 410 feed answer to the snapshot path.
var errNeedBootstrap = errors.New("repl: stream position truncated; bootstrap required")

// pinLogID enforces stream identity: the first non-empty log ID the
// primary sends is pinned for the link's lifetime, and any later
// mismatch — this follower, or the address it polls, now points at an
// unrelated log whose stream positions mean something else — is fatal.
// Resuming an offset against a foreign log would either loop on errors
// or silently apply misaligned records; parking with a clear error is
// the only safe answer.
func (f *Follower) pinLogID(id string) error {
	if id == "" {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.logID == "" {
		f.logID = id
		return nil
	}
	if f.logID != id {
		return fmt.Errorf("%w: primary %s serves WAL log %s, but this link is pinned to log %s (repointed at an unrelated primary?)",
			errFatal, f.cfg.Primary, id, f.logID)
	}
	return nil
}

// syncOnce performs one feed exchange: long-poll the primary from the
// current applied position, replay whatever arrives, and update the
// staleness watermark. A 410 triggers a checkpoint bootstrap first.
func (f *Follower) syncOnce() error {
	err := f.pull()
	if errors.Is(err, errNeedBootstrap) {
		if err := f.bootstrap(); err != nil {
			return err
		}
		return nil
	}
	return err
}

// reqCtx derives a request context canceled by Stop, bounded a little
// past the long-poll hold.
func (f *Follower) reqCtx(d time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	go func() {
		select {
		case <-f.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}

func (f *Follower) pull() error {
	f.mu.Lock()
	from, h, hashKnown, pinnedEpoch := f.applied, f.hash, f.hashKnown, f.epoch
	onApplied := f.onApplied
	f.mu.Unlock()

	url := fmt.Sprintf("%s/v1/wal?from=%d&wait_ms=%d", f.cfg.Primary, from, f.cfg.PollWait.Milliseconds())
	if f.cfg.MaxBatchBytes > 0 {
		url += "&max_bytes=" + strconv.Itoa(f.cfg.MaxBatchBytes)
	}
	// Offer the link's lineage state: the prefix hash at from lets the
	// source verify "same history through here" BEFORE shipping a single
	// record, and the pinned epoch lets a superseded primary learn it was
	// superseded (it answers 409 and self-fences instead of feeding us a
	// stale era).
	if hashKnown {
		url += "&hash=" + strconv.FormatUint(h, 16)
	}
	if pinnedEpoch > 0 {
		url += "&epoch=" + strconv.FormatUint(pinnedEpoch, 10)
	}
	ctx, cancel := f.reqCtx(f.cfg.PollWait + 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		select {
		case <-f.stop:
			return errStopping
		default:
		}
		return err
	}
	defer resp.Body.Close()
	if err := f.pinLogID(resp.Header.Get(HeaderLogID)); err != nil {
		io.Copy(io.Discard, resp.Body)
		return err
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, resp.Body)
		return errNeedBootstrap
	case http.StatusConflict:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		var env struct {
			Error struct{ Code, Message string } `json:"error"`
		}
		_ = json.Unmarshal(body, &env)
		switch env.Error.Code {
		case "wal_diverged":
			f.markDiverged()
			return fmt.Errorf("%w: %w at stream position %d: %s", errFatal, ErrDiverged, from, env.Error.Message)
		case "wal_stale_epoch":
			return fmt.Errorf("%w: primary %s is stale: %s", errFatal, f.cfg.Primary, env.Error.Message)
		default:
			return fmt.Errorf("repl: feed returned %s: %s", resp.Status, body)
		}
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("repl: feed returned %s: %s", resp.Status, body)
	}
	srvEpoch, _ := strconv.ParseUint(resp.Header.Get(HeaderEpoch), 10, 64)
	if srvEpoch > 0 && pinnedEpoch > 0 && srvEpoch < pinnedEpoch {
		// Belt and braces: a primary that did not implement the epoch=
		// 409 still must not drag this link back into a superseded era.
		return fmt.Errorf("%w: primary %s serves epoch %d but this link is pinned to epoch %d (stale primary)",
			errFatal, f.cfg.Primary, srvEpoch, pinnedEpoch)
	}

	batch, rerr := io.ReadAll(resp.Body)
	if rerr != nil {
		if len(batch) == 0 {
			return fmt.Errorf("repl: reading feed body: %w", rerr)
		}
		// The connection died mid-body, but ReadAll hands back the prefix
		// that made it through: apply its whole frames and re-request the
		// tail from the new offset. A severed stream resumes from the last
		// applied record; it never re-bootstraps. The dead connection
		// forces a fresh dial, so it counts as a reconnect.
		f.mReconnects.Add(1)
		f.mu.Lock()
		f.reconnects++
		f.mu.Unlock()
	}
	next, err := strconv.ParseUint(resp.Header.Get(HeaderNext), 10, 64)
	if err != nil {
		return fmt.Errorf("repl: feed response missing %s (is %q really a nepal primary?)", HeaderNext, f.cfg.Primary)
	}
	primaryClock, _ := time.Parse(ClockFormat, resp.Header.Get(HeaderClock))

	applied := from
	var lastAt time.Time
	torn := false
	for len(batch) > 0 {
		m, n, err := wal.DecodeRecord(batch)
		if err != nil {
			// The primary only ships whole frames; a cut here means the
			// connection died mid-body. Re-request from the last record
			// that fully applied.
			if wal.IsTorn(err) {
				torn = true
				break
			}
			return fmt.Errorf("repl: undecodable record at stream position %d: %w", applied, err)
		}
		if _, err := f.st.ApplyMutation(m); err != nil {
			return fmt.Errorf("repl: replaying record %d: %w", applied, err)
		}
		if onApplied != nil {
			onApplied(applied, m)
		}
		// Mirror the primary's prefix-hash chain record by record, so the
		// link can always prove which history it applied.
		h = wal.ChainHash(h, wal.FrameChecksum(batch[:n]))
		f.mBytes.Add(int64(n))
		batch = batch[n:]
		applied++
		lastAt = m.At
	}
	if applied > from {
		f.mBatches.Add(1)
		f.mRecords.Add(int64(applied - from))
	}

	// With the whole batch applied, the locally chained hash must land
	// exactly on the hash the source stamped for the batch end: a
	// mismatch means the histories forked (the source-side check at
	// "from" is the first line of defense; this one also covers sources
	// we never offered a hash to). A batch cut short by a dying
	// connection — even on a clean frame boundary — is excluded by
	// matching the applied count against the served count.
	count, cerr := strconv.ParseUint(resp.Header.Get(HeaderCount), 10, 64)
	complete := !torn && rerr == nil && cerr == nil && applied-from == count
	if hdr := resp.Header.Get(HeaderHash); hdr != "" && complete {
		if srvHash, perr := strconv.ParseUint(hdr, 16, 64); perr == nil {
			if hashKnown && h != srvHash {
				f.markDiverged()
				return fmt.Errorf("%w: %w: primary chains to %016x at stream position %d, this replica to %016x",
					errFatal, ErrDiverged, srvHash, applied, h)
			}
			if !hashKnown {
				h, hashKnown = srvHash, true
			}
		}
	}

	f.mu.Lock()
	f.applied = applied
	f.hash, f.hashKnown = h, hashKnown
	if srvEpoch > f.epoch {
		// A higher epoch whose history verifiably contains ours (the
		// hash checks above) is a clean failover: adopt the new era.
		f.epoch = srvEpoch
	}
	if lastAt.After(f.watermark) {
		f.watermark = lastAt
	}
	// Caught up with the primary's durable end: adopt the primary's clock
	// as the watermark, so an idle primary's replicas still prove
	// freshness to min_timestamp reads.
	f.caughtUp = applied >= next
	if f.caughtUp && primaryClock.After(f.watermark) {
		f.watermark = primaryClock
	}
	if next > f.primaryNext {
		f.primaryNext = next
	}
	f.lastContact = time.Now()
	close(f.changed)
	f.changed = make(chan struct{})
	f.mu.Unlock()
	return nil
}

// bootstrap loads the primary's checkpoint into the (empty) local store
// and repositions the feed at the snapshot's resume index. The load is
// atomic — graph.(*Store).LoadHistory stages into scratch state and
// installs nothing on failure — so a download severed mid-stream leaves
// the store empty and the next loop iteration retries cleanly. A
// follower whose store already has state therefore genuinely cannot
// re-bootstrap in place (it fell past the feed's retention): that is a
// fatal condition surfaced to the operator (restart with a fresh store),
// never a silent full resync.
func (f *Follower) bootstrap() error {
	ctx, cancel := f.reqCtx(5 * time.Minute)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.Primary+"/v1/wal/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := f.pinLogID(resp.Header.Get(HeaderLogID)); err != nil {
		io.Copy(io.Discard, resp.Body)
		return err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("repl: snapshot returned %s: %s", resp.Status, body)
	}
	resume, err := strconv.ParseUint(resp.Header.Get(HeaderResume), 10, 64)
	if err != nil {
		return fmt.Errorf("repl: snapshot response missing %s", HeaderResume)
	}
	srvEpoch, _ := strconv.ParseUint(resp.Header.Get(HeaderEpoch), 10, 64)
	f.mu.Lock()
	pinnedEpoch := f.epoch
	f.mu.Unlock()
	if srvEpoch > 0 && pinnedEpoch > 0 && srvEpoch < pinnedEpoch {
		return fmt.Errorf("%w: snapshot from %s is at epoch %d but this link is pinned to epoch %d (stale primary)",
			errFatal, f.cfg.Primary, srvEpoch, pinnedEpoch)
	}
	srvHash, herr := strconv.ParseUint(resp.Header.Get(HeaderHash), 16, 64)
	if err := f.st.LoadHistory(resp.Body); err != nil {
		if errors.Is(err, graph.ErrStoreNotEmpty) {
			// In-place full resyncs are deliberately not supported: fall
			// so far behind that the feed is gone and the operator must
			// restart the replica with a fresh store — never silently
			// discard local state.
			return fmt.Errorf("%w: replica needs a bootstrap but its store is not empty; restart it with a fresh store: %v", errFatal, err)
		}
		return fmt.Errorf("repl: loading snapshot: %w", err)
	}
	f.mBootstraps.Add(1)
	f.mu.Lock()
	f.applied = resume
	// The snapshot repositions the link: adopt the source's chain state
	// at the resume index (the position-0 seed no longer applies there).
	f.hash, f.hashKnown = srvHash, herr == nil
	if srvEpoch > f.epoch {
		f.epoch = srvEpoch
	}
	// The snapshot proves coverage only through its newest stored
	// transaction time (which LoadHistory fenced the local clock past) —
	// NOT through the local wall clock, which would claim primary commits
	// that postdate the checkpoint before the feed has replayed them.
	if latest := f.st.Clock().Latest(); latest.After(f.watermark) {
		f.watermark = latest
	}
	f.bootstraps++
	f.lastContact = time.Now()
	close(f.changed)
	f.changed = make(chan struct{})
	f.mu.Unlock()
	f.cfg.Logf("repl: bootstrapped from %s snapshot, resuming feed at %d", f.cfg.Primary, resume)
	return nil
}

func (f *Follower) setErr(err error) {
	f.mu.Lock()
	f.lastErr = err
	f.mu.Unlock()
}

// markDiverged latches the fork flag the moment it is detected (the
// fatal ErrDiverged that parks the loop lands in LastError separately).
func (f *Follower) markDiverged() {
	f.mDiverged.Add(1)
	f.mu.Lock()
	f.diverged = true
	f.mu.Unlock()
}

// Status snapshots the link.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := Status{
		Applied:        f.applied,
		AppliedThrough: f.watermark,
		PrimaryNext:    f.primaryNext,
		CaughtUp:       f.caughtUp,
		Promoted:       f.promoted,
		Reconnects:     f.reconnects,
		Bootstraps:     f.bootstraps,
		LastContact:    f.lastContact,
		Epoch:          f.epoch,
		Diverged:       f.diverged,
	}
	if f.primaryNext > f.applied {
		s.LagRecords = f.primaryNext - f.applied
	}
	if f.lastErr != nil {
		s.LastError = f.lastErr.Error()
	}
	return s
}

// Applied returns the follower's stream position and staleness
// watermark.
func (f *Follower) Applied() (uint64, time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied, f.watermark
}

// WaitUntil blocks until the replica's watermark reaches ts, the
// follower is promoted (it is then the authority), or ctx expires —
// which returns ErrLagging annotated with the shortfall. A zero ts never
// waits.
func (f *Follower) WaitUntil(ctx context.Context, ts time.Time) error {
	if ts.IsZero() {
		return nil
	}
	for {
		f.mu.Lock()
		w, promoted, ch := f.watermark, f.promoted, f.changed
		f.mu.Unlock()
		if promoted || !w.Before(ts) {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return fmt.Errorf("%w: applied through %s, need %s",
				ErrLagging, w.Format(ClockFormat), ts.Format(ClockFormat))
		case <-f.stop:
			// Stopped without promotion: the watermark is frozen, so a
			// future ts will never be reached.
			f.mu.Lock()
			promoted = f.promoted
			f.mu.Unlock()
			if promoted {
				return nil
			}
			return fmt.Errorf("%w: applied through %s, need %s", ErrStopped,
				w.Format(ClockFormat), ts.Format(ClockFormat))
		}
	}
}

// Promote turns the follower into a primary: the pull loop stops, the
// node's own WAL (when attached) adopts the primary's log identity,
// stream position, and prefix hash under a freshly bumped epoch, and the
// replicated state is checkpointed into it so every replayed mutation is
// durable before the node acks writes of its own. Adopting the stream —
// rather than starting a fresh log — is what makes a later fork by the
// old primary detectable: both logs then claim the same identity and
// positions, and any follower comparing prefix hashes sees which era it
// is on. Idempotent; returns the stream position the node took over at.
func (f *Follower) Promote() (uint64, error) {
	f.mu.Lock()
	if f.promoted {
		applied := f.applied
		f.mu.Unlock()
		return applied, nil
	}
	f.promoted = true
	close(f.changed)
	f.changed = make(chan struct{})
	f.mu.Unlock()

	// Stop the pull loop BEFORE reading the stream position: a promote
	// racing an in-flight bootstrap must observe either the empty store
	// (the canceled download's LoadHistory installed nothing) or the
	// fully loaded one with its applied index already advanced — never a
	// checkpoint of half-staged state at a stale position.
	f.Stop()

	f.mu.Lock()
	applied, h, hashKnown, pinnedEpoch, logID := f.applied, f.hash, f.hashKnown, f.epoch, f.logID
	f.mu.Unlock()

	newEpoch := pinnedEpoch + 1
	if f.mgr != nil {
		if own := f.mgr.Epoch(); own > pinnedEpoch {
			newEpoch = own + 1
		}
		if logID != "" && hashKnown {
			if err := f.mgr.AdoptStream(logID, applied, newEpoch, h); err != nil {
				return applied, fmt.Errorf("repl: adopting primary's stream on promote: %w", err)
			}
		} else if err := f.mgr.SetEpoch(newEpoch); err != nil {
			// Never contacted an epoch-stamping primary (or the chain state
			// is unknown): keep the node's own log identity and just open a
			// new era on it.
			return applied, fmt.Errorf("repl: bumping epoch on promote: %w", err)
		}
		if err := f.mgr.Checkpoint(f.st); err != nil {
			return applied, fmt.Errorf("repl: checkpointing replicated state on promote: %w", err)
		}
	} else if pinnedEpoch == 0 {
		// In-memory replica of a WAL-less primary: epochs are not in play.
		newEpoch = 0
	}
	f.mu.Lock()
	f.epoch = newEpoch
	f.mu.Unlock()
	f.cfg.Logf("repl: promoted at stream position %d (epoch %d)", applied, newEpoch)
	return applied, nil
}

// Promoted reports whether Promote has run.
func (f *Follower) Promoted() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.promoted
}
