// Package repl is Nepal's primary→follower replication subsystem: the
// primary ships its write-ahead log over HTTP and followers replay it
// through graph.(*Store).ApplyMutation, so replay order equals the
// primary's serialization order and a follower's state at any replayed
// timestamp is byte-identical to the primary's state at that timestamp.
//
// The wire protocol is two endpoints the serving layer mounts:
//
//	GET /v1/wal?from=<index>&wait_ms=<n>&max_bytes=<n>
//	    Long-poll feed of raw WAL frames starting at global stream index
//	    "from". An empty 200 means caught up (the poll waited wait_ms and
//	    nothing arrived); 410 Gone means the position was contracted into
//	    a checkpoint and the follower must bootstrap.
//	GET /v1/wal/snapshot
//	    The latest checkpoint, verbatim, plus the stream index to resume
//	    the feed from (X-Nepal-Wal-Resume). Records the checkpoint
//	    already reflects replay as no-ops (ApplyMutation is idempotent).
//
// Followers expose a bounded-staleness contract: Status reports the
// applied-through timestamp and record lag, and WaitUntil blocks a read
// that demands a minimum timestamp until the replica catches up or the
// caller's deadline expires (ErrLagging). Promote turns a follower into
// a writable primary that provably contains every mutation it applied.
package repl

import (
	"errors"
	"time"
)

// Protocol headers. Servers and followers agree on these; the client
// package re-exports what its users need (it must not import repl's
// server-side machinery, and server imports repl, so the constants live
// here at the bottom of the dependency order).
const (
	// HeaderFrom echoes the requested stream position on feed responses.
	HeaderFrom = "X-Nepal-Wal-From"
	// HeaderNext carries the primary's durable stream end (== records ever
	// logged) on every feed response; followers derive lag from it. It is
	// captured before the batch is read, so it never exceeds what a
	// follower can reach by applying this batch plus later ones — but a
	// max_bytes-capped batch may stop short of it, which is exactly how a
	// partially shipped follower knows it is not yet caught up.
	HeaderNext = "X-Nepal-Wal-Next"
	// HeaderCount carries the number of records in a feed batch.
	HeaderCount = "X-Nepal-Wal-Count"
	// HeaderBase carries the primary's oldest streamable index on 410
	// responses, so a follower knows how far behind it fell.
	HeaderBase = "X-Nepal-Wal-Base"
	// HeaderResume carries the stream index to resume from after loading
	// a snapshot.
	HeaderResume = "X-Nepal-Wal-Resume"
	// HeaderClock carries the primary's committed clock (RFC3339Nano) on
	// feed responses, fenced BEFORE the batch and HeaderNext were
	// captured: every mutation at or before it is covered by HeaderNext,
	// so a follower that has applied through HeaderNext adopts it as its
	// staleness watermark — "no new writes" does not read as "infinitely
	// stale", and the watermark never claims an unshipped commit.
	HeaderClock = "X-Nepal-Wal-Clock"
	// HeaderLogID carries the primary WAL's immutable identity on every
	// feed and snapshot response. A follower pins the first value it sees
	// and parks fatal on a mismatch, so a link repointed at an unrelated
	// primary (or a sibling promoted onto its own log) can never apply
	// misaligned records from a foreign stream.
	HeaderLogID = "X-Nepal-Wal-Log-Id"
	// HeaderAppliedThrough is stamped by replica servers on query
	// responses: every mutation at or before this timestamp is reflected
	// in the answer.
	HeaderAppliedThrough = "X-Nepal-Applied-Through"
	// HeaderEpoch carries the log's primary epoch on every feed and
	// snapshot response. Followers pin it: a higher epoch whose prefix
	// hash matches at the follower's position is a clean failover and is
	// adopted; a lower epoch marks a stale, superseded primary and is
	// rejected. Feed requests echo the pinned value back (epoch= query
	// param), which is how a stale primary first learns it was superseded.
	HeaderEpoch = "X-Nepal-Wal-Epoch"
	// HeaderHash carries the chained prefix hash (hex) at the batch end
	// on feed responses — at the requested position for an empty batch —
	// and at the resume index on snapshot responses. A follower chains the
	// same hash over the records it applies; any disagreement means the
	// two logs forked.
	HeaderHash = "X-Nepal-Wal-Hash"
)

// ClockFormat renders HeaderClock / HeaderAppliedThrough timestamps.
const ClockFormat = time.RFC3339Nano

// ErrLagging reports that a replica could not satisfy a read's minimum
// timestamp within the caller's deadline. The serving layer maps it to
// the typed "replica_lagging" wire error.
var ErrLagging = errors.New("repl: replica lagging behind requested timestamp")

// ErrPromoted reports an operation that requires an active replication
// link on a follower that has already been promoted to primary.
var ErrPromoted = errors.New("repl: follower has been promoted")

// ErrStopped reports an operation on a follower whose replication loop
// has been stopped without promotion.
var ErrStopped = errors.New("repl: follower stopped")

// ErrDiverged reports that the follower's applied history and the
// primary's log have forked: the chained prefix hashes disagree at the
// follower's position, so the two nodes applied different records under
// the same log identity — the signature of an unfenced split brain. The
// follower parks rather than applying (or re-applying) either side of
// the fork; the operator must rebuild it from the surviving primary.
var ErrDiverged = errors.New("repl: follower history diverged from primary (forked WAL)")
