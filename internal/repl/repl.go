// Package repl is Nepal's primary→follower replication subsystem: the
// primary ships its write-ahead log over HTTP and followers replay it
// through graph.(*Store).ApplyMutation, so replay order equals the
// primary's serialization order and a follower's state at any replayed
// timestamp is byte-identical to the primary's state at that timestamp.
//
// The wire protocol is two endpoints the serving layer mounts:
//
//	GET /v1/wal?from=<index>&wait_ms=<n>&max_bytes=<n>
//	    Long-poll feed of raw WAL frames starting at global stream index
//	    "from". An empty 200 means caught up (the poll waited wait_ms and
//	    nothing arrived); 410 Gone means the position was contracted into
//	    a checkpoint and the follower must bootstrap.
//	GET /v1/wal/snapshot
//	    The latest checkpoint, verbatim, plus the stream index to resume
//	    the feed from (X-Nepal-Wal-Resume). Records the checkpoint
//	    already reflects replay as no-ops (ApplyMutation is idempotent).
//
// Followers expose a bounded-staleness contract: Status reports the
// applied-through timestamp and record lag, and WaitUntil blocks a read
// that demands a minimum timestamp until the replica catches up or the
// caller's deadline expires (ErrLagging). Promote turns a follower into
// a writable primary that provably contains every mutation it applied.
package repl

import (
	"errors"
	"time"
)

// Protocol headers. Servers and followers agree on these; the client
// package re-exports what its users need (it must not import repl's
// server-side machinery, and server imports repl, so the constants live
// here at the bottom of the dependency order).
const (
	// HeaderFrom echoes the requested stream position on feed responses.
	HeaderFrom = "X-Nepal-Wal-From"
	// HeaderNext carries the primary's next stream index (== records ever
	// logged) on every feed response; followers derive lag from it.
	HeaderNext = "X-Nepal-Wal-Next"
	// HeaderCount carries the number of records in a feed batch.
	HeaderCount = "X-Nepal-Wal-Count"
	// HeaderBase carries the primary's oldest streamable index on 410
	// responses, so a follower knows how far behind it fell.
	HeaderBase = "X-Nepal-Wal-Base"
	// HeaderResume carries the stream index to resume from after loading
	// a snapshot.
	HeaderResume = "X-Nepal-Wal-Resume"
	// HeaderClock carries the primary's store clock (RFC3339Nano) at
	// response time; a caught-up follower adopts it as its staleness
	// watermark so "no new writes" does not read as "infinitely stale".
	HeaderClock = "X-Nepal-Wal-Clock"
	// HeaderAppliedThrough is stamped by replica servers on query
	// responses: every mutation at or before this timestamp is reflected
	// in the answer.
	HeaderAppliedThrough = "X-Nepal-Applied-Through"
)

// ClockFormat renders HeaderClock / HeaderAppliedThrough timestamps.
const ClockFormat = time.RFC3339Nano

// ErrLagging reports that a replica could not satisfy a read's minimum
// timestamp within the caller's deadline. The serving layer maps it to
// the typed "replica_lagging" wire error.
var ErrLagging = errors.New("repl: replica lagging behind requested timestamp")

// ErrPromoted reports an operation that requires an active replication
// link on a follower that has already been promoted to primary.
var ErrPromoted = errors.New("repl: follower has been promoted")

// ErrStopped reports an operation on a follower whose replication loop
// has been stopped without promotion.
var ErrStopped = errors.New("repl: follower stopped")
