package repl

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Source is the primary side of replication: HTTP handlers over a WAL
// manager that serve the record feed and the checkpoint bootstrap. The
// serving layer mounts ServeWAL at GET /v1/wal and ServeSnapshot at
// GET /v1/wal/snapshot on any WAL-backed server.
type Source struct {
	st  *graph.Store
	mgr *wal.Manager

	// MaxBatchBytes caps one feed response body; 0 means 1 MiB. A batch
	// always carries at least one whole record, so a single oversized
	// record still ships.
	MaxBatchBytes int
	// MaxWait caps a feed request's wait_ms long-poll; 0 means 30s.
	MaxWait time.Duration
	// OnStaleEpoch, when set, is invoked with the remote epoch whenever a
	// feed request proves this log's epoch has been superseded (the
	// requester has seen a higher one). The serving layer uses it to
	// self-fence a stale primary the moment one of its old followers —
	// now pinned to the new era — reconnects.
	OnStaleEpoch func(remoteEpoch uint64)

	mBatches    *obs.Counter
	mRecords    *obs.Counter
	mBytes      *obs.Counter
	mSnapshots  *obs.Counter
	mTruncated  *obs.Counter
	mDiverged   *obs.Counter
	mStaleEpoch *obs.Counter
	gWaiters    *obs.Gauge

	closing   chan struct{}
	closeOnce sync.Once
}

// NewSource returns a feed over st's WAL manager.
func NewSource(st *graph.Store, mgr *wal.Manager) *Source {
	return &Source{st: st, mgr: mgr, closing: make(chan struct{})}
}

// Close releases every parked long-poll immediately (each answers with
// whatever is pending — usually an empty batch). A primary shutting down
// gracefully calls this first, so held feed requests cannot outlive the
// connection-drain timeout. Idempotent; the handlers keep working after
// Close, they just stop holding polls.
func (s *Source) Close() {
	s.closeOnce.Do(func() { close(s.closing) })
}

// Instrument publishes the source's counters: batches/records/bytes
// shipped, snapshots served, feed requests answered 410, and the
// long-poll waiter gauge.
func (s *Source) Instrument(reg *obs.Registry) {
	s.mBatches = reg.Counter("repl.source.batches")
	s.mRecords = reg.Counter("repl.source.records_shipped")
	s.mBytes = reg.Counter("repl.source.bytes_shipped")
	s.mSnapshots = reg.Counter("repl.source.snapshots_served")
	s.mTruncated = reg.Counter("repl.source.truncated_requests")
	s.mDiverged = reg.Counter("repl.source.diverged_requests")
	s.mStaleEpoch = reg.Counter("repl.source.stale_epoch_requests")
	s.gWaiters = reg.Gauge("repl.source.poll_waiters")
}

func (s *Source) maxBatch() int {
	if s.MaxBatchBytes > 0 {
		return s.MaxBatchBytes
	}
	return 1 << 20
}

func (s *Source) maxWait() time.Duration {
	if s.MaxWait > 0 {
		return s.MaxWait
	}
	return 30 * time.Second
}

// sourceErr is the minimal JSON error envelope, shaped like the serving
// layer's so followers and the Go client decode both the same way.
func sourceErr(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]string{"code": code, "message": msg},
	})
}

// ServeWAL answers GET /v1/wal?from=N[&wait_ms=M][&max_bytes=K]: a batch
// of raw WAL frames starting at stream index N. With wait_ms, an
// up-to-date follower long-polls — the response is held until a record
// lands or the wait expires (an empty 200 body). 410 Gone directs the
// follower to the snapshot endpoint.
func (s *Source) ServeWAL(w http.ResponseWriter, r *http.Request) {
	// Every feed answer — batches, 410s, even a "position beyond end" 400
	// from a follower pointed at the wrong primary — carries the log's
	// identity, so a mispointed follower detects the foreign log instead
	// of retrying against it.
	w.Header().Set(HeaderLogID, s.mgr.LogID())
	epoch := s.mgr.Epoch()
	w.Header().Set(HeaderEpoch, strconv.FormatUint(epoch, 10))
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		sourceErr(w, http.StatusBadRequest, "bad_request", "feed requires a numeric from= stream position")
		return
	}
	// A follower pinned to a higher epoch proves this log was superseded:
	// a newer primary exists and took the stream over. Refuse to ship (the
	// requester must not re-adopt a stale era) and notify the serving
	// layer so the node can fence itself.
	if v := q.Get("epoch"); v != "" {
		remote, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			sourceErr(w, http.StatusBadRequest, "bad_request", "epoch must be a non-negative integer")
			return
		}
		if remote > epoch {
			s.mStaleEpoch.Add(1)
			if s.OnStaleEpoch != nil {
				s.OnStaleEpoch(remote)
			}
			sourceErr(w, http.StatusConflict, "wal_stale_epoch",
				fmt.Sprintf("this log is at epoch %d but the requester has seen epoch %d: this primary was superseded and must not be followed", epoch, remote))
			return
		}
	}
	// The follower's chained prefix hash at from, when offered, is
	// verified BEFORE any record ships: on a fork the follower parks with
	// nothing applied, instead of discovering the divergence after
	// replaying half of the wrong history. Positions this log cannot hash
	// (truncated into a checkpoint, or beyond the end) fall through to the
	// feed loop, which answers 410/400 itself.
	if v := q.Get("hash"); v != "" {
		remote, err := strconv.ParseUint(v, 16, 64)
		if err != nil {
			sourceErr(w, http.StatusBadRequest, "bad_request", "hash must be a hex-encoded prefix hash")
			return
		}
		if local, err := s.mgr.PrefixHash(from); err == nil && local != remote {
			s.mDiverged.Add(1)
			w.Header().Set(HeaderHash, strconv.FormatUint(local, 16))
			sourceErr(w, http.StatusConflict, "wal_diverged",
				fmt.Sprintf("prefix hash mismatch at stream position %d: this log chains to %016x, the requester to %016x — the histories have forked", from, local, remote))
			return
		}
	}
	maxBytes := s.maxBatch()
	if v := q.Get("max_bytes"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			sourceErr(w, http.StatusBadRequest, "bad_request", "max_bytes must be a positive integer")
			return
		}
		if n < maxBytes {
			maxBytes = n
		}
	}
	var wait time.Duration
	if v := q.Get("wait_ms"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			sourceErr(w, http.StatusBadRequest, "bad_request", "wait_ms must be a non-negative integer")
			return
		}
		wait = time.Duration(n) * time.Millisecond
		if max := s.maxWait(); wait > max {
			wait = max
		}
	}

	deadline := time.Now().Add(wait)
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		// Grab the change channel before reading: a record appended
		// between the read and the wait closes this channel, so the poll
		// can never sleep through it.
		changed := s.mgr.Changed()
		// Capture order is load-bearing for the staleness contract. The
		// committed clock is fenced first: every mutation at or before it
		// is already durable, and nothing later can be stamped at or
		// before it. The durable end is read second, so it covers every
		// record the clock covers. A follower that applies through
		// "durable" may therefore adopt "clock" as its applied-through
		// watermark without ever claiming a record it did not replay.
		clock := s.st.CommittedClock()
		durable := s.mgr.NextIndex()
		batch, batchEnd, err := s.mgr.ReadRecords(from, maxBytes)
		switch {
		case err == nil:
		case wal.IsTruncatedStream(err):
			s.mTruncated.Add(1)
			w.Header().Set(HeaderBase, strconv.FormatUint(s.mgr.BaseIndex(), 10))
			sourceErr(w, http.StatusGone, "wal_truncated",
				fmt.Sprintf("stream position %d predates the oldest retained record; bootstrap from /v1/wal/snapshot", from))
			return
		default:
			sourceErr(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		if len(batch) > 0 || wait <= 0 || !time.Now().Before(deadline) {
			s.writeBatch(w, from, batchEnd, durable, clock, batch)
			return
		}
		if timer == nil {
			timer = time.NewTimer(time.Until(deadline))
		}
		s.gWaiters.Add(1)
		select {
		case <-changed:
			s.gWaiters.Add(-1)
		case <-timer.C:
			s.gWaiters.Add(-1)
			s.writeEmpty(w, from)
			return
		case <-s.closing:
			s.gWaiters.Add(-1)
			s.writeEmpty(w, from)
			return
		case <-r.Context().Done():
			s.gWaiters.Add(-1)
			return
		}
	}
}

// writeEmpty answers an expiring long-poll with a fresh empty batch,
// re-capturing the clock and durable end in contract order.
func (s *Source) writeEmpty(w http.ResponseWriter, from uint64) {
	clock := s.st.CommittedClock()
	s.writeBatch(w, from, from, s.mgr.NextIndex(), clock, nil)
}

// writeBatch ships frames [from, batchEnd) and advertises the log's
// durable end — which a max_bytes cap may hold the batch short of, so a
// partially shipped follower knows it is still lagging.
func (s *Source) writeBatch(w http.ResponseWriter, from, batchEnd, durable uint64, clock time.Time, batch []byte) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HeaderFrom, strconv.FormatUint(from, 10))
	w.Header().Set(HeaderNext, strconv.FormatUint(durable, 10))
	w.Header().Set(HeaderCount, strconv.FormatUint(batchEnd-from, 10))
	w.Header().Set(HeaderClock, clock.Format(ClockFormat))
	// The prefix hash at the batch end lets the follower confirm its own
	// chain after applying — omitted only when a concurrent checkpoint
	// contracted the position away between the read and now (the follower
	// then just skips the check for this batch).
	if h, err := s.mgr.PrefixHash(batchEnd); err == nil {
		w.Header().Set(HeaderHash, strconv.FormatUint(h, 16))
	}
	w.WriteHeader(http.StatusOK)
	if len(batch) > 0 {
		_, _ = w.Write(batch)
	}
	s.mBatches.Add(1)
	s.mRecords.Add(int64(batchEnd - from))
	s.mBytes.Add(int64(len(batch)))
}

// ServeSnapshot answers GET /v1/wal/snapshot: the latest checkpoint,
// verbatim, with the stream index to resume the feed from. 404 means no
// checkpoint exists yet — a fresh follower then simply streams from
// position zero.
func (s *Source) ServeSnapshot(w http.ResponseWriter, r *http.Request) {
	rc, resume, hash, err := s.mgr.Snapshot()
	if err != nil {
		if wal.IsNoCheckpoint(err) {
			sourceErr(w, http.StatusNotFound, "no_checkpoint",
				"no checkpoint exists; stream the feed from position 0")
			return
		}
		sourceErr(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HeaderLogID, s.mgr.LogID())
	w.Header().Set(HeaderEpoch, strconv.FormatUint(s.mgr.Epoch(), 10))
	w.Header().Set(HeaderResume, strconv.FormatUint(resume, 10))
	w.Header().Set(HeaderHash, strconv.FormatUint(hash, 16))
	w.Header().Set(HeaderClock, s.st.Now().Format(ClockFormat))
	w.WriteHeader(http.StatusOK)
	_, _ = io.Copy(w, rc)
	s.mSnapshots.Add(1)
}
