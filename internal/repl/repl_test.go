package repl

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/schema"
	"repro/internal/temporal"
	"repro/internal/wal"
)

var t0 = time.Date(2017, 2, 15, 0, 0, 0, 0, time.UTC)

func testSchema(t testing.TB) *schema.Schema {
	t.Helper()
	s := schema.New()
	if _, err := s.DefineNode("Host", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DefineEdge("ConnectsTo", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	return s
}

func newStore(t testing.TB) *graph.Store {
	t.Helper()
	return graph.NewStore(testSchema(t), temporal.NewManualClock(t0))
}

// primary is a WAL-backed store serving the replication feed over a real
// HTTP listener.
type primary struct {
	st    *graph.Store
	mgr   *wal.Manager
	src   *Source
	srv   *httptest.Server
	clock *temporal.Clock
	seq   int
}

func newPrimary(t *testing.T) *primary {
	t.Helper()
	st := newStore(t)
	mgr, _, err := wal.Open(t.TempDir(), st, wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	st.SetMutationHook(func(ctx context.Context, m *graph.Mutation) error {
		return mgr.Append(ctx, m)
	})
	src := NewSource(st, mgr)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/wal", src.ServeWAL)
	mux.HandleFunc("GET /v1/wal/snapshot", src.ServeSnapshot)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return &primary{st: st, mgr: mgr, src: src, srv: srv, clock: st.Clock()}
}

// write lands n acked mutations on the primary.
func (p *primary) write(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		p.clock.Advance(time.Second)
		p.seq++
		if _, err := p.st.InsertNode("Host", graph.Fields{"id": p.seq}); err != nil {
			t.Fatal(err)
		}
	}
}

func history(t testing.TB, st *graph.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.WriteHistory(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func testFollowerConfig(url string) FollowerConfig {
	return FollowerConfig{
		Primary:      url,
		PollWait:     250 * time.Millisecond,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
	}
}

// TestFollowerReplicates is the basic link: a follower joining an active
// primary converges to a byte-identical history and keeps up with new
// writes via the long-poll.
func TestFollowerReplicates(t *testing.T) {
	p := newPrimary(t)
	p.write(t, 30)

	f := NewFollower(newStore(t), nil, testFollowerConfig(p.srv.URL))
	defer f.Stop()
	f.Start()
	waitFor(t, "initial catch-up", func() bool { return f.Status().Applied == 30 })
	if !bytes.Equal(history(t, f.st), history(t, p.st)) {
		t.Fatal("replica history differs from primary after catch-up")
	}

	p.write(t, 12)
	waitFor(t, "long-poll delivery", func() bool { return f.Status().Applied == 42 })
	if !bytes.Equal(history(t, f.st), history(t, p.st)) {
		t.Fatal("replica history differs from primary after incremental writes")
	}
	s := f.Status()
	if s.Bootstraps != 0 {
		t.Fatalf("follower bootstrapped %d times; the feed alone should have sufficed", s.Bootstraps)
	}
	if !s.CaughtUp || s.LagRecords != 0 {
		t.Fatalf("caught-up follower reports CaughtUp=%v lag=%d", s.CaughtUp, s.LagRecords)
	}
}

// TestFollowerBootstrap joins a follower after the primary's early
// history was contracted into a checkpoint: it must load the snapshot,
// resume the feed mid-stream, and converge.
func TestFollowerBootstrap(t *testing.T) {
	p := newPrimary(t)
	p.write(t, 25)
	if err := p.mgr.Checkpoint(p.st); err != nil {
		t.Fatal(err)
	}
	p.write(t, 10)

	f := NewFollower(newStore(t), nil, testFollowerConfig(p.srv.URL))
	defer f.Stop()
	f.Start()
	waitFor(t, "bootstrap + catch-up", func() bool { return f.Status().Applied == 35 })
	if got := f.Status().Bootstraps; got != 1 {
		t.Fatalf("bootstraps = %d, want 1", got)
	}
	if !bytes.Equal(history(t, f.st), history(t, p.st)) {
		t.Fatal("bootstrapped replica history differs from primary")
	}
}

// TestWaitUntilBoundedStaleness pins the read contract: a read demanding
// a timestamp the replica has not reached waits, and fails typed when
// the deadline beats the replication.
func TestWaitUntilBoundedStaleness(t *testing.T) {
	p := newPrimary(t)
	p.write(t, 5)

	f := NewFollower(newStore(t), nil, testFollowerConfig(p.srv.URL))
	defer f.Stop()

	// Not started: any future timestamp must fail with ErrLagging.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	err := f.WaitUntil(ctx, p.st.Now())
	cancel()
	if !errors.Is(err, ErrLagging) {
		t.Fatalf("WaitUntil on a stalled replica = %v, want ErrLagging", err)
	}

	f.Start()
	waitFor(t, "catch-up", func() bool { return f.Status().CaughtUp })
	// Caught up: the watermark adopted the primary's clock, so the
	// primary's own now is satisfiable without further writes.
	ctx, cancel = context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.WaitUntil(ctx, p.st.Now()); err != nil {
		t.Fatalf("WaitUntil on a caught-up replica: %v", err)
	}
	if err := f.WaitUntil(ctx, time.Time{}); err != nil {
		t.Fatalf("WaitUntil with zero timestamp: %v", err)
	}
}

// TestWaitUntilWakesOnCatchUp parks a reader behind a timestamp the
// replica reaches moments later; the reader must wake, not time out.
func TestWaitUntilWakesOnCatchUp(t *testing.T) {
	p := newPrimary(t)
	p.write(t, 3)
	target := p.st.Now()

	f := NewFollower(newStore(t), nil, testFollowerConfig(p.srv.URL))
	defer f.Stop()
	errc := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		errc <- f.WaitUntil(ctx, target)
	}()
	time.Sleep(20 * time.Millisecond) // let the reader park
	f.Start()
	if err := <-errc; err != nil {
		t.Fatalf("parked reader: %v", err)
	}
}

// TestPromoteDurable promotes a caught-up follower that carries its own
// WAL: the replicated state must be durable (checkpointed) at promotion,
// and writes taken as the new primary must land in its log — proven by
// recovering the follower's WAL directory into a fresh store.
func TestPromoteDurable(t *testing.T) {
	p := newPrimary(t)
	p.write(t, 20)

	fdir := t.TempDir()
	fst := newStore(t)
	fmgr, _, err := wal.Open(fdir, fst, wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	// The hook is installed up front (exactly how a serving replica
	// opens): replicated records bypass it, so the follower's log stays
	// empty until promotion.
	fst.SetMutationHook(func(ctx context.Context, m *graph.Mutation) error {
		return fmgr.Append(ctx, m)
	})
	f := NewFollower(fst, fmgr, testFollowerConfig(p.srv.URL))
	f.Start()
	waitFor(t, "catch-up", func() bool { return f.Status().Applied == 20 })

	pos, err := f.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if pos != 20 {
		t.Fatalf("promoted at %d, want 20", pos)
	}
	if !f.Promoted() {
		t.Fatal("Promoted() = false after Promote")
	}
	// Idempotent.
	if pos2, err := f.Promote(); err != nil || pos2 != 20 {
		t.Fatalf("second Promote = (%d, %v), want (20, nil)", pos2, err)
	}

	// The node is primary now: it acks writes of its own.
	for i := 1000; i < 1005; i++ {
		if _, err := fst.InsertNode("Host", graph.Fields{"id": i}); err != nil {
			t.Fatal(err)
		}
	}
	want := history(t, fst)
	if err := fmgr.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash-restart the promoted node: recovery must reproduce both the
	// replicated prefix and its own writes.
	st2 := newStore(t)
	mgr2, _, err := wal.Open(fdir, st2, wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	if !bytes.Equal(history(t, st2), want) {
		t.Fatal("recovered promoted node differs from its pre-restart state")
	}
}

// TestFollowerSurvivesPrimaryRestartURL exercises reconnect accounting:
// kill the primary's listener mid-stream, verify the follower records
// reconnect attempts and a sticky last error, then confirm WaitUntil
// fails typed while the link is down.
func TestFollowerReconnectAccounting(t *testing.T) {
	p := newPrimary(t)
	p.write(t, 4)

	f := NewFollower(newStore(t), nil, testFollowerConfig(p.srv.URL))
	defer f.Stop()
	f.Start()
	waitFor(t, "catch-up", func() bool { return f.Status().Applied == 4 })

	p.srv.CloseClientConnections()
	p.srv.Close()
	waitFor(t, "reconnect attempts", func() bool { return f.Status().Reconnects > 0 })
	if f.Status().LastError == "" {
		t.Fatal("downed link left no LastError")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := f.WaitUntil(ctx, p.st.Now().Add(time.Hour))
	if !errors.Is(err, ErrLagging) {
		t.Fatalf("WaitUntil over a dead link = %v, want ErrLagging", err)
	}
}

// TestSourceRejectsBadRequests pins the feed's error contract.
func TestSourceRejectsBadRequests(t *testing.T) {
	p := newPrimary(t)
	p.write(t, 3)
	for _, tc := range []struct {
		path   string
		status int
	}{
		{"/v1/wal", http.StatusBadRequest},          // missing from
		{"/v1/wal?from=abc", http.StatusBadRequest}, // non-numeric
		{"/v1/wal?from=99", http.StatusBadRequest},  // beyond end
		{"/v1/wal/snapshot", http.StatusNotFound},   // no checkpoint yet
		{"/v1/wal?from=0&wait_ms=-1", http.StatusBadRequest},
	} {
		resp, err := http.Get(p.srv.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.status)
		}
	}

	// After a checkpoint, pre-base positions answer 410 with the base.
	if err := p.mgr.Checkpoint(p.st); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(p.srv.URL + "/v1/wal?from=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("pre-base read = %d, want 410", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderBase); got != "3" {
		t.Fatalf("%s = %q, want 3", HeaderBase, got)
	}
}

// TestTruncatedBatchAdvertisesDurableEnd pins the max_bytes contract: a
// capped batch ships fewer records than exist, but X-Nepal-Wal-Next must
// still carry the log's durable end — a follower that applied only the
// batch must know it is lagging, not mark itself caught up and adopt the
// primary's clock as its watermark.
func TestTruncatedBatchAdvertisesDurableEnd(t *testing.T) {
	p := newPrimary(t)
	p.write(t, 10)

	resp, err := http.Get(p.srv.URL + "/v1/wal?from=0&max_bytes=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(HeaderNext); got != "10" {
		t.Fatalf("%s = %q on a capped batch, want the durable end 10", HeaderNext, got)
	}
	count, err := strconv.Atoi(resp.Header.Get(HeaderCount))
	if err != nil || count < 1 || count >= 10 {
		t.Fatalf("%s = %q, want a partial batch in [1,10)", HeaderCount, resp.Header.Get(HeaderCount))
	}
	if resp.Header.Get(HeaderLogID) == "" {
		t.Fatalf("feed response missing %s", HeaderLogID)
	}
}

// TestFollowerConvergesWithTinyBatches replicates through a 1-byte batch
// cap: every exchange ships a single record, so catch-up takes many
// round trips and the follower must keep pulling until it truly reaches
// the durable end.
func TestFollowerConvergesWithTinyBatches(t *testing.T) {
	p := newPrimary(t)
	p.write(t, 20)

	cfg := testFollowerConfig(p.srv.URL)
	cfg.MaxBatchBytes = 1
	f := NewFollower(newStore(t), nil, cfg)
	defer f.Stop()
	f.Start()
	waitFor(t, "catch-up through capped batches", func() bool { return f.Status().Applied == 20 })
	if !bytes.Equal(history(t, f.st), history(t, p.st)) {
		t.Fatal("replica history differs from primary after capped-batch catch-up")
	}
	waitFor(t, "caught-up status", func() bool { return f.Status().CaughtUp })
}

// TestBootstrapRetriesAfterSeveredSnapshot severs the first snapshot
// download halfway: the partial load must leave the store untouched so
// the retry bootstraps cleanly, instead of parking fatal on a
// store-not-empty error after one transient failure.
func TestBootstrapRetriesAfterSeveredSnapshot(t *testing.T) {
	p := newPrimary(t)
	p.write(t, 25)
	if err := p.mgr.Checkpoint(p.st); err != nil {
		t.Fatal(err)
	}
	p.write(t, 5)

	var cut atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/wal", p.src.ServeWAL)
	mux.HandleFunc("GET /v1/wal/snapshot", func(w http.ResponseWriter, r *http.Request) {
		rec := httptest.NewRecorder()
		p.src.ServeSnapshot(rec, r)
		for k, v := range rec.Header() {
			w.Header()[k] = v
		}
		body := rec.Body.Bytes()
		w.WriteHeader(rec.Code)
		if cut.CompareAndSwap(false, true) {
			w.Write(body[:len(body)/2]) // severed mid-stream: clean EOF, half the objects
			return
		}
		w.Write(body)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	f := NewFollower(newStore(t), nil, testFollowerConfig(srv.URL))
	defer f.Stop()
	f.Start()
	waitFor(t, "bootstrap retry + catch-up", func() bool { return f.Status().Applied == 30 })
	if got := f.Status().Bootstraps; got != 1 {
		t.Fatalf("successful bootstraps = %d, want 1", got)
	}
	if !bytes.Equal(history(t, f.st), history(t, p.st)) {
		t.Fatal("replica history differs from primary after severed bootstrap")
	}
}

// TestFollowerRejectsForeignLog repoints a follower's address at an
// unrelated primary mid-link: the pinned log identity must park the link
// fatally instead of resuming its offset against a foreign stream and
// applying misaligned records.
func TestFollowerRejectsForeignLog(t *testing.T) {
	a := newPrimary(t)
	a.write(t, 5)
	b := newPrimary(t)
	b.write(t, 9)

	// One address whose backend silently changes — a DNS flip, a VIP
	// takeover, an operator mistake.
	var backend atomic.Pointer[primary]
	backend.Store(a)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/wal", func(w http.ResponseWriter, r *http.Request) {
		backend.Load().src.ServeWAL(w, r)
	})
	mux.HandleFunc("GET /v1/wal/snapshot", func(w http.ResponseWriter, r *http.Request) {
		backend.Load().src.ServeSnapshot(w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	f := NewFollower(newStore(t), nil, testFollowerConfig(srv.URL))
	defer f.Stop()
	f.Start()
	waitFor(t, "catch-up on the real primary", func() bool { return f.Status().Applied == 5 })

	backend.Store(b)
	waitFor(t, "foreign-log detection", func() bool {
		return strings.Contains(f.Status().LastError, "pinned to log")
	})
	if got := f.Status().Applied; got != 5 {
		t.Fatalf("follower applied %d records; it must not consume a foreign log past its pinned 5", got)
	}
}

// TestSourceLongPollDelivers holds a poll open and lands a write: the
// response must carry the record well before the wait expires.
func TestSourceLongPollDelivers(t *testing.T) {
	p := newPrimary(t)
	done := make(chan error, 1)
	go func() {
		resp, err := http.Get(p.srv.URL + "/v1/wal?from=0&wait_ms=10000")
		if err != nil {
			done <- err
			return
		}
		defer resp.Body.Close()
		if got := resp.Header.Get(HeaderCount); got != "1" {
			done <- fmt.Errorf("%s = %q, want 1", HeaderCount, got)
			return
		}
		done <- nil
	}()
	time.Sleep(30 * time.Millisecond) // let the poll park
	start := time.Now()
	p.write(t, 1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("long-poll took %v; the append should have woken it", elapsed)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("long-poll never returned")
	}
}

// TestPromoteRacingBootstrap promotes a follower while its checkpoint
// bootstrap download is still in flight. Promote stops the pull loop
// before reading the stream position, so it must observe either the
// empty store (the canceled download installed nothing) or the fully
// loaded one with its applied index already advanced — never a
// checkpoint of half-staged state at a stale position. Run under -race
// this also pins the Stop-before-read ordering inside Promote.
func TestPromoteRacingBootstrap(t *testing.T) {
	p := newPrimary(t)
	p.write(t, 40)
	if err := p.mgr.Checkpoint(p.st); err != nil {
		t.Fatal(err)
	}
	want := history(t, p.st)
	empty := history(t, newStore(t))

	for round := 0; round < 3; round++ {
		// The snapshot handler writes half the body, signals, then holds
		// the rest until released. Round 0 releases only after Promote
		// returns (the promote deterministically lands mid-download);
		// later rounds release immediately, racing Promote against the
		// tail of the bootstrap so either outcome can win.
		var started, release = make(chan struct{}), make(chan struct{})
		var once sync.Once
		mux := http.NewServeMux()
		mux.HandleFunc("GET /v1/wal", p.src.ServeWAL)
		mux.HandleFunc("GET /v1/wal/snapshot", func(w http.ResponseWriter, r *http.Request) {
			rec := httptest.NewRecorder()
			p.src.ServeSnapshot(rec, r)
			for k, v := range rec.Header() {
				w.Header()[k] = v
			}
			body := rec.Body.Bytes()
			w.WriteHeader(rec.Code)
			w.Write(body[:len(body)/2])
			if fl, ok := w.(http.Flusher); ok {
				fl.Flush()
			}
			once.Do(func() { close(started) })
			<-release
			w.Write(body[len(body)/2:])
		})
		srv := httptest.NewServer(mux)

		fdir := t.TempDir()
		fst := newStore(t)
		fmgr, _, err := wal.Open(fdir, fst, wal.Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		fst.SetMutationHook(func(ctx context.Context, m *graph.Mutation) error {
			return fmgr.Append(ctx, m)
		})
		f := NewFollower(fst, fmgr, testFollowerConfig(srv.URL))
		f.Start()
		<-started
		if round > 0 {
			close(release)
		}
		applied, perr := f.Promote()
		if round == 0 {
			close(release)
		}
		srv.Close()
		if perr != nil {
			t.Fatalf("round %d: Promote: %v", round, perr)
		}

		got := history(t, fst)
		switch applied {
		case 0:
			if !bytes.Equal(got, empty) {
				t.Fatalf("round %d: promoted at 0 but the store is not empty — half-staged bootstrap leaked", round)
			}
		case 40:
			if !bytes.Equal(got, want) {
				t.Fatalf("round %d: promoted at 40 but the store differs from the primary", round)
			}
		default:
			t.Fatalf("round %d: promoted at %d, want 0 (canceled) or 40 (complete)", round, applied)
		}

		// The checkpoint Promote wrote must reproduce exactly the state
		// it observed: a crash-restart of the promoted node lands on the
		// same history, whichever side of the race won.
		if err := fmgr.Close(); err != nil {
			t.Fatal(err)
		}
		st2 := newStore(t)
		mgr2, _, err := wal.Open(fdir, st2, wal.Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(history(t, st2), got) {
			t.Fatalf("round %d: recovered promoted node differs from its pre-restart state", round)
		}
		mgr2.Close()
	}
}

// TestSourceRejectsStaleEpoch: a feed request pinned to a higher epoch
// proves this primary was superseded. The source must refuse to ship
// (409 wal_stale_epoch) and notify the serving layer via OnStaleEpoch
// so the node can fence itself.
func TestSourceRejectsStaleEpoch(t *testing.T) {
	p := newPrimary(t)
	p.write(t, 3)
	var learned atomic.Uint64
	p.src.OnStaleEpoch = func(remote uint64) { learned.Store(remote) }

	resp, err := http.Get(p.srv.URL + "/v1/wal?from=0&epoch=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("feed with higher epoch = %s, want 409", resp.Status)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "wal_stale_epoch") {
		t.Fatalf("409 body missing wal_stale_epoch: %s", body)
	}
	if got := learned.Load(); got != 5 {
		t.Fatalf("OnStaleEpoch learned %d, want 5", got)
	}

	// An equal or lower pinned epoch ships normally.
	resp2, err := http.Get(p.srv.URL + "/v1/wal?from=0&epoch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("feed with matching epoch = %s, want 200", resp2.Status)
	}
}

// TestFollowerAdoptsHigherEpoch: the primary re-promoting into a newer
// era (same log, higher epoch, unchanged history) is legitimate — the
// follower must adopt the higher pin and keep applying, not park.
func TestFollowerAdoptsHigherEpoch(t *testing.T) {
	p := newPrimary(t)
	p.write(t, 6)
	f := NewFollower(newStore(t), nil, testFollowerConfig(p.srv.URL))
	defer f.Stop()
	f.Start()
	waitFor(t, "catch-up", func() bool { return f.Status().Applied == 6 })
	if got := f.Status().Epoch; got != 1 {
		t.Fatalf("pinned epoch = %d, want 1", got)
	}

	if err := p.mgr.SetEpoch(3); err != nil {
		t.Fatal(err)
	}
	p.write(t, 4)
	waitFor(t, "new-era records", func() bool { return f.Status().Applied == 10 })
	// The poll that shipped the batch may have been parked before the
	// epoch bump (its header snapshots the old era); the very next poll
	// round adopts the new pin.
	waitFor(t, "epoch adoption", func() bool { return f.Status().Epoch == 3 })
	st := f.Status()
	if st.Diverged {
		t.Fatal("higher epoch with a matching history parked the link")
	}
	if !bytes.Equal(history(t, f.st), history(t, p.st)) {
		t.Fatal("replica history differs after epoch adoption")
	}
}

// TestFollowerParksDivergedOnForgedFork resumes a link whose recorded
// prefix hash disagrees with the primary's chain at the same position —
// the on-disk shape of a follower that applied a forked history. The
// source must refuse before shipping a single record and the follower
// must park with the typed ErrDiverged, applying nothing.
func TestFollowerParksDivergedOnForgedFork(t *testing.T) {
	p := newPrimary(t)
	p.write(t, 8)

	f := NewFollower(newStore(t), nil, testFollowerConfig(p.srv.URL))
	f.Start()
	waitFor(t, "catch-up", func() bool { return f.Status().Applied == 8 })
	f.Stop()
	resume := f.StreamState()
	if !resume.HashKnown {
		t.Fatal("caught-up follower never learned the prefix hash")
	}
	resume.Hash ^= 0xdeadbeef // forge: same position, different history

	cfg := testFollowerConfig(p.srv.URL)
	cfg.Resume = &resume
	forked := NewFollower(newStore(t), nil, cfg)
	defer forked.Stop()
	forked.Start()
	waitFor(t, "diverged park", func() bool { return forked.Status().Diverged })
	st := forked.Status()
	if st.Applied != 8 {
		t.Fatalf("diverged link applied %d records past the fork, want none (still at 8)", st.Applied-8)
	}
	if !strings.Contains(st.LastError, ErrDiverged.Error()) {
		t.Fatalf("LastError = %q, want it to carry ErrDiverged", st.LastError)
	}
}

// TestPromotedNodeServesFreshFollower closes the failover loop: a
// follower promotes (adopting the dead primary's stream identity into
// its own WAL), keeps writing, and a brand-new replica bootstrapping
// from it converges to the full history — replicated prefix plus
// post-promotion writes — under the bumped epoch.
func TestPromotedNodeServesFreshFollower(t *testing.T) {
	p := newPrimary(t)
	p.write(t, 10)

	fst := newStore(t)
	fmgr, _, err := wal.Open(t.TempDir(), fst, wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fmgr.Close() })
	fst.SetMutationHook(func(ctx context.Context, m *graph.Mutation) error {
		return fmgr.Append(ctx, m)
	})
	f := NewFollower(fst, fmgr, testFollowerConfig(p.srv.URL))
	f.Start()
	waitFor(t, "catch-up", func() bool { return f.Status().Applied == 10 })
	if _, err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	if got := fmgr.Epoch(); got != 2 {
		t.Fatalf("promoted WAL epoch = %d, want 2", got)
	}
	if got := fmgr.LogID(); got != p.mgr.LogID() {
		t.Fatalf("promoted WAL log id = %q, want the adopted %q", got, p.mgr.LogID())
	}
	// The new primary writes under its own era.
	for i := 5000; i < 5005; i++ {
		if _, err := fst.InsertNode("Host", graph.Fields{"id": i}); err != nil {
			t.Fatal(err)
		}
	}

	src := NewSource(fst, fmgr)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/wal", src.ServeWAL)
	mux.HandleFunc("GET /v1/wal/snapshot", src.ServeSnapshot)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	f2 := NewFollower(newStore(t), nil, testFollowerConfig(srv.URL))
	defer f2.Stop()
	f2.Start()
	waitFor(t, "fresh follower catch-up", func() bool { return f2.Status().Applied == 15 })
	st := f2.Status()
	if st.Epoch != 2 {
		t.Fatalf("fresh follower pinned epoch = %d, want 2", st.Epoch)
	}
	if !bytes.Equal(history(t, f2.st), history(t, fst)) {
		t.Fatal("fresh follower history differs from the promoted node")
	}
}
