// Package gremlin implements Nepal's property-graph backend. It emulates
// the paper's Gremlin target (§5.2): every element carries its inheritance
// path as its label (e.g. Node:Container:VM:VMWare) and polymorphic class
// matching is label-prefix matching; adjacency is a single per-node edge
// list with no class partitioning, so traversals examine every incident
// edge and filter afterwards — exactly the behavior whose cost the
// relational per-class partitioning ablation (§6) contrasts.
//
// Gremlin client libraries for Go are thin, so rather than driving an
// external TinkerPop server the traversal engine is embedded; the
// generated Gremlin query text for a plan is available via
// internal/codegen for inspection.
package gremlin

import (
	"strings"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/rpe"
	"repro/internal/schema"
)

// Backend is the Gremlin-style accessor over a temporal graph store.
type Backend struct {
	store *graph.Store
	obs   atomic.Pointer[backendObs]
}

// backendObs caches the registry counters an instrumented backend
// records; nil (the default) disables recording.
type backendObs struct {
	anchorProbes  *obs.Counter
	uniqueLookups *obs.Counter
	edgeProbes    *obs.Counter
}

// New returns a backend over the store.
func New(store *graph.Store) *Backend { return &Backend{store: store} }

// Name implements plan.Accessor.
func (b *Backend) Name() string { return "gremlin" }

// Store implements plan.Accessor.
func (b *Backend) Store() *graph.Store { return b.store }

// Instrument attaches a metrics registry: anchor probes, unique-index
// lookups, and adjacency probes are then counted under
// "backend.gremlin.*". A nil registry detaches.
func (b *Backend) Instrument(r *obs.Registry) {
	if r == nil {
		b.obs.Store(nil)
		return
	}
	b.obs.Store(&backendObs{
		anchorProbes:  r.Counter("backend.gremlin.anchor_probes"),
		uniqueLookups: r.Counter("backend.gremlin.unique_lookups"),
		edgeProbes:    r.Counter("backend.gremlin.edge_probes"),
	})
}

// Label returns the Gremlin label of a class: its inheritance path.
func Label(c *schema.Class) string { return c.Path() }

// LabelMatches reports whether an element labeled with elemLabel belongs
// to the class subtree rooted at query label — prefix matching per §5.2.
func LabelMatches(queryLabel, elemLabel string) bool {
	if !strings.HasPrefix(elemLabel, queryLabel) {
		return false
	}
	return len(elemLabel) == len(queryLabel) || elemLabel[len(queryLabel)] == ':'
}

// AnchorElements implements the Select operator: a unique-index hit when
// the atom pins a unique field with equality (TinkerPop-style id index),
// otherwise a label-prefix scan over the per-label element lists. The
// label scan checks the governor once per class partition, so a canceled
// query aborts mid-scan instead of materializing the whole anchor set.
func (b *Backend) AnchorElements(view graph.View, c *rpe.Checked, a *rpe.Atom, gov *plan.Governor) ([]graph.UID, error) {
	o := b.obs.Load()
	if o != nil {
		o.anchorProbes.Add(1)
	}
	if err := gov.CheckNow(); err != nil {
		return nil, err
	}
	cls := c.ClassOf(a)
	if uid, ok := uniqueLookup(b.store, cls, a); ok {
		if o != nil {
			o.uniqueLookups.Add(1)
		}
		obj := b.store.Object(uid)
		if obj != nil && obj.Class.IsSubclassOf(cls) {
			return []graph.UID{uid}, nil
		}
		return nil, nil
	}
	queryLabel := Label(cls)
	var out []graph.UID
	for _, cand := range b.store.Schema().Classes() {
		if err := gov.Check(); err != nil {
			return nil, err
		}
		if cand.Kind != cls.Kind || !LabelMatches(queryLabel, Label(cand)) {
			continue
		}
		out = append(out, b.store.ByClass(cand.Name)...)
	}
	return out, nil
}

// IncidentEdges implements the Extend operator's physical access: the full
// unpartitioned adjacency list. The atom hint is deliberately ignored —
// a property-graph traversal visits every incident edge and filters by
// label afterwards. One governor check per probe keeps a canceled query
// from queueing further adjacency reads.
func (b *Backend) IncidentEdges(view graph.View, node graph.UID, dir plan.Direction, _ *rpe.Atom, _ *rpe.Checked, gov *plan.Governor) ([]graph.UID, error) {
	if o := b.obs.Load(); o != nil {
		o.edgeProbes.Add(1)
	}
	if err := gov.CheckNow(); err != nil {
		return nil, err
	}
	if dir == plan.Forward {
		return b.store.OutEdges(node), nil
	}
	return b.store.InEdges(node), nil
}

// uniqueLookup resolves an equality predicate on a unique field through
// the store's unique index. The field may be declared on the atom's class
// or any ancestor; the index is keyed by the declaring class.
func uniqueLookup(st *graph.Store, cls *schema.Class, a *rpe.Atom) (graph.UID, bool) {
	for _, p := range a.Preds {
		if p.Op != rpe.OpEq {
			continue
		}
		for cur := cls; cur != nil; cur = cur.Parent {
			for _, f := range cur.OwnFields {
				if f.Name == p.Field && f.Unique {
					if uid, ok := st.LookupUnique(cur.Name, f.Name, p.Value); ok {
						return uid, true
					}
					return 0, true // unique miss: provably empty
				}
			}
		}
	}
	return 0, false
}
