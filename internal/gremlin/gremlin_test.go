package gremlin

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/netmodel"
	"repro/internal/plan"
	"repro/internal/rpe"
	"repro/internal/temporal"
)

var t0 = time.Date(2017, 2, 15, 0, 0, 0, 0, time.UTC)

func demoBackend(t *testing.T) (*Backend, *netmodel.Demo) {
	t.Helper()
	st := graph.NewStore(netmodel.MustSchema(), temporal.NewManualClock(t0))
	d, err := netmodel.BuildDemo(st, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return New(st), d
}

func checked(t *testing.T, b *Backend, src string) *rpe.Checked {
	t.Helper()
	c, err := rpe.CheckString(src, b.Store().Schema())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustAnchor(t *testing.T, b *Backend, view graph.View, c *rpe.Checked) []graph.UID {
	t.Helper()
	out, err := b.AnchorElements(view, c, c.Atoms()[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func mustEdges(t *testing.T, b *Backend, view graph.View, node graph.UID, dir plan.Direction, atom *rpe.Atom, c *rpe.Checked) []graph.UID {
	t.Helper()
	out, err := b.IncidentEdges(view, node, dir, atom, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestLabelMatches(t *testing.T) {
	cases := []struct {
		query, elem string
		want        bool
	}{
		{"Node:Container:VM", "Node:Container:VM:VMWare", true},
		{"Node:Container:VM", "Node:Container:VM", true},
		{"Node:Container", "Node:Container:Docker", true},
		{"Node:Container:VM", "Node:Container:Docker", false},
		// Prefix matching must respect segment boundaries: "VM" is not a
		// prefix-match for "VMWare" as a sibling label.
		{"Node:VM", "Node:VMWare", false},
		{"Node", "Edge:Vertical", false},
	}
	for _, c := range cases {
		if got := LabelMatches(c.query, c.elem); got != c.want {
			t.Errorf("LabelMatches(%q, %q) = %v, want %v", c.query, c.elem, got, c.want)
		}
	}
}

func TestLabelIsInheritancePath(t *testing.T) {
	b, _ := demoBackend(t)
	vmware := b.Store().Schema().MustClass("VMWare")
	if Label(vmware) != "Node:Container:VM:VMWare" {
		t.Errorf("Label = %q", Label(vmware))
	}
}

func TestAnchorElementsUniqueIndex(t *testing.T) {
	b, d := demoBackend(t)
	view := graph.CurrentView(b.Store())
	// Unique-field equality resolves through the id index: one element.
	c := checked(t, b, "Host(id=1001)")
	got := mustAnchor(t, b, view, c)
	if len(got) != 1 || got[0] != d.Host1 {
		t.Fatalf("AnchorElements = %v, want [%d]", got, d.Host1)
	}
	// A unique miss is provably empty.
	c = checked(t, b, "Host(id=424242)")
	if got := mustAnchor(t, b, view, c); len(got) != 0 {
		t.Fatalf("missing id returned %v", got)
	}
	// An id owned by a class outside the atom's subtree must not match.
	c = checked(t, b, "VM(id=1001)") // 1001 is host-1
	if got := mustAnchor(t, b, view, c); len(got) != 0 {
		t.Fatalf("cross-class id matched: %v", got)
	}
}

func TestAnchorElementsLabelScan(t *testing.T) {
	b, _ := demoBackend(t)
	view := graph.CurrentView(b.Store())
	// VM() must cover all VM subclasses (vm-1, vm-2 VMWare; vm-3 KVMGuest)
	// but no Docker containers.
	c := checked(t, b, "VM(status='Green')")
	got := mustAnchor(t, b, view, c)
	if len(got) != 3 {
		t.Fatalf("VM label scan = %d elements, want 3", len(got))
	}
	// Container() covers VMs and Dockers alike.
	c = checked(t, b, "Container()")
	if got := mustAnchor(t, b, view, c); len(got) != 3 {
		t.Fatalf("Container label scan = %d elements", len(got))
	}
	// Edge-class scan.
	c = checked(t, b, "OnServer()")
	if got := mustAnchor(t, b, view, c); len(got) != 3 {
		t.Fatalf("OnServer scan = %d elements", len(got))
	}
}

func TestIncidentEdgesUnpartitioned(t *testing.T) {
	b, d := demoBackend(t)
	view := graph.CurrentView(b.Store())
	// The property-graph adjacency is unpartitioned: the hint is ignored
	// and every incident edge comes back (vm-1: OnServer + VirtualLink).
	out := mustEdges(t, b, view, d.VM1, plan.Forward, nil, nil)
	if len(out) != 2 {
		t.Fatalf("out edges of vm-1 = %d, want 2", len(out))
	}
	in := mustEdges(t, b, view, d.VM1, plan.Backward, nil, nil)
	if len(in) != 2 { // OnVM from fw-vfc-1 + VirtualLink from tenant-net
		t.Fatalf("in edges of vm-1 = %d, want 2", len(in))
	}
}
