// Package temporal implements the transaction-time machinery that underlies
// Nepal's time-travel queries: half-open validity intervals with an
// open-ended "still current" upper bound, interval intersection, and
// maximal-range coalescing of interval sets.
//
// Every node and edge version in a Nepal graph carries an Interval (its
// sys_period, in the vocabulary of the temporal_tables Postgres extension
// the paper builds on). A pathway's validity range is the intersection of
// the ranges of its constituent node and edge versions, and a time-range
// query reports the maximal such ranges.
package temporal

import (
	"fmt"
	"time"
)

// Forever is the sentinel upper bound for intervals that are still current.
// It is far enough in the future that no transaction time reaches it.
var Forever = time.Date(9999, 12, 31, 23, 59, 59, 0, time.UTC)

// Interval is a half-open transaction-time range [Start, End). An interval
// with End equal to Forever is current: the fact it stamps has been
// inserted (or last updated) at Start and not yet deleted or superseded.
type Interval struct {
	Start time.Time
	End   time.Time
}

// Current returns an open-ended interval starting at start.
func Current(start time.Time) Interval {
	return Interval{Start: start, End: Forever}
}

// Between returns the interval [start, end).
func Between(start, end time.Time) Interval {
	return Interval{Start: start, End: end}
}

// IsCurrent reports whether the interval is still open (End == Forever).
func (iv Interval) IsCurrent() bool {
	return iv.End.Equal(Forever)
}

// IsEmpty reports whether the interval contains no time points.
func (iv Interval) IsEmpty() bool {
	return !iv.Start.Before(iv.End)
}

// Contains reports whether t lies within [Start, End).
func (iv Interval) Contains(t time.Time) bool {
	return !t.Before(iv.Start) && t.Before(iv.End)
}

// Overlaps reports whether the two intervals share at least one point.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Start.Before(other.End) && other.Start.Before(iv.End)
}

// Meets reports whether iv ends exactly where other starts.
func (iv Interval) Meets(other Interval) bool {
	return iv.End.Equal(other.Start)
}

// Intersect returns the overlap of the two intervals. The second return
// value is false when the intervals are disjoint.
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	start := iv.Start
	if other.Start.After(start) {
		start = other.Start
	}
	end := iv.End
	if other.End.Before(end) {
		end = other.End
	}
	if !start.Before(end) {
		return Interval{}, false
	}
	return Interval{Start: start, End: end}, true
}

// Union returns the smallest interval covering both intervals when they
// overlap or meet; ok is false when they are separated by a gap.
func (iv Interval) Union(other Interval) (Interval, bool) {
	if !iv.Overlaps(other) && !iv.Meets(other) && !other.Meets(iv) {
		return Interval{}, false
	}
	start := iv.Start
	if other.Start.Before(start) {
		start = other.Start
	}
	end := iv.End
	if other.End.After(end) {
		end = other.End
	}
	return Interval{Start: start, End: end}, true
}

// Equal reports whether the two intervals have identical bounds.
func (iv Interval) Equal(other Interval) bool {
	return iv.Start.Equal(other.Start) && iv.End.Equal(other.End)
}

// Duration returns the length of the interval; open intervals report the
// duration up to the supplied now.
func (iv Interval) Duration(now time.Time) time.Duration {
	end := iv.End
	if iv.IsCurrent() && now.Before(iv.End) {
		end = now
	}
	if end.Before(iv.Start) {
		return 0
	}
	return end.Sub(iv.Start)
}

// String renders the interval using the paper's result notation:
// [start, end] for closed history rows and [start, ] for current rows.
func (iv Interval) String() string {
	const layout = "2006-01-02 15:04:05"
	if iv.IsCurrent() {
		return fmt.Sprintf("[%s, ]", iv.Start.UTC().Format(layout))
	}
	return fmt.Sprintf("[%s, %s]", iv.Start.UTC().Format(layout), iv.End.UTC().Format(layout))
}
