package temporal

import (
	"sort"
	"strings"
	"time"
)

// Set is a collection of intervals. It is the result type of When-Exists
// style temporal aggregates: the time periods during which some pathway
// satisfying a query existed. A normalized Set is sorted by start time and
// contains pairwise disjoint, non-meeting intervals — the maximal ranges
// the paper's time-range semantics require.
type Set []Interval

// Normalize sorts the set and coalesces overlapping or meeting intervals
// into maximal ranges, dropping empty intervals. The receiver is not
// modified; a new set is returned.
func (s Set) Normalize() Set {
	work := make(Set, 0, len(s))
	for _, iv := range s {
		if !iv.IsEmpty() {
			work = append(work, iv)
		}
	}
	if len(work) <= 1 {
		return work
	}
	sort.Slice(work, func(i, j int) bool {
		if !work[i].Start.Equal(work[j].Start) {
			return work[i].Start.Before(work[j].Start)
		}
		return work[i].End.Before(work[j].End)
	})
	out := Set{work[0]}
	for _, iv := range work[1:] {
		last := &out[len(out)-1]
		if merged, ok := last.Union(iv); ok {
			*last = merged
			continue
		}
		out = append(out, iv)
	}
	return out
}

// Contains reports whether any interval in the set contains t.
func (s Set) Contains(t time.Time) bool {
	for _, iv := range s {
		if iv.Contains(t) {
			return true
		}
	}
	return false
}

// IsEmpty reports whether the set covers no time points.
func (s Set) IsEmpty() bool {
	for _, iv := range s {
		if !iv.IsEmpty() {
			return false
		}
	}
	return true
}

// Intersect returns the normalized intersection of two interval sets.
func (s Set) Intersect(other Set) Set {
	a, b := s.Normalize(), other.Normalize()
	var out Set
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if iv, ok := a[i].Intersect(b[j]); ok {
			out = append(out, iv)
		}
		if a[i].End.Before(b[j].End) {
			i++
		} else {
			j++
		}
	}
	return out
}

// Union returns the normalized union of two interval sets.
func (s Set) Union(other Set) Set {
	return append(append(Set{}, s...), other...).Normalize()
}

// ClipTo restricts the set to the window w, returning maximal subranges.
func (s Set) ClipTo(w Interval) Set {
	return s.Intersect(Set{w})
}

// First returns the earliest time point covered by the set; ok is false
// when the set is empty. It answers First-Time-When-Exists aggregates.
func (s Set) First() (time.Time, bool) {
	n := s.Normalize()
	if len(n) == 0 {
		return time.Time{}, false
	}
	return n[0].Start, true
}

// Last returns the supremum of the set: the end of its latest interval
// (Forever when the set is still current). ok is false when the set is
// empty. It answers Last-Time-When-Exists aggregates.
func (s Set) Last() (time.Time, bool) {
	n := s.Normalize()
	if len(n) == 0 {
		return time.Time{}, false
	}
	return n[len(n)-1].End, true
}

// TotalDuration sums the durations of the normalized set.
func (s Set) TotalDuration(now time.Time) time.Duration {
	var d time.Duration
	for _, iv := range s.Normalize() {
		d += iv.Duration(now)
	}
	return d
}

// String renders the normalized set as a comma-separated interval list.
func (s Set) String() string {
	n := s.Normalize()
	parts := make([]string, len(n))
	for i, iv := range n {
		parts[i] = iv.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
