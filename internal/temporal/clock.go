package temporal

import (
	"sync"
	"time"
)

// Clock issues strictly monotonically increasing transaction timestamps.
// Stores use it to stamp sys_period bounds: two updates that arrive within
// the same wall-clock instant must still receive distinct, ordered
// transaction times so that history intervals never collapse to empty.
//
// The zero Clock is ready to use and follows the system wall clock. Tests
// and deterministic workload replays install a fixed base time and step
// with SetNow/Advance.
type Clock struct {
	mu     sync.Mutex
	last   time.Time
	manual bool
	now    time.Time
}

// NewManualClock returns a Clock pinned at start that only moves when
// Advance or SetNow is called (plus the minimal tick Next applies to stay
// strictly monotonic).
func NewManualClock(start time.Time) *Clock {
	return &Clock{manual: true, now: start}
}

// Next returns the next transaction timestamp. Successive calls always
// return strictly increasing times.
func (c *Clock) Next() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t time.Time
	if c.manual {
		t = c.now
	} else {
		t = time.Now().UTC()
	}
	if !t.After(c.last) {
		t = c.last.Add(time.Microsecond)
	}
	c.last = t
	return t
}

// Now reports the clock's current reading without consuming a timestamp.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.manual {
		if c.last.After(c.now) {
			return c.last
		}
		return c.now
	}
	t := time.Now().UTC()
	if !t.After(c.last) {
		return c.last
	}
	return t
}

// Fence returns the clock's current reading and guarantees that every
// subsequently issued timestamp lies strictly after it. Unlike Now, the
// reading is a safe coverage watermark: no future Next can return a time
// at or before a fenced reading, so "everything at or before this time"
// is a closed set the moment Fence returns.
func (c *Clock) Fence() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t time.Time
	if c.manual {
		t = c.now
	} else {
		t = time.Now().UTC()
	}
	if t.Before(c.last) {
		t = c.last
	}
	c.last = t
	return t
}

// Latest returns the newest timestamp the clock has issued or been fenced
// or ensured past (zero before the first). It never advances the clock.
func (c *Clock) Latest() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// EnsureAfter guarantees that subsequently issued timestamps lie strictly
// after t — used when restoring persisted history so new writes never
// collide with stored transaction times. Works on both wall and manual
// clocks.
func (c *Clock) EnsureAfter(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.last.After(t) {
		c.last = t
	}
}

// Advance moves a manual clock forward by d. It panics on a wall clock.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.manual {
		panic("temporal: Advance on wall clock")
	}
	c.now = c.now.Add(d)
}

// SetNow pins a manual clock at t. It panics on a wall clock.
func (c *Clock) SetNow(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.manual {
		panic("temporal: SetNow on wall clock")
	}
	c.now = t
}
