package temporal

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

var base = time.Date(2017, 2, 15, 0, 0, 0, 0, time.UTC)

func at(h int) time.Time { return base.Add(time.Duration(h) * time.Hour) }

func TestIntervalContains(t *testing.T) {
	iv := Between(at(1), at(5))
	cases := []struct {
		t    time.Time
		want bool
	}{
		{at(0), false},
		{at(1), true}, // closed lower bound
		{at(3), true},
		{at(5), false}, // open upper bound
		{at(9), false},
	}
	for _, c := range cases {
		if got := iv.Contains(c.t); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestIntervalCurrent(t *testing.T) {
	iv := Current(at(2))
	if !iv.IsCurrent() {
		t.Fatal("Current interval not reported current")
	}
	if !iv.Contains(at(1000000)) {
		t.Error("current interval should contain any future time")
	}
	if iv.Contains(at(1)) {
		t.Error("current interval should not contain times before start")
	}
}

func TestIntervalIntersect(t *testing.T) {
	a := Between(at(1), at(5))
	b := Between(at(3), at(8))
	got, ok := a.Intersect(b)
	if !ok || !got.Equal(Between(at(3), at(5))) {
		t.Errorf("Intersect = %v, %v", got, ok)
	}
	if _, ok := a.Intersect(Between(at(5), at(6))); ok {
		t.Error("touching intervals must not intersect (half-open)")
	}
	if _, ok := a.Intersect(Between(at(7), at(9))); ok {
		t.Error("disjoint intervals must not intersect")
	}
}

func TestIntervalUnion(t *testing.T) {
	a := Between(at(1), at(5))
	if got, ok := a.Union(Between(at(5), at(7))); !ok || !got.Equal(Between(at(1), at(7))) {
		t.Errorf("meeting union = %v, %v", got, ok)
	}
	if got, ok := a.Union(Between(at(2), at(3))); !ok || !got.Equal(a) {
		t.Errorf("contained union = %v, %v", got, ok)
	}
	if _, ok := a.Union(Between(at(6), at(7))); ok {
		t.Error("gapped union must fail")
	}
}

func TestIntervalEmpty(t *testing.T) {
	if !Between(at(5), at(5)).IsEmpty() {
		t.Error("zero-width interval should be empty")
	}
	if !Between(at(5), at(3)).IsEmpty() {
		t.Error("inverted interval should be empty")
	}
	if Between(at(3), at(5)).IsEmpty() {
		t.Error("proper interval should not be empty")
	}
}

func TestIntervalDuration(t *testing.T) {
	if d := Between(at(1), at(4)).Duration(at(100)); d != 3*time.Hour {
		t.Errorf("closed duration = %v", d)
	}
	if d := Current(at(1)).Duration(at(4)); d != 3*time.Hour {
		t.Errorf("open duration clipped to now = %v", d)
	}
}

func TestIntervalString(t *testing.T) {
	if s := Between(at(1), at(2)).String(); s != "[2017-02-15 01:00:00, 2017-02-15 02:00:00]" {
		t.Errorf("String = %q", s)
	}
	if s := Current(at(1)).String(); s != "[2017-02-15 01:00:00, ]" {
		t.Errorf("current String = %q", s)
	}
}

func TestSetNormalizeCoalesces(t *testing.T) {
	s := Set{
		Between(at(4), at(6)),
		Between(at(1), at(3)),
		Between(at(2), at(4)), // meets+overlaps: everything from 1 to 6 merges
		Between(at(8), at(9)),
		Between(at(7), at(7)), // empty, dropped
	}
	got := s.Normalize()
	want := Set{Between(at(1), at(6)), Between(at(8), at(9))}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Normalize = %v, want %v", got, want)
	}
}

func TestSetIntersect(t *testing.T) {
	a := Set{Between(at(1), at(5)), Between(at(8), at(12))}
	b := Set{Between(at(3), at(9))}
	got := a.Intersect(b)
	want := Set{Between(at(3), at(5)), Between(at(8), at(9))}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
}

func TestSetFirstLast(t *testing.T) {
	s := Set{Between(at(8), at(9)), Between(at(1), at(2))}
	if first, ok := s.First(); !ok || !first.Equal(at(1)) {
		t.Errorf("First = %v, %v", first, ok)
	}
	if last, ok := s.Last(); !ok || !last.Equal(at(9)) {
		t.Errorf("Last = %v, %v", last, ok)
	}
	if _, ok := (Set{}).First(); ok {
		t.Error("empty set must have no First")
	}
}

func TestSetClipTo(t *testing.T) {
	s := Set{Between(at(1), at(10))}
	got := s.ClipTo(Between(at(4), at(6)))
	if !reflect.DeepEqual(got, Set{Between(at(4), at(6))}) {
		t.Errorf("ClipTo = %v", got)
	}
}

// randInterval builds a small random interval for property tests.
func randInterval(r *rand.Rand) Interval {
	a, b := r.Intn(50), r.Intn(50)
	if a > b {
		a, b = b, a
	}
	return Between(at(a), at(b+1))
}

func randSet(r *rand.Rand) Set {
	n := r.Intn(6)
	s := make(Set, n)
	for i := range s {
		s[i] = randInterval(r)
	}
	return s
}

// Generate makes Set usable with testing/quick.
func (Set) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randSet(r))
}

func TestQuickNormalizeIdempotent(t *testing.T) {
	f := func(s Set) bool {
		n := s.Normalize()
		return reflect.DeepEqual(n, n.Normalize())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickNormalizePreservesMembership(t *testing.T) {
	f := func(s Set) bool {
		n := s.Normalize()
		for h := 0; h < 55; h++ {
			if s.Contains(at(h)) != n.Contains(at(h)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickNormalizeMaximal(t *testing.T) {
	// No two intervals in a normalized set may overlap or meet: each range
	// must be maximal, as the paper's time-range query semantics require.
	f := func(s Set) bool {
		n := s.Normalize()
		for i := 1; i < len(n); i++ {
			if n[i-1].Overlaps(n[i]) || n[i-1].Meets(n[i]) {
				return false
			}
			if !n[i-1].Start.Before(n[i].Start) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectCommutative(t *testing.T) {
	f := func(a, b Set) bool {
		return reflect.DeepEqual(a.Intersect(b), b.Intersect(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectSound(t *testing.T) {
	f := func(a, b Set) bool {
		got := a.Intersect(b)
		for h := 0; h < 55; h++ {
			want := a.Contains(at(h)) && b.Contains(at(h))
			if got.Contains(at(h)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionSound(t *testing.T) {
	f := func(a, b Set) bool {
		got := a.Union(b)
		for h := 0; h < 55; h++ {
			want := a.Contains(at(h)) || b.Contains(at(h))
			if got.Contains(at(h)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectDistributesOverUnion(t *testing.T) {
	f := func(a, b, c Set) bool {
		left := a.Intersect(b.Union(c)).Normalize()
		right := a.Intersect(b).Union(a.Intersect(c)).Normalize()
		return reflect.DeepEqual(left, right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockMonotonic(t *testing.T) {
	c := &Clock{}
	prev := c.Next()
	for i := 0; i < 1000; i++ {
		next := c.Next()
		if !next.After(prev) {
			t.Fatalf("clock went backwards: %v then %v", prev, next)
		}
		prev = next
	}
}

func TestManualClock(t *testing.T) {
	c := NewManualClock(at(0))
	t1 := c.Next()
	if !t1.Equal(at(0)) {
		t.Fatalf("first tick = %v", t1)
	}
	t2 := c.Next()
	if !t2.After(t1) {
		t.Fatal("manual clock must still be strictly monotonic")
	}
	c.Advance(time.Hour)
	t3 := c.Next()
	if !t3.Equal(at(1)) {
		t.Fatalf("after Advance tick = %v", t3)
	}
	if c.Now().Before(t3) {
		t.Error("Now must not run behind issued timestamps")
	}
}

func TestClockNextConcurrent(t *testing.T) {
	c := NewManualClock(at(0))
	const n = 100
	ch := make(chan time.Time, n)
	for i := 0; i < n; i++ {
		go func() { ch <- c.Next() }()
	}
	seen := make(map[int64]bool, n)
	for i := 0; i < n; i++ {
		ts := <-ch
		if seen[ts.UnixNano()] {
			t.Fatal("duplicate timestamp issued concurrently")
		}
		seen[ts.UnixNano()] = true
	}
}
