// Package query implements the Nepal query language front end (§3.4, §4):
// the SQL-like surface with Retrieve/Select verbs, pathway range variables
// over the PATHS view, MATCHES predicates holding regular pathway
// expressions, source()/target() joins, NOT EXISTS subqueries, and the
// temporal forms — query-level AT timeslices and ranges, per-variable
// @time bindings, and the First/Last/When-Exists aggregates.
package query

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/rpe"
)

// Verb distinguishes Retrieve (pathways out) from Select (post-processed
// projections out).
type Verb int

const (
	Retrieve Verb = iota
	Select
)

func (v Verb) String() string {
	if v == Select {
		return "Select"
	}
	return "Retrieve"
}

// AggKind marks the temporal aggregation form wrapping the query.
type AggKind int

const (
	AggNone       AggKind = iota
	AggFirstTime          // FIRST TIME WHEN EXISTS q
	AggLastTime           // LAST TIME WHEN EXISTS q
	AggWhenExists         // WHEN EXISTS q
)

func (a AggKind) String() string {
	switch a {
	case AggFirstTime:
		return "First Time When Exists"
	case AggLastTime:
		return "Last Time When Exists"
	case AggWhenExists:
		return "When Exists"
	}
	return ""
}

// TimeSpec is an AT clause: a point (AT t) or a range (AT t1 : t2).
type TimeSpec struct {
	Start   time.Time
	End     time.Time
	IsRange bool
}

func (ts *TimeSpec) String() string {
	const layout = "2006-01-02 15:04:05"
	if ts.IsRange {
		return fmt.Sprintf("AT '%s' : '%s'", ts.Start.Format(layout), ts.End.Format(layout))
	}
	return fmt.Sprintf("AT '%s'", ts.Start.Format(layout))
}

// PathFn is a pathway function usable in projections and join terms.
type PathFn int

const (
	FnNone   PathFn = iota // bare variable (pathway projection)
	FnSource               // source(P): first node
	FnTarget               // target(P): last node
	FnLen                  // len(P): number of edges
	FnCount                // count(P): pathway-set aggregation (Select only)
)

func (f PathFn) String() string {
	switch f {
	case FnSource:
		return "source"
	case FnTarget:
		return "target"
	case FnLen:
		return "len"
	case FnCount:
		return "count"
	}
	return ""
}

// Term is a variable reference, optionally through a pathway function and
// a field access: P, source(P), source(P).name.
type Term struct {
	Var   string
	Fn    PathFn
	Field string // non-empty only with FnSource/FnTarget
}

func (t Term) String() string {
	s := t.Var
	if t.Fn != FnNone {
		s = fmt.Sprintf("%s(%s)", t.Fn, t.Var)
	}
	if t.Field != "" {
		s += "." + t.Field
	}
	return s
}

// RangeVar declares one pathway variable in the From clause, optionally
// bound to its own time point or range (P(@'2017-02-15 10:00')).
//
// Source names the pathway view the variable ranges over. "PATHS" — the
// set of all pathways — is the base view; additional named views
// (defined with an RPE) supply an implicit MATCHES predicate, per §3.4:
// "each pathway variable must have a MATCHES predicate (unless one is
// implicit in the pathway view source)".
type RangeVar struct {
	Source string
	Name   string
	At     *TimeSpec
	// Match is the variable's MATCHES expression, attached during analysis
	// (the predicate also remains in Preds for faithful printing).
	Match rpe.Expr
	// ViewMatch is the implicit expression contributed by a named view.
	ViewMatch rpe.Expr
}

// BaseView is the name of the built-in view of all pathways.
const BaseView = "PATHS"

func (rv RangeVar) String() string {
	src := rv.Source
	if src == "" {
		src = BaseView
	}
	if rv.At == nil {
		return src + " " + rv.Name
	}
	if rv.At.IsRange {
		return fmt.Sprintf("%s %s(@'%s' : '%s')", src, rv.Name,
			rv.At.Start.Format("2006-01-02 15:04:05"), rv.At.End.Format("2006-01-02 15:04:05"))
	}
	return fmt.Sprintf("%s %s(@'%s')", src, rv.Name, rv.At.Start.Format("2006-01-02 15:04:05"))
}

// Pred is one conjunct of the Where clause.
type Pred interface{ fmt.Stringer }

// MatchPred is "P MATCHES <rpe>".
type MatchPred struct {
	Var  string
	Expr rpe.Expr
}

func (m *MatchPred) String() string { return fmt.Sprintf("%s MATCHES %s", m.Var, m.Expr) }

// JoinPred is "term = term" or "term != term" over source/target/len terms.
type JoinPred struct {
	Left, Right Term
	Negated     bool
}

func (j *JoinPred) String() string {
	op := "="
	if j.Negated {
		op = "!="
	}
	return fmt.Sprintf("%s %s %s", j.Left, op, j.Right)
}

// NotExistsPred is "NOT EXISTS ( <query> )"; the subquery may reference
// outer variables in its join predicates (correlation).
type NotExistsPred struct {
	Sub *Query
}

func (n *NotExistsPred) String() string { return "NOT EXISTS (" + n.Sub.String() + ")" }

// Query is a parsed Nepal query.
type Query struct {
	Agg   AggKind
	At    *TimeSpec
	Verb  Verb
	Projs []Term
	Vars  []RangeVar
	Preds []Pred
}

// Var returns the declared range variable by name.
func (q *Query) Var(name string) (*RangeVar, bool) {
	for i := range q.Vars {
		if q.Vars[i].Name == name {
			return &q.Vars[i], true
		}
	}
	return nil, false
}

// String renders the query in canonical Nepal syntax.
func (q *Query) String() string {
	var sb strings.Builder
	if q.Agg != AggNone {
		sb.WriteString(q.Agg.String())
		sb.WriteByte(' ')
	}
	if q.At != nil {
		sb.WriteString(q.At.String())
		sb.WriteByte(' ')
	}
	sb.WriteString(q.Verb.String())
	sb.WriteByte(' ')
	for i, p := range q.Projs {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.String())
	}
	sb.WriteString(" From ")
	for i, v := range q.Vars {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	if len(q.Preds) > 0 {
		sb.WriteString(" Where ")
		for i, p := range q.Preds {
			if i > 0 {
				sb.WriteString(" And ")
			}
			sb.WriteString(p.String())
		}
	}
	return sb.String()
}
