package query

import (
	"strings"
	"testing"
	"time"

	"repro/internal/netmodel"
	"repro/internal/rpe"
)

var sch = netmodel.MustSchema()

func TestParsePaperQueries(t *testing.T) {
	// Every query from §3.4 and §4 of the paper must parse (with class
	// names adjusted to the netmodel schema).
	sources := []string{
		`Retrieve P From PATHS P WHERE P MATCHES VNF()->VFC()->VM()->Host(id=23245)`,

		`Retrieve P From PATHS P WHERE P MATCHES VNF()->[Vertical()]{1,6}->Host(id=23245)`,

		`Retrieve Phys
		 From PATHS D1, PATHS D2, PATHS Phys
		 Where D1 MATCHES VNF(id=123)->Vertical(){1,6}->Host()
		 And D2 MATCHES VNF(id=234)->Vertical(){1,6}->Host()
		 And Phys MATCHES ConnectsTo(){1,8}
		 And source(Phys)=target(D1)
		 And target(Phys)=target(D2)`,

		`Retrieve V From PATHS V
		 Where V MATCHES VM()
		 And NOT EXISTS(
		   Retrieve P from PATHS P
		   Where P MATCHES (VNF()|VFC())->[HostedOn()]{1,5}->VM()
		   And target(V) = target(P)
		 )`,

		`Select source(V).name, source(V).id From PATHS V Where V MATCHES VM()`,

		`AT '2017-02-15 10:00:00'
		 Select source(P) From PATHS P
		 Where P MATCHES VNF()->[HostedOn()]{1,6}->Host(id=23245)`,

		`Select source(P) From PATHS P(@'2017-02-15 10:00'), Q(@'2017-02-15 11:00')
		 Where P MATCHES VNF()->[HostedOn()]{1,6}->Host(id=23245)
		 And Q MATCHES VNF()->[HostedOn()]{1,6}->Host(id=34356)
		 And source(P) = source(Q)`,

		`AT '2017-02-15 09:00' : '2017-02-15 11:00'
		 Select source(P) From PATHS P
		 Where P MATCHES VNF()->[HostedOn()]{1,6}->Host(id=23245)`,

		`First Time When Exists Retrieve P From PATHS P Where P MATCHES VM(status='Red')`,
		`Last Time When Exists Retrieve P From PATHS P Where P MATCHES VM(status='Red')`,
		`When Exists Retrieve P From PATHS P Where P MATCHES VM(status='Red')`,
	}
	for _, src := range sources {
		q, err := Parse(src)
		if err != nil {
			t.Errorf("Parse failed: %v\n  query: %s", err, src)
			continue
		}
		// The canonical rendering must reparse to the same rendering.
		q2, err := Parse(q.String())
		if err != nil {
			t.Errorf("reparse of %q: %v", q.String(), err)
			continue
		}
		if q.String() != q2.String() {
			t.Errorf("print/parse round trip: %q != %q", q.String(), q2.String())
		}
	}
}

func TestParseStructure(t *testing.T) {
	q := MustParse(`AT '2017-02-15 10:00:00' Select source(P).name From PATHS P Where P MATCHES VM()`)
	if q.Verb != Select {
		t.Error("verb")
	}
	if q.At == nil || q.At.IsRange || !q.At.Start.Equal(time.Date(2017, 2, 15, 10, 0, 0, 0, time.UTC)) {
		t.Errorf("at = %+v", q.At)
	}
	if len(q.Projs) != 1 || q.Projs[0].Fn != FnSource || q.Projs[0].Field != "name" {
		t.Errorf("projs = %+v", q.Projs)
	}
	if len(q.Vars) != 1 || q.Vars[0].Name != "P" {
		t.Errorf("vars = %+v", q.Vars)
	}

	q = MustParse(`AT '2017-02-15 09:00' : '2017-02-15 11:00' Retrieve P From PATHS P Where P MATCHES VM()`)
	if q.At == nil || !q.At.IsRange || !q.At.End.Equal(time.Date(2017, 2, 15, 11, 0, 0, 0, time.UTC)) {
		t.Errorf("range at = %+v", q.At)
	}

	q = MustParse(`Retrieve P From PATHS P(@'2017-02-15 10:00') Where P MATCHES VM()`)
	if q.Vars[0].At == nil || q.Vars[0].At.IsRange {
		t.Errorf("var at = %+v", q.Vars[0].At)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct{ name, src string }{
		{"missing from", `Retrieve P Where P MATCHES VM()`},
		{"missing verb", `From PATHS P Where P MATCHES VM()`},
		{"reserved var", `Retrieve source From PATHS source`},
		{"bad time", `AT 'not a time' Retrieve P From PATHS P Where P MATCHES VM()`},
		{"inverted range", `AT '2017-02-15 11:00' : '2017-02-15 09:00' Retrieve P From PATHS P Where P MATCHES VM()`},
		{"dangling and", `Retrieve P From PATHS P Where P MATCHES VM() And`},
		{"unclosed subquery", `Retrieve P From PATHS P Where NOT EXISTS( Retrieve Q From PATHS Q Where Q MATCHES VM()`},
		{"len with field", `Select len(P).name From PATHS P Where P MATCHES VM()`},
		{"bad join op", `Retrieve P From PATHS P Where source(P) < target(P) And P MATCHES VM()`},
	}
	for _, c := range bad {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: accepted: %s", c.name, c.src)
		}
	}
}

func TestAnalyzeBindsMatches(t *testing.T) {
	q := MustParse(`Retrieve P From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id=5)`)
	a, err := Analyze(q, sch)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checked["P"] == nil {
		t.Fatal("checked RPE not bound")
	}
	if len(a.Checked["P"].Atoms()) != 3 {
		t.Errorf("atoms = %d", len(a.Checked["P"].Atoms()))
	}
}

func TestAnalyzeErrors(t *testing.T) {
	bad := []struct{ name, src string }{
		{"no matches", `Retrieve P From PATHS P`},
		{"undeclared in matches", `Retrieve P From PATHS P Where P MATCHES VM() And Q MATCHES VM()`},
		{"double matches", `Retrieve P From PATHS P Where P MATCHES VM() And P MATCHES VNF()`},
		{"undeclared projection", `Retrieve Q From PATHS P Where P MATCHES VM()`},
		{"fn in retrieve", `Retrieve source(P) From PATHS P Where P MATCHES VM()`},
		{"unknown class", `Retrieve P From PATHS P Where P MATCHES Blob()`},
		{"bad field on endpoint", `Select source(P).vnfType From PATHS P Where P MATCHES VM()->OnServer()->Host()`},
		{"bare var join", `Retrieve P From PATHS P, PATHS Q Where P MATCHES VM() And Q MATCHES VM() And P = Q`},
		{"undeclared join var", `Retrieve P From PATHS P Where P MATCHES VM() And source(P) = source(Z)`},
	}
	for _, c := range bad {
		q, err := Parse(c.src)
		if err != nil {
			t.Errorf("%s: parse failed unexpectedly: %v", c.name, err)
			continue
		}
		if _, err := Analyze(q, sch); err == nil {
			t.Errorf("%s: analysis accepted: %s", c.name, c.src)
		}
	}
}

func TestAnalyzeEndpointClasses(t *testing.T) {
	// source(P) of a VM()->...->Host() pathway is VM; projecting a
	// VM-declared field works, projecting a Host field does not.
	q := MustParse(`Select source(P).flavor, target(P).rack From PATHS P Where P MATCHES VM()->OnServer()->Host()`)
	if _, err := Analyze(q, sch); err != nil {
		t.Errorf("VM/Host endpoint fields rejected: %v", err)
	}
	// An RPE beginning with an edge atom has an implicit source node whose
	// class is Node: only base fields project.
	q = MustParse(`Select source(P).name From PATHS P Where P MATCHES OnServer()`)
	if _, err := Analyze(q, sch); err != nil {
		t.Errorf("base field on implicit endpoint rejected: %v", err)
	}
	q = MustParse(`Select source(P).flavor From PATHS P Where P MATCHES OnServer()`)
	if _, err := Analyze(q, sch); err == nil {
		t.Error("subclass field on implicit Node endpoint accepted")
	}
	// Alternation endpoints give the LCA: (VM()|Docker()) -> Container.
	q = MustParse(`Select source(P).status From PATHS P Where P MATCHES (VM()|Docker())`)
	if _, err := Analyze(q, sch); err != nil {
		t.Errorf("LCA field rejected: %v", err)
	}
	q = MustParse(`Select source(P).flavor From PATHS P Where P MATCHES (VM()|Docker())`)
	if _, err := Analyze(q, sch); err == nil {
		t.Error("VM-only field on Container LCA accepted")
	}
}

func TestAnalyzeCorrelatedSubquery(t *testing.T) {
	q := MustParse(`Retrieve V From PATHS V
		Where V MATCHES VM()
		And NOT EXISTS(
			Retrieve P from PATHS P
			Where P MATCHES (VNF()|VFC())->[OnVM()]{1,5}->VM()
			And target(V) = target(P)
		)`)
	a, err := Analyze(q, sch)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Subqueries) != 1 {
		t.Fatalf("subqueries = %d", len(a.Subqueries))
	}
	sub := a.Subqueries[0]
	if !sub.IsOuterRef("V") {
		t.Error("V must be an outer reference inside the subquery")
	}
	if sub.IsOuterRef("P") {
		t.Error("P is local to the subquery")
	}
}

func TestEndpointClassHelpers(t *testing.T) {
	c, err := rpe.CheckString("VNF()->[Vertical()]{1,6}->Host()", sch)
	if err != nil {
		t.Fatal(err)
	}
	src, err := c.SourceClass()
	if err != nil || src.Name != netmodel.VNF {
		t.Errorf("SourceClass = %v, %v", src, err)
	}
	tgt, err := c.TargetClass()
	if err != nil || tgt.Name != netmodel.Host {
		t.Errorf("TargetClass = %v, %v", tgt, err)
	}
}

func TestQueryStringRendering(t *testing.T) {
	q := MustParse(`Retrieve P From PATHS P Where P MATCHES VM(status='Green')`)
	s := q.String()
	for _, want := range []string{"Retrieve P", "PATHS P", "MATCHES", "VM(status='Green')"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering %q missing %q", s, want)
		}
	}
}

func TestParseViewSource(t *testing.T) {
	q := MustParse(`Retrieve P From Placements P`)
	if q.Vars[0].Source != "Placements" || q.Vars[0].Name != "P" {
		t.Fatalf("view var = %+v", q.Vars[0])
	}
	// Analysis without the view in scope fails; with it, the view supplies
	// the implicit MATCHES.
	if _, err := Analyze(q, sch); err == nil {
		t.Fatal("unknown view accepted")
	}
	views := Views{"Placements": rpe.MustParse("VM()->OnServer()->Host()")}
	q = MustParse(`Retrieve P From Placements P`)
	a, err := AnalyzeWithViews(q, sch, views)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checked["P"] == nil {
		t.Fatal("view MATCHES not bound")
	}
	if len(a.ViewChecked) != 0 {
		t.Fatal("no extra filter expected when the view is the only constraint")
	}
	// Combined with explicit MATCHES, the view stays as a filter.
	q = MustParse(`Retrieve P From Placements P Where P MATCHES VM(status='Green')->OnServer()->Host()`)
	a, err = AnalyzeWithViews(q, sch, views)
	if err != nil {
		t.Fatal(err)
	}
	if a.ViewChecked["P"] == nil {
		t.Fatal("view filter missing when combined with explicit MATCHES")
	}
	// String round trip keeps the view source.
	if !strings.Contains(q.String(), "Placements P") {
		t.Errorf("rendering lost the view: %s", q.String())
	}
}

func TestParseCountProjection(t *testing.T) {
	q := MustParse(`Select count(P) From PATHS P Where P MATCHES VM()`)
	if q.Projs[0].Fn != FnCount {
		t.Fatalf("projs = %+v", q.Projs)
	}
	if _, err := Analyze(q, sch); err != nil {
		t.Fatal(err)
	}
	// count in Retrieve or joins is rejected.
	q = MustParse(`Retrieve count(P) From PATHS P Where P MATCHES VM()`)
	if _, err := Analyze(q, sch); err == nil {
		t.Fatal("count in Retrieve accepted")
	}
	q = MustParse(`Select count(P) From PATHS P, PATHS Q Where P MATCHES VM() And Q MATCHES VM() And count(P) = count(Q)`)
	if _, err := Analyze(q, sch); err == nil {
		t.Fatal("count in join accepted")
	}
}
