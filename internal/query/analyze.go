package query

import (
	"fmt"

	"repro/internal/rpe"
	"repro/internal/schema"
)

// Analyzed is a semantically checked query: every range variable is bound
// to its checked MATCHES expression, every term is resolved, and field
// projections are type-checked against the least-common-ancestor class of
// the pathway endpoint they project (§3.4).
type Analyzed struct {
	Query   *Query
	Schema  *schema.Schema
	Checked map[string]*rpe.Checked
	// ViewChecked holds, per variable ranging over a named view, the
	// view's checked RPE — an additional constraint the variable's
	// pathways must satisfy (with validity intersection semantics).
	ViewChecked map[string]*rpe.Checked
	// Subqueries holds the analyzed form of each NOT EXISTS subquery, in
	// predicate order.
	Subqueries []*Analyzed
	// Outer is the enclosing query for correlated subqueries.
	Outer *Analyzed
}

// Views maps user-defined pathway view names to their defining RPEs
// (§3.4: "the view PATHS is the set of all pathways. Additional views can
// be defined"). A variable ranging over a view gets the view's RPE as an
// implicit MATCHES predicate.
type Views map[string]rpe.Expr

// Analyze validates q against the schema. Rules enforced:
//   - every range variable has exactly one MATCHES predicate (§3.4);
//   - every term references a declared variable (or, in a subquery, an
//     outer variable — correlation);
//   - Retrieve projects bare pathway variables; Select may post-process
//     with source/target/len and typed field access;
//   - field accesses exist on the endpoint's LCA class.
func Analyze(q *Query, sch *schema.Schema) (*Analyzed, error) {
	return analyze(q, sch, nil, nil)
}

// AnalyzeWithViews analyzes q with user-defined pathway views in scope.
func AnalyzeWithViews(q *Query, sch *schema.Schema, views Views) (*Analyzed, error) {
	return analyze(q, sch, nil, views)
}

func analyze(q *Query, sch *schema.Schema, outer *Analyzed, views Views) (*Analyzed, error) {
	a := &Analyzed{Query: q, Schema: sch,
		Checked:     make(map[string]*rpe.Checked),
		ViewChecked: make(map[string]*rpe.Checked),
		Outer:       outer}

	seen := make(map[string]bool)
	for i := range q.Vars {
		rv := &q.Vars[i]
		if seen[rv.Name] {
			return nil, fmt.Errorf("query: variable %q declared twice", rv.Name)
		}
		seen[rv.Name] = true
		if rv.Source != "" && rv.Source != BaseView {
			expr, ok := views[rv.Source]
			if !ok {
				return nil, fmt.Errorf("query: variable %q ranges over unknown view %q", rv.Name, rv.Source)
			}
			rv.ViewMatch = expr
			checked, err := rpe.Check(expr, sch)
			if err != nil {
				return nil, fmt.Errorf("query: view %q: %w", rv.Source, err)
			}
			a.ViewChecked[rv.Name] = checked
		}
	}

	for _, p := range q.Preds {
		mp, ok := p.(*MatchPred)
		if !ok {
			continue
		}
		rv, declared := q.Var(mp.Var)
		if !declared {
			return nil, fmt.Errorf("query: MATCHES references undeclared variable %q", mp.Var)
		}
		if rv.Match != nil {
			return nil, fmt.Errorf("query: variable %q has more than one MATCHES predicate", mp.Var)
		}
		rv.Match = mp.Expr
		checked, err := rpe.Check(mp.Expr, sch)
		if err != nil {
			return nil, fmt.Errorf("query: in %s MATCHES: %w", mp.Var, err)
		}
		a.Checked[mp.Var] = checked
	}
	for i := range q.Vars {
		rv := &q.Vars[i]
		if rv.Match != nil {
			continue
		}
		// A named-view source supplies the implicit MATCHES predicate.
		if rv.ViewMatch != nil {
			rv.Match = rv.ViewMatch
			a.Checked[rv.Name] = a.ViewChecked[rv.Name]
			delete(a.ViewChecked, rv.Name) // no extra filtering needed
			continue
		}
		return nil, fmt.Errorf("query: variable %q has no MATCHES predicate", rv.Name)
	}

	hasCount := false
	for _, t := range q.Projs {
		if err := a.checkTerm(t, true); err != nil {
			return nil, err
		}
		if q.Verb == Retrieve && t.Fn != FnNone {
			return nil, fmt.Errorf("query: Retrieve returns pathways; use Select for %s", t)
		}
		if t.Fn == FnCount {
			hasCount = true
		}
	}
	if hasCount {
		// Pathway-set aggregation: count(P) collapses the result to one
		// row, so it cannot mix with per-row projections.
		for _, t := range q.Projs {
			if t.Fn != FnCount {
				return nil, fmt.Errorf("query: count(...) cannot mix with per-pathway projection %s", t)
			}
		}
	}

	for _, p := range q.Preds {
		switch pred := p.(type) {
		case *JoinPred:
			for _, t := range []Term{pred.Left, pred.Right} {
				if err := a.checkTerm(t, false); err != nil {
					return nil, err
				}
				if t.Fn == FnNone || t.Fn == FnCount {
					return nil, fmt.Errorf("query: join predicates compare source()/target()/len() terms, not %q", t)
				}
			}
		case *NotExistsPred:
			sub, err := analyze(pred.Sub, sch, a, views)
			if err != nil {
				return nil, err
			}
			a.Subqueries = append(a.Subqueries, sub)
		}
	}
	return a, nil
}

// checkTerm resolves the term's variable, walking outer scopes, and
// type-checks any field access. Projections must bind in the local scope.
func (a *Analyzed) checkTerm(t Term, localOnly bool) error {
	owner := a.resolve(t.Var, localOnly)
	if owner == nil {
		return fmt.Errorf("query: term %s references undeclared variable %q", t, t.Var)
	}
	if t.Field == "" {
		return nil
	}
	checked := owner.Checked[t.Var]
	var cls *schema.Class
	var err error
	if t.Fn == FnTarget {
		cls, err = checked.TargetClass()
	} else {
		cls, err = checked.SourceClass()
	}
	if err != nil {
		return err
	}
	if _, err := a.Schema.FieldOn(cls.Name, t.Field); err != nil {
		return fmt.Errorf("query: %s: %w (endpoint class is %s)", t, err, cls.Name)
	}
	return nil
}

// resolve finds the analyzed scope declaring the variable.
func (a *Analyzed) resolve(name string, localOnly bool) *Analyzed {
	if _, ok := a.Query.Var(name); ok {
		return a
	}
	if localOnly {
		return nil
	}
	if a.Outer != nil {
		return a.Outer.resolve(name, false)
	}
	return nil
}

// IsOuterRef reports whether the variable is declared in an enclosing
// query rather than locally (a correlated reference).
func (a *Analyzed) IsOuterRef(name string) bool {
	if _, ok := a.Query.Var(name); ok {
		return false
	}
	return a.Outer != nil && a.Outer.resolve(name, false) != nil
}
