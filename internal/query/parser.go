package query

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/rpe"
)

// Parse parses a Nepal query, e.g.
//
//	AT '2017-02-15 10:00:00'
//	Select source(P) From PATHS P
//	Where P MATCHES VNF()->[HostedOn()]{1,6}->Host(id=23245)
//
// Keywords are case-insensitive. Timestamps accept '2006-01-02 15:04',
// '2006-01-02 15:04:05', and RFC3339 forms, interpreted as UTC.
func Parse(src string) (*Query, error) {
	toks, err := rpe.Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != rpe.KindEOF {
		return nil, p.errf("unexpected input after query: %q", p.cur().Text)
	}
	return q, nil
}

// MustParse is Parse for known-good query literals.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []rpe.Token
	i    int
	src  string
}

func (p *parser) cur() rpe.Token  { return p.toks[p.i] }
func (p *parser) next() rpe.Token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("query: %s at position %d", fmt.Sprintf(format, args...), p.cur().Pos)
}

// kw reports whether the current token is the given keyword (an identifier
// compared case-insensitively).
func (p *parser) kw(word string) bool {
	return p.cur().Kind == rpe.KindIdent && strings.EqualFold(p.cur().Text, word)
}

func (p *parser) acceptKw(word string) bool {
	if p.kw(word) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKw(word string) error {
	if !p.acceptKw(word) {
		return p.errf("expected keyword %s, found %q", strings.ToUpper(word), p.cur().Text)
	}
	return nil
}

// query := agg? timeClause? verb projList FROM fromList (WHERE predList)?
func (p *parser) query() (*Query, error) {
	q := &Query{}

	switch {
	case p.kw("first"):
		p.next()
		if err := p.expectKw("time"); err != nil {
			return nil, err
		}
		if err := p.whenExists(); err != nil {
			return nil, err
		}
		q.Agg = AggFirstTime
	case p.kw("last"):
		p.next()
		if err := p.expectKw("time"); err != nil {
			return nil, err
		}
		if err := p.whenExists(); err != nil {
			return nil, err
		}
		q.Agg = AggLastTime
	case p.kw("when"):
		p.next()
		if err := p.expectKw("exists"); err != nil {
			return nil, err
		}
		q.Agg = AggWhenExists
	}

	if p.kw("at") {
		p.next()
		ts, err := p.timeSpec()
		if err != nil {
			return nil, err
		}
		q.At = ts
	}

	switch {
	case p.acceptKw("retrieve"):
		q.Verb = Retrieve
	case p.acceptKw("select"):
		q.Verb = Select
	default:
		return nil, p.errf("expected RETRIEVE or SELECT, found %q", p.cur().Text)
	}

	for {
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		q.Projs = append(q.Projs, t)
		if p.cur().Kind != rpe.KindComma {
			break
		}
		p.next()
	}

	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	for {
		rv, err := p.rangeVar()
		if err != nil {
			return nil, err
		}
		q.Vars = append(q.Vars, rv)
		if p.cur().Kind != rpe.KindComma {
			break
		}
		p.next()
	}

	if p.acceptKw("where") {
		for {
			pred, err := p.pred()
			if err != nil {
				return nil, err
			}
			q.Preds = append(q.Preds, pred)
			if !p.acceptKw("and") {
				break
			}
		}
	}
	return q, nil
}

func (p *parser) whenExists() error {
	if err := p.expectKw("when"); err != nil {
		return err
	}
	return p.expectKw("exists")
}

// timeSpec := STRING (':' STRING)?
func (p *parser) timeSpec() (*TimeSpec, error) {
	if p.cur().Kind != rpe.KindString {
		return nil, p.errf("expected a quoted timestamp after AT, found %q", p.cur().Text)
	}
	start, err := parseTime(p.next().Text)
	if err != nil {
		return nil, err
	}
	ts := &TimeSpec{Start: start}
	if p.cur().Kind == rpe.KindColon {
		p.next()
		if p.cur().Kind != rpe.KindString {
			return nil, p.errf("expected a quoted timestamp after ':'")
		}
		end, err := parseTime(p.next().Text)
		if err != nil {
			return nil, err
		}
		if !start.Before(end) {
			return nil, fmt.Errorf("query: time range start %v is not before end %v", start, end)
		}
		ts.End = end
		ts.IsRange = true
	}
	return ts, nil
}

// term := IDENT | fn '(' IDENT ')' ('.' IDENT)?
func (p *parser) term() (Term, error) {
	if p.cur().Kind != rpe.KindIdent {
		return Term{}, p.errf("expected a variable or pathway function, found %q", p.cur().Text)
	}
	name := p.next().Text
	fn := FnNone
	switch strings.ToLower(name) {
	case "source":
		fn = FnSource
	case "target":
		fn = FnTarget
	case "len":
		fn = FnLen
	case "count":
		fn = FnCount
	}
	if fn == FnNone || p.cur().Kind != rpe.KindLParen {
		// A bare variable reference. Reserved function names cannot double
		// as variable names, which analysis enforces.
		return Term{Var: name}, nil
	}
	p.next() // (
	if p.cur().Kind != rpe.KindIdent {
		return Term{}, p.errf("expected a variable inside %s(...)", fn)
	}
	v := p.next().Text
	if p.cur().Kind != rpe.KindRParen {
		return Term{}, p.errf("expected ')' after %s(%s", fn, v)
	}
	p.next()
	t := Term{Var: v, Fn: fn}
	if p.cur().Kind == rpe.KindDot {
		if fn == FnLen || fn == FnCount {
			return Term{}, p.errf("%s(%s) has no fields", fn, v)
		}
		p.next()
		if p.cur().Kind != rpe.KindIdent {
			return Term{}, p.errf("expected a field name after '.'")
		}
		t.Field = p.next().Text
	}
	return t, nil
}

// rangeVar := (PATHS | viewName)? IDENT ('(' '@' STRING (':' STRING)? ')')?
// The view source may be elided for variables after the first, matching
// the paper's "From PATHS P(@...), Q(@...)" spelling; a non-PATHS source
// names a user-defined pathway view, resolved during analysis.
func (p *parser) rangeVar() (RangeVar, error) {
	rv := RangeVar{Source: BaseView}
	if p.acceptKw("paths") {
		// explicit base view
	} else if p.cur().Kind == rpe.KindIdent && p.i+1 < len(p.toks) &&
		p.toks[p.i+1].Kind == rpe.KindIdent && !isReserved(p.toks[p.i+1].Text) {
		// Two consecutive identifiers: the first names a view source.
		rv.Source = p.next().Text
	}
	if p.cur().Kind != rpe.KindIdent {
		return RangeVar{}, p.errf("expected a pathway variable name, found %q", p.cur().Text)
	}
	rv.Name = p.next().Text
	if isReserved(rv.Name) {
		return RangeVar{}, fmt.Errorf("query: %q is a reserved word and cannot name a variable", rv.Name)
	}
	if p.cur().Kind == rpe.KindLParen {
		p.next()
		if p.cur().Kind != rpe.KindAt {
			return RangeVar{}, p.errf("expected '@time' inside variable binding")
		}
		p.next()
		if p.cur().Kind != rpe.KindString {
			return RangeVar{}, p.errf("expected a quoted timestamp after '@'")
		}
		start, err := parseTime(p.next().Text)
		if err != nil {
			return RangeVar{}, err
		}
		ts := &TimeSpec{Start: start}
		if p.cur().Kind == rpe.KindColon {
			p.next()
			if p.cur().Kind != rpe.KindString {
				return RangeVar{}, p.errf("expected a quoted timestamp after ':'")
			}
			end, err := parseTime(p.next().Text)
			if err != nil {
				return RangeVar{}, err
			}
			ts.End = end
			ts.IsRange = true
		}
		rv.At = ts
		if p.cur().Kind != rpe.KindRParen {
			return RangeVar{}, p.errf("expected ')' after variable time binding")
		}
		p.next()
	}
	return rv, nil
}

// pred := IDENT MATCHES rpe | term (=|!=) term | NOT EXISTS '(' query ')'
func (p *parser) pred() (Pred, error) {
	if p.acceptKw("not") {
		if err := p.expectKw("exists"); err != nil {
			return nil, err
		}
		if p.cur().Kind != rpe.KindLParen {
			return nil, p.errf("expected '(' after NOT EXISTS")
		}
		p.next()
		sub, err := p.query()
		if err != nil {
			return nil, err
		}
		if p.cur().Kind != rpe.KindRParen {
			return nil, p.errf("expected ')' closing NOT EXISTS subquery")
		}
		p.next()
		return &NotExistsPred{Sub: sub}, nil
	}

	// Lookahead: "IDENT MATCHES" is a match predicate; anything else is a
	// join comparison between terms.
	if p.cur().Kind == rpe.KindIdent && !isFn(p.cur().Text) &&
		p.i+1 < len(p.toks) && p.toks[p.i+1].Kind == rpe.KindIdent &&
		strings.EqualFold(p.toks[p.i+1].Text, "matches") {
		v := p.next().Text
		p.next() // MATCHES
		expr, ni, err := rpe.ParseTokens(p.toks, p.i, p.src)
		if err != nil {
			return nil, err
		}
		p.i = ni
		return &MatchPred{Var: v, Expr: expr}, nil
	}

	left, err := p.term()
	if err != nil {
		return nil, err
	}
	negated := false
	switch p.cur().Kind {
	case rpe.KindEq:
		p.next()
	case rpe.KindNe:
		p.next()
		negated = true
	default:
		return nil, p.errf("expected '=' or '!=' in join predicate, found %q", p.cur().Text)
	}
	right, err := p.term()
	if err != nil {
		return nil, err
	}
	return &JoinPred{Left: left, Right: right, Negated: negated}, nil
}

func isFn(s string) bool {
	switch strings.ToLower(s) {
	case "source", "target", "len", "count":
		return true
	}
	return false
}

func isReserved(s string) bool {
	switch strings.ToLower(s) {
	case "retrieve", "select", "from", "where", "and", "matches", "paths",
		"at", "not", "exists", "source", "target", "len", "count", "first",
		"last", "time", "when":
		return true
	}
	return false
}

// timeLayouts are the accepted timestamp spellings, tried in order.
var timeLayouts = []string{
	"2006-01-02 15:04:05",
	"2006-01-02 15:04",
	"2006-01-02",
	time.RFC3339,
}

func parseTime(s string) (time.Time, error) {
	for _, layout := range timeLayouts {
		if t, err := time.ParseInLocation(layout, s, time.UTC); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("query: cannot parse timestamp %q", s)
}
