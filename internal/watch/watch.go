// Package watch is Nepal's change-data-capture and standing-query layer:
// the push path over the same WAL stream the replication subsystem pulls.
//
// Two surfaces share one substrate:
//
//   - The durable change feed: a Feed tails the mutation stream — the
//     primary's WAL segments, or the applied stream on a replica — and
//     decodes raw records into typed, schema-enriched Events. Every event
//     carries its global stream index, which doubles as the resume token:
//     a consumer that reconnects with the index after the last event it
//     processed sees every later mutation exactly as the log ordered
//     them. Positions contracted away (checkpoint on a primary, ring
//     overflow on a replica) surface as ErrCompacted with the oldest
//     servable index; the consumer re-syncs from a snapshot or a fresh
//     query and resumes from there.
//
//   - Standing queries: a Hub registers compiled pathway queries, derives
//     each one's class footprint from its plan DAG (every atom's class
//     expanded to the full subclass subtree), and re-evaluates a query
//     only when a mutation batch touches its footprint. Result deltas are
//     pushed to subscribers over bounded queues with at-least-once
//     semantics: a slow consumer gets a typed "watch_lagging" control
//     event carrying the resume token — never unbounded memory — and the
//     next delta it receives is a full result snapshot.
//
// Delivery is at-least-once everywhere: a consumer that resumes after a
// sever may see a suffix of events again, but never a gap it is not told
// about and never an interleaving of pre- and post-failover histories
// (events carry the serving epoch; clients reject a lower epoch than
// they have already witnessed).
package watch

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/graph"
)

// Control-event ops. Events whose Op is one of these are synthetic
// markers riding the same stream as mutations, not store writes.
const (
	// OpCompacted marks a history gap: events before Index were
	// permanently discarded (checkpoint or ring overflow) and the consumer
	// must re-sync its derived state before trusting later deltas. Index
	// is the fresh resume token.
	OpCompacted = "watch_compacted"
	// OpLagging marks subscriber overflow: deltas after Index were dropped
	// because the subscriber's bounded queue was full. The next delta the
	// subscriber receives is a full result snapshot.
	OpLagging = "watch_lagging"
)

// Event is one schema-enriched mutation (or control marker) on the
// change feed.
type Event struct {
	// Index is the mutation's global WAL stream index — dense, 0-based,
	// identical on the primary and every replica. Index+1 is the resume
	// token after processing this event.
	Index uint64 `json:"index"`
	// Op is the mutation op wire name ("insert_node", "insert_edge",
	// "update", "delete") or a control op (OpCompacted, OpLagging).
	Op string `json:"op"`
	// UID is the mutated object.
	UID int64 `json:"uid,omitempty"`
	// Class is the object's concrete class. The WAL stores it on inserts
	// only; update/delete events are enriched from the store's object
	// table (which retains dead objects).
	Class string `json:"class,omitempty"`
	// Kind is "node" or "edge" (empty when the class cannot be resolved).
	Kind string `json:"kind,omitempty"`
	// Src and Dst are the endpoint node UIDs; edges only.
	Src int64 `json:"src,omitempty"`
	Dst int64 `json:"dst,omitempty"`
	// Fields is the full field map; inserts and updates.
	Fields graph.Fields `json:"fields,omitempty"`
	// At is the transaction timestamp the store stamped the mutation
	// with (zero on control events).
	At time.Time `json:"at"`
	// Epoch is the primary epoch of the log era this event was served
	// under. A consumer that has seen a higher epoch must not accept it.
	Epoch uint64 `json:"epoch,omitempty"`
}

// Control reports whether the event is a synthetic control marker rather
// than a store mutation.
func (e Event) Control() bool {
	return e.Op == OpCompacted || e.Op == OpLagging
}

// ErrCompacted matches CompactedError with errors.Is.
var ErrCompacted = errors.New("watch: stream position compacted away")

// ErrClosed reports the hub or subscription was closed.
var ErrClosed = errors.New("watch: closed")

// CompactedError reports a resume token that predates the oldest event
// the feed can still serve. Base is the fresh token: the consumer
// re-syncs its derived state (snapshot, full query) and resumes there.
type CompactedError struct {
	Base uint64
}

func (e *CompactedError) Error() string {
	return fmt.Sprintf("watch: requested position predates retained history; resume from %d after re-syncing", e.Base)
}

func (e *CompactedError) Is(target error) bool { return target == ErrCompacted }

// IsCompacted reports whether err is a CompactedError.
func IsCompacted(err error) bool { return errors.Is(err, ErrCompacted) }

// eventFrom enriches one decoded mutation into a feed event. The WAL
// record carries the class on inserts only; for updates and deletes the
// class is resolved from the store's object table, which retains objects
// after deletion precisely so history consumers can attribute them.
func eventFrom(st *graph.Store, m *graph.Mutation, index uint64) Event {
	ev := Event{
		Index:  index,
		Op:     m.Op.String(),
		UID:    int64(m.UID),
		Class:  m.Class,
		Src:    int64(m.Src),
		Dst:    int64(m.Dst),
		Fields: m.Fields,
		At:     m.At,
	}
	if obj := st.Object(m.UID); obj != nil {
		ev.Class = obj.Class.Name
		if obj.IsEdge() {
			ev.Kind = "edge"
			ev.Src, ev.Dst = int64(obj.Src), int64(obj.Dst)
		} else {
			ev.Kind = "node"
		}
	} else if ev.Class != "" {
		if cls, ok := st.Schema().Class(ev.Class); ok {
			if cls.IsEdge() {
				ev.Kind = "edge"
			} else {
				ev.Kind = "node"
			}
		}
	}
	return ev
}
