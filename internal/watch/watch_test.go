package watch

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/wal"
)

func openWALDB(t *testing.T) *core.DB {
	t.Helper()
	db, err := core.Open(netmodel.MustSchema(), core.WithWALOptions(t.TempDir(), wal.Options{NoSync: true}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func openMemDB(t *testing.T) *core.DB {
	t.Helper()
	db, err := core.Open(netmodel.MustSchema())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func insertHost(t *testing.T, db *core.DB, id int64, name string) graph.UID {
	t.Helper()
	uid, err := db.InsertNode("ComputeHost", graph.Fields{"id": id, "name": name, "rack": "rw", "status": "Active"})
	if err != nil {
		t.Fatal(err)
	}
	return uid
}

func insertTOR(t *testing.T, db *core.DB, id int64, name string) graph.UID {
	t.Helper()
	uid, err := db.InsertNode("TORSwitch", graph.Fields{"id": id, "name": name, "status": "Active"})
	if err != nil {
		t.Fatal(err)
	}
	return uid
}

// TestWALFeedDecodesAndEnriches proves the primary feed turns raw WAL
// frames into typed, schema-enriched events at their stream indexes.
func TestWALFeedDecodesAndEnriches(t *testing.T) {
	db := openWALDB(t)
	h1 := insertHost(t, db, 1, "host-a")
	h2 := insertHost(t, db, 2, "host-b")
	tor := insertTOR(t, db, 3, "tor-a")
	if _, err := db.InsertEdge(netmodel.PhysicalLink, h1, tor, graph.Fields{"id": int64(900)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Update(h1, graph.Fields{"id": int64(1), "name": "host-a", "rack": "rw", "status": "Down"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(h2); err != nil {
		t.Fatal(err)
	}

	feed := NewWALFeed(db.WAL(), db.Store())
	events, next, err := feed.Read(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if next != feed.NextIndex() || len(events) != int(next) {
		t.Fatalf("read %d events, next=%d, feed end %d", len(events), next, feed.NextIndex())
	}
	for i, ev := range events {
		if ev.Index != uint64(i) {
			t.Fatalf("event %d carries index %d", i, ev.Index)
		}
		if ev.At.IsZero() {
			t.Fatalf("event %d missing tx timestamp", i)
		}
	}
	if events[0].Op != "insert_node" || events[0].Class != "ComputeHost" || events[0].Kind != "node" {
		t.Fatalf("insert event not enriched: %+v", events[0])
	}
	edge := events[3]
	if edge.Op != "insert_edge" || edge.Kind != "edge" || edge.Src != int64(h1) || edge.Dst != int64(tor) {
		t.Fatalf("edge event not enriched: %+v", edge)
	}
	// Updates and deletes carry no class on the wire; enrichment resolves
	// it from the store's (dead-object-retaining) object table.
	if events[4].Op != "update" || events[4].Class != "ComputeHost" {
		t.Fatalf("update event not enriched: %+v", events[4])
	}
	if events[5].Op != "delete" || events[5].Class != "ComputeHost" || events[5].UID != int64(h2) {
		t.Fatalf("delete event not enriched: %+v", events[5])
	}

	// Caught up: same position, no events, and Changed wakes on append.
	ch := feed.Changed()
	if evs, n, err := feed.Read(next, 0); err != nil || len(evs) != 0 || n != next {
		t.Fatalf("caught-up read: %d events, next %d, err %v", len(evs), n, err)
	}
	insertHost(t, db, 4, "host-c")
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("Changed never fired on append")
	}
	if evs, _, err := feed.Read(next, 0); err != nil || len(evs) != 1 {
		t.Fatalf("incremental read after append: %d events, err %v", len(evs), err)
	}
}

// TestWALFeedCheckpointBoundary proves resume-token semantics across a
// checkpoint: a token exactly at BaseIndex serves, one before it
// answers typed compacted with the fresh base.
func TestWALFeedCheckpointBoundary(t *testing.T) {
	db := openWALDB(t)
	for i := int64(0); i < 5; i++ {
		insertHost(t, db, i, "pre-checkpoint")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	feed := NewWALFeed(db.WAL(), db.Store())
	base := feed.BaseIndex()
	if base == 0 {
		t.Fatal("checkpoint did not advance the base; boundary test proves nothing")
	}

	// Exactly at the boundary: fine, resumes with whatever follows.
	insertHost(t, db, 100, "post-checkpoint")
	events, _, err := feed.Read(base, 0)
	if err != nil {
		t.Fatalf("read at base: %v", err)
	}
	if len(events) != 1 || events[0].Index != base {
		t.Fatalf("read at base returned %+v", events)
	}

	// One before the boundary: typed compacted carrying the fresh token.
	_, _, err = feed.Read(base-1, 0)
	var ce *CompactedError
	if !errors.As(err, &ce) || !IsCompacted(err) {
		t.Fatalf("read below base returned %v; want CompactedError", err)
	}
	if ce.Base != base {
		t.Fatalf("compacted error carries base %d; want %d", ce.Base, base)
	}
}

// TestFollowerFeedRing proves the replica-side ring: contiguous appends
// serve by index, overflow advances the base (old tokens answer
// compacted), and an index gap — a snapshot bootstrap — resets cleanly.
func TestFollowerFeedRing(t *testing.T) {
	db := openMemDB(t)
	f := repl.NewFollower(db.Store(), nil, repl.FollowerConfig{Primary: "http://127.0.0.1:0"})
	feed := NewFollowerFeed(f, db.Store(), nil, 4)
	defer feed.Close()

	mut := func(i int64) *graph.Mutation {
		return &graph.Mutation{Op: graph.OpInsertNode, UID: graph.UID(1000 + i), Class: "ComputeHost",
			Fields: graph.Fields{"id": i}, At: time.Unix(i, 0)}
	}
	for i := int64(0); i < 3; i++ {
		feed.Observe(uint64(i), mut(i))
	}
	events, next, err := feed.Read(1, 0)
	if err != nil || len(events) != 2 || next != 3 {
		t.Fatalf("ring read: %d events next %d err %v", len(events), next, err)
	}
	if events[0].Index != 1 || events[0].Class != "ComputeHost" || events[0].Kind != "node" {
		t.Fatalf("ring event not enriched: %+v", events[0])
	}

	// Overflow the 4-slot ring: base must advance, old tokens compact.
	for i := int64(3); i < 10; i++ {
		feed.Observe(uint64(i), mut(i))
	}
	if base := feed.BaseIndex(); base != 6 {
		t.Fatalf("ring base after overflow = %d; want 6", base)
	}
	_, _, err = feed.Read(2, 0)
	var ce *CompactedError
	if !errors.As(err, &ce) || ce.Base != 6 {
		t.Fatalf("overflowed read returned %v; want compacted at 6", err)
	}
	if events, _, err := feed.Read(6, 0); err != nil || len(events) != 4 {
		t.Fatalf("read from new base: %d events err %v", len(events), err)
	}

	// A non-contiguous index (snapshot bootstrap jumped the position)
	// resets the ring there; the skipped prefix is compacted history.
	feed.Observe(50, mut(50))
	if base, nxt := feed.BaseIndex(), feed.NextIndex(); base != 50 || nxt != 51 {
		t.Fatalf("gap reset: base %d next %d; want 50/51", base, nxt)
	}
}

// TestStandingQueryIncrementality is the footprint-filter proof: a
// mutation outside a standing query's class footprint triggers zero
// re-evaluations (watch.standing.skipped advances instead), and one
// inside it produces exactly the delta the subscriber sees.
func TestStandingQueryIncrementality(t *testing.T) {
	db := openWALDB(t)
	insertHost(t, db, 1, "host-a")

	feed := NewWALFeed(db.WAL(), db.Store())
	hub := NewHub(db, feed)
	defer hub.Close()
	reg := obs.NewRegistry()
	hub.Instrument(reg)
	evals := reg.Counter("watch.standing.evals")
	skipped := reg.Counter("watch.standing.skipped")

	sub, err := hub.Register("hosts", "Select source(P).name From PATHS P Where P MATCHES ComputeHost()", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	fp := sub.Footprint()
	if len(fp) == 0 {
		t.Fatal("empty footprint; the filter would never skip")
	}
	for _, c := range fp {
		if c == "TORSwitch" {
			t.Fatal("TORSwitch leaked into a ComputeHost query's footprint")
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	n, err := sub.Next(ctx)
	if err != nil || n.Kind != KindDelta || !n.Delta.Full {
		t.Fatalf("initial notification = %+v, %v; want full delta", n, err)
	}
	if len(n.Delta.Added) != 1 {
		t.Fatalf("initial snapshot holds %d rows; want 1", len(n.Delta.Added))
	}

	// Out-of-footprint churn: TORSwitch inserts must all be skipped.
	for i := int64(0); i < 5; i++ {
		insertTOR(t, db, 100+i, "tor")
	}
	waitCounter(t, skipped, 1)
	if got := evals.Value(); got != 0 {
		t.Fatalf("out-of-footprint mutations triggered %d re-evaluations; want 0", got)
	}

	// In-footprint mutation: re-evaluated, delta delivered.
	insertHost(t, db, 2, "host-b")
	n, err = sub.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind != KindDelta || n.Delta.Full || len(n.Delta.Added) != 1 {
		t.Fatalf("in-footprint delta = %+v", n.Delta)
	}
	if evals.Value() == 0 {
		t.Fatal("in-footprint mutation did not advance watch.standing.evals")
	}

	// Removal: delete the host, the delta reports the row leaving.
	res, err := db.Query("Select source(P).name From PATHS P Where P MATCHES ComputeHost(name='host-b')")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("lookup before delete: %v rows=%v", err, res)
	}
	uid, err := db.InsertNode("ComputeHost", graph.Fields{"id": int64(3), "name": "host-c", "rack": "rw", "status": "Active"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Next(ctx); err != nil { // consume host-c's delta
		t.Fatal(err)
	}
	if err := db.Delete(uid); err != nil {
		t.Fatal(err)
	}
	n, err = sub.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Delta.Removed) != 1 {
		t.Fatalf("delete delta = %+v; want one removed row", n.Delta)
	}
}

// waitCounter waits for a counter to reach at least want.
func waitCounter(t *testing.T, c *obs.Counter, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Value() < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter stuck at %d; want ≥ %d", c.Value(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSubscriberOverflowLags is the bounded-queue proof: a subscriber
// that stops consuming gets a typed lagging notification (with the
// resume token) instead of unbounded buffering, and the first delta
// after it is a full snapshot.
func TestSubscriberOverflowLags(t *testing.T) {
	db := openWALDB(t)
	insertHost(t, db, 1, "host-0")

	feed := NewWALFeed(db.WAL(), db.Store())
	hub := NewHub(db, feed)
	defer hub.Close()
	reg := obs.NewRegistry()
	hub.Instrument(reg)
	lagged := reg.Counter("watch.standing.lagged")

	// Queue of 1: the initial full snapshot fills it; every further delta
	// overflows until the subscriber drains.
	sub, err := hub.Register("hosts", "Select source(P).name From PATHS P Where P MATCHES ComputeHost()", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	for i := int64(1); i <= 8; i++ {
		insertHost(t, db, 100+i, "burst")
	}
	waitCounter(t, lagged, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Queued-before-overflow deltas drain first (the initial snapshot),
	// then the lagging marker, then a fresh full snapshot.
	var sawLagging, sawFullAfter bool
	for i := 0; i < 32 && !sawFullAfter; i++ {
		n, err := sub.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case n.Kind == KindLagging:
			if !sawLagging {
				sawLagging = true
				// The burst is already consumed; trigger one more eval so
				// the post-lag snapshot materializes.
				insertHost(t, db, 300+int64(i), "post-lag")
			}
		case sawLagging && n.Kind == KindDelta:
			if !n.Delta.Full {
				t.Fatalf("first delta after lagging is not a full snapshot: %+v", n.Delta)
			}
			sawFullAfter = true
		}
	}
	if !sawLagging || !sawFullAfter {
		t.Fatalf("lagging=%v fullAfter=%v; want both", sawLagging, sawFullAfter)
	}
}
