package watch

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/plan"
)

// Delta is one standing-query result change, pushed to subscribers.
type Delta struct {
	// Query is the subscription name the delta belongs to.
	Query string `json:"query"`
	// Index is the resume token the result is evaluated through: the
	// stream index after the last mutation folded in. A subscriber that
	// re-subscribes with from=Index misses nothing.
	Index uint64 `json:"index"`
	// Full marks a complete result snapshot (initial registration, or the
	// first delta after a lagging gap): Added holds the whole result set
	// and Removed is empty.
	Full bool `json:"full,omitempty"`
	// Added and Removed are rendered result rows that entered or left the
	// result set since the previous delta.
	Added   []string `json:"added,omitempty"`
	Removed []string `json:"removed,omitempty"`
}

// Notification is one item on a subscriber's queue: a result delta, or a
// lagging marker reporting that deltas were dropped on the floor because
// the queue was full.
type Notification struct {
	// Kind is "delta" or "lagging".
	Kind string `json:"kind"`
	// Delta is set when Kind is "delta".
	Delta *Delta `json:"delta,omitempty"`
	// Resume is the stream index of the last evaluation the subscriber
	// missed; set when Kind is "lagging". The next delta after a lagging
	// notification is always a full snapshot.
	Resume uint64 `json:"resume,omitempty"`
}

// KindDelta and KindLagging are the Notification kinds.
const (
	KindDelta   = "delta"
	KindLagging = "lagging"
)

// DefaultQueueLen bounds a subscriber's notification queue when the
// caller passes 0 to Register.
const DefaultQueueLen = 16

// Subscription is one registered standing query. Consume notifications
// with Next; Close unregisters.
type Subscription struct {
	hub  *Hub
	name string
	src  string

	prepared  *core.Prepared
	footprint map[string]struct{}

	ch chan Notification

	mu       sync.Mutex
	lagging  bool   // queue overflowed; deltas are being dropped
	resume   uint64 // evaluated-through index of the last dropped delta
	needFull bool   // next evaluation must push a full snapshot
	prev     map[string]string

	closed    chan struct{}
	closeOnce sync.Once
}

// Name returns the subscription's registered name.
func (s *Subscription) Name() string { return s.name }

// Footprint returns the sorted class footprint the subscription is
// filtered by.
func (s *Subscription) Footprint() []string {
	out := make([]string, 0, len(s.footprint))
	for c := range s.footprint {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Next blocks until a notification is available, the subscription is
// closed (ErrClosed), or ctx expires. Delivery is at-least-once: after a
// KindLagging notification the subscriber's derived state is stale, and
// the next KindDelta is a full snapshot to rebuild it.
func (s *Subscription) Next(ctx context.Context) (Notification, error) {
	for {
		// Drain queued notifications before surfacing a lagging gap: the
		// queue holds deltas from before the overflow, still in order.
		select {
		case n := <-s.ch:
			return n, nil
		default:
		}
		s.mu.Lock()
		if s.lagging {
			s.lagging = false
			s.needFull = true
			r := s.resume
			s.mu.Unlock()
			return Notification{Kind: KindLagging, Resume: r}, nil
		}
		s.mu.Unlock()
		select {
		case n := <-s.ch:
			return n, nil
		case <-s.closed:
			return Notification{}, ErrClosed
		case <-ctx.Done():
			return Notification{}, ctx.Err()
		}
	}
}

// Close unregisters the subscription. Idempotent; a blocked Next returns
// ErrClosed.
func (s *Subscription) Close() {
	s.closeOnce.Do(func() { close(s.closed) })
	s.hub.unregister(s)
}

// push enqueues a notification without ever blocking the pump: a full
// queue latches the lagging state and the delta is dropped — the
// subscriber learns about the gap (with the resume token) the moment it
// drains, and the next evaluation pushes a full snapshot.
func (s *Subscription) push(n Notification) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lagging {
		s.resume = n.Delta.Index
		return
	}
	select {
	case s.ch <- n:
	default:
		s.lagging = true
		s.resume = n.Delta.Index
		s.hub.countLagged()
	}
}

// Hub is the standing-query engine: it tails a Feed with a single pump
// goroutine, and re-evaluates each registered query only when a mutation
// batch touches the query's class footprint.
type Hub struct {
	db   *core.DB
	feed Feed

	mu     sync.Mutex
	cursor uint64
	subs   []*Subscription

	done      chan struct{}
	closeOnce sync.Once

	mEvents  *obs.Counter
	mEvals   *obs.Counter
	mSkipped *obs.Counter
	mDeltas  *obs.Counter
	mLagged  *obs.Counter
}

// NewHub returns a hub tailing feed, with its pump running. The pump
// starts at the feed's current end: standing queries see mutations from
// registration time forward (their initial full snapshot covers the
// history).
func NewHub(db *core.DB, feed Feed) *Hub {
	h := &Hub{
		db:     db,
		feed:   feed,
		cursor: feed.NextIndex(),
		done:   make(chan struct{}),
	}
	go h.pump()
	return h
}

// Instrument publishes the hub's counters and gauges.
func (h *Hub) Instrument(reg *obs.Registry) {
	h.mEvents = reg.Counter("watch.events")
	h.mEvals = reg.Counter("watch.standing.evals")
	h.mSkipped = reg.Counter("watch.standing.skipped")
	h.mDeltas = reg.Counter("watch.standing.deltas")
	h.mLagged = reg.Counter("watch.standing.lagged")
	reg.SetHelp("watch.events", "Change-feed events processed by the standing-query pump")
	reg.SetHelp("watch.standing.evals", "Standing-query re-evaluations triggered by footprint hits")
	reg.SetHelp("watch.standing.skipped", "Standing-query re-evaluations skipped: batch outside the class footprint")
	reg.SetHelp("watch.standing.deltas", "Standing-query result deltas pushed to subscribers")
	reg.SetHelp("watch.standing.lagged", "Subscriber queue overflows (watch_lagging)")
	reg.GaugeFunc("watch.standing.queries", func() float64 {
		h.mu.Lock()
		defer h.mu.Unlock()
		return float64(len(h.subs))
	})
}

func count(c *obs.Counter, n int64) {
	if c != nil {
		c.Add(n)
	}
}

func (h *Hub) countLagged() { count(h.mLagged, 1) }

// Register compiles src as a standing query named name, evaluates it
// once for the initial full snapshot (pushed as the first notification),
// and enrolls it for incremental re-evaluation. queueLen bounds the
// subscriber's notification queue (DefaultQueueLen when 0): overflow is
// reported as lagging, never buffered without bound.
func (h *Hub) Register(name, src string, queueLen int) (*Subscription, error) {
	select {
	case <-h.done:
		return nil, ErrClosed
	default:
	}
	prepared, err := h.db.Prepare(src)
	if err != nil {
		return nil, err
	}
	if queueLen <= 0 {
		queueLen = DefaultQueueLen
	}
	fp := map[string]struct{}{}
	for _, c := range prepared.Footprint() {
		fp[c] = struct{}{}
	}
	s := &Subscription{
		hub:       h,
		name:      name,
		src:       src,
		prepared:  prepared,
		footprint: fp,
		ch:        make(chan Notification, queueLen),
		closed:    make(chan struct{}),
	}
	// Snapshot + enroll under the pump lock so no batch lands between the
	// initial evaluation and the subscription joining the pump's list.
	h.mu.Lock()
	defer h.mu.Unlock()
	res, err := prepared.Exec(context.Background())
	if err != nil {
		return nil, err
	}
	rows := h.renderRows(res)
	s.prev = rows
	full := &Delta{Query: name, Index: h.cursor, Full: true, Added: sortedValues(rows)}
	s.ch <- Notification{Kind: KindDelta, Delta: full}
	count(h.mDeltas, 1)
	h.subs = append(h.subs, s)
	return s, nil
}

func (h *Hub) unregister(s *Subscription) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, x := range h.subs {
		if x == s {
			h.subs = append(h.subs[:i], h.subs[i+1:]...)
			return
		}
	}
}

// Close stops the pump and closes every subscription. Idempotent.
func (h *Hub) Close() {
	h.closeOnce.Do(func() { close(h.done) })
	h.mu.Lock()
	subs := append([]*Subscription(nil), h.subs...)
	h.subs = nil
	h.mu.Unlock()
	for _, s := range subs {
		s.closeOnce.Do(func() { close(s.closed) })
	}
}

// pump is the hub's only evaluation goroutine: it folds feed batches
// into the registered standing queries, one batch at a time.
func (h *Hub) pump() {
	for {
		ch := h.feed.Changed()
		h.mu.Lock()
		from := h.cursor
		h.mu.Unlock()
		events, next, err := h.feed.Read(from, defaultMaxEvents)
		if err != nil {
			if IsCompacted(err) {
				// The pump's position was contracted away (checkpoint or
				// ring overflow): mutations it never saw may have touched
				// any footprint, so every query re-evaluates.
				base := err.(*CompactedError).Base
				h.mu.Lock()
				h.cursor = base
				h.mu.Unlock()
				h.evaluate(nil, base, true)
				continue
			}
			// Transient read failure: back off briefly, then retry.
			select {
			case <-time.After(50 * time.Millisecond):
				continue
			case <-h.done:
				return
			}
		}
		if len(events) > 0 {
			count(h.mEvents, int64(len(events)))
			classes := map[string]struct{}{}
			unattributed := false
			for _, ev := range events {
				if ev.Class == "" {
					unattributed = true
					continue
				}
				classes[ev.Class] = struct{}{}
			}
			h.mu.Lock()
			h.cursor = next
			h.mu.Unlock()
			h.evaluate(classes, next, unattributed)
			continue
		}
		select {
		case <-ch:
		case <-h.done:
			return
		}
	}
}

// evaluate folds one mutation batch (its touched classes) into every
// registered query: footprint misses are counted and skipped, hits are
// re-executed and diffed. force bypasses the footprint filter — used
// when the batch's classes are unknowable (compaction gap, unattributed
// event).
func (h *Hub) evaluate(classes map[string]struct{}, through uint64, force bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, s := range h.subs {
		select {
		case <-s.closed:
			continue
		default:
		}
		s.mu.Lock()
		needFull := s.needFull
		s.mu.Unlock()
		if !force && !needFull && !touches(classes, s.footprint) {
			count(h.mSkipped, 1)
			continue
		}
		count(h.mEvals, 1)
		res, err := s.prepared.Exec(context.Background())
		if err != nil {
			continue
		}
		rows := h.renderRows(res)
		d := diff(s.prev, rows)
		s.prev = rows
		if needFull {
			s.mu.Lock()
			s.needFull = false
			s.mu.Unlock()
			d = &Delta{Full: true, Added: sortedValues(rows)}
		}
		if d == nil {
			continue
		}
		d.Query = s.name
		d.Index = through
		s.push(Notification{Kind: KindDelta, Delta: d})
		count(h.mDeltas, 1)
	}
}

// touches reports whether any touched class is inside the footprint. An
// empty footprint is conservative: it matches everything.
func touches(classes, footprint map[string]struct{}) bool {
	if len(footprint) == 0 {
		return true
	}
	for c := range classes {
		if _, ok := footprint[c]; ok {
			return true
		}
	}
	return false
}

// renderRows keys and renders a result set: pathway values key by their
// canonical step-UID key and render through the store, scalars by their
// printed form.
func (h *Hub) renderRows(res *exec.Result) map[string]string {
	rows := make(map[string]string, len(res.Rows))
	for _, row := range res.Rows {
		keys := make([]string, 0, len(row.Values))
		parts := make([]string, 0, len(row.Values))
		for _, v := range row.Values {
			if pw, ok := v.(plan.Pathway); ok {
				keys = append(keys, pw.Key())
				parts = append(parts, h.db.RenderPath(pw))
			} else {
				sv := fmt.Sprint(v)
				keys = append(keys, sv)
				parts = append(parts, sv)
			}
		}
		rows[strings.Join(keys, "\x1f")] = strings.Join(parts, " | ")
	}
	return rows
}

// diff returns the delta between two keyed result sets, or nil when
// they are identical.
func diff(prev, next map[string]string) *Delta {
	var added, removed []string
	for k, v := range next {
		if _, ok := prev[k]; !ok {
			added = append(added, v)
		}
	}
	for k, v := range prev {
		if _, ok := next[k]; !ok {
			removed = append(removed, v)
		}
	}
	if len(added) == 0 && len(removed) == 0 {
		return nil
	}
	sort.Strings(added)
	sort.Strings(removed)
	return &Delta{Added: added, Removed: removed}
}

func sortedValues(rows map[string]string) []string {
	out := make([]string, 0, len(rows))
	for _, v := range rows {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
