package watch

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/repl"
	"repro/internal/wal"
)

// Feed is a readable suffix of the global mutation stream: the substrate
// both the /v1/watch handlers and the standing-query Hub tail. Two
// implementations exist — WALFeed over a primary's log segments and
// FollowerFeed over a replica's applied stream — with one contract:
// Read(from, ...) serves events at stream indexes ≥ from, a position
// older than BaseIndex answers *CompactedError, and Changed wakes
// long-polls exactly the way wal.Manager.Changed does (grab the channel,
// re-read, then select).
type Feed interface {
	// Read returns up to maxEvents events starting at stream index from,
	// plus the resume token after the last one (== from when caught up).
	// A from older than BaseIndex returns *CompactedError; a from beyond
	// the stream end is an error.
	Read(from uint64, maxEvents int) ([]Event, uint64, error)
	// NextIndex is the index the next mutation will take.
	NextIndex() uint64
	// BaseIndex is the oldest index still servable.
	BaseIndex() uint64
	// Changed returns a channel closed when the stream grows.
	Changed() <-chan struct{}
	// Epoch is the primary epoch the feed currently serves under.
	Epoch() uint64
	// LogID is the identity of the log the stream derives from.
	LogID() string
}

// defaultMaxEvents bounds one Read batch when the caller passes 0.
const defaultMaxEvents = 256

// readBudgetBytes bounds the raw bytes one WAL read pulls per batch.
const readBudgetBytes = 1 << 20

// WALFeed tails a primary's write-ahead log: raw frames out of the
// segment files, decoded and schema-enriched on the way out. Resume
// tokens are WAL stream indexes verbatim, so they survive restarts,
// checkpoints (down to BaseIndex), and segment rotation for free.
type WALFeed struct {
	mgr *wal.Manager
	st  *graph.Store
}

// NewWALFeed returns a feed over st's WAL manager.
func NewWALFeed(mgr *wal.Manager, st *graph.Store) *WALFeed {
	return &WALFeed{mgr: mgr, st: st}
}

func (f *WALFeed) Read(from uint64, maxEvents int) ([]Event, uint64, error) {
	if maxEvents <= 0 {
		maxEvents = defaultMaxEvents
	}
	raw, _, err := f.mgr.ReadRecords(from, readBudgetBytes)
	if err != nil {
		if wal.IsTruncatedStream(err) {
			return nil, from, &CompactedError{Base: f.mgr.BaseIndex()}
		}
		return nil, from, err
	}
	events := make([]Event, 0, min(maxEvents, 64))
	idx := from
	for len(raw) > 0 && len(events) < maxEvents {
		m, n, err := wal.DecodeRecord(raw)
		if err != nil {
			// ReadRecords ships only whole, checksum-verified frames; a
			// decode failure here is real corruption, not a cut.
			return nil, from, fmt.Errorf("watch: undecodable record at stream position %d: %w", idx, err)
		}
		events = append(events, eventFrom(f.st, m, idx))
		raw = raw[n:]
		idx++
	}
	return events, idx, nil
}

func (f *WALFeed) NextIndex() uint64          { return f.mgr.NextIndex() }
func (f *WALFeed) BaseIndex() uint64          { return f.mgr.BaseIndex() }
func (f *WALFeed) Changed() <-chan struct{}   { return f.mgr.Changed() }
func (f *WALFeed) Epoch() uint64              { return f.mgr.Epoch() }
func (f *WALFeed) LogID() string              { return f.mgr.LogID() }

// FollowerFeed serves the change feed from a replica, so subscribers can
// be offloaded from the primary. Replicated records bypass the local WAL
// (replicas do not log what they replay), so the feed keeps a bounded
// in-memory ring of the most recently applied events, fed by the
// follower's OnApplied tap; ring overflow advances the base, and a
// resume token below it answers compacted exactly like a checkpointed
// primary position.
//
// After the replica is promoted, new writes land in its own (adopted)
// WAL rather than the follower tap; a background pump folds them into
// the ring at their adopted stream indexes, so a subscriber rides
// through the promotion without a token change.
type FollowerFeed struct {
	f   *repl.Follower
	st  *graph.Store
	mgr *wal.Manager // the node's own WAL; nil for in-memory replicas
	cap int

	mu     sync.Mutex
	base   uint64 // stream index of events[0]
	events []Event
	notify chan struct{}

	done      chan struct{}
	closeOnce sync.Once
}

// DefaultRingSize is the replica feed's event retention when the caller
// passes 0.
const DefaultRingSize = 4096

// NewFollowerFeed returns a replica feed over f's applied stream. Wire
// its Observe method into the follower (repl.Follower.SetOnApplied)
// before the link starts applying, or the ring begins at whatever the
// link had already applied. mgr may be nil; with it, the feed follows
// the node through a promotion.
func NewFollowerFeed(f *repl.Follower, st *graph.Store, mgr *wal.Manager, ringSize int) *FollowerFeed {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	applied, _ := f.Applied()
	ff := &FollowerFeed{
		f: f, st: st, mgr: mgr, cap: ringSize,
		base:   applied,
		notify: make(chan struct{}),
		done:   make(chan struct{}),
	}
	if mgr != nil {
		go ff.pumpWAL()
	}
	return ff
}

// Observe folds one applied mutation into the ring. It is the
// follower-side tap (repl.Follower.SetOnApplied) and must be called in
// apply order; a non-contiguous index — a snapshot bootstrap jumped the
// applied position — resets the ring there, and the skipped prefix
// becomes compacted history.
func (ff *FollowerFeed) Observe(index uint64, m *graph.Mutation) {
	ev := eventFrom(ff.st, m, index)
	ff.mu.Lock()
	ff.append(ev)
	ff.mu.Unlock()
}

// append installs one event; callers hold ff.mu.
func (ff *FollowerFeed) append(ev Event) {
	if ev.Index != ff.base+uint64(len(ff.events)) {
		ff.base = ev.Index
		ff.events = ff.events[:0]
	}
	ff.events = append(ff.events, ev)
	if len(ff.events) > ff.cap {
		drop := len(ff.events) - ff.cap
		ff.base += uint64(drop)
		ff.events = append(ff.events[:0], ff.events[drop:]...)
	}
	close(ff.notify)
	ff.notify = make(chan struct{})
}

// pumpWAL folds post-promotion WAL appends into the ring. Before the
// promotion the node's WAL is empty and Changed never fires; after
// Promote adopts the stream, appends land at exactly the ring's end
// index, so the feed stays dense across the role change.
func (ff *FollowerFeed) pumpWAL() {
	for {
		ch := ff.mgr.Changed()
		ff.syncWAL()
		select {
		case <-ch:
		case <-ff.done:
			return
		}
	}
}

// syncWAL reads any WAL records past the ring end into the ring.
func (ff *FollowerFeed) syncWAL() {
	if !ff.f.Promoted() {
		return
	}
	for {
		ff.mu.Lock()
		from := ff.base + uint64(len(ff.events))
		ff.mu.Unlock()
		if ff.mgr.NextIndex() <= from || ff.mgr.BaseIndex() > from {
			return
		}
		raw, _, err := ff.mgr.ReadRecords(from, readBudgetBytes)
		if err != nil || len(raw) == 0 {
			return
		}
		idx := from
		for len(raw) > 0 {
			m, n, derr := wal.DecodeRecord(raw)
			if derr != nil {
				return
			}
			ev := eventFrom(ff.st, m, idx)
			ff.mu.Lock()
			ff.append(ev)
			ff.mu.Unlock()
			raw = raw[n:]
			idx++
		}
	}
}

// Close stops the promotion pump. Idempotent.
func (ff *FollowerFeed) Close() {
	ff.closeOnce.Do(func() { close(ff.done) })
}

func (ff *FollowerFeed) Read(from uint64, maxEvents int) ([]Event, uint64, error) {
	if maxEvents <= 0 {
		maxEvents = defaultMaxEvents
	}
	ff.mu.Lock()
	defer ff.mu.Unlock()
	end := ff.base + uint64(len(ff.events))
	if from < ff.base {
		return nil, from, &CompactedError{Base: ff.base}
	}
	if from > end {
		return nil, from, fmt.Errorf("watch: stream position %d is beyond the feed end %d", from, end)
	}
	n := int(end - from)
	if n > maxEvents {
		n = maxEvents
	}
	off := int(from - ff.base)
	out := make([]Event, n)
	copy(out, ff.events[off:off+n])
	return out, from + uint64(n), nil
}

func (ff *FollowerFeed) NextIndex() uint64 {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.base + uint64(len(ff.events))
}

func (ff *FollowerFeed) BaseIndex() uint64 {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.base
}

func (ff *FollowerFeed) Changed() <-chan struct{} {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.notify
}

func (ff *FollowerFeed) Epoch() uint64 {
	st := ff.f.Status()
	if st.Promoted && ff.mgr != nil {
		return ff.mgr.Epoch()
	}
	return st.Epoch
}

func (ff *FollowerFeed) LogID() string {
	if ff.f.Promoted() && ff.mgr != nil {
		return ff.mgr.LogID()
	}
	return ff.f.StreamState().LogID
}
