package exec

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/gremlin"
	"repro/internal/netmodel"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/temporal"
)

var t0 = time.Date(2017, 2, 15, 0, 0, 0, 0, time.UTC)

type fixture struct {
	st    *graph.Store
	d     *netmodel.Demo
	clock *temporal.Clock
	x     *Executor
}

func newFixture(t *testing.T, backend string) *fixture {
	t.Helper()
	clock := temporal.NewManualClock(t0)
	st := graph.NewStore(netmodel.MustSchema(), clock)
	d, err := netmodel.BuildDemo(st, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var eng *plan.Engine
	if backend == "relational" {
		eng = plan.NewEngine(relational.New(st))
	} else {
		eng = plan.NewEngine(gremlin.New(st))
	}
	return &fixture{st: st, d: d, clock: clock, x: New(eng)}
}

func (f *fixture) run(t *testing.T, src string) *Result {
	t.Helper()
	q, err := query.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	a, err := query.Analyze(q, f.st.Schema())
	if err != nil {
		t.Fatalf("analyze %q: %v", src, err)
	}
	res, err := f.x.Run(a)
	if err != nil {
		t.Fatalf("run %q: %v", src, err)
	}
	return res
}

func (f *fixture) idOf(uid graph.UID) int64 {
	v := f.st.Object(uid).Versions[0].Fields["id"]
	switch n := v.(type) {
	case int64:
		return n
	case int:
		return int64(n)
	}
	return 0
}

func backends(t *testing.T, fn func(t *testing.T, f *fixture)) {
	for _, b := range []string{"gremlin", "relational"} {
		t.Run(b, func(t *testing.T) { fn(t, newFixture(t, b)) })
	}
}

func TestRetrieveTopDown(t *testing.T) {
	backends(t, func(t *testing.T, f *fixture) {
		src := fmt.Sprintf(
			"Retrieve P From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id=%d)",
			f.idOf(f.d.Host1))
		res := f.run(t, src)
		if len(res.Rows) != 2 {
			t.Fatalf("rows = %d, want 2", len(res.Rows))
		}
		for _, row := range res.Rows {
			p, ok := row.Values[0].(plan.Pathway)
			if !ok {
				t.Fatalf("Retrieve value is %T, want Pathway", row.Values[0])
			}
			if p.Source() != f.d.FirewallVNF {
				t.Errorf("source = %d, want firewall VNF", p.Source())
			}
		}
	})
}

func TestSelectProjections(t *testing.T) {
	backends(t, func(t *testing.T, f *fixture) {
		src := fmt.Sprintf(
			"Select source(P).name, source(P).id, len(P) From PATHS P "+
				"Where P MATCHES VNF()->VFC()->VM()->Host(id=%d)", f.idOf(f.d.Host2))
		res := f.run(t, src)
		if len(res.Rows) != 1 {
			t.Fatalf("rows = %d, want 1", len(res.Rows))
		}
		row := res.Rows[0]
		if row.Values[0] != "dns-vnf" {
			t.Errorf("name = %v", row.Values[0])
		}
		if row.Values[2] != int64(3) {
			t.Errorf("len = %v, want 3", row.Values[2])
		}
		if res.Columns[0] != "source(P).name" {
			t.Errorf("column = %q", res.Columns[0])
		}
	})
}

func TestJoinPhysicalPathBetweenVNFs(t *testing.T) {
	backends(t, func(t *testing.T, f *fixture) {
		// The paper's §3.4 join: the physical path between the hosts of two
		// VNFs. Phys has only a costly anchor; the joins seed it.
		src := fmt.Sprintf(`Retrieve Phys
			From PATHS D1, PATHS D2, PATHS Phys
			Where D1 MATCHES VNF(id=%d)->[Vertical()]{1,6}->Host()
			And D2 MATCHES VNF(id=%d)->[Vertical()]{1,6}->Host()
			And Phys MATCHES PhysicalLink(){1,4}
			And source(Phys)=target(D1)
			And target(Phys)=target(D2)`,
			f.idOf(f.d.FirewallVNF), f.idOf(f.d.DNSVNF))
		res := f.run(t, src)
		if len(res.Rows) == 0 {
			t.Fatal("no physical paths found between the VNF hosts")
		}
		for _, row := range res.Rows {
			p := row.Values[0].(plan.Pathway)
			if p.Source() != f.d.Host1 || p.Target() != f.d.Host2 {
				t.Errorf("physical path endpoints = %d -> %d", p.Source(), p.Target())
			}
		}
	})
}

func TestNotExistsIdleVMs(t *testing.T) {
	backends(t, func(t *testing.T, f *fixture) {
		// Add a VM hosting no VFC.
		idle, err := f.st.InsertNode("VMWare", graph.Fields{"id": int64(7777), "name": "idle-vm", "status": "Green"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.st.InsertEdge(netmodel.OnServer, idle, f.d.Host1, graph.Fields{"id": int64(7778)}); err != nil {
			t.Fatal(err)
		}
		// The paper's §3.4 subquery: VMs that do not host a VFC or VNF.
		src := `Retrieve V From PATHS V
			Where V MATCHES VM()
			And NOT EXISTS(
				Retrieve P from PATHS P
				Where P MATCHES (VNF()|VFC())->[Vertical()]{1,5}->VM()
				And target(V) = target(P)
			)`
		res := f.run(t, src)
		if len(res.Rows) != 1 {
			t.Fatalf("idle VMs = %d, want 1", len(res.Rows))
		}
		p := res.Rows[0].Values[0].(plan.Pathway)
		if p.Source() != idle {
			t.Errorf("idle VM = %d, want %d", p.Source(), idle)
		}
	})
}

func migrateVM3(t *testing.T, f *fixture, at time.Time) {
	t.Helper()
	f.clock.SetNow(at)
	for _, e := range f.st.OutEdges(f.d.VM3) {
		if f.st.Object(e).Class.Name == netmodel.OnServer {
			if err := f.st.Delete(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := f.st.InsertEdge(netmodel.OnServer, f.d.VM3, f.d.Host1, graph.Fields{"id": int64(9001)}); err != nil {
		t.Fatal(err)
	}
}

func TestTimesliceQuery(t *testing.T) {
	backends(t, func(t *testing.T, f *fixture) {
		migrateVM3(t, f, t0.Add(10*time.Hour))
		// Which VNFs had components on host-2 at 05:00? The DNS VNF did
		// (vm-3 migrated away only at 10:00).
		src := fmt.Sprintf(`AT '2017-02-15 05:00:00'
			Select source(P).name From PATHS P
			Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id=%d)`, f.idOf(f.d.Host2))
		res := f.run(t, src)
		if len(res.Rows) != 1 || res.Rows[0].Values[0] != "dns-vnf" {
			t.Fatalf("rows = %+v", res.Rows)
		}
		// At 12:00 nothing runs on host-2.
		src = fmt.Sprintf(`AT '2017-02-15 12:00:00'
			Select source(P).name From PATHS P
			Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id=%d)`, f.idOf(f.d.Host2))
		if res := f.run(t, src); len(res.Rows) != 0 {
			t.Fatalf("post-migration rows = %+v", res.Rows)
		}
	})
}

func TestPerVariableTimes(t *testing.T) {
	backends(t, func(t *testing.T, f *fixture) {
		migrateVM3(t, f, t0.Add(10*time.Hour))
		// The paper's two-snapshot join: VNFs with components on host-2 at
		// 05:00 AND on host-1 at 12:00 — the DNS VNF, thanks to vm-3's
		// migration.
		src := fmt.Sprintf(`Select source(P).name
			From PATHS P(@'2017-02-15 05:00'), Q(@'2017-02-15 12:00')
			Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id=%d)
			And Q MATCHES VNF()->[Vertical()]{1,6}->Host(id=%d)
			And source(P) = source(Q)`,
			f.idOf(f.d.Host2), f.idOf(f.d.Host1))
		res := f.run(t, src)
		if len(res.Rows) != 1 || res.Rows[0].Values[0] != "dns-vnf" {
			t.Fatalf("rows = %+v", res.Rows)
		}
		// Per-variable ranges appear separately; no coexistence is implied
		// (the two placements never overlapped in time).
		row := res.Rows[0]
		if row.Coexist != nil {
			t.Error("per-variable query must not compute coexistence")
		}
		if len(row.VarTimes["P"]) == 0 || len(row.VarTimes["Q"]) == 0 {
			t.Error("per-variable times missing")
		}
	})
}

func TestRangeQueryCoexistence(t *testing.T) {
	backends(t, func(t *testing.T, f *fixture) {
		migrateVM3(t, f, t0.Add(10*time.Hour))
		// Range query across the migration: both placements qualify, each
		// with maximal ranges.
		src := fmt.Sprintf(`AT '2017-02-15 09:00' : '2017-02-15 11:00'
			Select target(P).name From PATHS P
			Where P MATCHES VM(id=%d)->OnServer()->Host()`, f.idOf(f.d.VM3))
		res := f.run(t, src)
		if len(res.Rows) != 2 {
			t.Fatalf("rows = %d, want 2", len(res.Rows))
		}
		names := map[any]temporal.Set{}
		for _, row := range res.Rows {
			names[row.Values[0]] = row.Coexist
		}
		h2, ok2 := names["host-2"]
		h1, ok1 := names["host-1"]
		if !ok1 || !ok2 {
			t.Fatalf("targets = %v", names)
		}
		// host-2 placement: from load to 10:00 (maximal, unclipped).
		if first, _ := h2.First(); !first.Before(t0.Add(time.Hour)) {
			t.Errorf("host-2 range = %v, must start at load time", h2)
		}
		if last, _ := h2.Last(); !last.Equal(t0.Add(10 * time.Hour)) {
			t.Errorf("host-2 range = %v, must end at migration", h2)
		}
		// host-1 placement is still open.
		if last, _ := h1.Last(); !last.Equal(temporal.Forever) {
			t.Errorf("host-1 range = %v, must be current", h1)
		}
	})
}

func TestTemporalAggregates(t *testing.T) {
	backends(t, func(t *testing.T, f *fixture) {
		// vm-1 goes Red between 4h and 6h, and again from 20h (still red).
		fields := f.st.Object(f.d.VM1).Current().Fields
		setStatus := func(at time.Time, status string) {
			f.clock.SetNow(at)
			next := fields.Clone()
			next["status"] = status
			if err := f.st.Update(f.d.VM1, next); err != nil {
				t.Fatal(err)
			}
			fields = next
		}
		setStatus(t0.Add(4*time.Hour), "Red")
		setStatus(t0.Add(6*time.Hour), "Green")
		setStatus(t0.Add(20*time.Hour), "Red")

		base := fmt.Sprintf("Retrieve P From PATHS P Where P MATCHES VM(id=%d, status='Red')", f.idOf(f.d.VM1))

		res := f.run(t, "First Time When Exists "+base)
		if res.Agg == nil || !res.Agg.Exists || !res.Agg.Time.Equal(t0.Add(4*time.Hour)) {
			t.Fatalf("first time = %+v", res.Agg)
		}
		res = f.run(t, "Last Time When Exists "+base)
		if res.Agg == nil || !res.Agg.Current {
			t.Fatalf("last time = %+v (red is still current)", res.Agg)
		}
		res = f.run(t, "When Exists "+base)
		if res.Agg == nil || len(res.Agg.Set) != 2 {
			t.Fatalf("when exists = %+v, want two red periods", res.Agg)
		}
		// Never-satisfied query.
		res = f.run(t, "When Exists Retrieve P From PATHS P Where P MATCHES VM(status='Purple')")
		if res.Agg == nil || res.Agg.Exists {
			t.Fatalf("when exists on impossible predicate = %+v", res.Agg)
		}
	})
}

func TestCoexistenceJoinRejectsDisjointTimes(t *testing.T) {
	backends(t, func(t *testing.T, f *fixture) {
		migrateVM3(t, f, t0.Add(10*time.Hour))
		// Query-level AT range: P (vm-3 on host-2) and Q (vm-3 on host-1)
		// never coexisted, so the join over both yields nothing.
		src := fmt.Sprintf(`AT '2017-02-15 00:30' : '2017-02-16 00:00'
			Select source(P).name From PATHS P, PATHS Q
			Where P MATCHES VM(id=%[1]d)->OnServer()->Host(id=%[2]d)
			And Q MATCHES VM(id=%[1]d)->OnServer()->Host(id=%[3]d)
			And source(P) = source(Q)`,
			f.idOf(f.d.VM3), f.idOf(f.d.Host2), f.idOf(f.d.Host1))
		res := f.run(t, src)
		if len(res.Rows) != 0 {
			t.Fatalf("disjoint placements coexisted: %+v", res.Rows)
		}
	})
}

func TestMultiStoreIntegration(t *testing.T) {
	// Two stores: the service graph in one, a second copy of the physical
	// fabric in another (as a legacy inventory would hold it). Join paths
	// across them through the executor; identity crosses on node ids.
	f := newFixture(t, "gremlin")
	clock2 := temporal.NewManualClock(t0)
	st2 := graph.NewStore(netmodel.MustSchema(), clock2)
	if _, err := netmodel.BuildDemo(st2, 1000); err != nil {
		t.Fatal(err)
	}
	eng2 := plan.NewEngine(relational.New(st2))
	f.x.Route("Phys", eng2)

	src := fmt.Sprintf(`Retrieve Phys
		From PATHS D1, PATHS Phys
		Where D1 MATCHES VNF(id=%d)->[Vertical()]{1,6}->Host()
		And Phys MATCHES PhysicalLink(){1,4}
		And source(Phys)=target(D1)`, f.idOf(f.d.FirewallVNF))
	q := query.MustParse(src)
	a, err := query.Analyze(q, f.st.Schema())
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.x.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("cross-store join returned nothing")
	}
	// Every Phys pathway must live in store 2 and start at the host-1
	// counterpart there.
	for _, row := range res.Rows {
		p := row.Bindings["Phys"]
		src := st2.Object(p.Source())
		if src == nil {
			t.Fatal("Phys pathway source not in the routed store")
		}
		if src.Current().Fields["name"] != "host-1" {
			t.Errorf("Phys source = %v, want host-1", src.Current().Fields["name"])
		}
	}
}

func TestFormatResult(t *testing.T) {
	f := newFixture(t, "gremlin")
	res := f.run(t, "Select source(P).name From PATHS P Where P MATCHES VNF()")
	out := res.Format(func(p plan.Pathway) string { return p.Render(f.st) })
	if len(out) == 0 || out[:len("source(P).name")] != "source(P).name" {
		t.Errorf("format output = %q", out)
	}
}

func TestStructuredDataQueryEndToEnd(t *testing.T) {
	backends(t, func(t *testing.T, f *fixture) {
		// Give the demo virtual router a routing table, then query into it
		// with a dotted structured-data predicate — the §3.2.1 extension.
		cur := f.st.Object(f.d.VRouter).Current().Fields.Clone()
		cur["routingTable"] = []any{
			map[string]any{"address": "10.0.0.0", "mask": int64(24), "interface": "irb.10"},
			map[string]any{"address": "0.0.0.0", "mask": int64(0), "interface": "irb.99"},
		}
		if err := f.st.Update(f.d.VRouter, cur); err != nil {
			t.Fatal(err)
		}
		res := f.run(t, `Select source(P).name From PATHS P
			Where P MATCHES VirtualRouter(routingTable.address='10.0.0.0')`)
		if len(res.Rows) != 1 || res.Rows[0].Values[0] != "vrouter-1" {
			t.Fatalf("rows = %+v", res.Rows)
		}
		// Route context inside a pathway (the paper's future-work item
		// "context-dependent RPE evaluation (e.g. routing tables)"):
		// networks reachable from a VM through a router holding a default
		// route.
		res = f.run(t, `Select target(P).name From PATHS P
			Where P MATCHES VM(name='vm-1')->VirtualLink(){1,2}->VirtualRouter(routingTable.mask=0)`)
		if len(res.Rows) != 1 || res.Rows[0].Values[0] != "vrouter-1" {
			t.Fatalf("routed rows = %+v", res.Rows)
		}
		// No match on an absent prefix.
		res = f.run(t, `Retrieve P From PATHS P
			Where P MATCHES VirtualRouter(routingTable.address='192.168.0.0')`)
		if len(res.Rows) != 0 {
			t.Fatalf("phantom route matched: %+v", res.Rows)
		}
	})
}

func TestLenJoinPredicate(t *testing.T) {
	backends(t, func(t *testing.T, f *fixture) {
		// Equal-length placements: every pair of VM placements has one hop,
		// so the len() join keeps all cross pairs with distinct sources.
		src := `Select source(P).name, source(Q).name From PATHS P, PATHS Q
			Where P MATCHES VM()->OnServer()->Host()
			And Q MATCHES VM()->OnServer()->Host()
			And len(P) = len(Q)
			And source(P) != source(Q)`
		res := f.run(t, src)
		if len(res.Rows) != 6 { // 3 placements x 2 others
			t.Fatalf("rows = %d, want 6", len(res.Rows))
		}
	})
}

func TestFieldJoinPredicate(t *testing.T) {
	backends(t, func(t *testing.T, f *fixture) {
		// Join on a field value: VMs placed in the same rack as vm-1's host.
		src := fmt.Sprintf(`Select source(Q).name From PATHS P, PATHS Q
			Where P MATCHES VM(id=%d)->OnServer()->Host()
			And Q MATCHES VM()->OnServer()->Host()
			And target(P).rack = target(Q).rack`, f.idOf(f.d.VM1))
		res := f.run(t, src)
		// host-1 is in rack r1 and hosts vm-1 and vm-2.
		if len(res.Rows) != 2 {
			t.Fatalf("rows = %d, want 2", len(res.Rows))
		}
	})
}

func TestAggregateClippedToRange(t *testing.T) {
	backends(t, func(t *testing.T, f *fixture) {
		// vm-1 red from 4h, green again at 6h.
		fields := f.st.Object(f.d.VM1).Current().Fields
		set := func(at time.Time, status string) {
			f.clock.SetNow(at)
			next := fields.Clone()
			next["status"] = status
			if err := f.st.Update(f.d.VM1, next); err != nil {
				t.Fatal(err)
			}
			fields = next
		}
		set(t0.Add(4*time.Hour), "Red")
		set(t0.Add(6*time.Hour), "Green")

		// A range-scoped First Time clips to the window: within 05:00-07:00
		// the first red instant is the window start, not 04:00. The
		// aggregate prefix precedes the AT clause in the grammar.
		src := fmt.Sprintf(`First Time When Exists AT '2017-02-15 05:00' : '2017-02-15 07:00'
			Retrieve P From PATHS P Where P MATCHES VM(id=%d, status='Red')`, f.idOf(f.d.VM1))
		res := f.run(t, src)
		if res.Agg == nil || !res.Agg.Exists {
			t.Fatalf("agg = %+v", res.Agg)
		}
		if !res.Agg.Time.Equal(t0.Add(5 * time.Hour)) {
			t.Fatalf("clipped first time = %v, want 05:00", res.Agg.Time)
		}
	})
}

func TestUnanchorableWithoutJoinErrors(t *testing.T) {
	f := newFixture(t, "gremlin")
	q, err := query.Parse(`Retrieve P From PATHS P Where P MATCHES [VirtualLink()]{0,3}->[PhysicalLink()]{0,3}`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := query.Analyze(q, f.st.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.x.Run(a); err == nil {
		t.Fatal("unanchorable variable without joins accepted")
	}
}

func TestSharedElements(t *testing.T) {
	backends(t, func(t *testing.T, f *fixture) {
		// Shared fate (§2.3.2): data flows for several customers share a
		// common set of elements. Both firewall chains run through host-1.
		res := f.run(t, `Retrieve P From PATHS P Where P MATCHES VNF(vnfType='firewall')->[Vertical()]{1,6}->Host()`)
		var paths []plan.Pathway
		for _, row := range res.Rows {
			paths = append(paths, row.Values[0].(plan.Pathway))
		}
		shared := plan.SharedElements(paths)
		want := map[graph.UID]bool{f.d.FirewallVNF: true, f.d.Host1: true}
		got := map[graph.UID]bool{}
		for _, uid := range shared {
			got[uid] = true
		}
		for uid := range want {
			if !got[uid] {
				t.Errorf("shared elements missing %d", uid)
			}
		}
		if got[f.d.VM1] || got[f.d.VM2] {
			t.Error("per-chain VMs wrongly reported as shared")
		}
	})
}

func TestCountAggregation(t *testing.T) {
	backends(t, func(t *testing.T, f *fixture) {
		res := f.run(t, `Select count(P) From PATHS P Where P MATCHES VM()->OnServer()->Host()`)
		if len(res.Rows) != 1 || res.Rows[0].Values[0] != int64(3) {
			t.Fatalf("count rows = %+v", res.Rows)
		}
		// Counting over a join counts distinct pathways of the counted
		// variable, not join rows.
		res = f.run(t, `Select count(Q) From PATHS P, PATHS Q
			Where P MATCHES VM()->OnServer()->Host()
			And Q MATCHES VNF()->[Vertical()]{1,6}->Host()
			And target(P) = target(Q)`)
		if len(res.Rows) != 1 || res.Rows[0].Values[0] != int64(3) {
			t.Fatalf("joined count = %+v", res.Rows)
		}
		// Mixing count with per-row projections is rejected at analysis.
		q, err := query.Parse(`Select count(P), source(P).name From PATHS P Where P MATCHES VM()`)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := query.Analyze(q, f.st.Schema()); err == nil {
			t.Fatal("count mixed with per-row projection accepted")
		}
	})
}

func TestCorrelatedSeededSubquery(t *testing.T) {
	backends(t, func(t *testing.T, f *fixture) {
		// The inner variable is structurally unanchored ([Vertical()]{0,2}
		// admits the empty match); its anchor is imported from the OUTER
		// variable through the correlation predicate — per-row seeding.
		src := `Retrieve H From PATHS H
			Where H MATCHES Host()
			And NOT EXISTS(
				Retrieve P From PATHS P
				Where P MATCHES [OnServer()]{0,1}->[OnServer()]{0,1}
				And target(P) = target(H)
				And source(P) != target(H)
			)`
		res := f.run(t, src)
		// Every host carries at least one VM placement, so no host survives
		// the NOT EXISTS.
		if len(res.Rows) != 0 {
			t.Fatalf("hosts without placements = %d, want 0", len(res.Rows))
		}
		// Delete host-2's placements; it should now qualify.
		for _, e := range f.st.InEdges(f.d.Host2) {
			obj := f.st.Object(e)
			if obj.Class.Name == netmodel.OnServer && obj.Current() != nil {
				if err := f.st.Delete(e); err != nil {
					t.Fatal(err)
				}
			}
		}
		res = f.run(t, src)
		if len(res.Rows) != 1 {
			t.Fatalf("hosts without placements = %d, want 1 (host-2)", len(res.Rows))
		}
		if res.Rows[0].Values[0].(plan.Pathway).Source() != f.d.Host2 {
			t.Fatal("wrong host qualified")
		}
	})
}
