package exec

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/graph"
	"repro/internal/gremlin"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/rpe"
	"repro/internal/temporal"
)

func (f *fixture) analyze(t *testing.T, src string) *query.Analyzed {
	t.Helper()
	q, err := query.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	a, err := query.Analyze(q, f.st.Schema())
	if err != nil {
		t.Fatalf("analyze %q: %v", src, err)
	}
	return a
}

// routedFixture routes the Phys variable of the §3.4 join to a
// chaos-wrapped relational engine over a second copy of the demo
// topology, returning the fixture, the chaos wrapper, and the query.
func routedFixture(t *testing.T, opts ...chaos.Option) (*fixture, *chaos.Accessor, string) {
	t.Helper()
	f := newFixture(t, "gremlin")
	st2 := graph.NewStore(netmodel.MustSchema(), temporal.NewManualClock(t0))
	if _, err := netmodel.BuildDemo(st2, 1000); err != nil {
		t.Fatal(err)
	}
	ca := chaos.Wrap(relational.New(st2), opts...)
	f.x.Route("Phys", plan.NewEngine(ca))
	src := fmt.Sprintf(`Retrieve Phys
		From PATHS D1, PATHS Phys
		Where D1 MATCHES VNF(id=%d)->[Vertical()]{1,6}->Host()
		And Phys MATCHES PhysicalLink(){1,4}
		And source(Phys)=target(D1)`, f.idOf(f.d.FirewallVNF))
	return f, ca, src
}

func TestOutcomeClassification(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, "ok"},
		{ErrCanceled, "canceled"},
		{fmt.Errorf("var %q: %w", "P", ErrDeadlineExceeded), "deadline"},
		{&plan.LimitError{Counter: "paths", Limit: 1, Observed: 2}, "limit"},
		{&plan.PanicError{Value: "boom"}, "panic"},
		{errors.New("disk on fire"), "error"},
	}
	for _, c := range cases {
		if got := Outcome(c.err); got != c.want {
			t.Errorf("Outcome(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestRunContextCanceled(t *testing.T) {
	backends(t, func(t *testing.T, f *fixture) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		a := f.analyze(t, "Retrieve P From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host()")
		res, err := f.x.RunContext(ctx, a)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("pre-canceled RunContext = %v, want ErrCanceled", err)
		}
		if res != nil {
			t.Error("canceled query must not return a result")
		}
	})
}

func TestLimitsTyped(t *testing.T) {
	backends(t, func(t *testing.T, f *fixture) {
		a := f.analyze(t, "Retrieve P From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host()")
		var le *plan.LimitError

		f.x.Limits = Limits{MaxPaths: 1}
		_, err := f.x.Run(a)
		if !errors.Is(err, ErrLimitExceeded) || !errors.As(err, &le) || le.Counter != "paths" {
			t.Fatalf("MaxPaths run = %v, want paths LimitError", err)
		}

		f.x.Limits = Limits{MaxEdgesScanned: 1}
		_, err = f.x.Run(a)
		if !errors.As(err, &le) || le.Counter != "edges_scanned" {
			t.Fatalf("MaxEdgesScanned run = %v, want edges_scanned LimitError", err)
		}

		// Generous limits leave the query untouched.
		f.x.Limits = Limits{MaxPaths: 1 << 20, MaxEdgesScanned: 1 << 20}
		res, err := f.x.Run(a)
		if err != nil || len(res.Rows) != 3 {
			t.Fatalf("generously limited run = %v rows, err %v; want 3 rows", res, err)
		}
	})
}

func TestMaxDurationAbortsPromptly(t *testing.T) {
	// A slow backend (200µs per probe) under a 1ms budget: the deadline
	// must trip cooperatively within a few probes, not after the full scan.
	st := graph.NewStore(netmodel.MustSchema(), temporal.NewManualClock(t0))
	if _, err := netmodel.BuildDemo(st, 1000); err != nil {
		t.Fatal(err)
	}
	eng := plan.NewEngine(chaos.Wrap(gremlin.New(st), chaos.WithLatency(200*time.Microsecond)))
	x := New(eng)
	x.Limits = Limits{MaxDuration: time.Millisecond}
	f := &fixture{st: st, x: x}
	a := f.analyze(t, "Retrieve P From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host()")
	start := time.Now()
	_, err := x.Run(a)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("MaxDuration run = %v, want ErrDeadlineExceeded", err)
	}
	if elapsed > time.Second {
		t.Errorf("1ms budget aborted after %v; cooperative checkpoints too sparse", elapsed)
	}
}

func TestEnginePanicSurfacesAsError(t *testing.T) {
	f := newFixture(t, "gremlin")
	f.x.Default = plan.NewEngine(panicAccessor{inner: f.x.Default.Accessor()})
	a := f.analyze(t, "Retrieve P From PATHS P Where P MATCHES VM()")
	_, err := f.x.Run(a)
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("panicking engine run = %v, want ErrPanic", err)
	}
	if Outcome(err) != "panic" {
		t.Errorf("Outcome = %q, want panic", Outcome(err))
	}
}

// panicAccessor panics on every probe, standing in for a backend bug.
type panicAccessor struct{ inner plan.Accessor }

func (p panicAccessor) Name() string        { return p.inner.Name() }
func (p panicAccessor) Store() *graph.Store { return p.inner.Store() }

func (panicAccessor) AnchorElements(graph.View, *rpe.Checked, *rpe.Atom, *plan.Governor) ([]graph.UID, error) {
	panic("backend bug")
}

func (panicAccessor) IncidentEdges(graph.View, graph.UID, plan.Direction, *rpe.Atom, *rpe.Checked, *plan.Governor) ([]graph.UID, error) {
	panic("backend bug")
}

func TestRoutedRetrySucceeds(t *testing.T) {
	// A two-probe outage heals under a 3-attempt retry policy: the query
	// succeeds, non-degraded, and the retries are counted.
	f, ca, src := routedFixture(t, chaos.WithFailFirst(2))
	f.x.Retry = RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Microsecond}
	reg := obs.NewRegistry()
	f.x.Reg = reg
	res, err := f.x.Run(f.analyze(t, src))
	if err != nil {
		t.Fatalf("run under transient outage = %v, want retried success", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("retried query returned no rows")
	}
	if res.Degraded {
		t.Error("retried success must not be flagged degraded")
	}
	if ca.Faults() != 2 {
		t.Errorf("Faults = %d, want 2", ca.Faults())
	}
	if n := reg.Counter("exec.routed_retries").Value(); n != 2 {
		t.Errorf("exec.routed_retries = %d, want 2", n)
	}
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	f, ca, src := routedFixture(t, chaos.WithFailProb(1, 42))
	f.x.BreakerThreshold = 2
	reg := obs.NewRegistry()
	f.x.Reg = reg
	a := f.analyze(t, src)

	// Two failing queries reach the threshold.
	for i := 0; i < 2; i++ {
		if _, err := f.x.Run(a); err == nil {
			t.Fatalf("query %d on a dead engine succeeded", i+1)
		}
	}
	if n := reg.Counter("exec.breaker_open").Value(); n != 1 {
		t.Fatalf("exec.breaker_open = %d, want 1", n)
	}
	// The open breaker short-circuits: typed error, engine never probed.
	before := ca.Calls()
	_, err := f.x.Run(a)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("run with open breaker = %v, want ErrBreakerOpen", err)
	}
	if ca.Calls() != before {
		t.Errorf("open breaker still probed the engine (%d -> %d calls)", before, ca.Calls())
	}
}

func TestBreakerHalfOpenRecovers(t *testing.T) {
	f, ca, src := routedFixture(t, chaos.WithFailProb(1, 7))
	f.x.BreakerThreshold = 1
	f.x.BreakerCooldown = 5 * time.Millisecond
	a := f.analyze(t, src)
	if _, err := f.x.Run(a); err == nil {
		t.Fatal("first query on a dead engine succeeded")
	}
	// After the cooldown, the half-open probe finds a healed engine and
	// closes the breaker for good.
	ca.Heal()
	time.Sleep(10 * time.Millisecond)
	for i := 0; i < 2; i++ {
		res, err := f.x.Run(a)
		if err != nil {
			t.Fatalf("healed query %d = %v, want breaker recovery", i+1, err)
		}
		if len(res.Rows) == 0 || res.Degraded {
			t.Fatalf("healed query %d: rows=%d degraded=%v", i+1, len(res.Rows), res.Degraded)
		}
	}
}

func TestDegradeFallbackAgreesWithHealthy(t *testing.T) {
	// The routed engine is dead; DegradeFallback serves Phys from the
	// default engine's store, and the answer must match a healthy
	// unrouted run exactly (both evaluate over the same default store).
	f, _, src := routedFixture(t, chaos.WithFailProb(1, 3))
	f.x.Degrade = DegradeFallback
	res, err := f.x.Run(f.analyze(t, src))
	if err != nil {
		t.Fatalf("degraded run = %v, want fallback success", err)
	}
	if !res.Degraded || len(res.DegradedVars) != 1 || res.DegradedVars[0] != "Phys" {
		t.Fatalf("Degraded=%v DegradedVars=%v, want Phys flagged", res.Degraded, res.DegradedVars)
	}
	healthy := newFixture(t, "gremlin")
	want := healthy.run(t, src)
	if len(res.Rows) != len(want.Rows) {
		t.Fatalf("degraded rows = %d, healthy rows = %d", len(res.Rows), len(want.Rows))
	}
	got := map[string]bool{}
	for _, row := range res.Rows {
		got[row.Bindings["Phys"].Key()] = true
	}
	for _, row := range want.Rows {
		if !got[row.Bindings["Phys"].Key()] {
			t.Errorf("healthy pathway %s missing from degraded result", row.Bindings["Phys"].Key())
		}
	}
}

func TestDegradePartialBindsEmpty(t *testing.T) {
	f, _, src := routedFixture(t, chaos.WithFailProb(1, 9))
	f.x.Degrade = DegradePartial
	res, err := f.x.Run(f.analyze(t, src))
	if err != nil {
		t.Fatalf("partial run = %v, want flagged success", err)
	}
	if !res.Degraded {
		t.Error("partial result not flagged degraded")
	}
	if len(res.Rows) != 0 {
		t.Errorf("rows needing the dead variable survived: %d", len(res.Rows))
	}
}

func TestGovernanceAbortNeverRetriedOrDegraded(t *testing.T) {
	// A canceled query must fail typed even under the most forgiving
	// fault-tolerance policy: the exhausted budget is the query's, not
	// the engine's.
	f, _, src := routedFixture(t)
	f.x.Retry = RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond}
	f.x.Degrade = DegradeFallback
	reg := obs.NewRegistry()
	f.x.Reg = reg
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := f.x.RunContext(ctx, f.analyze(t, src))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled routed run = %v, want ErrCanceled", err)
	}
	if n := reg.Counter("exec.routed_retries").Value(); n != 0 {
		t.Errorf("governance abort was retried %d times", n)
	}
}
