// Package exec executes analyzed Nepal queries: it evaluates each pathway
// range variable through a backend engine (seeding imported anchors from
// joins when a variable has none of its own), joins the per-variable
// pathway sets on source()/target() equality, applies NOT EXISTS
// subqueries, enforces the §4 temporal semantics (coexistence ranges for
// query-level AT, independent ranges for per-variable times), computes
// the First/Last/When-Exists aggregates, and performs Select-clause post
// processing.
//
// The executor can route different range variables to different engines —
// Nepal's data-integration mode, where paths from different inventories
// with different underlying databases are joined in the shim layer.
// Cross-store joins therefore compare the schema-unique id field of the
// endpoint nodes rather than store-local UIDs.
package exec

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/temporal"
)

// Row is one result tuple: the pathway bound to each range variable plus
// its temporal annotation.
type Row struct {
	// Values holds the projected values in projection order: a
	// plan.Pathway for Retrieve, scalars for Select terms.
	Values []any
	// Bindings maps each range variable to its pathway.
	Bindings map[string]plan.Pathway
	// Coexist is the maximal range during which all bound pathways
	// coexisted; populated for query-level time semantics.
	Coexist temporal.Set
	// VarTimes holds each variable's own maximal validity ranges;
	// populated when variables carry their own time bindings.
	VarTimes map[string]temporal.Set
}

// Result is a query's full answer.
type Result struct {
	Columns []string
	Rows    []Row
	// Digest is the statement's literal-masked fingerprint (16 hex
	// chars), the key into the per-statement statistics surfaces. Filled
	// by core after execution; empty for results produced below it.
	Digest string
	// Agg carries the answer of a temporal aggregate query; nil otherwise.
	Agg *AggValue
	// Metrics totals the operator-pipeline counters across every variable
	// evaluation of the query, subqueries included. It is a value copy:
	// safe to read concurrently with further queries on the same executor.
	Metrics plan.Metrics
	// Plans records the executed plan of each range variable by name.
	Plans map[string]*plan.Plan
	// Trace is the query's operator-DAG span tree; nil unless the query
	// ran through RunTraced.
	Trace *obs.Span
	// Degraded reports that at least one routed variable was served by a
	// degraded path (default-engine fallback or empty partial binding)
	// because its engine stayed unavailable; DegradedVars names them.
	// Degraded results may be incomplete and must not be treated as an
	// authoritative inventory answer.
	Degraded     bool
	DegradedVars []string
}

// AggValue is the answer to First/Last/When-Exists.
type AggValue struct {
	// Time is set for First/Last Time When Exists.
	Time time.Time
	// Current is true when a Last-Time aggregate is still open (the
	// pathway still exists).
	Current bool
	// Set is the full interval set for When Exists.
	Set temporal.Set
	// Exists reports whether any satisfying pathway was found at all.
	Exists bool
}

// Format renders the result as an aligned text table for CLI output.
func (r *Result) Format(render func(plan.Pathway) string) string {
	var sb strings.Builder
	if r.Agg != nil {
		switch {
		case !r.Agg.Exists:
			sb.WriteString("no satisfying pathway\n")
		case r.Agg.Set != nil:
			fmt.Fprintf(&sb, "when exists: %s\n", r.Agg.Set)
		case r.Agg.Current:
			sb.WriteString("still exists (no last time)\n")
		default:
			fmt.Fprintf(&sb, "%s\n", r.Agg.Time.UTC().Format("2006-01-02 15:04:05"))
		}
		return sb.String()
	}
	sb.WriteString(strings.Join(r.Columns, " | "))
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		parts := make([]string, len(row.Values))
		for i, v := range row.Values {
			if p, ok := v.(plan.Pathway); ok {
				parts[i] = render(p)
				if len(p.Validity) > 0 {
					parts[i] += " " + p.Validity.String()
				}
			} else {
				parts[i] = fmt.Sprintf("%v", v)
			}
		}
		sb.WriteString(strings.Join(parts, " | "))
		if row.Coexist != nil {
			sb.WriteString("  times: " + row.Coexist.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
