package exec

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/temporal"
)

// SeedCostThreshold is the anchor cost above which a variable prefers an
// anchor imported from a join over its own (§3.3: "in join queries, an
// anchor can be imported from a joined path"; "small depends on available
// system resources").
const SeedCostThreshold = 512

// Executor runs analyzed queries. Default serves every variable unless
// Routes maps a variable name to another engine (data-integration mode).
//
// The governance fields configure every query the executor runs: Limits
// bounds each query's resources, Retry/BreakerThreshold/Degrade control
// how routed variables behave when their engine fails, and Reg (optional)
// receives the "exec.routed_retries" and "exec.breaker_open" counters.
// Configure them before the executor starts serving queries; the breaker
// state itself is internally synchronized and persists across queries on
// the same Executor.
type Executor struct {
	Default *plan.Engine
	Routes  map[string]*plan.Engine

	// Limits bounds every query run through this executor; the zero value
	// is unlimited.
	Limits Limits
	// Retry is the retry policy for routed variable evaluations; the zero
	// value disables retries.
	Retry RetryPolicy
	// BreakerThreshold opens a routed engine's circuit breaker after that
	// many consecutive failures; 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown, when positive, admits one half-open probe per
	// cooldown interval; 0 keeps an open breaker latched.
	BreakerCooldown time.Duration
	// Degrade selects the behavior when a routed engine stays unavailable
	// after retries: fail the query (DegradeNone), fall back to the
	// default engine (DegradeFallback), or keep partial results
	// (DegradePartial).
	Degrade DegradeMode
	// Reg, when non-nil, receives retry and breaker counters.
	Reg *obs.Registry

	mu       sync.Mutex
	breakers map[string]*breaker
}

// New returns an executor over a single engine.
func New(e *plan.Engine) *Executor { return &Executor{Default: e} }

// Route directs a range variable to a specific engine, joining its paths
// with paths from other stores in the executor.
func (x *Executor) Route(varName string, e *plan.Engine) {
	if x.Routes == nil {
		x.Routes = make(map[string]*plan.Engine)
	}
	x.Routes[varName] = e
}

func (x *Executor) engineFor(varName string) *plan.Engine {
	if e, ok := x.Routes[varName]; ok {
		return e
	}
	return x.Default
}

// runCtx carries one query execution's instrumentation and governance:
// the metrics totals accumulated across every variable evaluation
// (subqueries included), the per-variable plans chosen by the optimizer,
// the query's governor, the variables served degraded, and — when
// tracing — the query span under which per-variable Eval spans nest.
type runCtx struct {
	metrics plan.Metrics
	plans   map[string]*plan.Plan
	span    *obs.Span // non-nil enables operator-DAG tracing
	// Per-variable grouping spans: almost every query has one range
	// variable, so the first gets two plain fields and the map is only
	// allocated for the second onward.
	var0name string
	var0span *obs.Span
	vars     map[string]*obs.Span
	gov      *plan.Governor
	degraded map[string]bool
}

// markDegraded records that a variable was served by a degraded path
// (default-engine fallback or empty partial binding).
func (rc *runCtx) markDegraded(name string) {
	if rc.degraded == nil {
		rc.degraded = map[string]bool{}
	}
	rc.degraded[name] = true
}

// varSpan returns the grouping span of one range variable's evaluations.
func (rc *runCtx) varSpan(name string) *obs.Span {
	if rc.span == nil {
		return nil
	}
	if rc.var0span != nil && rc.var0name == name {
		return rc.var0span
	}
	if sp := rc.vars[name]; sp != nil {
		return sp
	}
	sp := rc.span.Child("Var", name)
	if rc.var0span == nil {
		rc.var0name, rc.var0span = name, sp
		return sp
	}
	if rc.vars == nil {
		rc.vars = make(map[string]*obs.Span, 2)
	}
	rc.vars[name] = sp
	return sp
}

// Run executes the analyzed query. The result carries the evaluation
// metrics totaled across all variables (a value copy, safe to read
// concurrently with further queries).
func (x *Executor) Run(a *query.Analyzed) (*Result, error) {
	return x.RunContext(context.Background(), a)
}

// RunContext is Run under a context: the query aborts cooperatively with
// ErrCanceled/ErrDeadlineExceeded when ctx is canceled or its deadline
// (or the executor's Limits.MaxDuration, whichever is earlier) passes.
func (x *Executor) RunContext(ctx context.Context, a *query.Analyzed) (*Result, error) {
	return x.RunContextLimits(ctx, a, x.Limits)
}

// RunContextLimits is RunContext under explicit per-call limits instead
// of the executor-wide Limits — the entry point for servers that carry
// per-request guardrails (each request's governor is built fresh, so
// concurrent calls with different limits never interfere). The zero
// Limits is unlimited.
func (x *Executor) RunContextLimits(ctx context.Context, a *query.Analyzed, lim Limits) (*Result, error) {
	rc := &runCtx{plans: map[string]*plan.Plan{}, gov: plan.NewGovernor(ctx, lim)}
	return x.runGuarded(a, rc)
}

// RunTraced is Run with operator-DAG tracing: every variable evaluation's
// Eval span nests under a per-variable group span inside the returned
// result's Trace tree, and Plans records each variable's executed plan so
// callers can render EXPLAIN ANALYZE.
func (x *Executor) RunTraced(a *query.Analyzed, parent *obs.Span) (*Result, error) {
	return x.RunTracedContext(context.Background(), a, parent)
}

// RunTracedContext is RunTraced under a context.
func (x *Executor) RunTracedContext(ctx context.Context, a *query.Analyzed, parent *obs.Span) (*Result, error) {
	return x.RunTracedContextLimits(ctx, a, parent, x.Limits)
}

// RunTracedContextLimits is RunTracedContext under explicit per-call
// limits — the traced counterpart of RunContextLimits, used by the
// server to nest a request's operator spans under its end-to-end trace
// while still applying per-request guardrails.
func (x *Executor) RunTracedContextLimits(ctx context.Context, a *query.Analyzed, parent *obs.Span, lim Limits) (*Result, error) {
	var span *obs.Span
	if parent != nil {
		span = parent.StartChild("Query", "")
	} else {
		span = obs.NewSpan("Query", "")
	}
	rc := &runCtx{
		plans: map[string]*plan.Plan{},
		span:  span,
		gov:   plan.NewGovernor(ctx, lim),
	}
	res, err := x.runGuarded(a, rc)
	span.Finish()
	return res, err
}

// runGuarded is the query's panic boundary: a panic in the executor's
// own join machinery (engine panics are already converted one layer
// down) surfaces as a *plan.PanicError instead of unwinding the caller.
func (x *Executor) runGuarded(a *query.Analyzed, rc *runCtx) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &plan.PanicError{Value: r, Stack: debug.Stack(), Span: rc.span}
		}
	}()
	return x.run(a, rc)
}

func (x *Executor) run(a *query.Analyzed, rc *runCtx) (*Result, error) {
	rows, perVarTimes, err := x.rows(a, nil, rc)
	if err != nil {
		return nil, err
	}
	res := &Result{Metrics: rc.metrics, Plans: rc.plans, Trace: rc.span}
	if len(rc.degraded) > 0 {
		res.Degraded = true
		res.DegradedVars = schema.SortedNames(rc.degraded)
	}
	if rc.span != nil {
		rc.span.AddRows(0, int64(len(rows)))
	}
	if a.Query.Agg != query.AggNone {
		res.Agg = aggregate(a.Query, rows, perVarTimes)
		return res, nil
	}
	for _, t := range a.Query.Projs {
		res.Columns = append(res.Columns, t.String())
	}
	// Pathway-set aggregation: count(P) counts distinct pathways bound to
	// the variable across the result rows and collapses to a single row.
	if len(a.Query.Projs) > 0 && a.Query.Projs[0].Fn == query.FnCount {
		out := Row{Bindings: map[string]plan.Pathway{}}
		for _, t := range a.Query.Projs {
			distinct := map[string]bool{}
			for _, row := range rows {
				if p, ok := row.bind[t.Var]; ok {
					distinct[p.Key()] = true
				}
			}
			out.Values = append(out.Values, int64(len(distinct)))
		}
		res.Rows = append(res.Rows, out)
		return res, nil
	}
	for _, row := range rows {
		out := Row{Bindings: row.bind, Coexist: row.coexist, VarTimes: row.varTimes}
		for _, t := range a.Query.Projs {
			v, err := x.termValue(a, t, row)
			if err != nil {
				return nil, err
			}
			out.Values = append(out.Values, v)
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// workRow is a candidate tuple during join processing.
type workRow struct {
	bind     map[string]plan.Pathway
	views    map[string]graph.View
	coexist  temporal.Set
	varTimes map[string]temporal.Set
}

// rows materializes the joined tuples of a query. outer supplies bindings
// for correlated subqueries.
func (x *Executor) rows(a *query.Analyzed, outer *workRow, rc *runCtx) ([]workRow, bool, error) {
	q := a.Query
	perVarTimes := hasPerVarTimes(q)

	views := make(map[string]graph.View, len(q.Vars))
	for _, rv := range q.Vars {
		views[rv.Name] = x.viewFor(rv.Name, q, rv.At)
	}

	order, err := x.evalOrder(a)
	if err != nil {
		return nil, perVarTimes, err
	}

	joins, subNE := splitPreds(a)

	// Evaluate variables in order, growing the tuple set and applying join
	// predicates as soon as both sides are bound (pushing selections into
	// the nested-loops join).
	tuples := []workRow{{bind: map[string]plan.Pathway{}, views: views, varTimes: map[string]temporal.Set{}}}
	bound := map[string]bool{}
	if outer != nil {
		for name, p := range outer.bind {
			tuples[0].bind[name] = p
			bound[name] = true
		}
		for name, v := range outer.views {
			if _, shadowed := views[name]; !shadowed {
				tuples[0].views[name] = v
			}
		}
	}

	for _, step := range order {
		var next []workRow
		for _, tup := range tuples {
			// Checkpoint between tuple evaluations: a canceled query stops
			// growing the join instead of finishing the nested loop.
			if err := rc.gov.Check(); err != nil {
				return nil, perVarTimes, err
			}
			paths, usedView, err := x.evalVar(a, step, views[step.name], tup, bound, rc)
			if err != nil {
				return nil, perVarTimes, err
			}
			// A degraded fallback evaluates on the default engine's store;
			// rebind the variable's view copy-on-write so joins and
			// projections resolve its pathways in the store they live in.
			tupViews := tup.views
			if usedView.Store() != tup.views[step.name].Store() {
				tupViews = make(map[string]graph.View, len(tup.views))
				for k, v := range tup.views {
					tupViews[k] = v
				}
				tupViews[step.name] = usedView
			}
			for _, p := range paths {
				nt := workRow{
					bind:     cloneBind(tup.bind),
					views:    tupViews,
					varTimes: cloneTimes(tup.varTimes),
				}
				nt.bind[step.name] = p
				nt.varTimes[step.name] = p.Validity
				if x.joinsSatisfied(a, joins, nt) {
					next = append(next, nt)
				}
			}
		}
		bound[step.name] = true
		tuples = next
	}

	// Temporal row semantics: with query-level time, all pathways in a row
	// must coexist and the row reports the maximal coexistence ranges.
	if !perVarTimes {
		window := x.windowFor(q)
		var kept []workRow
		for _, tup := range tuples {
			co := coexistence(q, tup)
			if co.IsEmpty() {
				continue
			}
			overlap := co.Intersect(temporal.Set{window})
			if overlap.IsEmpty() {
				continue
			}
			tup.coexist = co
			kept = append(kept, tup)
		}
		tuples = kept
	}

	// NOT EXISTS subqueries.
	for _, sub := range subNE {
		tuples, err = x.applyNotExists(sub, tuples, rc)
		if err != nil {
			return nil, perVarTimes, err
		}
	}
	return tuples, perVarTimes, nil
}

// evalStep is one variable evaluation with its chosen strategy.
type evalStep struct {
	name   string
	plan   *plan.Plan
	seeded bool
	// seedFrom names the join term supplying seeds: the already-bound
	// variable and which end of it, plus which end of this variable the
	// seeds bind to.
	seedDir    plan.Direction
	seedVar    string
	seedVarFn  query.PathFn
	anchorCost float64
}

// evalOrder plans the variable evaluation order: anchored variables by
// ascending anchor cost, then variables whose anchors are imported from
// joins against already-ordered variables.
func (x *Executor) evalOrder(a *query.Analyzed) ([]evalStep, error) {
	q := a.Query
	var anchored []evalStep
	pending := map[string]bool{}
	for _, rv := range q.Vars {
		checked := a.Checked[rv.Name]
		st := x.engineFor(rv.Name).Accessor().Store()
		p, err := plan.Build(checked, st.Stats())
		if err != nil {
			pending[rv.Name] = true
			continue
		}
		anchored = append(anchored, evalStep{name: rv.Name, plan: p, anchorCost: p.Anchor.Cost})
	}
	sort.SliceStable(anchored, func(i, j int) bool { return anchored[i].anchorCost < anchored[j].anchorCost })

	ordered := make([]evalStep, 0, len(q.Vars))
	placed := map[string]bool{}
	place := func(s evalStep) {
		ordered = append(ordered, s)
		placed[s.name] = true
	}

	// Costly-anchored variables become seeded when a join links them to a
	// cheaper variable placed earlier.
	for _, s := range anchored {
		if s.anchorCost > SeedCostThreshold {
			if seed, ok := x.findSeed(a, s.name, placed); ok {
				seed.plan = plan.BuildSeeded(a.Checked[s.name], seed.seedDir)
				place(seed)
				continue
			}
		}
		place(s)
	}
	// Unanchored variables require an imported anchor.
	for progress := true; progress && len(pending) > 0; {
		progress = false
		for _, name := range schema.SortedNames(pending) {
			seed, ok := x.findSeed(a, name, placed)
			if !ok {
				continue
			}
			seed.plan = plan.BuildSeeded(a.Checked[name], seed.seedDir)
			place(seed)
			delete(pending, name)
			progress = true
		}
	}
	if len(pending) > 0 {
		return nil, fmt.Errorf("exec: variable(s) %v have no anchor and no join to import one from (§3.3)",
			schema.SortedNames(pending))
	}
	return ordered, nil
}

// findSeed looks for a join predicate equating source/target of name with
// source/target of an already-placed (or outer) variable.
func (x *Executor) findSeed(a *query.Analyzed, name string, placed map[string]bool) (evalStep, bool) {
	available := func(v string) bool {
		return placed[v] || a.IsOuterRef(v)
	}
	for _, p := range a.Query.Preds {
		jp, ok := p.(*query.JoinPred)
		if !ok || jp.Negated || jp.Left.Field != "" || jp.Right.Field != "" {
			continue
		}
		for _, ori := range []struct{ mine, other query.Term }{
			{jp.Left, jp.Right}, {jp.Right, jp.Left},
		} {
			if ori.mine.Var != name || ori.mine.Fn == query.FnLen || ori.other.Fn == query.FnLen {
				continue
			}
			if ori.other.Var == name || !available(ori.other.Var) {
				continue
			}
			dir := plan.Forward
			if ori.mine.Fn == query.FnTarget {
				dir = plan.Backward
			}
			return evalStep{name: name, seeded: true, seedDir: dir,
				seedVar: ori.other.Var, seedVarFn: ori.other.Fn}, true
		}
	}
	return evalStep{}, false
}

// evalVar evaluates one variable for the current tuple, folding the
// evaluation's metrics (and trace, when enabled) into the run context.
// It returns the view the variable was actually evaluated under, which
// differs from the planned view only when a routed variable fell back to
// the default engine. Routed variables additionally go through the
// retry/breaker/degrade machinery of evalRouted.
func (x *Executor) evalVar(a *query.Analyzed, step evalStep, view graph.View, tup workRow, bound map[string]bool, rc *runCtx) ([]plan.Pathway, graph.View, error) {
	if rc.plans != nil {
		rc.plans[step.name] = step.plan
	}
	if _, routed := x.Routes[step.name]; routed {
		return x.evalRouted(a, step, view, tup, rc)
	}
	eng := x.engineFor(step.name)
	seeds, err := x.seedsFor(step, tup, eng)
	if err != nil {
		return nil, view, err
	}
	set, err := x.evalOnce(eng, step, view, seeds, rc)
	if err != nil {
		return nil, view, err
	}
	return applyViewFilter(a, step.name, view, set.Paths()), view, nil
}

// evalOnce runs one engine evaluation of the variable with the query's
// governor and trace threaded through, folding the metrics into the run.
func (x *Executor) evalOnce(eng *plan.Engine, step evalStep, view graph.View, seeds []graph.UID, rc *runCtx) (*plan.PathwaySet, error) {
	opts := plan.EvalOpts{Gov: rc.gov, Seeds: seeds}
	if rc.span != nil {
		opts.Traced = true
		opts.TraceParent = rc.varSpan(step.name)
	}
	set, m, _, err := eng.EvalWith(view, step.plan, opts)
	rc.metrics.Merge(m)
	return set, err
}

// evalRouted evaluates a variable routed to another engine under the
// executor's fault-tolerance policy: a consecutive-failure circuit
// breaker short-circuits known-bad engines, transient failures retry
// with capped exponential backoff + jitter, and a still-failing engine
// optionally degrades — falling back to the default engine or binding
// the variable empty, in both cases flagging Result.Degraded. Governance
// aborts (cancellation, deadline, limits) are never retried or degraded:
// the exhausted budget is the query's, not the engine's.
func (x *Executor) evalRouted(a *query.Analyzed, step evalStep, view graph.View, tup workRow, rc *runCtx) ([]plan.Pathway, graph.View, error) {
	eng := x.Routes[step.name]
	br := x.breakerFor(step.name)
	var lastErr error
	if br.allow(time.Now()) {
		seeds, err := x.seedsFor(step, tup, eng)
		if err != nil {
			return nil, view, err
		}
		for attempt := 1; attempt <= x.Retry.attempts(); attempt++ {
			if attempt > 1 {
				x.Reg.Counter("exec.routed_retries").Add(1)
				if err := sleepBackoff(rc.gov.Context(), x.Retry.backoff(attempt-1)); err != nil {
					return nil, view, err
				}
			}
			set, err := x.evalOnce(eng, step, view, seeds, rc)
			if err == nil {
				br.onSuccess()
				return applyViewFilter(a, step.name, view, set.Paths()), view, nil
			}
			lastErr = err
			if IsGovernance(err) {
				return nil, view, err
			}
			if br.onFailure(time.Now()) {
				x.Reg.Counter("exec.breaker_open").Add(1)
				break
			}
			if !Transient(err) {
				break
			}
		}
	} else {
		lastErr = fmt.Errorf("exec: variable %q: %w", step.name, ErrBreakerOpen)
	}
	switch x.Degrade {
	case DegradeFallback:
		if x.Default != nil && x.Default != eng {
			// The fallback evaluates against the default engine's store, so
			// the variable's temporal view is rebuilt over that store and
			// the seeds are translated into it.
			fview := viewOn(x.Default.Accessor().Store(), a.Query, varTimeSpec(a.Query, step.name))
			seeds, err := x.seedsFor(step, tup, x.Default)
			if err != nil {
				return nil, view, err
			}
			set, err := x.evalOnce(x.Default, step, fview, seeds, rc)
			if err == nil {
				rc.markDegraded(step.name)
				return applyViewFilter(a, step.name, fview, set.Paths()), fview, nil
			}
			if IsGovernance(err) {
				return nil, view, err
			}
		}
		return nil, view, lastErr
	case DegradePartial:
		rc.markDegraded(step.name)
		return nil, view, nil
	default:
		return nil, view, lastErr
	}
}

// seedsFor resolves the seed nodes of a seeded step for evaluation on
// eng: the joined variable's endpoint in this tuple, translated into
// eng's store when the stores differ (identity crosses via the unique
// id field). The seed variable's store comes from its tuple view, which
// tracks degraded fallbacks. Non-seeded steps have no seeds.
func (x *Executor) seedsFor(step evalStep, tup workRow, eng *plan.Engine) ([]graph.UID, error) {
	if !step.seeded {
		return nil, nil
	}
	seedPath, ok := tup.bind[step.seedVar]
	if !ok {
		return nil, fmt.Errorf("exec: internal: seed variable %q not bound", step.seedVar)
	}
	var seedNode graph.UID
	if step.seedVarFn == query.FnTarget {
		seedNode = seedPath.Target()
	} else {
		seedNode = seedPath.Source()
	}
	from := x.engineFor(step.seedVar).Accessor().Store()
	if v, ok := tup.views[step.seedVar]; ok {
		from = v.Store()
	}
	return translateSeed(from, eng.Accessor().Store(), seedNode)
}

// breakerFor returns (creating on first use) the circuit breaker of one
// routed variable's engine.
func (x *Executor) breakerFor(name string) *breaker {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.breakers == nil {
		x.breakers = map[string]*breaker{}
	}
	b := x.breakers[name]
	if b == nil {
		b = &breaker{threshold: x.BreakerThreshold, cooldown: x.BreakerCooldown}
		x.breakers[name] = b
	}
	return b
}

// applyViewFilter restricts a variable's pathways to its named view (when
// the variable also carries an explicit MATCHES): the pathway must
// satisfy both RPEs simultaneously, so its validity intersects with the
// view's and must still overlap the selection window. The validity is
// computed in the view's store — the store the pathways were found in.
func applyViewFilter(a *query.Analyzed, varName string, view graph.View, paths []plan.Pathway) []plan.Pathway {
	vc, ok := a.ViewChecked[varName]
	if !ok {
		return paths
	}
	st := view.Store()
	out := paths[:0]
	for _, p := range paths {
		vv := plan.ComputeValidity(st, vc, p.Elems)
		joint := p.Validity.Intersect(vv)
		if joint.IsEmpty() {
			continue
		}
		overlaps := false
		for _, iv := range joint {
			if iv.Overlaps(view.Window()) {
				overlaps = true
				break
			}
		}
		if !overlaps {
			continue
		}
		p.Validity = joint
		out = append(out, p)
	}
	return out
}

// translateSeed maps a node UID from the seed variable's store into the
// target store. Same store: identity. Different stores: via the
// schema-unique id field.
func translateSeed(from, to *graph.Store, seed graph.UID) ([]graph.UID, error) {
	if from == to {
		return []graph.UID{seed}, nil
	}
	obj := from.Object(seed)
	if obj == nil {
		return nil, nil
	}
	cur := obj.Current()
	if cur == nil {
		if len(obj.Versions) == 0 {
			return nil, nil
		}
		cur = &obj.Versions[len(obj.Versions)-1]
	}
	id, ok := cur.Fields["id"]
	if !ok {
		return nil, nil
	}
	uid, found := to.LookupUnique(schema.NodeRoot, "id", id)
	if !found {
		return nil, nil
	}
	return []graph.UID{uid}, nil
}

// joinsSatisfied applies all join predicates whose variables are bound in
// the tuple (just-bound variable included).
func (x *Executor) joinsSatisfied(a *query.Analyzed, joins []*query.JoinPred, tup workRow) bool {
	isBound := func(v string) bool {
		_, ok := tup.bind[v]
		return ok
	}
	for _, jp := range joins {
		if !isBound(jp.Left.Var) || !isBound(jp.Right.Var) {
			continue
		}
		lv, lerr := x.joinValue(a, jp.Left, tup)
		rv, rerr := x.joinValue(a, jp.Right, tup)
		if lerr != nil || rerr != nil {
			return false
		}
		eq := valueEqual(lv, rv)
		if eq == jp.Negated {
			return false
		}
	}
	return true
}

// joinValue computes a join term's comparable value: the endpoint node's
// unique id (store-independent identity), a field value, or the length.
func (x *Executor) joinValue(a *query.Analyzed, t query.Term, tup workRow) (any, error) {
	p, ok := tup.bind[t.Var]
	if !ok {
		return nil, fmt.Errorf("exec: unbound variable %q", t.Var)
	}
	if t.Fn == query.FnLen {
		return int64(p.Hops()), nil
	}
	node := p.Source()
	if t.Fn == query.FnTarget {
		node = p.Target()
	}
	// The tuple view tracks which store the binding actually lives in
	// (degraded fallbacks rebind it to the default engine's store).
	view, ok := tup.views[t.Var]
	if !ok {
		view = graph.CurrentView(x.engineFor(t.Var).Accessor().Store())
	}
	st := view.Store()
	obj := st.Object(node)
	if obj == nil {
		return nil, fmt.Errorf("exec: dangling node %d", node)
	}
	fields := view.FieldsAt(obj)
	if fields == nil && len(obj.Versions) > 0 {
		fields = obj.Versions[len(obj.Versions)-1].Fields
	}
	field := "id"
	if t.Field != "" {
		field = t.Field
	}
	return fields[field], nil
}

// termValue computes a projection value for a finished row.
func (x *Executor) termValue(a *query.Analyzed, t query.Term, row workRow) (any, error) {
	if t.Fn == query.FnNone {
		return row.bind[t.Var], nil
	}
	return x.joinValue(a, t, row)
}

// applyNotExists filters tuples through one NOT EXISTS subquery.
func (x *Executor) applyNotExists(sub *query.Analyzed, tuples []workRow, rc *runCtx) ([]workRow, error) {
	var kept []workRow
	for _, tup := range tuples {
		subRows, _, err := x.rows(sub, &tup, rc)
		if err != nil {
			return nil, err
		}
		if len(subRows) == 0 {
			kept = append(kept, tup)
		}
	}
	return kept, nil
}

// varTimeSpec returns a variable's own time binding, if any.
func varTimeSpec(q *query.Query, name string) *query.TimeSpec {
	for _, rv := range q.Vars {
		if rv.Name == name {
			return rv.At
		}
	}
	return nil
}

// viewFor resolves the temporal view of a variable on its routed store.
func (x *Executor) viewFor(varName string, q *query.Query, varAt *query.TimeSpec) graph.View {
	return viewOn(x.engineFor(varName).Accessor().Store(), q, varAt)
}

// viewOn resolves a variable's temporal view over an explicit store.
func viewOn(st *graph.Store, q *query.Query, varAt *query.TimeSpec) graph.View {
	ts := varAt
	if ts == nil {
		ts = q.At
	}
	if ts == nil {
		if q.Agg != query.AggNone {
			// Aggregates scan the full history by default.
			return graph.RangeView(st, time.Unix(0, 0).UTC(), temporal.Forever)
		}
		return graph.CurrentView(st)
	}
	if ts.IsRange {
		return graph.RangeView(st, ts.Start, ts.End)
	}
	return graph.PointView(st, ts.Start)
}

// windowFor is the query-level selection window used for coexistence.
func (x *Executor) windowFor(q *query.Query) temporal.Interval {
	if q.At == nil {
		if q.Agg != query.AggNone {
			return temporal.Between(time.Unix(0, 0).UTC(), temporal.Forever)
		}
		// Implicit current snapshot: the coexistence check happens against
		// "now" — with routed variables on stores with independent clocks,
		// the latest of the participating nows.
		now := x.Default.Accessor().Store().Now()
		for _, eng := range x.Routes {
			if n := eng.Accessor().Store().Now(); n.After(now) {
				now = n
			}
		}
		return temporal.Between(now, now.Add(time.Nanosecond))
	}
	if q.At.IsRange {
		return temporal.Between(q.At.Start, q.At.End)
	}
	return temporal.Between(q.At.Start, q.At.Start.Add(time.Nanosecond))
}

// coexistence intersects all bound pathway validities of a row.
func coexistence(q *query.Query, tup workRow) temporal.Set {
	var co temporal.Set
	first := true
	for _, rv := range q.Vars {
		p, ok := tup.bind[rv.Name]
		if !ok {
			continue
		}
		if first {
			co = p.Validity
			first = false
			continue
		}
		co = co.Intersect(p.Validity)
	}
	return co
}

// aggregate computes First/Last/When-Exists over the row times.
func aggregate(q *query.Query, rows []workRow, perVar bool) *AggValue {
	var all temporal.Set
	for _, tup := range rows {
		if perVar {
			for _, s := range tup.varTimes {
				all = append(all, s...)
			}
			continue
		}
		all = append(all, tup.coexist...)
	}
	all = all.Normalize()
	if q.At != nil && q.At.IsRange {
		all = all.ClipTo(temporal.Between(q.At.Start, q.At.End))
	}
	out := &AggValue{Exists: !all.IsEmpty()}
	if !out.Exists {
		return out
	}
	switch q.Agg {
	case query.AggFirstTime:
		out.Time, _ = all.First()
	case query.AggLastTime:
		last, _ := all.Last()
		if last.Equal(temporal.Forever) {
			out.Current = true
		}
		out.Time = last
	case query.AggWhenExists:
		out.Set = all
	}
	return out
}

func hasPerVarTimes(q *query.Query) bool {
	for _, rv := range q.Vars {
		if rv.At != nil {
			return true
		}
	}
	return false
}

func splitPreds(a *query.Analyzed) ([]*query.JoinPred, []*query.Analyzed) {
	var joins []*query.JoinPred
	subs := a.Subqueries
	for _, p := range a.Query.Preds {
		if jp, ok := p.(*query.JoinPred); ok {
			joins = append(joins, jp)
		}
	}
	return joins, subs
}

func cloneBind(m map[string]plan.Pathway) map[string]plan.Pathway {
	out := make(map[string]plan.Pathway, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

func cloneTimes(m map[string]temporal.Set) map[string]temporal.Set {
	out := make(map[string]temporal.Set, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// valueEqual compares join values with numeric canonicalization.
func valueEqual(a, b any) bool {
	if af, ok := asFloat(a); ok {
		bf, ok := asFloat(b)
		return ok && af == bf
	}
	return a == b
}

func asFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case int:
		return float64(n), true
	case int32:
		return float64(n), true
	case int64:
		return float64(n), true
	case float32:
		return float64(n), true
	case float64:
		return n, true
	}
	return 0, false
}
