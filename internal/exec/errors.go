package exec

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/plan"
)

// This file is the executor's half of the query-governance layer: the
// error taxonomy re-exported at the API surface callers program against,
// the transient-fault classification the retry loop uses, the retry
// policy itself, and the per-route circuit breaker.

// Limits re-exports plan.Limits: the per-query resource guardrails
// (MaxPaths, MaxEdgesScanned, MaxDuration) enforced inside the operator
// DAG. The zero value is unlimited.
type Limits = plan.Limits

// The governance error taxonomy. The sentinels live in internal/plan
// (the layer that detects them); they are re-exported here because the
// executor is the API boundary callers match against with errors.Is.
var (
	ErrCanceled         = plan.ErrCanceled
	ErrDeadlineExceeded = plan.ErrDeadlineExceeded
	ErrLimitExceeded    = plan.ErrLimitExceeded
	ErrPanic            = plan.ErrPanic

	// ErrBreakerOpen short-circuits a routed variable whose engine's
	// circuit breaker is open: the engine is not probed at all.
	ErrBreakerOpen = errors.New("exec: routed engine circuit breaker open")
)

// Outcome classifies how a query terminated for the slow-query log and
// abort metrics: "ok", "canceled", "deadline", "limit", "panic", or
// "error" for non-governance failures.
func Outcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrDeadlineExceeded):
		return "deadline"
	case errors.Is(err, ErrCanceled):
		return "canceled"
	case errors.Is(err, ErrLimitExceeded):
		return "limit"
	case errors.Is(err, ErrPanic):
		return "panic"
	default:
		return "error"
	}
}

// IsGovernance reports whether err is a governance abort (cancellation,
// deadline, or resource limit) as opposed to an engine failure. The
// routed retry loop never retries governance aborts — the budget is the
// query's, not the engine's — and never degrades them away.
func IsGovernance(err error) bool {
	return errors.Is(err, ErrCanceled) ||
		errors.Is(err, ErrDeadlineExceeded) ||
		errors.Is(err, ErrLimitExceeded)
}

// Transient reports whether err self-classifies as transient by
// implementing `Transient() bool` somewhere in its chain (the convention
// internal/chaos faults follow). Only transient errors are retried.
func Transient(err error) bool {
	var tr interface{ Transient() bool }
	return errors.As(err, &tr) && tr.Transient()
}

// RetryPolicy bounds the retry loop of a routed variable evaluation:
// capped exponential backoff with jitter. The zero value disables
// retries (a single attempt).
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, first try included;
	// values below 1 mean 1.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// retry. Zero defaults to 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero defaults to 64×BaseDelay.
	MaxDelay time.Duration
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the randomized sleep before retry number n (n ≥ 1):
// half the capped exponential step plus up to the same again in jitter,
// so concurrent retriers decorrelate.
func (p RetryPolicy) backoff(n int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 64 * base
	}
	d := base << uint(n-1)
	if d <= 0 || d > max { // <= 0 guards shift overflow
		d = max
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// sleepBackoff waits out one backoff step, aborting early (with the
// governance mapping of the context error) when the query is canceled.
func sleepBackoff(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return plan.ContextError(ctx.Err())
	case <-t.C:
		return nil
	}
}

// DegradeMode selects what a routed variable does when its engine stays
// unavailable after retries (or its breaker is open).
type DegradeMode int

const (
	// DegradeNone fails the query with the routed engine's error.
	DegradeNone DegradeMode = iota
	// DegradeFallback re-evaluates the variable on the default engine and
	// flags the result as degraded.
	DegradeFallback
	// DegradePartial binds the variable to an empty pathway set and flags
	// the result as degraded: rows that needed the variable disappear,
	// rows that didn't survive.
	DegradePartial
)

// breaker is a consecutive-failure circuit breaker for one routed
// engine. threshold consecutive failures open it; while open, routed
// evaluations short-circuit with ErrBreakerOpen. A positive cooldown
// admits one probe per cooldown interval (half-open); a zero cooldown
// keeps the breaker latched open until a probe elsewhere succeeds —
// with no probes admitted, that means permanently, which suits
// one-shot query batches.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	fails    int
	open     bool
	openedAt time.Time
}

// allow reports whether a routed evaluation may probe the engine now.
func (b *breaker) allow(now time.Time) bool {
	if b == nil || b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.cooldown > 0 && now.Sub(b.openedAt) >= b.cooldown {
		// Half-open: admit one probe and restart the cooldown clock so
		// a failing engine is probed once per cooldown, not per query.
		b.openedAt = now
		return true
	}
	return false
}

// onSuccess closes the breaker and clears the failure streak.
func (b *breaker) onSuccess() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.fails = 0
	b.open = false
	b.mu.Unlock()
}

// onFailure records one failure, reporting whether this transition
// opened the breaker.
func (b *breaker) onFailure(now time.Time) bool {
	if b == nil || b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.fails >= b.threshold && !b.open {
		b.open = true
		b.openedAt = now
		return true
	}
	return false
}
