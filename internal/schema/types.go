// Package schema implements Nepal's strongly-typed, model-driven schema
// system: single-rooted class hierarchies for nodes and edges, TOSCA-style
// composite data types with list/set/map containers, allowed-edge
// (capability) constraints, and record validation.
//
// Unlike schema-free property-graph stores, every node and edge in a Nepal
// database belongs to exactly one class in a hierarchy rooted at Node or
// Edge. A subclass inherits all fields of its parent and may add more.
// Query atoms name a class and match all records of that class or any
// transitive subclass, while field references in atom predicates are
// type-checked against the named class — the paper's "strongly typed
// concepts".
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Type is a field type: a primitive, a container over an element type, or
// a reference to a named composite data type.
type Type interface {
	// String renders the TOSCA-style name of the type ("string",
	// "list[routingTableEntry]", ...).
	String() string
	// Validate checks that v is a legal value of the type.
	Validate(v any) error
}

// Primitive field types.
type primitive string

const (
	TypeString    primitive = "string"
	TypeInt       primitive = "int"
	TypeFloat     primitive = "float"
	TypeBool      primitive = "bool"
	TypeTimestamp primitive = "timestamp"
	TypeIPAddress primitive = "ipaddress"
)

func (p primitive) String() string { return string(p) }

// Validate checks a primitive value. Numeric values accept both int64 and
// float64 representations where lossless (JSON decodes all numbers to
// float64).
func (p primitive) Validate(v any) error {
	switch p {
	case TypeString:
		if _, ok := v.(string); !ok {
			return typeErr(p, v)
		}
	case TypeInt:
		switch n := v.(type) {
		case int, int32, int64:
		case float64:
			if n != float64(int64(n)) {
				return typeErr(p, v)
			}
		default:
			return typeErr(p, v)
		}
	case TypeFloat:
		switch v.(type) {
		case float32, float64, int, int64:
		default:
			return typeErr(p, v)
		}
	case TypeBool:
		if _, ok := v.(bool); !ok {
			return typeErr(p, v)
		}
	case TypeTimestamp:
		s, ok := v.(string)
		if !ok {
			return typeErr(p, v)
		}
		if !looksLikeTimestamp(s) {
			return fmt.Errorf("schema: %q is not a timestamp", s)
		}
	case TypeIPAddress:
		s, ok := v.(string)
		if !ok {
			return typeErr(p, v)
		}
		if !looksLikeIP(s) {
			return fmt.Errorf("schema: %q is not an IP address", s)
		}
	default:
		return fmt.Errorf("schema: unknown primitive type %q", p)
	}
	return nil
}

func typeErr(t Type, v any) error {
	return fmt.Errorf("schema: value %v (%T) is not a %s", v, v, t)
}

func looksLikeTimestamp(s string) bool {
	// Accepts "2006-01-02 15:04:05" and RFC3339-like forms; the store keeps
	// timestamps as strings, parsing happens in the temporal layer.
	return len(s) >= 10 && s[4] == '-' && s[7] == '-'
}

func looksLikeIP(s string) bool {
	dots := strings.Count(s, ".")
	colons := strings.Count(s, ":")
	return (dots == 3 && colons == 0) || colons >= 2
}

// ContainerKind distinguishes the three TOSCA container types.
type ContainerKind int

const (
	ListContainer ContainerKind = iota
	SetContainer
	MapContainer
)

func (k ContainerKind) String() string {
	switch k {
	case ListContainer:
		return "list"
	case SetContainer:
		return "set"
	case MapContainer:
		return "map"
	}
	return "container"
}

// Container is a list, set, or map of elements of a single type. Map keys
// are always strings, matching TOSCA.
type Container struct {
	Kind ContainerKind
	Elem Type
}

func (c Container) String() string {
	return fmt.Sprintf("%s[%s]", c.Kind, c.Elem)
}

// Validate checks container shape and every element.
func (c Container) Validate(v any) error {
	switch c.Kind {
	case ListContainer, SetContainer:
		items, ok := v.([]any)
		if !ok {
			return typeErr(c, v)
		}
		for i, item := range items {
			if err := c.Elem.Validate(item); err != nil {
				return fmt.Errorf("%s element %d: %w", c.Kind, i, err)
			}
		}
		if c.Kind == SetContainer {
			seen := make(map[string]bool, len(items))
			for _, item := range items {
				key := fmt.Sprintf("%v", item)
				if seen[key] {
					return fmt.Errorf("schema: duplicate element %v in set", item)
				}
				seen[key] = true
			}
		}
	case MapContainer:
		m, ok := v.(map[string]any)
		if !ok {
			return typeErr(c, v)
		}
		for k, item := range m {
			if err := c.Elem.Validate(item); err != nil {
				return fmt.Errorf("map key %q: %w", k, err)
			}
		}
	}
	return nil
}

// DataType is a named composite type from the schema's data_types section.
// Data types may nest other data types; the composition DAG must be
// acyclic, which Schema.Finalize verifies.
type DataType struct {
	Name   string
	Fields []Field
}

func (d *DataType) String() string { return d.Name }

// Validate checks that v is a struct-shaped map honoring the field types.
func (d *DataType) Validate(v any) error {
	m, ok := v.(map[string]any)
	if !ok {
		return typeErr(d, v)
	}
	for _, f := range d.Fields {
		fv, present := m[f.Name]
		if !present {
			if f.Required {
				return fmt.Errorf("schema: %s missing required field %q", d.Name, f.Name)
			}
			continue
		}
		if err := f.Type.Validate(fv); err != nil {
			return fmt.Errorf("%s.%s: %w", d.Name, f.Name, err)
		}
	}
	for k := range m {
		if d.field(k) == nil {
			return fmt.Errorf("schema: %s has no field %q", d.Name, k)
		}
	}
	return nil
}

func (d *DataType) field(name string) *Field {
	for i := range d.Fields {
		if d.Fields[i].Name == name {
			return &d.Fields[i]
		}
	}
	return nil
}

// Field describes one named, typed field of a class or data type.
type Field struct {
	Name     string
	Type     Type
	Required bool
	// Unique marks fields whose values must be unique across all records of
	// the declaring class and its subclasses (e.g. id). The store enforces
	// it; the planner treats equality predicates on unique fields as
	// cardinality-1 anchors.
	Unique bool
}

// ParseType resolves a TOSCA-style type name ("string", "list[int]",
// "map[routingTableEntry]") against the named data types in reg.
func ParseType(name string, reg map[string]*DataType) (Type, error) {
	name = strings.TrimSpace(name)
	for _, kind := range []struct {
		prefix string
		k      ContainerKind
	}{{"list[", ListContainer}, {"set[", SetContainer}, {"map[", MapContainer}} {
		if strings.HasPrefix(name, kind.prefix) && strings.HasSuffix(name, "]") {
			inner := name[len(kind.prefix) : len(name)-1]
			elem, err := ParseType(inner, reg)
			if err != nil {
				return nil, err
			}
			return Container{Kind: kind.k, Elem: elem}, nil
		}
	}
	switch primitive(name) {
	case TypeString, TypeInt, TypeFloat, TypeBool, TypeTimestamp, TypeIPAddress:
		return primitive(name), nil
	}
	if dt, ok := reg[name]; ok {
		return dt, nil
	}
	return nil, fmt.Errorf("schema: unknown type %q", name)
}

// sortedKeys returns map keys in deterministic order; schema iteration must
// be stable for code generation and tests.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
