package schema

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Document is the JSON carrier for a Nepal schema. It mirrors the TOSCA
// sections the paper derives the Nepal schema language from: data_types,
// node_types, and edge_types (TOSCA capability types), plus the
// allowed-edge rules that TOSCA expresses as node capabilities.
//
// The paper's sources describe topologies in TOSCA YAML; stdlib-only Go has
// no YAML decoder, so the same structure is carried as JSON — a pure syntax
// substitution documented in DESIGN.md.
type Document struct {
	DataTypes map[string]DataTypeDoc `json:"data_types,omitempty"`
	NodeTypes map[string]ClassDoc    `json:"node_types,omitempty"`
	EdgeTypes map[string]ClassDoc    `json:"edge_types,omitempty"`
	Edges     []EdgeRule             `json:"edges_allowed,omitempty"`
}

// DataTypeDoc describes one composite data type.
type DataTypeDoc struct {
	Fields map[string]FieldDoc `json:"fields"`
}

// ClassDoc describes one node or edge class.
type ClassDoc struct {
	Parent          string              `json:"parent,omitempty"`
	Abstract        bool                `json:"abstract,omitempty"`
	CardinalityHint int                 `json:"cardinality_hint,omitempty"`
	Fields          map[string]FieldDoc `json:"fields,omitempty"`
}

// FieldDoc describes one field. Type uses TOSCA-style names, e.g.
// "string", "int", "list[routingTableEntry]".
type FieldDoc struct {
	Type     string `json:"type"`
	Required bool   `json:"required,omitempty"`
	Unique   bool   `json:"unique,omitempty"`
}

// Load reads a schema Document from r and assembles a finalized Schema.
func Load(r io.Reader) (*Schema, error) {
	var doc Document
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("schema: decoding document: %w", err)
	}
	return FromDocument(&doc)
}

// FromDocument assembles and finalizes a Schema from a parsed Document.
func FromDocument(doc *Document) (*Schema, error) {
	s := New()

	// Data types may reference each other, so register shells first, then
	// resolve field types.
	names := sortedKeys(doc.DataTypes)
	for _, name := range names {
		if _, err := s.DefineDataType(name); err != nil {
			return nil, err
		}
	}
	for _, name := range names {
		dt := s.dataTypes[name]
		fields, err := fieldsFromDoc(name, doc.DataTypes[name].Fields, s.dataTypes)
		if err != nil {
			return nil, err
		}
		dt.Fields = fields
	}

	if err := s.defineClassesFromDoc(NodeKind, doc.NodeTypes); err != nil {
		return nil, err
	}
	if err := s.defineClassesFromDoc(EdgeKind, doc.EdgeTypes); err != nil {
		return nil, err
	}
	for _, rule := range doc.Edges {
		s.AllowEdge(rule.Edge, rule.From, rule.To)
	}
	if err := s.Finalize(); err != nil {
		return nil, err
	}
	return s, nil
}

// defineClassesFromDoc registers classes in an order that satisfies parent
// dependencies regardless of map iteration order.
func (s *Schema) defineClassesFromDoc(kind Kind, docs map[string]ClassDoc) error {
	pending := make(map[string]ClassDoc, len(docs))
	for k, v := range docs {
		pending[k] = v
	}
	for len(pending) > 0 {
		progressed := false
		for _, name := range sortedKeys(pending) {
			cd := pending[name]
			parent := cd.Parent
			if parent == "" {
				if kind == NodeKind {
					parent = NodeRoot
				} else {
					parent = EdgeRoot
				}
			}
			if _, ok := s.classes[parent]; !ok {
				if _, later := pending[parent]; later {
					continue // parent defined in a later pass
				}
				return fmt.Errorf("schema: class %q has unknown parent %q", name, cd.Parent)
			}
			fields, err := fieldsFromDoc(name, cd.Fields, s.dataTypes)
			if err != nil {
				return err
			}
			c, err := s.define(kind, name, parent, fields)
			if err != nil {
				return err
			}
			c.Abstract = cd.Abstract
			c.CardinalityHint = cd.CardinalityHint
			delete(pending, name)
			progressed = true
		}
		if !progressed {
			return fmt.Errorf("schema: class parent cycle among %v", sortedKeys(pending))
		}
	}
	return nil
}

func fieldsFromDoc(owner string, docs map[string]FieldDoc, reg map[string]*DataType) ([]Field, error) {
	fields := make([]Field, 0, len(docs))
	for _, fname := range sortedKeys(docs) {
		fd := docs[fname]
		t, err := ParseType(fd.Type, reg)
		if err != nil {
			return nil, fmt.Errorf("schema: %s.%s: %w", owner, fname, err)
		}
		fields = append(fields, Field{Name: fname, Type: t, Required: fd.Required, Unique: fd.Unique})
	}
	return fields, nil
}

// ToDocument renders the schema back into its JSON carrier, normalizing
// field order. Load(ToDocument(s)) reproduces an equivalent schema.
func (s *Schema) ToDocument() *Document {
	doc := &Document{
		DataTypes: make(map[string]DataTypeDoc),
		NodeTypes: make(map[string]ClassDoc),
		EdgeTypes: make(map[string]ClassDoc),
	}
	for name, dt := range s.dataTypes {
		doc.DataTypes[name] = DataTypeDoc{Fields: fieldsToDoc(dt.Fields)}
	}
	for name, c := range s.classes {
		if c.IsRoot() {
			continue
		}
		cd := ClassDoc{
			Abstract:        c.Abstract,
			CardinalityHint: c.CardinalityHint,
			Fields:          fieldsToDoc(c.OwnFields),
		}
		if !c.Parent.IsRoot() {
			cd.Parent = c.Parent.Name
		}
		if c.IsNode() {
			doc.NodeTypes[name] = cd
		} else {
			doc.EdgeTypes[name] = cd
		}
	}
	doc.Edges = append(doc.Edges, s.rules...)
	sort.Slice(doc.Edges, func(i, j int) bool {
		a, b := doc.Edges[i], doc.Edges[j]
		if a.Edge != b.Edge {
			return a.Edge < b.Edge
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	return doc
}

func fieldsToDoc(fields []Field) map[string]FieldDoc {
	if len(fields) == 0 {
		return nil
	}
	out := make(map[string]FieldDoc, len(fields))
	for _, f := range fields {
		out[f.Name] = FieldDoc{Type: f.Type.String(), Required: f.Required, Unique: f.Unique}
	}
	return out
}

// Save writes the schema's JSON document to w, indented.
func (s *Schema) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.ToDocument())
}
