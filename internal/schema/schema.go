package schema

import "fmt"

// EdgeRule states that an edge of class Edge (or a subclass) may connect a
// source node of class From (or a subclass) to a target node of class To
// (or a subclass). This is the Nepal rendering of TOSCA capability types:
// the graph schema in Fig. 3 of the paper is a set of such rules.
type EdgeRule struct {
	Edge string
	From string
	To   string
}

// Schema is a complete Nepal schema: node and edge class hierarchies,
// named data types, and allowed-edge rules. Build one with the Define*
// methods (or load JSON via Load) and call Finalize before use.
type Schema struct {
	classes   map[string]*Class
	dataTypes map[string]*DataType
	rules     []EdgeRule
	finalized bool
}

// New returns a schema containing only the Node and Edge roots. Both roots
// carry the base fields every Nepal database entry has: a unique id and a
// display name.
func New() *Schema {
	s := &Schema{
		classes:   make(map[string]*Class),
		dataTypes: make(map[string]*DataType),
	}
	base := []Field{
		{Name: "id", Type: TypeInt, Required: true, Unique: true},
		{Name: "name", Type: TypeString},
	}
	s.classes[NodeRoot] = &Class{Name: NodeRoot, Kind: NodeKind, OwnFields: base}
	s.classes[EdgeRoot] = &Class{Name: EdgeRoot, Kind: EdgeKind, OwnFields: base}
	return s
}

// Class looks up a class by short name.
func (s *Schema) Class(name string) (*Class, bool) {
	c, ok := s.classes[name]
	return c, ok
}

// MustClass looks up a class and panics when absent; for use with
// programmatically built schemas whose classes are known to exist.
func (s *Schema) MustClass(name string) *Class {
	c, ok := s.classes[name]
	if !ok {
		panic(fmt.Sprintf("schema: unknown class %q", name))
	}
	return c
}

// Classes returns all classes sorted by name.
func (s *Schema) Classes() []*Class {
	out := make([]*Class, 0, len(s.classes))
	for _, name := range sortedKeys(s.classes) {
		out = append(out, s.classes[name])
	}
	return out
}

// NodeClasses returns all node classes (including the Node root), sorted.
func (s *Schema) NodeClasses() []*Class { return s.kindClasses(NodeKind) }

// EdgeClasses returns all edge classes (including the Edge root), sorted.
func (s *Schema) EdgeClasses() []*Class { return s.kindClasses(EdgeKind) }

func (s *Schema) kindClasses(k Kind) []*Class {
	var out []*Class
	for _, c := range s.Classes() {
		if c.Kind == k {
			out = append(out, c)
		}
	}
	return out
}

// DataType looks up a named composite data type.
func (s *Schema) DataType(name string) (*DataType, bool) {
	d, ok := s.dataTypes[name]
	return d, ok
}

// DataTypes exposes the data type registry (for ParseType during loading).
func (s *Schema) DataTypes() map[string]*DataType { return s.dataTypes }

// Rules returns the allowed-edge rules in declaration order.
func (s *Schema) Rules() []EdgeRule { return s.rules }

// DefineDataType registers a composite data type. Cycle checking is
// deferred to Finalize because data types may reference each other while
// the schema is being assembled.
func (s *Schema) DefineDataType(name string, fields ...Field) (*DataType, error) {
	if s.finalized {
		return nil, fmt.Errorf("schema: DefineDataType %q after Finalize", name)
	}
	if _, dup := s.dataTypes[name]; dup {
		return nil, fmt.Errorf("schema: duplicate data type %q", name)
	}
	if err := checkFieldNames(name, fields); err != nil {
		return nil, err
	}
	dt := &DataType{Name: name, Fields: fields}
	s.dataTypes[name] = dt
	return dt, nil
}

// DefineNode adds a node class under the named parent ("" or "Node" for a
// direct child of the root).
func (s *Schema) DefineNode(name, parent string, fields ...Field) (*Class, error) {
	return s.define(NodeKind, name, parent, fields)
}

// DefineEdge adds an edge class under the named parent ("" or "Edge" for a
// direct child of the root).
func (s *Schema) DefineEdge(name, parent string, fields ...Field) (*Class, error) {
	return s.define(EdgeKind, name, parent, fields)
}

func (s *Schema) define(kind Kind, name, parent string, fields []Field) (*Class, error) {
	if s.finalized {
		return nil, fmt.Errorf("schema: define %q after Finalize", name)
	}
	if name == "" {
		return nil, fmt.Errorf("schema: empty class name")
	}
	if _, dup := s.classes[name]; dup {
		return nil, fmt.Errorf("schema: duplicate class %q", name)
	}
	if parent == "" {
		if kind == NodeKind {
			parent = NodeRoot
		} else {
			parent = EdgeRoot
		}
	}
	p, ok := s.classes[parent]
	if !ok {
		return nil, fmt.Errorf("schema: class %q has unknown parent %q", name, parent)
	}
	if p.Kind != kind {
		return nil, fmt.Errorf("schema: %s class %q cannot extend %s class %q", kind, name, p.Kind, parent)
	}
	if err := checkFieldNames(name, fields); err != nil {
		return nil, err
	}
	// A subclass adds fields; it must not redeclare an inherited one.
	for _, f := range fields {
		if _, shadow := p.Field(f.Name); shadow {
			return nil, fmt.Errorf("schema: class %q redeclares inherited field %q", name, f.Name)
		}
	}
	c := &Class{Name: name, Kind: kind, Parent: p, OwnFields: fields, depth: p.depth + 1}
	p.children = append(p.children, c)
	s.classes[name] = c
	return c, nil
}

// SetAbstract marks a class abstract.
func (s *Schema) SetAbstract(name string) error {
	c, ok := s.classes[name]
	if !ok {
		return fmt.Errorf("schema: unknown class %q", name)
	}
	c.Abstract = true
	return nil
}

// SetCardinalityHint installs the schema hint used by anchor costing when
// store statistics are unavailable.
func (s *Schema) SetCardinalityHint(name string, hint int) error {
	c, ok := s.classes[name]
	if !ok {
		return fmt.Errorf("schema: unknown class %q", name)
	}
	c.CardinalityHint = hint
	return nil
}

// AllowEdge registers an allowed-edge rule. All three classes must exist by
// Finalize time; registration order is free.
func (s *Schema) AllowEdge(edge, from, to string) {
	s.rules = append(s.rules, EdgeRule{Edge: edge, From: from, To: to})
}

// Finalize validates the assembled schema (rule classes exist and have the
// right kinds, data-type composition is acyclic) and freezes it. A schema
// must be finalized before records are validated against it.
func (s *Schema) Finalize() error {
	if s.finalized {
		return nil
	}
	for _, r := range s.rules {
		e, ok := s.classes[r.Edge]
		if !ok || !e.IsEdge() {
			return fmt.Errorf("schema: edge rule names unknown or non-edge class %q", r.Edge)
		}
		for _, n := range []string{r.From, r.To} {
			c, ok := s.classes[n]
			if !ok || !c.IsNode() {
				return fmt.Errorf("schema: edge rule for %q names unknown or non-node class %q", r.Edge, n)
			}
		}
	}
	if err := s.checkDataTypeDAG(); err != nil {
		return err
	}
	// Build per-class caches: field resolution, inheritance paths, and
	// subtree name lists (hot in the backends' class-partition probes).
	for _, c := range s.classes {
		c.allField = make(map[string]*Field)
		for cur := c; cur != nil; cur = cur.Parent {
			for i := range cur.OwnFields {
				f := &cur.OwnFields[i]
				if _, ok := c.allField[f.Name]; !ok {
					c.allField[f.Name] = f
				}
			}
		}
	}
	for _, c := range s.classes {
		c.path = c.Path()
	}
	for _, c := range s.classes {
		c.subtree = c.SubtreeNames()
	}
	s.finalized = true
	return nil
}

// checkDataTypeDAG verifies the data-type composition graph is acyclic.
func (s *Schema) checkDataTypeDAG() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(s.dataTypes))
	var visit func(d *DataType) error
	visit = func(d *DataType) error {
		switch color[d.Name] {
		case gray:
			return fmt.Errorf("schema: data type cycle through %q", d.Name)
		case black:
			return nil
		}
		color[d.Name] = gray
		for _, f := range d.Fields {
			for _, ref := range referencedDataTypes(f.Type) {
				if err := visit(ref); err != nil {
					return err
				}
			}
		}
		color[d.Name] = black
		return nil
	}
	for _, name := range sortedKeys(s.dataTypes) {
		if err := visit(s.dataTypes[name]); err != nil {
			return err
		}
	}
	return nil
}

func referencedDataTypes(t Type) []*DataType {
	switch tt := t.(type) {
	case *DataType:
		return []*DataType{tt}
	case Container:
		return referencedDataTypes(tt.Elem)
	}
	return nil
}

// EdgeAllowed reports whether an edge of class edge may connect a source
// node of class from to a target node of class to, honoring inheritance on
// all three positions. With no rules registered for any ancestor of edge,
// the edge class is unconstrained (legacy topologies are loaded this way).
func (s *Schema) EdgeAllowed(edge, from, to *Class) bool {
	constrained := false
	for _, r := range s.rules {
		re := s.classes[r.Edge]
		if !edge.IsSubclassOf(re) {
			continue
		}
		constrained = true
		rf, rt := s.classes[r.From], s.classes[r.To]
		if from.IsSubclassOf(rf) && to.IsSubclassOf(rt) {
			return true
		}
	}
	return !constrained
}

// ValidateRecord checks rec against the named class: the class must exist,
// must not be abstract, required fields must be present, all fields must be
// declared and well-typed. This is the strong typing that, per the paper,
// "prevented us from loading garbage data into the graphs".
func (s *Schema) ValidateRecord(class string, rec map[string]any) error {
	c, ok := s.classes[class]
	if !ok {
		return fmt.Errorf("schema: unknown class %q", class)
	}
	if c.Abstract {
		return fmt.Errorf("schema: class %q is abstract; records must use a concrete subclass", class)
	}
	for _, f := range c.Fields() {
		v, present := rec[f.Name]
		if !present {
			if f.Required {
				return fmt.Errorf("schema: %s record missing required field %q", class, f.Name)
			}
			continue
		}
		if err := f.Type.Validate(v); err != nil {
			return fmt.Errorf("%s.%s: %w", class, f.Name, err)
		}
	}
	for k := range rec {
		if _, declared := c.Field(k); !declared {
			return fmt.Errorf("schema: class %q has no field %q", class, k)
		}
	}
	return nil
}

// FieldOn resolves a field by name on the named class, for atom predicate
// type-checking: referencing a subclass-only field through a parent atom is
// a compile-time error in Nepal.
func (s *Schema) FieldOn(class, field string) (*Field, error) {
	c, ok := s.classes[class]
	if !ok {
		return nil, fmt.Errorf("schema: unknown class %q", class)
	}
	f, ok := c.Field(field)
	if !ok {
		return nil, fmt.Errorf("schema: class %q has no field %q (fields of subclasses are not visible through a %s atom)", class, field, class)
	}
	return f, nil
}

// ResolveFieldPath resolves a dotted field path on the named class —
// Nepal's query access to structured data. Each segment after the first
// steps into the current type: containers are traversed into their
// element type (list/set semantics: any element; map: the segment names a
// key), and composite data types resolve the segment as one of their
// fields. The leaf type is returned for predicate type-checking.
func (s *Schema) ResolveFieldPath(class, path string) (Type, error) {
	segs := splitPath(path)
	f, err := s.FieldOn(class, segs[0])
	if err != nil {
		return nil, err
	}
	cur := f.Type
	for _, seg := range segs[1:] {
		// Unwrap container nesting before resolving the segment; a map
		// consumes the segment as its key.
		keyConsumed := false
		for {
			c, ok := cur.(Container)
			if !ok {
				break
			}
			cur = c.Elem
			if c.Kind == MapContainer {
				keyConsumed = true
				break
			}
		}
		if keyConsumed {
			continue
		}
		t, ok := cur.(*DataType)
		if !ok {
			return nil, fmt.Errorf("schema: cannot descend into %s with %q (in path %s.%s)", cur, seg, class, path)
		}
		df := t.field(seg)
		if df == nil {
			return nil, fmt.Errorf("schema: data type %q has no field %q (in path %s.%s)", t.Name, seg, class, path)
		}
		cur = df.Type
	}
	return cur, nil
}

func splitPath(path string) []string {
	var segs []string
	start := 0
	for i := 0; i <= len(path); i++ {
		if i == len(path) || path[i] == '.' {
			segs = append(segs, path[start:i])
			start = i + 1
		}
	}
	return segs
}

// checkFieldNames rejects duplicate or empty field names.
func checkFieldNames(owner string, fields []Field) error {
	seen := make(map[string]bool, len(fields))
	for _, f := range fields {
		if f.Name == "" {
			return fmt.Errorf("schema: %q declares a field with empty name", owner)
		}
		if seen[f.Name] {
			return fmt.Errorf("schema: %q declares field %q twice", owner, f.Name)
		}
		if f.Type == nil {
			return fmt.Errorf("schema: %q field %q has nil type", owner, f.Name)
		}
		seen[f.Name] = true
	}
	return nil
}

// Stats carries live per-class record counts from a store to the planner.
// Missing entries fall back to schema CardinalityHints.
type Stats struct {
	// ClassCount maps class name to the number of records whose concrete
	// class is exactly that name (not including subclasses).
	ClassCount map[string]int
}

// SubtreeCount returns the number of records of c or any subclass.
func (st *Stats) SubtreeCount(c *Class) int {
	if st == nil || st.ClassCount == nil {
		return 0
	}
	total := 0
	for _, name := range c.SubtreeNames() {
		total += st.ClassCount[name]
	}
	return total
}

// SortedNames returns map keys in sorted order; sibling packages use it for
// deterministic iteration in code generation and reports.
func SortedNames[M ~map[string]V, V any](m M) []string { return sortedKeys(m) }
