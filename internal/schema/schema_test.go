package schema

import (
	"bytes"
	"strings"
	"testing"
)

// buildTestSchema assembles the underlay/overlay schema of the paper's
// Figure 3: VNF and VFC at the service layers, VM under Container, hosts
// and switches at the physical layer, with Vertical (composed_of,
// hosted_on) and ConnectsTo edge hierarchies.
func buildTestSchema(t *testing.T) *Schema {
	t.Helper()
	s := New()
	mustDef := func(c *Class, err error) *Class {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	mustDef(s.DefineNode("VNF", "", Field{Name: "vnfType", Type: TypeString}))
	mustDef(s.DefineNode("DNS", "VNF"))
	mustDef(s.DefineNode("Firewall", "VNF", Field{Name: "ruleCount", Type: TypeInt}))
	mustDef(s.DefineNode("VFC", ""))
	mustDef(s.DefineNode("Container", ""))
	mustDef(s.DefineNode("VM", "Container", Field{Name: "status", Type: TypeString}))
	mustDef(s.DefineNode("VMWare", "VM"))
	mustDef(s.DefineNode("OnMetal", "VM"))
	mustDef(s.DefineNode("Docker", "Container"))
	mustDef(s.DefineNode("Host", ""))
	mustDef(s.DefineNode("Switch", ""))
	mustDef(s.DefineEdge("Vertical", ""))
	if err := s.SetAbstract("Vertical"); err != nil {
		t.Fatal(err)
	}
	mustDef(s.DefineEdge("ComposedOf", "Vertical"))
	mustDef(s.DefineEdge("HostedOn", "Vertical"))
	mustDef(s.DefineEdge("OnVM", "HostedOn"))
	mustDef(s.DefineEdge("OnServer", "HostedOn"))
	mustDef(s.DefineEdge("ConnectsTo", ""))
	mustDef(s.DefineEdge("ServerSwitch", "ConnectsTo",
		Field{Name: "serverInterface", Type: TypeString},
		Field{Name: "switchInterface", Type: TypeString}))
	s.AllowEdge("ComposedOf", "VNF", "VFC")
	s.AllowEdge("OnVM", "VFC", "VM")
	s.AllowEdge("OnServer", "VM", "Host")
	s.AllowEdge("ServerSwitch", "Host", "Switch")
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestClassHierarchy(t *testing.T) {
	s := buildTestSchema(t)
	vm := s.MustClass("VM")
	vmware := s.MustClass("VMWare")
	docker := s.MustClass("Docker")
	container := s.MustClass("Container")
	node := s.MustClass(NodeRoot)

	if !vmware.IsSubclassOf(vm) || !vmware.IsSubclassOf(container) || !vmware.IsSubclassOf(node) {
		t.Error("VMWare must be a subclass of VM, Container, and Node")
	}
	if docker.IsSubclassOf(vm) {
		t.Error("Docker must not be a subclass of VM (the paper's example: VM atoms do not match Docker containers)")
	}
	if vm.IsSubclassOf(vmware) {
		t.Error("subclass relation must not be symmetric")
	}
	if got := vmware.Path(); got != "Node:Container:VM:VMWare" {
		t.Errorf("Path = %q", got)
	}
}

func TestLCA(t *testing.T) {
	s := buildTestSchema(t)
	vmware, onmetal := s.MustClass("VMWare"), s.MustClass("OnMetal")
	got, err := LCA(vmware, onmetal)
	if err != nil || got.Name != "VM" {
		t.Errorf("LCA(VMWare, OnMetal) = %v, %v", got, err)
	}
	got, err = LCA(vmware, s.MustClass("Docker"))
	if err != nil || got.Name != "Container" {
		t.Errorf("LCA(VMWare, Docker) = %v, %v", got, err)
	}
	got, err = LCAAll([]*Class{vmware, s.MustClass("Host"), s.MustClass("VNF")})
	if err != nil || got.Name != NodeRoot {
		t.Errorf("LCAAll = %v, %v", got, err)
	}
	if _, err = LCA(vmware, s.MustClass("HostedOn")); err == nil {
		t.Error("LCA across node/edge kinds must fail")
	}
}

func TestFieldInheritance(t *testing.T) {
	s := buildTestSchema(t)
	vmware := s.MustClass("VMWare")
	if _, ok := vmware.Field("status"); !ok {
		t.Error("VMWare must inherit status from VM")
	}
	if _, ok := vmware.Field("id"); !ok {
		t.Error("VMWare must inherit id from Node")
	}
	vm := s.MustClass("VM")
	if _, ok := vm.Field("ruleCount"); ok {
		t.Error("VM must not see subclass-only or sibling fields")
	}
	if _, err := s.FieldOn("VM", "status"); err != nil {
		t.Errorf("FieldOn(VM, status): %v", err)
	}
	if _, err := s.FieldOn("Container", "status"); err == nil {
		t.Error("Container atom must not reference VM-only field status")
	}
}

func TestRedeclareInheritedFieldRejected(t *testing.T) {
	s := buildTestSchema(t)
	_, err := s.DefineNode("BadVM", "VM", Field{Name: "status", Type: TypeInt})
	if err == nil || !strings.Contains(err.Error(), "redeclares") {
		// Note: schema is finalized, so we get the finalize error first.
		if err == nil {
			t.Fatal("redeclaring inherited field must fail")
		}
	}
	s2 := New()
	if _, err := s2.DefineNode("A", "", Field{Name: "f", Type: TypeString}); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.DefineNode("B", "A", Field{Name: "f", Type: TypeInt}); err == nil {
		t.Fatal("redeclaring inherited field must fail")
	}
}

func TestEdgeAllowed(t *testing.T) {
	s := buildTestSchema(t)
	onServer := s.MustClass("OnServer")
	vmware := s.MustClass("VMWare")
	host := s.MustClass("Host")
	vnf := s.MustClass("VNF")

	if !s.EdgeAllowed(onServer, vmware, host) {
		t.Error("OnServer VMWare->Host must be allowed via inheritance (VMWare is a VM)")
	}
	if s.EdgeAllowed(onServer, vnf, host) {
		t.Error("OnServer VNF->Host must be rejected: the schema permits no such edge (paper: cannot directly link a VNF to a physical server)")
	}
	// Unconstrained edge class: no rule mentions ConnectsTo's sibling-free
	// subtree root itself... ServerSwitch is constrained; ConnectsTo base has
	// a rule via subclass? EdgeAllowed checks rules on ancestors of edge.
	connects := s.MustClass("ConnectsTo")
	if s.EdgeAllowed(connects, vnf, host) {
		// ConnectsTo itself has no rule (only ServerSwitch does); a
		// ConnectsTo edge is unconstrained, so this must be allowed.
		t.Log("ConnectsTo unconstrained as expected")
	}
	if !s.EdgeAllowed(connects, host, s.MustClass("Switch")) {
		t.Error("unconstrained edge class must be allowed anywhere")
	}
}

func TestValidateRecord(t *testing.T) {
	s := buildTestSchema(t)
	ok := map[string]any{"id": 7, "name": "vm-7", "status": "Green"}
	if err := s.ValidateRecord("VM", ok); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	cases := []struct {
		name  string
		class string
		rec   map[string]any
	}{
		{"missing id", "VM", map[string]any{"name": "x"}},
		{"wrong type", "VM", map[string]any{"id": 7, "status": 12}},
		{"undeclared field", "VM", map[string]any{"id": 7, "flavor": "m1"}},
		{"garbage class", "Blob", map[string]any{"id": 7}},
		{"abstract class", "Vertical", map[string]any{"id": 7}},
	}
	for _, c := range cases {
		if err := s.ValidateRecord(c.class, c.rec); err == nil {
			t.Errorf("%s: garbage accepted", c.name)
		}
	}
}

func TestDataTypes(t *testing.T) {
	s := New()
	rte, err := s.DefineDataType("routingTableEntry",
		Field{Name: "address", Type: TypeIPAddress, Required: true},
		Field{Name: "mask", Type: TypeInt, Required: true},
		Field{Name: "interface", Type: TypeString})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.DefineNode("Router", "",
		Field{Name: "routingTable", Type: Container{Kind: ListContainer, Elem: rte}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	rec := map[string]any{
		"id": 1,
		"routingTable": []any{
			map[string]any{"address": "10.0.0.0", "mask": 24, "interface": "eth0"},
			map[string]any{"address": "10.1.0.0", "mask": 16},
		},
	}
	if err := s.ValidateRecord("Router", rec); err != nil {
		t.Errorf("router with routing table rejected: %v", err)
	}
	bad := map[string]any{
		"id":           2,
		"routingTable": []any{map[string]any{"address": "not-an-ip", "mask": 24}},
	}
	if err := s.ValidateRecord("Router", bad); err == nil {
		t.Error("bad IP in routing table accepted")
	}
	missing := map[string]any{
		"id":           3,
		"routingTable": []any{map[string]any{"mask": 24}},
	}
	if err := s.ValidateRecord("Router", missing); err == nil {
		t.Error("missing required address accepted")
	}
}

func TestDataTypeCycleRejected(t *testing.T) {
	s := New()
	a, _ := s.DefineDataType("A")
	b, err := s.DefineDataType("B", Field{Name: "a", Type: a})
	if err != nil {
		t.Fatal(err)
	}
	a.Fields = []Field{{Name: "b", Type: b}}
	if err := s.Finalize(); err == nil {
		t.Fatal("cyclic data types must be rejected")
	}
}

func TestContainerValidation(t *testing.T) {
	set := Container{Kind: SetContainer, Elem: TypeInt}
	if err := set.Validate([]any{1, 2, 3}); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	if err := set.Validate([]any{1, 2, 1}); err == nil {
		t.Error("duplicate set element accepted")
	}
	m := Container{Kind: MapContainer, Elem: TypeString}
	if err := m.Validate(map[string]any{"a": "x"}); err != nil {
		t.Errorf("valid map rejected: %v", err)
	}
	if err := m.Validate(map[string]any{"a": 1}); err == nil {
		t.Error("wrong map element type accepted")
	}
}

func TestParseType(t *testing.T) {
	s := New()
	if _, err := s.DefineDataType("pt", Field{Name: "x", Type: TypeInt}); err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"string":        "string",
		"list[int]":     "list[int]",
		"set[float]":    "set[float]",
		"map[pt]":       "map[pt]",
		"list[set[pt]]": "list[set[pt]]",
	}
	for in, want := range cases {
		got, err := ParseType(in, s.DataTypes())
		if err != nil {
			t.Errorf("ParseType(%q): %v", in, err)
			continue
		}
		if got.String() != want {
			t.Errorf("ParseType(%q) = %q, want %q", in, got, want)
		}
	}
	if _, err := ParseType("list[unknown]", s.DataTypes()); err == nil {
		t.Error("unknown element type accepted")
	}
}

func TestDefineErrors(t *testing.T) {
	s := New()
	if _, err := s.DefineNode("VM", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DefineNode("VM", ""); err == nil {
		t.Error("duplicate class accepted")
	}
	if _, err := s.DefineNode("X", "Nope"); err == nil {
		t.Error("unknown parent accepted")
	}
	if _, err := s.DefineEdge("E", "VM"); err == nil {
		t.Error("edge extending node class accepted")
	}
	if _, err := s.DefineNode("", ""); err == nil {
		t.Error("empty class name accepted")
	}
	if _, err := s.DefineNode("Dup", "", Field{Name: "f", Type: TypeInt}, Field{Name: "f", Type: TypeInt}); err == nil {
		t.Error("duplicate field accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := buildTestSchema(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(&buf)
	if err != nil {
		t.Fatalf("reloading saved schema: %v", err)
	}
	for _, c := range s.Classes() {
		c2, ok := s2.Class(c.Name)
		if !ok {
			t.Errorf("class %q lost in round trip", c.Name)
			continue
		}
		if c2.Path() != c.Path() {
			t.Errorf("class %q path %q != %q", c.Name, c2.Path(), c.Path())
		}
		if c2.Abstract != c.Abstract {
			t.Errorf("class %q abstract flag lost", c.Name)
		}
		if len(c2.Fields()) != len(c.Fields()) {
			t.Errorf("class %q fields %d != %d", c.Name, len(c2.Fields()), len(c.Fields()))
		}
	}
	if len(s2.Rules()) != len(s.Rules()) {
		t.Errorf("rules %d != %d", len(s2.Rules()), len(s.Rules()))
	}
}

func TestLoadRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"unknown parent":  `{"node_types": {"VM": {"parent": "Ghost"}}}`,
		"parent cycle":    `{"node_types": {"A": {"parent": "B"}, "B": {"parent": "A"}}}`,
		"unknown type":    `{"node_types": {"VM": {"fields": {"x": {"type": "blob"}}}}}`,
		"unknown section": `{"nodes": {}}`,
		"bad rule":        `{"edges_allowed": [{"edge": "Nope", "from": "VM", "to": "VM"}], "node_types": {"VM": {}}}`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestStatsSubtreeCount(t *testing.T) {
	s := buildTestSchema(t)
	st := &Stats{ClassCount: map[string]int{"VMWare": 10, "OnMetal": 5, "VM": 2, "Docker": 100}}
	if got := st.SubtreeCount(s.MustClass("VM")); got != 17 {
		t.Errorf("SubtreeCount(VM) = %d, want 17", got)
	}
	if got := st.SubtreeCount(s.MustClass("Container")); got != 117 {
		t.Errorf("SubtreeCount(Container) = %d, want 117", got)
	}
	var nilStats *Stats
	if got := nilStats.SubtreeCount(s.MustClass("VM")); got != 0 {
		t.Errorf("nil stats SubtreeCount = %d", got)
	}
}

func TestShortName(t *testing.T) {
	if ShortName("Vertical:HostedOn:OnVM") != "OnVM" {
		t.Error("ShortName failed on path")
	}
	if ShortName("VM") != "VM" {
		t.Error("ShortName failed on plain name")
	}
}
