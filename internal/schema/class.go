package schema

import (
	"fmt"
	"strings"
)

// Kind distinguishes the two roots of the class hierarchy.
type Kind int

const (
	NodeKind Kind = iota
	EdgeKind
)

func (k Kind) String() string {
	if k == EdgeKind {
		return "Edge"
	}
	return "Node"
}

// Root class names. Every class is a transitive subclass of exactly one.
const (
	NodeRoot = "Node"
	EdgeRoot = "Edge"
)

// Class is one entry in the node or edge hierarchy. The subclass of a
// parent has all of the parent's fields plus its own.
type Class struct {
	Name   string
	Kind   Kind
	Parent *Class
	// OwnFields are the fields this class adds beyond its parent's.
	OwnFields []Field
	// Abstract classes structure the hierarchy (e.g. Vertical) but records
	// are never stored with an abstract class directly.
	Abstract bool
	// CardinalityHint is the schema-supplied estimate of how many records
	// of this class (including subclasses) exist, used by the anchor cost
	// model when live statistics are unavailable. Zero means unknown.
	CardinalityHint int

	children []*Class
	allField map[string]*Field // cached inherited+own fields, built on finalize
	depth    int
	// path and subtree are cached on Finalize; before that they are
	// computed on demand.
	path    string
	subtree []string
}

// IsNode reports whether the class descends from Node.
func (c *Class) IsNode() bool { return c.Kind == NodeKind }

// IsEdge reports whether the class descends from Edge.
func (c *Class) IsEdge() bool { return c.Kind == EdgeKind }

// IsRoot reports whether the class is Node or Edge itself.
func (c *Class) IsRoot() bool { return c.Parent == nil }

// Path returns the inheritance path from the root, e.g. "Node:Container:VM".
// The Gremlin backend uses this as the element label so that subclass
// matching becomes prefix matching.
func (c *Class) Path() string {
	if c.path != "" {
		return c.path
	}
	if c.Parent == nil {
		return c.Name
	}
	return c.Parent.Path() + ":" + c.Name
}

// IsSubclassOf reports whether c is other or a transitive subclass of it.
// Identity is by class name and kind, not pointer, so schemas loaded
// independently by different stores (Nepal's data-integration mode) agree
// on the hierarchy as long as they use the same class names.
func (c *Class) IsSubclassOf(other *Class) bool {
	if other == nil || c.Kind != other.Kind {
		return false
	}
	for cur := c; cur != nil; cur = cur.Parent {
		if cur == other || cur.Name == other.Name {
			return true
		}
	}
	return false
}

// Children returns the direct subclasses in declaration order.
func (c *Class) Children() []*Class { return c.children }

// SubtreeNames returns the names of c and all transitive subclasses. The
// result is cached after Finalize and must not be modified.
func (c *Class) SubtreeNames() []string {
	if c.subtree != nil {
		return c.subtree
	}
	names := []string{c.Name}
	for _, ch := range c.children {
		names = append(names, ch.SubtreeNames()...)
	}
	return names
}

// Field resolves a field by name, searching own fields then ancestors.
func (c *Class) Field(name string) (*Field, bool) {
	if c.allField != nil {
		f, ok := c.allField[name]
		return f, ok
	}
	for cur := c; cur != nil; cur = cur.Parent {
		for i := range cur.OwnFields {
			if cur.OwnFields[i].Name == name {
				return &cur.OwnFields[i], true
			}
		}
	}
	return nil, false
}

// Fields returns all fields visible on the class: inherited first (root
// downward), then own, in declaration order.
func (c *Class) Fields() []Field {
	var chain []*Class
	for cur := c; cur != nil; cur = cur.Parent {
		chain = append(chain, cur)
	}
	var out []Field
	for i := len(chain) - 1; i >= 0; i-- {
		out = append(out, chain[i].OwnFields...)
	}
	return out
}

// String renders the class as its short name.
func (c *Class) String() string { return c.Name }

// LCA returns the least common ancestor of two classes. Classes of
// different kinds have no common ancestor.
func LCA(a, b *Class) (*Class, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("schema: LCA of nil class")
	}
	if a.Kind != b.Kind {
		return nil, fmt.Errorf("schema: no common ancestor of %s (%s) and %s (%s)", a, a.Kind, b, b.Kind)
	}
	for a.depth > b.depth {
		a = a.Parent
	}
	for b.depth > a.depth {
		b = b.Parent
	}
	for a != b {
		a, b = a.Parent, b.Parent
	}
	return a, nil
}

// LCAAll folds LCA over a non-empty class list.
func LCAAll(classes []*Class) (*Class, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("schema: LCA of empty class list")
	}
	cur := classes[0]
	for _, c := range classes[1:] {
		var err error
		cur, err = LCA(cur, c)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// ShortName returns the final segment of a possibly path-qualified class
// name: "Vertical:HostedOn:OnVM" -> "OnVM".
func ShortName(name string) string {
	if i := strings.LastIndexByte(name, ':'); i >= 0 {
		return name[i+1:]
	}
	return name
}
