package chaos_test

// The headline split-brain drill. A primary is partitioned away (live
// connections cut, new ones refused, the server itself still running),
// the cluster fails over to its most-caught-up replica, and the stale
// primary — never told it lost the role — keeps accepting writes into
// the same log identity at the same stream positions: a forked history.
// The fencing and fork-detection machinery must then deliver four
// guarantees at once when the partition heals:
//
//  1. the stale primary self-fences on first contact with the new era
//     (here: a client stamping the new epoch on a write) and rejects
//     further mutations with "stale_primary";
//  2. no write acked under the new epoch is lost;
//  3. no client read ever observes the stale fork once that client has
//     seen the new epoch (ErrStaleRead forces a retry elsewhere);
//  4. a follower that replicated the stale fork parks typed ErrDiverged
//     when repointed at the new primary — the prefix hashes disagree at
//     its position — instead of applying either side of the fork.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/netmodel"
	"repro/internal/repl"
	"repro/internal/server"
)

func TestPartitionedPrimarySplitBrainIsFencedAndDetected(t *testing.T) {
	ctx := context.Background()

	// ---- topology: primary P behind a partitionable listener, replica
	// F1 (will be promoted), replica F2 (will replicate the stale fork).
	pdb := openWALDB(t)
	if _, err := netmodel.BuildDemo(pdb.Store(), 300); err != nil {
		t.Fatal(err)
	}
	ps := server.New(pdb, server.Config{})
	flaky := chaos.NewFlakyListener(listen(t), 0, 0)
	purl := serveOn(t, ps, flaky)

	fcfg := func() repl.FollowerConfig {
		return repl.FollowerConfig{
			Primary:      purl,
			PollWait:     100 * time.Millisecond,
			ReconnectMin: time.Millisecond,
			ReconnectMax: 20 * time.Millisecond,
		}
	}
	f1db := openWALDB(t)
	f1 := repl.NewFollower(f1db.Store(), f1db.WAL(), fcfg())
	f1.Start()
	t.Cleanup(f1.Stop)
	f1s := server.New(f1db, server.Config{Follower: f1})
	f1url := serveOn(t, f1s, listen(t))

	f2db := openWALDB(t)
	f2 := repl.NewFollower(f2db.Store(), f2db.WAL(), fcfg())
	f2.Start()
	t.Cleanup(f2.Stop)

	cl, err := client.NewCluster(client.ClusterConfig{
		Primary:    purl,
		Replicas:   []string{f1url},
		BackoffMin: time.Millisecond,
		BackoffMax: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	ingest := func(c interface {
		Ingest(context.Context, []server.IngestOp) (*server.IngestResponse, error)
	}, id int64, name, rack string) error {
		_, err := c.Ingest(ctx, []server.IngestOp{{
			Op: "insert-node", Class: "ComputeHost",
			Fields: map[string]any{"id": id, "name": name, "rack": rack, "status": "Active"},
		}})
		return err
	}

	// ---- epoch-1 writes, fully replicated to both followers.
	const acked = 20
	for i := 0; i < acked; i++ {
		if err := ingest(cl, int64(50000+i), fmt.Sprintf("acked-%d", i), "rz"); err != nil {
			t.Fatalf("acked write %d: %v", i, err)
		}
	}
	drainTo := pdb.WAL().NextIndex()
	waitApplied(t, f1, drainTo, "f1 pre-partition")
	waitApplied(t, f2, drainTo, "f2 pre-partition")

	// ---- partition the primary. Its server keeps running and still
	// believes it is the primary; only the network is gone.
	flaky.Partition()

	// ---- fail over. The cluster ranks replicas by applied index and
	// promotes the most caught-up one; F1 adopts the primary's log
	// identity and positions under a freshly minted higher epoch.
	nc, err := cl.Failover(ctx)
	if err != nil {
		t.Fatalf("failover: %v", err)
	}
	if nc.Base() != f1url {
		t.Fatalf("failover promoted %s; want %s", nc.Base(), f1url)
	}
	if cl.Epoch() < 2 {
		t.Fatalf("failover observed epoch %d; want >= 2", cl.Epoch())
	}

	// ---- new-epoch acked writes. More of them than the stale fork will
	// hold, so the fork point lies strictly inside the new primary's log
	// and the prefix-hash comparison (not a position bound) must catch it.
	const postAcked = 12
	for i := 0; i < postAcked; i++ {
		if err := ingest(cl, int64(60000+i), fmt.Sprintf("post-%d", i), "rz"); err != nil {
			t.Fatalf("post-failover write %d: %v", i, err)
		}
	}

	// ---- heal the partition. The stale primary reappears, unfenced,
	// and acks rogue writes into the same log at the same positions —
	// the split brain is now physical. F2, still pointed at it, faithfully
	// replicates the fork.
	flaky.Heal()
	rogue := client.New(purl)
	const rogueWrites = 3
	for i := 0; i < rogueWrites; i++ {
		if err := ingest(rogue, int64(70000+i), fmt.Sprintf("rogue-%d", i), "rogue"); err != nil {
			t.Fatalf("rogue write %d (stale primary should still ack — not fenced yet): %v", i, err)
		}
	}
	waitApplied(t, f2, pdb.WAL().NextIndex(), "f2 stale fork")

	// ---- a fresh client that discovers the new era fences the stale
	// primary on contact: its write stamps the new epoch, the stale
	// primary answers "stale_primary" and goes read-only, and the client
	// rediscovers the true primary and lands the write there.
	cl2, err := client.NewCluster(client.ClusterConfig{
		Primary:    purl, // stale endpoint configuration, on purpose
		Replicas:   []string{f1url},
		BackoffMin: time.Millisecond,
		BackoffMax: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl2.Query(ctx, "Select source(P).name From PATHS P Where P MATCHES ComputeHost(rack='rz')", nil); err != nil {
		t.Fatalf("cl2 discovery read: %v", err)
	}
	if cl2.Epoch() < 2 {
		t.Fatalf("cl2 never observed the new epoch (saw %d)", cl2.Epoch())
	}
	if err := ingest(cl2, 80000, "fencing-write", "rz"); err != nil {
		t.Fatalf("cl2 write should have rediscovered the primary: %v", err)
	}
	if cl2.Rediscoveries() == 0 {
		t.Fatal("cl2 write landed without a stale_primary rediscovery; fencing never fired")
	}

	// The stale primary is now fenced: mutations rejected typed, health
	// and readiness say so, reads still flow.
	if err := ingest(rogue, 70099, "rogue-after-fence", "rogue"); !errors.Is(err, client.ErrStalePrimary) {
		t.Fatalf("write to fenced primary: got %v, want ErrStalePrimary", err)
	}
	if h, err := rogue.Health(ctx); err != nil || !h.Fenced {
		t.Fatalf("stale primary health: fenced=%v err=%v", h != nil && h.Fenced, err)
	}
	if ready, st, err := rogue.Ready(ctx); err != nil || ready || st == nil || st.Status != "fenced" {
		t.Fatalf("stale primary readiness: ready=%v status=%+v err=%v", ready, st, err)
	}
	if res, err := rogue.Query(ctx, "Select source(P).name From PATHS P Where P MATCHES ComputeHost(rack='rogue')", nil); err != nil || len(res.Rows) != rogueWrites {
		t.Fatalf("fenced primary must still serve reads: rows=%v err=%v", res, err)
	}

	// ---- zero new-epoch acked-write loss, and the fork never leaked:
	// every write acked under epoch 2 answers on the new primary; no
	// rogue write does.
	res, err := nc.Query(ctx, "Select source(P).name From PATHS P Where P MATCHES ComputeHost(rack='rz')", nil)
	if err != nil {
		t.Fatalf("new-primary audit query: %v", err)
	}
	if want := acked + postAcked + 1; len(res.Rows) != want {
		t.Fatalf("new primary holds %d of %d acked writes", len(res.Rows), want)
	}
	if res, err := nc.Query(ctx, "Select source(P).name From PATHS P Where P MATCHES ComputeHost(rack='rogue')", nil); err != nil || len(res.Rows) != 0 {
		t.Fatalf("rogue fork leaked onto the new primary: rows=%d err=%v", len(res.Rows), err)
	}

	// ---- no interleaved histories. A client pinned to the new era but
	// with the fenced stale primary still in its read rotation must
	// reject every answer that node serves (lower epoch) and retry onto
	// the new primary — the caller never sees the old fork.
	cl3, err := client.NewCluster(client.ClusterConfig{
		Primary:    f1url,
		Replicas:   []string{purl}, // the fenced stale primary, still serving reads
		BackoffMin: time.Millisecond,
		BackoffMax: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ingest(cl3, 80001, "epoch-seed", "rz"); err != nil {
		t.Fatalf("cl3 seed write: %v", err)
	}
	if cl3.Epoch() < 2 {
		t.Fatalf("cl3 never observed the new epoch (saw %d)", cl3.Epoch())
	}
	const allAcked = acked + postAcked + 2 // + fencing-write + epoch-seed
	for i := 0; i < 6; i++ {
		res, err := cl3.Query(ctx, "Select source(P).name From PATHS P Where P MATCHES ComputeHost(rack='rz')", nil)
		if err != nil {
			t.Fatalf("cl3 read %d: %v", i, err)
		}
		if res.Epoch < 2 {
			t.Fatalf("cl3 accepted an answer from epoch %d after seeing epoch %d", res.Epoch, cl3.Epoch())
		}
		if len(res.Rows) != allAcked {
			t.Fatalf("cl3 read %d returned %d rows, want %d — histories interleaved", i, len(res.Rows), allAcked)
		}
	}
	if cl3.StaleReads() == 0 {
		t.Fatal("no read was ever rejected as stale; the fenced primary never answered, test proves less than it should")
	}

	// ---- fork detection. Repoint F2 — which replicated the rogue fork —
	// at the new primary, resuming from its stream state. Its prefix hash
	// at its applied position disagrees with the new primary's chain, so
	// it must park typed ErrDiverged with nothing applied, not replay
	// either side of the fork.
	forkApplied, _ := f2.Applied()
	f2.Stop()
	resume := f2.StreamState()
	repointed := repl.NewFollower(f2db.Store(), f2db.WAL(), repl.FollowerConfig{
		Primary:      f1url,
		PollWait:     100 * time.Millisecond,
		ReconnectMin: time.Millisecond,
		ReconnectMax: 20 * time.Millisecond,
		Resume:       &resume,
	})
	repointed.Start()
	t.Cleanup(repointed.Stop)
	deadline := time.Now().Add(10 * time.Second)
	for !repointed.Status().Diverged {
		if time.Now().After(deadline) {
			t.Fatalf("repointed follower never parked diverged: %+v", repointed.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := repointed.Status()
	if got, _ := repointed.Applied(); got != forkApplied {
		t.Fatalf("diverged follower applied records across the fork: %d -> %d", forkApplied, got)
	}
	if !strings.Contains(st.LastError, repl.ErrDiverged.Error()) {
		t.Fatalf("diverged follower's last error is %q; want it to carry ErrDiverged", st.LastError)
	}

	// ---- observability: the fence and the epochs are visible in the
	// Prometheus dumps on both sides of the brain.
	pm, err := rogue.PrometheusMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pm, "server_fenced 1") {
		t.Fatal("stale primary's prometheus dump does not report server_fenced 1")
	}
	nm, err := nc.PrometheusMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nm, "repl_epoch 2") {
		t.Fatal("new primary's prometheus dump does not report repl_epoch 2")
	}
}

// waitApplied blocks until f has applied through at least next.
func waitApplied(t *testing.T, f *repl.Follower, next uint64, who string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := f.Status()
		if st.Applied >= next {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never drained to %d: %+v", who, next, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
