package chaos_test

// Replication under injected faults: WAL streams severed mid-batch must
// resume from the last applied offset without a full re-bootstrap, and
// killing the primary outright must leave a promotable follower holding
// every acknowledged mutation.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wal"
)

// serveOn runs srv's handler on l until the test ends; Close kills the
// listener abruptly (the kill-the-primary fault).
func serveOn(t *testing.T, s *server.Server, l net.Listener) (base string) {
	t.Helper()
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(l)
	t.Cleanup(func() { hs.Close() })
	return "http://" + l.Addr().String()
}

func listen(t *testing.T) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func openWALDB(t *testing.T) *core.DB {
	t.Helper()
	db, err := core.Open(netmodel.MustSchema(), core.WithWALOptions(t.TempDir(), wal.Options{NoSync: true}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func history(t *testing.T, db *core.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Store().WriteHistory(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSeveredStreamResumesFromOffset cuts every replication connection
// after a small write budget: the follower must reconnect and resume
// from its applied offset — never re-bootstrap — and still converge to a
// byte-identical copy.
func TestSeveredStreamResumesFromOffset(t *testing.T) {
	pdb := openWALDB(t)
	if _, err := netmodel.BuildDemo(pdb.Store(), 1000); err != nil {
		t.Fatal(err)
	}
	ps := server.New(pdb, server.Config{})

	// Every connection may write ~6KB of response before it is cut with a
	// RST — a handful of WAL frames per attempt, so replication only
	// finishes by resuming across many severed streams.
	flaky := chaos.NewFlakyListener(listen(t), 6*1024, 0)
	purl := serveOn(t, ps, flaky)

	fdb := openWALDB(t)
	f := repl.NewFollower(fdb.Store(), fdb.WAL(), repl.FollowerConfig{
		Primary:      purl,
		PollWait:     100 * time.Millisecond,
		ReconnectMin: time.Millisecond,
		ReconnectMax: 20 * time.Millisecond,
	})
	f.Start()
	t.Cleanup(f.Stop)

	deadline := time.Now().Add(30 * time.Second)
	for {
		st := f.Status()
		if st.CaughtUp && st.Applied == pdb.WAL().NextIndex() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged through severed streams: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	flaky.Heal()

	st := f.Status()
	if st.Bootstraps != 0 {
		t.Fatalf("follower re-bootstrapped %d times; severed streams must resume from offset", st.Bootstraps)
	}
	if flaky.Severed() == 0 {
		t.Fatal("fault never fired; test proves nothing")
	}
	if st.Reconnects == 0 {
		t.Fatal("no reconnects recorded despite severed connections")
	}
	if p, r := history(t, pdb), history(t, fdb); !bytes.Equal(p, r) {
		t.Fatalf("replica history diverged: primary %d bytes, replica %d bytes", len(p), len(r))
	}
}

// TestKillPrimaryPromoteKeepsAckedWrites kills the primary server
// abruptly after a burst of acknowledged writes, fails the cluster over,
// and proves the promoted follower holds every acked mutation — then
// keeps acking new ones durably.
func TestKillPrimaryPromoteKeepsAckedWrites(t *testing.T) {
	pdb := openWALDB(t)
	if _, err := netmodel.BuildDemo(pdb.Store(), 1000); err != nil {
		t.Fatal(err)
	}
	ps := server.New(pdb, server.Config{})
	pl := listen(t)
	purl := serveOn(t, ps, pl)

	fdb := openWALDB(t)
	f := repl.NewFollower(fdb.Store(), fdb.WAL(), repl.FollowerConfig{
		Primary:      purl,
		PollWait:     100 * time.Millisecond,
		ReconnectMin: time.Millisecond,
		ReconnectMax: 20 * time.Millisecond,
	})
	f.Start()
	t.Cleanup(f.Stop)
	fs := server.New(fdb, server.Config{Follower: f})
	furl := serveOn(t, fs, listen(t))

	cl, err := client.NewCluster(client.ClusterConfig{
		Primary:    purl,
		Replicas:   []string{furl},
		BackoffMin: time.Millisecond,
		BackoffMax: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Acked writes: each nil-error Ingest is durable on the primary.
	const acked = 25
	for i := 0; i < acked; i++ {
		_, err := cl.Ingest(ctx, []server.IngestOp{{
			Op: "insert-node", Class: "ComputeHost",
			Fields: map[string]any{"id": int64(50000 + i), "name": fmt.Sprintf("acked-%d", i), "rack": "rz", "status": "Active"},
		}})
		if err != nil {
			t.Fatalf("acked write %d: %v", i, err)
		}
	}

	// Let replication drain, then kill the primary mid-flight: no
	// shutdown, no drain, the listener and every connection just die.
	next := pdb.WAL().NextIndex()
	deadline := time.Now().Add(10 * time.Second)
	for f.Status().Applied < next {
		if time.Now().After(deadline) {
			t.Fatalf("follower never drained: %+v", f.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	// Failover: promote the follower and rewire the cluster to it.
	nc, err := cl.Failover(ctx)
	if err != nil {
		t.Fatalf("failover: %v", err)
	}
	if nc.Base() != furl {
		t.Fatalf("failover promoted %s; want %s", nc.Base(), furl)
	}

	// Zero acked-mutation loss: every pre-kill write answers on the new
	// primary.
	res, err := cl.Query(ctx, "Select source(P).name From PATHS P Where P MATCHES ComputeHost(rack='rz')", nil)
	if err != nil {
		t.Fatalf("post-failover query: %v", err)
	}
	if len(res.Rows) != acked {
		t.Fatalf("promoted follower holds %d of %d acked writes", len(res.Rows), acked)
	}

	// The promoted node acks new writes durably into its own WAL.
	if _, err := cl.Ingest(ctx, []server.IngestOp{{
		Op: "insert-node", Class: "ComputeHost",
		Fields: map[string]any{"id": int64(60000), "name": "post-failover", "rack": "rz", "status": "Active"},
	}}); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	res, err = cl.Query(ctx, "Select source(P).name From PATHS P Where P MATCHES ComputeHost(rack='rz')", nil)
	if err != nil || len(res.Rows) != acked+1 {
		t.Fatalf("read-your-write after failover: rows=%d err=%v", len(res.Rows), err)
	}

	// Lag and reconnect accounting survived in Prometheus form.
	mtx, err := nc.PrometheusMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"repl_follower_applied_index", "repl_follower_lag_records", "repl_follower_reconnects"} {
		if !bytes.Contains([]byte(mtx), []byte(name)) {
			t.Errorf("prometheus dump missing %s", name)
		}
	}
}
