package chaos

import (
	"errors"
	"os"
	"sync"
)

// ErrCrashed is the failure every file operation returns once a CrashFS
// has exhausted its write budget — the moment the simulated machine died.
var ErrCrashed = errors.New("chaos: simulated crash (write budget exhausted)")

// CrashFS simulates a machine that dies after writing a fixed number of
// bytes. Files opened through it write normally until the shared budget
// runs out; the write that crosses the budget is torn — its prefix
// reaches the disk, the rest does not — and everything afterwards
// (writes, fsyncs, truncates) fails with ErrCrashed. Because the budget
// is shared across all files, a single byte count addresses every crash
// point of a multi-file protocol (log append, checkpoint write,
// rotation).
//
// Durability tests sweep the budget across a workload's total byte count
// and assert that recovery from the surviving files restores exactly the
// acknowledged prefix. The wrapper is an os.OpenFile lookalike so it can
// slot into any layer that accepts one (internal/wal's Options.OpenFile).
type CrashFS struct {
	mu        sync.Mutex
	remaining int64
	crashed   bool
}

// NewCrashFS returns a filesystem wrapper that tears the write crossing
// budget bytes and fails everything after it.
func NewCrashFS(budget int64) *CrashFS {
	return &CrashFS{remaining: budget}
}

// Crashed reports whether the budget has been exhausted.
func (fs *CrashFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// OpenFile opens name like os.OpenFile, wrapped with the shared budget.
func (fs *CrashFS) OpenFile(name string, flag int, perm os.FileMode) (*CrashFile, error) {
	fs.mu.Lock()
	crashed := fs.crashed
	fs.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &CrashFile{f: f, fs: fs}, nil
}

// CrashFile is one file handle draining a CrashFS's budget.
type CrashFile struct {
	f  *os.File
	fs *CrashFS
}

// Write writes p, tearing it at the budget boundary: the allowed prefix
// reaches the underlying file, then ErrCrashed is returned with the
// short count — exactly what a power cut mid-write leaves behind.
func (c *CrashFile) Write(p []byte) (int, error) {
	c.fs.mu.Lock()
	if c.fs.crashed {
		c.fs.mu.Unlock()
		return 0, ErrCrashed
	}
	allow := int64(len(p))
	if allow > c.fs.remaining {
		allow = c.fs.remaining
		c.fs.crashed = true
	}
	c.fs.remaining -= allow
	c.fs.mu.Unlock()

	n, err := c.f.Write(p[:allow])
	if err != nil {
		return n, err
	}
	if int64(len(p)) > allow {
		return n, ErrCrashed
	}
	return n, nil
}

// Sync fails after the crash; the dead machine flushes nothing.
func (c *CrashFile) Sync() error {
	if c.fs.Crashed() {
		return ErrCrashed
	}
	return c.f.Sync()
}

// Truncate fails after the crash, so torn tails cannot be repaired by
// the dying process — only recovery sees them.
func (c *CrashFile) Truncate(size int64) error {
	if c.fs.Crashed() {
		return ErrCrashed
	}
	return c.f.Truncate(size)
}

// Close releases the handle; it succeeds even post-crash so tests can
// clean up.
func (c *CrashFile) Close() error { return c.f.Close() }
