package chaos

import (
	"net"
	"sync"
	"sync/atomic"
)

// FlakyListener wraps a net.Listener with connection-level fault
// injection: every accepted connection may only write a budget of
// response bytes before the connection is severed abruptly (the socket
// is closed mid-write, so the peer sees a response cut off — unexpected
// EOF or connection reset, not a clean close). It models a server dying
// or a middlebox cutting connections mid-response, the failure shape
// network clients must surface as a typed transport error rather than a
// truncated "success".
//
// Partition models a network split instead of a dying responder: every
// live connection — parked replication long-polls included — is cut
// abruptly, and new connections are refused until Heal, while the
// listener keeps its address so service resumes on the same URL. The
// wrapped server itself keeps running the whole time, which is exactly
// the split-brain hazard: a partitioned-away primary that still thinks
// it is the primary.
//
// A zero budget leaves writes unlimited (accept-only wrapping); Heal
// ends an outage at an exact point, like Accessor.Heal. skipConns lets
// the first N connections through untouched, so a test can establish a
// healthy exchange before the fault fires. All knobs are safe to adjust
// while the listener serves.
type FlakyListener struct {
	net.Listener

	budget      atomic.Int64 // per-connection response byte budget; 0 = off
	skip        atomic.Int64 // connections exempted from injection
	accepted    atomic.Int64
	severed     atomic.Int64
	partitioned atomic.Bool

	mu   sync.Mutex
	live map[*trackedConn]struct{}
}

// NewFlakyListener wraps inner: each accepted connection past the first
// skipConns may write at most writeBudget response bytes before being
// severed (0 disables injection).
func NewFlakyListener(inner net.Listener, writeBudget, skipConns int64) *FlakyListener {
	l := &FlakyListener{Listener: inner, live: make(map[*trackedConn]struct{})}
	l.budget.Store(writeBudget)
	l.skip.Store(skipConns)
	return l
}

// SetWriteBudget replaces the per-connection budget for future accepts.
func (l *FlakyListener) SetWriteBudget(n int64) { l.budget.Store(n) }

// Partition cuts the node off: every live connection is severed
// abruptly (a TCP RST where supported) and new connections are refused
// until Heal. The listener keeps accepting at the socket level — its
// address stays stable — but every accepted connection is closed before
// a byte is exchanged, so peers see resets, not a vanished endpoint.
func (l *FlakyListener) Partition() {
	l.partitioned.Store(true)
	l.mu.Lock()
	conns := make([]*trackedConn, 0, len(l.live))
	for c := range l.live {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	for _, c := range conns {
		c.sever()
	}
}

// Heal ends the outage: the partition lifts and future connections are
// untouched.
func (l *FlakyListener) Heal() {
	l.budget.Store(0)
	l.partitioned.Store(false)
}

// Partitioned reports whether the listener is currently partitioned.
func (l *FlakyListener) Partitioned() bool { return l.partitioned.Load() }

// Accept implements net.Listener.
func (l *FlakyListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if l.partitioned.Load() {
		// Refuse: close abruptly before any exchange. The dead conn is
		// still handed to the server, whose first read fails — returning an
		// error here would make net/http stop serving entirely.
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetLinger(0)
		}
		_ = conn.Close()
		return conn, nil
	}
	n := l.accepted.Add(1)
	budget := l.budget.Load()
	c := &trackedConn{
		Conn:    conn,
		limited: budget > 0 && n > l.skip.Load(),
		budget:  budget,
		onSever: func() { l.severed.Add(1) },
		onClose: l.drop,
	}
	l.mu.Lock()
	l.live[c] = struct{}{}
	l.mu.Unlock()
	return c, nil
}

func (l *FlakyListener) drop(c *trackedConn) {
	l.mu.Lock()
	delete(l.live, c)
	l.mu.Unlock()
}

// Severed reports how many connections were cut mid-response or by a
// partition.
func (l *FlakyListener) Severed() int64 { return l.severed.Load() }

// trackedConn is one accepted connection: severable at any moment (the
// partition path) and, when limited, cut once its write budget is
// spent. The budget is only charged for writes (responses); reads are
// untouched, so the request always arrives intact — the fault is a
// dying responder.
type trackedConn struct {
	net.Conn
	mu      sync.Mutex
	limited bool
	budget  int64
	dead    bool
	onSever func()
	onClose func(*trackedConn)
}

func (c *trackedConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	if !c.limited {
		// The lock is NOT held across the write: a Partition must be able
		// to sever a connection that is blocked mid-write.
		c.mu.Unlock()
		return c.Conn.Write(p)
	}
	if int64(len(p)) <= c.budget {
		c.budget -= int64(len(p))
		c.mu.Unlock()
		return c.Conn.Write(p)
	}
	// Spend what remains, then sever abruptly: SetLinger(0) makes the
	// close a TCP RST where supported, the hardest version of the fault.
	rem := c.budget
	c.budget = 0
	c.dead = true
	c.mu.Unlock()
	n := 0
	if rem > 0 {
		n, _ = c.Conn.Write(p[:rem])
	}
	c.abort()
	if c.onSever != nil {
		c.onSever()
	}
	return n, net.ErrClosed
}

// sever cuts the connection abruptly; idempotent.
func (c *trackedConn) sever() {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.dead = true
	c.mu.Unlock()
	c.abort()
	if c.onSever != nil {
		c.onSever()
	}
}

// abort closes the underlying socket with linger disabled (RST).
func (c *trackedConn) abort() {
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Conn.Close()
}

// Close implements net.Conn, untracking the connection from its
// listener's live set.
func (c *trackedConn) Close() error {
	if c.onClose != nil {
		c.onClose(c)
	}
	return c.Conn.Close()
}
