package chaos

import (
	"net"
	"sync"
	"sync/atomic"
)

// FlakyListener wraps a net.Listener with connection-level fault
// injection: every accepted connection may only write a budget of
// response bytes before the connection is severed abruptly (the socket
// is closed mid-write, so the peer sees a response cut off — unexpected
// EOF or connection reset, not a clean close). It models a server dying
// or a middlebox cutting connections mid-response, the failure shape
// network clients must surface as a typed transport error rather than a
// truncated "success".
//
// A zero budget leaves writes unlimited (accept-only wrapping); Heal
// ends an outage at an exact point, like Accessor.Heal. skipConns lets
// the first N connections through untouched, so a test can establish a
// healthy exchange before the fault fires. All knobs are safe to adjust
// while the listener serves.
type FlakyListener struct {
	net.Listener

	budget   atomic.Int64 // per-connection response byte budget; 0 = off
	skip     atomic.Int64 // connections exempted from injection
	accepted atomic.Int64
	severed  atomic.Int64
}

// NewFlakyListener wraps inner: each accepted connection past the first
// skipConns may write at most writeBudget response bytes before being
// severed (0 disables injection).
func NewFlakyListener(inner net.Listener, writeBudget, skipConns int64) *FlakyListener {
	l := &FlakyListener{Listener: inner}
	l.budget.Store(writeBudget)
	l.skip.Store(skipConns)
	return l
}

// SetWriteBudget replaces the per-connection budget for future accepts.
func (l *FlakyListener) SetWriteBudget(n int64) { l.budget.Store(n) }

// Heal ends the outage: future connections are untouched.
func (l *FlakyListener) Heal() { l.budget.Store(0) }

// Accept implements net.Listener.
func (l *FlakyListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	n := l.accepted.Add(1)
	budget := l.budget.Load()
	if budget <= 0 || n <= l.skip.Load() {
		return conn, nil
	}
	return &flakyConn{Conn: conn, budget: budget, onSever: func() { l.severed.Add(1) }}, nil
}

// Severed reports how many connections were cut mid-response.
func (l *FlakyListener) Severed() int64 { return l.severed.Load() }

// flakyConn cuts the connection once its write budget is spent. The
// budget is only charged for writes (responses); reads are untouched, so
// the request always arrives intact — the fault is a dying responder.
type flakyConn struct {
	net.Conn
	mu      sync.Mutex
	budget  int64
	dead    bool
	onSever func()
}

func (c *flakyConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return 0, net.ErrClosed
	}
	if int64(len(p)) <= c.budget {
		c.budget -= int64(len(p))
		return c.Conn.Write(p)
	}
	// Spend what remains, then sever abruptly: SetLinger(0) makes the
	// close a TCP RST where supported, the hardest version of the fault.
	n := 0
	if c.budget > 0 {
		n, _ = c.Conn.Write(p[:c.budget])
		c.budget = 0
	}
	c.dead = true
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Conn.Close()
	if c.onSever != nil {
		c.onSever()
	}
	return n, net.ErrClosed
}
