// Package chaos provides fault injection for Nepal's execution stack:
// an Accessor wrapper that delays physical probes and fails them with
// transient errors, either deterministically (the first N probes) or
// probabilistically (seeded, so test runs reproduce). It exists to
// exercise the executor's retry, circuit-breaker, and degraded-mode
// machinery under test — the package has no role in production paths.
//
// Injected faults implement `Transient() bool`, the classification
// exec.Transient probes for, so the executor retries them; everything
// else about the wrapped backend (name, store, results) is unchanged,
// which lets a chaos-wrapped engine stand in anywhere a healthy one can.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/rpe"
)

// Fault is one injected probe failure.
type Fault struct {
	// Op names the failed probe: "anchor" or "edges".
	Op string
	// Probe is the 1-based probe number at which the fault fired.
	Probe int64
}

func (f *Fault) Error() string {
	return fmt.Sprintf("chaos: injected transient fault (%s probe %d)", f.Op, f.Probe)
}

// Transient marks injected faults as retryable.
func (f *Fault) Transient() bool { return true }

// Accessor wraps a plan.Accessor with fault and latency injection. It is
// safe for concurrent use.
type Accessor struct {
	inner plan.Accessor

	mu        sync.Mutex
	rng       *rand.Rand
	failProb  float64
	failFirst int64
	latency   time.Duration
	calls     int64
	faults    int64
}

// Option configures a chaos Accessor.
type Option func(*Accessor)

// WithFailProb fails each probe independently with probability p, drawn
// from a generator seeded with seed (deterministic per wrapper).
func WithFailProb(p float64, seed int64) Option {
	return func(a *Accessor) {
		a.failProb = p
		a.rng = rand.New(rand.NewSource(seed))
	}
}

// WithFailFirst fails the first n probes, then heals: the shape retry
// tests want (transient outage, then recovery).
func WithFailFirst(n int) Option {
	return func(a *Accessor) { a.failFirst = int64(n) }
}

// WithLatency sleeps d before every probe, simulating a slow backend.
func WithLatency(d time.Duration) Option {
	return func(a *Accessor) { a.latency = d }
}

// Wrap returns a chaos accessor around inner.
func Wrap(inner plan.Accessor, opts ...Option) *Accessor {
	a := &Accessor{inner: inner}
	for _, o := range opts {
		o(a)
	}
	return a
}

// Name implements plan.Accessor, passing the inner backend's name
// through so traces and metrics are attributed identically.
func (a *Accessor) Name() string { return a.inner.Name() }

// Store implements plan.Accessor.
func (a *Accessor) Store() *graph.Store { return a.inner.Store() }

// Calls reports how many probes the wrapper has seen.
func (a *Accessor) Calls() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.calls
}

// Faults reports how many probes the wrapper failed.
func (a *Accessor) Faults() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.faults
}

// Heal clears all failure injection (latency stays), so a test can end
// an outage at an exact point.
func (a *Accessor) Heal() {
	a.mu.Lock()
	a.failProb = 0
	a.failFirst = 0
	a.mu.Unlock()
}

// inject applies latency and decides whether this probe fails.
func (a *Accessor) inject(op string) error {
	if a.latency > 0 {
		time.Sleep(a.latency)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.calls++
	fail := a.calls <= a.failFirst
	if !fail && a.failProb > 0 && a.rng != nil {
		fail = a.rng.Float64() < a.failProb
	}
	if !fail {
		return nil
	}
	a.faults++
	return &Fault{Op: op, Probe: a.calls}
}

// AnchorElements implements plan.Accessor with fault injection.
func (a *Accessor) AnchorElements(view graph.View, c *rpe.Checked, atom *rpe.Atom, gov *plan.Governor) ([]graph.UID, error) {
	if err := a.inject("anchor"); err != nil {
		return nil, err
	}
	return a.inner.AnchorElements(view, c, atom, gov)
}

// IncidentEdges implements plan.Accessor with fault injection.
func (a *Accessor) IncidentEdges(view graph.View, node graph.UID, dir plan.Direction, atom *rpe.Atom, c *rpe.Checked, gov *plan.Governor) ([]graph.UID, error) {
	if err := a.inject("edges"); err != nil {
		return nil, err
	}
	return a.inner.IncidentEdges(view, node, dir, atom, c, gov)
}
