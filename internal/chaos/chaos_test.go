package chaos_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/graph"
	"repro/internal/gremlin"
	"repro/internal/netmodel"
	"repro/internal/plan"
	"repro/internal/rpe"
	"repro/internal/temporal"
)

var t0 = time.Date(2017, 2, 15, 0, 0, 0, 0, time.UTC)

func demoStore(t *testing.T) *graph.Store {
	t.Helper()
	st := graph.NewStore(netmodel.MustSchema(), temporal.NewManualClock(t0))
	if _, err := netmodel.BuildDemo(st, 1000); err != nil {
		t.Fatal(err)
	}
	return st
}

func demoPlan(t *testing.T, st *graph.Store) *plan.Plan {
	t.Helper()
	c, err := rpe.CheckString("VNF()->[Vertical()]{1,6}->Host()", st.Schema())
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(c, st.Stats())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFailFirstThenHeals(t *testing.T) {
	st := demoStore(t)
	acc := chaos.Wrap(gremlin.New(st), chaos.WithFailFirst(2))
	eng := plan.NewEngine(acc)
	view := graph.CurrentView(st)
	p := demoPlan(t, st)

	for i := 0; i < 2; i++ {
		_, err := eng.Eval(view, p)
		if err == nil {
			t.Fatalf("probe %d: injected fault did not surface", i+1)
		}
		var f *chaos.Fault
		if !errors.As(err, &f) {
			t.Fatalf("probe %d: error %v is not a *chaos.Fault", i+1, err)
		}
		if !f.Transient() {
			t.Error("injected fault must classify as transient")
		}
	}
	set, err := eng.Eval(view, p)
	if err != nil {
		t.Fatalf("post-outage eval = %v, want recovery", err)
	}
	if set.Len() != 3 {
		t.Errorf("recovered pathway set = %d, want 3 demo chains", set.Len())
	}
	if acc.Faults() != 2 {
		t.Errorf("Faults = %d, want 2", acc.Faults())
	}
	if acc.Calls() <= acc.Faults() {
		t.Errorf("Calls = %d, must exceed the %d faults once healthy", acc.Calls(), acc.Faults())
	}
}

func TestFailProbDeterministic(t *testing.T) {
	// Same seed, same probe sequence: the fault pattern must reproduce.
	st := demoStore(t)
	run := func() (int64, int64) {
		acc := chaos.Wrap(gremlin.New(st), chaos.WithFailProb(0.3, 99))
		eng := plan.NewEngine(acc)
		p := demoPlan(t, st)
		for i := 0; i < 8; i++ {
			eng.Eval(graph.CurrentView(st), p) // errors expected; only counts matter
		}
		return acc.Calls(), acc.Faults()
	}
	c1, f1 := run()
	c2, f2 := run()
	if c1 != c2 || f1 != f2 {
		t.Errorf("seeded runs diverged: calls %d/%d, faults %d/%d", c1, c2, f1, f2)
	}
	if f1 == 0 {
		t.Error("p=0.3 over many probes injected no faults")
	}
}

func TestHealStopsInjection(t *testing.T) {
	st := demoStore(t)
	acc := chaos.Wrap(gremlin.New(st), chaos.WithFailProb(1, 1))
	eng := plan.NewEngine(acc)
	p := demoPlan(t, st)
	if _, err := eng.Eval(graph.CurrentView(st), p); err == nil {
		t.Fatal("p=1 wrapper did not fail")
	}
	acc.Heal()
	if _, err := eng.Eval(graph.CurrentView(st), p); err != nil {
		t.Fatalf("healed eval = %v", err)
	}
}

func TestWrapperTransparency(t *testing.T) {
	// A fault-free wrapper must be invisible: same name, store, and
	// pathway set as the bare backend.
	st := demoStore(t)
	bare := gremlin.New(st)
	acc := chaos.Wrap(bare, chaos.WithLatency(time.Microsecond))
	if acc.Name() != bare.Name() {
		t.Errorf("Name = %q, want %q", acc.Name(), bare.Name())
	}
	if acc.Store() != st {
		t.Error("Store must pass through to the wrapped backend")
	}
	p := demoPlan(t, st)
	want, err := plan.NewEngine(bare).Eval(graph.CurrentView(st), p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.NewEngine(acc).Eval(graph.CurrentView(st), p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Errorf("wrapped eval = %d pathways, bare = %d", got.Len(), want.Len())
	}
}
