package chaos_test

// The watch subsystem under injected faults: a subscriber whose stream
// connection is severed mid-delivery, and whose serving cluster then
// loses its primary outright, must — resuming only by its token —
// observe every acknowledged mutation at least once, in stream order,
// with no event from a fenced epoch interleaved. Delivered payloads are
// checked field-for-field against the records decoded straight out of
// the authoritative WALs.

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/graph"
	"repro/internal/netmodel"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/watch"
)

// decodeWAL decodes mgr's records at [from, to) into mutations.
func decodeWAL(t *testing.T, mgr *wal.Manager, from, to uint64) []*graph.Mutation {
	t.Helper()
	var muts []*graph.Mutation
	for idx := from; idx < to; {
		raw, _, err := mgr.ReadRecords(idx, 1<<20)
		if err != nil {
			t.Fatalf("reading WAL at %d: %v", idx, err)
		}
		if len(raw) == 0 {
			t.Fatalf("WAL dry at %d; want records through %d", idx, to)
		}
		for len(raw) > 0 && idx < to {
			m, n, err := wal.DecodeRecord(raw)
			if err != nil {
				t.Fatalf("decoding WAL record %d: %v", idx, err)
			}
			muts = append(muts, m)
			raw = raw[n:]
			idx++
		}
	}
	return muts
}

// fieldsEq compares field maps across a JSON round-trip (the wire turns
// int64 into float64; canonical JSON bytes equalize them).
func fieldsEq(a, b graph.Fields) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	return reflect.DeepEqual(ja, jb)
}

// TestWatchSurvivesSeverAndFailover is the watch subsystem's headline
// chaos proof. The subscriber tails the cluster through a replica whose
// listener cuts every connection after a small write budget, so watch
// batches die mid-delivery over and over; mid-stream the primary is
// killed abruptly and the cluster fails over to that replica. The
// subscriber — resuming purely by its token through Cluster.Watch —
// must still observe every acknowledged mutation at least once, in
// stream order, under a non-decreasing epoch, matching the WAL records
// byte-derived field for field.
func TestWatchSurvivesSeverAndFailover(t *testing.T) {
	pdb := openWALDB(t)
	if _, err := netmodel.BuildDemo(pdb.Store(), 1000); err != nil {
		t.Fatal(err)
	}
	ps := server.New(pdb, server.Config{})
	purl := serveOn(t, ps, listen(t))

	// The replica — the node actually serving the watch stream — sits
	// behind a listener that severs every connection after ~8KB written:
	// long-poll responses die mid-JSON, the SSE path never gets a whole
	// batch out, and the subscriber only makes progress by resuming.
	fdb := openWALDB(t)
	f := repl.NewFollower(fdb.Store(), fdb.WAL(), repl.FollowerConfig{
		Primary:      purl,
		PollWait:     50 * time.Millisecond,
		ReconnectMin: time.Millisecond,
		ReconnectMax: 20 * time.Millisecond,
	})
	// The server installs the watch tap (SetOnApplied) at construction, so
	// it must exist before the link starts applying records.
	fs := server.New(fdb, server.Config{Follower: f})
	flaky := chaos.NewFlakyListener(listen(t), 8*1024, 0)
	furl := serveOn(t, fs, flaky)
	f.Start()
	t.Cleanup(f.Stop)

	cl, err := client.NewCluster(client.ClusterConfig{
		Primary:    purl,
		Replicas:   []string{furl},
		BackoffMin: time.Millisecond,
		BackoffMax: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// The subscriber: one stream from index 0, resumed by token across
	// every sever and the failover. Short polls keep batches small so the
	// write budget cuts many of them mid-flight.
	ws := cl.Watch(ctx, 0, &client.WatchOptions{PollWait: 100 * time.Millisecond, MaxEvents: 8})
	defer ws.Close()
	var mu sync.Mutex
	var delivered []watch.Event
	go func() {
		for {
			ev, err := ws.Next(ctx)
			if err != nil {
				return
			}
			mu.Lock()
			delivered = append(delivered, ev)
			mu.Unlock()
		}
	}()
	covered := func() uint64 { // first index not yet observed
		mu.Lock()
		defer mu.Unlock()
		seen := make(map[uint64]bool, len(delivered))
		for _, ev := range delivered {
			if !ev.Control() {
				seen[ev.Index] = true
			}
		}
		var n uint64
		for seen[n] {
			n++
		}
		return n
	}

	// Acked writes against the live primary while the watch stream is
	// being cut: each nil-error ingest is durable and must reach the
	// subscriber.
	const ackedBeforeKill = 30
	for i := 0; i < ackedBeforeKill; i++ {
		if _, err := cl.Ingest(ctx, []server.IngestOp{{
			Op: "insert-node", Class: "ComputeHost",
			Fields: map[string]any{"id": int64(50000 + i), "name": fmt.Sprintf("acked-%d", i), "rack": "rw", "status": "Active"},
		}}); err != nil {
			t.Fatalf("acked write %d: %v", i, err)
		}
	}

	// Snapshot the authoritative pre-kill history off the primary's WAL
	// while it is still alive.
	killPoint := pdb.WAL().NextIndex()
	expected := decodeWAL(t, pdb.WAL(), 0, killPoint)

	// Let the replica drain, then kill the primary abruptly — no drain,
	// no goodbye — and fail over. The promote call itself rides the flaky
	// listener, so it may need several attempts.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if applied, _ := f.Applied(); applied >= killPoint {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never drained: %+v", f.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	var nc *client.Client
	for attempt := 0; ; attempt++ {
		nc, err = cl.Failover(ctx)
		if err == nil {
			break
		}
		if attempt > 50 {
			t.Fatalf("failover never succeeded through the flaky listener: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if nc.Base() != furl {
		t.Fatalf("failover promoted %s; want %s", nc.Base(), furl)
	}
	promotedEpoch := fdb.WAL().Epoch()
	if promotedEpoch == 0 {
		t.Fatal("promotion did not establish a positive epoch")
	}

	// Acked writes against the new primary — through the flaky listener,
	// so retry each until an ack lands. A torn ack may have applied
	// anyway; that is fine (and exactly the at-least-once contract): the
	// coverage check below runs over the WAL, which holds whatever truly
	// committed. Distinct ids per attempt keep retries from tripping the
	// unique-field check.
	acked := 0
	for attempt := 0; acked < 10; attempt++ {
		if attempt > 500 {
			t.Fatal("could not land post-failover writes through the flaky listener")
		}
		_, err := cl.Ingest(ctx, []server.IngestOp{{
			Op: "insert-node", Class: "ComputeHost",
			Fields: map[string]any{"id": int64(60000 + attempt), "name": fmt.Sprintf("post-failover-%d", attempt), "rack": "rw", "status": "Active"},
		}})
		if err == nil {
			acked++
		}
	}

	// The full acknowledged history now ends at the promoted node's WAL
	// end. Promotion checkpointed at the adoption point, so its WAL holds
	// exactly the post-failover tail; the prefix was captured above.
	end := fdb.WAL().NextIndex()
	adopted := fdb.WAL().BaseIndex()
	if adopted != killPoint {
		t.Fatalf("promoted WAL base %d; want the adoption point %d", adopted, killPoint)
	}
	expected = append(expected, decodeWAL(t, fdb.WAL(), adopted, end)...)

	// The subscriber must converge on full coverage purely by resuming.
	deadline = time.Now().Add(30 * time.Second)
	for covered() < end {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber stuck at %d of %d after 30s (severed %d times)", covered(), end, flaky.Severed())
		}
		time.Sleep(5 * time.Millisecond)
	}
	ws.Close()
	if flaky.Severed() == 0 {
		t.Fatal("fault never fired; test proves nothing")
	}

	mu.Lock()
	defer mu.Unlock()

	// Stream order: at-least-once allows re-delivery of a suffix after a
	// sever, but never a forward jump past unseen history; and the epoch
	// stamped on deliveries never decreases — once the subscriber has
	// seen the promoted era, nothing from the fenced one interleaves.
	maxSeen := int64(-1)
	var maxEpoch uint64
	for i, ev := range delivered {
		if ev.Control() {
			t.Fatalf("delivery %d is a %s control event; the ring must have retained the whole run", i, ev.Op)
		}
		if int64(ev.Index) > maxSeen+1 {
			t.Fatalf("delivery %d jumped to index %d past unseen %d", i, ev.Index, maxSeen+1)
		}
		if int64(ev.Index) > maxSeen {
			maxSeen = int64(ev.Index)
		}
		if ev.Epoch < maxEpoch {
			t.Fatalf("delivery %d carries epoch %d after epoch %d was seen: fenced-era event interleaved", i, ev.Epoch, maxEpoch)
		}
		maxEpoch = ev.Epoch

		// Field-for-field fidelity against the record decoded from the
		// authoritative WAL at the same index.
		want := expected[ev.Index]
		if ev.Op != want.Op.String() || ev.UID != int64(want.UID) {
			t.Fatalf("delivery %d: got %s uid %d at index %d; WAL says %s uid %d", i, ev.Op, ev.UID, ev.Index, want.Op, want.UID)
		}
		if want.Op == graph.OpInsertEdge && (ev.Src != int64(want.Src) || ev.Dst != int64(want.Dst)) {
			t.Fatalf("delivery %d: edge endpoints %d->%d; WAL says %d->%d", i, ev.Src, ev.Dst, want.Src, want.Dst)
		}
		if !fieldsEq(ev.Fields, want.Fields) {
			t.Fatalf("delivery %d (index %d): fields %v; WAL says %v", i, ev.Index, ev.Fields, want.Fields)
		}
		if !ev.At.Equal(want.At) {
			t.Fatalf("delivery %d (index %d): tx time %v; WAL says %v", i, ev.Index, ev.At, want.At)
		}
	}
	if uint64(maxSeen+1) < end {
		t.Fatalf("subscriber finished at %d; acknowledged history ends at %d", maxSeen+1, end)
	}
	if maxEpoch != promotedEpoch {
		t.Fatalf("final deliveries carry epoch %d; promoted epoch is %d", maxEpoch, promotedEpoch)
	}
}
