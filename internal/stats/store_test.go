package stats

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStoreObserveAndSnapshot(t *testing.T) {
	s := NewStore(10)
	for i := 0; i < 5; i++ {
		s.Observe("aaa", "Host ( id = ? )", Observation{Duration: 10 * time.Millisecond, Outcome: "ok", Edges: 100, Rows: 2})
	}
	s.Observe("bbb", "VM -> Host", Observation{Duration: 200 * time.Millisecond, Outcome: "limit", Edges: 5000, Rows: 0})
	s.Observe("bbb", "VM -> Host", Observation{Duration: 100 * time.Millisecond, Outcome: "error", Edges: 50, Rows: 0})
	s.CacheHit("aaa", "Host ( id = ? )")

	snap := s.Snapshot(SortTotalTime, 0)
	if snap.Tracked != 2 || len(snap.Statements) != 2 {
		t.Fatalf("tracked = %d, rows = %d, want 2", snap.Tracked, len(snap.Statements))
	}
	// bbb has 300ms total vs aaa's 50ms: total_time sort puts it first.
	if snap.Statements[0].Digest != "bbb" {
		t.Fatalf("total_time sort: first digest = %s, want bbb", snap.Statements[0].Digest)
	}
	b := snap.Statements[0]
	if b.Calls != 2 || b.LimitHits != 1 || b.Errors != 1 || b.OK != 0 {
		t.Fatalf("bbb outcomes wrong: %+v", b)
	}
	if b.EdgesScanned != 5050 {
		t.Fatalf("bbb edges = %d, want 5050", b.EdgesScanned)
	}
	a := snap.Statements[1]
	if a.Calls != 5 || a.OK != 5 || a.PlanCacheHits != 1 || a.Rows != 10 {
		t.Fatalf("aaa aggregates wrong: %+v", a)
	}
	if a.MeanMS < 9 || a.MeanMS > 11 {
		t.Fatalf("aaa mean = %v, want ~10", a.MeanMS)
	}
	if a.P50MS <= 0 || a.P95MS < a.P50MS || a.P99MS < a.P95MS {
		t.Fatalf("percentiles not monotone: p50=%v p95=%v p99=%v", a.P50MS, a.P95MS, a.P99MS)
	}

	// calls sort flips the order.
	snap = s.Snapshot(SortCalls, 0)
	if snap.Statements[0].Digest != "aaa" {
		t.Fatalf("calls sort: first digest = %s, want aaa", snap.Statements[0].Digest)
	}
	// limit truncates rows but Tracked reports the full cardinality.
	snap = s.Snapshot(SortCalls, 1)
	if len(snap.Statements) != 1 || snap.Tracked != 2 {
		t.Fatalf("limit=1: rows=%d tracked=%d", len(snap.Statements), snap.Tracked)
	}
}

func TestStoreEvictionFoldsIntoOther(t *testing.T) {
	s := NewStore(3)
	// Three digests with clearly ordered total time.
	s.Observe("cold", "q0", Observation{Duration: 1 * time.Millisecond, Outcome: "ok", Edges: 1, Rows: 1})
	s.Observe("warm", "q1", Observation{Duration: 50 * time.Millisecond, Outcome: "ok"})
	s.Observe("hot", "q2", Observation{Duration: 500 * time.Millisecond, Outcome: "ok"})
	// Admitting a fourth evicts the coldest.
	s.Observe("new", "q3", Observation{Duration: 5 * time.Millisecond, Outcome: "error", Edges: 7})

	snap := s.Snapshot(SortTotalTime, 0)
	if snap.Tracked != 3 {
		t.Fatalf("tracked = %d, want 3", snap.Tracked)
	}
	for _, row := range snap.Statements {
		if row.Digest == "cold" {
			t.Fatalf("cold digest should have been evicted, still present: %+v", snap.Statements)
		}
	}
	if snap.Evicted != 1 {
		t.Fatalf("evicted = %d, want 1", snap.Evicted)
	}
	if snap.Other == nil {
		t.Fatalf("other bucket missing after eviction")
	}
	if snap.Other.Digest != OtherDigest || snap.Other.Calls != 1 || snap.Other.EdgesScanned != 1 || snap.Other.Rows != 1 {
		t.Fatalf("other bucket did not absorb the victim: %+v", snap.Other)
	}
	// The evicted digest coming back is re-admitted as a fresh entry
	// (evicting the new coldest), so hot statements always resurface.
	s.Observe("cold", "q0", Observation{Duration: 1 * time.Second, Outcome: "ok"})
	snap = s.Snapshot(SortTotalTime, 0)
	if snap.Statements[0].Digest != "cold" || snap.Statements[0].Calls != 1 {
		t.Fatalf("re-admitted digest should start fresh at the top: %+v", snap.Statements)
	}
	if snap.Evicted != 2 || snap.Other.Calls != 2 {
		t.Fatalf("second eviction not folded: evicted=%d other=%+v", snap.Evicted, snap.Other)
	}
}

func TestStoreReset(t *testing.T) {
	s := NewStore(2)
	s.Observe("a", "qa", Observation{Duration: time.Millisecond, Outcome: "ok"})
	s.Observe("b", "qb", Observation{Duration: time.Millisecond, Outcome: "ok"})
	s.Observe("c", "qc", Observation{Duration: time.Millisecond, Outcome: "ok"}) // forces an eviction
	s.Reset()
	snap := s.Snapshot("", 0)
	if snap.Tracked != 0 || snap.Other != nil || snap.Evicted != 0 {
		t.Fatalf("reset left state behind: %+v", snap)
	}
	// Store keeps working after reset.
	s.Observe("a", "qa", Observation{Duration: time.Millisecond, Outcome: "ok"})
	if got := s.Snapshot("", 0).Tracked; got != 1 {
		t.Fatalf("tracked after reset+observe = %d, want 1", got)
	}
}

func TestStoreNilSafe(t *testing.T) {
	var s *Store
	s.Observe("a", "q", Observation{})
	s.CacheHit("a", "q")
	s.Reset()
	if snap := s.Snapshot("", 0); snap.Tracked != 0 {
		t.Fatalf("nil store snapshot: %+v", snap)
	}
}

// TestStoreConcurrency hammers the store from writers (many more
// digests than capacity, forcing constant admit/evict churn), readers,
// and periodic resets; run under -race -count=2 this is the digest-store
// half of the concurrency satellite.
func TestStoreConcurrency(t *testing.T) {
	s := NewStore(8)
	const writers = 8
	const perWriter = 500
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				d := fmt.Sprintf("digest-%d", (w*perWriter+i)%32) // 32 digests into 8 slots
				s.Observe(d, "q "+d, Observation{Duration: time.Duration(i) * time.Microsecond, Outcome: "ok", Edges: 1})
				if i%7 == 0 {
					s.CacheHit(d, "q "+d)
				}
			}
		}(w)
	}
	// Periodic resets race the writers.
	writeWG.Add(1)
	go func() {
		defer writeWG.Done()
		for i := 0; i < 10; i++ {
			time.Sleep(time.Millisecond)
			s.Reset()
		}
	}()
	// Concurrent readers run until the writers are done.
	for r := 0; r < 4; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Snapshot(SortTotalTime, 0)
				if len(snap.Statements) > 8 {
					t.Errorf("cardinality cap violated: %d tracked", len(snap.Statements))
					return
				}
				WritePrometheus(&strings.Builder{}, s, 5)
			}
		}()
	}

	writeWG.Wait()
	close(stop)
	readWG.Wait()
}
