package stats

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// DefaultMaxStatements is the default top-K cardinality cap: the store
// tracks at most this many distinct digests before folding the coldest
// into the "other" bucket.
const DefaultMaxStatements = 256

// OtherDigest is the reserved digest naming the overflow bucket that
// absorbs evicted statements.
const OtherDigest = "other"

// Observation is one completed statement execution to record.
type Observation struct {
	Duration time.Duration
	// Outcome is exec.Outcome(err): "ok", "canceled", "deadline",
	// "limit", "panic", or "error".
	Outcome string
	Edges   int64
	Rows    int64
}

// entry accumulates one digest's aggregates. The counters are atomics
// and the latency histogram has its own short mutex, so the hot path
// never blocks on a store-wide lock once the digest is tracked — the
// same accumulator discipline the per-request telemetry uses.
type entry struct {
	digest string
	text   string

	calls     atomic.Int64
	ok        atomic.Int64
	canceled  atomic.Int64
	deadline  atomic.Int64
	limitHits atomic.Int64
	errors    atomic.Int64
	totalNS   atomic.Int64
	edges     atomic.Int64
	rows      atomic.Int64
	cacheHits atomic.Int64

	lat *obs.Histogram
}

func newEntry(digest, text string) *entry {
	return &entry{digest: digest, text: text, lat: obs.NewHistogram(obs.DefaultLatencyBuckets)}
}

func (e *entry) record(o Observation) {
	e.calls.Add(1)
	switch o.Outcome {
	case "", "ok":
		e.ok.Add(1)
	case "canceled":
		e.canceled.Add(1)
	case "deadline":
		e.deadline.Add(1)
	case "limit":
		e.limitHits.Add(1)
	default: // "error", "panic", and anything future
		e.errors.Add(1)
	}
	e.totalNS.Add(int64(o.Duration))
	e.edges.Add(o.Edges)
	e.rows.Add(o.Rows)
	e.lat.Observe(float64(o.Duration) / float64(time.Millisecond))
}

// absorb folds another entry's totals into e (the eviction path into
// the "other" bucket). The source entry is no longer concurrently
// written when this runs — it has been unlinked under the write lock.
func (e *entry) absorb(src *entry) {
	e.calls.Add(src.calls.Load())
	e.ok.Add(src.ok.Load())
	e.canceled.Add(src.canceled.Load())
	e.deadline.Add(src.deadline.Load())
	e.limitHits.Add(src.limitHits.Load())
	e.errors.Add(src.errors.Load())
	e.totalNS.Add(src.totalNS.Load())
	e.edges.Add(src.edges.Load())
	e.rows.Add(src.rows.Load())
	e.cacheHits.Add(src.cacheHits.Load())
	e.lat.Merge(src.lat.Snapshot())
}

func (e *entry) snapshot() StatementStats {
	s := StatementStats{
		Digest:        e.digest,
		Statement:     e.text,
		Calls:         e.calls.Load(),
		OK:            e.ok.Load(),
		Canceled:      e.canceled.Load(),
		Deadline:      e.deadline.Load(),
		LimitHits:     e.limitHits.Load(),
		Errors:        e.errors.Load(),
		TotalMS:       float64(e.totalNS.Load()) / float64(time.Millisecond),
		EdgesScanned:  e.edges.Load(),
		Rows:          e.rows.Load(),
		PlanCacheHits: e.cacheHits.Load(),
	}
	if s.Calls > 0 {
		s.MeanMS = s.TotalMS / float64(s.Calls)
		s.P50MS = e.lat.Quantile(0.50)
		s.P95MS = e.lat.Quantile(0.95)
		s.P99MS = e.lat.Quantile(0.99)
	}
	return s
}

// StatementStats is the externally visible aggregate for one digest —
// the row shape served by GET /v1/stats/statements.
type StatementStats struct {
	Digest        string  `json:"digest"`
	Statement     string  `json:"statement"`
	Calls         int64   `json:"calls"`
	OK            int64   `json:"ok"`
	Canceled      int64   `json:"canceled,omitempty"`
	Deadline      int64   `json:"deadline,omitempty"`
	LimitHits     int64   `json:"limit,omitempty"`
	Errors        int64   `json:"errors,omitempty"`
	TotalMS       float64 `json:"total_ms"`
	MeanMS        float64 `json:"mean_ms"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	EdgesScanned  int64   `json:"edges_scanned"`
	Rows          int64   `json:"rows"`
	PlanCacheHits int64   `json:"plan_cache_hits"`
}

// Snapshot is a point-in-time view of the whole store.
type Snapshot struct {
	Statements []StatementStats `json:"statements"`
	// Other aggregates every digest evicted to cap cardinality; present
	// only once at least one eviction happened.
	Other *StatementStats `json:"other,omitempty"`
	// Tracked is the number of digests currently held (excluding Other).
	Tracked int `json:"tracked"`
	// Evicted counts digests folded into Other since the last reset.
	Evicted int64 `json:"evicted"`
}

// Sort orders accepted by Store.Snapshot.
const (
	SortTotalTime = "total_time"
	SortCalls     = "calls"
	SortMeanTime  = "mean_time"
)

// Store is a bounded per-digest statement statistics accumulator. The
// digest map is guarded by an RWMutex taken shared on the hot path (a
// tracked digest needs only a read lock plus atomic adds); the write
// lock is taken only to admit a new digest, evict into the overflow
// bucket, or reset. A nil *Store is valid and ignores everything, so
// callers can wire it unconditionally.
type Store struct {
	mu      sync.RWMutex
	max     int
	entries map[string]*entry
	other   *entry
	evicted atomic.Int64
}

// NewStore returns a store tracking at most max digests (plus the
// "other" overflow bucket). max <= 0 uses DefaultMaxStatements.
func NewStore(max int) *Store {
	if max <= 0 {
		max = DefaultMaxStatements
	}
	return &Store{max: max, entries: make(map[string]*entry)}
}

// MaxStatements returns the cardinality cap.
func (s *Store) MaxStatements() int {
	if s == nil {
		return 0
	}
	return s.max
}

// Observe records one execution of the statement identified by digest.
// text is the normalized statement, retained on first sight.
func (s *Store) Observe(digest, text string, o Observation) {
	if s == nil || digest == "" {
		return
	}
	s.entryFor(digest, text).record(o)
}

// CacheHit attributes one plan-cache hit to digest without counting a
// call (the execution that follows records the call itself).
func (s *Store) CacheHit(digest, text string) {
	if s == nil || digest == "" {
		return
	}
	s.entryFor(digest, text).cacheHits.Add(1)
}

// entryFor resolves (or admits) the entry for digest, evicting the
// coldest tracked digest into the overflow bucket when the store is at
// capacity.
func (s *Store) entryFor(digest, text string) *entry {
	s.mu.RLock()
	e := s.entries[digest]
	s.mu.RUnlock()
	if e != nil {
		return e
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e = s.entries[digest]; e != nil {
		return e
	}
	if len(s.entries) >= s.max {
		s.evictColdestLocked()
	}
	e = newEntry(digest, text)
	s.entries[digest] = e
	return e
}

// evictColdestLocked unlinks the entry with the least accumulated time
// (ties broken by fewest calls) and folds it into the overflow bucket.
// New hot statements therefore still surface after the store fills —
// the same dealloc policy pg_stat_statements uses.
func (s *Store) evictColdestLocked() {
	var victim *entry
	for _, e := range s.entries {
		if victim == nil {
			victim = e
			continue
		}
		vt, et := victim.totalNS.Load(), e.totalNS.Load()
		if et < vt || (et == vt && e.calls.Load() < victim.calls.Load()) {
			victim = e
		}
	}
	if victim == nil {
		return
	}
	delete(s.entries, victim.digest)
	if s.other == nil {
		s.other = newEntry(OtherDigest, "")
	}
	s.other.absorb(victim)
	s.evicted.Add(1)
}

// Snapshot returns the current aggregates ordered by sortBy
// (SortTotalTime when empty or unrecognized), truncated to limit rows
// when limit > 0. Safe on a nil receiver.
func (s *Store) Snapshot(sortBy string, limit int) Snapshot {
	if s == nil {
		return Snapshot{}
	}
	s.mu.RLock()
	rows := make([]StatementStats, 0, len(s.entries))
	for _, e := range s.entries {
		rows = append(rows, e.snapshot())
	}
	var other *StatementStats
	if s.other != nil {
		o := s.other.snapshot()
		other = &o
	}
	evicted := s.evicted.Load()
	s.mu.RUnlock()

	less := func(a, b StatementStats) bool { return a.TotalMS > b.TotalMS }
	switch sortBy {
	case SortCalls:
		less = func(a, b StatementStats) bool { return a.Calls > b.Calls }
	case SortMeanTime:
		less = func(a, b StatementStats) bool { return a.MeanMS > b.MeanMS }
	}
	sort.Slice(rows, func(i, j int) bool {
		if less(rows[i], rows[j]) != less(rows[j], rows[i]) {
			return less(rows[i], rows[j])
		}
		return rows[i].Digest < rows[j].Digest // stable tie-break
	})
	tracked := len(rows)
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	return Snapshot{Statements: rows, Other: other, Tracked: tracked, Evicted: evicted}
}

// Reset discards every aggregate, including the overflow bucket and
// eviction count. Safe on a nil receiver.
func (s *Store) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.entries = make(map[string]*entry)
	s.other = nil
	s.evicted.Store(0)
	s.mu.Unlock()
}

// Instrument registers the store's own health metrics on reg:
// cardinality actually tracked and digests evicted into "other".
func (s *Store) Instrument(reg *obs.Registry) {
	if s == nil || reg == nil {
		return
	}
	reg.SetHelp("stats.statements_tracked", "Distinct statement digests currently tracked by the statistics store.")
	reg.GaugeFunc("stats.statements_tracked", func() float64 {
		s.mu.RLock()
		n := len(s.entries)
		s.mu.RUnlock()
		return float64(n)
	})
	reg.SetHelp("stats.statements_evicted", "Statement digests evicted into the 'other' bucket to cap cardinality.")
	reg.GaugeFunc("stats.statements_evicted", func() float64 {
		return float64(s.evicted.Load())
	})
}
