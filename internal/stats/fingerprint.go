// Package stats aggregates per-statement workload statistics, in the
// style of pg_stat_statements: every query is normalized to a stable
// digest by masking literals through the query lexer, and a bounded
// top-K store accumulates calls, outcomes, latency, and scan volume per
// digest. The store is the rollup layer above the per-request telemetry
// from internal/obs — the slow-query log, access log, and trace store
// all carry the same digest so one hot statement can be chased across
// every surface.
package stats

import (
	"hash/fnv"
	"strings"

	"repro/internal/rpe"
)

// MaskedLiteral is the placeholder substituted for every string, int,
// and float literal in the normalized statement text.
const MaskedLiteral = "?"

// Fingerprint normalizes src and returns its digest (16 lowercase hex
// characters) together with the normalized text. Normalization lexes
// the statement with the shared RPE/Nepal lexer, masks every literal
// token as "?", uppercases reserved keywords, and rejoins tokens with
// single spaces — so two statements that differ only in literal values,
// whitespace, or keyword case share a digest, while any structural
// difference (different tokens) yields a different one.
//
// Text that does not lex (the server still counts statements that fail
// to parse) falls back to hashing the whitespace-trimmed raw text with
// an "!" prefix on the normalized form, keeping the digest stable per
// unlexable spelling without colliding with lexable statements.
func Fingerprint(src string) (digest, normalized string) {
	normalized = Normalize(src)
	h := fnv.New64a()
	h.Write([]byte(normalized))
	const hexdigits = "0123456789abcdef"
	sum := h.Sum64()
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = hexdigits[sum&0xf]
		sum >>= 4
	}
	return string(buf[:]), normalized
}

// Normalize returns the literal-masked canonical form of src that
// Fingerprint hashes. Exposed separately so surfaces that show the
// statement shape (the stats endpoint, the -top CLI) can display the
// same text the digest is computed from.
func Normalize(src string) string {
	toks, err := rpe.Lex(src)
	if err != nil {
		return "!" + strings.TrimSpace(src)
	}
	var sb strings.Builder
	sb.Grow(len(src))
	for _, t := range toks {
		if t.Kind == rpe.KindEOF {
			break
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		switch t.Kind {
		case rpe.KindString, rpe.KindInt, rpe.KindFloat:
			sb.WriteString(MaskedLiteral)
		case rpe.KindIdent:
			if isKeyword(t.Text) {
				sb.WriteString(strings.ToUpper(t.Text))
			} else {
				sb.WriteString(t.Text)
			}
		default:
			sb.WriteString(t.Text)
		}
	}
	return sb.String()
}

// isKeyword reports whether an identifier is one of the language's
// case-insensitive reserved words (mirrors the query parser's reserved
// set). Class and variable names stay case-sensitive; keywords fold so
// "select" and "SELECT" digest identically.
func isKeyword(s string) bool {
	switch strings.ToLower(s) {
	case "retrieve", "select", "from", "where", "and", "matches", "paths",
		"at", "not", "exists", "source", "target", "len", "count", "first",
		"last", "time", "when":
		return true
	}
	return false
}
