package stats

import (
	"fmt"
	"math/rand"
	"regexp"
	"testing"
)

// Each group lists spellings that must share one digest: they differ
// only in literal values, whitespace, or keyword case.
var equivalentGroups = [][]string{
	{
		"Host(id=23245)",
		"Host(id=1)",
		"Host( id = 99999 )",
		"Host(id=23245)  ",
	},
	{
		"VM(name='web-1') -> Host",
		"VM(name='db-42') -> Host",
		"VM(name='') -> Host",
	},
	{
		"RETRIEVE PATHS P FROM VM -> Switch -> Host WHERE P AT '2017-02-15 10:00:00'",
		"retrieve paths P from VM -> Switch -> Host where P at '2020-01-01 00:00:00'",
	},
	{
		"Port(speed=10.5)",
		"Port(speed=0.1)",
	},
	{
		"VM{1-3} -> Host",
		"VM{1-3}   ->   Host",
	},
}

// Structurally distinct statements: no two may collide.
var distinctCorpus = []string{
	"Host(id=1)",
	"Host(name='x')",
	"VM(id=1)",
	"VM -> Host",
	"VM -> Switch -> Host",
	"VM -> Switch | Router -> Host",
	"VM{1-3} -> Host",
	"VM{2-3} -> Host", // brace bounds are structure (ints inside braces still mask... see note below)
	"RETRIEVE PATHS P FROM VM -> Host",
	"RETRIEVE PATHS P FROM VM -> Host WHERE P AT '2017-01-01'",
	"SELECT count FROM VM -> Host",
	"Host(id!=1)",
	"Host(id<1)",
	"Host(id>=1)",
	"Host(name=~'web')",
	"VNF:Firewall -> Host",
	"Host.port",
}

func TestFingerprintMasksLiterals(t *testing.T) {
	for gi, group := range equivalentGroups {
		base, baseNorm := Fingerprint(group[0])
		for _, q := range group[1:] {
			d, norm := Fingerprint(q)
			if d != base {
				t.Errorf("group %d: %q -> %s (norm %q), want %s (norm %q) as for %q",
					gi, q, d, norm, base, baseNorm, group[0])
			}
		}
	}
}

func TestFingerprintStructuralDistinct(t *testing.T) {
	seen := make(map[string]string, len(distinctCorpus))
	for _, q := range distinctCorpus {
		d, norm := Fingerprint(q)
		if prev, ok := seen[d]; ok {
			// Brace-range bounds lex as ints and therefore mask; the two
			// brace spellings legitimately share a digest. Everything else
			// colliding is a bug.
			if normAlso := Normalize(prev); normAlso == norm {
				continue
			}
			t.Errorf("digest collision: %q and %q both -> %s", prev, q, d)
		}
		seen[d] = q
	}
}

func TestFingerprintDigestShape(t *testing.T) {
	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	for _, q := range distinctCorpus {
		d, _ := Fingerprint(q)
		if !hex16.MatchString(d) {
			t.Fatalf("digest %q for %q is not 16 lowercase hex chars", d, q)
		}
	}
}

func TestFingerprintUnlexableFallback(t *testing.T) {
	d1, n1 := Fingerprint("Host(id=1) $$$")
	d2, n2 := Fingerprint("Host(id=1) $$$")
	if d1 != d2 {
		t.Fatalf("unlexable text not stable: %s vs %s", d1, d2)
	}
	if n1 != n2 || n1[0] != '!' {
		t.Fatalf("unlexable normalization should carry the ! marker, got %q", n1)
	}
	d3, _ := Fingerprint("Host(id=1) %%%")
	if d3 == d1 {
		t.Fatalf("different unlexable texts collided")
	}
}

// TestFingerprintStabilityFuzz drives randomized literal substitutions
// through statement templates: every instantiation of one template must
// digest identically, and no two distinct templates may ever collide.
func TestFingerprintStabilityFuzz(t *testing.T) {
	templates := []func(r *rand.Rand) string{
		func(r *rand.Rand) string { return fmt.Sprintf("Host(id=%d)", r.Intn(1_000_000)) },
		func(r *rand.Rand) string { return fmt.Sprintf("VM(name='%s') -> Host", randWord(r)) },
		func(r *rand.Rand) string {
			return fmt.Sprintf("RETRIEVE PATHS P FROM VM -> Switch -> Host WHERE P AT '2017-02-%02d %02d:00:00'",
				1+r.Intn(28), r.Intn(24))
		},
		func(r *rand.Rand) string { return fmt.Sprintf("Port(speed=%d.%d)", r.Intn(100), r.Intn(10)) },
		func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT count FROM VM(id=%d) -> Host(id=%d)", r.Intn(999), r.Intn(999))
		},
	}
	r := rand.New(rand.NewSource(42))
	digests := make([]string, len(templates))
	for ti, tmpl := range templates {
		d0, _ := Fingerprint(tmpl(r))
		digests[ti] = d0
		for i := 0; i < 200; i++ {
			d, norm := Fingerprint(tmpl(r))
			if d != d0 {
				t.Fatalf("template %d unstable: digest %s (norm %q) != %s", ti, d, norm, d0)
			}
		}
	}
	for i := range digests {
		for j := i + 1; j < len(digests); j++ {
			if digests[i] == digests[j] {
				t.Fatalf("templates %d and %d collided on %s", i, j, digests[i])
			}
		}
	}
}

func randWord(r *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz-0123456789"
	n := 1 + r.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}
