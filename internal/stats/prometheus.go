package stats

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DefaultPromSeries is how many digests WritePrometheus exposes by
// default. Per-digest series are the one labeled metric family in the
// exposition, so the bound is deliberately small: scrape cardinality
// stays fixed no matter how diverse the workload is; the full table is
// always available from GET /v1/stats/statements.
const DefaultPromSeries = 20

// WritePrometheus appends per-digest statement series in the
// Prometheus text exposition format: the top `limit` digests by total
// time (DefaultPromSeries when limit <= 0) plus the "other" overflow
// bucket when present. Intended to be written after the registry's own
// obs.WritePrometheus output on /metrics.
func WritePrometheus(w io.Writer, s *Store, limit int) {
	if s == nil {
		return
	}
	if limit <= 0 {
		limit = DefaultPromSeries
	}
	snap := s.Snapshot(SortTotalTime, limit)
	rows := snap.Statements
	if snap.Other != nil {
		rows = append(rows, *snap.Other)
	}
	if len(rows) == 0 {
		return
	}
	families := []struct {
		name  string
		help  string
		value func(StatementStats) string
	}{
		{"statement_calls_total", "Executions per statement digest (top statements by total time).",
			func(r StatementStats) string { return strconv.FormatInt(r.Calls, 10) }},
		{"statement_seconds_total", "Total execution time per statement digest, in seconds.",
			func(r StatementStats) string { return strconv.FormatFloat(r.TotalMS/1000, 'g', -1, 64) }},
		{"statement_errors_total", "Non-ok outcomes (errors, cancellations, deadline and limit hits) per statement digest.",
			func(r StatementStats) string {
				return strconv.FormatInt(r.Errors+r.Canceled+r.Deadline+r.LimitHits, 10)
			}},
		{"statement_edges_scanned_total", "Edges scanned per statement digest.",
			func(r StatementStats) string { return strconv.FormatInt(r.EdgesScanned, 10) }},
		{"statement_rows_total", "Result rows returned per statement digest.",
			func(r StatementStats) string { return strconv.FormatInt(r.Rows, 10) }},
		{"statement_plan_cache_hits_total", "Plan-cache hits per statement digest.",
			func(r StatementStats) string { return strconv.FormatInt(r.PlanCacheHits, 10) }},
	}
	for _, f := range families {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s counter\n", f.name)
		for _, r := range rows {
			fmt.Fprintf(w, "%s{digest=\"%s\"} %s\n", f.name, labelEscape(r.Digest), f.value(r))
		}
	}
}

// labelEscape escapes a label value per the exposition format (digests
// are hex so this is a no-op in practice, but "other" and future labels
// go through the same path).
func labelEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}
