package obs

import (
	"io"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"
)

// AccessEntry is one structured access-log record: exactly one is
// emitted per HTTP request the server sees, whatever its fate —
// admission rejections, malformed bodies, and governance aborts
// included — so the log is a complete, greppable request ledger keyed
// by trace ID.
type AccessEntry struct {
	// Time is the request arrival time.
	Time time.Time `json:"time"`
	// TraceID tags the request's end-to-end trace; the same ID appears
	// in the response header, error envelope, slow log, and trace store.
	TraceID string `json:"trace_id"`
	Method  string `json:"method"`
	Path    string `json:"path"`
	Status  int    `json:"status"`
	// Outcome is the request's terminal classification: "ok" or the
	// error envelope's machine-readable code ("overloaded", "deadline",
	// "limit", "parse_error", "bad_request", "internal", ...).
	Outcome    string  `json:"outcome"`
	DurationMS float64 `json:"duration_ms"`
	// AdmissionWaitMS is the time spent queued for an execution slot
	// (0 for endpoints that bypass admission).
	AdmissionWaitMS float64 `json:"admission_wait_ms,omitempty"`
	// StatementHash is the stable SHA-256 handle of the statement text
	// (the same handle /v1/prepare returns), for cardinality-safe
	// aggregation; Statement is the raw text.
	StatementHash string `json:"statement_hash,omitempty"`
	Statement     string `json:"statement,omitempty"`
	// Digest is the literal-masked statement fingerprint — the key into
	// GET /v1/stats/statements, shared with the slow log and trace store.
	Digest string `json:"digest,omitempty"`
	// EdgesScanned is the query's engine-side scan volume.
	EdgesScanned int  `json:"edges_scanned,omitempty"`
	Degraded     bool `json:"degraded,omitempty"`
	// BytesOut is the response body size written.
	BytesOut int64 `json:"bytes_out"`
	// Epoch is the primary epoch the response was served under (0 when
	// the node has none), correlating each request with its failover era.
	Epoch uint64 `json:"epoch,omitempty"`
	Error string `json:"error,omitempty"`
}

// AccessLog writes one JSON line per entry to an underlying writer,
// serialized so concurrent requests never interleave partial lines. A
// nil *AccessLog is a valid disabled log.
type AccessLog struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte // reused line buffer; guarded by mu
}

// NewAccessLog returns a log writing to w; a nil w returns a nil
// (disabled) log.
func NewAccessLog(w io.Writer) *AccessLog {
	if w == nil {
		return nil
	}
	return &AccessLog{w: w}
}

// Log writes one entry as a single JSON line. Safe on a nil receiver.
//
// The line is encoded by hand into a buffer reused across entries:
// the access log sits on the per-request telemetry path, where
// reflection-based encoding was a measurable share of the traced
// overhead BenchmarkTelemetryOverhead pins. The output is plain JSON
// that round-trips through encoding/json.
func (l *AccessLog) Log(e AccessEntry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	b := l.buf[:0]
	b = append(b, `{"time":"`...)
	b = e.Time.AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","trace_id":`...)
	b = appendJSONString(b, e.TraceID)
	b = append(b, `,"method":`...)
	b = appendJSONString(b, e.Method)
	b = append(b, `,"path":`...)
	b = appendJSONString(b, e.Path)
	b = append(b, `,"status":`...)
	b = strconv.AppendInt(b, int64(e.Status), 10)
	b = append(b, `,"outcome":`...)
	b = appendJSONString(b, e.Outcome)
	b = append(b, `,"duration_ms":`...)
	b = strconv.AppendFloat(b, e.DurationMS, 'f', -1, 64)
	if e.AdmissionWaitMS != 0 {
		b = append(b, `,"admission_wait_ms":`...)
		b = strconv.AppendFloat(b, e.AdmissionWaitMS, 'f', -1, 64)
	}
	if e.StatementHash != "" {
		b = append(b, `,"statement_hash":`...)
		b = appendJSONString(b, e.StatementHash)
	}
	if e.Statement != "" {
		b = append(b, `,"statement":`...)
		b = appendJSONString(b, e.Statement)
	}
	if e.Digest != "" {
		b = append(b, `,"digest":`...)
		b = appendJSONString(b, e.Digest)
	}
	if e.EdgesScanned != 0 {
		b = append(b, `,"edges_scanned":`...)
		b = strconv.AppendInt(b, int64(e.EdgesScanned), 10)
	}
	if e.Degraded {
		b = append(b, `,"degraded":true`...)
	}
	b = append(b, `,"bytes_out":`...)
	b = strconv.AppendInt(b, e.BytesOut, 10)
	if e.Epoch != 0 {
		b = append(b, `,"epoch":`...)
		b = strconv.AppendUint(b, e.Epoch, 10)
	}
	if e.Error != "" {
		b = append(b, `,"error":`...)
		b = appendJSONString(b, e.Error)
	}
	b = append(b, '}', '\n')
	l.w.Write(b)
	l.buf = b
	l.mu.Unlock()
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, escaping quotes,
// backslashes, control characters, and invalid UTF-8.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '"':
				b = append(b, '\\', '"')
			case '\\':
				b = append(b, '\\', '\\')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, `�`...)
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}
