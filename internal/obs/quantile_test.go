package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramQuantilePinned pins p50/p95/p99 against a known uniform
// distribution: values 1..100 into decade-width buckets put exactly 10
// observations in each bucket, so linear interpolation lands on the
// exact percentile values.
func TestHistogramQuantilePinned(t *testing.T) {
	bounds := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	h := NewHistogram(bounds)
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.50, 50},
		{0.95, 95},
		{0.99, 99},
		{0.10, 10},
		{1.00, 100},
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestHistogramQuantileSkewed pins quantiles on a skewed distribution:
// 90 fast observations in the first bucket, 10 slow in the last.
func TestHistogramQuantileSkewed(t *testing.T) {
	h := NewHistogram([]float64{1, 1000})
	for i := 0; i < 90; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(900)
	}
	// p50 rank 50 falls in the first bucket (cum 90): 0 + 1*(50/90).
	if got, want := h.Quantile(0.50), 50.0/90.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("p50 = %v, want %v", got, want)
	}
	// p95 rank 95 falls in the (1,1000] bucket: 1 + 999*(95-90)/10.
	if got, want := h.Quantile(0.95), 1+999*0.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("p95 = %v, want %v", got, want)
	}
	// p99 rank 99: 1 + 999*(99-90)/10.
	if got, want := h.Quantile(0.99), 1+999*0.9; math.Abs(got-want) > 1e-9 {
		t.Errorf("p99 = %v, want %v", got, want)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %v, want 0", got)
	}
	h := NewHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	// Observations past the last bound clamp to the largest finite bound.
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("overflow-bucket quantile = %v, want clamp to 2", got)
	}
	// q outside [0,1] clamps rather than panicking.
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Errorf("q<0 should clamp to 0: %v vs %v", got, h.Quantile(0))
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Errorf("q>1 should clamp to 1: %v vs %v", got, h.Quantile(1))
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{10, 20})
	b := NewHistogram([]float64{10, 20})
	a.Observe(5)
	b.Observe(15)
	b.Observe(25)
	a.Merge(b.Snapshot())
	snap := a.Snapshot()
	if snap.Count != 3 || math.Abs(snap.Sum-45) > 1e-9 {
		t.Fatalf("merged count/sum = %d/%v, want 3/45", snap.Count, snap.Sum)
	}
	if snap.Buckets[0].Count != 1 || snap.Buckets[1].Count != 1 || snap.Buckets[2].Count != 1 {
		t.Fatalf("merged buckets wrong: %+v", snap.Buckets)
	}
	// Mismatched layouts fall back to totals-only absorption.
	c := NewHistogram([]float64{1})
	c.Merge(b.Snapshot())
	if got := c.Snapshot(); got.Count != 2 || math.Abs(got.Sum-40) > 1e-9 {
		t.Fatalf("mismatched merge count/sum = %d/%v, want 2/40", got.Count, got.Sum)
	}
	// Nil receiver and empty snapshot are no-ops.
	var nilH *Histogram
	nilH.Merge(b.Snapshot())
	before := a.Snapshot().Count
	a.Merge(HistogramSnapshot{})
	if a.Snapshot().Count != before {
		t.Fatalf("empty-snapshot merge changed the histogram")
	}
}

// TestSlowLogEntryFormatDigest is the format regression for the digest
// satellite: the digest renders on its own line between trace_id and
// metrics, and is omitted entirely when empty.
func TestSlowLogEntryFormatDigest(t *testing.T) {
	e := SlowLogEntry{
		When:     time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC),
		Query:    "Host(id=1)",
		Duration: 1500 * time.Millisecond,
		Outcome:  "ok",
		TraceID:  "74ab12cd",
		Digest:   "deadbeefcafef00d",
		Metrics:  "edges=12",
	}
	got := e.Format()
	want := "SLOW QUERY (1.50s) at 2026-08-09 12:00:00.000\n" +
		"  query: Host(id=1)\n" +
		"  outcome: ok\n" +
		"  trace_id: 74ab12cd\n" +
		"  digest: deadbeefcafef00d\n" +
		"  metrics: edges=12\n"
	if got != want {
		t.Errorf("Format with digest:\n got %q\nwant %q", got, want)
	}
	e.Digest = ""
	if strings.Contains(e.Format(), "digest:") {
		t.Errorf("empty digest should not render: %q", e.Format())
	}
}

// TestAccessLogDigestField is the JSON access-log regression: the
// digest field appears after statement, round-trips through
// encoding/json, and is omitted when empty.
func TestAccessLogDigestField(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLog(&buf)
	l.Log(AccessEntry{
		Time:      time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC),
		TraceID:   "t1",
		Method:    "POST",
		Path:      "/v1/query",
		Status:    200,
		Outcome:   "ok",
		Statement: "Host(id=1)",
		Digest:    "deadbeefcafef00d",
	})
	line := buf.String()
	if !strings.Contains(line, `"statement":"Host(id=1)","digest":"deadbeefcafef00d"`) {
		t.Errorf("digest not encoded after statement: %s", line)
	}
	var back AccessEntry
	if err := json.Unmarshal([]byte(line), &back); err != nil {
		t.Fatalf("access line does not round-trip: %v\n%s", err, line)
	}
	if back.Digest != "deadbeefcafef00d" {
		t.Errorf("round-tripped digest = %q", back.Digest)
	}

	buf.Reset()
	l.Log(AccessEntry{Time: time.Now(), TraceID: "t2", Method: "GET", Path: "/healthz", Status: 200, Outcome: "ok"})
	if strings.Contains(buf.String(), "digest") {
		t.Errorf("empty digest should be omitted: %s", buf.String())
	}
}

// TestTraceStoreConcurrency is the trace-store half of the concurrency
// satellite: concurrent Observe (insert + evict), Get, and List under
// -race -count=2.
func TestTraceStoreConcurrency(t *testing.T) {
	s := NewTraceStore(16, 50*time.Millisecond)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				tr := &RequestTrace{
					ID:       fmt.Sprintf("w%d-%d", w, i),
					Start:    time.Now(),
					Method:   "POST",
					Path:     "/v1/query",
					Digest:   "deadbeefcafef00d",
					Status:   200,
					Outcome:  "ok",
					Duration: time.Duration(i%100) * time.Millisecond, // mix of slow and fast
				}
				if i%17 == 0 {
					tr.Status = 500
					tr.Outcome = "internal"
				}
				s.Observe(tr)
			}
		}(w)
	}
	var readWG sync.WaitGroup
	for r := 0; r < 4; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				for _, tr := range s.List() {
					if tr.Digest != "deadbeefcafef00d" {
						t.Errorf("trace %s lost its digest: %q", tr.ID, tr.Digest)
						return
					}
				}
				s.Get(fmt.Sprintf("w%d-%d", r, i%400))
				s.Len()
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	readWG.Wait()
}
