package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- Histogram ---

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines (meaningful under -race) and checks no observation is
// lost: the count, sum, and bucket totals all reconcile.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i % 200))
			}
		}(g)
	}
	wg.Wait()
	snap := h.Snapshot()
	if want := int64(goroutines * perG); snap.Count != want {
		t.Fatalf("count = %d, want %d", snap.Count, want)
	}
	var sum int64
	for _, b := range snap.Buckets {
		sum += b.Count
	}
	if sum != snap.Count {
		t.Fatalf("bucket counts total %d, count %d", sum, snap.Count)
	}
	last := snap.Buckets[len(snap.Buckets)-1]
	if last.CumulativeCount != snap.Count {
		t.Fatalf("+Inf cumulative = %d, want %d", last.CumulativeCount, snap.Count)
	}
}

// TestHistogramBucketBoundaries pins the inclusivity convention: a
// value exactly on a bound lands in that bound's bucket (le is
// inclusive, matching Prometheus).
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	for _, v := range []float64{0, 1, 1.5, 10, 10.5, 1e9} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if len(snap.Buckets) != 3 {
		t.Fatalf("got %d buckets, want 3", len(snap.Buckets))
	}
	// le=1 holds {0, 1}; le=10 holds {1.5, 10}; +Inf holds {10.5, 1e9}.
	wantPer := []int64{2, 2, 2}
	wantCum := []int64{2, 4, 6}
	for i, b := range snap.Buckets {
		if b.Count != wantPer[i] || b.CumulativeCount != wantCum[i] {
			t.Errorf("bucket %d (le=%v): count=%d cum=%d, want %d/%d",
				i, b.UpperBound, b.Count, b.CumulativeCount, wantPer[i], wantCum[i])
		}
	}
	if !math.IsInf(snap.Buckets[2].UpperBound, 1) {
		t.Errorf("last bucket bound = %v, want +Inf", snap.Buckets[2].UpperBound)
	}
	if snap.Sum != 0+1+1.5+10+10.5+1e9 {
		t.Errorf("sum = %v", snap.Sum)
	}
}

// TestHistogramSnapshotJSONRoundTrip checks a snapshot survives
// marshal/unmarshal exactly, including the +Inf overflow bound that
// JSON cannot represent as a number.
func TestHistogramSnapshotJSONRoundTrip(t *testing.T) {
	h := NewHistogram([]float64{0.5, 5})
	for _, v := range []float64{0.1, 3, 100} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back HistogramSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != snap.Count || back.Sum != snap.Sum {
		t.Fatalf("round trip count/sum = %d/%v, want %d/%v", back.Count, back.Sum, snap.Count, snap.Sum)
	}
	if len(back.Buckets) != len(snap.Buckets) {
		t.Fatalf("round trip buckets = %d, want %d", len(back.Buckets), len(snap.Buckets))
	}
	for i := range back.Buckets {
		a, b := snap.Buckets[i], back.Buckets[i]
		if a.Count != b.Count || a.CumulativeCount != b.CumulativeCount {
			t.Errorf("bucket %d counts differ after round trip", i)
		}
		if a.UpperBound != b.UpperBound && !(math.IsInf(a.UpperBound, 1) && math.IsInf(b.UpperBound, 1)) {
			t.Errorf("bucket %d bound %v != %v", i, a.UpperBound, b.UpperBound)
		}
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	if snap := h.Snapshot(); snap.Count != 0 {
		t.Fatalf("nil snapshot count = %d", snap.Count)
	}
}

// --- Prometheus exposition ---

// TestWritePrometheusFormat pins the exposition format: # HELP and
// # TYPE headers, sanitized names, cumulative histogram _bucket series
// with an +Inf bound, _sum/_count, and labeled constant-1 info gauges.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.requests").Add(3)
	r.SetHelp("server.requests", "Total HTTP requests.")
	r.Gauge("server.in_flight").Set(2)
	r.GaugeFunc("nepal.uptime_seconds", func() float64 { return 1.5 })
	r.SetInfo("nepal.build_info", map[string]string{"version": "v1.2.3", "commit": "abc"})
	h := r.HistogramBuckets("server.request_latency_ms", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var buf bytes.Buffer
	WritePrometheus(&buf, r)
	out := buf.String()

	for _, want := range []string{
		"# HELP server_requests Total HTTP requests.\n",
		"# TYPE server_requests counter\n",
		"server_requests 3\n",
		"# TYPE server_in_flight gauge\n",
		"server_in_flight 2\n",
		"# TYPE nepal_uptime_seconds gauge\n",
		"nepal_uptime_seconds 1.5\n",
		"# TYPE nepal_build_info gauge\n",
		`nepal_build_info{commit="abc",version="v1.2.3"} 1` + "\n",
		"# TYPE server_request_latency_ms histogram\n",
		`server_request_latency_ms_bucket{le="1"} 1` + "\n",
		`server_request_latency_ms_bucket{le="10"} 2` + "\n",
		`server_request_latency_ms_bucket{le="+Inf"} 3` + "\n",
		"server_request_latency_ms_sum 55.5\n",
		"server_request_latency_ms_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got ---\n%s", want, out)
		}
	}
	// Every non-comment line must be "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.Count(line, " ") != 1 && !strings.Contains(line, "} ") {
			t.Errorf("malformed sample line %q", line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		if PromName(name) != name {
			t.Errorf("unsanitized metric name in %q", line)
		}
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"server.requests":  "server_requests",
		"wal.fsync_ms":     "wal_fsync_ms",
		"9lives":           "_9lives",
		"a-b c":            "a_b_c",
		"ok_name:and:more": "ok_name:and:more",
	} {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// --- Trace IDs and context propagation ---

func TestParseTraceID(t *testing.T) {
	valid := "4bf92f3577b34da6a3ce929d0e0e4736"
	cases := []struct {
		in, want string
	}{
		{valid, valid},
		{strings.ToUpper(valid), valid},                 // normalized to lowercase
		{"00-" + valid + "-00f067aa0ba902b7-01", valid}, // traceparent
		{"", ""},
		{"short", ""},
		{valid + "00", ""},            // wrong length
		{strings.Repeat("0", 32), ""}, // all-zero sentinel
		{strings.Repeat("g", 32), ""}, // non-hex
		{"00-" + strings.Repeat("0", 32) + "-x", ""}, // traceparent, zero id
	}
	for _, c := range cases {
		if got := ParseTraceID(c.in); got != c.want {
			t.Errorf("ParseTraceID(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNewTraceIDWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if ParseTraceID(id) != id {
			t.Fatalf("NewTraceID produced unparseable id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

func TestTraceContextPropagation(t *testing.T) {
	ctx := context.Background()
	if TraceIDFrom(ctx) != "" {
		t.Fatal("empty context has a trace id")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("empty context has a span")
	}
	id := NewTraceID()
	ctx = WithTraceID(ctx, id)
	if got := TraceIDFrom(ctx); got != id {
		t.Fatalf("TraceIDFrom = %q, want %q", got, id)
	}
	sp := NewSpan("Request", "GET /")
	ctx = ContextWithSpan(ctx, sp)
	if got := SpanFromContext(ctx); got != sp {
		t.Fatalf("SpanFromContext = %p, want %p", got, sp)
	}
	// Nil-safe no-op attachment.
	if got := WithTraceID(ctx, ""); got != ctx {
		t.Error("WithTraceID(\"\") should return ctx unchanged")
	}
	if got := ContextWithSpan(ctx, nil); got != ctx {
		t.Error("ContextWithSpan(nil) should return ctx unchanged")
	}
}

// TestTraceIDOffPathZeroAlloc pins the disabled-telemetry contract:
// looking up a trace ID or span on a context that carries neither
// allocates nothing.
func TestTraceIDOffPathZeroAlloc(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(100, func() {
		if TraceIDFrom(ctx) != "" {
			t.Fatal("unexpected trace id")
		}
		if SpanFromContext(ctx) != nil {
			t.Fatal("unexpected span")
		}
	}); n != 0 {
		t.Fatalf("off-path lookups allocate %v times per run, want 0", n)
	}
}

// BenchmarkTraceIDPropagation compares the context-lookup cost with
// telemetry off (miss) and on (hit). The off path is the one every
// untraced operation pays; it must stay allocation-free.
func BenchmarkTraceIDPropagation(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if TraceIDFrom(ctx) != "" || SpanFromContext(ctx) != nil {
				b.Fatal("unexpected telemetry")
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		ctx := WithTraceID(context.Background(), NewTraceID())
		ctx = ContextWithSpan(ctx, NewSpan("Request", ""))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if TraceIDFrom(ctx) == "" || SpanFromContext(ctx) == nil {
				b.Fatal("missing telemetry")
			}
		}
	})
}

// --- Trace store ---

func mkTrace(id string, start time.Time, outcome string, dur time.Duration) *RequestTrace {
	return &RequestTrace{
		ID: id, Start: start, Method: "POST", Path: "/v1/query",
		Status: 200, Outcome: outcome, Duration: dur,
	}
}

// TestTraceStoreTailSampling checks the two-ring retention: a burst of
// healthy traffic evicts old healthy traces but cannot flush errored or
// slow ones out of the interesting ring.
func TestTraceStoreTailSampling(t *testing.T) {
	base := time.Now()
	s := NewTraceStore(4, 100*time.Millisecond)

	bad := mkTrace("bad1", base, "http_429", time.Millisecond)
	slow := mkTrace("slow1", base.Add(time.Millisecond), "ok", 150*time.Millisecond)
	s.Observe(bad)
	s.Observe(slow)
	// Flood with healthy traces: 10 > keep, so every early entry leaves
	// the recent ring.
	for i := 0; i < 10; i++ {
		s.Observe(mkTrace(fmt.Sprintf("ok%02d", i), base.Add(time.Duration(2+i)*time.Millisecond), "ok", time.Millisecond))
	}

	if got := s.Get("bad1"); got != bad {
		t.Fatal("errored trace evicted by healthy burst")
	}
	if got := s.Get("slow1"); got != slow {
		t.Fatal("slow trace evicted by healthy burst")
	}
	if s.Get("ok00") != nil {
		t.Fatal("old healthy trace should have been evicted")
	}
	if s.Get("ok09") == nil {
		t.Fatal("newest healthy trace missing")
	}

	list := s.List()
	// 4 recent + 2 interesting.
	if len(list) != 6 {
		t.Fatalf("List len = %d, want 6", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i].Start.After(list[i-1].Start) {
			t.Fatal("List not newest-first")
		}
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
}

// TestTraceStoreInterestingEviction fills the interesting ring past
// capacity and checks byID stays consistent (no leaks, no dangling
// lookups) when a trace leaves both rings.
func TestTraceStoreInterestingEviction(t *testing.T) {
	base := time.Now()
	s := NewTraceStore(2, time.Hour)
	for i := 0; i < 5; i++ {
		s.Observe(mkTrace(fmt.Sprintf("err%d", i), base.Add(time.Duration(i)*time.Millisecond), "internal", time.Millisecond))
	}
	// keep=2: recent holds err3,err4; interesting holds err3,err4 too.
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	for i := 0; i < 3; i++ {
		if s.Get(fmt.Sprintf("err%d", i)) != nil {
			t.Fatalf("err%d should be fully evicted", i)
		}
	}
	for i := 3; i < 5; i++ {
		if s.Get(fmt.Sprintf("err%d", i)) == nil {
			t.Fatalf("err%d should be retained", i)
		}
	}
}

func TestTraceStoreNilSafe(t *testing.T) {
	var s *TraceStore
	s.Observe(mkTrace("x", time.Now(), "ok", 0))
	if s.Get("x") != nil || s.List() != nil || s.Len() != 0 {
		t.Fatal("nil store should be inert")
	}
}

func TestRequestTraceInteresting(t *testing.T) {
	slow := 100 * time.Millisecond
	cases := []struct {
		name string
		tr   *RequestTrace
		want bool
	}{
		{"nil", nil, false},
		{"healthy", mkTrace("a", time.Time{}, "ok", time.Millisecond), false},
		{"errored outcome", mkTrace("b", time.Time{}, "http_429", time.Millisecond), true},
		{"slow", mkTrace("c", time.Time{}, "ok", slow), true},
		{"degraded", &RequestTrace{ID: "d", Outcome: "ok", Degraded: true}, true},
		{"error text", &RequestTrace{ID: "e", Outcome: "ok", Error: "boom"}, true},
	}
	for _, c := range cases {
		if got := c.tr.Interesting(slow); got != c.want {
			t.Errorf("%s: Interesting = %v, want %v", c.name, got, c.want)
		}
	}
}

// --- Access log ---

func TestAccessLogJSONLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLog(&buf)
	l.Log(AccessEntry{
		Time: time.Now(), TraceID: "abc", Method: "POST", Path: "/v1/query",
		Status: 200, Outcome: "ok", DurationMS: 1.5, BytesOut: 42,
	})
	l.Log(AccessEntry{
		Time: time.Now(), TraceID: "def", Method: "POST", Path: "/v1/query",
		Status: 429, Outcome: "saturated", DurationMS: 0.1, Error: "queue full",
	})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var e AccessEntry
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatalf("line 2 is not JSON: %v", err)
	}
	if e.TraceID != "def" || e.Status != 429 || e.Outcome != "saturated" || e.Error != "queue full" {
		t.Fatalf("round-tripped entry = %+v", e)
	}
}

func TestAccessLogNilSafe(t *testing.T) {
	if l := NewAccessLog(nil); l != nil {
		t.Fatal("NewAccessLog(nil) should be nil")
	}
	var l *AccessLog
	l.Log(AccessEntry{TraceID: "x"}) // must not panic
}
