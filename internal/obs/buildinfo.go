package obs

import (
	"runtime/debug"
	"time"
)

// RegisterBuildInfo publishes process identity and liveness metrics on
// the registry: nepal.build_info (a constant-1 info gauge labeled with
// the module version and VCS commit from the embedded Go build info)
// and nepal.uptime_seconds (a gauge computed from the given start
// time). It returns the resolved version and commit for callers that
// also surface them elsewhere (e.g. /healthz). Safe on a nil registry.
func RegisterBuildInfo(r *Registry, start time.Time) (version, commit string) {
	version, commit = "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				commit = s.Value
			}
		}
	}
	if r == nil {
		return version, commit
	}
	r.SetInfo("nepal.build_info", map[string]string{
		"version": version,
		"commit":  commit,
	})
	r.SetHelp("nepal.build_info", "Build identity of the running nepal binary (constant 1).")
	r.GaugeFunc("nepal.uptime_seconds", func() float64 {
		return time.Since(start).Seconds()
	})
	r.SetHelp("nepal.uptime_seconds", "Seconds since the server process started.")
	return version, commit
}
