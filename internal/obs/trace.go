package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// Request-scoped trace context: every request entering the system gets a
// 128-bit trace ID (16 random bytes, 32 lowercase hex characters — the
// W3C trace-context trace-id format), carried on the wire in the
// X-Nepal-Trace header and in-process on the context. Spans, slow-log
// entries, access-log lines, and error envelopes are all tagged with it,
// so a client-reported failure is greppable end to end.
//
// Propagation is context-based and allocation-free when disabled:
// TraceIDFrom and SpanFromContext on a context that carries nothing are
// plain Value lookups returning zero values — no allocation, no branch
// beyond the lookup itself (pinned by BenchmarkTraceIDPropagation).

// TraceHeader is the HTTP header carrying the trace ID. The server
// forwards an incoming value (so callers chain traces across hops) or
// generates a fresh ID, and always echoes the ID on the response.
const TraceHeader = "X-Nepal-Trace"

// traceIDLen is the hex length of a trace ID (128 bits).
const traceIDLen = 32

// traceFallback seeds the collision-resistant fallback IDs used if the
// system's random source ever fails.
var traceFallback atomic.Uint64

// NewTraceID returns a fresh 32-hex-character random trace ID.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// The platform random source failed (effectively impossible on
		// supported systems); fall back to a time+counter ID rather than
		// propagate an error through every request path.
		return fmt.Sprintf("%016x%016x", uint64(time.Now().UnixNano()), traceFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// ParseTraceID extracts a trace ID from a header value: either a bare
// 32-hex-character ID or a W3C traceparent ("00-<32 hex>-<16 hex>-<2
// hex>"). It returns the normalized (lowercase) ID, or "" when the value
// is empty or malformed — callers then mint a fresh ID.
func ParseTraceID(v string) string {
	if len(v) > traceIDLen && v[2] == '-' {
		// traceparent form: version "-" trace-id "-" parent-id "-" flags.
		if len(v) < 3+traceIDLen {
			return ""
		}
		v = v[3 : 3+traceIDLen]
	}
	if len(v) != traceIDLen {
		return ""
	}
	out := make([]byte, 0, traceIDLen)
	zero := true
	for i := 0; i < len(v); i++ {
		c := v[i]
		switch {
		case c >= '0' && c <= '9':
			if c != '0' {
				zero = false
			}
		case c >= 'a' && c <= 'f':
			zero = false
		case c >= 'A' && c <= 'F':
			c += 'a' - 'A'
			zero = false
		default:
			return ""
		}
		out = append(out, c)
	}
	if zero { // all-zero is the W3C "invalid" sentinel
		return ""
	}
	return string(out)
}

type traceIDKey struct{}
type spanKey struct{}

// WithTraceID returns a context carrying the trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom returns the context's trace ID, or "" when none is set.
// The miss path performs no allocation.
func TraceIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// ContextWithSpan returns a context carrying the span, under which
// downstream components (the executor, the WAL) attach their own child
// spans to the request's trace.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the context's span, or nil when tracing is off.
// The miss path performs no allocation.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
