package obs

import "math"

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) of the observed
// distribution from the histogram's buckets, the same way Prometheus's
// histogram_quantile does: find the bucket the target rank falls in and
// linearly interpolate between its bounds. Values landing in the +Inf
// overflow bucket are reported as the highest finite bound — the
// histogram cannot know how far past it they went. Returns 0 when the
// histogram is empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	h.mu.Lock()
	count := h.count
	counts := make([]int64, len(h.counts))
	copy(counts, h.counts)
	h.mu.Unlock()
	if count == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := q * float64(count)
	var cum int64
	lower := 0.0
	for i, n := range counts {
		if n > 0 && float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				// Overflow bucket: clamp to the largest finite bound.
				return h.bounds[len(h.bounds)-1]
			}
			upper := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			return lower + (upper-lower)*frac
		}
		cum += n
		if i < len(h.bounds) {
			lower = h.bounds[i]
		}
	}
	return lower
}

// Merge folds a snapshot of another histogram into h. When the bucket
// layouts match (same number of buckets), per-bucket counts are added
// and quantile estimates stay meaningful; otherwise only the total
// count and sum are absorbed, which keeps counts and means exact but
// degrades quantiles. Used by the statement-stats store to fold evicted
// digests into its overflow bucket. Safe on a nil receiver.
func (h *Histogram) Merge(s HistogramSnapshot) {
	if h == nil || s.Count == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(s.Buckets) == len(h.counts) {
		aligned := true
		for i, b := range s.Buckets {
			ub := math.Inf(1)
			if i < len(h.bounds) {
				ub = h.bounds[i]
			}
			if b.UpperBound != ub && !(math.IsInf(b.UpperBound, 1) && math.IsInf(ub, 1)) {
				aligned = false
				break
			}
		}
		if aligned {
			for i, b := range s.Buckets {
				h.counts[i] += b.Count
			}
			h.count += s.Count
			h.sum += s.Sum
			return
		}
	}
	// Mismatched layouts: absorb totals only, dropping bucket detail.
	h.counts[len(h.counts)-1] += s.Count
	h.count += s.Count
	h.sum += s.Sum
}
