package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a process-wide collection of named metrics. All operations
// are safe for concurrent use; reads (Snapshot, Dump) observe each metric
// atomically. A nil *Registry is a valid no-op registry: metric lookups
// return nil metrics whose operations are no-ops, so instrumented code
// can hold an optional registry without branching.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
	infos    map[string]map[string]string
	help     map[string]string
}

// Default is the process-wide registry the CLIs and benchmark harness
// publish into.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() float64),
		infos:    make(map[string]map[string]string),
		help:     make(map[string]string),
	}
}

// Counter returns the named counter, creating it on first use. Safe on a
// nil receiver (returns nil, whose Add is a no-op).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with
// the default latency buckets (milliseconds).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram(DefaultLatencyBuckets)
		r.hists[name] = h
	}
	return h
}

// HistogramBuckets returns the named histogram, creating it on first use
// with the given upper bounds instead of the latency defaults — size
// distributions (edges scanned, bytes) use DefaultSizeBuckets here. An
// already-existing histogram is returned as-is, whatever its bounds.
func (r *Registry) HistogramBuckets(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers (or replaces) a derived gauge whose value is
// computed at read time — uptime, queue depths owned by other
// components. The function must be safe for concurrent use. Safe on a
// nil receiver.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// SetInfo registers (or replaces) an info metric: a constant-1 sample
// whose labels carry build/identity metadata (nepal.build_info). Safe on
// a nil receiver.
func (r *Registry) SetInfo(name string, labels map[string]string) {
	if r == nil {
		return
	}
	cp := make(map[string]string, len(labels))
	for k, v := range labels {
		cp[k] = v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.infos[name] = cp
}

// SetHelp attaches a human-readable description to a metric name, used
// by the Prometheus exposition's # HELP line. Safe on a nil receiver.
func (r *Registry) SetHelp(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = text
}

// helpFor returns the registered help text ("" when none).
func (r *Registry) helpFor(name string) string {
	if r == nil {
		return ""
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.help[name]
}

// Snapshot returns a consistent point-in-time copy of every metric:
// counters and gauges by value, derived gauges evaluated, info metrics
// as their label maps, histograms as HistogramSnapshot.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	funcs := make(map[string]func() float64, len(r.funcs))
	for name, fn := range r.funcs {
		funcs[name] = fn
	}
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.funcs)+len(r.infos))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	for name, labels := range r.infos {
		cp := make(map[string]string, len(labels))
		for k, v := range labels {
			cp[k] = v
		}
		out[name] = cp
	}
	r.mu.RUnlock()
	// Derived gauges run outside the registry lock: the functions may
	// take other locks of their own.
	for name, fn := range funcs {
		out[name] = fn()
	}
	return out
}

// Dump writes every metric as plain text, one per line, sorted by name.
// Counters and gauges print as "name value"; histograms print their
// count, sum, mean, and cumulative bucket counts.
func (r *Registry) Dump(w io.Writer) {
	if r == nil {
		return
	}
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		switch v := snap[name].(type) {
		case map[string]string: // info metric: constant 1 with labels
			pairs := make([]string, 0, len(v))
			for _, k := range sortedKeys(v) {
				pairs = append(pairs, fmt.Sprintf("%s=%q", k, v[k]))
			}
			fmt.Fprintf(w, "%s{%s} 1\n", name, strings.Join(pairs, ","))
		case HistogramSnapshot:
			fmt.Fprintf(w, "%s_count %d\n", name, v.Count)
			fmt.Fprintf(w, "%s_sum %.3f\n", name, v.Sum)
			if v.Count > 0 {
				fmt.Fprintf(w, "%s_mean %.3f\n", name, v.Sum/float64(v.Count))
			}
			for _, b := range v.Buckets {
				le := "+Inf"
				if !math.IsInf(b.UpperBound, 1) {
					le = strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", b.UpperBound), "0"), ".")
				}
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, b.CumulativeCount)
			}
		default:
			fmt.Fprintf(w, "%s %v\n", name, v)
		}
	}
}

// Publish registers the registry under name in the process expvar set, so
// an attached pprof/debug HTTP server exposes it at /debug/vars. It must
// be called at most once per name per process (expvar panics on
// duplicates); the CLIs call it once at startup.
func (r *Registry) Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value. Safe on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by delta. Safe on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets are the histogram upper bounds used for query and
// operator latencies, in milliseconds: sub-millisecond interactive probes
// through the paper's ~10s mining queries.
var DefaultLatencyBuckets = []float64{
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
}

// DefaultSizeBuckets are the histogram upper bounds for size-like
// distributions (edges scanned per query, bytes appended): decade steps
// from single elements to the ten-million range of full-topology scans.
var DefaultSizeBuckets = []float64{
	1, 10, 100, 1000, 10000, 100000, 1e6, 1e7,
}

// Histogram is a fixed-bucket histogram. Bucket boundaries are upper
// bounds; an implicit +Inf bucket catches the rest. A short mutex guards
// observation so snapshots are exactly consistent (bucket totals always
// equal the count) — histograms are observed per query evaluation, not in
// per-edge hot paths, so the lock is uncontended in practice.
type Histogram struct {
	bounds []float64

	mu     sync.Mutex
	counts []int64 // len(bounds)+1, last is +Inf
	count  int64
	sum    float64
}

// NewHistogram returns a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// BucketSnapshot is one bucket of a histogram snapshot.
type BucketSnapshot struct {
	UpperBound      float64 `json:"-"`          // +Inf for the overflow bucket
	Count           int64   `json:"count"`      // observations in this bucket alone
	CumulativeCount int64   `json:"cumulative"` // observations at or below UpperBound
	// LE mirrors UpperBound for JSON ("+Inf" for the overflow bucket,
	// which encoding/json cannot represent as a number). Filled by
	// MarshalJSON; parsed back by UnmarshalJSON.
	LE string `json:"le"`
}

// MarshalJSON encodes the bucket with its bound as a string, since the
// overflow bucket's +Inf bound is not a valid JSON number. This keeps
// both Report JSON files and expvar's /debug/vars encodable.
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	type alias BucketSnapshot
	a := alias(b)
	if math.IsInf(b.UpperBound, 1) {
		a.LE = "+Inf"
	} else {
		a.LE = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
	}
	return json.Marshal(a)
}

// UnmarshalJSON restores UpperBound from the string bound.
func (b *BucketSnapshot) UnmarshalJSON(data []byte) error {
	type alias BucketSnapshot
	var a alias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*b = BucketSnapshot(a)
	if a.LE == "+Inf" {
		b.UpperBound = math.Inf(1)
	} else if a.LE != "" {
		v, err := strconv.ParseFloat(a.LE, 64)
		if err != nil {
			return err
		}
		b.UpperBound = v
	}
	return nil
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets []BucketSnapshot `json:"buckets"`
}

// Snapshot returns a consistent copy of the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := HistogramSnapshot{
		Count:   h.count,
		Sum:     h.sum,
		Buckets: make([]BucketSnapshot, len(h.counts)),
	}
	var cum int64
	for i, n := range h.counts {
		cum += n
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		out.Buckets[i] = BucketSnapshot{UpperBound: ub, Count: n, CumulativeCount: cum}
	}
	return out
}
