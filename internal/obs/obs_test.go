package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanLifecycle(t *testing.T) {
	tr := &Tracer{}
	root := tr.StartSpan("Eval", "VNF()->Host()")
	sel := root.StartChild("Select", "Host(id=5)")
	sel.AddRows(0, 1)
	sel.Finish()
	ext := root.Child("Extend", "Vertical()")
	ext.AddDuration(3 * time.Millisecond)
	ext.AddDuration(2 * time.Millisecond)
	ext.AddRows(10, 7)
	ext.Add("edges_scanned", 40)
	ext.Add("edges_scanned", 2)
	root.Finish()

	if got := len(tr.Roots()); got != 1 {
		t.Fatalf("roots = %d, want 1", got)
	}
	if root.Name() != "Eval" || root.Detail() != "VNF()->Host()" {
		t.Errorf("root identity = %q/%q", root.Name(), root.Detail())
	}
	if d := root.Duration(); d <= 0 {
		t.Errorf("finished root duration = %v, want > 0", d)
	}
	// Finishing twice must not double-count.
	d1 := root.Duration()
	root.Finish()
	if d2 := root.Duration(); d2 != d1 {
		t.Errorf("double Finish changed duration: %v -> %v", d1, d2)
	}
	if got := len(root.Children()); got != 2 {
		t.Fatalf("children = %d, want 2", got)
	}
	if d := ext.Duration(); d != 5*time.Millisecond {
		t.Errorf("accumulated extend duration = %v, want 5ms", d)
	}
	if in, out := ext.Rows(); in != 10 || out != 7 {
		t.Errorf("extend rows = %d/%d, want 10/7", in, out)
	}
	if n := ext.Counter("edges_scanned"); n != 42 {
		t.Errorf("edges_scanned = %d, want 42", n)
	}
	var names []string
	root.Walk(func(s *Span) { names = append(names, s.Name()) })
	if strings.Join(names, ",") != "Eval,Select,Extend" {
		t.Errorf("walk order = %v", names)
	}
}

func TestNilSpanAndTracerAreSafe(t *testing.T) {
	var tr *Tracer
	s := tr.StartSpan("x", "y")
	if s != nil {
		t.Fatal("nil tracer must return nil span")
	}
	// Every operation must be a no-op, not a panic.
	s.Finish()
	s.AddDuration(time.Second)
	s.AddRows(1, 2)
	s.Add("c", 3)
	s.SetDetail("d")
	s.Walk(func(*Span) { t.Fatal("nil span walked") })
	c := s.StartChild("a", "b")
	if c != nil || s.Child("a", "b") != nil {
		t.Fatal("nil span must return nil children")
	}
	if s.Duration() != 0 || s.Counter("c") != 0 || s.Annotations() != "" {
		t.Fatal("nil span must read as zero")
	}
	if got := RenderTree(nil); got != "" {
		t.Fatalf("RenderTree(nil) = %q", got)
	}
}

func TestRenderTreeShape(t *testing.T) {
	root := NewSpan("Eval", "expr")
	ext := root.Child("Extend", "Vertical()")
	ext.Add("edges_scanned", 12)
	ext.AddRows(3, 4)
	root.Finish()
	out := RenderTree(root)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("render lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Eval expr  [time=") {
		t.Errorf("root line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  Extend Vertical()") ||
		!strings.Contains(lines[1], "edges_scanned=12") ||
		!strings.Contains(lines[1], "rows_in=3") ||
		!strings.Contains(lines[1], "rows_out=4") {
		t.Errorf("extend line = %q", lines[1])
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 9, 10, 11, 99, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 9 {
		t.Fatalf("count = %d, want 9", s.Count)
	}
	if math.Abs(s.Sum-1232.0) > 1e-9 {
		t.Errorf("sum = %v, want 1232", s.Sum)
	}
	// Upper bounds are inclusive: values land in the first bucket whose
	// bound >= v.
	wantPer := []int64{2, 3, 3, 1} // <=1, <=10, <=100, +Inf
	wantCum := []int64{2, 5, 8, 9}
	if len(s.Buckets) != 4 {
		t.Fatalf("buckets = %d, want 4", len(s.Buckets))
	}
	for i, b := range s.Buckets {
		if b.Count != wantPer[i] || b.CumulativeCount != wantCum[i] {
			t.Errorf("bucket %d (le=%v): count=%d cum=%d, want %d/%d",
				i, b.UpperBound, b.Count, b.CumulativeCount, wantPer[i], wantCum[i])
		}
	}
	if !math.IsInf(s.Buckets[3].UpperBound, 1) {
		t.Errorf("last bucket bound = %v, want +Inf", s.Buckets[3].UpperBound)
	}
}

func TestRegistryCreatesAndReuses(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("engine.evals")
	c.Add(2)
	if r.Counter("engine.evals") != c {
		t.Error("counter not reused by name")
	}
	r.Gauge("engine.live").Set(7)
	r.Histogram("engine.latency_ms").Observe(3.5)
	snap := r.Snapshot()
	if snap["engine.evals"].(int64) != 2 {
		t.Errorf("counter snapshot = %v", snap["engine.evals"])
	}
	if snap["engine.live"].(int64) != 7 {
		t.Errorf("gauge snapshot = %v", snap["engine.live"])
	}
	hs, ok := snap["engine.latency_ms"].(HistogramSnapshot)
	if !ok || hs.Count != 1 {
		t.Errorf("histogram snapshot = %#v", snap["engine.latency_ms"])
	}

	var sb strings.Builder
	r.Dump(&sb)
	out := sb.String()
	for _, want := range []string{
		"engine.evals 2\n",
		"engine.live 7\n",
		"engine.latency_ms_count 1\n",
		`engine.latency_ms_bucket{le="5"} 1`,
		`engine.latency_ms_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q in:\n%s", want, out)
		}
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("a").Add(1)
	r.Gauge("b").Set(1)
	r.Histogram("c").Observe(1)
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot must be nil")
	}
	var sb strings.Builder
	r.Dump(&sb)
	if sb.Len() != 0 {
		t.Error("nil registry dump must be empty")
	}
}

// TestRegistrySnapshotUnderConcurrentWriters hammers one registry from
// many goroutines while snapshotting concurrently; run under -race this
// is the data-race check, and the final totals must be exact.
func TestRegistrySnapshotUnderConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 2000
	var readersWG, writersWG sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshot readers: each observed snapshot must be
	// internally consistent (histogram bucket totals match its count).
	for i := 0; i < 2; i++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				if v, ok := snap["shared"]; ok && v.(int64) < 0 {
					t.Error("negative counter observed")
					return
				}
				if hs, ok := snap["lat"].(HistogramSnapshot); ok {
					var per int64
					for _, b := range hs.Buckets {
						per += b.Count
					}
					if per != hs.Count {
						t.Errorf("inconsistent histogram snapshot: buckets=%d count=%d", per, hs.Count)
						return
					}
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				r.Counter("shared").Add(1)
				r.Counter("own." + string(rune('a'+w))).Add(2)
				r.Gauge("g").Set(int64(i))
				r.Histogram("lat").Observe(float64(i % 50))
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readersWG.Wait()

	if got := r.Counter("shared").Value(); got != writers*perWriter {
		t.Errorf("shared counter = %d, want %d", got, writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		name := "own." + string(rune('a'+w))
		if got := r.Counter(name).Value(); got != 2*perWriter {
			t.Errorf("%s = %d, want %d", name, got, 2*perWriter)
		}
	}
	hs := r.Histogram("lat").Snapshot()
	if hs.Count != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", hs.Count, writers*perWriter)
	}
	var cum int64
	for _, b := range hs.Buckets {
		cum += b.Count
	}
	if cum != hs.Count {
		t.Errorf("bucket total %d != count %d", cum, hs.Count)
	}
}

func TestSlowLogThresholdAndRing(t *testing.T) {
	var sb strings.Builder
	l := NewSlowLog(10*time.Millisecond, &sb)
	if l.Observe(SlowLogEntry{Query: "fast", Duration: 9 * time.Millisecond}) {
		t.Error("fast query captured")
	}
	if !l.Observe(SlowLogEntry{Query: "slow", Duration: 11 * time.Millisecond, Metrics: "edges_scanned=9"}) {
		t.Error("slow query not captured")
	}
	if got := len(l.Entries()); got != 1 {
		t.Fatalf("entries = %d, want 1", got)
	}
	out := sb.String()
	if !strings.Contains(out, "SLOW QUERY") || !strings.Contains(out, "slow") ||
		!strings.Contains(out, "edges_scanned=9") {
		t.Errorf("slow log output = %q", out)
	}

	// Ring bound: capture far more than the cap; the oldest fall off.
	for i := 0; i < DefaultSlowLogKeep*2; i++ {
		l.Observe(SlowLogEntry{Query: "q", Duration: time.Second})
	}
	if got := len(l.Entries()); got != DefaultSlowLogKeep {
		t.Errorf("ring length = %d, want %d", got, DefaultSlowLogKeep)
	}
	if l.Total() != 1+DefaultSlowLogKeep*2 {
		t.Errorf("total = %d", l.Total())
	}
}

func TestSlowLogNilIsSafe(t *testing.T) {
	var l *SlowLog
	if l.Observe(SlowLogEntry{Duration: time.Hour}) {
		t.Error("nil slow log captured")
	}
	if l.Entries() != nil || l.Total() != 0 || l.Threshold() != 0 {
		t.Error("nil slow log must read as empty")
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Nanosecond:   "500ns",
		1500 * time.Nanosecond:  "1.5µs",
		2500 * time.Microsecond: "2.50ms",
		3 * time.Second:         "3.00s",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}
