package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) over the registry,
// so any standard scraper can consume Nepal's metrics without an
// adapter. The registry's dotted names ("server.request_latency_ms")
// sanitize to underscore form ("server_request_latency_ms"); histograms
// emit the conventional cumulative _bucket{le="..."} series plus _sum
// and _count; info metrics emit a constant-1 gauge with labels.

// PrometheusContentType is the Content-Type of the exposition format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName sanitizes a registry metric name into a valid Prometheus
// metric name: every character outside [a-zA-Z0-9_:] becomes '_'.
func PromName(name string) string {
	var sb strings.Builder
	sb.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			sb.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// promFloat renders a sample value; Prometheus accepts Go's shortest
// round-trippable float form.
func promFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// writeHeader emits the # HELP and # TYPE lines of one metric family.
// Help falls back to the original registry name, which documents at
// least the pre-sanitization spelling.
func (r *Registry) writeHeader(w io.Writer, name, pname, typ string) {
	help := r.helpFor(name)
	if help == "" {
		help = name
	}
	fmt.Fprintf(w, "# HELP %s %s\n", pname, promEscape(help))
	fmt.Fprintf(w, "# TYPE %s %s\n", pname, typ)
}

// WritePrometheus writes every metric of the registry to w in the
// Prometheus text exposition format, families sorted by name. Safe on a
// nil registry (writes nothing).
func WritePrometheus(w io.Writer, r *Registry) {
	if r == nil {
		return
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	funcs := make(map[string]func() float64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	infos := make(map[string]map[string]string, len(r.infos))
	for k, v := range r.infos {
		infos[k] = v
	}
	r.mu.RUnlock()

	for _, name := range sortedKeys(counters) {
		pname := PromName(name)
		r.writeHeader(w, name, pname, "counter")
		fmt.Fprintf(w, "%s %d\n", pname, counters[name].Value())
	}
	for _, name := range sortedKeys(gauges) {
		pname := PromName(name)
		r.writeHeader(w, name, pname, "gauge")
		fmt.Fprintf(w, "%s %d\n", pname, gauges[name].Value())
	}
	for _, name := range sortedKeys(funcs) {
		pname := PromName(name)
		r.writeHeader(w, name, pname, "gauge")
		fmt.Fprintf(w, "%s %s\n", pname, promFloat(funcs[name]()))
	}
	for _, name := range sortedKeys(infos) {
		pname := PromName(name)
		r.writeHeader(w, name, pname, "gauge")
		labels := infos[name]
		pairs := make([]string, 0, len(labels))
		for _, k := range sortedKeys(labels) {
			pairs = append(pairs, fmt.Sprintf("%s=%q", PromName(k), promEscape(labels[k])))
		}
		fmt.Fprintf(w, "%s{%s} 1\n", pname, strings.Join(pairs, ","))
	}
	for _, name := range sortedKeys(hists) {
		pname := PromName(name)
		r.writeHeader(w, name, pname, "histogram")
		snap := hists[name].Snapshot()
		for _, b := range snap.Buckets {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pname, promFloat(b.UpperBound), b.CumulativeCount)
		}
		fmt.Fprintf(w, "%s_sum %s\n", pname, promFloat(snap.Sum))
		fmt.Fprintf(w, "%s_count %d\n", pname, snap.Count)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
