package obs

import (
	"sort"
	"sync"
	"time"
)

// RequestTrace is one completed request's end-to-end record: its
// identity, outcome, and the root span whose children are the server
// phases (admission, decode, execute, encode), with the engine's
// operator DAG and the WAL append nested below.
type RequestTrace struct {
	ID            string
	Start         time.Time
	Method        string
	Path          string
	Statement     string
	StatementHash string
	// Digest is the literal-masked statement fingerprint shared with the
	// access log, slow log, and the per-digest statistics store.
	Digest       string
	Status       int
	Outcome      string
	Duration     time.Duration
	EdgesScanned int
	Degraded     bool
	Error        string
	Root         *Span
}

// Interesting reports whether the trace should survive tail-sampling
// eviction: errored, degraded, or slower than the threshold.
func (t *RequestTrace) Interesting(slow time.Duration) bool {
	if t == nil {
		return false
	}
	if t.Outcome != "" && t.Outcome != "ok" {
		return true
	}
	if t.Degraded || t.Error != "" {
		return true
	}
	return slow > 0 && t.Duration >= slow
}

// DefaultTraceKeep is the per-ring retention when the server does not
// configure one.
const DefaultTraceKeep = 256

// DefaultSlowTraceThreshold marks a request slow enough to always keep.
const DefaultSlowTraceThreshold = 250 * time.Millisecond

// TraceStore retains recent request traces in memory with tail-sampling:
// two bounded rings, one of the most recent requests regardless of
// outcome and one of "interesting" requests (errored, degraded, or
// slow), so a burst of healthy traffic cannot flush the failures an
// operator is trying to diagnose. Lookup by ID covers both rings. A nil
// store ignores writes and returns nothing.
type TraceStore struct {
	mu     sync.RWMutex
	keep   int
	slow   time.Duration
	recent []*RequestTrace // ring, oldest first
	kept   []*RequestTrace // interesting ring, oldest first
	byID   map[string]*traceRef
}

// traceRef counts how many rings reference a trace so byID entries are
// evicted only when the last ring slot holding them is overwritten.
type traceRef struct {
	trace *RequestTrace
	refs  int
}

// NewTraceStore returns a store retaining up to keep traces in each
// ring; keep <= 0 uses DefaultTraceKeep. slow <= 0 uses
// DefaultSlowTraceThreshold.
func NewTraceStore(keep int, slow time.Duration) *TraceStore {
	if keep <= 0 {
		keep = DefaultTraceKeep
	}
	if slow <= 0 {
		slow = DefaultSlowTraceThreshold
	}
	return &TraceStore{
		keep: keep,
		slow: slow,
		byID: make(map[string]*traceRef),
	}
}

// Observe records a completed request trace. Safe on a nil store.
func (s *TraceStore) Observe(t *RequestTrace) {
	if s == nil || t == nil || t.ID == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.push(&s.recent, t)
	if t.Interesting(s.slow) {
		s.push(&s.kept, t)
	}
}

// push appends t to the ring, evicting the oldest entry (and its byID
// reference) once the ring is full. Caller holds s.mu.
func (s *TraceStore) push(ring *[]*RequestTrace, t *RequestTrace) {
	if len(*ring) >= s.keep {
		old := (*ring)[0]
		copy(*ring, (*ring)[1:])
		(*ring)[len(*ring)-1] = nil
		*ring = (*ring)[:len(*ring)-1]
		if ref := s.byID[old.ID]; ref != nil {
			ref.refs--
			if ref.refs <= 0 {
				delete(s.byID, old.ID)
			}
		}
	}
	*ring = append(*ring, t)
	ref := s.byID[t.ID]
	if ref == nil {
		ref = &traceRef{trace: t}
		s.byID[t.ID] = ref
	}
	ref.refs++
}

// Get returns the trace with the given ID, or nil. Safe on a nil store.
func (s *TraceStore) Get(id string) *RequestTrace {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if ref := s.byID[id]; ref != nil {
		return ref.trace
	}
	return nil
}

// List returns every retained trace, newest first. Safe on a nil store.
func (s *TraceStore) List() []*RequestTrace {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	out := make([]*RequestTrace, 0, len(s.byID))
	for _, ref := range s.byID {
		out = append(out, ref.trace)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.After(out[j].Start)
		}
		return out[i].ID > out[j].ID
	})
	return out
}

// Len returns the number of distinct retained traces.
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byID)
}
