package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// SlowLogEntry is one captured slow evaluation: the query text, how long
// it took, how it terminated, the plan it ran, its engine counters, and
// — when the query was traced — the full operator span tree.
type SlowLogEntry struct {
	When     time.Time
	Query    string
	Duration time.Duration
	// Outcome records how the query terminated: "ok", "canceled",
	// "deadline", "limit", "panic", or "error". Empty is treated as "ok"
	// (entries from callers that predate outcome tracking).
	Outcome string
	// TraceID links the entry to its end-to-end request trace when the
	// query arrived over the server (empty for embedded callers).
	TraceID string
	// Digest is the statement's literal-masked fingerprint, linking the
	// entry to its per-digest aggregate in GET /v1/stats/statements.
	Digest  string
	Plan    string
	Metrics string
	Trace   *Span
}

// Aborted reports whether the entry's query terminated abnormally.
func (e SlowLogEntry) Aborted() bool {
	return e.Outcome != "" && e.Outcome != "ok"
}

// Format renders the entry as a multi-line text block.
func (e SlowLogEntry) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "SLOW QUERY (%s) at %s\n", FormatDuration(e.Duration),
		e.When.UTC().Format("2006-01-02 15:04:05.000"))
	fmt.Fprintf(&sb, "  query: %s\n", e.Query)
	if e.Outcome != "" {
		fmt.Fprintf(&sb, "  outcome: %s\n", e.Outcome)
	}
	if e.TraceID != "" {
		fmt.Fprintf(&sb, "  trace_id: %s\n", e.TraceID)
	}
	if e.Digest != "" {
		fmt.Fprintf(&sb, "  digest: %s\n", e.Digest)
	}
	if e.Metrics != "" {
		fmt.Fprintf(&sb, "  metrics: %s\n", e.Metrics)
	}
	if e.Plan != "" {
		sb.WriteString(indent(e.Plan, "  plan> "))
	}
	if e.Trace != nil {
		sb.WriteString(indent(RenderTree(e.Trace), "  trace> "))
	}
	return sb.String()
}

func indent(block, prefix string) string {
	lines := strings.Split(strings.TrimRight(block, "\n"), "\n")
	var sb strings.Builder
	for _, l := range lines {
		sb.WriteString(prefix + l + "\n")
	}
	return sb.String()
}

// SlowLog captures evaluations whose duration meets a threshold. It keeps
// the most recent entries in a bounded ring and optionally streams each
// captured entry to a writer. A nil *SlowLog is a valid disabled log.
type SlowLog struct {
	threshold time.Duration
	w         io.Writer

	mu      sync.Mutex
	ring    []SlowLogEntry
	next    int
	total   int64
	maxKeep int
}

// DefaultSlowLogKeep bounds how many recent entries a SlowLog retains.
const DefaultSlowLogKeep = 64

// NewSlowLog returns a log capturing evaluations of at least threshold.
// w may be nil to only retain entries for programmatic access.
func NewSlowLog(threshold time.Duration, w io.Writer) *SlowLog {
	return &SlowLog{threshold: threshold, w: w, maxKeep: DefaultSlowLogKeep}
}

// Threshold returns the capture threshold (0 for a nil log).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Observe records the evaluation if it meets the threshold, returning
// whether it was captured. Aborted entries (Outcome other than "ok") are
// captured regardless of duration — a query canceled 1ms in is exactly
// what the log exists to explain. Safe on a nil receiver.
func (l *SlowLog) Observe(e SlowLogEntry) bool {
	if l == nil {
		return false
	}
	if e.Duration < l.threshold && !e.Aborted() {
		return false
	}
	if e.When.IsZero() {
		e.When = time.Now()
	}
	l.mu.Lock()
	l.total++
	if len(l.ring) < l.maxKeep {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.next] = e
		l.next = (l.next + 1) % l.maxKeep
	}
	w := l.w
	l.mu.Unlock()
	if w != nil {
		fmt.Fprint(w, e.Format())
	}
	return true
}

// Entries returns the retained entries, oldest first.
func (l *SlowLog) Entries() []SlowLogEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowLogEntry, 0, len(l.ring))
	if len(l.ring) < l.maxKeep {
		out = append(out, l.ring...)
		return out
	}
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// Total reports how many entries have been captured over the log's
// lifetime (including ones evicted from the ring).
func (l *SlowLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
