// Package obs is Nepal's observability layer: operator-DAG tracing
// (Tracer/Span), a process-wide registry of named counters, gauges, and
// latency histograms, and a slow-query log. It is dependency-free — only
// the standard library — so every other package (plan, exec, graph, the
// backends, core, the CLIs) can import it without cycles.
//
// The design follows the shape of per-operator execution statistics in
// distributed path engines: a query evaluation produces a tree of spans
// mirroring the Select/Extend/ExtendBlock/Union operator DAG, each span
// accumulating wall time, rows in/out, and backend probe counts. The §6
// evaluation questions ("where does the bottom-up slow tail come from?",
// "what did edge subclassing eliminate?") are answered by reading the
// counters off this tree instead of timing from the outside.
//
// All Span and Tracer methods are nil-receiver safe, so instrumented code
// threads an optional *Span without branching at every site; the disabled
// path costs one nil check.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracer creates root spans for traced evaluations. A nil *Tracer is a
// valid no-op tracer: StartSpan returns a nil span and every operation on
// it is a no-op.
type Tracer struct {
	mu    sync.Mutex
	roots []*Span
}

// StartSpan starts a new root span. Safe on a nil receiver (returns nil).
func (t *Tracer) StartSpan(name, detail string) *Span {
	if t == nil {
		return nil
	}
	s := NewSpan(name, detail)
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Roots returns the root spans started so far, in start order.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.roots))
	copy(out, t.roots)
	return out
}

// Span is one operator (or phase) of a traced evaluation. Spans accumulate
// rather than measure once: an Extend operator that probes the adjacency
// index 500 times during a search owns one span whose duration and
// counters are the totals across all 500 probes.
type Span struct {
	name   string
	detail string

	mu      sync.Mutex
	started time.Time
	dur     time.Duration
	running bool
	rowsIn  int64
	rowsOut int64
	// counters is a small ordered set (spans carry a handful of names at
	// most); a slice avoids a per-span map allocation on the traced hot
	// path and linear search beats hashing at this size.
	counters []spanCounter
	children []*Span
}

type spanCounter struct {
	name string
	val  int64
}

// NewSpan returns a started standalone span (no tracer).
func NewSpan(name, detail string) *Span {
	return &Span{name: name, detail: detail, started: time.Now(), running: true}
}

// StartChild starts a nested span. Safe on a nil receiver (returns nil).
func (s *Span) StartChild(name, detail string) *Span {
	if s == nil {
		return nil
	}
	c := NewSpan(name, detail)
	s.mu.Lock()
	s.addChild(c)
	s.mu.Unlock()
	return c
}

// Child adds a nested accumulator span that is not running: its duration
// grows only through AddDuration. Operators that execute as many short
// interleaved probes (Extend) use this form.
func (s *Span) Child(name, detail string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, detail: detail}
	s.mu.Lock()
	s.addChild(c)
	s.mu.Unlock()
	return c
}

// addChild appends under s.mu, sizing the first allocation for the
// common fan-out (a request root holds a handful of phase spans, an
// evaluation a handful of operators) instead of append's growth chain.
func (s *Span) addChild(c *Span) {
	if s.children == nil {
		s.children = make([]*Span, 0, 8)
	}
	s.children = append(s.children, c)
}

// Finish stops the span clock, folding the running time into the
// accumulated duration. Finishing twice is harmless.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.running {
		s.dur += time.Since(s.started)
		s.running = false
	}
	s.mu.Unlock()
}

// AddDuration folds d into the span's accumulated duration.
func (s *Span) AddDuration(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.dur += d
	s.mu.Unlock()
}

// AddRows accumulates rows flowing into and out of the operator.
func (s *Span) AddRows(in, out int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rowsIn += in
	s.rowsOut += out
	s.mu.Unlock()
}

// Add accumulates a named counter (e.g. "edges_scanned", "probes").
func (s *Span) Add(counter string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.counters {
		if s.counters[i].name == counter {
			s.counters[i].val += n
			s.mu.Unlock()
			return
		}
	}
	if s.counters == nil {
		// One sized allocation instead of append's 1→2→4 growth chain.
		s.counters = make([]spanCounter, 0, 4)
	}
	s.counters = append(s.counters, spanCounter{name: counter, val: n})
	s.mu.Unlock()
}

// SetDetail replaces the span's detail string.
func (s *Span) SetDetail(detail string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.detail = detail
	s.mu.Unlock()
}

// Name returns the span's operator name ("" for a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Detail returns the span's detail string.
func (s *Span) Detail() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.detail
}

// Duration returns the accumulated duration; for a still-running span it
// includes the time since start.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return s.dur + time.Since(s.started)
	}
	return s.dur
}

// Rows returns the accumulated rows in and out.
func (s *Span) Rows() (in, out int64) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rowsIn, s.rowsOut
}

// Counter returns one named counter's value.
func (s *Span) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.counters {
		if s.counters[i].name == name {
			return s.counters[i].val
		}
	}
	return 0
}

// CounterOK returns one named counter's value and whether it is set,
// without allocating (unlike Counters). Per-request readers — the
// trace-stats fold that runs on every observed query — use this form.
func (s *Span) CounterOK(name string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.counters {
		if s.counters[i].name == name {
			return s.counters[i].val, true
		}
	}
	return 0, false
}

// Counters returns a copy of the span's named counters.
func (s *Span) Counters() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counters))
	for _, c := range s.counters {
		out[c.name] = c.val
	}
	return out
}

// Children returns the span's nested spans in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Walk visits the span and all descendants depth-first.
func (s *Span) Walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children() {
		c.Walk(fn)
	}
}

// Annotations renders the span's measurements as a one-line suffix:
// time, rows in/out when set, then named counters in sorted order.
func (s *Span) Annotations() string {
	if s == nil {
		return ""
	}
	var parts []string
	parts = append(parts, "time="+FormatDuration(s.Duration()))
	in, out := s.Rows()
	if in != 0 {
		parts = append(parts, fmt.Sprintf("rows_in=%d", in))
	}
	parts = append(parts, fmt.Sprintf("rows_out=%d", out))
	cs := s.Counters()
	names := make([]string, 0, len(cs))
	for k := range cs {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", k, cs[k]))
	}
	return strings.Join(parts, " ")
}

// RenderTree renders the span tree as an indented text block, one span
// per line with its annotations.
func RenderTree(s *Span) string {
	var sb strings.Builder
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		if s == nil {
			return
		}
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(s.Name())
		if d := s.Detail(); d != "" {
			sb.WriteString(" " + d)
		}
		sb.WriteString("  [" + s.Annotations() + "]\n")
		for _, c := range s.Children() {
			walk(c, depth+1)
		}
	}
	walk(s, 0)
	return sb.String()
}

// FormatDuration renders a duration compactly for annotation suffixes.
func FormatDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	}
	return fmt.Sprintf("%.2fs", d.Seconds())
}
