// Package workload generates the synthetic evaluation datasets standing
// in for the paper's production inventories (§6): the virtualized network
// service graph (~2,000 nodes / ~11,000 edges over the netmodel schema),
// the legacy flat topology (parameterized size, loadable with a single
// edge class or with 66 type-indicator subclasses for the ablation), a
// churn engine that replays days of inventory updates to build history,
// and the query-instance samplers the benchmark harness draws from.
//
// All generators are deterministic given their seed.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/netmodel"
)

// ServiceConfig sizes the virtualized service graph. Defaults reproduce
// the paper's dataset scale: ~2k nodes, ~11k edges, 33 distinct VNFs.
type ServiceConfig struct {
	Seed       int64
	VNFs       int // distinct VNF instances (paper: 33)
	VFCsPerVNF int // mean virtual function components per VNF
	IdleVMs    int // VMs hosting no VFC (targets of the NOT EXISTS example)
	Hosts      int
	TORs       int
	Spines     int
	VNets      int
	VRouters   int
	VMsPerNet  int // mean VMs attached per virtual network
}

// DefaultServiceConfig returns the paper-scale configuration.
func DefaultServiceConfig() ServiceConfig {
	return ServiceConfig{
		Seed:       1,
		VNFs:       33,
		VFCsPerVNF: 20,
		IdleVMs:    60,
		Hosts:      320,
		TORs:       32,
		Spines:     6,
		VNets:      40,
		VRouters:   12,
		VMsPerNet:  24,
	}
}

// Service holds the generated graph's handles for query sampling.
type Service struct {
	Config   ServiceConfig
	VNFs     []graph.UID
	VFCs     []graph.UID
	VMs      []graph.UID
	Hosts    []graph.UID
	Switches []graph.UID
	VNets    []graph.UID
	VRouters []graph.UID
	// HostOf maps VM -> host; NetsOf maps VM -> attached virtual networks.
	HostOf map[graph.UID]graph.UID
	VNFOf  map[graph.UID]graph.UID // VFC -> VNF
}

// BuildService populates st with the virtualized service topology.
func BuildService(st *graph.Store, cfg ServiceConfig) (*Service, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Service{Config: cfg, HostOf: map[graph.UID]graph.UID{}, VNFOf: map[graph.UID]graph.UID{}}
	nextID := int64(0)
	id := func() int64 { nextID++; return nextID }

	node := func(class, name string, extra graph.Fields) (graph.UID, error) {
		f := graph.Fields{"id": id(), "name": name}
		for k, v := range extra {
			f[k] = v
		}
		return st.InsertNode(class, f)
	}
	edge := func(class string, src, dst graph.UID, extra graph.Fields) error {
		f := graph.Fields{"id": id()}
		for k, v := range extra {
			f[k] = v
		}
		_, err := st.InsertEdge(class, src, dst, f)
		return err
	}
	biLink := func(a, b graph.UID) error {
		if err := edge(netmodel.PhysicalLink, a, b, nil); err != nil {
			return err
		}
		return edge(netmodel.PhysicalLink, b, a, nil)
	}

	// ---- Physical fabric: hosts, leaf/spine switches. ----
	for i := 0; i < cfg.Hosts; i++ {
		uid, err := node(netmodel.NodeClassOfHostKind(i), fmt.Sprintf("host-%d", i),
			graph.Fields{"rack": fmt.Sprintf("r%d", i/16), "status": "Active"})
		if err != nil {
			return nil, err
		}
		s.Hosts = append(s.Hosts, uid)
	}
	var tors, spines []graph.UID
	for i := 0; i < cfg.TORs; i++ {
		uid, err := node("TORSwitch", fmt.Sprintf("tor-%d", i), graph.Fields{"status": "Active", "portCount": 48})
		if err != nil {
			return nil, err
		}
		tors = append(tors, uid)
		s.Switches = append(s.Switches, uid)
	}
	for i := 0; i < cfg.Spines; i++ {
		uid, err := node("SpineSwitch", fmt.Sprintf("spine-%d", i), graph.Fields{"status": "Active", "portCount": 128})
		if err != nil {
			return nil, err
		}
		spines = append(spines, uid)
		s.Switches = append(s.Switches, uid)
	}
	// Each host dual-homes on two TORs; each TOR uplinks to two spines.
	for i, host := range s.Hosts {
		if err := biLink(host, tors[i%len(tors)]); err != nil {
			return nil, err
		}
		if err := biLink(host, tors[(i+1)%len(tors)]); err != nil {
			return nil, err
		}
	}
	for i, tor := range tors {
		if err := biLink(tor, spines[i%len(spines)]); err != nil {
			return nil, err
		}
		if err := biLink(tor, spines[(i+1)%len(spines)]); err != nil {
			return nil, err
		}
	}

	// ---- Overlay: virtual networks and routers. ----
	for i := 0; i < cfg.VNets; i++ {
		uid, err := node(netmodel.NodeClassOfVNetKind(i), fmt.Sprintf("vnet-%d", i),
			graph.Fields{"cidr": fmt.Sprintf("10.%d.0.0/24", i), "status": "Active"})
		if err != nil {
			return nil, err
		}
		s.VNets = append(s.VNets, uid)
	}
	for i := 0; i < cfg.VRouters; i++ {
		uid, err := node(netmodel.VirtualRouter, fmt.Sprintf("vrouter-%d", i), graph.Fields{"status": "Active"})
		if err != nil {
			return nil, err
		}
		s.VRouters = append(s.VRouters, uid)
	}
	// Each virtual network attaches to its router both ways (routers join
	// several networks, giving VM-VM paths of length 4 via net-router-net).
	for i, net := range s.VNets {
		vr := s.VRouters[i%len(s.VRouters)]
		if err := edge(netmodel.VirtualLink, net, vr, nil); err != nil {
			return nil, err
		}
		if err := edge(netmodel.VirtualLink, vr, net, nil); err != nil {
			return nil, err
		}
	}

	// ---- Service and logical layers. ----
	newVM := func(name string) (graph.UID, error) {
		i := len(s.VMs)
		uid, err := node(netmodel.NodeClassOfVMKind(i), name, graph.Fields{
			"status":    "Green",
			"flavor":    []string{"m1.small", "m1.large", "m2.xlarge"}[i%3],
			"ipAddress": fmt.Sprintf("10.%d.%d.%d", i%200, (i/200)%250, i%250+1),
		})
		if err != nil {
			return 0, err
		}
		host := s.Hosts[rng.Intn(len(s.Hosts))]
		if err := edge(netmodel.OnServer, uid, host, nil); err != nil {
			return 0, err
		}
		s.HostOf[uid] = host
		// Attach to two or three virtual networks (tenant + management).
		nets := 2 + rng.Intn(2)
		first := rng.Intn(len(s.VNets))
		for n := 0; n < nets; n++ {
			net := s.VNets[(first+n)%len(s.VNets)]
			if err := edge(netmodel.VirtualLink, uid, net, nil); err != nil {
				return 0, err
			}
			if err := edge(netmodel.VirtualLink, net, uid, nil); err != nil {
				return 0, err
			}
		}
		s.VMs = append(s.VMs, uid)
		return uid, nil
	}

	for v := 0; v < cfg.VNFs; v++ {
		vnf, err := node(netmodel.NodeClassOfVNFKind(v), fmt.Sprintf("vnf-%d", v), graph.Fields{
			"vnfType":   netmodel.NodeClassOfVNFKind(v),
			"serviceId": int64(v/4 + 1),
			"status":    "Active",
		})
		if err != nil {
			return nil, err
		}
		s.VNFs = append(s.VNFs, vnf)
		// VFC count varies around the mean so top-down path counts spread.
		nVFC := cfg.VFCsPerVNF/2 + rng.Intn(cfg.VFCsPerVNF+1)
		if nVFC < 1 {
			nVFC = 1
		}
		var chain []graph.UID
		for c := 0; c < nVFC; c++ {
			vfc, err := node(netmodel.NodeClassOfVFCKind(c), fmt.Sprintf("vfc-%d-%d", v, c),
				graph.Fields{"role": netmodel.NodeClassOfVFCKind(c), "status": "Active"})
			if err != nil {
				return nil, err
			}
			s.VFCs = append(s.VFCs, vfc)
			s.VNFOf[vfc] = vnf
			chain = append(chain, vfc)
			if err := edge(netmodel.ComposedOf, vnf, vfc, nil); err != nil {
				return nil, err
			}
			vm, err := newVM(fmt.Sprintf("vm-%d-%d", v, c))
			if err != nil {
				return nil, err
			}
			if err := edge(netmodel.OnVM, vfc, vm, nil); err != nil {
				return nil, err
			}
		}
		// Intra-VNF data flow chain between consecutive VFCs (both
		// directions): the service-layer flows of §2.3.
		for c := 1; c < len(chain); c++ {
			if err := edge(netmodel.LogicalFlow, chain[c-1], chain[c], graph.Fields{"flowType": "data"}); err != nil {
				return nil, err
			}
			if err := edge(netmodel.LogicalFlow, chain[c], chain[c-1], graph.Fields{"flowType": "control"}); err != nil {
				return nil, err
			}
		}
	}
	for i := 0; i < cfg.IdleVMs; i++ {
		if _, err := newVM(fmt.Sprintf("vm-idle-%d", i)); err != nil {
			return nil, err
		}
	}
	return s, nil
}
