package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/graph"
	"repro/internal/netmodel"
	"repro/internal/temporal"
)

// ChurnConfig drives the history generator: Days rounds of inventory
// churn, each advancing a manual clock by one day. The per-day volumes
// control the history-to-snapshot overhead the §6 storage experiment
// measures (6% for the virtualized service over two months, 16% for the
// legacy feed).
type ChurnConfig struct {
	Seed int64
	Days int
	// StatusFlipsPerDay updates a random object's status field.
	StatusFlipsPerDay int
	// MigrationsPerDay moves a random VM to another host (delete + insert
	// of its OnServer edge). Ignored by legacy churn.
	MigrationsPerDay int
}

// DefaultServiceChurn reproduces the virtualized service's two-month,
// ~6%-overhead history.
func DefaultServiceChurn() ChurnConfig {
	return ChurnConfig{Seed: 11, Days: 60, StatusFlipsPerDay: 10, MigrationsPerDay: 2}
}

// DefaultLegacyChurn reproduces the legacy feed's ~16% overhead.
func DefaultLegacyChurn(l *Legacy) ChurnConfig {
	// Scale daily churn to the graph so the 60-day total lands near 16%.
	live, _ := l.store.Counts()
	return ChurnConfig{Seed: 13, Days: 60, StatusFlipsPerDay: live * 16 / 100 / 60}
}

// ApplyServiceChurn replays cfg.Days days of operational churn on the
// virtualized service graph: VM/host status flips and VM migrations.
func ApplyServiceChurn(st *graph.Store, svc *Service, clock *temporal.Clock, cfg ChurnConfig) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	statuses := []string{"Green", "Yellow", "Red"}
	for day := 0; day < cfg.Days; day++ {
		clock.Advance(24 * time.Hour)
		for i := 0; i < cfg.StatusFlipsPerDay; i++ {
			vm := svc.VMs[rng.Intn(len(svc.VMs))]
			obj := st.Object(vm)
			cur := obj.Current()
			if cur == nil {
				continue
			}
			next := cur.Fields.Clone()
			next["status"] = statuses[rng.Intn(len(statuses))]
			if err := st.Update(vm, next); err != nil {
				return fmt.Errorf("workload: churn day %d: %w", day, err)
			}
		}
		for i := 0; i < cfg.MigrationsPerDay; i++ {
			vm := svc.VMs[rng.Intn(len(svc.VMs))]
			if err := migrateVM(st, svc, rng, vm); err != nil {
				return fmt.Errorf("workload: churn day %d: %w", day, err)
			}
		}
	}
	return nil
}

// migrateVM moves the VM's OnServer placement to a different host.
func migrateVM(st *graph.Store, svc *Service, rng *rand.Rand, vm graph.UID) error {
	var placement graph.UID
	for _, e := range st.OutEdges(vm) {
		obj := st.Object(e)
		if obj.Class.Name == netmodel.OnServer && obj.Current() != nil {
			placement = e
			break
		}
	}
	if placement == 0 {
		return nil // already gone
	}
	newHost := svc.Hosts[rng.Intn(len(svc.Hosts))]
	if newHost == st.Object(placement).Dst {
		return nil
	}
	oldID := st.Object(placement).Current().Fields["id"]
	if err := st.Delete(placement); err != nil {
		return err
	}
	uid, err := st.InsertEdge(netmodel.OnServer, vm, newHost, graph.Fields{"id": oldID})
	if err != nil {
		return err
	}
	svc.HostOf[vm] = newHost
	_ = uid
	return nil
}

// ApplyLegacyChurn replays status-flip churn on the legacy graph.
func ApplyLegacyChurn(st *graph.Store, l *Legacy, clock *temporal.Clock, cfg ChurnConfig) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	pools := [][]graph.UID{l.Services, l.Access, l.Trunks, l.Equip}
	statuses := []string{"up", "down", "degraded"}
	for day := 0; day < cfg.Days; day++ {
		clock.Advance(24 * time.Hour)
		for i := 0; i < cfg.StatusFlipsPerDay; i++ {
			pool := pools[rng.Intn(len(pools))]
			uid := pool[rng.Intn(len(pool))]
			obj := st.Object(uid)
			cur := obj.Current()
			if cur == nil {
				continue
			}
			next := cur.Fields.Clone()
			next["status"] = statuses[rng.Intn(len(statuses))]
			if err := st.Update(uid, next); err != nil {
				return fmt.Errorf("workload: legacy churn day %d: %w", day, err)
			}
		}
	}
	return nil
}

// HistoryOverhead reports the relative growth of stored versions over the
// live snapshot: (versions-live)/live. The paper compares this against
// the ~5,900% cost of keeping 60 independent graph copies, which
// NaiveCopyOverhead computes.
func HistoryOverhead(st *graph.Store) float64 {
	live, versions := st.Counts()
	if live == 0 {
		return 0
	}
	return float64(versions-live) / float64(live)
}

// NaiveCopyOverhead is the storage overhead of the conventional
// alternative: days full copies of the snapshot instead of one temporal
// store ((days-1) extra copies ≈ 5,900% for 60 days).
func NaiveCopyOverhead(days int) float64 {
	return float64(days - 1)
}
