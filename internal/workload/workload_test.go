package workload

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/gremlin"
	"repro/internal/netmodel"
	"repro/internal/plan"
	"repro/internal/relational"
	"repro/internal/rpe"
	"repro/internal/temporal"
)

var t0 = time.Date(2017, 2, 15, 0, 0, 0, 0, time.UTC)

func buildServiceGraph(t *testing.T, cfg ServiceConfig) (*graph.Store, *Service, *temporal.Clock) {
	t.Helper()
	clock := temporal.NewManualClock(t0)
	st := graph.NewStore(netmodel.MustSchema(), clock)
	svc, err := BuildService(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st, svc, clock
}

func smallServiceConfig() ServiceConfig {
	cfg := DefaultServiceConfig()
	cfg.VNFs = 8
	cfg.VFCsPerVNF = 6
	cfg.Hosts = 40
	cfg.TORs = 8
	cfg.Spines = 3
	cfg.VNets = 10
	cfg.VRouters = 4
	cfg.IdleVMs = 6
	return cfg
}

func TestServiceGraphScale(t *testing.T) {
	st, svc, _ := buildServiceGraph(t, DefaultServiceConfig())
	live, _ := st.Counts()
	nodes := len(svc.VNFs) + len(svc.VFCs) + len(svc.VMs) + len(svc.Hosts) +
		len(svc.Switches) + len(svc.VNets) + len(svc.VRouters)
	edges := live - nodes
	t.Logf("virtualized service: %d nodes, %d edges, %d VNFs", nodes, edges, len(svc.VNFs))
	// Paper scale: ~2,000 nodes and ~11,000 edges, 33 distinct VNFs.
	if nodes < 1200 || nodes > 3000 {
		t.Errorf("nodes = %d, want ~2000", nodes)
	}
	if edges < 6000 || edges > 16000 {
		t.Errorf("edges = %d, want ~11000", edges)
	}
	if len(svc.VNFs) != 33 {
		t.Errorf("VNFs = %d, want 33", len(svc.VNFs))
	}
}

func TestServiceGraphDeterministic(t *testing.T) {
	st1, _, _ := buildServiceGraph(t, smallServiceConfig())
	st2, _, _ := buildServiceGraph(t, smallServiceConfig())
	l1, v1 := st1.Counts()
	l2, v2 := st2.Counts()
	if l1 != l2 || v1 != v2 {
		t.Errorf("generator not deterministic: (%d,%d) vs (%d,%d)", l1, v1, l2, v2)
	}
}

func TestServiceSamplersReturnPaths(t *testing.T) {
	st, svc, _ := buildServiceGraph(t, smallServiceConfig())
	eng := plan.NewEngine(gremlin.New(st))
	sampler := NewServiceSampler(st, svc, 42)
	view := graph.CurrentView(st)

	run := func(src string) int {
		t.Helper()
		c, err := rpe.CheckString(src, st.Schema())
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		p, err := plan.Build(c, st.Stats())
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		set, err := eng.Eval(view, p)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		return set.Len()
	}

	for i := 0; i < 5; i++ {
		if n := run(sampler.TopDown(i)); n == 0 {
			t.Errorf("top-down instance %d returned no paths", i)
		}
		if n := run(sampler.BottomUp()); n == 0 {
			t.Errorf("bottom-up instance %d returned no paths", i)
		}
		if n := run(sampler.VMVM()); n == 0 {
			t.Errorf("vm-vm instance %d returned no paths", i)
		}
		if n := run(sampler.HostHost(4)); n == 0 {
			t.Errorf("host-host instance %d returned no paths", i)
		}
	}
	// Host-Host(6) explores strictly more paths than Host-Host(4) between
	// the same endpoints — Table 1's scaling probe.
	s2 := NewServiceSampler(st, svc, 7)
	q4 := s2.HostHost(4)
	s3 := NewServiceSampler(st, svc, 7)
	q6 := s3.HostHost(6)
	if run(q6) <= run(q4) {
		t.Errorf("Host-Host(6) (%d paths) must exceed Host-Host(4) (%d paths)", run(q6), run(q4))
	}
}

func TestServiceChurnHistoryOverhead(t *testing.T) {
	st, svc, clock := buildServiceGraph(t, DefaultServiceConfig())
	if err := ApplyServiceChurn(st, svc, clock, DefaultServiceChurn()); err != nil {
		t.Fatal(err)
	}
	overhead := HistoryOverhead(st)
	t.Logf("virtualized service 60-day history overhead: %.1f%% (paper: 6%%)", overhead*100)
	if overhead <= 0.01 || overhead > 0.30 {
		t.Errorf("overhead = %.3f, want a few percent", overhead)
	}
	if naive := NaiveCopyOverhead(60); naive != 59 {
		t.Errorf("naive copy overhead = %v", naive)
	}
	// History remains consistent: queries at load time still see the
	// original placements.
	eng := plan.NewEngine(gremlin.New(st))
	c, err := rpe.CheckString("VM()->OnServer()->Host()", st.Schema())
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(c, st.Stats())
	if err != nil {
		t.Fatal(err)
	}
	past, err := eng.Eval(graph.PointView(st, t0.Add(time.Minute)), p)
	if err != nil {
		t.Fatal(err)
	}
	if past.Len() != len(svc.VMs) {
		t.Errorf("placements at load time = %d, want %d", past.Len(), len(svc.VMs))
	}
}

func legacyStore(t *testing.T, cfg LegacyConfig) (*graph.Store, *Legacy, *temporal.Clock) {
	t.Helper()
	sch, err := LegacySchema(cfg.Subclassed)
	if err != nil {
		t.Fatal(err)
	}
	clock := temporal.NewManualClock(t0)
	st := graph.NewStore(sch, clock)
	l, err := BuildLegacy(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st, l, clock
}

func smallLegacyConfig(subclassed bool) LegacyConfig {
	return LegacyConfig{Seed: 7, Services: 600, Subclassed: subclassed,
		TelemetryPerHeavyRack: 150, NoiseEdges: 300}
}

func TestLegacySchemaModes(t *testing.T) {
	single, err := LegacySchema(false)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(single.EdgeClasses()); got != 2 { // Edge root + LegacyLink
		t.Errorf("single-class edge classes = %d", got)
	}
	sub, err := LegacySchema(true)
	if err != nil {
		t.Fatal(err)
	}
	// Edge root + LegacyLink + 2 abstract parents + 66 indicator classes.
	if got := len(sub.EdgeClasses()); got != 2+2+NumTypeIndicators {
		t.Errorf("subclassed edge classes = %d, want %d", got, 2+2+NumTypeIndicators)
	}
	// Vertical indicators descend from LegacyVertical.
	va := sub.MustClass(EdgeClassOf(TIAssign))
	if !va.IsSubclassOf(sub.MustClass(LegacyVertical)) {
		t.Error("L_assign must descend from LegacyVertical")
	}
	tc := sub.MustClass(EdgeClassOf(TITrunkConn))
	if !tc.IsSubclassOf(sub.MustClass(LegacyConn)) {
		t.Error("L_trunkconn must descend from LegacyConn")
	}
}

func TestLegacyQueriesBothModes(t *testing.T) {
	for _, subclassed := range []bool{false, true} {
		st, l, _ := legacyStore(t, smallLegacyConfig(subclassed))
		eng := plan.NewEngine(relational.New(st))
		sampler := NewLegacySampler(l, 3)
		view := graph.CurrentView(st)

		counts := map[string]int{}
		for name, gen := range map[string]func() string{
			"service path": sampler.ServicePath,
			"reverse path": sampler.ReversePath,
			"top-down":     sampler.TopDown,
			"bottom-up":    sampler.BottomUp,
		} {
			src := gen()
			c, err := rpe.CheckString(src, st.Schema())
			if err != nil {
				t.Fatalf("mode=%v %s: %v", subclassed, name, err)
			}
			p, err := plan.Build(c, st.Stats())
			if err != nil {
				t.Fatalf("mode=%v %s: %v", subclassed, name, err)
			}
			set, err := eng.Eval(view, p)
			if err != nil {
				t.Fatalf("mode=%v %s: %v", subclassed, name, err)
			}
			counts[name] = set.Len()
			if set.Len() == 0 {
				t.Errorf("mode=%v %s returned no paths (%s)", subclassed, name, src)
			}
		}
		t.Logf("subclassed=%v counts=%v", subclassed, counts)
		// Shape: the reverse mining query dwarfs the forwards service path.
		if counts["reverse path"] <= counts["service path"] {
			t.Errorf("mode=%v: reverse path (%d) must exceed service path (%d)",
				subclassed, counts["reverse path"], counts["service path"])
		}
	}
}

// TestLegacyModesAgree is the ablation's correctness precondition: both
// load modes must return identical path structures for equivalent queries.
func TestLegacyModesAgree(t *testing.T) {
	stS, lS, _ := legacyStore(t, smallLegacyConfig(false))
	stC, lC, _ := legacyStore(t, smallLegacyConfig(true))
	engS := plan.NewEngine(relational.New(stS))
	engC := plan.NewEngine(relational.New(stC))

	// The same rack index exists in both deterministic builds.
	for i := 0; i < len(lS.Racks); i++ {
		sS := NewLegacySampler(lS, 9)
		sC := NewLegacySampler(lC, 9)
		qS := sS.BottomUpAt(lS.Racks[i])
		qC := sC.BottomUpAt(lC.Racks[i])

		run := func(st *graph.Store, eng *plan.Engine, src string) int {
			c, err := rpe.CheckString(src, st.Schema())
			if err != nil {
				t.Fatal(err)
			}
			p, err := plan.Build(c, st.Stats())
			if err != nil {
				t.Fatal(err)
			}
			set, err := eng.Eval(graph.CurrentView(st), p)
			if err != nil {
				t.Fatal(err)
			}
			return set.Len()
		}
		nS := run(stS, engS, qS)
		nC := run(stC, engC, qC)
		if nS != nC {
			t.Errorf("rack %d: single-class returns %d paths, subclassed %d", i, nS, nC)
		}
	}
}

func TestLegacyChurnOverhead(t *testing.T) {
	st, l, clock := legacyStore(t, smallLegacyConfig(false))
	if err := ApplyLegacyChurn(st, l, clock, DefaultLegacyChurn(l)); err != nil {
		t.Fatal(err)
	}
	overhead := HistoryOverhead(st)
	t.Logf("legacy 60-day history overhead: %.1f%% (paper: 16%%)", overhead*100)
	if overhead < 0.05 || overhead > 0.40 {
		t.Errorf("overhead = %.3f, want ~16%%", overhead)
	}
}

func TestTypeIndicatorsCount(t *testing.T) {
	tis := TypeIndicators()
	if len(tis) != NumTypeIndicators {
		t.Fatalf("indicators = %d, want %d", len(tis), NumTypeIndicators)
	}
	seen := map[string]bool{}
	for _, ti := range tis {
		if seen[ti] {
			t.Errorf("duplicate indicator %q", ti)
		}
		seen[ti] = true
	}
}
