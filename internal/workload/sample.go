package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/netmodel"
)

// ServiceSampler draws query instances for the Table 1 benchmark rows.
// Like the paper's methodology, it samples anchors that are guaranteed to
// return at least one path ("we avoided instances that result in zero
// paths, as they tended to have a significantly lower response time").
type ServiceSampler struct {
	st  *graph.Store
	svc *Service
	rng *rand.Rand
}

// NewServiceSampler returns a deterministic sampler.
func NewServiceSampler(st *graph.Store, svc *Service, seed int64) *ServiceSampler {
	return &ServiceSampler{st: st, svc: svc, rng: rand.New(rand.NewSource(seed))}
}

func (s *ServiceSampler) idOf(uid graph.UID) int64 {
	return s.st.Object(uid).Versions[0].Fields["id"].(int64)
}

// TopDown returns a VNF-to-Host navigation anchored at a random VNF.
func (s *ServiceSampler) TopDown(i int) string {
	vnf := s.svc.VNFs[i%len(s.svc.VNFs)]
	return fmt.Sprintf("VNF(id=%d)->[Vertical()]{1,6}->Host()", s.idOf(vnf))
}

// BottomUp returns a Host-to-VNF navigation anchored at a random host
// that carries at least one VM.
func (s *ServiceSampler) BottomUp() string {
	for {
		vm := s.svc.VMs[s.rng.Intn(len(s.svc.VMs))]
		host := s.svc.HostOf[vm]
		if host != 0 {
			return fmt.Sprintf("VNF()->[Vertical()]{1,6}->Host(id=%d)", s.idOf(host))
		}
	}
}

// VMVM returns a VM-to-VM overlay navigation (length 4 through virtual
// networks and routers) between two VMs known to be overlay-reachable.
func (s *ServiceSampler) VMVM() string {
	for tries := 0; ; tries++ {
		a := s.svc.VMs[s.rng.Intn(len(s.svc.VMs))]
		b, ok := s.overlayPeer(a)
		if ok && b != a {
			return fmt.Sprintf("VM(id=%d)->[VirtualLink()]{1,4}->VM(id=%d)", s.idOf(a), s.idOf(b))
		}
	}
}

// overlayPeer walks VM -> net -> VM / VM -> net -> router -> net -> VM to
// find a guaranteed-reachable peer.
func (s *ServiceSampler) overlayPeer(vm graph.UID) (graph.UID, bool) {
	nets := s.liveNeighbors(vm, netmodel.VirtualLink, netmodel.VirtualNet)
	if len(nets) == 0 {
		return 0, false
	}
	net := nets[s.rng.Intn(len(nets))]
	// Same-network peer (2 hops) or cross-router peer (4 hops).
	if s.rng.Intn(2) == 0 {
		peers := s.liveNeighbors(net, netmodel.VirtualLink, netmodel.Container)
		if len(peers) > 0 {
			return peers[s.rng.Intn(len(peers))], true
		}
	}
	routers := s.liveNeighbors(net, netmodel.VirtualLink, netmodel.VirtualRouter)
	for _, vr := range routers {
		for _, net2 := range s.liveNeighbors(vr, netmodel.VirtualLink, netmodel.VirtualNet) {
			peers := s.liveNeighbors(net2, netmodel.VirtualLink, netmodel.Container)
			if len(peers) > 0 {
				return peers[s.rng.Intn(len(peers))], true
			}
		}
	}
	return 0, false
}

// HostHost returns a Host-to-Host underlay navigation with the given hop
// budget between hosts in different racks (4 hops: host-tor-spine-tor-host).
func (s *ServiceSampler) HostHost(maxHops int) string {
	for {
		a := s.svc.Hosts[s.rng.Intn(len(s.svc.Hosts))]
		tors := s.liveNeighbors(a, netmodel.PhysicalLink, netmodel.Switch)
		if len(tors) == 0 {
			continue
		}
		spines := s.liveNeighbors(tors[0], netmodel.PhysicalLink, netmodel.Switch)
		for _, spine := range spines {
			for _, tor2 := range s.liveNeighbors(spine, netmodel.PhysicalLink, netmodel.Switch) {
				if tor2 == tors[0] {
					continue
				}
				hosts := s.liveNeighbors(tor2, netmodel.PhysicalLink, netmodel.Host)
				if len(hosts) == 0 {
					continue
				}
				b := hosts[s.rng.Intn(len(hosts))]
				if b == a {
					continue
				}
				return fmt.Sprintf("Host(id=%d)->[PhysicalLink()]{1,%d}->Host(id=%d)",
					s.idOf(a), maxHops, s.idOf(b))
			}
		}
	}
}

// liveNeighbors returns current out-neighbors of uid through live edges of
// the given edge class subtree, filtered to nodes in the node class
// subtree.
func (s *ServiceSampler) liveNeighbors(uid graph.UID, edgeClass, nodeClass string) []graph.UID {
	ec, _ := s.st.Schema().Class(edgeClass)
	nc, _ := s.st.Schema().Class(nodeClass)
	var out []graph.UID
	for _, e := range s.st.OutEdges(uid) {
		obj := s.st.Object(e)
		if obj.Current() == nil || !obj.Class.IsSubclassOf(ec) {
			continue
		}
		dst := s.st.Object(obj.Dst)
		if dst.Current() != nil && dst.Class.IsSubclassOf(nc) {
			out = append(out, obj.Dst)
		}
	}
	return out
}

// LegacySampler draws query instances for the Table 2 benchmark rows and
// the §6 edge-subclassing ablation. The emitted RPEs adapt to the load
// mode through LegacyConfig.VerticalRPE / ConnRPE.
type LegacySampler struct {
	l   *Legacy
	rng *rand.Rand
}

// NewLegacySampler returns a deterministic sampler.
func NewLegacySampler(l *Legacy, seed int64) *LegacySampler {
	return &LegacySampler{l: l, rng: rand.New(rand.NewSource(seed))}
}

// ServicePath is the forwards horizontal query: 4 connectivity hops out
// of a random service termination.
func (s *LegacySampler) ServicePath() string {
	svc := s.l.Services[s.rng.Intn(len(s.l.Services))]
	return fmt.Sprintf("LegacyNode(id=%d)->[%s]{1,4}->LegacyNode()",
		s.l.IDOf(svc), s.l.Config.ConnRPE())
}

// ReversePath is the reverse horizontal query, anchored at a trunk with
// large connectivity fan-in — the deep-mining query that returns huge
// path counts (391k in the paper's full-size feed).
func (s *LegacySampler) ReversePath() string {
	trunk := s.l.Trunks[s.rng.Intn(len(s.l.Trunks))]
	return fmt.Sprintf("LegacyNode()->[%s]{1,4}->LegacyNode(id=%d)",
		s.l.Config.ConnRPE(), s.l.IDOf(trunk))
}

// TopDown is the forwards vertical query: service to rack.
func (s *LegacySampler) TopDown() string {
	svc := s.l.Services[s.rng.Intn(len(s.l.Services))]
	return fmt.Sprintf("LegacyNode(id=%d)->[%s]{1,3}->LegacyNode()",
		s.l.IDOf(svc), s.l.Config.VerticalRPE())
}

// BottomUp is the reverse vertical query, anchored at a random rack.
// Roughly a third of racks carry bulk telemetry fan-in, reproducing the
// paper's slow-sample tail on the single-class load.
func (s *LegacySampler) BottomUp() string {
	rack := s.l.Racks[s.rng.Intn(len(s.l.Racks))]
	return fmt.Sprintf("LegacyNode()->[%s]{1,3}->LegacyNode(id=%d)",
		s.l.Config.VerticalRPE(), s.l.IDOf(rack))
}

// BottomUpAt anchors the bottom-up query at a specific rack (for the
// heavy/normal split analysis).
func (s *LegacySampler) BottomUpAt(rack graph.UID) string {
	return fmt.Sprintf("LegacyNode()->[%s]{1,3}->LegacyNode(id=%d)",
		s.l.Config.VerticalRPE(), s.l.IDOf(rack))
}
