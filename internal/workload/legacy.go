package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/schema"
)

// Legacy type indicators. The paper's legacy feed tags every edge with one
// of 66 type_indicator values; a handful structure the topology and the
// rest are noise classes (telemetry, management, and miscellaneous links
// that are irrelevant to the service-path and vertical queries).
const (
	TIServiceConn = "svcconn"    // service -> access port (horizontal)
	TIAccessConn  = "accessconn" // access port -> trunk (horizontal)
	TITrunkConn   = "trunkconn"  // trunk -> trunk mesh (horizontal)
	TIAssign      = "assign"     // service -> access port (vertical)
	TIPortEquip   = "portequip"  // access port -> equipment (vertical)
	TIEquipRack   = "equiprack"  // equipment -> rack (vertical)
	TITelemetry   = "telemetry"  // monitor -> rack (bulk, irrelevant)
)

// structuralIndicators participate in the benchmark queries.
var structuralIndicators = []string{
	TIServiceConn, TIAccessConn, TITrunkConn, TIAssign, TIPortEquip, TIEquipRack, TITelemetry,
}

// NumTypeIndicators is the total number of edge type_indicator values,
// matching the paper's 66 subclasses.
const NumTypeIndicators = 66

// TypeIndicators returns all 66 indicator values: the structural ones
// plus misc noise classes.
func TypeIndicators() []string {
	out := append([]string{}, structuralIndicators...)
	for i := len(out); i < NumTypeIndicators; i++ {
		out = append(out, fmt.Sprintf("misc%02d", i))
	}
	return out
}

// EdgeClassOf maps a type indicator to its subclass name in the
// subclassed schema ("svcconn" -> "L_svcconn").
func EdgeClassOf(indicator string) string { return "L_" + indicator }

// Legacy node and edge class names.
const (
	LegacyNode     = "LegacyNode"
	LegacyLink     = "LegacyLink"
	LegacyVertical = "LegacyVertical" // abstract parent of the vertical subclasses
	LegacyConn     = "LegacyConn"     // abstract parent of the horizontal subclasses
)

// LegacySchema builds the legacy topology schema. With subclassed false
// it matches the initial load of §6: one node class and one edge class,
// the class borne by the edge only as the type_indicator field. With
// subclassed true it adds one edge subclass per type_indicator value (66
// classes), the reload whose effect the ablation measures; structural
// horizontal indicators subclass LegacyConn and vertical ones
// LegacyVertical, so queries can traverse them polymorphically.
func LegacySchema(subclassed bool) (*schema.Schema, error) {
	s := schema.New()
	if _, err := s.DefineNode(LegacyNode, "",
		schema.Field{Name: "type_indicator", Type: schema.TypeString},
		schema.Field{Name: "status", Type: schema.TypeString},
	); err != nil {
		return nil, err
	}
	if _, err := s.DefineEdge(LegacyLink, "",
		schema.Field{Name: "type_indicator", Type: schema.TypeString},
	); err != nil {
		return nil, err
	}
	if subclassed {
		if _, err := s.DefineEdge(LegacyConn, LegacyLink); err != nil {
			return nil, err
		}
		if _, err := s.DefineEdge(LegacyVertical, LegacyLink); err != nil {
			return nil, err
		}
		for _, abstract := range []string{LegacyConn, LegacyVertical} {
			if err := s.SetAbstract(abstract); err != nil {
				return nil, err
			}
		}
		for _, ti := range TypeIndicators() {
			parent := LegacyLink
			switch ti {
			case TIServiceConn, TIAccessConn, TITrunkConn:
				parent = LegacyConn
			case TIAssign, TIPortEquip, TIEquipRack:
				parent = LegacyVertical
			}
			if _, err := s.DefineEdge(EdgeClassOf(ti), parent); err != nil {
				return nil, err
			}
		}
	}
	if err := s.Finalize(); err != nil {
		return nil, err
	}
	return s, nil
}

// LegacyConfig sizes the legacy topology. The graph scales linearly with
// Services; the paper's feed had 1.6M nodes and 7.1M edges, which
// corresponds to Services ≈ 1,200,000 here — benchmark defaults use a
// laptop-scale fraction with the same shape (see DESIGN.md).
type LegacyConfig struct {
	Seed     int64
	Services int
	// Subclassed selects the 66-subclass load; the generator stores each
	// edge under its type's subclass instead of LegacyLink.
	Subclassed bool
	// TelemetryPerHeavyRack controls the irrelevant fan-in on heavy racks —
	// the cause of the paper's slow bottom-up tail (2–4s on 16 of 50
	// samples).
	TelemetryPerHeavyRack int
	// NoiseEdges adds miscellaneous edges with random misc type
	// indicators, giving all 66 classes population.
	NoiseEdges int
}

// DefaultLegacyConfig returns a CI-scale configuration. Telemetry and
// noise volumes scale with Services when left zero (see BuildLegacy).
func DefaultLegacyConfig() LegacyConfig {
	return LegacyConfig{Seed: 7, Services: 2500}
}

// Legacy holds the generated topology's handles for query sampling.
type Legacy struct {
	Config   LegacyConfig
	Services []graph.UID
	Access   []graph.UID
	Trunks   []graph.UID
	Equip    []graph.UID
	Racks    []graph.UID
	Monitors []graph.UID
	// HeavyRacks are the racks carrying bulk telemetry fan-in.
	HeavyRacks []graph.UID
	store      *graph.Store
}

// IDOf returns the id field of a generated node.
func (l *Legacy) IDOf(uid graph.UID) int64 {
	return l.store.Object(uid).Versions[0].Fields["id"].(int64)
}

// BuildLegacy populates st (whose schema must come from LegacySchema with
// the matching subclassed flag) with the legacy topology.
func BuildLegacy(st *graph.Store, cfg LegacyConfig) (*Legacy, error) {
	if cfg.TelemetryPerHeavyRack == 0 {
		cfg.TelemetryPerHeavyRack = cfg.Services // fan-in >> relevant paths
	}
	if cfg.NoiseEdges == 0 {
		cfg.NoiseEdges = 2 * cfg.Services
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	l := &Legacy{Config: cfg, store: st}
	nextID := int64(0)
	id := func() int64 { nextID++; return nextID }

	node := func(ti string) (graph.UID, error) {
		return st.InsertNode(LegacyNode, graph.Fields{
			"id": id(), "name": fmt.Sprintf("%s-%d", ti, nextID), "type_indicator": ti, "status": "up",
		})
	}
	edge := func(ti string, src, dst graph.UID) error {
		class := LegacyLink
		if cfg.Subclassed {
			class = EdgeClassOf(ti)
		}
		_, err := st.InsertEdge(class, src, dst, graph.Fields{"id": id(), "type_indicator": ti})
		return err
	}

	// Tier sizing targets the paper's bottom-up fan-in profile: ~70
	// relevant vertical paths per rack against orders-of-magnitude more
	// irrelevant telemetry fan-in on heavy racks.
	nServices := cfg.Services
	nAccess := max(nServices/3, 2)
	nTrunks := max(nServices/100, 3)
	nEquip := max(nServices/25, 2)
	nRacks := max(nServices/50, 3)
	nMonitors := max(nServices/10, 2)

	build := func(n int, ti string, out *[]graph.UID) error {
		for i := 0; i < n; i++ {
			uid, err := node(ti)
			if err != nil {
				return err
			}
			*out = append(*out, uid)
		}
		return nil
	}
	if err := build(nRacks, "rack", &l.Racks); err != nil {
		return nil, err
	}
	if err := build(nEquip, "equip", &l.Equip); err != nil {
		return nil, err
	}
	if err := build(nTrunks, "trunk", &l.Trunks); err != nil {
		return nil, err
	}
	if err := build(nAccess, "access", &l.Access); err != nil {
		return nil, err
	}
	if err := build(nServices, "service", &l.Services); err != nil {
		return nil, err
	}
	if err := build(nMonitors, "monitor", &l.Monitors); err != nil {
		return nil, err
	}

	// Vertical hierarchy: equipment in racks, access ports on equipment,
	// services assigned to access ports.
	for i, e := range l.Equip {
		if err := edge(TIEquipRack, e, l.Racks[i%nRacks]); err != nil {
			return nil, err
		}
	}
	for i, a := range l.Access {
		if err := edge(TIPortEquip, a, l.Equip[i%nEquip]); err != nil {
			return nil, err
		}
	}
	for i, s := range l.Services {
		a := l.Access[i%nAccess]
		if err := edge(TIAssign, s, a); err != nil {
			return nil, err
		}
		// Horizontal: the same service also *connects* through its port.
		if err := edge(TIServiceConn, s, a); err != nil {
			return nil, err
		}
	}
	// Access ports uplink to one or two trunks; trunks mesh sparsely.
	for i, a := range l.Access {
		if err := edge(TIAccessConn, a, l.Trunks[i%nTrunks]); err != nil {
			return nil, err
		}
		if rng.Intn(2) == 0 {
			if err := edge(TIAccessConn, a, l.Trunks[(i+1)%nTrunks]); err != nil {
				return nil, err
			}
		}
	}
	for i, t := range l.Trunks {
		for k := 1; k <= 4; k++ {
			if err := edge(TITrunkConn, t, l.Trunks[(i+k*7+1)%nTrunks]); err != nil {
				return nil, err
			}
		}
	}

	// A third of the racks are "heavy": they receive bulk telemetry edges
	// from the monitor population — the irrelevant fan-in behind the slow
	// bottom-up samples.
	for i, r := range l.Racks {
		if i%3 != 0 {
			continue
		}
		l.HeavyRacks = append(l.HeavyRacks, r)
		for k := 0; k < cfg.TelemetryPerHeavyRack; k++ {
			if err := edge(TITelemetry, l.Monitors[rng.Intn(nMonitors)], r); err != nil {
				return nil, err
			}
		}
	}

	// Noise edges populate the misc classes. Three quarters of them
	// terminate at trunks and access ports, so the horizontal queries also
	// meet some irrelevant fan-in — enough that subclassing buys the
	// reverse-path query a modest improvement, though (as in the paper)
	// its fanout is mostly relevant, so the improvement stays limited.
	all := [][]graph.UID{l.Services, l.Access, l.Trunks, l.Equip, l.Monitors}
	horizontal := [][]graph.UID{l.Trunks, l.Access}
	indicators := TypeIndicators()
	for k := 0; k < cfg.NoiseEdges; k++ {
		ti := indicators[len(structuralIndicators)+rng.Intn(NumTypeIndicators-len(structuralIndicators))]
		srcPool := all[rng.Intn(len(all))]
		dstPool := all[rng.Intn(len(all))]
		if k%4 != 3 {
			dstPool = horizontal[rng.Intn(len(horizontal))]
		}
		src := srcPool[rng.Intn(len(srcPool))]
		dst := dstPool[rng.Intn(len(dstPool))]
		if src == dst {
			continue
		}
		if err := edge(ti, src, dst); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// VerticalRPE returns the vertical-chain fragment appropriate to the
// load mode: a type_indicator disjunction on the single class, or the
// LegacyVertical abstract class whose per-table indexes prune the scan.
func (cfg LegacyConfig) VerticalRPE() string {
	if cfg.Subclassed {
		return "LegacyVertical()"
	}
	return fmt.Sprintf("LegacyLink(type_indicator IN ('%s', '%s', '%s'))", TIAssign, TIPortEquip, TIEquipRack)
}

// ConnRPE returns the horizontal-chain fragment for the load mode.
func (cfg LegacyConfig) ConnRPE() string {
	if cfg.Subclassed {
		return "LegacyConn()"
	}
	return fmt.Sprintf("LegacyLink(type_indicator IN ('%s', '%s', '%s'))", TIServiceConn, TIAccessConn, TITrunkConn)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
