package core

import (
	"context"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/rpe"
	"repro/internal/stats"
)

// Prepared is a query parsed and semantically analyzed once, ready to
// execute many times — the parse/compile-once half of a prepared
// statement. A Prepared is immutable after Prepare returns and safe for
// concurrent Exec calls: every execution builds its own governor and
// physical plans, so prepared statements can be shared across server
// request handlers (internal/server keeps them in its plan cache).
//
// A Prepared is bound to the DB (schema, views, backend) it was prepared
// on; executing it after the schema's store contents changed is fine —
// the anchor choice is re-costed per execution from live statistics.
type Prepared struct {
	db  *DB
	src string
	a   *query.Analyzed
	// digest/norm are the statement's literal-masked fingerprint and
	// normalized text, computed once here so executions never re-lex.
	digest string
	norm   string
}

// Prepare parses and analyzes src against the database's schema and
// views, returning a reusable statement. Parse or analysis errors are
// returned exactly as Query would return them.
func (db *DB) Prepare(src string) (*Prepared, error) {
	a, err := db.analyze(src)
	if err != nil {
		return nil, err
	}
	digest, norm := stats.Fingerprint(src)
	return &Prepared{db: db, src: src, a: a, digest: digest, norm: norm}, nil
}

// Text returns the statement's original query text.
func (p *Prepared) Text() string { return p.src }

// Digest returns the statement's literal-masked fingerprint — the key
// under which its executions aggregate in the statistics store.
func (p *Prepared) Digest() string { return p.digest }

// NormalizedText returns the literal-masked statement the digest is
// computed from.
func (p *Prepared) NormalizedText() string { return p.norm }

// Footprint returns the sorted set of class names whose mutations can
// change this statement's result: the union of every atom's subclass
// subtree across the query's pathway expressions, view constraints, and
// NOT EXISTS subqueries. The watch subsystem uses it to skip re-running
// standing queries for mutations that provably cannot affect them.
func (p *Prepared) Footprint() []string {
	var cs []*rpe.Checked
	var walk func(a *query.Analyzed)
	walk = func(a *query.Analyzed) {
		if a == nil {
			return
		}
		for _, c := range a.Checked {
			cs = append(cs, c)
		}
		for _, c := range a.ViewChecked {
			cs = append(cs, c)
		}
		for _, sub := range a.Subqueries {
			walk(sub)
		}
	}
	walk(p.a)
	return plan.ClassFootprint(cs...)
}

// Exec executes the prepared statement under ctx and the DB's installed
// limits, observing into the DB's registry and slow log like Query does.
func (p *Prepared) Exec(ctx context.Context) (*exec.Result, error) {
	return p.ExecLimits(ctx, p.db.executor.Limits)
}

// ExecLimits is Exec under explicit per-call resource limits, the entry
// point for per-request guardrails: the statement's compiled form is
// reused, only the governor differs per call.
func (p *Prepared) ExecLimits(ctx context.Context, lim exec.Limits) (*exec.Result, error) {
	return p.ExecTraced(ctx, lim, nil)
}

// ExecTraced is ExecLimits with optional operator-DAG tracing: a non-nil
// parent span receives the execution's "Query" span tree as a child (the
// server passes its request's Execute phase span here, stitching engine
// operators into the end-to-end trace). A nil parent runs untraced —
// the counters-only fast path.
func (p *Prepared) ExecTraced(ctx context.Context, lim exec.Limits, parent *obs.Span) (*exec.Result, error) {
	start := time.Now()
	var res *exec.Result
	var err error
	if parent != nil {
		res, err = p.db.executor.RunTracedContextLimits(ctx, p.a, parent, lim)
	} else {
		res, err = p.db.executor.RunContextLimits(ctx, p.a, lim)
	}
	p.db.observeQuery(ctx, p.src, p.digest, p.norm, res, time.Since(start), err)
	if err != nil {
		return nil, err
	}
	return res, nil
}
