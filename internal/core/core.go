// Package core is Nepal's public API: a model-driven, temporal,
// path-first graph database layer for network inventory and topology.
//
// A DB combines a strongly-typed temporal graph store with one of the two
// query backends (the Gremlin-style property-graph engine or the
// relational engine) and the Nepal query language executor. Open it over
// a schema, load inventory (directly or via update-by-snapshot), and run
// Nepal queries:
//
//	db, _ := core.Open(netmodel.MustSchema())
//	res, _ := db.Query(`
//	    AT '2017-02-15 10:00:00'
//	    Select source(P).name From PATHS P
//	    Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id=23245)`)
//
// Several DBs over different backends can be joined in one query through
// QueryRouted — Nepal's data-integration mode (§3.1).
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/gremlin"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/rpe"
	"repro/internal/schema"
	"repro/internal/temporal"
)

// Backend names accepted by WithBackend.
const (
	BackendGremlin    = "gremlin"
	BackendRelational = "relational"
)

type config struct {
	backend string
	clock   *temporal.Clock
}

// Option configures Open.
type Option func(*config)

// WithBackend selects the query backend: BackendGremlin (default) or
// BackendRelational.
func WithBackend(name string) Option {
	return func(c *config) { c.backend = name }
}

// WithClock installs a transaction clock; tests and deterministic loads
// pass a temporal.NewManualClock.
func WithClock(clock *temporal.Clock) Option {
	return func(c *config) { c.clock = clock }
}

// DB is an open Nepal database.
type DB struct {
	store    *graph.Store
	engine   *plan.Engine
	executor *exec.Executor
	backend  string
	views    query.Views
}

// Open creates an empty database over the finalized schema.
func Open(sch *schema.Schema, opts ...Option) (*DB, error) {
	cfg := config{backend: BackendGremlin}
	for _, o := range opts {
		o(&cfg)
	}
	store := graph.NewStore(sch, cfg.clock)
	var acc plan.Accessor
	switch cfg.backend {
	case BackendGremlin:
		acc = gremlin.New(store)
	case BackendRelational:
		acc = relational.New(store)
	default:
		return nil, fmt.Errorf("core: unknown backend %q (use %q or %q)",
			cfg.backend, BackendGremlin, BackendRelational)
	}
	engine := plan.NewEngine(acc)
	return &DB{store: store, engine: engine, executor: exec.New(engine),
		backend: cfg.backend, views: query.Views{}}, nil
}

// DefineView registers a named pathway view: a reusable RPE that supplies
// the implicit MATCHES predicate for variables ranging over it (§3.4's
// "additional views can be defined" — PATHS is the built-in view of all
// pathways). Example:
//
//	db.DefineView("Placements", "VM()->OnServer()->Host()")
//	db.Query("Select source(P).name From Placements P")
//
// A variable may combine a view with its own MATCHES predicate; the
// pathway must then satisfy both, with validity-intersection semantics.
func (db *DB) DefineView(name, rpeSrc string) error {
	if name == query.BaseView || name == "" {
		return fmt.Errorf("core: %q cannot name a view", name)
	}
	expr, err := rpe.Parse(rpeSrc)
	if err != nil {
		return err
	}
	if _, err := rpe.Check(expr, db.Schema()); err != nil {
		return err
	}
	db.views[name] = expr
	return nil
}

// Store exposes the underlying temporal graph store.
func (db *DB) Store() *graph.Store { return db.store }

// Schema returns the database schema.
func (db *DB) Schema() *schema.Schema { return db.store.Schema() }

// Backend reports the configured backend name.
func (db *DB) Backend() string { return db.backend }

// Engine exposes the backend engine (for benchmark harnesses).
func (db *DB) Engine() *plan.Engine { return db.engine }

// InsertNode validates and inserts a node, returning its UID.
func (db *DB) InsertNode(class string, fields graph.Fields) (graph.UID, error) {
	return db.store.InsertNode(class, fields)
}

// InsertEdge validates and inserts an edge between two nodes.
func (db *DB) InsertEdge(class string, src, dst graph.UID, fields graph.Fields) (graph.UID, error) {
	return db.store.InsertEdge(class, src, dst, fields)
}

// Update replaces an object's fields, versioning the previous state.
func (db *DB) Update(uid graph.UID, fields graph.Fields) error {
	return db.store.Update(uid, fields)
}

// Delete closes an object's current version (cascading to incident edges
// for nodes); its history remains queryable.
func (db *DB) Delete(uid graph.UID) error { return db.store.Delete(uid) }

// ApplySnapshot reconciles the database with a full source snapshot — the
// update-by-snapshot service for sources that publish periodic dumps.
func (db *DB) ApplySnapshot(snap *graph.Snapshot) (graph.DiffStats, error) {
	return db.store.ApplySnapshot(snap)
}

// Query parses, analyzes, and executes a Nepal query.
func (db *DB) Query(src string) (*exec.Result, error) {
	a, err := db.analyze(src)
	if err != nil {
		return nil, err
	}
	return db.executor.Run(a)
}

// QueryRouted executes a query whose range variables may be routed to
// other databases: routes maps a variable name to the DB serving it.
// Pathways from the routed stores are joined in the executor, with node
// identity crossing store boundaries via the schema-unique id field.
func (db *DB) QueryRouted(src string, routes map[string]*DB) (*exec.Result, error) {
	a, err := db.analyze(src)
	if err != nil {
		return nil, err
	}
	x := exec.New(db.engine)
	for name, other := range routes {
		x.Route(name, other.engine)
	}
	return x.Run(a)
}

func (db *DB) analyze(src string) (*query.Analyzed, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	return query.AnalyzeWithViews(q, db.Schema(), db.views)
}

// MatchPaths evaluates a bare RPE against the current snapshot and
// returns the matching pathways — the programmatic fast path equivalent
// to "Retrieve P From PATHS P Where P MATCHES <rpe>".
func (db *DB) MatchPaths(rpeSrc string) ([]plan.Pathway, error) {
	return db.MatchPathsAt(rpeSrc, time.Time{})
}

// MatchPathsAt is MatchPaths against the snapshot at time at (the zero
// time means the current snapshot).
func (db *DB) MatchPathsAt(rpeSrc string, at time.Time) ([]plan.Pathway, error) {
	c, err := rpe.CheckString(rpeSrc, db.Schema())
	if err != nil {
		return nil, err
	}
	p, err := plan.Build(c, db.store.Stats())
	if err != nil {
		return nil, err
	}
	view := graph.CurrentView(db.store)
	if !at.IsZero() {
		view = graph.PointView(db.store, at)
	}
	set, err := db.engine.Eval(view, p)
	if err != nil {
		return nil, err
	}
	return set.Paths(), nil
}

// Explain returns the query's textual plan: per-variable anchors and
// operator DAGs (§5.1's Select/Extend/Union form).
func (db *DB) Explain(src string) (string, error) {
	a, err := db.analyze(src)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, rv := range a.Query.Vars {
		checked := a.Checked[rv.Name]
		fmt.Fprintf(&sb, "-- variable %s --\n", rv.Name)
		p, err := plan.Build(checked, db.store.Stats())
		if err != nil {
			fmt.Fprintf(&sb, "anchor: imported from join (%v)\n", err)
			p = plan.BuildSeeded(checked, plan.Forward)
		}
		sb.WriteString(p.Explain())
	}
	return sb.String(), nil
}

// RenderPath formats a pathway against this database's store.
func (db *DB) RenderPath(p plan.Pathway) string { return p.Render(db.store) }

// EvolutionStep is one constant-state slice of a pathway's history: the
// element field values that held during Period, and whether the pathway
// satisfied the RPE then.
type EvolutionStep struct {
	Period    temporal.Interval
	Fields    []graph.Fields
	Satisfies bool
	Exists    bool
}

// PathEvolution answers the §4 path evolution query: for a specific
// pathway (fixed node and edge UIDs), it returns the timeline of field
// values across every version boundary of its elements, with the periods
// during which the pathway satisfied the given RPE. Visualization
// applications drill into a returned pathway with it.
func (db *DB) PathEvolution(p plan.Pathway, rpeSrc string) ([]EvolutionStep, error) {
	c, err := rpe.CheckString(rpeSrc, db.Schema())
	if err != nil {
		return nil, err
	}
	objs := make([]*graph.Object, len(p.Elems))
	boundaries := map[int64]time.Time{}
	for i, uid := range p.Elems {
		obj := db.store.Object(uid)
		if obj == nil {
			return nil, fmt.Errorf("core: pathway element %d not found", uid)
		}
		objs[i] = obj
		for _, v := range obj.Versions {
			boundaries[v.Period.Start.UnixNano()] = v.Period.Start
			if !v.Period.IsCurrent() {
				boundaries[v.Period.End.UnixNano()] = v.Period.End
			}
		}
	}
	times := make([]time.Time, 0, len(boundaries))
	for _, t := range boundaries {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })

	var steps []EvolutionStep
	for i, start := range times {
		var period temporal.Interval
		if i+1 < len(times) {
			period = temporal.Between(start, times[i+1])
		} else {
			period = temporal.Current(start)
		}
		step := EvolutionStep{Period: period, Exists: true}
		elements := make([]rpe.Element, len(objs))
		for j, obj := range objs {
			ver := obj.VersionAt(start)
			if ver == nil {
				step.Exists = false
				break
			}
			step.Fields = append(step.Fields, ver.Fields)
			elements[j] = rpe.Element{Class: obj.Class, Fields: ver.Fields}
		}
		if step.Exists {
			step.Satisfies = c.MatchesPathway(elements)
		}
		steps = append(steps, step)
	}
	return steps, nil
}
