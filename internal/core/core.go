// Package core is Nepal's public API: a model-driven, temporal,
// path-first graph database layer for network inventory and topology.
//
// A DB combines a strongly-typed temporal graph store with one of the two
// query backends (the Gremlin-style property-graph engine or the
// relational engine) and the Nepal query language executor. Open it over
// a schema, load inventory (directly or via update-by-snapshot), and run
// Nepal queries:
//
//	db, _ := core.Open(netmodel.MustSchema())
//	res, _ := db.Query(`
//	    AT '2017-02-15 10:00:00'
//	    Select source(P).name From PATHS P
//	    Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id=23245)`)
//
// Several DBs over different backends can be joined in one query through
// QueryRouted — Nepal's data-integration mode (§3.1).
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/gremlin"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/rpe"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/temporal"
	"repro/internal/wal"
)

// Backend names accepted by WithBackend.
const (
	BackendGremlin    = "gremlin"
	BackendRelational = "relational"
)

type config struct {
	backend string
	clock   *temporal.Clock
	wrap    func(plan.Accessor) plan.Accessor
	walDir  string
	walOpts wal.Options
}

// Option configures Open.
type Option func(*config)

// WithBackend selects the query backend: BackendGremlin (default) or
// BackendRelational.
func WithBackend(name string) Option {
	return func(c *config) { c.backend = name }
}

// WithClock installs a transaction clock; tests and deterministic loads
// pass a temporal.NewManualClock.
func WithClock(clock *temporal.Clock) Option {
	return func(c *config) { c.clock = clock }
}

// WithWAL makes the database durable: every mutation is appended (and
// fsynced) to a write-ahead log in dir before it is applied, and Open
// recovers the database from the directory's checkpoint and log — so a
// crashed process restarts with exactly the acknowledged writes, full
// temporal history included. Use DB.Checkpoint to contract the log and
// DB.Close to release it. See internal/wal for the on-disk contract.
func WithWAL(dir string) Option {
	return func(c *config) { c.walDir = dir }
}

// WithWALOptions is WithWAL with explicit log options (e.g. NoSync for
// workloads that accept page-cache durability in exchange for append
// throughput).
func WithWALOptions(dir string, opts wal.Options) Option {
	return func(c *config) { c.walDir, c.walOpts = dir, opts }
}

// WithAccessorWrapper interposes on the backend's physical access layer:
// the wrapper receives the backend accessor and returns the accessor the
// engine drives. Fault-injection tests pass internal/chaos.Wrap here; a
// nil wrapper is ignored.
func WithAccessorWrapper(w func(plan.Accessor) plan.Accessor) Option {
	return func(c *config) { c.wrap = w }
}

// DB is an open Nepal database.
type DB struct {
	store     *graph.Store
	engine    *plan.Engine
	executor  *exec.Executor
	backend   string
	views     query.Views
	reg       *obs.Registry
	slowLog   *obs.SlowLog
	stmtStats *stats.Store
	wal       *wal.Manager
	recovery  wal.RecoveryStats
	closed    atomic.Bool
}

// Open creates an empty database over the finalized schema.
func Open(sch *schema.Schema, opts ...Option) (*DB, error) {
	cfg := config{backend: BackendGremlin}
	for _, o := range opts {
		o(&cfg)
	}
	store := graph.NewStore(sch, cfg.clock)
	var mgr *wal.Manager
	var recovery wal.RecoveryStats
	if cfg.walDir != "" {
		var err error
		mgr, recovery, err = wal.Open(cfg.walDir, store, cfg.walOpts)
		if err != nil {
			return nil, fmt.Errorf("core: recovering write-ahead log: %w", err)
		}
		store.SetMutationHook(mgr.Append)
	}
	var acc plan.Accessor
	switch cfg.backend {
	case BackendGremlin:
		acc = gremlin.New(store)
	case BackendRelational:
		acc = relational.New(store)
	default:
		return nil, fmt.Errorf("core: unknown backend %q (use %q or %q)",
			cfg.backend, BackendGremlin, BackendRelational)
	}
	if cfg.wrap != nil {
		acc = cfg.wrap(acc)
	}
	engine := plan.NewEngine(acc)
	return &DB{store: store, engine: engine, executor: exec.New(engine),
		backend: cfg.backend, views: query.Views{},
		wal: mgr, recovery: recovery}, nil
}

// Checkpoint snapshots the database's full temporal history and contracts
// the write-ahead log; it requires WithWAL. Mutations continue during the
// snapshot — the log rotates first, and replay idempotence covers the
// overlap.
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return fmt.Errorf("core: no write-ahead log configured (use WithWAL)")
	}
	return db.wal.Checkpoint(db.store)
}

// Close releases the write-ahead log, syncing the active segment. It is
// a no-op for databases opened without WithWAL, idempotent (every call
// after the first returns nil), and safe for concurrent use — server
// shutdown paths race a signal-handler Close against a deferred one, and
// exactly one of them closes the WAL.
func (db *DB) Close() error {
	if db.wal == nil || !db.closed.CompareAndSwap(false, true) {
		return nil
	}
	return db.wal.Close()
}

// RecoveryStats reports what Open restored from the write-ahead log
// directory; the zero value means the database is not WAL-backed or the
// directory was empty.
func (db *DB) RecoveryStats() wal.RecoveryStats { return db.recovery }

// WAL exposes the write-ahead log manager (nil without WithWAL).
func (db *DB) WAL() *wal.Manager { return db.wal }

// DefineView registers a named pathway view: a reusable RPE that supplies
// the implicit MATCHES predicate for variables ranging over it (§3.4's
// "additional views can be defined" — PATHS is the built-in view of all
// pathways). Example:
//
//	db.DefineView("Placements", "VM()->OnServer()->Host()")
//	db.Query("Select source(P).name From Placements P")
//
// A variable may combine a view with its own MATCHES predicate; the
// pathway must then satisfy both, with validity-intersection semantics.
func (db *DB) DefineView(name, rpeSrc string) error {
	if name == query.BaseView || name == "" {
		return fmt.Errorf("core: %q cannot name a view", name)
	}
	expr, err := rpe.Parse(rpeSrc)
	if err != nil {
		return err
	}
	if _, err := rpe.Check(expr, db.Schema()); err != nil {
		return err
	}
	db.views[name] = expr
	return nil
}

// Store exposes the underlying temporal graph store.
func (db *DB) Store() *graph.Store { return db.store }

// Schema returns the database schema.
func (db *DB) Schema() *schema.Schema { return db.store.Schema() }

// Backend reports the configured backend name.
func (db *DB) Backend() string { return db.backend }

// Engine exposes the backend engine (for benchmark harnesses).
func (db *DB) Engine() *plan.Engine { return db.engine }

// InsertNode validates and inserts a node, returning its UID.
func (db *DB) InsertNode(class string, fields graph.Fields) (graph.UID, error) {
	return db.store.InsertNode(class, fields)
}

// InsertNodeCtx is InsertNode under a caller context: the context reaches
// the durability hook, so a WAL-backed write's append span lands in the
// request's trace.
func (db *DB) InsertNodeCtx(ctx context.Context, class string, fields graph.Fields) (graph.UID, error) {
	return db.store.InsertNodeCtx(ctx, class, fields)
}

// InsertEdge validates and inserts an edge between two nodes.
func (db *DB) InsertEdge(class string, src, dst graph.UID, fields graph.Fields) (graph.UID, error) {
	return db.store.InsertEdge(class, src, dst, fields)
}

// InsertEdgeCtx is InsertEdge under a caller context.
func (db *DB) InsertEdgeCtx(ctx context.Context, class string, src, dst graph.UID, fields graph.Fields) (graph.UID, error) {
	return db.store.InsertEdgeCtx(ctx, class, src, dst, fields)
}

// Update replaces an object's fields, versioning the previous state.
func (db *DB) Update(uid graph.UID, fields graph.Fields) error {
	return db.store.Update(uid, fields)
}

// UpdateCtx is Update under a caller context.
func (db *DB) UpdateCtx(ctx context.Context, uid graph.UID, fields graph.Fields) error {
	return db.store.UpdateCtx(ctx, uid, fields)
}

// Delete closes an object's current version (cascading to incident edges
// for nodes); its history remains queryable.
func (db *DB) Delete(uid graph.UID) error { return db.store.Delete(uid) }

// DeleteCtx is Delete under a caller context.
func (db *DB) DeleteCtx(ctx context.Context, uid graph.UID) error {
	return db.store.DeleteCtx(ctx, uid)
}

// ApplySnapshot reconciles the database with a full source snapshot — the
// update-by-snapshot service for sources that publish periodic dumps.
func (db *DB) ApplySnapshot(snap *graph.Snapshot) (graph.DiffStats, error) {
	return db.store.ApplySnapshot(snap)
}

// Instrument attaches a metrics registry to the database: the engine
// records per-evaluation latency and counters, the store counts adjacency
// probes and snapshot reconciliations, and the backend counts its index
// probes — all under names prefixed with the component and backend. A nil
// registry detaches. Call before the database starts serving queries.
func (db *DB) Instrument(reg *obs.Registry) {
	db.reg = reg
	db.engine.SetRegistry(reg)
	db.store.SetRegistry(reg)
	if in, ok := db.engine.Accessor().(interface{ Instrument(*obs.Registry) }); ok {
		in.Instrument(reg)
	}
	if db.wal != nil {
		db.wal.Instrument(reg)
	}
}

// SetStatementStats installs a per-statement statistics store: every
// query records its digest, outcome, latency, scan volume, and row
// count into the store's bounded top-K aggregates. A nil store disables
// collection. Call before the database starts serving queries.
func (db *DB) SetStatementStats(s *stats.Store) { db.stmtStats = s }

// StatementStats returns the installed statistics store, if any.
func (db *DB) StatementStats() *stats.Store { return db.stmtStats }

// SetSlowLog installs a slow-query log: every Query/QueryTraced whose
// total time reaches the log's threshold is captured with its text, plan,
// metrics, and trace (when traced). A nil log disables capture.
func (db *DB) SetSlowLog(l *obs.SlowLog) { db.slowLog = l }

// SlowLog returns the installed slow-query log, if any.
func (db *DB) SlowLog() *obs.SlowLog { return db.slowLog }

// SetLimits installs per-query resource guardrails: every subsequent
// Query/QueryContext/QueryTraced on this DB runs under them and aborts
// with exec.ErrLimitExceeded (or ErrDeadlineExceeded for MaxDuration)
// when a bound is crossed. The zero Limits removes all guardrails. Call
// before the database starts serving queries.
func (db *DB) SetLimits(lim exec.Limits) { db.executor.Limits = lim }

// Limits returns the installed per-query guardrails.
func (db *DB) Limits() exec.Limits { return db.executor.Limits }

// Query parses, analyzes, and executes a Nepal query. The result carries
// the evaluation's operator-pipeline metrics; tracing stays off on this
// path, keeping its overhead to counter increments.
func (db *DB) Query(src string) (*exec.Result, error) {
	return db.QueryContext(context.Background(), src)
}

// QueryContext is Query under a context: the query aborts cooperatively
// with exec.ErrCanceled/exec.ErrDeadlineExceeded when ctx is canceled or
// its deadline (or the DB's Limits.MaxDuration, whichever is earlier)
// passes. Aborts are recorded in the db.queries_aborted counter and, as
// entries with a non-"ok" Outcome, in the slow-query log.
func (db *DB) QueryContext(ctx context.Context, src string) (*exec.Result, error) {
	a, err := db.analyze(src)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := db.executor.RunContext(ctx, a)
	db.observeQuery(ctx, src, "", "", res, time.Since(start), err)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// QueryTraced is Query with operator-DAG tracing: the result's Trace
// holds the query's span tree (per-variable groups of Eval spans) and
// Plans the executed plan of each variable, ready for ExplainAnalyze
// rendering or programmatic inspection.
func (db *DB) QueryTraced(src string) (*exec.Result, error) {
	a, err := db.analyze(src)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := db.executor.RunTraced(a, nil)
	db.observeQuery(context.Background(), src, "", "", res, time.Since(start), err)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// observeQuery records one finished query into the registry, the
// per-statement statistics store, and the slow log. Aborted queries
// (err != nil) count into db.queries_aborted and are always logged —
// regardless of duration — with their termination outcome, since a
// query that died 1ms into its deadline is exactly the one an operator
// wants to see. The context supplies the trace ID that links slow-log
// entries to their end-to-end request trace.
//
// digest/norm are the statement's precomputed fingerprint (prepared
// statements carry it from Prepare); when empty it is computed here so
// ad-hoc Query paths stamp the same digest. The digest lands on the
// result, the slow-log entry, and the stats store.
func (db *DB) observeQuery(ctx context.Context, src, digest, norm string, res *exec.Result, dur time.Duration, err error) {
	if digest == "" {
		digest, norm = stats.Fingerprint(src)
	}
	if res != nil {
		res.Digest = digest
	}
	if db.reg != nil {
		db.reg.Counter("db.queries").Add(1)
		if err != nil {
			db.reg.Counter("db.queries_aborted").Add(1)
		}
		db.reg.Histogram("db.query_latency_ms").Observe(float64(dur) / 1e6)
		if res != nil {
			db.reg.HistogramBuckets("db.query_edges_scanned", obs.DefaultSizeBuckets).
				Observe(float64(res.Metrics.EdgesScanned))
		}
	}
	if db.stmtStats != nil {
		o := stats.Observation{Duration: dur, Outcome: exec.Outcome(err)}
		if res != nil {
			o.Edges = int64(res.Metrics.EdgesScanned)
			o.Rows = int64(len(res.Rows))
		}
		db.stmtStats.Observe(digest, norm, o)
	}
	if db.slowLog == nil {
		return
	}
	if err == nil && dur < db.slowLog.Threshold() {
		return
	}
	entry := obs.SlowLogEntry{
		When:     time.Now(),
		Query:    src,
		Duration: dur,
		Outcome:  exec.Outcome(err),
		TraceID:  obs.TraceIDFrom(ctx),
		Digest:   digest,
	}
	if res != nil {
		var planText strings.Builder
		for _, name := range schema.SortedNames(planKeys(res.Plans)) {
			fmt.Fprintf(&planText, "-- variable %s --\n%s", name, res.Plans[name].Explain())
		}
		entry.Plan = planText.String()
		entry.Metrics = res.Metrics.String()
		entry.Trace = res.Trace
	}
	db.slowLog.Observe(entry)
}

func planKeys(m map[string]*plan.Plan) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

// QueryRouted executes a query whose range variables may be routed to
// other databases: routes maps a variable name to the DB serving it.
// Pathways from the routed stores are joined in the executor, with node
// identity crossing store boundaries via the schema-unique id field.
//
// Each call builds a one-shot Router with the DB's limits and no
// retry/breaker policy; long-lived routed workloads should hold a
// NewRouter so breaker state and retry accounting persist across
// queries.
func (db *DB) QueryRouted(src string, routes map[string]*DB) (*exec.Result, error) {
	return db.NewRouter(routes, RoutedOptions{Limits: db.executor.Limits}).Query(src)
}

// RoutedOptions configures a Router's governance and fault tolerance.
type RoutedOptions struct {
	// Limits bounds every query the router runs; zero is unlimited.
	Limits exec.Limits
	// Retry is the per-routed-engine retry policy; zero disables retries.
	Retry exec.RetryPolicy
	// BreakerThreshold opens a routed engine's circuit breaker after that
	// many consecutive failures; 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown, when positive, admits one half-open probe per
	// interval; 0 keeps an open breaker latched.
	BreakerCooldown time.Duration
	// Degrade selects the fallback behavior for unavailable routed
	// engines; see exec.DegradeMode.
	Degrade exec.DegradeMode
	// Reg, when non-nil, receives the exec.routed_retries and
	// exec.breaker_open counters.
	Reg *obs.Registry
}

// Router executes routed (data-integration) queries over a persistent
// executor, so circuit-breaker state and retry accounting carry across
// queries instead of resetting per call. Queries observe into the owning
// DB's registry and slow log like local queries do.
type Router struct {
	db *DB
	x  *exec.Executor
}

// NewRouter returns a router joining this DB (the default engine) with
// the routed databases, under the given governance options.
func (db *DB) NewRouter(routes map[string]*DB, o RoutedOptions) *Router {
	x := exec.New(db.engine)
	x.Limits = o.Limits
	x.Retry = o.Retry
	x.BreakerThreshold = o.BreakerThreshold
	x.BreakerCooldown = o.BreakerCooldown
	x.Degrade = o.Degrade
	x.Reg = o.Reg
	for name, other := range routes {
		x.Route(name, other.engine)
	}
	return &Router{db: db, x: x}
}

// Query executes one routed query.
func (r *Router) Query(src string) (*exec.Result, error) {
	return r.QueryContext(context.Background(), src)
}

// QueryContext is Query under a context; see DB.QueryContext for the
// cancellation contract.
func (r *Router) QueryContext(ctx context.Context, src string) (*exec.Result, error) {
	a, err := r.db.analyze(src)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := r.x.RunContext(ctx, a)
	r.db.observeQuery(ctx, src, "", "", res, time.Since(start), err)
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (db *DB) analyze(src string) (*query.Analyzed, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	return query.AnalyzeWithViews(q, db.Schema(), db.views)
}

// MatchPaths evaluates a bare RPE against the current snapshot and
// returns the matching pathways — the programmatic fast path equivalent
// to "Retrieve P From PATHS P Where P MATCHES <rpe>".
func (db *DB) MatchPaths(rpeSrc string) ([]plan.Pathway, error) {
	return db.MatchPathsAt(rpeSrc, time.Time{})
}

// MatchPathsAt is MatchPaths against the snapshot at time at (the zero
// time means the current snapshot).
func (db *DB) MatchPathsAt(rpeSrc string, at time.Time) ([]plan.Pathway, error) {
	c, err := rpe.CheckString(rpeSrc, db.Schema())
	if err != nil {
		return nil, err
	}
	p, err := plan.Build(c, db.store.Stats())
	if err != nil {
		return nil, err
	}
	view := graph.CurrentView(db.store)
	if !at.IsZero() {
		view = graph.PointView(db.store, at)
	}
	set, err := db.engine.Eval(view, p)
	if err != nil {
		return nil, err
	}
	return set.Paths(), nil
}

// Explain returns the query's textual plan: per-variable anchors and
// operator DAGs (§5.1's Select/Extend/Union form).
func (db *DB) Explain(src string) (string, error) {
	a, err := db.analyze(src)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, rv := range a.Query.Vars {
		checked := a.Checked[rv.Name]
		fmt.Fprintf(&sb, "-- variable %s --\n", rv.Name)
		p, err := plan.Build(checked, db.store.Stats())
		if err != nil {
			fmt.Fprintf(&sb, "anchor: imported from join (%v)\n", err)
			p = plan.BuildSeeded(checked, plan.Forward)
		}
		sb.WriteString(p.Explain())
	}
	return sb.String(), nil
}

// ExplainAnalyze executes the query with operator-DAG tracing and renders
// each variable's plan annotated with the measured per-operator
// statistics — wall time, rows in/out, backend probes, EdgesScanned — in
// the style of EXPLAIN ANALYZE. The traced result is returned alongside
// the rendering for programmatic use.
func (db *DB) ExplainAnalyze(src string) (string, *exec.Result, error) {
	a, err := db.analyze(src)
	if err != nil {
		return "", nil, err
	}
	start := time.Now()
	res, err := db.executor.RunTraced(a, nil)
	dur := time.Since(start)
	db.observeQuery(context.Background(), src, "", "", res, dur, err)
	if err != nil {
		return "", nil, err
	}
	var sb strings.Builder
	for _, rv := range a.Query.Vars {
		p := res.Plans[rv.Name]
		if p == nil {
			continue
		}
		fmt.Fprintf(&sb, "-- variable %s [%s] --\n", rv.Name, db.backend)
		sb.WriteString(p.ExplainAnalyze(varSpan(res.Trace, rv.Name)))
	}
	fmt.Fprintf(&sb, "Query: time=%s rows=%d %s\n",
		obs.FormatDuration(dur), len(res.Rows), res.Metrics)
	return sb.String(), res, nil
}

// varSpan finds the per-variable group span inside a query trace; when
// absent (e.g. the variable never evaluated) the whole trace is used, so
// stats degrade to query-wide aggregates instead of vanishing.
func varSpan(trace *obs.Span, name string) *obs.Span {
	if trace == nil {
		return nil
	}
	for _, child := range trace.Children() {
		if child.Name() == "Var" && child.Detail() == name {
			return child
		}
	}
	return trace
}

// RenderPath formats a pathway against this database's store.
func (db *DB) RenderPath(p plan.Pathway) string { return p.Render(db.store) }

// EvolutionStep is one constant-state slice of a pathway's history: the
// element field values that held during Period, and whether the pathway
// satisfied the RPE then.
type EvolutionStep struct {
	Period    temporal.Interval
	Fields    []graph.Fields
	Satisfies bool
	Exists    bool
}

// PathEvolution answers the §4 path evolution query: for a specific
// pathway (fixed node and edge UIDs), it returns the timeline of field
// values across every version boundary of its elements, with the periods
// during which the pathway satisfied the given RPE. Visualization
// applications drill into a returned pathway with it.
func (db *DB) PathEvolution(p plan.Pathway, rpeSrc string) ([]EvolutionStep, error) {
	c, err := rpe.CheckString(rpeSrc, db.Schema())
	if err != nil {
		return nil, err
	}
	objs := make([]*graph.Object, len(p.Elems))
	boundaries := map[int64]time.Time{}
	for i, uid := range p.Elems {
		obj := db.store.Object(uid)
		if obj == nil {
			return nil, fmt.Errorf("core: pathway element %d not found", uid)
		}
		objs[i] = obj
		for _, v := range obj.Versions {
			boundaries[v.Period.Start.UnixNano()] = v.Period.Start
			if !v.Period.IsCurrent() {
				boundaries[v.Period.End.UnixNano()] = v.Period.End
			}
		}
	}
	times := make([]time.Time, 0, len(boundaries))
	for _, t := range boundaries {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })

	var steps []EvolutionStep
	for i, start := range times {
		var period temporal.Interval
		if i+1 < len(times) {
			period = temporal.Between(start, times[i+1])
		} else {
			period = temporal.Current(start)
		}
		step := EvolutionStep{Period: period, Exists: true}
		elements := make([]rpe.Element, len(objs))
		for j, obj := range objs {
			ver := obj.VersionAt(start)
			if ver == nil {
				step.Exists = false
				break
			}
			step.Fields = append(step.Fields, ver.Fields)
			elements[j] = rpe.Element{Class: obj.Class, Fields: ver.Fields}
		}
		if step.Exists {
			step.Satisfies = c.MatchesPathway(elements)
		}
		steps = append(steps, step)
	}
	return steps, nil
}
