// Package core is Nepal's public API: a model-driven, temporal,
// path-first graph database layer for network inventory and topology.
//
// A DB combines a strongly-typed temporal graph store with one of the two
// query backends (the Gremlin-style property-graph engine or the
// relational engine) and the Nepal query language executor. Open it over
// a schema, load inventory (directly or via update-by-snapshot), and run
// Nepal queries:
//
//	db, _ := core.Open(netmodel.MustSchema())
//	res, _ := db.Query(`
//	    AT '2017-02-15 10:00:00'
//	    Select source(P).name From PATHS P
//	    Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id=23245)`)
//
// Several DBs over different backends can be joined in one query through
// QueryRouted — Nepal's data-integration mode (§3.1).
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/gremlin"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/rpe"
	"repro/internal/schema"
	"repro/internal/temporal"
)

// Backend names accepted by WithBackend.
const (
	BackendGremlin    = "gremlin"
	BackendRelational = "relational"
)

type config struct {
	backend string
	clock   *temporal.Clock
}

// Option configures Open.
type Option func(*config)

// WithBackend selects the query backend: BackendGremlin (default) or
// BackendRelational.
func WithBackend(name string) Option {
	return func(c *config) { c.backend = name }
}

// WithClock installs a transaction clock; tests and deterministic loads
// pass a temporal.NewManualClock.
func WithClock(clock *temporal.Clock) Option {
	return func(c *config) { c.clock = clock }
}

// DB is an open Nepal database.
type DB struct {
	store    *graph.Store
	engine   *plan.Engine
	executor *exec.Executor
	backend  string
	views    query.Views
	reg      *obs.Registry
	slowLog  *obs.SlowLog
}

// Open creates an empty database over the finalized schema.
func Open(sch *schema.Schema, opts ...Option) (*DB, error) {
	cfg := config{backend: BackendGremlin}
	for _, o := range opts {
		o(&cfg)
	}
	store := graph.NewStore(sch, cfg.clock)
	var acc plan.Accessor
	switch cfg.backend {
	case BackendGremlin:
		acc = gremlin.New(store)
	case BackendRelational:
		acc = relational.New(store)
	default:
		return nil, fmt.Errorf("core: unknown backend %q (use %q or %q)",
			cfg.backend, BackendGremlin, BackendRelational)
	}
	engine := plan.NewEngine(acc)
	return &DB{store: store, engine: engine, executor: exec.New(engine),
		backend: cfg.backend, views: query.Views{}}, nil
}

// DefineView registers a named pathway view: a reusable RPE that supplies
// the implicit MATCHES predicate for variables ranging over it (§3.4's
// "additional views can be defined" — PATHS is the built-in view of all
// pathways). Example:
//
//	db.DefineView("Placements", "VM()->OnServer()->Host()")
//	db.Query("Select source(P).name From Placements P")
//
// A variable may combine a view with its own MATCHES predicate; the
// pathway must then satisfy both, with validity-intersection semantics.
func (db *DB) DefineView(name, rpeSrc string) error {
	if name == query.BaseView || name == "" {
		return fmt.Errorf("core: %q cannot name a view", name)
	}
	expr, err := rpe.Parse(rpeSrc)
	if err != nil {
		return err
	}
	if _, err := rpe.Check(expr, db.Schema()); err != nil {
		return err
	}
	db.views[name] = expr
	return nil
}

// Store exposes the underlying temporal graph store.
func (db *DB) Store() *graph.Store { return db.store }

// Schema returns the database schema.
func (db *DB) Schema() *schema.Schema { return db.store.Schema() }

// Backend reports the configured backend name.
func (db *DB) Backend() string { return db.backend }

// Engine exposes the backend engine (for benchmark harnesses).
func (db *DB) Engine() *plan.Engine { return db.engine }

// InsertNode validates and inserts a node, returning its UID.
func (db *DB) InsertNode(class string, fields graph.Fields) (graph.UID, error) {
	return db.store.InsertNode(class, fields)
}

// InsertEdge validates and inserts an edge between two nodes.
func (db *DB) InsertEdge(class string, src, dst graph.UID, fields graph.Fields) (graph.UID, error) {
	return db.store.InsertEdge(class, src, dst, fields)
}

// Update replaces an object's fields, versioning the previous state.
func (db *DB) Update(uid graph.UID, fields graph.Fields) error {
	return db.store.Update(uid, fields)
}

// Delete closes an object's current version (cascading to incident edges
// for nodes); its history remains queryable.
func (db *DB) Delete(uid graph.UID) error { return db.store.Delete(uid) }

// ApplySnapshot reconciles the database with a full source snapshot — the
// update-by-snapshot service for sources that publish periodic dumps.
func (db *DB) ApplySnapshot(snap *graph.Snapshot) (graph.DiffStats, error) {
	return db.store.ApplySnapshot(snap)
}

// Instrument attaches a metrics registry to the database: the engine
// records per-evaluation latency and counters, the store counts adjacency
// probes and snapshot reconciliations, and the backend counts its index
// probes — all under names prefixed with the component and backend. A nil
// registry detaches. Call before the database starts serving queries.
func (db *DB) Instrument(reg *obs.Registry) {
	db.reg = reg
	db.engine.SetRegistry(reg)
	db.store.SetRegistry(reg)
	if in, ok := db.engine.Accessor().(interface{ Instrument(*obs.Registry) }); ok {
		in.Instrument(reg)
	}
}

// SetSlowLog installs a slow-query log: every Query/QueryTraced whose
// total time reaches the log's threshold is captured with its text, plan,
// metrics, and trace (when traced). A nil log disables capture.
func (db *DB) SetSlowLog(l *obs.SlowLog) { db.slowLog = l }

// SlowLog returns the installed slow-query log, if any.
func (db *DB) SlowLog() *obs.SlowLog { return db.slowLog }

// Query parses, analyzes, and executes a Nepal query. The result carries
// the evaluation's operator-pipeline metrics; tracing stays off on this
// path, keeping its overhead to counter increments.
func (db *DB) Query(src string) (*exec.Result, error) {
	a, err := db.analyze(src)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := db.executor.Run(a)
	if err != nil {
		return nil, err
	}
	db.observeQuery(src, res, time.Since(start))
	return res, nil
}

// QueryTraced is Query with operator-DAG tracing: the result's Trace
// holds the query's span tree (per-variable groups of Eval spans) and
// Plans the executed plan of each variable, ready for ExplainAnalyze
// rendering or programmatic inspection.
func (db *DB) QueryTraced(src string) (*exec.Result, error) {
	a, err := db.analyze(src)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := db.executor.RunTraced(a, nil)
	if err != nil {
		return nil, err
	}
	db.observeQuery(src, res, time.Since(start))
	return res, nil
}

// observeQuery records one finished query into the registry and the slow
// log.
func (db *DB) observeQuery(src string, res *exec.Result, dur time.Duration) {
	if db.reg != nil {
		db.reg.Counter("db.queries").Add(1)
		db.reg.Histogram("db.query_latency_ms").Observe(float64(dur) / 1e6)
	}
	if db.slowLog != nil && dur >= db.slowLog.Threshold() {
		var planText strings.Builder
		for _, name := range schema.SortedNames(planKeys(res.Plans)) {
			fmt.Fprintf(&planText, "-- variable %s --\n%s", name, res.Plans[name].Explain())
		}
		db.slowLog.Observe(obs.SlowLogEntry{
			When:     time.Now(),
			Query:    src,
			Duration: dur,
			Plan:     planText.String(),
			Metrics:  res.Metrics.String(),
			Trace:    res.Trace,
		})
	}
}

func planKeys(m map[string]*plan.Plan) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

// QueryRouted executes a query whose range variables may be routed to
// other databases: routes maps a variable name to the DB serving it.
// Pathways from the routed stores are joined in the executor, with node
// identity crossing store boundaries via the schema-unique id field.
func (db *DB) QueryRouted(src string, routes map[string]*DB) (*exec.Result, error) {
	a, err := db.analyze(src)
	if err != nil {
		return nil, err
	}
	x := exec.New(db.engine)
	for name, other := range routes {
		x.Route(name, other.engine)
	}
	return x.Run(a)
}

func (db *DB) analyze(src string) (*query.Analyzed, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	return query.AnalyzeWithViews(q, db.Schema(), db.views)
}

// MatchPaths evaluates a bare RPE against the current snapshot and
// returns the matching pathways — the programmatic fast path equivalent
// to "Retrieve P From PATHS P Where P MATCHES <rpe>".
func (db *DB) MatchPaths(rpeSrc string) ([]plan.Pathway, error) {
	return db.MatchPathsAt(rpeSrc, time.Time{})
}

// MatchPathsAt is MatchPaths against the snapshot at time at (the zero
// time means the current snapshot).
func (db *DB) MatchPathsAt(rpeSrc string, at time.Time) ([]plan.Pathway, error) {
	c, err := rpe.CheckString(rpeSrc, db.Schema())
	if err != nil {
		return nil, err
	}
	p, err := plan.Build(c, db.store.Stats())
	if err != nil {
		return nil, err
	}
	view := graph.CurrentView(db.store)
	if !at.IsZero() {
		view = graph.PointView(db.store, at)
	}
	set, err := db.engine.Eval(view, p)
	if err != nil {
		return nil, err
	}
	return set.Paths(), nil
}

// Explain returns the query's textual plan: per-variable anchors and
// operator DAGs (§5.1's Select/Extend/Union form).
func (db *DB) Explain(src string) (string, error) {
	a, err := db.analyze(src)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, rv := range a.Query.Vars {
		checked := a.Checked[rv.Name]
		fmt.Fprintf(&sb, "-- variable %s --\n", rv.Name)
		p, err := plan.Build(checked, db.store.Stats())
		if err != nil {
			fmt.Fprintf(&sb, "anchor: imported from join (%v)\n", err)
			p = plan.BuildSeeded(checked, plan.Forward)
		}
		sb.WriteString(p.Explain())
	}
	return sb.String(), nil
}

// ExplainAnalyze executes the query with operator-DAG tracing and renders
// each variable's plan annotated with the measured per-operator
// statistics — wall time, rows in/out, backend probes, EdgesScanned — in
// the style of EXPLAIN ANALYZE. The traced result is returned alongside
// the rendering for programmatic use.
func (db *DB) ExplainAnalyze(src string) (string, *exec.Result, error) {
	a, err := db.analyze(src)
	if err != nil {
		return "", nil, err
	}
	start := time.Now()
	res, err := db.executor.RunTraced(a, nil)
	if err != nil {
		return "", nil, err
	}
	dur := time.Since(start)
	db.observeQuery(src, res, dur)
	var sb strings.Builder
	for _, rv := range a.Query.Vars {
		p := res.Plans[rv.Name]
		if p == nil {
			continue
		}
		fmt.Fprintf(&sb, "-- variable %s [%s] --\n", rv.Name, db.backend)
		sb.WriteString(p.ExplainAnalyze(varSpan(res.Trace, rv.Name)))
	}
	fmt.Fprintf(&sb, "Query: time=%s rows=%d %s\n",
		obs.FormatDuration(dur), len(res.Rows), res.Metrics)
	return sb.String(), res, nil
}

// varSpan finds the per-variable group span inside a query trace; when
// absent (e.g. the variable never evaluated) the whole trace is used, so
// stats degrade to query-wide aggregates instead of vanishing.
func varSpan(trace *obs.Span, name string) *obs.Span {
	if trace == nil {
		return nil
	}
	for _, child := range trace.Children() {
		if child.Name() == "Var" && child.Detail() == name {
			return child
		}
	}
	return trace
}

// RenderPath formats a pathway against this database's store.
func (db *DB) RenderPath(p plan.Pathway) string { return p.Render(db.store) }

// EvolutionStep is one constant-state slice of a pathway's history: the
// element field values that held during Period, and whether the pathway
// satisfied the RPE then.
type EvolutionStep struct {
	Period    temporal.Interval
	Fields    []graph.Fields
	Satisfies bool
	Exists    bool
}

// PathEvolution answers the §4 path evolution query: for a specific
// pathway (fixed node and edge UIDs), it returns the timeline of field
// values across every version boundary of its elements, with the periods
// during which the pathway satisfied the given RPE. Visualization
// applications drill into a returned pathway with it.
func (db *DB) PathEvolution(p plan.Pathway, rpeSrc string) ([]EvolutionStep, error) {
	c, err := rpe.CheckString(rpeSrc, db.Schema())
	if err != nil {
		return nil, err
	}
	objs := make([]*graph.Object, len(p.Elems))
	boundaries := map[int64]time.Time{}
	for i, uid := range p.Elems {
		obj := db.store.Object(uid)
		if obj == nil {
			return nil, fmt.Errorf("core: pathway element %d not found", uid)
		}
		objs[i] = obj
		for _, v := range obj.Versions {
			boundaries[v.Period.Start.UnixNano()] = v.Period.Start
			if !v.Period.IsCurrent() {
				boundaries[v.Period.End.UnixNano()] = v.Period.End
			}
		}
	}
	times := make([]time.Time, 0, len(boundaries))
	for _, t := range boundaries {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })

	var steps []EvolutionStep
	for i, start := range times {
		var period temporal.Interval
		if i+1 < len(times) {
			period = temporal.Between(start, times[i+1])
		} else {
			period = temporal.Current(start)
		}
		step := EvolutionStep{Period: period, Exists: true}
		elements := make([]rpe.Element, len(objs))
		for j, obj := range objs {
			ver := obj.VersionAt(start)
			if ver == nil {
				step.Exists = false
				break
			}
			step.Fields = append(step.Fields, ver.Fields)
			elements[j] = rpe.Element{Class: obj.Class, Fields: ver.Fields}
		}
		if step.Exists {
			step.Satisfies = c.MatchesPathway(elements)
		}
		steps = append(steps, step)
	}
	return steps, nil
}
