package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/temporal"
)

// openWALDemo opens a WAL-backed database in dir; build controls whether
// the demo topology is loaded (first open) or expected to come back from
// recovery (reopen).
func openWALDemo(t *testing.T, dir string, build bool) *DB {
	t.Helper()
	db, err := Open(netmodel.MustSchema(),
		WithClock(temporal.NewManualClock(t0)), WithWAL(dir))
	if err != nil {
		t.Fatal(err)
	}
	if build {
		if _, err := netmodel.BuildDemo(db.Store(), 1000); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestWALRecoveryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	db := openWALDemo(t, dir, true)
	if db.WAL() == nil {
		t.Fatal("WithWAL did not attach a manager")
	}
	// Mutate past the demo build so recovery covers updates and deletes;
	// clock advances give the AT queries below clean slices between the
	// insert, the update, and the delete.
	db.Store().Clock().Advance(time.Hour)
	vm, err := db.InsertNode("VM", graph.Fields{"id": 9001, "name": "vm-9001", "status": "Green"})
	if err != nil {
		t.Fatal(err)
	}
	db.Store().Clock().Advance(time.Hour)
	if err := db.Update(vm, graph.Fields{"id": 9001, "name": "vm-9001", "status": "Red"}); err != nil {
		t.Fatal(err)
	}
	victim, ok := db.Store().LookupUnique(schema.NodeRoot, "id", 1001)
	if !ok {
		t.Fatal("demo host 1001 missing")
	}
	if err := db.Delete(victim); err != nil {
		t.Fatal(err)
	}
	live, versions := db.Store().Counts()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen WITHOUT rebuilding: everything must come back from the log.
	db2 := openWALDemo(t, dir, false)
	defer db2.Close()
	stats := db2.RecoveryStats()
	if stats.RecordsApplied == 0 {
		t.Fatalf("nothing recovered: %+v", stats)
	}
	if l2, v2 := db2.Store().Counts(); l2 != live || v2 != versions {
		t.Fatalf("recovered counts (%d live, %d versions) != original (%d, %d)", l2, v2, live, versions)
	}
	if vs := db2.Store().CheckInvariants(); len(vs) != 0 {
		t.Fatalf("recovered store violates invariants: %v", vs)
	}

	// The deleted host is gone from current queries but its full version
	// history survived recovery.
	cur, err := db2.Query("Select source(H).name From PATHS H Where H MATCHES Host(id=1001)")
	if err != nil {
		t.Fatal(err)
	}
	if len(cur.Rows) != 0 {
		t.Errorf("deleted host still visible now: %d rows", len(cur.Rows))
	}
	host := db2.Store().Object(victim)
	if host == nil || host.Current() != nil {
		t.Fatal("deleted host missing or resurrected after recovery")
	}
	if v := host.VersionAt(t0.Add(30 * time.Minute)); v == nil || fmt.Sprint(v.Fields["id"]) != "1001" {
		t.Errorf("deleted host's pre-delete version lost: %+v", v)
	}

	// The updated VM's past is queryable at a slice before the update.
	past, err := db2.Query(fmt.Sprintf(
		"AT '%s' Select source(V).name From PATHS V Where V MATCHES VM(status='Green', id=9001)",
		t0.Add(90*time.Minute).Format("2006-01-02 15:04:05")))
	if err != nil {
		t.Fatal(err)
	}
	if len(past.Rows) != 1 {
		t.Errorf("updated VM's past state lost: %d rows", len(past.Rows))
	}
	red, err := db2.Query("Select source(V).name From PATHS V Where V MATCHES VM(status='Red')")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range red.Rows {
		if len(row.Values) > 0 && fmt.Sprint(row.Values[0]) == "vm-9001" {
			found = true
		}
	}
	if !found {
		t.Error("recovered update not visible in query results")
	}

	// The recovered database keeps accepting durable writes.
	if _, err := db2.InsertNode("VM", graph.Fields{"id": 9002, "name": "vm-9002", "status": "Green"}); err != nil {
		t.Fatal(err)
	}
}

func TestWALCheckpointAndReopen(t *testing.T) {
	dir := t.TempDir()
	db := openWALDemo(t, dir, true)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint mutations land in the rotated segment.
	if _, err := db.InsertNode("VM", graph.Fields{"id": 9100, "name": "vm-9100", "status": "Green"}); err != nil {
		t.Fatal(err)
	}
	live, versions := db.Store().Counts()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	db2 := openWALDemo(t, dir, false)
	defer db2.Close()
	db2.Instrument(reg)
	stats := db2.RecoveryStats()
	if !stats.CheckpointLoaded {
		t.Fatalf("checkpoint not used: %+v", stats)
	}
	if l2, v2 := db2.Store().Counts(); l2 != live || v2 != versions {
		t.Fatalf("recovered counts (%d live, %d versions) != original (%d, %d)", l2, v2, live, versions)
	}
	if reg.Counter("wal.recoveries").Value() != 1 {
		t.Error("recovery not visible in metrics")
	}
}

func TestCheckpointWithoutWAL(t *testing.T) {
	db, err := Open(netmodel.MustSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err == nil {
		t.Error("Checkpoint without WithWAL succeeded")
	}
	if err := db.Close(); err != nil {
		t.Errorf("Close without WAL: %v", err)
	}
}
