package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/netmodel"
	"repro/internal/stats"
	"repro/internal/temporal"
)

func TestPreparedCarriesDigest(t *testing.T) {
	db, _, _ := openDemo(t, BackendGremlin)
	st := stats.NewStore(16)
	db.SetStatementStats(st)

	p1, err := db.Prepare("Select source(P).name From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id=1001)")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := db.Prepare("Select source(P).name From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id=1002)")
	if err != nil {
		t.Fatal(err)
	}
	if p1.Digest() == "" || p1.Digest() != p2.Digest() {
		t.Fatalf("literal-only variants should share a digest: %q vs %q", p1.Digest(), p2.Digest())
	}
	res, err := p1.Exec(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != p1.Digest() {
		t.Fatalf("result digest %q != prepared digest %q", res.Digest, p1.Digest())
	}
	// Ad-hoc Query stamps the same digest as the prepared path.
	res2, err := db.Query("Select source(P).name From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id=1001)")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Digest != p1.Digest() {
		t.Fatalf("ad-hoc digest %q != prepared digest %q", res2.Digest, p1.Digest())
	}
	snap := st.Snapshot(stats.SortCalls, 0)
	if len(snap.Statements) != 1 || snap.Statements[0].Calls != 2 {
		t.Fatalf("stats store should hold one digest with 2 calls: %+v", snap)
	}
	if snap.Statements[0].Statement == "" || snap.Statements[0].EdgesScanned == 0 {
		t.Fatalf("aggregate missing normalized text or edges: %+v", snap.Statements[0])
	}
}

// BenchmarkStatsOverhead pins the per-statement statistics cost on the
// hot query path: the same prepared statement executed with the store
// attached ("on") and detached ("off"). The acceptance bar is ≤3%
// — the store adds one read-locked map hit plus a handful of atomic
// adds and one histogram observation per query.
func BenchmarkStatsOverhead(b *testing.B) {
	open := func(b *testing.B, attach bool) *Prepared {
		clock := temporal.NewManualClock(t0)
		db, err := Open(netmodel.MustSchema(), WithClock(clock))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := netmodel.BuildDemo(db.Store(), 1000); err != nil {
			b.Fatal(err)
		}
		if attach {
			db.SetStatementStats(stats.NewStore(0))
		}
		p, err := db.Prepare("Select source(P).name From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id=1001)")
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	run := func(b *testing.B, attach bool) {
		p := open(b, attach)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Exec(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
	// paired interleaves executions against an off-DB and an on-DB,
	// timing each side separately. Sequential off-then-on sub-benchmark
	// runs are biased by heap growth and machine-load drift between
	// them; alternating query-by-query exposes both configurations to
	// the same noise, so the reported overhead-% is a fair paired
	// estimate — the number the ≤3% acceptance bar is judged on.
	b.Run("paired", func(b *testing.B) {
		ctx := context.Background()
		off := open(b, false)
		on := open(b, true)
		for i := 0; i < 2; i++ { // warm both paths before timing
			if _, err := off.Exec(ctx); err != nil {
				b.Fatal(err)
			}
			if _, err := on.Exec(ctx); err != nil {
				b.Fatal(err)
			}
		}
		var tOff, tOn time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			_, errOff := off.Exec(ctx)
			tOff += time.Since(start)
			start = time.Now()
			_, errOn := on.Exec(ctx)
			tOn += time.Since(start)
			if errOff != nil || errOn != nil {
				b.Fatal(errOff, errOn)
			}
		}
		b.StopTimer()
		n := float64(b.N)
		b.ReportMetric(float64(tOff.Nanoseconds())/n, "ns/query-off")
		b.ReportMetric(float64(tOn.Nanoseconds())/n, "ns/query-on")
		b.ReportMetric((float64(tOn)-float64(tOff))*100/float64(tOff), "overhead-%")
	})
}
