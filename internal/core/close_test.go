package core

import (
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/netmodel"
)

// TestCloseIdempotentConcurrent pins the Close contract server shutdown
// depends on: any number of Close calls, from any number of goroutines,
// all return nil, and the WAL is closed exactly once (a second close of
// the underlying segment would error).
func TestCloseIdempotentConcurrent(t *testing.T) {
	db, err := Open(netmodel.MustSchema(), WithWAL(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertNode("ComputeHost", graph.Fields{"id": int64(1), "name": "h1", "rack": "r1", "status": "Active"}); err != nil {
		t.Fatal(err)
	}
	const closers = 16
	var wg sync.WaitGroup
	errs := make([]error, closers)
	for i := 0; i < closers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = db.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("concurrent Close %d: %v", i, err)
		}
	}
	if err := db.Close(); err != nil {
		t.Errorf("Close after Close: %v", err)
	}
}

// TestCloseNoWAL asserts Close stays a nil no-op without WithWAL.
func TestCloseNoWAL(t *testing.T) {
	db, err := Open(netmodel.MustSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
