package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/netmodel"
	"repro/internal/temporal"
)

var t0 = time.Date(2017, 2, 15, 0, 0, 0, 0, time.UTC)

func openDemo(t *testing.T, backend string) (*DB, *netmodel.Demo, *temporal.Clock) {
	t.Helper()
	clock := temporal.NewManualClock(t0)
	db, err := Open(netmodel.MustSchema(), WithBackend(backend), WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	d, err := netmodel.BuildDemo(db.Store(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	return db, d, clock
}

func TestOpenBackends(t *testing.T) {
	for _, b := range []string{BackendGremlin, BackendRelational} {
		db, err := Open(netmodel.MustSchema(), WithBackend(b))
		if err != nil {
			t.Fatal(err)
		}
		if db.Backend() != b {
			t.Errorf("backend = %q", db.Backend())
		}
	}
	if _, err := Open(netmodel.MustSchema(), WithBackend("oracle")); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestQueryEndToEnd(t *testing.T) {
	db, d, _ := openDemo(t, BackendGremlin)
	res, err := db.Query(fmt.Sprintf(
		"Select source(P).name From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id=%d)",
		1001))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	_ = d
}

func TestMatchPaths(t *testing.T) {
	db, d, clock := openDemo(t, BackendRelational)
	paths, err := db.MatchPaths("VNF()->[Vertical()]{1,6}->Host()")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("paths = %d, want 3 (two firewall chains, one dns chain)", len(paths))
	}
	// Time-travel form: delete the DNS chain and query the past.
	clock.SetNow(t0.Add(2 * time.Hour))
	if err := db.Delete(d.DNSVNF); err != nil {
		t.Fatal(err)
	}
	now, err := db.MatchPaths("VNF()->[Vertical()]{1,6}->Host()")
	if err != nil {
		t.Fatal(err)
	}
	if len(now) != 2 {
		t.Fatalf("paths after delete = %d, want 2", len(now))
	}
	past, err := db.MatchPathsAt("VNF()->[Vertical()]{1,6}->Host()", t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(past) != 3 {
		t.Fatalf("paths in the past = %d, want 3", len(past))
	}
}

func TestExplain(t *testing.T) {
	db, _, _ := openDemo(t, BackendGremlin)
	out, err := db.Explain("Retrieve P From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id=1001)")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"variable P", "Select:", "Host(id=1001)"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q in:\n%s", want, out)
		}
	}
}

func TestQueryRoutedAcrossBackends(t *testing.T) {
	dbA, d, _ := openDemo(t, BackendGremlin)
	dbB, _, _ := openDemo(t, BackendRelational)
	res, err := dbA.QueryRouted(fmt.Sprintf(`Retrieve Phys
		From PATHS D1, PATHS Phys
		Where D1 MATCHES VNF(id=%d)->[Vertical()]{1,6}->Host()
		And Phys MATCHES PhysicalLink(){1,4}
		And source(Phys)=target(D1)`, 1011),
		map[string]*DB{"Phys": dbB})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("routed query returned nothing")
	}
	_ = d
}

func TestPathEvolution(t *testing.T) {
	db, d, clock := openDemo(t, BackendGremlin)
	paths, err := db.MatchPaths(fmt.Sprintf("VM(id=%d)->OnServer()->Host()", 1008))
	if err != nil || len(paths) != 1 {
		t.Fatalf("vm3 placement paths = %v, %v", paths, err)
	}
	p := paths[0]

	// Flip vm-3's status Red at 3h, Green at 5h.
	fields := db.Store().Object(d.VM3).Current().Fields
	set := func(at time.Time, status string) {
		clock.SetNow(at)
		next := fields.Clone()
		next["status"] = status
		if err := db.Update(d.VM3, next); err != nil {
			t.Fatal(err)
		}
		fields = next
	}
	set(t0.Add(3*time.Hour), "Red")
	set(t0.Add(5*time.Hour), "Green")

	steps, err := db.PathEvolution(p, "VM(status='Green')->OnServer()->Host()")
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) < 3 {
		t.Fatalf("steps = %d", len(steps))
	}
	// Slices before the last element's insertion report Exists=false; once
	// all elements exist, the green periods satisfy and the red one does
	// not. The final (current) slice is green again.
	var satisfied, unsatisfied int
	for _, s := range steps {
		if !s.Exists {
			continue
		}
		if s.Satisfies {
			satisfied++
		} else {
			unsatisfied++
		}
	}
	if satisfied < 2 || unsatisfied < 1 {
		t.Errorf("satisfied=%d unsatisfied=%d steps=%v", satisfied, unsatisfied, steps)
	}
	last := steps[len(steps)-1]
	if !last.Exists || !last.Satisfies || !last.Period.IsCurrent() {
		t.Errorf("final step = %+v, want current green", last)
	}
}

func TestApplySnapshotThroughDB(t *testing.T) {
	db, err := Open(netmodel.MustSchema(), WithClock(temporal.NewManualClock(t0)))
	if err != nil {
		t.Fatal(err)
	}
	snap := &graph.Snapshot{
		Nodes: []graph.NodeSpec{
			{Class: "VMWare", Fields: graph.Fields{"id": 1, "status": "Green"}},
			{Class: "ComputeHost", Fields: graph.Fields{"id": 2}},
		},
		Edges: []graph.EdgeSpec{
			{Class: netmodel.OnServer, SrcID: 1, DstID: 2, Fields: graph.Fields{"id": 3}},
		},
	}
	stats, err := db.ApplySnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NodesInserted != 2 || stats.EdgesInserted != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	paths, err := db.MatchPaths("VM()->OnServer()->Host()")
	if err != nil || len(paths) != 1 {
		t.Fatalf("paths = %v, %v", paths, err)
	}
}

func TestNamedPathwayViews(t *testing.T) {
	db, d, clock := openDemo(t, BackendGremlin)

	// A view supplies the implicit MATCHES predicate (§3.4).
	if err := db.DefineView("Placements", "VM()->OnServer()->Host()"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`Select source(P).name, target(P).name From Placements P`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("view rows = %d, want 3 placements", len(res.Rows))
	}

	// A view combined with an explicit MATCHES must satisfy both: only the
	// host-1 placements remain.
	res, err = db.Query(fmt.Sprintf(
		`Retrieve P From Placements P Where P MATCHES VM()->OnServer()->Host(id=%d)`, 1001))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("filtered view rows = %d, want 2", len(res.Rows))
	}

	// View constraints carry temporal semantics: restrict the view to
	// green VMs, flip vm-1 red, and the placement drops out of the view.
	if err := db.DefineView("GreenPlacements", "VM(status='Green')->OnServer()->Host()"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Hour)
	red := db.Store().Object(d.VM1).Current().Fields.Clone()
	red["status"] = "Red"
	if err := db.Update(d.VM1, red); err != nil {
		t.Fatal(err)
	}
	res, err = db.Query(`Retrieve P From GreenPlacements P`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("green placements now = %d, want 2", len(res.Rows))
	}

	// Unknown views and reserved names are rejected.
	if _, err := db.Query(`Retrieve P From Ghost P`); err == nil {
		t.Error("unknown view accepted")
	}
	if err := db.DefineView("PATHS", "VM()"); err == nil {
		t.Error("redefining the base view accepted")
	}
	if err := db.DefineView("Bad", "Blob()"); err == nil {
		t.Error("view over unknown class accepted")
	}
}
