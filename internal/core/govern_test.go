package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/exec"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/temporal"
)

// openChaosDemo opens a demo DB whose backend is wrapped for fault and
// latency injection, returning the wrapper for test control.
func openChaosDemo(t *testing.T, opts ...chaos.Option) (*DB, *chaos.Accessor) {
	t.Helper()
	var ca *chaos.Accessor
	db, err := Open(netmodel.MustSchema(),
		WithBackend(BackendGremlin),
		WithClock(temporal.NewManualClock(t0)),
		WithAccessorWrapper(func(a plan.Accessor) plan.Accessor {
			ca = chaos.Wrap(a, opts...)
			return ca
		}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := netmodel.BuildDemo(db.Store(), 1000); err != nil {
		t.Fatal(err)
	}
	return db, ca
}

const demoQuery = "Retrieve P From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host()"

func TestQueryContextTypedAborts(t *testing.T) {
	// Slow every probe so the demo query cannot finish inside 1ms.
	db, _ := openChaosDemo(t, chaos.WithLatency(200*time.Microsecond))
	before := runtime.NumGoroutine()

	// MaxDuration=1ms aborts promptly with the typed deadline error.
	db.SetLimits(exec.Limits{MaxDuration: time.Millisecond})
	start := time.Now()
	_, err := db.Query(demoQuery)
	if !errors.Is(err, exec.ErrDeadlineExceeded) {
		t.Fatalf("MaxDuration query = %v, want ErrDeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("1ms budget aborted after %v", elapsed)
	}

	// A pre-canceled context aborts before any real work.
	db.SetLimits(exec.Limits{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, demoQuery); !errors.Is(err, exec.ErrCanceled) {
		t.Fatalf("canceled QueryContext = %v, want ErrCanceled", err)
	}

	// A context deadline maps to the deadline error, not cancellation.
	ctx, cancel = context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := db.QueryContext(ctx, demoQuery); !errors.Is(err, exec.ErrDeadlineExceeded) {
		t.Fatalf("deadline QueryContext = %v, want ErrDeadlineExceeded", err)
	}

	// Cooperative aborts are synchronous: no goroutines may leak. Allow
	// the runtime a moment to retire timer goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines leaked across aborted queries: %d -> %d", before, now)
	}
}

func TestAbortObservability(t *testing.T) {
	db, _, _ := openDemo(t, BackendGremlin)
	reg := obs.NewRegistry()
	db.Instrument(reg)
	// Threshold far above any demo query: only the abort rule can log.
	db.SetSlowLog(obs.NewSlowLog(time.Hour, nil))

	if _, err := db.Query(demoQuery); err != nil {
		t.Fatal(err)
	}
	db.SetLimits(exec.Limits{MaxPaths: 1})
	if _, err := db.Query(demoQuery); !errors.Is(err, exec.ErrLimitExceeded) {
		t.Fatalf("limited query = %v, want ErrLimitExceeded", err)
	}

	if n := reg.Counter("db.queries").Value(); n != 2 {
		t.Errorf("db.queries = %d, want 2", n)
	}
	if n := reg.Counter("db.queries_aborted").Value(); n != 1 {
		t.Errorf("db.queries_aborted = %d, want 1", n)
	}
	entries := db.SlowLog().Entries()
	if len(entries) != 1 {
		t.Fatalf("slow log entries = %d, want only the aborted query", len(entries))
	}
	e := entries[0]
	if e.Outcome != "limit" || !e.Aborted() {
		t.Errorf("entry outcome = %q (aborted=%v), want limit", e.Outcome, e.Aborted())
	}
	if e.Query != demoQuery {
		t.Errorf("entry query = %q", e.Query)
	}
}

func routedDemoQuery(t *testing.T, db *DB, d *netmodel.Demo) string {
	t.Helper()
	id := db.Store().Object(d.FirewallVNF).Current().Fields["id"]
	return fmt.Sprintf(`Retrieve Phys
		From PATHS D1, PATHS Phys
		Where D1 MATCHES VNF(id=%v)->[Vertical()]{1,6}->Host()
		And Phys MATCHES PhysicalLink(){1,4}
		And source(Phys)=target(D1)`, id)
}

func TestRouterBreakerAndFallbackPersist(t *testing.T) {
	db, d, _ := openDemo(t, BackendGremlin)
	dead, ca := openChaosDemo(t, chaos.WithFailProb(1, 17))
	reg := obs.NewRegistry()
	src := routedDemoQuery(t, db, d)

	r := db.NewRouter(map[string]*DB{"Phys": dead}, RoutedOptions{
		BreakerThreshold: 1,
		Degrade:          exec.DegradeFallback,
		Reg:              reg,
	})
	// First query: the probe fails, the breaker opens, the fallback serves.
	res, err := r.Query(src)
	if err != nil {
		t.Fatalf("first routed query = %v, want degraded fallback", err)
	}
	if !res.Degraded || len(res.Rows) == 0 {
		t.Fatalf("first query: degraded=%v rows=%d", res.Degraded, len(res.Rows))
	}
	if n := reg.Counter("exec.breaker_open").Value(); n != 1 {
		t.Fatalf("exec.breaker_open = %d, want 1", n)
	}
	// Second query on the SAME router: the breaker is still open, so the
	// dead engine is not probed again — breaker state persists.
	before := ca.Calls()
	res, err = r.Query(src)
	if err != nil || !res.Degraded {
		t.Fatalf("second routed query = %v (degraded=%v)", err, res.Degraded)
	}
	if ca.Calls() != before {
		t.Errorf("open breaker probed the dead engine again (%d -> %d calls)", before, ca.Calls())
	}
	// The degraded answer agrees with a fully healthy routed run.
	healthy, _, _ := openDemo(t, BackendRelational)
	want, err := db.QueryRouted(src, map[string]*DB{"Phys": healthy})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want.Rows) {
		t.Errorf("degraded rows = %d, healthy routed rows = %d", len(res.Rows), len(want.Rows))
	}
}

func TestRouterRetryRecovers(t *testing.T) {
	db, d, _ := openDemo(t, BackendGremlin)
	flaky, ca := openChaosDemo(t, chaos.WithFailFirst(2))
	reg := obs.NewRegistry()
	r := db.NewRouter(map[string]*DB{"Phys": flaky}, RoutedOptions{
		Retry: exec.RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Microsecond},
		Reg:   reg,
	})
	res, err := r.Query(routedDemoQuery(t, db, d))
	if err != nil {
		t.Fatalf("flaky routed query = %v, want retried success", err)
	}
	if res.Degraded || len(res.Rows) == 0 {
		t.Fatalf("degraded=%v rows=%d, want healthy retried result", res.Degraded, len(res.Rows))
	}
	if ca.Faults() != 2 {
		t.Errorf("faults = %d, want 2", ca.Faults())
	}
	if n := reg.Counter("exec.routed_retries").Value(); n != 2 {
		t.Errorf("exec.routed_retries = %d, want 2", n)
	}
}
