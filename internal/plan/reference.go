package plan

import (
	"repro/internal/graph"
	"repro/internal/rpe"
)

// ReferenceEval is the executable specification of query evaluation: it
// enumerates every simple pathway in the store up to the RPE's length
// bound and keeps those whose exact validity (per ComputeValidity)
// overlaps the view window. It uses no anchors, no indexes, and no
// pruning, so it is exponentially slow — useful only on small graphs as
// the differential-testing oracle both backends are checked against.
func ReferenceEval(view graph.View, c *rpe.Checked) *PathwaySet {
	st := view.Store()
	out := NewPathwaySet()
	maxElems := c.MaxLen() + 2 // implicit endpoints

	lo, hi := st.UIDRange()
	var extend func(elems []graph.UID)
	extend = func(elems []graph.UID) {
		validity := ComputeValidity(st, c, elems)
		if !validity.IsEmpty() {
			for _, iv := range validity {
				if iv.Overlaps(view.Window()) {
					out.Add(Pathway{Elems: cloneUIDs(elems), Validity: validity})
					break
				}
			}
		}
		if len(elems) >= maxElems {
			return
		}
		tail := elems[len(elems)-1]
		for _, e := range st.OutEdges(tail) {
			eo := st.Object(e)
			if !view.Visible(eo) {
				continue
			}
			next := append(cloneUIDs(elems), e, eo.Dst)
			if hasDuplicates(next) {
				continue
			}
			extend(next)
		}
	}
	for uid := lo; uid < hi; uid++ {
		obj := st.Object(uid)
		if obj == nil || obj.IsEdge() || !view.Visible(obj) {
			continue
		}
		extend([]graph.UID{uid})
	}
	return out
}
