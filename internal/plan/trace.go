package plan

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/rpe"
)

// traceEval accumulates one traced evaluation's operator-DAG spans. Each
// logical operator of the plan — the Select for every anchor atom, the
// Extend for every (edge atom, direction) pair the search expands
// through, and the Union that assembles pathways from half-searches —
// owns one span whose duration and counters are the totals across all of
// the operator's executions during the search.
//
// The hot search loops do not touch the spans directly: an evaluation is
// single-goroutine, so each operator's statistics accumulate in a plain
// opNode (field adds, no locks, no counter-name hashing) and flush into
// the span exactly once when the evaluation finishes. This keeps traced
// evaluation close to metered cost — the per-probe price is a slice
// index and a few integer adds, with clock reads sampled (see opNode),
// pinned end to end by BenchmarkTelemetryOverhead.
type traceEval struct {
	root    *obs.Span
	backend string
	sfx     string    // " [backend]", the suffix of every operator detail
	labels  []string  // cached atom renderings, indexed by atom ID
	selects []*opNode // indexed by atom ID
	extends []*opNode // indexed by (atom ID+1)*2 + direction; slot 0/1 = unpruned
	union   *opNode
	seedSel *opNode
	flushed bool
}

// opNode is one operator's lock-free statistics accumulator, paired with
// the span it flushes into.
//
// Operator wall time is sampled, not measured exhaustively: a clock pair
// per probe was the single largest traced-evaluation cost (a search can
// issue hundreds of adjacency probes, and two clock reads per probe add
// microseconds per query), so begin/end time one probe in opSample and
// flush scales the sampled total by calls/timed. Counters (probes,
// edges, rows) stay exact — only durations are estimates.
type opNode struct {
	span     *obs.Span
	calls    int64 // timed-section entries (begin/end pairs)
	timed    int64 // entries that actually carried a clock pair
	sdur     time.Duration
	probes   int64
	edges    int64
	rejected int64
	rowsIn   int64
	rowsOut  int64
}

// opSample is the duration sampling interval; a power of two so the
// begin fast path is a mask test. The first call is always timed.
// Sized for this class of VM, where a clock read costs ~70ns: at 16,
// a 200-probe search pays ~25 reads (~2µs) instead of ~400 (~27µs).
const opSample = 16

// begin enters a timed section: every opSample-th entry returns a real
// start time, the rest return the zero Time (end ignores those).
func (n *opNode) begin() time.Time {
	c := n.calls
	n.calls++
	if c&(opSample-1) == 0 {
		n.timed++
		return time.Now()
	}
	return time.Time{}
}

// end leaves a timed section opened by begin.
func (n *opNode) end(t0 time.Time) {
	if !t0.IsZero() {
		n.sdur += time.Since(t0)
	}
}

// newTraceEval starts an Eval span (under parent when non-nil). Operator
// labels come from the Checked expression's rendering cache
// (rpe.Checked.Rendered) — the compiled expression outlives the per-run
// Plan, so the recursive renderings are built once per statement, not
// once per traced evaluation. Load-bearing for the ≤5% telemetry-on
// budget BenchmarkTelemetryOverhead pins.
func newTraceEval(backend string, p *Plan, parent *obs.Span) *traceEval {
	expr, atoms := p.Checked.Rendered()
	sfx := " [" + backend + "]"
	var root *obs.Span
	if parent != nil {
		root = parent.StartChild("Eval", expr+sfx)
	} else {
		root = obs.NewSpan("Eval", expr+sfx)
	}
	return &traceEval{
		root:    root,
		backend: backend,
		sfx:     sfx,
		labels:  atoms,
		selects: make([]*opNode, len(atoms)),
		extends: make([]*opNode, (len(atoms)+1)*2),
	}
}

// selectNode returns the accumulator of the Select operator for one
// anchor atom.
func (t *traceEval) selectNode(a *rpe.Atom) *opNode {
	id := a.ID()
	n := t.selects[id]
	if n == nil {
		sp := t.root.Child("Select", t.labels[id]+t.sfx)
		sp.Add("atom_id", int64(id))
		n = &opNode{span: sp}
		t.selects[id] = n
	}
	return n
}

// seedSelectNode is the Select-equivalent accumulator of a seeded plan:
// rows out are the imported seed nodes admitted by the view.
func (t *traceEval) seedSelectNode() *opNode {
	if t.seedSel == nil {
		t.seedSel = &opNode{span: t.root.Child("Select", "imported seeds [join]")}
	}
	return t.seedSel
}

// extendNode returns the accumulator of the Extend operator for one
// (pruning hint, direction) pair. A nil hint is the unpruned
// scan-every-edge case the §6 ablation measures.
func (t *traceEval) extendNode(hint *rpe.Atom, dir Direction) *opNode {
	slot := int(dir) // unpruned slots
	if hint != nil {
		slot = (hint.ID()+1)*2 + int(dir)
	}
	n := t.extends[slot]
	if n == nil {
		detail := "(unpruned) " + dir.String() + t.sfx
		if hint != nil {
			detail = t.labels[hint.ID()] + " " + dir.String() + t.sfx
		}
		sp := t.root.Child("Extend", detail)
		if hint != nil {
			sp.Add("atom_id", int64(hint.ID()))
		}
		n = &opNode{span: sp}
		t.extends[slot] = n
	}
	return n
}

// unionNode returns the accumulator of the Union operator joining
// backward and forward half-pathways around anchors (and assembling
// seeded results).
func (t *traceEval) unionNode() *opNode {
	if t.union == nil {
		t.union = &opNode{span: t.root.Child("Union", "")}
	}
	return t.union
}

// flush writes every operator accumulator into its span. Idempotent, so
// panic recovery can flush before attaching the tree to the error and
// the normal finish path stays a no-op afterwards.
func (t *traceEval) flush() {
	if t == nil || t.flushed {
		return
	}
	t.flushed = true
	for _, n := range t.selects {
		n.flush(false) // nil slots (never-probed atoms) no-op
	}
	for _, n := range t.extends {
		// Extend spans always carry edges_scanned (0 is the interesting
		// ablation signal for a probe that found nothing).
		n.flush(true)
	}
	t.union.flush(false)
	t.seedSel.flush(false)
}

func (n *opNode) flush(withEdges bool) {
	if n == nil {
		return
	}
	if n.timed > 0 {
		// Scale the sampled durations back up to the full call count.
		n.span.AddDuration(n.sdur * time.Duration(n.calls) / time.Duration(n.timed))
	}
	n.span.AddRows(n.rowsIn, n.rowsOut)
	if n.probes > 0 {
		n.span.Add("probes", n.probes)
	}
	if withEdges {
		n.span.Add("edges_scanned", n.edges)
	}
	if n.rejected > 0 {
		n.span.Add("rejected", n.rejected)
	}
}

// finish flushes the operator accumulators and closes the Eval span,
// stamping result totals on the root so the tree is self-describing.
func (t *traceEval) finish(set *PathwaySet, m Metrics) {
	t.flush()
	if set != nil {
		t.root.AddRows(0, int64(set.Len()))
	}
	t.root.Add("anchors", int64(m.AnchorRecords))
	t.root.Add("edges_scanned", int64(m.EdgesScanned))
	t.root.Add("partials", int64(m.PartialsExplored))
	t.root.Add("paths", int64(m.PathsEmitted))
	t.root.Finish()
}

// opStats aggregates the measured statistics attributed to one atom (or
// one operator kind) across a traced evaluation's span tree.
type opStats struct {
	dur      time.Duration
	probes   int64
	edges    int64
	rowsIn   int64
	rowsOut  int64
	rejected int64
	seen     bool
}

func (o *opStats) fold(s *obs.Span) {
	o.seen = true
	o.dur += s.Duration()
	in, out := s.Rows()
	o.rowsIn += in
	o.rowsOut += out
	o.probes += s.Counter("probes")
	o.edges += s.Counter("edges_scanned")
	o.rejected += s.Counter("rejected")
}

func (o *opStats) add(other opStats) {
	if !other.seen {
		return
	}
	o.seen = true
	o.dur += other.dur
	o.probes += other.probes
	o.edges += other.edges
	o.rowsIn += other.rowsIn
	o.rowsOut += other.rowsOut
	o.rejected += other.rejected
}

// annotation renders the aggregate as the bracketed suffix of a plan line.
func (o opStats) annotation() string {
	if !o.seen {
		return ""
	}
	parts := []string{"time=" + obs.FormatDuration(o.dur)}
	if o.probes > 0 {
		parts = append(parts, fmt.Sprintf("probes=%d", o.probes))
	}
	if o.rowsIn > 0 {
		parts = append(parts, fmt.Sprintf("rows_in=%d", o.rowsIn))
	}
	parts = append(parts, fmt.Sprintf("rows_out=%d", o.rowsOut))
	parts = append(parts, fmt.Sprintf("edges_scanned=%d", o.edges))
	if o.rejected > 0 {
		parts = append(parts, fmt.Sprintf("rejected=%d", o.rejected))
	}
	return "  [" + strings.Join(parts, " ") + "]"
}

// traceStats is the per-atom view of a traced evaluation, extracted from
// a span (sub)tree produced by EvalTraced. The tree may be a single Eval
// span or any ancestor (a per-variable or per-query span): all descendant
// operator spans are folded in.
type traceStats struct {
	selects  map[int]*opStats
	extends  map[int]*opStats
	unpruned opStats
	union    opStats
	evalDur  time.Duration
	evals    int64
	paths    int64
}

func collectTraceStats(root *obs.Span) *traceStats {
	ts := &traceStats{
		selects: make(map[int]*opStats),
		extends: make(map[int]*opStats),
	}
	root.Walk(func(s *obs.Span) {
		id, hasAtom := s.CounterOK("atom_id")
		switch s.Name() {
		case "Eval":
			ts.evals++
			ts.evalDur += s.Duration()
			_, out := s.Rows()
			ts.paths += out
		case "Select":
			if hasAtom {
				st := ts.selects[int(id)]
				if st == nil {
					st = &opStats{}
					ts.selects[int(id)] = st
				}
				st.fold(s)
			}
		case "Extend":
			if hasAtom {
				st := ts.extends[int(id)]
				if st == nil {
					st = &opStats{}
					ts.extends[int(id)] = st
				}
				st.fold(s)
			} else {
				ts.unpruned.fold(s)
			}
		case "Union":
			ts.union.fold(s)
		}
	})
	return ts
}

// subtreeStats aggregates the stats of every atom under an expression —
// the annotation of ExtendBlock, Union, and Sequence lines.
func (ts *traceStats) subtreeStats(e rpe.Expr) opStats {
	var agg opStats
	var walk func(e rpe.Expr)
	walk = func(e rpe.Expr) {
		switch x := e.(type) {
		case *rpe.Atom:
			if st := ts.selects[x.ID()]; st != nil {
				agg.add(*st)
			}
			if st := ts.extends[x.ID()]; st != nil {
				agg.add(*st)
			}
		case *rpe.Sequence:
			for _, part := range x.Parts {
				walk(part)
			}
		case *rpe.Alternation:
			for _, alt := range x.Alts {
				walk(alt)
			}
		case *rpe.Repetition:
			walk(x.Body)
		}
	}
	walk(e)
	return agg
}

// ExplainAnalyze renders the plan's operator DAG annotated with the
// measured per-operator statistics of a traced evaluation — wall time,
// rows in/out, backend probe counts, and EdgesScanned — in the style of
// EXPLAIN ANALYZE. root is a span returned by EvalTraced (or any ancestor
// span containing one or more such evaluations, whose stats aggregate).
func (p *Plan) ExplainAnalyze(root *obs.Span) string {
	ts := collectTraceStats(root)
	var sb strings.Builder
	fmt.Fprintf(&sb, "RPE: %s\n", p.Checked.Expr)
	if p.Seeded {
		fmt.Fprintf(&sb, "Select: imported anchor (join seed at %s end)\n", seedEnd(p.SeedDir))
	} else {
		fmt.Fprintf(&sb, "Select: %s\n", p.Anchor)
	}
	fmt.Fprintf(&sb, "MaxLen: %d elements\n", p.MaxLen)
	anchors := p.anchorIDs()
	sb.WriteString(explainOps(p.Checked.Expr, anchors, func(e rpe.Expr) string {
		switch x := e.(type) {
		case *rpe.Atom:
			var agg opStats
			if anchors[x.ID()] {
				if st := ts.selects[x.ID()]; st != nil {
					agg.add(*st)
				}
			}
			if st := ts.extends[x.ID()]; st != nil {
				agg.add(*st)
			}
			return agg.annotation()
		default:
			return ts.subtreeStats(e).annotation()
		}
	}))
	if ts.unpruned.seen {
		sb.WriteString("  Extend (unpruned, all edge classes)" + ts.unpruned.annotation() + "\n")
	}
	if ts.union.seen {
		sb.WriteString("  Union (assemble pathways)" + ts.union.annotation() + "\n")
	}
	fmt.Fprintf(&sb, "Eval: time=%s evals=%d paths=%d\n",
		obs.FormatDuration(ts.evalDur), ts.evals, ts.paths)
	return sb.String()
}
