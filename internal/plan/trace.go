package plan

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/rpe"
)

// traceEval accumulates one traced evaluation's operator-DAG spans. Each
// logical operator of the plan — the Select for every anchor atom, the
// Extend for every (edge atom, direction) pair the search expands
// through, and the Union that assembles pathways from half-searches —
// owns one span whose duration and counters are the totals across all of
// the operator's executions during the search.
type traceEval struct {
	root    *obs.Span
	backend string
	selects map[int]*obs.Span
	extends map[extendKey]*obs.Span
	union   *obs.Span
	seedSel *obs.Span
}

type extendKey struct {
	atomID int // -1 for an unpruned scan (no single-atom hint)
	dir    Direction
}

// newTraceEval starts an Eval span (under parent when non-nil).
func newTraceEval(backend string, p *Plan, parent *obs.Span) *traceEval {
	detail := fmt.Sprintf("%s [%s]", p.Checked.Expr, backend)
	var root *obs.Span
	if parent != nil {
		root = parent.StartChild("Eval", detail)
	} else {
		root = obs.NewSpan("Eval", detail)
	}
	return &traceEval{
		root:    root,
		backend: backend,
		selects: make(map[int]*obs.Span),
		extends: make(map[extendKey]*obs.Span),
	}
}

// selectSpan returns the accumulator span of the Select operator for one
// anchor atom.
func (t *traceEval) selectSpan(a *rpe.Atom) *obs.Span {
	sp := t.selects[a.ID()]
	if sp == nil {
		sp = t.root.Child("Select", fmt.Sprintf("%s [%s]", a, t.backend))
		sp.Add("atom_id", int64(a.ID()))
		t.selects[a.ID()] = sp
	}
	return sp
}

// seedSelectSpan is the Select-equivalent span of a seeded plan: rows out
// are the imported seed nodes admitted by the view.
func (t *traceEval) seedSelectSpan() *obs.Span {
	if t.seedSel == nil {
		t.seedSel = t.root.Child("Select", "imported seeds [join]")
	}
	return t.seedSel
}

// extendSpan returns the accumulator span of the Extend operator for one
// (pruning hint, direction) pair. A nil hint is the unpruned
// scan-every-edge case the §6 ablation measures.
func (t *traceEval) extendSpan(hint *rpe.Atom, dir Direction) *obs.Span {
	key := extendKey{atomID: -1, dir: dir}
	detail := fmt.Sprintf("(unpruned) %s [%s]", dir, t.backend)
	if hint != nil {
		key.atomID = hint.ID()
		detail = fmt.Sprintf("%s %s [%s]", hint, dir, t.backend)
	}
	sp := t.extends[key]
	if sp == nil {
		sp = t.root.Child("Extend", detail)
		if hint != nil {
			sp.Add("atom_id", int64(hint.ID()))
		}
		t.extends[key] = sp
	}
	return sp
}

// unionSpan returns the span of the Union operator joining backward and
// forward half-pathways around anchors (and assembling seeded results).
func (t *traceEval) unionSpan() *obs.Span {
	if t.union == nil {
		t.union = t.root.Child("Union", "")
	}
	return t.union
}

// finish closes the Eval span, stamping result totals on the root so the
// tree is self-describing.
func (t *traceEval) finish(set *PathwaySet, m Metrics) {
	if set != nil {
		t.root.AddRows(0, int64(set.Len()))
	}
	t.root.Add("anchors", int64(m.AnchorRecords))
	t.root.Add("edges_scanned", int64(m.EdgesScanned))
	t.root.Add("partials", int64(m.PartialsExplored))
	t.root.Add("paths", int64(m.PathsEmitted))
	t.root.Finish()
}

// opStats aggregates the measured statistics attributed to one atom (or
// one operator kind) across a traced evaluation's span tree.
type opStats struct {
	dur      time.Duration
	probes   int64
	edges    int64
	rowsIn   int64
	rowsOut  int64
	rejected int64
	seen     bool
}

func (o *opStats) fold(s *obs.Span) {
	o.seen = true
	o.dur += s.Duration()
	in, out := s.Rows()
	o.rowsIn += in
	o.rowsOut += out
	cs := s.Counters()
	o.probes += cs["probes"]
	o.edges += cs["edges_scanned"]
	o.rejected += cs["rejected"]
}

func (o *opStats) add(other opStats) {
	if !other.seen {
		return
	}
	o.seen = true
	o.dur += other.dur
	o.probes += other.probes
	o.edges += other.edges
	o.rowsIn += other.rowsIn
	o.rowsOut += other.rowsOut
	o.rejected += other.rejected
}

// annotation renders the aggregate as the bracketed suffix of a plan line.
func (o opStats) annotation() string {
	if !o.seen {
		return ""
	}
	parts := []string{"time=" + obs.FormatDuration(o.dur)}
	if o.probes > 0 {
		parts = append(parts, fmt.Sprintf("probes=%d", o.probes))
	}
	if o.rowsIn > 0 {
		parts = append(parts, fmt.Sprintf("rows_in=%d", o.rowsIn))
	}
	parts = append(parts, fmt.Sprintf("rows_out=%d", o.rowsOut))
	parts = append(parts, fmt.Sprintf("edges_scanned=%d", o.edges))
	if o.rejected > 0 {
		parts = append(parts, fmt.Sprintf("rejected=%d", o.rejected))
	}
	return "  [" + strings.Join(parts, " ") + "]"
}

// traceStats is the per-atom view of a traced evaluation, extracted from
// a span (sub)tree produced by EvalTraced. The tree may be a single Eval
// span or any ancestor (a per-variable or per-query span): all descendant
// operator spans are folded in.
type traceStats struct {
	selects  map[int]*opStats
	extends  map[int]*opStats
	unpruned opStats
	union    opStats
	evalDur  time.Duration
	evals    int64
	paths    int64
}

func collectTraceStats(root *obs.Span) *traceStats {
	ts := &traceStats{
		selects: make(map[int]*opStats),
		extends: make(map[int]*opStats),
	}
	root.Walk(func(s *obs.Span) {
		cs := s.Counters()
		id, hasAtom := cs["atom_id"]
		switch s.Name() {
		case "Eval":
			ts.evals++
			ts.evalDur += s.Duration()
			_, out := s.Rows()
			ts.paths += out
		case "Select":
			if hasAtom {
				st := ts.selects[int(id)]
				if st == nil {
					st = &opStats{}
					ts.selects[int(id)] = st
				}
				st.fold(s)
			}
		case "Extend":
			if hasAtom {
				st := ts.extends[int(id)]
				if st == nil {
					st = &opStats{}
					ts.extends[int(id)] = st
				}
				st.fold(s)
			} else {
				ts.unpruned.fold(s)
			}
		case "Union":
			ts.union.fold(s)
		}
	})
	return ts
}

// subtreeStats aggregates the stats of every atom under an expression —
// the annotation of ExtendBlock, Union, and Sequence lines.
func (ts *traceStats) subtreeStats(e rpe.Expr) opStats {
	var agg opStats
	var walk func(e rpe.Expr)
	walk = func(e rpe.Expr) {
		switch x := e.(type) {
		case *rpe.Atom:
			if st := ts.selects[x.ID()]; st != nil {
				agg.add(*st)
			}
			if st := ts.extends[x.ID()]; st != nil {
				agg.add(*st)
			}
		case *rpe.Sequence:
			for _, part := range x.Parts {
				walk(part)
			}
		case *rpe.Alternation:
			for _, alt := range x.Alts {
				walk(alt)
			}
		case *rpe.Repetition:
			walk(x.Body)
		}
	}
	walk(e)
	return agg
}

// ExplainAnalyze renders the plan's operator DAG annotated with the
// measured per-operator statistics of a traced evaluation — wall time,
// rows in/out, backend probe counts, and EdgesScanned — in the style of
// EXPLAIN ANALYZE. root is a span returned by EvalTraced (or any ancestor
// span containing one or more such evaluations, whose stats aggregate).
func (p *Plan) ExplainAnalyze(root *obs.Span) string {
	ts := collectTraceStats(root)
	var sb strings.Builder
	fmt.Fprintf(&sb, "RPE: %s\n", p.Checked.Expr)
	if p.Seeded {
		fmt.Fprintf(&sb, "Select: imported anchor (join seed at %s end)\n", seedEnd(p.SeedDir))
	} else {
		fmt.Fprintf(&sb, "Select: %s\n", p.Anchor)
	}
	fmt.Fprintf(&sb, "MaxLen: %d elements\n", p.MaxLen)
	anchors := p.anchorIDs()
	sb.WriteString(explainOps(p.Checked.Expr, anchors, func(e rpe.Expr) string {
		switch x := e.(type) {
		case *rpe.Atom:
			var agg opStats
			if anchors[x.ID()] {
				if st := ts.selects[x.ID()]; st != nil {
					agg.add(*st)
				}
			}
			if st := ts.extends[x.ID()]; st != nil {
				agg.add(*st)
			}
			return agg.annotation()
		default:
			return ts.subtreeStats(e).annotation()
		}
	}))
	if ts.unpruned.seen {
		sb.WriteString("  Extend (unpruned, all edge classes)" + ts.unpruned.annotation() + "\n")
	}
	if ts.union.seen {
		sb.WriteString("  Union (assemble pathways)" + ts.union.annotation() + "\n")
	}
	fmt.Fprintf(&sb, "Eval: time=%s evals=%d paths=%d\n",
		obs.FormatDuration(ts.evalDur), ts.evals, ts.paths)
	return sb.String()
}
