package plan

import "fmt"

// Metrics instruments one plan evaluation — the observability face of the
// Select/Extend operator pipeline. The §6 ablation is visible here
// deterministically: on the single-class legacy load a bottom-up query
// scans every incident edge of a heavy rack (EdgesScanned in the
// thousands, mostly rejected), while the subclassed load's per-class
// index probes return only the relevant few.
type Metrics struct {
	// AnchorRecords counts elements returned by the Select operator(s).
	AnchorRecords int
	// EdgesScanned counts edges returned by IncidentEdges probes — the
	// physical read volume of the Extend operators.
	EdgesScanned int
	// ElementsConsumed counts successful NFA advances over an element.
	ElementsConsumed int
	// ElementsRejected counts candidate elements no transition accepted.
	ElementsRejected int
	// PartialsExplored counts partial pathways expanded by the search.
	PartialsExplored int
	// PathsEmitted counts distinct result pathways.
	PathsEmitted int
}

func (m Metrics) String() string {
	return fmt.Sprintf("anchors=%d edges_scanned=%d consumed=%d rejected=%d partials=%d paths=%d",
		m.AnchorRecords, m.EdgesScanned, m.ElementsConsumed, m.ElementsRejected,
		m.PartialsExplored, m.PathsEmitted)
}

// Merge folds another evaluation's counters into m — the executor uses it
// to total metrics across the variable evaluations of one query.
func (m *Metrics) Merge(o Metrics) {
	if m == nil {
		return
	}
	m.AnchorRecords += o.AnchorRecords
	m.EdgesScanned += o.EdgesScanned
	m.ElementsConsumed += o.ElementsConsumed
	m.ElementsRejected += o.ElementsRejected
	m.PartialsExplored += o.PartialsExplored
	m.PathsEmitted += o.PathsEmitted
}

// The counters below are nil-safe so the engine can thread an optional
// *Metrics without branching at every site.

func (m *Metrics) addAnchors(n int) {
	if m != nil {
		m.AnchorRecords += n
	}
}

func (m *Metrics) addEdges(n int) {
	if m != nil {
		m.EdgesScanned += n
	}
}

func (m *Metrics) addConsumed() {
	if m != nil {
		m.ElementsConsumed++
	}
}

func (m *Metrics) addRejected() {
	if m != nil {
		m.ElementsRejected++
	}
}

func (m *Metrics) addPartial() {
	if m != nil {
		m.PartialsExplored++
	}
}
