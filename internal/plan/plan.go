package plan

import (
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/rpe"
	"repro/internal/schema"
)

// Direction orients an Extend step relative to the pathway under
// construction.
type Direction int

const (
	Forward  Direction = iota // extend the pathway at its tail
	Backward                  // extend the pathway at its head
)

func (d Direction) String() string {
	if d == Backward {
		return "backward"
	}
	return "forward"
}

// Accessor is the physical access interface a backend provides. The search
// engine calls it for anchor retrieval and adjacency expansion; everything
// else (NFA bookkeeping, temporal intersection, cycle pruning, result
// assembly) is shared.
//
// Both access methods take the query's Governor (nil for ungoverned
// queries) and must check it cooperatively inside long scan loops, so a
// canceled or over-budget query aborts even while a single physical probe
// is still running. They may also fail for backend-specific reasons
// (e.g. an injected transient fault from internal/chaos); the engine
// propagates any error to the query boundary.
type Accessor interface {
	// Name identifies the backend ("gremlin", "relational").
	Name() string
	// Store returns the underlying temporal store.
	Store() *graph.Store
	// AnchorElements returns the UIDs of elements that satisfy the atom
	// within the view — the physical realization of the Select operator.
	AnchorElements(view graph.View, c *rpe.Checked, a *rpe.Atom, gov *Governor) ([]graph.UID, error)
	// IncidentEdges returns edges leaving (Forward) or entering (Backward)
	// the node within the view. When atom is non-nil the backend may use it
	// to prune by class partition; it must return a superset of the edges
	// satisfying the atom and may ignore the hint entirely. The engine
	// re-checks every candidate, so pruning is purely physical.
	IncidentEdges(view graph.View, node graph.UID, dir Direction, atom *rpe.Atom, c *rpe.Checked, gov *Governor) ([]graph.UID, error)
}

// Plan is an executable query plan: the checked RPE, the selected anchor,
// and the operator DAG description used by EXPLAIN and code generation.
type Plan struct {
	Checked *rpe.Checked
	Anchor  rpe.AnchorSet
	// Seeded is set when the anchor is imported from a join (§3.4): the
	// pathway variable had no anchor of its own and is instead seeded with
	// node UIDs at its source or target.
	Seeded  bool
	SeedDir Direction
	// MaxLen caps pathway length in elements; it defaults to the RPE's own
	// length bound and may be tightened by the query.
	MaxLen int
}

// Build selects the cheapest anchor for the checked RPE using store
// statistics and returns the plan. It fails on unanchored RPEs, as §3.3
// requires (a join can still import an anchor via BuildSeeded).
func Build(c *rpe.Checked, stats *schema.Stats) (*Plan, error) {
	anchor, err := c.BestAnchor(stats)
	if err != nil {
		return nil, err
	}
	return &Plan{Checked: c, Anchor: anchor, MaxLen: c.MaxLen()}, nil
}

// BuildSeeded returns a plan whose anchor is imported from a join: the
// search will be seeded with externally supplied node UIDs at the source
// (Forward plan) or target (Backward plan) of the pathway.
func BuildSeeded(c *rpe.Checked, dir Direction) *Plan {
	return &Plan{Checked: c, Seeded: true, SeedDir: dir, MaxLen: c.MaxLen()}
}

// Explain renders the operator DAG as text: the Select operator for the
// anchor and the Extend/ExtendBlock structure derived from the RPE, in the
// style of §5.1's conversion.
func (p *Plan) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "RPE: %s\n", p.Checked.Expr)
	if p.Seeded {
		fmt.Fprintf(&sb, "Select: imported anchor (join seed at %s end)\n", seedEnd(p.SeedDir))
	} else {
		fmt.Fprintf(&sb, "Select: %s\n", p.Anchor)
	}
	fmt.Fprintf(&sb, "MaxLen: %d elements\n", p.MaxLen)
	sb.WriteString(explainOps(p.Checked.Expr, p.anchorIDs(), nil))
	return sb.String()
}

func seedEnd(d Direction) string {
	if d == Backward {
		return "target"
	}
	return "source"
}

func (p *Plan) anchorIDs() map[int]bool {
	ids := make(map[int]bool, len(p.Anchor.Atoms))
	for _, a := range p.Anchor.Atoms {
		ids[a.ID()] = true
	}
	return ids
}

// explainOps walks the expression emitting one operator line per block.
// annotate, when non-nil, supplies a per-line suffix (EXPLAIN ANALYZE
// measurements); a nil annotate renders the bare plan.
func explainOps(e rpe.Expr, anchors map[int]bool, annotate func(rpe.Expr) string) string {
	var sb strings.Builder
	var walk func(e rpe.Expr, depth int)
	indent := func(d int) string { return strings.Repeat("  ", d+1) }
	suffix := func(e rpe.Expr) string {
		if annotate == nil {
			return ""
		}
		return annotate(e)
	}
	walk = func(e rpe.Expr, depth int) {
		switch x := e.(type) {
		case *rpe.Atom:
			op := "Extend"
			if anchors[x.ID()] {
				op = "Anchor"
			}
			fmt.Fprintf(&sb, "%s%s %s%s\n", indent(depth), op, x, suffix(x))
		case *rpe.Sequence:
			fmt.Fprintf(&sb, "%sSequence%s\n", indent(depth), suffix(x))
			for _, part := range x.Parts {
				walk(part, depth+1)
			}
		case *rpe.Alternation:
			fmt.Fprintf(&sb, "%sUnion%s\n", indent(depth), suffix(x))
			for _, alt := range x.Alts {
				walk(alt, depth+1)
			}
		case *rpe.Repetition:
			fmt.Fprintf(&sb, "%sExtendBlock {%d,%d}%s\n", indent(depth), x.Min, x.Max, suffix(x))
			walk(x.Body, depth+1)
		}
	}
	walk(e, 0)
	return sb.String()
}
