package plan

import (
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/rpe"
	"repro/internal/temporal"
)

// ComputeValidity returns the maximal transaction-time ranges during which
// the pathway (a fixed element-uid sequence over evolving field values)
// satisfies the checked RPE.
//
// Field values are piecewise-constant between version boundaries, so the
// pathway's satisfaction is piecewise-constant too. Three regimes, from
// cheap to general:
//
//  1. Every element is *stable*: either single-version, or all its
//     versions agree on which atoms they satisfy (churn touched only
//     fields the query never tests). Then satisfaction cannot change
//     while all elements exist: one matcher run over the intersection of
//     the element lifetimes decides everything.
//  2. Otherwise, boundaries are collected from the unstable elements
//     only, the matcher runs once per constant-satisfaction slice, and
//     the satisfied slices union into maximal ranges — the §4 semantics,
//     where a time-range result reports the maximal range the pathway can
//     be asserted, possibly extending beyond the query window.
func ComputeValidity(st *graph.Store, c *rpe.Checked, elems []graph.UID) temporal.Set {
	objs := make([]*graph.Object, len(elems))
	allStable := true
	for i, uid := range elems {
		obj := st.Object(uid)
		if obj == nil {
			return nil
		}
		objs[i] = obj
		if !stableForQuery(c, obj) {
			allStable = false
		}
	}

	if allStable {
		// Lifetimes of stable elements coalesce to a single interval each
		// (updates never interrupt existence; only delete ends it, and a
		// deleted uid is never re-created).
		iv := temporal.Interval{Start: time.Time{}, End: temporal.Forever}
		elements := make([]rpe.Element, len(objs))
		for i, obj := range objs {
			life := temporal.Interval{
				Start: obj.Versions[0].Period.Start,
				End:   obj.Versions[len(obj.Versions)-1].Period.End,
			}
			var ok bool
			if iv, ok = iv.Intersect(life); !ok {
				return nil
			}
			elements[i] = rpe.Element{Class: obj.Class, Fields: obj.Versions[0].Fields}
		}
		if !c.MatchesPathway(elements) {
			return nil
		}
		return temporal.Set{iv}
	}

	boundarySet := make(map[int64]time.Time)
	for _, obj := range objs {
		for _, v := range obj.Versions {
			boundarySet[v.Period.Start.UnixNano()] = v.Period.Start
			if !v.Period.IsCurrent() {
				boundarySet[v.Period.End.UnixNano()] = v.Period.End
			}
		}
	}
	boundaries := make([]time.Time, 0, len(boundarySet))
	for _, t := range boundarySet {
		boundaries = append(boundaries, t)
	}
	sort.Slice(boundaries, func(i, j int) bool { return boundaries[i].Before(boundaries[j]) })

	elements := make([]rpe.Element, len(elems))
	var out temporal.Set
	appendIfSatisfied := func(iv temporal.Interval, probe time.Time) {
		for i, obj := range objs {
			ver := obj.VersionAt(probe)
			if ver == nil {
				return
			}
			elements[i] = rpe.Element{Class: obj.Class, Fields: ver.Fields}
		}
		if c.MatchesPathway(elements) {
			out = append(out, iv)
		}
	}
	for i := 0; i < len(boundaries); i++ {
		start := boundaries[i]
		var iv temporal.Interval
		if i+1 < len(boundaries) {
			iv = temporal.Between(start, boundaries[i+1])
		} else {
			iv = temporal.Current(start)
		}
		appendIfSatisfied(iv, start)
	}
	return out.Normalize()
}

// stableForQuery reports whether the object's satisfaction of every atom
// in the checked RPE is the same across all of its versions, so that no
// version boundary can flip the pathway's match status.
func stableForQuery(c *rpe.Checked, obj *graph.Object) bool {
	if len(obj.Versions) == 1 {
		return true
	}
	for _, a := range c.Atoms() {
		if !obj.Class.IsSubclassOf(c.ClassOf(a)) {
			continue // the atom never matches this object in any version
		}
		first := c.Satisfies(a, obj.Class, obj.Versions[0].Fields)
		for i := 1; i < len(obj.Versions); i++ {
			if c.Satisfies(a, obj.Class, obj.Versions[i].Fields) != first {
				return false
			}
		}
	}
	return true
}
