package plan_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/gremlin"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/relational"
	"repro/internal/rpe"
	"repro/internal/temporal"
)

// TestDifferentialRandom is the randomized differential test: many small
// random temporal graphs, many random RPEs, three evaluators — the
// Gremlin backend, the relational backend, and the exhaustive reference
// oracle — which must agree exactly on the pathway sets (elements AND
// validity ranges) under current, past-point, and range views.
func TestDifferentialRandom(t *testing.T) {
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) * 7919))
			st, clock := randomStore(t, rng)
			engines := map[string]*plan.Engine{
				"gremlin":    plan.NewEngine(gremlin.New(st)),
				"relational": plan.NewEngine(relational.New(st)),
			}
			views := map[string]graph.View{
				"current": graph.CurrentView(st),
				"past":    graph.PointView(st, t0.Add(90*time.Minute)),
				"range":   graph.RangeView(st, t0.Add(30*time.Minute), clock.Now()),
			}
			for q := 0; q < 6; q++ {
				src := randomRPE(rng)
				c, err := rpe.CheckString(src, st.Schema())
				if err != nil {
					t.Fatalf("random RPE %q failed to check: %v", src, err)
				}
				p, err := plan.Build(c, st.Stats())
				if err != nil {
					continue // unanchorable under this cost model; skip
				}
				for vname, view := range views {
					ref := plan.ReferenceEval(view, c)
					emitted := map[string]int{}
					for ename, eng := range engines {
						label := fmt.Sprintf("%s/%s %q", ename, vname, src)
						got, m, span, err := eng.EvalTraced(view, p, nil)
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						compareSets(t, label, st, got, ref)
						checkTraceInvariants(t, label, got, m, span)
						emitted[ename] = m.PathsEmitted
					}
					// The two backends walk different physical structures but
					// must emit the same logical pathway set.
					if emitted["gremlin"] != emitted["relational"] {
						t.Errorf("%s %q: PathsEmitted gremlin=%d relational=%d",
							vname, src, emitted["gremlin"], emitted["relational"])
					}
				}
			}
		})
	}
}

// TestDifferentialRandomDeadline is the governance half of the
// differential fuzz: the same random graphs and RPEs evaluated under
// hostile budgets — pre-canceled contexts, already-expired deadlines,
// and tiny resource limits. Every run must either complete (and then
// agree exactly with the reference oracle) or fail with a typed
// governance error; panics and untyped errors are bugs.
func TestDifferentialRandomDeadline(t *testing.T) {
	const trials = 25
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	budgets := []struct {
		name string
		gov  func(rng *rand.Rand) *plan.Governor
	}{
		{"canceled", func(*rand.Rand) *plan.Governor {
			return plan.NewGovernor(canceled, plan.Limits{})
		}},
		{"deadline", func(*rand.Rand) *plan.Governor {
			return plan.NewGovernor(context.Background(), plan.Limits{MaxDuration: time.Nanosecond})
		}},
		{"edges", func(rng *rand.Rand) *plan.Governor {
			return plan.NewGovernor(context.Background(), plan.Limits{MaxEdgesScanned: 1 + rng.Intn(8)})
		}},
		{"paths", func(rng *rand.Rand) *plan.Governor {
			return plan.NewGovernor(context.Background(), plan.Limits{MaxPaths: 1 + rng.Intn(3)})
		}},
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)*104729 + 13))
			st, clock := randomStore(t, rng)
			engines := map[string]*plan.Engine{
				"gremlin":    plan.NewEngine(gremlin.New(st)),
				"relational": plan.NewEngine(relational.New(st)),
			}
			views := map[string]graph.View{
				"current": graph.CurrentView(st),
				"range":   graph.RangeView(st, t0.Add(30*time.Minute), clock.Now()),
			}
			for q := 0; q < 4; q++ {
				src := randomRPE(rng)
				c, err := rpe.CheckString(src, st.Schema())
				if err != nil {
					t.Fatalf("random RPE %q failed to check: %v", src, err)
				}
				p, err := plan.Build(c, st.Stats())
				if err != nil {
					continue // unanchorable under this cost model; skip
				}
				for vname, view := range views {
					for ename, eng := range engines {
						for _, b := range budgets {
							label := fmt.Sprintf("%s/%s/%s %q", ename, vname, b.name, src)
							set, _, _, err := eng.EvalWith(view, p, plan.EvalOpts{Gov: b.gov(rng)})
							if err != nil {
								if !errors.Is(err, plan.ErrCanceled) &&
									!errors.Is(err, plan.ErrDeadlineExceeded) &&
									!errors.Is(err, plan.ErrLimitExceeded) {
									t.Errorf("%s: untyped abort %v", label, err)
								}
								continue
							}
							// Finished inside the budget: the answer must still
							// be exactly right.
							compareSets(t, label, st, set, plan.ReferenceEval(view, c))
						}
					}
				}
			}
		})
	}
}

// checkTraceInvariants cross-checks one traced evaluation's three views of
// the same run — the pathway set, the aggregate Metrics, and the
// operator-DAG trace — which must be mutually consistent:
//
//   - every Metrics counter is non-negative
//   - PathsEmitted equals the result set size and the Eval root's rows_out
//   - the Select spans' rows_out sums to Metrics.AnchorRecords
//   - the Extend spans' edges_scanned sums to Metrics.EdgesScanned
func checkTraceInvariants(t *testing.T, label string, set *plan.PathwaySet, m plan.Metrics, root *obs.Span) {
	t.Helper()
	for name, v := range map[string]int{
		"AnchorRecords": m.AnchorRecords, "EdgesScanned": m.EdgesScanned,
		"ElementsConsumed": m.ElementsConsumed, "ElementsRejected": m.ElementsRejected,
		"PartialsExplored": m.PartialsExplored, "PathsEmitted": m.PathsEmitted,
	} {
		if v < 0 {
			t.Errorf("%s: negative metric %s=%d", label, name, v)
		}
	}
	if m.PathsEmitted != set.Len() {
		t.Errorf("%s: PathsEmitted=%d but result set has %d pathways", label, m.PathsEmitted, set.Len())
	}
	if root == nil {
		t.Errorf("%s: EvalTraced returned nil root span", label)
		return
	}
	var selectRows, extendEdges int64
	var rootRows int64
	root.Walk(func(s *obs.Span) {
		switch s.Name() {
		case "Select":
			_, out := s.Rows()
			selectRows += out
		case "Extend":
			extendEdges += s.Counter("edges_scanned")
		case "Eval":
			_, rootRows = s.Rows()
		}
	})
	if selectRows != int64(m.AnchorRecords) {
		t.Errorf("%s: Select spans rows_out=%d, Metrics.AnchorRecords=%d", label, selectRows, m.AnchorRecords)
	}
	if extendEdges != int64(m.EdgesScanned) {
		t.Errorf("%s: Extend spans edges_scanned=%d, Metrics.EdgesScanned=%d", label, extendEdges, m.EdgesScanned)
	}
	if rootRows != int64(set.Len()) {
		t.Errorf("%s: Eval root rows_out=%d, result set %d", label, rootRows, set.Len())
	}
}

// compareSets checks element sequences and validity ranges both ways.
func compareSets(t *testing.T, label string, st *graph.Store, got, want *plan.PathwaySet) {
	t.Helper()
	gotBy := map[string]plan.Pathway{}
	for _, p := range got.Paths() {
		gotBy[p.Key()] = p
	}
	wantBy := map[string]plan.Pathway{}
	for _, p := range want.Paths() {
		wantBy[p.Key()] = p
	}
	for k, wp := range wantBy {
		gp, ok := gotBy[k]
		if !ok {
			t.Errorf("%s: missing pathway %s", label, wp.Render(st))
			continue
		}
		if gp.Validity.String() != wp.Validity.String() {
			t.Errorf("%s: pathway %s validity %v, oracle %v", label, wp.Render(st), gp.Validity, wp.Validity)
		}
	}
	for k, gp := range gotBy {
		if _, ok := wantBy[k]; !ok {
			t.Errorf("%s: spurious pathway %s (validity %v)", label, gp.Render(st), gp.Validity)
		}
	}
}

// randomStore builds a small random layered graph with temporal churn:
// inserts at t0, then updates/deletes/inserts over three hours.
func randomStore(t *testing.T, rng *rand.Rand) (*graph.Store, *temporal.Clock) {
	t.Helper()
	clock := temporal.NewManualClock(t0)
	st := graph.NewStore(netmodel.MustSchema(), clock)

	var id int64
	nextID := func() int64 { id++; return id }
	statuses := []string{"Green", "Red", "Yellow"}

	type pool struct {
		classes []string
		uids    []graph.UID
	}
	vnfs := &pool{classes: []string{"DNS", "Firewall", "LoadBalancer"}}
	vfcs := &pool{classes: []string{"Proxy", "WebServer"}}
	vms := &pool{classes: []string{"VMWare", "OnMetal", "KVMGuest"}}
	hosts := &pool{classes: []string{"ComputeHost", "StorageHost"}}
	switches := &pool{classes: []string{"TORSwitch", "SpineSwitch"}}

	mk := func(p *pool, n int) {
		for i := 0; i < n; i++ {
			class := p.classes[rng.Intn(len(p.classes))]
			fields := graph.Fields{"id": nextID(), "name": fmt.Sprintf("%s-%d", class, id), "status": statuses[rng.Intn(3)]}
			uid, err := st.InsertNode(class, fields)
			if err != nil {
				t.Fatal(err)
			}
			p.uids = append(p.uids, uid)
		}
	}
	mk(hosts, 2+rng.Intn(3))
	mk(switches, 1+rng.Intn(3))
	mk(vms, 2+rng.Intn(4))
	mk(vfcs, 1+rng.Intn(3))
	mk(vnfs, 1+rng.Intn(2))

	link := func(class string, a, b graph.UID) {
		_, err := st.InsertEdge(class, a, b, graph.Fields{"id": nextID()})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, vm := range vms.uids {
		link(netmodel.OnServer, vm, hosts.uids[rng.Intn(len(hosts.uids))])
	}
	for _, vfc := range vfcs.uids {
		link(netmodel.OnVM, vfc, vms.uids[rng.Intn(len(vms.uids))])
		link(netmodel.ComposedOf, vnfs.uids[rng.Intn(len(vnfs.uids))], vfc)
	}
	for _, h := range hosts.uids {
		sw := switches.uids[rng.Intn(len(switches.uids))]
		link(netmodel.PhysicalLink, h, sw)
		if rng.Intn(2) == 0 {
			link(netmodel.PhysicalLink, sw, h)
		}
	}
	for i := 0; i+1 < len(switches.uids); i++ {
		link(netmodel.PhysicalLink, switches.uids[i], switches.uids[i+1])
	}

	// Temporal churn: status flips and occasional deletes over 3 hours.
	allNodes := append(append(append([]graph.UID{}, vms.uids...), hosts.uids...), vfcs.uids...)
	for step := 0; step < 6; step++ {
		clock.Advance(30 * time.Minute)
		uid := allNodes[rng.Intn(len(allNodes))]
		obj := st.Object(uid)
		if obj.Current() == nil {
			continue
		}
		switch rng.Intn(4) {
		case 0:
			if err := st.Delete(uid); err != nil {
				t.Fatal(err)
			}
		default:
			next := obj.Current().Fields.Clone()
			next["status"] = statuses[rng.Intn(3)]
			if err := st.Update(uid, next); err != nil {
				t.Fatal(err)
			}
		}
	}
	clock.Advance(30 * time.Minute)
	return st, clock
}

// randomRPE draws from templates exercising atoms, chains, repetitions,
// alternations, predicates, and edge-anchored forms.
func randomRPE(rng *rand.Rand) string {
	statuses := []string{"Green", "Red", "Yellow"}
	s := statuses[rng.Intn(3)]
	templates := []string{
		"VM()",
		"VM(status='" + s + "')",
		"Host()",
		"OnServer()",
		"VM()->OnServer()->Host()",
		"VM(status='" + s + "')->OnServer()->Host()",
		"VFC()->VM()->Host()",
		"VNF()->[Vertical()]{1,4}->Host()",
		"VNF()->[Vertical()]{1,6}->Host(status='" + s + "')",
		"Host()->[PhysicalLink()]{1,3}->Switch()",
		"Host()->[PhysicalLink()]{1,4}->Host()",
		"(VM(status='" + s + "')|Host(status='" + s + "'))",
		"[PhysicalLink()]{1,2}",
		"VFC()->[Vertical()]{0,2}->VM()",
		"Container()->OnServer()->Host()",
		"VNF()->VFC()->VM(status='" + s + "')",
	}
	return templates[rng.Intn(len(templates))]
}

// t0 is shared with plan_test.go.
