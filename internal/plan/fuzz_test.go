package plan_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/gremlin"
	"repro/internal/netmodel"
	"repro/internal/plan"
	"repro/internal/relational"
	"repro/internal/rpe"
	"repro/internal/temporal"
)

// TestDifferentialRandom is the randomized differential test: many small
// random temporal graphs, many random RPEs, three evaluators — the
// Gremlin backend, the relational backend, and the exhaustive reference
// oracle — which must agree exactly on the pathway sets (elements AND
// validity ranges) under current, past-point, and range views.
func TestDifferentialRandom(t *testing.T) {
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) * 7919))
			st, clock := randomStore(t, rng)
			engines := map[string]*plan.Engine{
				"gremlin":    plan.NewEngine(gremlin.New(st)),
				"relational": plan.NewEngine(relational.New(st)),
			}
			views := map[string]graph.View{
				"current": graph.CurrentView(st),
				"past":    graph.PointView(st, t0.Add(90*time.Minute)),
				"range":   graph.RangeView(st, t0.Add(30*time.Minute), clock.Now()),
			}
			for q := 0; q < 6; q++ {
				src := randomRPE(rng)
				c, err := rpe.CheckString(src, st.Schema())
				if err != nil {
					t.Fatalf("random RPE %q failed to check: %v", src, err)
				}
				p, err := plan.Build(c, st.Stats())
				if err != nil {
					continue // unanchorable under this cost model; skip
				}
				for vname, view := range views {
					ref := plan.ReferenceEval(view, c)
					for ename, eng := range engines {
						got, err := eng.Eval(view, p)
						if err != nil {
							t.Fatalf("%s/%s %q: %v", ename, vname, src, err)
						}
						compareSets(t, fmt.Sprintf("%s/%s %q", ename, vname, src), st, got, ref)
					}
				}
			}
		})
	}
}

// compareSets checks element sequences and validity ranges both ways.
func compareSets(t *testing.T, label string, st *graph.Store, got, want *plan.PathwaySet) {
	t.Helper()
	gotBy := map[string]plan.Pathway{}
	for _, p := range got.Paths() {
		gotBy[p.Key()] = p
	}
	wantBy := map[string]plan.Pathway{}
	for _, p := range want.Paths() {
		wantBy[p.Key()] = p
	}
	for k, wp := range wantBy {
		gp, ok := gotBy[k]
		if !ok {
			t.Errorf("%s: missing pathway %s", label, wp.Render(st))
			continue
		}
		if gp.Validity.String() != wp.Validity.String() {
			t.Errorf("%s: pathway %s validity %v, oracle %v", label, wp.Render(st), gp.Validity, wp.Validity)
		}
	}
	for k, gp := range gotBy {
		if _, ok := wantBy[k]; !ok {
			t.Errorf("%s: spurious pathway %s (validity %v)", label, gp.Render(st), gp.Validity)
		}
	}
}

// randomStore builds a small random layered graph with temporal churn:
// inserts at t0, then updates/deletes/inserts over three hours.
func randomStore(t *testing.T, rng *rand.Rand) (*graph.Store, *temporal.Clock) {
	t.Helper()
	clock := temporal.NewManualClock(t0)
	st := graph.NewStore(netmodel.MustSchema(), clock)

	var id int64
	nextID := func() int64 { id++; return id }
	statuses := []string{"Green", "Red", "Yellow"}

	type pool struct {
		classes []string
		uids    []graph.UID
	}
	vnfs := &pool{classes: []string{"DNS", "Firewall", "LoadBalancer"}}
	vfcs := &pool{classes: []string{"Proxy", "WebServer"}}
	vms := &pool{classes: []string{"VMWare", "OnMetal", "KVMGuest"}}
	hosts := &pool{classes: []string{"ComputeHost", "StorageHost"}}
	switches := &pool{classes: []string{"TORSwitch", "SpineSwitch"}}

	mk := func(p *pool, n int) {
		for i := 0; i < n; i++ {
			class := p.classes[rng.Intn(len(p.classes))]
			fields := graph.Fields{"id": nextID(), "name": fmt.Sprintf("%s-%d", class, id), "status": statuses[rng.Intn(3)]}
			uid, err := st.InsertNode(class, fields)
			if err != nil {
				t.Fatal(err)
			}
			p.uids = append(p.uids, uid)
		}
	}
	mk(hosts, 2+rng.Intn(3))
	mk(switches, 1+rng.Intn(3))
	mk(vms, 2+rng.Intn(4))
	mk(vfcs, 1+rng.Intn(3))
	mk(vnfs, 1+rng.Intn(2))

	link := func(class string, a, b graph.UID) {
		_, err := st.InsertEdge(class, a, b, graph.Fields{"id": nextID()})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, vm := range vms.uids {
		link(netmodel.OnServer, vm, hosts.uids[rng.Intn(len(hosts.uids))])
	}
	for _, vfc := range vfcs.uids {
		link(netmodel.OnVM, vfc, vms.uids[rng.Intn(len(vms.uids))])
		link(netmodel.ComposedOf, vnfs.uids[rng.Intn(len(vnfs.uids))], vfc)
	}
	for _, h := range hosts.uids {
		sw := switches.uids[rng.Intn(len(switches.uids))]
		link(netmodel.PhysicalLink, h, sw)
		if rng.Intn(2) == 0 {
			link(netmodel.PhysicalLink, sw, h)
		}
	}
	for i := 0; i+1 < len(switches.uids); i++ {
		link(netmodel.PhysicalLink, switches.uids[i], switches.uids[i+1])
	}

	// Temporal churn: status flips and occasional deletes over 3 hours.
	allNodes := append(append(append([]graph.UID{}, vms.uids...), hosts.uids...), vfcs.uids...)
	for step := 0; step < 6; step++ {
		clock.Advance(30 * time.Minute)
		uid := allNodes[rng.Intn(len(allNodes))]
		obj := st.Object(uid)
		if obj.Current() == nil {
			continue
		}
		switch rng.Intn(4) {
		case 0:
			if err := st.Delete(uid); err != nil {
				t.Fatal(err)
			}
		default:
			next := obj.Current().Fields.Clone()
			next["status"] = statuses[rng.Intn(3)]
			if err := st.Update(uid, next); err != nil {
				t.Fatal(err)
			}
		}
	}
	clock.Advance(30 * time.Minute)
	return st, clock
}

// randomRPE draws from templates exercising atoms, chains, repetitions,
// alternations, predicates, and edge-anchored forms.
func randomRPE(rng *rand.Rand) string {
	statuses := []string{"Green", "Red", "Yellow"}
	s := statuses[rng.Intn(3)]
	templates := []string{
		"VM()",
		"VM(status='" + s + "')",
		"Host()",
		"OnServer()",
		"VM()->OnServer()->Host()",
		"VM(status='" + s + "')->OnServer()->Host()",
		"VFC()->VM()->Host()",
		"VNF()->[Vertical()]{1,4}->Host()",
		"VNF()->[Vertical()]{1,6}->Host(status='" + s + "')",
		"Host()->[PhysicalLink()]{1,3}->Switch()",
		"Host()->[PhysicalLink()]{1,4}->Host()",
		"(VM(status='" + s + "')|Host(status='" + s + "'))",
		"[PhysicalLink()]{1,2}",
		"VFC()->[Vertical()]{0,2}->VM()",
		"Container()->OnServer()->Host()",
		"VNF()->VFC()->VM(status='" + s + "')",
	}
	return templates[rng.Intn(len(templates))]
}

// t0 is shared with plan_test.go.
