package plan

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
)

// This file is the query-governance layer: per-query cancellation,
// deadlines, and resource guardrails, threaded cooperatively through the
// operator DAG. Nepal serves as the inventory brain of an automation
// loop (§1), so one pathological {1,6}-hop expansion or one stalled
// backend must not take the whole control plane down with it: every
// search loop (engine partial expansion, backend anchor and adjacency
// scans, executor tuple joins) runs a checkpoint against the query's
// Governor and aborts with a typed error when the budget is gone.
//
// Error taxonomy:
//
//	ErrCanceled         — the caller's context was canceled
//	ErrDeadlineExceeded — the context deadline or Limits.MaxDuration passed
//	ErrLimitExceeded    — a resource counter crossed its Limits bound;
//	                      the concrete *LimitError names the counter
//	ErrPanic            — an engine panic converted to an error at the
//	                      evaluation boundary; the concrete *PanicError
//	                      carries the panic value, stack, and — when the
//	                      evaluation was traced — the operator span
var (
	ErrCanceled         = errors.New("plan: query canceled")
	ErrDeadlineExceeded = errors.New("plan: query deadline exceeded")
	ErrLimitExceeded    = errors.New("plan: query resource limit exceeded")
	ErrPanic            = errors.New("plan: query engine panic")
)

// LimitError reports which resource guardrail a query crossed.
// errors.Is(err, ErrLimitExceeded) matches it.
type LimitError struct {
	// Counter names the exhausted budget: "paths" or "edges_scanned".
	Counter  string
	Limit    int64
	Observed int64
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("plan: query %s limit exceeded (%d observed, limit %d)",
		e.Counter, e.Observed, e.Limit)
}

func (e *LimitError) Unwrap() error { return ErrLimitExceeded }

// PanicError is an engine panic converted to an error at the evaluation
// boundary. errors.Is(err, ErrPanic) matches it.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
	// Span is the operator span under which the panic fired; nil when the
	// evaluation was not traced.
	Span *obs.Span
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("plan: query engine panic: %v", e.Value)
}

func (e *PanicError) Unwrap() error { return ErrPanic }

// ContextError maps a context error onto the governance taxonomy.
func ContextError(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return ErrDeadlineExceeded
	default:
		return ErrCanceled
	}
}

// Limits bounds one query evaluation. The zero value means unlimited.
type Limits struct {
	// MaxPaths caps the number of result pathways emitted across all
	// variable evaluations of the query.
	MaxPaths int
	// MaxEdgesScanned caps the physical read volume of the Extend
	// operators (edges returned by IncidentEdges probes) across the query.
	MaxEdgesScanned int
	// MaxDuration caps the query's wall time, independent of any context
	// deadline; the earlier of the two applies.
	MaxDuration time.Duration
}

// IsZero reports whether no limit is set.
func (l Limits) IsZero() bool { return l == Limits{} }

// govCheckInterval amortizes the context poll and clock read inside
// Check: the cheap counter path runs on every checkpoint, the select and
// time.Now only every govCheckInterval-th call.
const govCheckInterval = 64

// Governor enforces one query's cancellation, deadline, and resource
// limits. It is threaded through the executor, the search engine, and
// the backend scan loops; each runs Check (or a counter add) at its loop
// heads and aborts when an error comes back. The first failure is
// sticky: every later call returns the same error.
//
// A nil *Governor is a valid ungoverned query: all methods are no-ops
// costing one nil check, which keeps the ungoverned hot path within
// noise of the pre-governance baseline (see BenchmarkGovernanceOverhead).
//
// A Governor belongs to a single query execution and is not safe for
// concurrent use; the executor evaluates variables sequentially.
type Governor struct {
	ctx         context.Context
	done        <-chan struct{}
	deadline    time.Time
	hasDeadline bool
	lim         Limits

	edges int64
	paths int64
	ticks uint
	err   error
}

// NewGovernor returns a governor over the context and limits, or nil
// when there is nothing to govern (a background-style context and zero
// limits), so ungoverned queries keep the nil fast path.
func NewGovernor(ctx context.Context, lim Limits) *Governor {
	if ctx == nil {
		ctx = context.Background()
	}
	_, hasCtxDeadline := ctx.Deadline()
	if ctx.Done() == nil && !hasCtxDeadline && lim.IsZero() {
		return nil
	}
	g := &Governor{ctx: ctx, done: ctx.Done(), lim: lim}
	if d, ok := ctx.Deadline(); ok {
		g.deadline, g.hasDeadline = d, true
	}
	if lim.MaxDuration > 0 {
		d := time.Now().Add(lim.MaxDuration)
		if !g.hasDeadline || d.Before(g.deadline) {
			g.deadline = d
		}
		g.hasDeadline = true
	}
	return g
}

// Context returns the governing context (context.Background for a nil
// governor), for callers that block outside the search loops (e.g. the
// executor's retry backoff sleeps).
func (g *Governor) Context() context.Context {
	if g == nil || g.ctx == nil {
		return context.Background()
	}
	return g.ctx
}

// Check is the cooperative cancellation checkpoint. It returns nil while
// the query may continue, and the sticky governance error once the
// context is done, the deadline passed, or a limit was exceeded. The
// context poll and clock read are amortized across govCheckInterval
// calls; a checkpoint is therefore cheap enough for per-partial loops.
func (g *Governor) Check() error {
	if g == nil {
		return nil
	}
	if g.err != nil {
		return g.err
	}
	g.ticks++
	if g.ticks%govCheckInterval != 0 {
		return nil
	}
	return g.CheckNow()
}

// CheckNow is Check without amortization: it always polls the context
// and the clock. Backends call it once per physical probe.
func (g *Governor) CheckNow() error {
	if g == nil {
		return nil
	}
	if g.err != nil {
		return g.err
	}
	select {
	case <-g.done:
		g.err = ContextError(g.ctx.Err())
		return g.err
	default:
	}
	if g.hasDeadline && !time.Now().Before(g.deadline) {
		g.err = ErrDeadlineExceeded
		return g.err
	}
	return nil
}

// AddEdges charges n scanned edges against the budget, returning the
// limit error when MaxEdgesScanned is crossed.
func (g *Governor) AddEdges(n int) error {
	if g == nil {
		return nil
	}
	if g.err != nil {
		return g.err
	}
	g.edges += int64(n)
	if g.lim.MaxEdgesScanned > 0 && g.edges > int64(g.lim.MaxEdgesScanned) {
		g.err = &LimitError{Counter: "edges_scanned", Limit: int64(g.lim.MaxEdgesScanned), Observed: g.edges}
		return g.err
	}
	return nil
}

// AddPaths charges n emitted pathways against the budget, returning the
// limit error when MaxPaths is crossed.
func (g *Governor) AddPaths(n int) error {
	if g == nil {
		return nil
	}
	if g.err != nil {
		return g.err
	}
	g.paths += int64(n)
	if g.lim.MaxPaths > 0 && g.paths > int64(g.lim.MaxPaths) {
		g.err = &LimitError{Counter: "paths", Limit: int64(g.lim.MaxPaths), Observed: g.paths}
		return g.err
	}
	return nil
}

// Err returns the sticky governance error, if any.
func (g *Governor) Err() error {
	if g == nil {
		return nil
	}
	return g.err
}

// EdgesScanned reports the edges charged so far.
func (g *Governor) EdgesScanned() int64 {
	if g == nil {
		return 0
	}
	return g.edges
}

// PathsEmitted reports the pathways charged so far.
func (g *Governor) PathsEmitted() int64 {
	if g == nil {
		return 0
	}
	return g.paths
}
