// Package plan turns a checked RPE plus a chosen anchor into an executable
// query plan, and implements the anchored bidirectional search engine that
// both backends share. Backends differ only in physical access — how
// anchor records are located and how a node's incident edges are retrieved
// — which they provide through the Accessor interface (the Gremlin backend
// scans labeled adjacency; the relational backend probes per-class tables
// and hash indexes, which is what the paper's edge-subclassing ablation
// measures).
package plan

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/temporal"
)

// Pathway is Nepal's first-class query result: an alternating sequence of
// node and edge UIDs, n1,e1,...,nk, with the maximal transaction-time
// ranges during which the pathway satisfied the query.
type Pathway struct {
	// Elems holds the element UIDs in pathway order; even positions are
	// nodes, odd positions are edges.
	Elems []graph.UID
	// Validity holds the maximal assertion ranges (§4): the normalized
	// union over accepting runs of the intersection of the per-element
	// match periods.
	Validity temporal.Set
}

// Source returns the first node of the pathway.
func (p Pathway) Source() graph.UID { return p.Elems[0] }

// Target returns the last node of the pathway.
func (p Pathway) Target() graph.UID { return p.Elems[len(p.Elems)-1] }

// Len returns the number of elements (nodes + edges).
func (p Pathway) Len() int { return len(p.Elems) }

// Hops returns the number of edges in the pathway.
func (p Pathway) Hops() int { return len(p.Elems) / 2 }

// Key returns a canonical identity string over the element UIDs, used for
// deduplication and set semantics.
func (p Pathway) Key() string {
	var sb strings.Builder
	for i, uid := range p.Elems {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatInt(int64(uid), 10))
	}
	return sb.String()
}

// ContainsElement reports whether the pathway passes through the element.
func (p Pathway) ContainsElement(uid graph.UID) bool {
	for _, e := range p.Elems {
		if e == uid {
			return true
		}
	}
	return false
}

// String renders the pathway for display: uid(Class) chained with arrows.
func (p Pathway) Render(st *graph.Store) string {
	var sb strings.Builder
	for i, uid := range p.Elems {
		if i > 0 {
			sb.WriteString(" -> ")
		}
		obj := st.Object(uid)
		if obj == nil {
			fmt.Fprintf(&sb, "?%d", uid)
			continue
		}
		fmt.Fprintf(&sb, "%s#%d", obj.Class.Name, uid)
	}
	return sb.String()
}

// PathwaySet is a deduplicated collection of pathways. Duplicate element
// sequences merge by unioning their validity sets — the true assertion
// range of a pathway is the union over all accepting runs.
type PathwaySet struct {
	byKey map[string]int
	paths []Pathway
}

// NewPathwaySet returns an empty set.
func NewPathwaySet() *PathwaySet {
	return &PathwaySet{byKey: make(map[string]int)}
}

// Add merges a pathway into the set.
func (s *PathwaySet) Add(p Pathway) {
	key := p.Key()
	if i, ok := s.byKey[key]; ok {
		s.paths[i].Validity = s.paths[i].Validity.Union(p.Validity)
		return
	}
	s.byKey[key] = len(s.paths)
	s.paths = append(s.paths, p)
}

// Has reports whether a pathway with the given Key is already present.
func (s *PathwaySet) Has(key string) bool {
	_, ok := s.byKey[key]
	return ok
}

// Paths returns the pathways in insertion order.
func (s *PathwaySet) Paths() []Pathway { return s.paths }

// Len returns the number of distinct pathways.
func (s *PathwaySet) Len() int { return len(s.paths) }

// SharedElements returns the element UIDs common to every pathway in the
// set — the shared-fate primitive of §2.3.2: when troubleshooting
// service-quality issues for several customers, the elements their data
// flows share are the prime suspects. Returns nil for an empty input.
func SharedElements(paths []Pathway) []graph.UID {
	if len(paths) == 0 {
		return nil
	}
	shared := make(map[graph.UID]bool, len(paths[0].Elems))
	for _, uid := range paths[0].Elems {
		shared[uid] = true
	}
	for _, p := range paths[1:] {
		present := make(map[graph.UID]bool, len(p.Elems))
		for _, uid := range p.Elems {
			present[uid] = true
		}
		for uid := range shared {
			if !present[uid] {
				delete(shared, uid)
			}
		}
	}
	out := make([]graph.UID, 0, len(shared))
	for _, uid := range paths[0].Elems { // deterministic order
		if shared[uid] {
			out = append(out, uid)
		}
	}
	return out
}
