package plan_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/rpe"
)

func TestGovernorNilWhenUngoverned(t *testing.T) {
	if g := plan.NewGovernor(context.Background(), plan.Limits{}); g != nil {
		t.Error("background context with zero limits must yield a nil governor")
	}
	if g := plan.NewGovernor(nil, plan.Limits{}); g != nil {
		t.Error("nil context with zero limits must yield a nil governor")
	}
	// Every method must be a safe no-op on the nil fast path.
	var g *plan.Governor
	if err := g.Check(); err != nil {
		t.Errorf("nil Check = %v", err)
	}
	if err := g.CheckNow(); err != nil {
		t.Errorf("nil CheckNow = %v", err)
	}
	if err := g.AddEdges(1 << 20); err != nil {
		t.Errorf("nil AddEdges = %v", err)
	}
	if err := g.AddPaths(1 << 20); err != nil {
		t.Errorf("nil AddPaths = %v", err)
	}
	if g.Err() != nil || g.EdgesScanned() != 0 || g.PathsEmitted() != 0 {
		t.Error("nil governor must report no error and zero counters")
	}
	if g.Context() == nil {
		t.Error("nil governor Context must return a usable context")
	}
}

func TestGovernorCancelSticky(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := plan.NewGovernor(ctx, plan.Limits{})
	if g == nil {
		t.Fatal("cancellable context must yield a governor")
	}
	if err := g.CheckNow(); err != nil {
		t.Fatalf("pre-cancel CheckNow = %v", err)
	}
	cancel()
	if err := g.CheckNow(); !errors.Is(err, plan.ErrCanceled) {
		t.Fatalf("post-cancel CheckNow = %v, want ErrCanceled", err)
	}
	// The first error is sticky across every entry point.
	if err := g.AddEdges(1); !errors.Is(err, plan.ErrCanceled) {
		t.Errorf("AddEdges after cancel = %v, want sticky ErrCanceled", err)
	}
	if err := g.AddPaths(1); !errors.Is(err, plan.ErrCanceled) {
		t.Errorf("AddPaths after cancel = %v, want sticky ErrCanceled", err)
	}
	if err := g.Err(); !errors.Is(err, plan.ErrCanceled) {
		t.Errorf("Err = %v, want sticky ErrCanceled", err)
	}
}

func TestGovernorCheckAmortizedStillTrips(t *testing.T) {
	// Check polls the context only every few ticks; a canceled query must
	// still trip within a bounded number of checkpoints.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := plan.NewGovernor(ctx, plan.Limits{})
	var got error
	for i := 0; i < 256 && got == nil; i++ {
		got = g.Check()
	}
	if !errors.Is(got, plan.ErrCanceled) {
		t.Fatalf("256 amortized checkpoints never tripped: %v", got)
	}
}

func TestGovernorDeadline(t *testing.T) {
	// Context deadline maps to ErrDeadlineExceeded (not ErrCanceled).
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	g := plan.NewGovernor(ctx, plan.Limits{})
	deadline, _ := ctx.Deadline()
	time.Sleep(time.Until(deadline) + 5*time.Millisecond)
	if err := g.CheckNow(); !errors.Is(err, plan.ErrDeadlineExceeded) {
		t.Errorf("expired context CheckNow = %v, want ErrDeadlineExceeded", err)
	}
	// Limits.MaxDuration enforces a wall clock bound with no context
	// deadline at all.
	g = plan.NewGovernor(context.Background(), plan.Limits{MaxDuration: time.Millisecond})
	if g == nil {
		t.Fatal("MaxDuration must yield a governor")
	}
	time.Sleep(5 * time.Millisecond)
	if err := g.CheckNow(); !errors.Is(err, plan.ErrDeadlineExceeded) {
		t.Errorf("MaxDuration CheckNow = %v, want ErrDeadlineExceeded", err)
	}
}

func TestGovernorResourceLimits(t *testing.T) {
	g := plan.NewGovernor(context.Background(), plan.Limits{MaxEdgesScanned: 10})
	if err := g.AddEdges(10); err != nil {
		t.Fatalf("AddEdges at the limit = %v, want nil", err)
	}
	err := g.AddEdges(1)
	if !errors.Is(err, plan.ErrLimitExceeded) {
		t.Fatalf("AddEdges over the limit = %v, want ErrLimitExceeded", err)
	}
	var le *plan.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("limit error has no *LimitError in chain: %v", err)
	}
	if le.Counter != "edges_scanned" || le.Limit != 10 || le.Observed != 11 {
		t.Errorf("LimitError = %+v, want edges_scanned 11/10", le)
	}
	// Sticky through unrelated checkpoints.
	if err := g.Check(); !errors.Is(err, plan.ErrLimitExceeded) {
		t.Errorf("Check after limit = %v, want sticky limit error", err)
	}

	g = plan.NewGovernor(context.Background(), plan.Limits{MaxPaths: 1})
	if err := g.AddPaths(1); err != nil {
		t.Fatalf("AddPaths at the limit = %v", err)
	}
	err = g.AddPaths(1)
	if !errors.As(err, &le) || le.Counter != "paths" {
		t.Fatalf("paths overrun = %v, want *LimitError{Counter: paths}", err)
	}
}

func TestEngineGovernedEval(t *testing.T) {
	st, _, _ := demoStore(t)
	_, p := mustPlan(t, st, "VNF()->[Vertical()]{1,6}->Host()")
	view := graph.CurrentView(st)
	for name, eng := range engines(st) {
		t.Run(name, func(t *testing.T) {
			// Ungoverned EvalWith must agree with the plain Eval path.
			want, err := eng.Eval(view, p)
			if err != nil {
				t.Fatal(err)
			}
			got, _, _, err := eng.EvalWith(view, p, plan.EvalOpts{})
			if err != nil {
				t.Fatal(err)
			}
			equalSets(t, "ungoverned EvalWith", got, want)

			// A pre-canceled context aborts inside the backend probes.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, _, _, err = eng.EvalWith(view, p, plan.EvalOpts{Gov: plan.NewGovernor(ctx, plan.Limits{})})
			if !errors.Is(err, plan.ErrCanceled) {
				t.Errorf("canceled eval = %v, want ErrCanceled", err)
			}

			// Edge budget: the demo expansion scans well over one edge.
			gov := plan.NewGovernor(context.Background(), plan.Limits{MaxEdgesScanned: 1})
			_, _, _, err = eng.EvalWith(view, p, plan.EvalOpts{Gov: gov})
			var le *plan.LimitError
			if !errors.As(err, &le) || le.Counter != "edges_scanned" {
				t.Errorf("edge-limited eval = %v, want edges_scanned LimitError", err)
			}

			// Path budget: the demo has three VNF-to-host chains.
			gov = plan.NewGovernor(context.Background(), plan.Limits{MaxPaths: 1})
			_, _, _, err = eng.EvalWith(view, p, plan.EvalOpts{Gov: gov})
			if !errors.As(err, &le) || le.Counter != "paths" {
				t.Errorf("path-limited eval = %v, want paths LimitError", err)
			}
		})
	}
}

// panicAccessor panics on every probe, standing in for a backend bug.
type panicAccessor struct{ plan.Accessor }

func (panicAccessor) AnchorElements(graph.View, *rpe.Checked, *rpe.Atom, *plan.Governor) ([]graph.UID, error) {
	panic("backend bug")
}

func (panicAccessor) IncidentEdges(graph.View, graph.UID, plan.Direction, *rpe.Atom, *rpe.Checked, *plan.Governor) ([]graph.UID, error) {
	panic("backend bug")
}

func TestEnginePanicConvertedToError(t *testing.T) {
	st, _, _ := demoStore(t)
	_, p := mustPlan(t, st, "VM()->OnServer()->Host()")
	for name, inner := range engines(st) {
		t.Run(name, func(t *testing.T) {
			eng := plan.NewEngine(panicAccessor{inner.Accessor()})
			_, err := eng.Eval(graph.CurrentView(st), p)
			if !errors.Is(err, plan.ErrPanic) {
				t.Fatalf("panicking backend eval = %v, want ErrPanic", err)
			}
			var pe *plan.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("panic error has no *PanicError in chain: %v", err)
			}
			if pe.Value != "backend bug" || len(pe.Stack) == 0 {
				t.Errorf("PanicError = value %v, %d stack bytes; want recovered value and stack", pe.Value, len(pe.Stack))
			}

			// Traced evaluations attach the operator span to the panic.
			_, _, _, err = eng.EvalTraced(graph.CurrentView(st), p, nil)
			if !errors.As(err, &pe) || pe.Span == nil {
				t.Errorf("traced panic = %v, want *PanicError with span", err)
			}
		})
	}
}
