package plan

import (
	"sort"

	"repro/internal/rpe"
)

// ClassFootprint returns the sorted, deduplicated set of class names a
// set of checked pathway expressions can possibly match: every atom's
// declared class expanded to its full subclass subtree (an atom labeled
// with an abstract class matches any concrete descendant). It is the
// invalidation filter for standing queries — a mutation whose class is
// outside the footprint cannot change any pathway these expressions
// accept, so the result set provably did not change.
func ClassFootprint(cs ...*rpe.Checked) []string {
	seen := map[string]struct{}{}
	for _, c := range cs {
		if c == nil {
			continue
		}
		for _, a := range c.Atoms() {
			cls := c.ClassOf(a)
			if cls == nil {
				continue
			}
			for _, name := range cls.SubtreeNames() {
				seen[name] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
