package plan_test

import (
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/gremlin"
	"repro/internal/netmodel"
	"repro/internal/plan"
	"repro/internal/relational"
	"repro/internal/rpe"
	"repro/internal/temporal"
)

var t0 = time.Date(2017, 2, 15, 0, 0, 0, 0, time.UTC)

// demoStore builds the Figure-1 demo topology on a manual clock.
func demoStore(t *testing.T) (*graph.Store, *netmodel.Demo, *temporal.Clock) {
	t.Helper()
	clock := temporal.NewManualClock(t0)
	st := graph.NewStore(netmodel.MustSchema(), clock)
	d, err := netmodel.BuildDemo(st, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return st, d, clock
}

// engines returns one engine per backend.
func engines(st *graph.Store) map[string]*plan.Engine {
	return map[string]*plan.Engine{
		"gremlin":    plan.NewEngine(gremlin.New(st)),
		"relational": plan.NewEngine(relational.New(st)),
	}
}

func mustPlan(t *testing.T, st *graph.Store, src string) (*rpe.Checked, *plan.Plan) {
	t.Helper()
	c, err := rpe.CheckString(src, st.Schema())
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(c, st.Stats())
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}

func sortedKeys(ps *plan.PathwaySet) []string {
	keys := make([]string, 0, ps.Len())
	for _, p := range ps.Paths() {
		keys = append(keys, p.Key())
	}
	sort.Strings(keys)
	return keys
}

func equalSets(t *testing.T, name string, got, want *plan.PathwaySet) {
	t.Helper()
	g, w := sortedKeys(got), sortedKeys(want)
	if len(g) != len(w) {
		t.Errorf("%s: %d pathways, reference has %d\n got: %v\nwant: %v", name, len(g), len(w), g, w)
		return
	}
	for i := range g {
		if g[i] != w[i] {
			t.Errorf("%s: pathway %d differs: got %s want %s", name, i, g[i], w[i])
		}
	}
}

// runBoth runs the query on both backends, checks them against the
// reference oracle, and returns one of the (identical) result sets.
func runBoth(t *testing.T, st *graph.Store, view graph.View, src string) *plan.PathwaySet {
	t.Helper()
	c, p := mustPlan(t, st, src)
	ref := plan.ReferenceEval(view, c)
	var last *plan.PathwaySet
	for name, eng := range engines(st) {
		got, err := eng.Eval(view, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		equalSets(t, name+": "+src, got, ref)
		last = got
	}
	return last
}

func TestTopDownVerticalQuery(t *testing.T) {
	st, d, _ := demoStore(t)
	view := graph.CurrentView(st)
	fwID := st.Object(d.FirewallVNF).Current().Fields["id"]

	// All hosts supporting the firewall VNF: VNF -> Vertical{1,6} -> Host.
	got := runBoth(t, st, view, rpe.MustParse("VNF()->[Vertical()]{1,6}->Host()").String())
	if got.Len() == 0 {
		t.Fatal("no vertical pathways found")
	}

	// Anchored at the firewall's unique id: exactly the two chains to host1.
	src := "VNF(id=" + itoa(fwID) + ")->[Vertical()]{1,6}->Host()"
	got = runBoth(t, st, view, src)
	if got.Len() != 2 {
		t.Fatalf("firewall->host pathways = %d, want 2 (via vm-1 and vm-2)", got.Len())
	}
	for _, p := range got.Paths() {
		if p.Source() != d.FirewallVNF {
			t.Errorf("pathway source = %d, want firewall VNF", p.Source())
		}
		if p.Target() != d.Host1 {
			t.Errorf("pathway target = %d, want host-1", p.Target())
		}
		if p.Hops() != 3 {
			t.Errorf("pathway hops = %d, want 3 (composed_of, on_vm, on_server)", p.Hops())
		}
	}
}

func TestBottomUpQuery(t *testing.T) {
	st, d, _ := demoStore(t)
	view := graph.CurrentView(st)
	hostID := st.Object(d.Host1).Current().Fields["id"]

	// Which VNFs land on host-1? Anchor is at the END of the RPE, so the
	// engine extends backwards.
	src := "VNF()->[Vertical()]{1,6}->Host(id=" + itoa(hostID) + ")"
	got := runBoth(t, st, view, src)
	if got.Len() != 2 {
		t.Fatalf("bottom-up pathways = %d, want 2", got.Len())
	}
	for _, p := range got.Paths() {
		if p.Source() != d.FirewallVNF {
			t.Errorf("affected VNF = %d, want firewall", p.Source())
		}
	}
}

func TestNodeChainWithAbsorbedEdges(t *testing.T) {
	st, d, _ := demoStore(t)
	view := graph.CurrentView(st)
	hostID := st.Object(d.Host2).Current().Fields["id"]
	// The paper's first example: node atoms only, edges absorbed by ->.
	src := "VNF()->VFC()->VM()->Host(id=" + itoa(hostID) + ")"
	got := runBoth(t, st, view, src)
	if got.Len() != 1 {
		t.Fatalf("pathways = %d, want 1 (dns chain to host-2)", got.Len())
	}
	if got.Paths()[0].Source() != d.DNSVNF {
		t.Error("expected the DNS VNF chain")
	}
}

func TestHorizontalHostToHost(t *testing.T) {
	st, d, _ := demoStore(t)
	view := graph.CurrentView(st)
	// host-1 to host-2 through the physical fabric in exactly 4 hops:
	// host1 -> tor1 -> spine -> tor2 -> host2.
	src := "Host(name='host-1')->[PhysicalLink()]{1,4}->Host(name='host-2')"
	got := runBoth(t, st, view, src)
	if got.Len() != 1 {
		t.Fatalf("host-host pathways = %d, want 1", got.Len())
	}
	p := got.Paths()[0]
	if p.Hops() != 4 {
		t.Errorf("hops = %d, want 4", p.Hops())
	}
	if p.Source() != d.Host1 || p.Target() != d.Host2 {
		t.Error("endpoints wrong")
	}
}

func TestEdgeAnchoredQuery(t *testing.T) {
	st, _, _ := demoStore(t)
	view := graph.CurrentView(st)
	// Pure edge RPE with implicit endpoints.
	got := runBoth(t, st, view, "OnServer()")
	if got.Len() != 3 {
		t.Fatalf("OnServer pathways = %d, want 3", got.Len())
	}
	for _, p := range got.Paths() {
		if p.Len() != 3 {
			t.Errorf("edge pathway length = %d, want 3 (implicit endpoints)", p.Len())
		}
	}
}

func TestAlternationQuery(t *testing.T) {
	st, d, _ := demoStore(t)
	view := graph.CurrentView(st)
	vm1ID := st.Object(d.VM1).Current().Fields["id"]
	vm3ID := st.Object(d.VM3).Current().Fields["id"]
	src := "(VM(id=" + itoa(vm1ID) + ")|VM(id=" + itoa(vm3ID) + "))->OnServer()->Host()"
	got := runBoth(t, st, view, src)
	if got.Len() != 2 {
		t.Fatalf("alternation pathways = %d, want 2", got.Len())
	}
}

func TestCyclePrevention(t *testing.T) {
	st, _, _ := demoStore(t)
	view := graph.CurrentView(st)
	// The physical fabric has bidirectional links; without cycle
	// prevention host1 -> tor1 -> host1 -> ... would never terminate and
	// {1,6} would return ping-pong paths. All results must be simple.
	src := "Host(name='host-1')->[PhysicalLink()]{1,6}->Host()"
	got := runBoth(t, st, view, src)
	for _, p := range got.Paths() {
		seen := map[graph.UID]bool{}
		for _, e := range p.Elems {
			if seen[e] {
				t.Fatalf("pathway %v revisits element %d", p.Elems, e)
			}
			seen[e] = true
		}
	}
}

func TestSeededEvaluation(t *testing.T) {
	st, d, _ := demoStore(t)
	view := graph.CurrentView(st)
	// A structurally unanchored RPE must be rejected by Build...
	unanchored, err := rpe.CheckString("[PhysicalLink()]{0,4}->[VirtualLink()]{0,4}", st.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Build(unanchored, st.Stats()); err == nil {
		t.Fatal("unanchored plan accepted without seeds")
	}
	c, err := rpe.CheckString("[PhysicalLink()]{1,4}", st.Schema())
	if err != nil {
		t.Fatal(err)
	}
	// ...while a costly-anchor RPE like the paper's Phys variable gets its
	// anchor imported from a join (§3.4).
	p := plan.BuildSeeded(c, plan.Forward)
	for name, eng := range engines(st) {
		got, err := eng.EvalSeeded(view, p, []graph.UID{d.Host1})
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() == 0 {
			t.Fatalf("%s: no seeded pathways", name)
		}
		foundHost2 := false
		for _, pw := range got.Paths() {
			if pw.Source() != d.Host1 {
				t.Errorf("%s: seeded pathway source = %d, want host-1", name, pw.Source())
			}
			if pw.Target() == d.Host2 {
				foundHost2 = true
			}
		}
		if !foundHost2 {
			t.Errorf("%s: no seeded pathway reaches host-2", name)
		}
	}
	// Target-seeded: pathways ending at host-1.
	pb := plan.BuildSeeded(c, plan.Backward)
	for name, eng := range engines(st) {
		got, err := eng.EvalSeeded(view, pb, []graph.UID{d.Host1})
		if err != nil {
			t.Fatal(err)
		}
		for _, pw := range got.Paths() {
			if pw.Target() != d.Host1 {
				t.Errorf("%s: target-seeded pathway ends at %d", name, pw.Target())
			}
		}
		if got.Len() == 0 {
			t.Fatalf("%s: no target-seeded pathways", name)
		}
	}
}

func TestTimeTravelPointQuery(t *testing.T) {
	st, d, clock := demoStore(t)
	vm3ID := st.Object(d.VM3).Current().Fields["id"]

	// At 10:00 vm-3 migrates from host-2 to host-1: the OnServer edge is
	// deleted and re-created.
	clock.SetNow(t0.Add(10 * time.Hour))
	var oldEdge graph.UID
	for _, e := range st.OutEdges(d.VM3) {
		if st.Object(e).Class.Name == netmodel.OnServer {
			oldEdge = e
		}
	}
	if err := st.Delete(oldEdge); err != nil {
		t.Fatal(err)
	}
	if _, err := st.InsertEdge(netmodel.OnServer, d.VM3, d.Host1, graph.Fields{"id": 9001}); err != nil {
		t.Fatal(err)
	}

	src := "VM(id=" + itoa(vm3ID) + ")->OnServer()->Host()"
	// Before the migration, vm-3 ran on host-2.
	before := graph.PointView(st, t0.Add(5*time.Hour))
	for name, eng := range engines(st) {
		_, p := mustPlan(t, st, src)
		got, err := eng.Eval(before, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != 1 || got.Paths()[0].Target() != d.Host2 {
			t.Fatalf("%s: at 5h target = %v, want host-2", name, got.Paths())
		}
		ref := plan.ReferenceEval(before, p.Checked)
		equalSets(t, name+" before migration", got, ref)
	}
	// Now it runs on host-1.
	now := graph.CurrentView(st)
	for name, eng := range engines(st) {
		_, p := mustPlan(t, st, src)
		got, err := eng.Eval(now, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != 1 || got.Paths()[0].Target() != d.Host1 {
			t.Fatalf("%s: now target = %v, want host-1", name, got.Paths())
		}
	}
}

func TestTimeRangeQueryMaximalRanges(t *testing.T) {
	st, d, clock := demoStore(t)
	vm3ID := st.Object(d.VM3).Current().Fields["id"]

	clock.SetNow(t0.Add(10 * time.Hour))
	var oldEdge graph.UID
	for _, e := range st.OutEdges(d.VM3) {
		if st.Object(e).Class.Name == netmodel.OnServer {
			oldEdge = e
		}
	}
	if err := st.Delete(oldEdge); err != nil {
		t.Fatal(err)
	}
	if _, err := st.InsertEdge(netmodel.OnServer, d.VM3, d.Host1, graph.Fields{"id": 9001}); err != nil {
		t.Fatal(err)
	}

	// Range query spanning the migration returns both placements, each
	// with its maximal assertion range (§4).
	view := graph.RangeView(st, t0.Add(9*time.Hour), t0.Add(11*time.Hour))
	src := "VM(id=" + itoa(vm3ID) + ")->OnServer()->Host()"
	got := runBoth(t, st, view, src)
	if got.Len() != 2 {
		t.Fatalf("range pathways = %d, want 2", got.Len())
	}
	for _, p := range got.Paths() {
		if len(p.Validity) != 1 {
			t.Fatalf("validity = %v, want one maximal range", p.Validity)
		}
		iv := p.Validity[0]
		switch p.Target() {
		case d.Host2:
			// The old placement existed from load time — well before the
			// 9h window start: the range must NOT be clipped to the window.
			if !iv.Start.Before(t0.Add(time.Hour)) {
				t.Errorf("old placement range start = %v, want load time", iv.Start)
			}
			if !iv.End.Equal(t0.Add(10 * time.Hour)) {
				t.Errorf("old placement range end = %v, want 10h", iv.End)
			}
		case d.Host1:
			// The insert lands a clock micro-tick after the delete at 10h.
			if iv.Start.Before(t0.Add(10*time.Hour)) || iv.Start.After(t0.Add(10*time.Hour+time.Millisecond)) {
				t.Errorf("new placement range start = %v, want ~10h", iv.Start)
			}
			if !iv.IsCurrent() {
				t.Errorf("new placement must be current")
			}
		default:
			t.Errorf("unexpected target %d", p.Target())
		}
	}

	// A range window strictly before the migration sees only host-2.
	early := graph.RangeView(st, t0.Add(1*time.Hour), t0.Add(2*time.Hour))
	got = runBoth(t, st, early, src)
	if got.Len() != 1 || got.Paths()[0].Target() != d.Host2 {
		t.Fatalf("early range = %v", got.Paths())
	}
}

func TestFieldChangeAffectsValidity(t *testing.T) {
	st, d, clock := demoStore(t)
	// vm-1 goes Red at 4h and back Green at 6h.
	cur := st.Object(d.VM1).Current().Fields
	red := cur.Clone()
	red["status"] = "Red"
	clock.SetNow(t0.Add(4 * time.Hour))
	if err := st.Update(d.VM1, red); err != nil {
		t.Fatal(err)
	}
	green := red.Clone()
	green["status"] = "Green"
	clock.SetNow(t0.Add(6 * time.Hour))
	if err := st.Update(d.VM1, green); err != nil {
		t.Fatal(err)
	}

	src := "VM(id=" + itoa(cur["id"]) + ", status='Green')"
	view := graph.RangeView(st, t0, t0.Add(100*time.Hour))
	got := runBoth(t, st, view, src)
	if got.Len() != 1 {
		t.Fatalf("pathways = %d, want 1", got.Len())
	}
	v := got.Paths()[0].Validity
	if len(v) != 2 {
		t.Fatalf("validity = %v, want two green periods", v)
	}
	if !v[0].End.Equal(t0.Add(4*time.Hour)) || !v[1].Start.Equal(t0.Add(6*time.Hour)) {
		t.Errorf("green periods = %v", v)
	}

	// A point query during the red period finds nothing.
	mid := graph.PointView(st, t0.Add(5*time.Hour))
	got = runBoth(t, st, mid, src)
	if got.Len() != 0 {
		t.Fatalf("red-period point query returned %d pathways", got.Len())
	}
}

func TestExplain(t *testing.T) {
	st, _, _ := demoStore(t)
	_, p := mustPlan(t, st, "VNF()->[Vertical()]{1,6}->Host(id=1001)")
	text := p.Explain()
	for _, want := range []string{"Select:", "ExtendBlock {1,6}", "Anchor Host(id=1001)", "MaxLen:"} {
		if !containsStr(text, want) {
			t.Errorf("explain output missing %q:\n%s", want, text)
		}
	}
}

func TestPathwaySetMergesValidity(t *testing.T) {
	s := plan.NewPathwaySet()
	s.Add(plan.Pathway{Elems: []graph.UID{1, 2, 3}, Validity: temporal.Set{temporal.Between(t0, t0.Add(time.Hour))}})
	s.Add(plan.Pathway{Elems: []graph.UID{1, 2, 3}, Validity: temporal.Set{temporal.Between(t0.Add(time.Hour), t0.Add(2*time.Hour))}})
	s.Add(plan.Pathway{Elems: []graph.UID{1, 2, 4}, Validity: temporal.Set{temporal.Between(t0, t0.Add(time.Hour))}})
	if s.Len() != 2 {
		t.Fatalf("set size = %d, want 2", s.Len())
	}
	merged := s.Paths()[0].Validity
	if len(merged) != 1 || !merged[0].End.Equal(t0.Add(2*time.Hour)) {
		t.Errorf("merged validity = %v", merged)
	}
}

func containsStr(haystack, needle string) bool {
	return strings.Contains(haystack, needle)
}

func itoa(v any) string {
	switch n := v.(type) {
	case int64:
		return strconv.FormatInt(n, 10)
	case int:
		return strconv.Itoa(n)
	case float64:
		return strconv.FormatInt(int64(n), 10)
	}
	return "0"
}

func TestEvalMetered(t *testing.T) {
	st, d, _ := demoStore(t)
	view := graph.CurrentView(st)
	_, p := mustPlan(t, st, "VNF()->[Vertical()]{1,6}->Host(id=1001)")
	for name, eng := range engines(st) {
		set, m, err := eng.EvalMetered(view, p)
		if err != nil {
			t.Fatal(err)
		}
		if m.PathsEmitted != set.Len() || set.Len() != 2 {
			t.Errorf("%s: paths = %d / %d", name, m.PathsEmitted, set.Len())
		}
		if m.AnchorRecords != 1 {
			t.Errorf("%s: anchor records = %d, want 1 (unique id)", name, m.AnchorRecords)
		}
		if m.EdgesScanned == 0 || m.ElementsConsumed == 0 || m.PartialsExplored == 0 {
			t.Errorf("%s: empty counters: %s", name, m)
		}
		// Metering is one-shot: a plain Eval afterwards must not panic or
		// accumulate into stale metrics.
		if _, err := eng.Eval(view, p); err != nil {
			t.Fatal(err)
		}
	}
	_ = d
}
