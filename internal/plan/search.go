package plan

import (
	"fmt"
	"runtime/debug"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rpe"
)

// Engine executes plans against a backend's Accessor. It implements the
// anchored bidirectional NFA search of §5.1: Select the anchor records,
// Extend forwards from the anchor's post-state and backwards from its
// pre-state, and Union partial results — with cycle prevention via the
// uid-list disjointness predicate of §5.2.
//
// All evaluation entry points are safe for concurrent use on one Engine:
// per-evaluation instrumentation travels in an evalState threaded through
// the search rather than in Engine fields.
type Engine struct {
	acc Accessor
	// reg, when non-nil, receives per-evaluation metrics (eval counts,
	// latency histogram, scan volume); set via SetRegistry before serving.
	reg *engineObs
}

// NewEngine returns an engine over the backend accessor.
func NewEngine(acc Accessor) *Engine { return &Engine{acc: acc} }

// Accessor returns the backend accessor the engine drives.
func (e *Engine) Accessor() Accessor { return e.acc }

// engineObs caches the engine's registry metrics so the per-eval record
// is a handful of atomic adds.
type engineObs struct {
	evals    *obs.Counter
	latency  *obs.Histogram
	anchors  *obs.Counter
	edges    *obs.Counter
	partials *obs.Counter
	paths    *obs.Counter
}

// SetRegistry attaches a metrics registry: every evaluation then records
// its latency and operator counters under "engine.<backend>.*". A nil
// registry detaches. Call before the engine starts serving queries.
func (e *Engine) SetRegistry(r *obs.Registry) {
	if r == nil {
		e.reg = nil
		return
	}
	prefix := "engine." + e.acc.Name() + "."
	e.reg = &engineObs{
		evals:    r.Counter(prefix + "evals"),
		latency:  r.Histogram(prefix + "eval_latency_ms"),
		anchors:  r.Counter(prefix + "anchor_records"),
		edges:    r.Counter(prefix + "edges_scanned"),
		partials: r.Counter(prefix + "partials_explored"),
		paths:    r.Counter(prefix + "paths_emitted"),
	}
}

// record folds one evaluation into the registry metrics.
func (e *Engine) record(m Metrics, d time.Duration) {
	o := e.reg
	if o == nil {
		return
	}
	o.evals.Add(1)
	o.latency.Observe(float64(d) / 1e6)
	o.anchors.Add(int64(m.AnchorRecords))
	o.edges.Add(int64(m.EdgesScanned))
	o.partials.Add(int64(m.PartialsExplored))
	o.paths.Add(int64(m.PathsEmitted))
}

// evalState carries one evaluation's instrumentation and governance: the
// optional counters, the optional operator-span trace, the query's
// Governor, and the first failure (governance or backend) that aborts
// the search. The zero value disables everything; all sinks are nil-safe
// so the uninstrumented, ungoverned path costs only nil checks.
type evalState struct {
	m   *Metrics
	tr  *traceEval
	gov *Governor
	err error
}

// checkpoint is the cooperative cancellation check the search loops run
// once per expanded partial (and per anchor element). It reports whether
// the evaluation must stop, latching the governance error into es.err.
func (es *evalState) checkpoint() bool {
	if es.err != nil {
		return true
	}
	if err := es.gov.Check(); err != nil {
		es.err = err
		return true
	}
	return false
}

// fail latches the first failure; later calls keep the original error.
func (es *evalState) fail(err error) {
	if es.err == nil && err != nil {
		es.err = err
	}
}

// EvalOpts configures one evaluation through EvalWith: the query's
// governor, the seed nodes (for seeded plans), and the tracing sink.
type EvalOpts struct {
	// Gov is the query's governor; nil evaluates ungoverned.
	Gov *Governor
	// Seeds supplies the imported anchor nodes of a seeded plan.
	Seeds []graph.UID
	// Traced enables operator-DAG tracing; TraceParent, when non-nil,
	// nests the Eval span under it (and implies Traced).
	Traced      bool
	TraceParent *obs.Span
}

// EvalWith is the general evaluation entry point: metered, optionally
// traced, optionally governed. Seeded plans draw their anchors from
// o.Seeds; anchored plans ignore them. Engine panics are converted to a
// *PanicError at this boundary, with the operator span attached when
// tracing. The returned span is nil unless tracing was enabled.
func (e *Engine) EvalWith(view graph.View, p *Plan, o EvalOpts) (*PathwaySet, Metrics, *obs.Span, error) {
	var m Metrics
	es := &evalState{m: &m, gov: o.Gov}
	if o.Traced || o.TraceParent != nil {
		es.tr = newTraceEval(e.acc.Name(), p, o.TraceParent)
	}
	start := time.Now()
	var set *PathwaySet
	var err error
	if p.Seeded {
		set, err = e.evalSeeded(view, p, o.Seeds, es)
	} else {
		set, err = e.eval(view, p, es)
	}
	if set != nil {
		m.PathsEmitted = set.Len()
	}
	var root *obs.Span
	if es.tr != nil {
		es.tr.finish(set, m)
		root = es.tr.root
	}
	e.record(m, time.Since(start))
	return set, m, root, err
}

// Eval evaluates the plan within the view and returns all satisfying
// pathways with their maximal validity ranges.
func (e *Engine) Eval(view graph.View, p *Plan) (*PathwaySet, error) {
	if e.reg != nil {
		set, _, err := e.EvalMetered(view, p)
		return set, err
	}
	return e.eval(view, p, &evalState{})
}

// EvalMetered is Eval with instrumentation: it returns the operator
// pipeline's counters alongside the pathway set.
func (e *Engine) EvalMetered(view graph.View, p *Plan) (*PathwaySet, Metrics, error) {
	set, m, _, err := e.EvalWith(view, p, EvalOpts{})
	return set, m, err
}

// EvalTraced is EvalMetered with operator-DAG tracing: it additionally
// returns the evaluation's span tree (one span per Select/Extend/Union
// operator, accumulating wall time, rows, and probe counts). When parent
// is non-nil the Eval span nests under it; otherwise it is a root span.
func (e *Engine) EvalTraced(view graph.View, p *Plan, parent *obs.Span) (*PathwaySet, Metrics, *obs.Span, error) {
	return e.EvalWith(view, p, EvalOpts{Traced: true, TraceParent: parent})
}

// recovered converts an engine panic into a *PanicError, attaching the
// evaluation's operator span when the run was traced. Recovery sits at
// the eval/evalSeeded boundary so every public entry point (and every
// routed retry in the executor) observes a plain error instead of a
// process-killing panic.
func recovered(es *evalState, err *error) {
	if r := recover(); r != nil {
		pe := &PanicError{Value: r, Stack: debug.Stack()}
		if es.tr != nil {
			es.tr.flush()
			pe.Span = es.tr.root
		}
		*err = pe
	}
}

func (e *Engine) eval(view graph.View, p *Plan, es *evalState) (set *PathwaySet, err error) {
	defer recovered(es, &err)
	if p.Seeded {
		return nil, fmt.Errorf("plan: seeded plan requires EvalSeeded")
	}
	out := NewPathwaySet()
	c := p.Checked
	nfa := c.NFA()
	for _, atom := range p.Anchor.Atoms {
		if es.checkpoint() {
			break
		}
		var elements []graph.UID
		var aerr error
		if es.tr != nil {
			n := es.tr.selectNode(atom)
			t0 := n.begin()
			elements, aerr = e.acc.AnchorElements(view, c, atom, es.gov)
			n.end(t0)
			n.probes++
			n.rowsOut += int64(len(elements))
		} else {
			elements, aerr = e.acc.AnchorElements(view, c, atom, es.gov)
		}
		if aerr != nil {
			es.fail(aerr)
			break
		}
		es.m.addAnchors(len(elements))
		transIdxs := nfa.TransWithAtom(atom.ID())
		for _, uid := range elements {
			if es.checkpoint() {
				break
			}
			if !e.elementSatisfies(view, c, atom, uid) {
				continue
			}
			for _, ti := range transIdxs {
				tr := nfa.Trans[ti]
				fwd := e.forward(view, c, p, search{
					elems:  []graph.UID{uid},
					states: nfa.Closure(tr.To).Clone(),
				}, es)
				bwd := e.backward(view, c, p, search{
					elems:  []graph.UID{uid},
					states: nfa.ClosureRev(tr.From).Clone(),
				}, es)
				if es.tr != nil {
					n := es.tr.unionNode()
					before := out.Len()
					t0 := n.begin()
					e.combine(view, c, out, bwd, fwd, es)
					n.end(t0)
					n.rowsIn += int64(len(bwd) * len(fwd))
					n.rowsOut += int64(out.Len() - before)
				} else {
					e.combine(view, c, out, bwd, fwd, es)
				}
			}
		}
	}
	if es.err != nil {
		return nil, es.err
	}
	return out, nil
}

// EvalSeeded evaluates a plan whose anchor is imported from a join. Seeds
// are node UIDs bound to the pathway's source (Forward) or target
// (Backward) end.
func (e *Engine) EvalSeeded(view graph.View, p *Plan, seeds []graph.UID) (*PathwaySet, error) {
	if e.reg != nil {
		set, _, err := e.EvalSeededMetered(view, p, seeds)
		return set, err
	}
	return e.evalSeeded(view, p, seeds, &evalState{})
}

// EvalSeededMetered is EvalSeeded with instrumentation.
func (e *Engine) EvalSeededMetered(view graph.View, p *Plan, seeds []graph.UID) (*PathwaySet, Metrics, error) {
	set, m, _, err := e.EvalWith(view, p, EvalOpts{Seeds: seeds})
	return set, m, err
}

// EvalSeededTraced is EvalSeeded with operator-DAG tracing.
func (e *Engine) EvalSeededTraced(view graph.View, p *Plan, seeds []graph.UID, parent *obs.Span) (*PathwaySet, Metrics, *obs.Span, error) {
	return e.EvalWith(view, p, EvalOpts{Seeds: seeds, Traced: true, TraceParent: parent})
}

func (e *Engine) evalSeeded(view graph.View, p *Plan, seeds []graph.UID, es *evalState) (set *PathwaySet, err error) {
	defer recovered(es, &err)
	out := NewPathwaySet()
	c := p.Checked
	for _, seed := range seeds {
		if es.checkpoint() {
			break
		}
		obj := e.acc.Store().Object(seed)
		if obj == nil || obj.IsEdge() || !view.Visible(obj) {
			continue
		}
		if es.tr != nil {
			ssel := es.tr.seedSelectNode()
			ssel.rowsIn++
			ssel.rowsOut++
			n := es.tr.unionNode()
			before := out.Len()
			t0 := n.begin()
			e.evalSeedOne(view, c, p, seed, out, es)
			n.end(t0)
			n.rowsOut += int64(out.Len() - before)
		} else {
			e.evalSeedOne(view, c, p, seed, out, es)
		}
		es.m.addAnchors(1)
	}
	if es.err != nil {
		return nil, es.err
	}
	return out, nil
}

// evalSeedOne runs both seed branches (§3.4) for one seed node.
func (e *Engine) evalSeedOne(view graph.View, c *rpe.Checked, p *Plan, seed graph.UID, out *PathwaySet, es *evalState) {
	nfa := c.NFA()
	if p.SeedDir == Forward {
		init := search{elems: []graph.UID{seed}, states: nfa.Closure(nfa.Start).Clone()}
		// Branch (a): the seed node is consumed by a leading node atom.
		if consumed, ok := e.consume(view, c, init.states, seed, Forward); ok {
			sp := search{elems: init.elems, states: consumed, nconsumed: 1}
			for _, comp := range e.forwardAll(view, c, p, sp, es) {
				e.finish(view, c, out, comp.elems, comp.tailEdge, false, es)
			}
		}
		// Branch (b): the seed is the implicit endpoint of a leading
		// edge match; nothing consumed yet.
		for _, comp := range e.forwardAll(view, c, p, init, es) {
			e.finish(view, c, out, comp.elems, comp.tailEdge, false, es)
		}
	} else {
		init := search{elems: []graph.UID{seed}, states: nfa.ClosureRev(nfa.Accept).Clone()}
		if consumed, ok := e.consume(view, c, init.states, seed, Backward); ok {
			sp := search{elems: init.elems, states: consumed, nconsumed: 1}
			for _, comp := range e.backwardAll(view, c, p, sp, es) {
				e.finish(view, c, out, reversed(comp.elems), false, comp.tailEdge, es)
			}
		}
		for _, comp := range e.backwardAll(view, c, p, init, es) {
			e.finish(view, c, out, reversed(comp.elems), false, comp.tailEdge, es)
		}
	}
}

// search is a partial pathway under construction. For forward searches
// elems runs in pathway order; for backward searches it runs reversed
// (head of the pathway is the last slice entry).
type search struct {
	elems     []graph.UID
	states    rpe.StateSet
	nconsumed int
}

// completion is a finished half-pathway.
type completion struct {
	elems    []graph.UID
	tailEdge bool // the outermost consumed element is an edge (endpoint implicit)
}

// forward runs a forward half-search and returns all completions,
// including the trivial one when the anchor state set already accepts.
func (e *Engine) forward(view graph.View, c *rpe.Checked, p *Plan, init search, es *evalState) []completion {
	init.nconsumed = 1 // anchor element already consumed
	return e.forwardAll(view, c, p, init, es)
}

func (e *Engine) forwardAll(view graph.View, c *rpe.Checked, p *Plan, init search, es *evalState) []completion {
	nfa := c.NFA()
	var out []completion
	stack := []search{init}
	for len(stack) > 0 {
		if es.checkpoint() {
			break
		}
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		es.m.addPartial()
		if cur.nconsumed > 0 && cur.states.Has(nfa.Accept) {
			tail := cur.elems[len(cur.elems)-1]
			out = append(out, completion{elems: cloneUIDs(cur.elems), tailEdge: e.isEdge(tail)})
		}
		if len(cur.elems) >= p.MaxLen+2 {
			continue
		}
		tail := cur.elems[len(cur.elems)-1]
		if e.isEdge(tail) {
			// Structural successor: the edge's destination node.
			next := e.acc.Store().Object(tail).Dst
			e.step(view, c, &stack, cur, next, Forward, es)
		} else if hint, feasible := e.expandHint(c, cur.states, Forward); feasible {
			e.expand(view, c, &stack, cur, tail, hint, Forward, es)
		}
	}
	return out
}

// backward mirrors forward using the reversed automaton. elems is stored
// reversed (pathway head last).
func (e *Engine) backward(view graph.View, c *rpe.Checked, p *Plan, init search, es *evalState) []completion {
	init.nconsumed = 1
	return e.backwardAll(view, c, p, init, es)
}

func (e *Engine) backwardAll(view graph.View, c *rpe.Checked, p *Plan, init search, es *evalState) []completion {
	nfa := c.NFA()
	var out []completion
	stack := []search{init}
	for len(stack) > 0 {
		if es.checkpoint() {
			break
		}
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		es.m.addPartial()
		if cur.nconsumed > 0 && cur.states.Has(nfa.Start) {
			head := cur.elems[len(cur.elems)-1]
			out = append(out, completion{elems: cloneUIDs(cur.elems), tailEdge: e.isEdge(head)})
		}
		if len(cur.elems) >= p.MaxLen+2 {
			continue
		}
		head := cur.elems[len(cur.elems)-1]
		if e.isEdge(head) {
			prev := e.acc.Store().Object(head).Src
			e.step(view, c, &stack, cur, prev, Backward, es)
		} else if hint, feasible := e.expandHint(c, cur.states, Backward); feasible {
			e.expand(view, c, &stack, cur, head, hint, Backward, es)
		}
	}
	return out
}

// expand performs one Extend operator execution: an adjacency probe at
// node followed by one consume attempt per returned edge. When tracing,
// the probe's wall time and candidate volume accumulate into the Extend
// span of the (hint, dir) operator.
func (e *Engine) expand(view graph.View, c *rpe.Checked, stack *[]search, cur search, node graph.UID, hint *rpe.Atom, dir Direction, es *evalState) {
	if es.tr == nil {
		edges, err := e.acc.IncidentEdges(view, node, dir, hint, c, es.gov)
		if err != nil {
			es.fail(err)
			return
		}
		es.m.addEdges(len(edges))
		if err := es.gov.AddEdges(len(edges)); err != nil {
			es.fail(err)
			return
		}
		for _, edge := range edges {
			e.step(view, c, stack, cur, edge, dir, es)
		}
		return
	}
	n := es.tr.extendNode(hint, dir)
	t0 := n.begin()
	edges, err := e.acc.IncidentEdges(view, node, dir, hint, c, es.gov)
	n.end(t0)
	n.probes++
	n.edges += int64(len(edges))
	n.rowsIn++
	if err != nil {
		es.fail(err)
		return
	}
	es.m.addEdges(len(edges))
	if err := es.gov.AddEdges(len(edges)); err != nil {
		es.fail(err)
		return
	}
	for _, edge := range edges {
		if e.step(view, c, stack, cur, edge, dir, es) {
			n.rowsOut++
		} else {
			// Candidates pruned by cycle prevention or rejected by the NFA.
			n.rejected++
		}
	}
}

// step consumes one element in the given direction, pushing the extended
// partial when any transition fires. It reports whether the element was
// consumed.
func (e *Engine) step(view graph.View, c *rpe.Checked, stack *[]search, cur search, elem graph.UID, dir Direction, es *evalState) bool {
	for _, seen := range cur.elems {
		if seen == elem {
			return false // cycle prevention: H.id_ != ANY(uid_list)
		}
	}
	next, ok := e.consume(view, c, cur.states, elem, dir)
	if !ok {
		es.m.addRejected()
		return false
	}
	es.m.addConsumed()
	*stack = append(*stack, search{
		elems:     append(cloneUIDs(cur.elems), elem),
		states:    next,
		nconsumed: cur.nconsumed + 1,
	})
	return true
}

// consume advances the state set over one element: skip transitions fire
// whenever the element exists in the view; atom transitions additionally
// require class and predicate satisfaction. The returned set is already
// epsilon-closed.
func (e *Engine) consume(view graph.View, c *rpe.Checked, cur rpe.StateSet, elem graph.UID, dir Direction) (rpe.StateSet, bool) {
	obj := e.acc.Store().Object(elem)
	if obj == nil || !view.Visible(obj) {
		return nil, false
	}
	nfa := c.NFA()
	next := rpe.NewStateSet(nfa.NumStates)
	var satisfied map[*rpe.Atom]bool
	isEdge := obj.IsEdge()
	any := false
	cur.ForEach(func(s int) {
		var transIdx []int
		if dir == Forward {
			transIdx = nfa.OutTrans(s)
		} else {
			transIdx = nfa.InTrans(s)
		}
		for _, ti := range transIdx {
			tr := nfa.Trans[ti]
			if !c.CanConsume(ti, isEdge) {
				continue // statically dead for this element kind
			}
			if tr.Atom != nil {
				if satisfied == nil {
					satisfied = make(map[*rpe.Atom]bool, 4)
				}
				sat, cached := satisfied[tr.Atom]
				if !cached {
					sat = e.atomSatisfiedInView(view, c, tr.Atom, obj)
					satisfied[tr.Atom] = sat
				}
				if !sat {
					continue
				}
			}
			any = true
			if dir == Forward {
				next.Or(nfa.Closure(tr.To))
			} else {
				next.Or(nfa.ClosureRev(tr.From))
			}
		}
	})
	if !any {
		return nil, false
	}
	return next, true
}

// atomSatisfiedInView reports whether the object satisfies the atom at
// some instant admitted by the view (exact for point views; a candidate
// filter for range views, with exact validity computed at assembly).
func (e *Engine) atomSatisfiedInView(view graph.View, c *rpe.Checked, a *rpe.Atom, obj *graph.Object) bool {
	if !obj.Class.IsSubclassOf(c.ClassOf(a)) {
		return false
	}
	if view.IsPoint() {
		ver := obj.VersionAt(view.At())
		return ver != nil && c.Satisfies(a, obj.Class, ver.Fields)
	}
	for i := range obj.Versions {
		ver := &obj.Versions[i]
		if ver.Period.Overlaps(view.Window()) && c.Satisfies(a, obj.Class, ver.Fields) {
			return true
		}
	}
	return false
}

func (e *Engine) elementSatisfies(view graph.View, c *rpe.Checked, a *rpe.Atom, uid graph.UID) bool {
	obj := e.acc.Store().Object(uid)
	return obj != nil && e.atomSatisfiedInView(view, c, a, obj)
}

// expandHint inspects the transitions leaving (or entering) the current
// state set. feasible is false when no live transition can consume an
// edge at all — the partial pathway cannot be extended and the adjacency
// scan is skipped entirely. Otherwise, when every way to consume the next
// edge goes through a single edge atom and no skip transition, that atom
// is returned as a safe pruning hint for the backend's partitioned
// indexes; a nil hint with feasible true means an unpruned scan.
func (e *Engine) expandHint(c *rpe.Checked, cur rpe.StateSet, dir Direction) (hint *rpe.Atom, feasible bool) {
	nfa := c.NFA()
	var atom *rpe.Atom
	dead := false
	any := false
	cur.ForEach(func(s int) {
		var transIdx []int
		if dir == Forward {
			transIdx = nfa.OutTrans(s)
		} else {
			transIdx = nfa.InTrans(s)
		}
		for _, ti := range transIdx {
			tr := nfa.Trans[ti]
			if !c.CanConsume(ti, true) {
				continue // can never consume an edge: irrelevant here
			}
			if tr.Atom == nil {
				dead = true // a live skip can consume any edge: no pruning
				any = true
				return
			}
			if c.ClassOf(tr.Atom).IsNode() {
				continue // node atoms cannot consume the edge; irrelevant
			}
			any = true
			if atom != nil && atom != tr.Atom {
				dead = true // multiple possible edge atoms: no single hint
				return
			}
			atom = tr.Atom
		}
	})
	if !any {
		return nil, false
	}
	if dead {
		return nil, true
	}
	return atom, true
}

// combine joins backward and forward completions around the shared anchor
// element and finalizes each pathway.
func (e *Engine) combine(view graph.View, c *rpe.Checked, out *PathwaySet, bwd, fwd []completion, es *evalState) {
	for _, b := range bwd {
		if es.checkpoint() {
			return
		}
		for _, f := range fwd {
			// b.elems is reversed and both include the anchor; drop the
			// anchor from the backward half.
			head := reversed(b.elems[1:])
			full := append(head, f.elems...)
			if hasDuplicates(full) {
				continue
			}
			e.finish(view, c, out, full, f.tailEdge, b.tailEdge, es)
		}
	}
}

// finish adds implicit endpoint nodes where the match region starts or
// ends at an edge, computes exact validity, and admits the pathway when
// its validity overlaps the view window. Duplicate pathways (found again
// through another anchor instance or run) are skipped before the validity
// computation — ComputeValidity is deterministic per element sequence, so
// recomputation would be pure waste.
func (e *Engine) finish(view graph.View, c *rpe.Checked, out *PathwaySet, elems []graph.UID, tailEdge, headEdge bool, es *evalState) {
	full := elems
	st := e.acc.Store()
	if headEdge || e.isEdge(full[0]) {
		src := st.Object(full[0]).Src
		full = append([]graph.UID{src}, full...)
	}
	if tailEdge || e.isEdge(full[len(full)-1]) {
		dst := st.Object(full[len(full)-1]).Dst
		full = append(cloneUIDs(full), dst)
	}
	if hasDuplicates(full) {
		return
	}
	if out.Has(Pathway{Elems: full}.Key()) {
		return
	}
	validity := ComputeValidity(st, c, full)
	if validity.IsEmpty() {
		return
	}
	overlaps := false
	for _, iv := range validity {
		if iv.Overlaps(view.Window()) {
			overlaps = true
			break
		}
	}
	if !overlaps {
		return
	}
	out.Add(Pathway{Elems: full, Validity: validity})
	if err := es.gov.AddPaths(1); err != nil {
		es.fail(err)
	}
}

func (e *Engine) isEdge(uid graph.UID) bool {
	obj := e.acc.Store().Object(uid)
	return obj != nil && obj.IsEdge()
}

func cloneUIDs(in []graph.UID) []graph.UID {
	out := make([]graph.UID, len(in))
	copy(out, in)
	return out
}

func reversed(in []graph.UID) []graph.UID {
	out := make([]graph.UID, len(in))
	for i, v := range in {
		out[len(in)-1-i] = v
	}
	return out
}

func hasDuplicates(uids []graph.UID) bool {
	if len(uids) < 2 {
		return false
	}
	sorted := cloneUIDs(uids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return true
		}
	}
	return false
}
