package client

// Watch support: the client side of GET /v1/watch. WatchPoll is the
// single-request primitive; Client.Watch wraps it into an auto-resuming
// stream against one endpoint, and Cluster.Watch into a stream that
// survives endpoint loss and failover — it rotates across replicas
// (offloading the primary), tracks the highest epoch seen, refuses
// batches served under a superseded epoch, and transparently resumes at
// the last delivered stream index against whichever node currently
// serves.
//
// Delivery is at-least-once: after a sever the stream re-requests from
// its cursor, so a consumer may see a suffix of events again (same
// indexes, same payloads), but never a gap it is not told about —
// history contracted past the cursor surfaces as a synthetic
// watch.OpCompacted control event carrying the fresh resume token, and
// the consumer re-syncs before trusting later events. Duplicate-free
// delivery is NOT guaranteed; consumers needing exactly-once must
// deduplicate by Event.Index.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/watch"
)

// WatchCompactedError reports a resume token older than the endpoint's
// retained history; Base is the oldest servable index.
type WatchCompactedError struct {
	Base uint64
	api  *APIError
}

func (e *WatchCompactedError) Error() string {
	return fmt.Sprintf("client: watch position compacted away; re-sync and resume from %d", e.Base)
}

func (e *WatchCompactedError) Is(target error) bool { return target == ErrWatchCompacted }

func (e *WatchCompactedError) Unwrap() error {
	if e.api == nil {
		return nil
	}
	return e.api
}

// WatchOptions tunes a watch stream.
type WatchOptions struct {
	// PollWait is the server-side long-poll hold per request; 0 means 10s.
	PollWait time.Duration
	// MaxEvents caps events per batch; 0 uses the server default.
	MaxEvents int
	// Buffer is the stream's delivery channel depth; 0 means 64.
	Buffer int
}

func (o *WatchOptions) pollWait() time.Duration {
	if o == nil || o.PollWait <= 0 {
		return 10 * time.Second
	}
	return o.PollWait
}

func (o *WatchOptions) buffer() int {
	if o == nil || o.Buffer <= 0 {
		return 64
	}
	return o.Buffer
}

// WatchPoll issues one GET /v1/watch long-poll: events at stream
// indexes ≥ from, the resume token for the next call, and the epoch
// the batch was served under. A compacted position returns
// *WatchCompactedError (matches ErrWatchCompacted) with the fresh base.
func (c *Client) WatchPoll(ctx context.Context, from uint64, o *WatchOptions) (*server.WatchResponse, error) {
	u := fmt.Sprintf("%s/v1/watch?from=%d&wait_ms=%d", c.base, from, o.pollWait().Milliseconds())
	if o != nil && o.MaxEvents > 0 {
		u += "&max_events=" + strconv.Itoa(o.MaxEvents)
	}
	// Pin the highest epoch this caller has seen: a superseded primary
	// answering the watch would hand us a fenced era's events; instead it
	// learns it was superseded and answers 409 watch_stale_epoch.
	if c.provideEpoch != nil {
		if e := c.provideEpoch(); e > 0 {
			u += "&epoch=" + strconv.FormatUint(e, 10)
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	c.injectTrace(ctx, req)
	hresp, err := c.hc.Do(req)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, &TransportError{Op: "send", Err: err}
	}
	defer hresp.Body.Close()
	if c.observeEpoch != nil {
		if e, perr := strconv.ParseUint(hresp.Header.Get(server.HeaderEpoch), 10, 64); perr == nil && e > 0 {
			c.observeEpoch(e)
		}
	}
	raw, err := io.ReadAll(hresp.Body)
	if err != nil {
		return nil, &TransportError{Op: "decode", Err: err}
	}
	if hresp.StatusCode != http.StatusOK {
		apiErr := decodeAPIError(hresp, raw)
		if errors.Is(apiErr, ErrWatchCompacted) {
			base, _ := strconv.ParseUint(hresp.Header.Get(repl.HeaderBase), 10, 64)
			return nil, &WatchCompactedError{Base: base, api: apiErr}
		}
		return nil, apiErr
	}
	var resp server.WatchResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, &TransportError{Op: "decode", Err: err}
	}
	return &resp, nil
}

// decodeAPIError turns a non-2xx response into *APIError (the same
// mapping Client.do applies).
func decodeAPIError(hresp *http.Response, raw []byte) *APIError {
	traceID := hresp.Header.Get(obs.TraceHeader)
	retryAfter := parseRetryAfter(hresp.Header.Get("Retry-After"))
	var eb server.ErrorBody
	if jerr := json.Unmarshal(raw, &eb); jerr == nil && eb.Error.Code != "" {
		if eb.Error.TraceID != "" {
			traceID = eb.Error.TraceID
		}
		return &APIError{Status: hresp.StatusCode, Code: eb.Error.Code,
			Message: eb.Error.Message, TraceID: traceID, RetryAfter: retryAfter}
	}
	return &APIError{Status: hresp.StatusCode, Code: "internal",
		Message: strings.TrimSpace(string(raw)), TraceID: traceID, RetryAfter: retryAfter}
}

// WatchStream is an auto-resuming change-feed subscription. Consume
// with Next (or the Events channel); Close stops the stream. After the
// stream ends, Err reports why (nil for a clean Close).
type WatchStream struct {
	ch        chan watch.Event
	done      chan struct{}
	closeOnce sync.Once

	mu  sync.Mutex
	err error
}

func newWatchStream(o *WatchOptions) *WatchStream {
	return &WatchStream{
		ch:   make(chan watch.Event, o.buffer()),
		done: make(chan struct{}),
	}
}

// Events returns the delivery channel. It is never closed; select on it
// together with Done.
func (ws *WatchStream) Events() <-chan watch.Event { return ws.ch }

// Done is closed when the stream has ended (Close, context, or a fatal
// error — see Err).
func (ws *WatchStream) Done() <-chan struct{} { return ws.done }

// Next blocks for the next event. After the stream ends it returns
// Err() (or ErrWatchClosed for a clean Close); buffered events are
// drained before the termination surfaces.
func (ws *WatchStream) Next(ctx context.Context) (watch.Event, error) {
	select {
	case ev := <-ws.ch:
		return ev, nil
	default:
	}
	select {
	case ev := <-ws.ch:
		return ev, nil
	case <-ws.done:
		// Events already delivered to the channel still count.
		select {
		case ev := <-ws.ch:
			return ev, nil
		default:
		}
		if err := ws.Err(); err != nil {
			return watch.Event{}, err
		}
		return watch.Event{}, ErrWatchClosed
	case <-ctx.Done():
		return watch.Event{}, ctx.Err()
	}
}

// ErrWatchClosed reports the stream was closed by its consumer.
var ErrWatchClosed = errors.New("client: watch stream closed")

// Err returns the error that ended the stream (nil while running or
// after a clean Close).
func (ws *WatchStream) Err() error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.err
}

// Close stops the stream. Idempotent.
func (ws *WatchStream) Close() { ws.closeOnce.Do(func() { close(ws.done) }) }

// finish records the terminal error and releases waiters.
func (ws *WatchStream) finish(err error) {
	ws.mu.Lock()
	if ws.err == nil && err != nil && !errors.Is(err, context.Canceled) {
		ws.err = err
	}
	ws.mu.Unlock()
	ws.Close()
}

// emit delivers one event, honoring Close and ctx. Returns false when
// the stream should stop.
func (ws *WatchStream) emit(ctx context.Context, ev watch.Event) bool {
	select {
	case ws.ch <- ev:
		return true
	case <-ws.done:
		return false
	case <-ctx.Done():
		return false
	}
}

// Watch subscribes to this endpoint's change feed from the given stream
// index, transparently reconnecting (same cursor) through transient
// failures. History compacted past the cursor surfaces as a synthetic
// watch.OpCompacted event carrying the new base, after which the stream
// resumes there.
func (c *Client) Watch(ctx context.Context, from uint64, o *WatchOptions) *WatchStream {
	ws := newWatchStream(o)
	go func() {
		cursor := from
		backoff := 25 * time.Millisecond
		for {
			select {
			case <-ws.done:
				return
			default:
			}
			if ctx.Err() != nil {
				ws.finish(ctx.Err())
				return
			}
			resp, err := c.WatchPoll(ctx, cursor, o)
			if err != nil {
				var ce *WatchCompactedError
				switch {
				case errors.As(err, &ce):
					if !ws.emit(ctx, watch.Event{Index: ce.Base, Op: watch.OpCompacted}) {
						return
					}
					cursor = ce.Base
				case retryWatch(err):
					if sleepCtx(ctx, backoff) != nil {
						ws.finish(ctx.Err())
						return
					}
					backoff = min(backoff*2, 2*time.Second)
				default:
					ws.finish(err)
					return
				}
				continue
			}
			backoff = 25 * time.Millisecond
			for _, ev := range resp.Events {
				if !ws.emit(ctx, ev) {
					return
				}
			}
			if resp.Next > cursor {
				cursor = resp.Next
			}
		}
	}()
	return ws
}

// retryWatch reports whether a watch poll failure is worth retrying
// (same endpoint for a single-endpoint stream, next endpoint for a
// cluster stream).
func retryWatch(err error) bool {
	var te *TransportError
	if errors.As(err, &te) {
		return te.Retryable()
	}
	if errors.Is(err, ErrOverloaded) || errors.Is(err, ErrWatchStaleEpoch) {
		return true
	}
	var ae *APIError
	if errors.As(err, &ae) {
		// 503s — watch_unavailable, a replica still syncing — heal when the
		// node finishes starting or another endpoint serves.
		return ae.Status == http.StatusServiceUnavailable
	}
	return false
}

// Watch subscribes to the cluster's change feed from the given stream
// index. The subscription is failover-safe: it prefers replicas
// (offloading the primary), rotates endpoints on failure, and resumes
// at the last delivered index — so it rides through a kill-primary →
// Failover sequence, delivering every acked mutation at least once, in
// stream order. Batches served under a lower epoch than the cluster
// has already observed are discarded, never delivered: events from a
// fenced primary's era cannot interleave with the new primary's.
func (cl *Cluster) Watch(ctx context.Context, from uint64, o *WatchOptions) *WatchStream {
	ws := newWatchStream(o)
	go func() {
		cursor := from
		plan := cl.readPlan()
		idx, attempt := 0, 0
		for {
			select {
			case <-ws.done:
				return
			default:
			}
			if ctx.Err() != nil {
				ws.finish(ctx.Err())
				return
			}
			if idx >= len(plan) {
				// Every endpoint failed this round: back off, rebuild the
				// plan (a failover may have rewired primary and replicas).
				if cl.backoff(ctx, attempt, nil) != nil {
					ws.finish(ctx.Err())
					return
				}
				attempt++
				plan = cl.readPlan()
				idx = 0
				continue
			}
			resp, err := plan[idx].c.WatchPoll(ctx, cursor, o)
			if err != nil {
				var ce *WatchCompactedError
				switch {
				case errors.As(err, &ce):
					// This node's retention no longer covers our cursor. Tell
					// the consumer (it must re-sync) and resume at the base.
					if !ws.emit(ctx, watch.Event{Index: ce.Base, Op: watch.OpCompacted}) {
						return
					}
					cursor = ce.Base
				case retryWatch(err):
					idx++
				default:
					ws.finish(err)
					return
				}
				continue
			}
			if high := cl.Epoch(); resp.Epoch > 0 && resp.Epoch < high {
				// A fenced era's events must never reach the consumer.
				cl.mStaleReads.Add(1)
				idx++
				continue
			}
			attempt = 0
			for _, ev := range resp.Events {
				if !ws.emit(ctx, ev) {
					return
				}
			}
			if resp.Next > cursor {
				cursor = resp.Next
			}
		}
	}()
	return ws
}
