// Package client is the Go client for Nepal's HTTP/JSON query server
// (internal/server): typed request/response structs shared with the
// server so the wire contract cannot drift, connection reuse through one
// http.Client, context propagation onto the server's cooperative
// cancellation, prepared statements that transparently re-prepare after
// a server-side cache eviction, and result decoding back into
// plan.Pathway values.
//
// Errors are typed: server-side rejections surface as *APIError (match
// the overload/deadline/limit classes with errors.Is against
// ErrOverloaded, ErrDeadline, ErrLimit, ErrUnprepared), while network
// failures — connection refused, connections dropped mid-response —
// surface as *TransportError, which self-classifies as transient via
// Transient() (the same convention internal/exec retries on).
package client

import (
	"bytes"
	"context"
	"crypto/tls"
	"crypto/x509"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/server"
	"repro/internal/temporal"
)

// Sentinel errors for errors.Is against *APIError.
var (
	// ErrOverloaded matches 429: the server's admission queue is full.
	// Back off and retry.
	ErrOverloaded = errors.New("client: server overloaded")
	// ErrDeadline matches 504: the query hit its deadline server-side.
	ErrDeadline = errors.New("client: query deadline exceeded")
	// ErrLimit matches 422: the query crossed a resource limit.
	ErrLimit = errors.New("client: query resource limit exceeded")
	// ErrUnprepared matches 410: the prepared handle was evicted.
	ErrUnprepared = errors.New("client: statement not prepared")
	// ErrReplicaLagging matches 503 "replica_lagging": the replica could
	// not reach the request's min_timestamp in time. Retry against
	// another replica or the primary.
	ErrReplicaLagging = errors.New("client: replica lagging behind requested timestamp")
	// ErrReadOnly matches 403 "read_only": the node is a read replica;
	// send writes to the primary.
	ErrReadOnly = errors.New("client: node is a read-only replica")
	// ErrStalePrimary matches 403 "stale_primary": the node used to be
	// the primary but was superseded by a higher-epoch promotion (or
	// demoted by an operator). Rediscover the current primary; the write
	// was rejected before execution, so retrying elsewhere is safe.
	ErrStalePrimary = errors.New("client: primary is stale (superseded by a newer epoch)")
	// ErrStaleRead is a client-side rejection: the answer was served
	// under a lower primary epoch than the cluster has already observed,
	// so accepting it could interleave pre- and post-failover histories.
	// Retryable against another endpoint.
	ErrStaleRead = errors.New("client: answer served under a superseded epoch")
	// ErrWatchCompacted matches 410 "watch_compacted": the watch resume
	// token predates the oldest event the node retains. Re-sync derived
	// state, then resume from WatchCompactedError.Base.
	ErrWatchCompacted = errors.New("client: watch position compacted away")
	// ErrWatchStaleEpoch matches 409 "watch_stale_epoch": the node serves
	// an older epoch than this subscriber has already witnessed — it is a
	// superseded primary. Resubscribe on the current one.
	ErrWatchStaleEpoch = errors.New("client: watch endpoint serves a superseded epoch")
)

// APIError is a structured server rejection: the HTTP status plus the
// stable machine-readable code from the error envelope. TraceID, when
// non-empty, names the server-side trace of the failed request — quote
// it in bug reports and grep for it in the server's access log or fetch
// it from /debug/traces/{id}.
type APIError struct {
	Status  int
	Code    string
	Message string
	TraceID string
	// RetryAfter is the server's Retry-After hint (zero when absent):
	// how long to wait before retrying this endpoint. Sent with 429
	// "overloaded" and 503 "replica_lagging".
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.TraceID != "" {
		return fmt.Sprintf("server: %s (%s, http %d, trace %s)", e.Message, e.Code, e.Status, e.TraceID)
	}
	return fmt.Sprintf("server: %s (%s, http %d)", e.Message, e.Code, e.Status)
}

// Is maps the typed codes onto the package sentinels.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrOverloaded:
		return e.Code == "overloaded"
	case ErrDeadline:
		return e.Code == "deadline"
	case ErrLimit:
		return e.Code == "limit"
	case ErrUnprepared:
		return e.Code == "unprepared"
	case ErrReplicaLagging:
		return e.Code == "replica_lagging"
	case ErrReadOnly:
		return e.Code == "read_only"
	case ErrStalePrimary:
		return e.Code == "stale_primary"
	case ErrWatchCompacted:
		return e.Code == "watch_compacted"
	case ErrWatchStaleEpoch:
		return e.Code == "watch_stale_epoch"
	}
	return false
}

// TransportError is a network-level failure: the request may or may not
// have reached the server (send errors) or the response was cut off
// mid-body (a dropped connection). It classifies as transient.
type TransportError struct {
	Op  string // "send" or "decode"
	Err error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("client: transport failure during %s: %v", e.Op, e.Err)
}
func (e *TransportError) Unwrap() error   { return e.Err }
func (e *TransportError) Transient() bool { return true }

// Retryable classifies the failure for failover: connection resets,
// refusals, timeouts, and responses cut off mid-body are worth retrying
// against another endpoint; TLS handshake/verification and HTTP protocol
// violations are configuration bugs that every endpoint of a
// misconfigured client will reproduce — retrying those hot-loops a
// failure that cannot heal.
func (e *TransportError) Retryable() bool {
	// TLS: a bad certificate or a peer that is not speaking TLS will not
	// get better on retry.
	var certErr *tls.CertificateVerificationError
	var recordErr tls.RecordHeaderError
	var hostErr x509.HostnameError
	var unkErr x509.UnknownAuthorityError
	if errors.As(e.Err, &certErr) || errors.As(e.Err, &recordErr) ||
		errors.As(e.Err, &hostErr) || errors.As(e.Err, &unkErr) {
		return false
	}
	// Malformed URLs and unsupported schemes are caller bugs.
	if errors.Is(e.Err, http.ErrSchemeMismatch) {
		return false
	}
	// The rest of the transport failure space — refused, reset, timeout,
	// dropped mid-response (unexpected EOF / truncated JSON) — is the
	// transient kind failover exists for.
	return true
}

// Client talks to one Nepal server. It is safe for concurrent use; the
// underlying http.Client pools and reuses connections across requests
// and goroutines.
type Client struct {
	base string
	hc   *http.Client

	// provideEpoch/observeEpoch are the failover-epoch exchange hooks;
	// see WithEpochExchange. Either may be nil.
	provideEpoch func() uint64
	observeEpoch func(uint64)
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient substitutes the transport (custom timeouts, test
// instrumentation). The default client has a 30s overall timeout.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithEpochExchange wires the client into the failover-epoch exchange.
// provide (may be nil) returns the highest primary epoch the caller has
// seen; when positive it is stamped as X-Nepal-Epoch on every POST, so
// a superseded primary fences itself the moment a failover-aware client
// writes to it. observe (may be nil) is called with the epoch of every
// response that carries one, letting the caller track the cluster-wide
// maximum. Cluster uses both to keep pre- and post-failover histories
// from interleaving.
func WithEpochExchange(provide func() uint64, observe func(uint64)) Option {
	return func(c *Client) { c.provideEpoch, c.observeEpoch = provide, observe }
}

// New returns a client for the server at baseURL (e.g.
// "http://127.0.0.1:7474").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Pathway is a decoded result pathway: the engine's element-UID form
// plus the server-side rendering.
type Pathway struct {
	plan.Pathway
	Rendered string
}

// Row is one decoded result tuple: Values holds *Pathway for pathway
// projections and JSON scalars (string, float64, bool) otherwise.
type Row struct {
	Values  []any
	Coexist temporal.Set
}

// Result is a decoded query answer.
type Result struct {
	Columns      []string
	Rows         []Row
	Agg          *server.Agg
	Explain      string
	Metrics      server.Metrics
	Degraded     bool
	DegradedVars []string
	// Cached reports the server answered from its compiled-plan cache.
	Cached bool
	// ElapsedMS is the server-measured execution time.
	ElapsedMS float64
	// TraceID is the request's end-to-end trace ID; while the server
	// retains the trace, Trace(ctx, TraceID) fetches the full span tree.
	TraceID string
	// AppliedThrough, when the answer came from a replica, is its
	// replication watermark: every primary mutation at or before this
	// timestamp is reflected. Empty on primary answers.
	AppliedThrough string
	// Epoch is the primary epoch the answering node served under (0 when
	// it has none). A lower value than the highest epoch the caller has
	// seen means the answer predates the latest failover.
	Epoch uint64
	// Digest is the statement's literal-masked fingerprint — the key into
	// StatementStats rows and the server's per-digest /metrics series.
	Digest string
}

// QueryOptions carries the optional per-request fields of /v1/query.
type QueryOptions struct {
	// At runs the query at a point in time ("2006-01-02 15:04:05").
	At string
	// TimeoutMS bounds the server-side execution.
	TimeoutMS int64
	// Limits are per-request resource guardrails.
	Limits *server.Limits
	// MinTimestamp (RFC3339 or "2006-01-02 15:04:05") demands the answer
	// reflect every mutation at or before it — the bounded-staleness
	// contract when reading from a replica. Lagging replicas wait, then
	// fail with ErrReplicaLagging.
	MinTimestamp string
}

// Query executes one NPQL statement.
func (c *Client) Query(ctx context.Context, query string, o *QueryOptions) (*Result, error) {
	req := server.QueryRequest{Query: query}
	if o != nil {
		req.At, req.TimeoutMS, req.Limits = o.At, o.TimeoutMS, o.Limits
		req.MinTimestamp = o.MinTimestamp
	}
	var resp server.QueryResponse
	if err := c.post(ctx, "/v1/query", req, &resp); err != nil {
		return nil, err
	}
	return decodeResult(&resp), nil
}

// Explain returns the statement's textual plan without executing it.
func (c *Client) Explain(ctx context.Context, query string) (string, error) {
	var resp server.QueryResponse
	err := c.post(ctx, "/v1/query", server.QueryRequest{Query: query, Explain: server.ExplainPlan}, &resp)
	if err != nil {
		return "", err
	}
	return resp.Explain, nil
}

// ExplainAnalyze executes the statement with operator tracing and
// returns the annotated plan rendering alongside the decoded result.
func (c *Client) ExplainAnalyze(ctx context.Context, query string) (string, *Result, error) {
	var resp server.QueryResponse
	err := c.post(ctx, "/v1/query", server.QueryRequest{Query: query, Explain: server.ExplainAnalyze}, &resp)
	if err != nil {
		return "", nil, err
	}
	return resp.Explain, decodeResult(&resp), nil
}

// Stmt is a prepared statement handle. Exec transparently re-prepares
// once when the server answers "unprepared" (the plan was evicted), so
// long-lived statements survive cache churn.
type Stmt struct {
	c      *Client
	query  string
	handle string
	digest string
}

// Prepare compiles the statement server-side and returns its handle.
func (c *Client) Prepare(ctx context.Context, query string) (*Stmt, error) {
	var resp server.PrepareResponse
	if err := c.post(ctx, "/v1/prepare", server.PrepareRequest{Query: query}, &resp); err != nil {
		return nil, err
	}
	return &Stmt{c: c, query: query, handle: resp.Handle, digest: resp.Digest}, nil
}

// Text returns the statement's query text.
func (s *Stmt) Text() string { return s.query }

// Digest returns the statement's literal-masked fingerprint: all
// literal-only variants of this statement aggregate under it in the
// server's statistics surfaces.
func (s *Stmt) Digest() string { return s.digest }

// Exec executes the prepared statement.
func (s *Stmt) Exec(ctx context.Context, o *QueryOptions) (*Result, error) {
	req := server.ExecuteRequest{Handle: s.handle}
	if o != nil {
		req.TimeoutMS, req.Limits = o.TimeoutMS, o.Limits
		req.MinTimestamp = o.MinTimestamp
	}
	var resp server.QueryResponse
	err := s.c.post(ctx, "/v1/execute", req, &resp)
	if errors.Is(err, ErrUnprepared) {
		// A short jittered pause before re-preparing: after a failover or
		// a cache flush, every statement of every client hits this path
		// at once, and the jitter keeps the re-prepare herd spread out.
		if err := sleepCtx(ctx, time.Duration(rand.Int63n(int64(25*time.Millisecond)))); err != nil {
			return nil, err
		}
		if _, rerr := s.c.Prepare(ctx, s.query); rerr != nil {
			return nil, rerr
		}
		err = s.c.post(ctx, "/v1/execute", req, &resp)
	}
	if err != nil {
		return nil, err
	}
	return decodeResult(&resp), nil
}

// sleepCtx sleeps d or until ctx is done (returning its error).
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Ingest applies a batch of mutations in order. A nil error means every
// op is applied — durably, when the server's store is WAL-backed.
func (c *Client) Ingest(ctx context.Context, ops []server.IngestOp) (*server.IngestResponse, error) {
	var resp server.IngestResponse
	if err := c.post(ctx, "/v1/ingest", server.IngestRequest{Ops: ops}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Checkpoint snapshots the server's store and contracts its WAL.
func (c *Client) Checkpoint(ctx context.Context) error {
	var resp server.CheckpointResponse
	return c.post(ctx, "/v1/checkpoint", struct{}{}, &resp)
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (*server.HealthResponse, error) {
	var resp server.HealthResponse
	if err := c.get(ctx, "/healthz", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Ready fetches /readyz. A not-ready node (503 — still syncing or
// lagging past its tolerance) returns ready=false with the decoded
// status, not an error; errors are transport-level only.
func (c *Client) Ready(ctx context.Context) (ready bool, status *server.ReadyResponse, err error) {
	var resp server.ReadyResponse
	err = c.get(ctx, "/readyz", &resp)
	if err == nil {
		return true, &resp, nil
	}
	var ae *APIError
	if errors.As(err, &ae) && ae.Status == http.StatusServiceUnavailable {
		// The 503 body is the same JSON status document.
		if jerr := json.Unmarshal([]byte(ae.Message), &resp); jerr == nil && resp.Status != "" {
			return false, &resp, nil
		}
	}
	return false, nil, err
}

// Promote asks a replica to become the primary (POST /v1/promote):
// replication stops, replicated state is made durable, and the node
// starts acking writes under a freshly minted epoch. Idempotent
// server-side; on a fenced primary it is the re-promotion path.
func (c *Client) Promote(ctx context.Context) (*server.PromoteResponse, error) {
	var resp server.PromoteResponse
	if err := c.post(ctx, "/v1/promote", struct{}{}, &resp); err != nil {
		return nil, err
	}
	if c.observeEpoch != nil && resp.Epoch > 0 {
		c.observeEpoch(resp.Epoch)
	}
	return &resp, nil
}

// Demote fences a primary (POST /v1/demote): it keeps serving reads but
// rejects mutations with ErrStalePrimary until re-promoted — run it on
// an old primary before rejoining it to a cluster that failed over.
func (c *Client) Demote(ctx context.Context) (*server.DemoteResponse, error) {
	var resp server.DemoteResponse
	if err := c.post(ctx, "/v1/demote", struct{}{}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Base returns the endpoint URL this client talks to.
func (c *Client) Base() string { return c.base }

// Metrics fetches the /metrics text dump.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	return c.rawGet(ctx, "/metrics", "")
}

// PrometheusMetrics fetches /metrics in the Prometheus text exposition
// format (Accept: text/plain negotiates it server-side).
func (c *Client) PrometheusMetrics(ctx context.Context) (string, error) {
	return c.rawGet(ctx, "/metrics", "text/plain")
}

// StatementStats fetches GET /v1/stats/statements: the server's
// per-digest workload table, ordered by sortBy ("total_time" — the
// default when empty — "calls", or "mean_time") and truncated to limit
// rows when limit > 0.
func (c *Client) StatementStats(ctx context.Context, sortBy string, limit int) (*server.StatementStatsResponse, error) {
	path := "/v1/stats/statements"
	q := make([]string, 0, 2)
	if sortBy != "" {
		q = append(q, "sort="+sortBy)
	}
	if limit > 0 {
		q = append(q, "limit="+strconv.Itoa(limit))
	}
	if len(q) > 0 {
		path += "?" + strings.Join(q, "&")
	}
	var resp server.StatementStatsResponse
	if err := c.get(ctx, path, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ResetStats discards the server's per-statement aggregates (POST
// /v1/stats/reset) — bracket an experiment with it.
func (c *Client) ResetStats(ctx context.Context) error {
	var resp server.StatsResetResponse
	return c.post(ctx, "/v1/stats/reset", struct{}{}, &resp)
}

// ClusterView fetches GET /debug/cluster from this node: its own
// readiness plus every configured peer's, one map of role, epoch,
// applied index, and lag per node.
func (c *Client) ClusterView(ctx context.Context) (*server.ClusterResponse, error) {
	var resp server.ClusterResponse
	if err := c.get(ctx, "/debug/cluster", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Traces lists the server's retained request traces, newest first.
func (c *Client) Traces(ctx context.Context) (*server.TraceListResponse, error) {
	var resp server.TraceListResponse
	if err := c.get(ctx, "/debug/traces", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Trace fetches one retained trace's full span tree by trace ID (as
// returned in Result.TraceID and APIError.TraceID).
func (c *Client) Trace(ctx context.Context, id string) (*server.TraceDetail, error) {
	var resp server.TraceDetail
	if err := c.get(ctx, "/debug/traces/"+id, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// rawGet fetches a text endpoint, optionally with an Accept header.
func (c *Client) rawGet(ctx context.Context, path, accept string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return "", err
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	c.injectTrace(ctx, req)
	hresp, err := c.hc.Do(req)
	if err != nil {
		return "", &TransportError{Op: "send", Err: err}
	}
	defer hresp.Body.Close()
	body, err := io.ReadAll(hresp.Body)
	if err != nil {
		return "", &TransportError{Op: "decode", Err: err}
	}
	if hresp.StatusCode != http.StatusOK {
		return "", &APIError{Status: hresp.StatusCode, Code: "internal", Message: string(body)}
	}
	return string(body), nil
}

// ---- transport ----

// injectTrace forwards a caller-supplied trace ID onto the wire: when
// ctx carries one (obs.WithTraceID), the request's X-Nepal-Trace header
// makes the server join this hop to the caller's existing trace instead
// of minting a fresh ID. Without one, the header stays unset and the
// server generates the ID — the common case costs one map-miss lookup.
func (c *Client) injectTrace(ctx context.Context, req *http.Request) {
	if id := obs.TraceIDFrom(ctx); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
}

func (c *Client) post(ctx context.Context, path string, body, into any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	c.injectTrace(ctx, req)
	// Stamp the highest epoch this caller has seen: a superseded primary
	// receiving it fences itself instead of acking the write.
	if c.provideEpoch != nil {
		if e := c.provideEpoch(); e > 0 {
			req.Header.Set(server.HeaderEpoch, strconv.FormatUint(e, 10))
		}
	}
	return c.do(req, into)
}

func (c *Client) get(ctx context.Context, path string, into any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	c.injectTrace(ctx, req)
	return c.do(req, into)
}

func (c *Client) do(req *http.Request, into any) error {
	hresp, err := c.hc.Do(req)
	if err != nil {
		// The caller's own context expiring is a deliberate abort, not a
		// transient transport fault — surface it as-is.
		if ctxErr := req.Context().Err(); ctxErr != nil {
			return ctxErr
		}
		return &TransportError{Op: "send", Err: err}
	}
	defer hresp.Body.Close()
	// Learn the answering node's epoch whatever the outcome — error
	// responses from a newer-epoch primary still advance the maximum.
	if c.observeEpoch != nil {
		if e, perr := strconv.ParseUint(hresp.Header.Get(server.HeaderEpoch), 10, 64); perr == nil && e > 0 {
			c.observeEpoch(e)
		}
	}
	raw, err := io.ReadAll(hresp.Body)
	if err != nil {
		// The connection died mid-response: the body is incomplete.
		return &TransportError{Op: "decode", Err: err}
	}
	if hresp.StatusCode < 200 || hresp.StatusCode > 299 {
		traceID := hresp.Header.Get(obs.TraceHeader)
		retryAfter := parseRetryAfter(hresp.Header.Get("Retry-After"))
		var eb server.ErrorBody
		if jerr := json.Unmarshal(raw, &eb); jerr == nil && eb.Error.Code != "" {
			if eb.Error.TraceID != "" {
				traceID = eb.Error.TraceID
			}
			return &APIError{Status: hresp.StatusCode, Code: eb.Error.Code,
				Message: eb.Error.Message, TraceID: traceID, RetryAfter: retryAfter}
		}
		return &APIError{Status: hresp.StatusCode, Code: "internal",
			Message: strings.TrimSpace(string(raw)), TraceID: traceID, RetryAfter: retryAfter}
	}
	if err := json.Unmarshal(raw, into); err != nil {
		// 200 with an undecodable body: almost always a connection cut
		// mid-response by a proxy or a dying server.
		return &TransportError{Op: "decode", Err: err}
	}
	return nil
}

// parseRetryAfter reads the delay-seconds form of Retry-After (the only
// form nepal servers send).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// ---- decoding ----

func decodeResult(resp *server.QueryResponse) *Result {
	out := &Result{
		Columns:        resp.Columns,
		Agg:            resp.Agg,
		Explain:        resp.Explain,
		Metrics:        resp.Metrics,
		Degraded:       resp.Degraded,
		DegradedVars:   resp.DegradedVars,
		Cached:         resp.Cached,
		ElapsedMS:      resp.ElapsedMS,
		TraceID:        resp.TraceID,
		AppliedThrough: resp.AppliedThrough,
		Epoch:          resp.Epoch,
		Digest:         resp.Digest,
	}
	for _, row := range resp.Rows {
		r := Row{Values: make([]any, len(row.Values)), Coexist: server.IntervalsIn(row.Coexist)}
		for i, v := range row.Values {
			if v.Pathway != nil {
				r.Values[i] = &Pathway{Pathway: v.Pathway.Plan(), Rendered: v.Pathway.Rendered}
			} else {
				r.Values[i] = v.Scalar
			}
		}
		out.Rows = append(out.Rows, r)
	}
	return out
}
