package client

// Cluster failover tests against scripted fake endpoints: round-robin
// spread, lagging-replica failover, degrade-to-primary, Retry-After
// honoring, and the no-blind-write-retry rule. The full-stack versions
// (real servers, real replication) live in internal/server and
// internal/chaos.

import (
	"context"
	"crypto/tls"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// fakeEndpoint is a scripted server: each request pops the next script
// entry (sticking on the last) and answers with it.
type fakeEndpoint struct {
	t     *testing.T
	srv   *httptest.Server
	hits  atomic.Int64
	reply atomic.Pointer[func(w http.ResponseWriter, r *http.Request)]
}

func newFakeEndpoint(t *testing.T) *fakeEndpoint {
	t.Helper()
	f := &fakeEndpoint{t: t}
	f.ok()
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		io.Copy(io.Discard, r.Body)
		(*f.reply.Load())(w, r)
	}))
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeEndpoint) set(h func(w http.ResponseWriter, r *http.Request)) { f.reply.Store(&h) }

// ok scripts a successful empty query/ingest response.
func (f *fakeEndpoint) ok() {
	f.set(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"columns":["c"],"applied":1}`)
	})
}

// apiErr scripts a typed error envelope, optionally with Retry-After.
func (f *fakeEndpoint) apiErr(status int, code, retryAfter string) {
	f.set(func(w http.ResponseWriter, r *http.Request) {
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		io.WriteString(w, `{"error":{"code":"`+code+`","message":"scripted"}}`)
	})
}

// failOnce scripts one occurrence of h, then reverts to ok.
func (f *fakeEndpoint) failOnce(h func(w http.ResponseWriter, r *http.Request)) {
	var used atomic.Bool
	f.set(func(w http.ResponseWriter, r *http.Request) {
		if used.CompareAndSwap(false, true) {
			h(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"columns":["c"],"applied":1}`)
	})
}

func fastCluster(t *testing.T, primary *fakeEndpoint, replicas ...*fakeEndpoint) *Cluster {
	t.Helper()
	urls := make([]string, len(replicas))
	for i, r := range replicas {
		urls[i] = r.srv.URL
	}
	cl, err := NewCluster(ClusterConfig{
		Primary:         primary.srv.URL,
		Replicas:        urls,
		BackoffMin:      time.Millisecond,
		BackoffMax:      4 * time.Millisecond,
		ReplicaCooldown: time.Minute,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return cl
}

func TestClusterRoundRobinSpread(t *testing.T) {
	primary, r1, r2 := newFakeEndpoint(t), newFakeEndpoint(t), newFakeEndpoint(t)
	cl := fastCluster(t, primary, r1, r2)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := cl.Query(ctx, "q", nil); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if got := primary.hits.Load(); got != 0 {
		t.Fatalf("primary served %d reads; want 0 while replicas are healthy", got)
	}
	if h1, h2 := r1.hits.Load(), r2.hits.Load(); h1 != 5 || h2 != 5 {
		t.Fatalf("uneven round-robin: replica1=%d replica2=%d", h1, h2)
	}
}

func TestClusterFailsOverFromLaggingReplica(t *testing.T) {
	primary, r1, r2 := newFakeEndpoint(t), newFakeEndpoint(t), newFakeEndpoint(t)
	r1.apiErr(http.StatusServiceUnavailable, "replica_lagging", "")
	cl := fastCluster(t, primary, r1, r2)
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if _, err := cl.Query(ctx, "q", nil); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if cl.ReadFailovers() == 0 {
		t.Fatal("no read failovers recorded despite a lagging replica")
	}
	// The lagging replica is sidelined after its first failure, so it sees
	// far fewer requests than the healthy one.
	if h1, h2 := r1.hits.Load(), r2.hits.Load(); h1 >= h2 {
		t.Fatalf("lagging replica not sidelined: replica1=%d replica2=%d", h1, h2)
	}
}

func TestClusterDegradesToPrimaryWhenAllReplicasDown(t *testing.T) {
	primary, r1, r2 := newFakeEndpoint(t), newFakeEndpoint(t), newFakeEndpoint(t)
	r1.srv.Close()
	r2.srv.Close()
	cl := fastCluster(t, primary, r1, r2)
	res, err := cl.Query(context.Background(), "q", nil)
	if err != nil {
		t.Fatalf("query with all replicas down: %v", err)
	}
	if len(res.Columns) != 1 {
		t.Fatalf("unexpected result: %+v", res)
	}
	if primary.hits.Load() == 0 {
		t.Fatal("primary never consulted")
	}
	if cl.DegradedReads() == 0 {
		t.Fatal("degraded-read counter not incremented")
	}
}

func TestClusterReadNotRetriedOnNonRetryableError(t *testing.T) {
	primary, r1, r2 := newFakeEndpoint(t), newFakeEndpoint(t), newFakeEndpoint(t)
	r1.apiErr(http.StatusUnprocessableEntity, "limit", "")
	r2.apiErr(http.StatusUnprocessableEntity, "limit", "")
	cl := fastCluster(t, primary, r1, r2)
	_, err := cl.Query(context.Background(), "q", nil)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v; want ErrLimit", err)
	}
	if total := r1.hits.Load() + r2.hits.Load() + primary.hits.Load(); total != 1 {
		t.Fatalf("query errors that every endpoint reproduces must not fail over; %d attempts", total)
	}
}

func TestClusterWriteRetriesOnlyOverloaded(t *testing.T) {
	primary := newFakeEndpoint(t)
	primary.failOnce(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		io.WriteString(w, `{"error":{"code":"overloaded","message":"queue full"}}`)
	})
	cl := fastCluster(t, primary)
	if _, err := cl.Ingest(context.Background(), []server.IngestOp{{Op: "touch"}}); err != nil {
		t.Fatalf("ingest after 429: %v", err)
	}
	if got := primary.hits.Load(); got != 2 {
		t.Fatalf("attempts = %d; want 2 (429 then success)", got)
	}

	// A transport failure mid-write is NOT retried: the mutation may have
	// been applied.
	cut := newFakeEndpoint(t)
	cut.set(func(w http.ResponseWriter, r *http.Request) {
		hj, _ := w.(http.Hijacker)
		conn, _, _ := hj.Hijack()
		conn.Close()
	})
	cl2 := fastCluster(t, cut)
	_, err := cl2.Ingest(context.Background(), []server.IngestOp{{Op: "touch"}})
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v; want *TransportError", err)
	}
	if got := cut.hits.Load(); got != 1 {
		t.Fatalf("transport-failed write retried: %d attempts", got)
	}
}

func TestClusterHonorsRetryAfter(t *testing.T) {
	primary := newFakeEndpoint(t)
	primary.failOnce(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		io.WriteString(w, `{"error":{"code":"overloaded","message":"queue full"}}`)
	})
	cl, err := NewCluster(ClusterConfig{
		Primary:    primary.srv.URL,
		BackoffMin: time.Millisecond,
		BackoffMax: 600 * time.Millisecond, // Retry-After cap = 2×max ≥ 1s
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	start := time.Now()
	if _, err := cl.Ingest(context.Background(), []server.IngestOp{{Op: "touch"}}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retry fired after %v; Retry-After: 1 demands ≥1s", elapsed)
	}
}

func TestClusterFailoverPromotesAReplica(t *testing.T) {
	primary, r1, r2 := newFakeEndpoint(t), newFakeEndpoint(t), newFakeEndpoint(t)
	primary.srv.Close() // the primary is gone
	r1.srv.Close()      // first replica is gone too
	r2.set(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/promote" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"promoted":true,"stream_position":42}`)
	})
	cl := fastCluster(t, primary, r1, r2)
	nc, err := cl.Failover(context.Background())
	if err != nil {
		t.Fatalf("failover: %v", err)
	}
	if nc.Base() != r2.srv.URL {
		t.Fatalf("promoted %s; want %s", nc.Base(), r2.srv.URL)
	}
	if cl.Primary().Base() != r2.srv.URL {
		t.Fatalf("cluster primary not rewired: %s", cl.Primary().Base())
	}
	for _, rep := range cl.Replicas() {
		if rep.Base() == r2.srv.URL {
			t.Fatal("promoted node still in the read rotation")
		}
	}
}

func TestTransportErrorRetryable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"connection refused", errors.New("dial tcp: connection refused"), true},
		{"unexpected EOF", io.ErrUnexpectedEOF, true},
		{"tls record header", tls.RecordHeaderError{Msg: "not tls"}, false},
		{"scheme mismatch", http.ErrSchemeMismatch, false},
	}
	for _, tc := range cases {
		te := &TransportError{Op: "send", Err: tc.err}
		if got := te.Retryable(); got != tc.want {
			t.Errorf("%s: Retryable() = %v; want %v", tc.name, got, tc.want)
		}
	}
}

// TestBackoffSurvivesLargeAttempt pins the overflow guard: a retry
// budget in the dozens must not shift the backoff into a negative
// duration (which would panic the jitter draw).
func TestBackoffSurvivesLargeAttempt(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{
		Primary:    "http://127.0.0.1:0",
		BackoffMin: time.Millisecond,
		BackoffMax: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, attempt := range []int{0, 1, 40, 63, 200} {
		if err := cl.backoff(context.Background(), attempt, nil); err != nil {
			t.Fatalf("backoff(attempt=%d): %v", attempt, err)
		}
	}
}
