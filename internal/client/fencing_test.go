package client

// Epoch-aware cluster tests against scripted endpoints: most-caught-up
// failover ranking, stale_primary rediscovery, and lower-epoch read
// rejection. The full-stack versions run in internal/server and
// internal/chaos.

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strconv"
	"testing"
)

// replicaScript scripts a replica that reports /readyz status and
// answers /v1/promote, recording whether it was promoted.
func replicaScript(f *fakeEndpoint, applied uint64, diverged bool, promoted *bool) {
	f.set(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/readyz":
			io.WriteString(w, `{"status":"ready","role":"replica","caught_up":true,"applied_index":`+
				strconv.FormatUint(applied, 10)+`,"diverged":`+strconv.FormatBool(diverged)+`}`)
		case "/v1/promote":
			if promoted != nil {
				*promoted = true
			}
			io.WriteString(w, `{"promoted":true,"stream_position":`+strconv.FormatUint(applied, 10)+`,"epoch":2}`)
		default:
			io.WriteString(w, `{"columns":["c"],"applied":1}`)
		}
	})
}

// TestFailoverPicksMostCaughtUpReplica: with every replica reachable,
// Failover must promote the one with the highest applied index — the
// first-answering node losing the race is exactly how acked writes get
// silently discarded.
func TestFailoverPicksMostCaughtUpReplica(t *testing.T) {
	primary, r1, r2, r3 := newFakeEndpoint(t), newFakeEndpoint(t), newFakeEndpoint(t), newFakeEndpoint(t)
	primary.srv.Close()
	var p1, p2, p3 bool
	replicaScript(r1, 10, false, &p1)
	replicaScript(r2, 30, false, &p2)
	replicaScript(r3, 20, false, &p3)

	cl := fastCluster(t, primary, r1, r2, r3)
	nc, err := cl.Failover(context.Background())
	if err != nil {
		t.Fatalf("failover: %v", err)
	}
	if nc.Base() != r2.srv.URL {
		t.Fatalf("promoted %s; want the most-caught-up %s", nc.Base(), r2.srv.URL)
	}
	if p1 || p3 || !p2 {
		t.Fatalf("promote calls: r1=%v r2=%v r3=%v; want only r2", p1, p2, p3)
	}
	if got := cl.Epoch(); got != 2 {
		t.Fatalf("cluster epoch after failover = %d, want the promoted node's 2", got)
	}
}

// TestFailoverSkipsDivergedReplica: a parked fork is never a promote
// candidate, even when it is the most caught up.
func TestFailoverSkipsDivergedReplica(t *testing.T) {
	primary, r1, r2 := newFakeEndpoint(t), newFakeEndpoint(t), newFakeEndpoint(t)
	primary.srv.Close()
	var p1, p2 bool
	replicaScript(r1, 99, true, &p1) // most caught up, but forked
	replicaScript(r2, 5, false, &p2)

	cl := fastCluster(t, primary, r1, r2)
	nc, err := cl.Failover(context.Background())
	if err != nil {
		t.Fatalf("failover: %v", err)
	}
	if nc.Base() != r2.srv.URL || p1 || !p2 {
		t.Fatalf("promoted %s (r1=%v r2=%v); want the non-diverged %s", nc.Base(), p1, p2, r2.srv.URL)
	}
}

// TestWriteRediscoversOnStalePrimary: a stale_primary rejection is a
// signal the cluster's primary pointer is outdated, not a retryable
// blip — the cluster must scan its replicas for the real primary (the
// highest-epoch unfenced node claiming the role) and re-route the
// write there.
func TestWriteRediscoversOnStalePrimary(t *testing.T) {
	stale, promoted := newFakeEndpoint(t), newFakeEndpoint(t)
	stale.apiErr(http.StatusForbidden, "stale_primary", "")
	promoted.set(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/readyz":
			io.WriteString(w, `{"status":"ready","role":"primary","epoch":3}`)
		default:
			w.Header().Set("X-Nepal-Epoch", "3")
			io.WriteString(w, `{"columns":["c"],"applied":1,"epoch":3}`)
		}
	})

	cl := fastCluster(t, stale, promoted)
	resp, err := cl.Ingest(context.Background(), nil)
	if err != nil {
		t.Fatalf("ingest through rediscovery: %v", err)
	}
	if resp.Epoch != 3 {
		t.Fatalf("rerouted ack epoch = %d, want 3", resp.Epoch)
	}
	if cl.Primary().Base() != promoted.srv.URL {
		t.Fatalf("cluster primary = %s; want rediscovered %s", cl.Primary().Base(), promoted.srv.URL)
	}
	if cl.Rediscoveries() == 0 {
		t.Fatal("rediscovery not counted")
	}
	if got := cl.Epoch(); got != 3 {
		t.Fatalf("cluster epoch = %d, want 3", got)
	}
}

// TestWriteFailsWhenNoNewPrimaryFound: stale_primary with nowhere to
// rediscover surfaces the typed error instead of retrying blindly
// against the fenced node.
func TestWriteFailsWhenNoNewPrimaryFound(t *testing.T) {
	stale, replica := newFakeEndpoint(t), newFakeEndpoint(t)
	stale.apiErr(http.StatusForbidden, "stale_primary", "")
	replicaScript(replica, 4, false, nil) // role=replica: not a primary to re-route to

	cl := fastCluster(t, stale, replica)
	_, err := cl.Ingest(context.Background(), nil)
	if !errors.Is(err, ErrStalePrimary) {
		t.Fatalf("ingest with no discoverable primary = %v; want ErrStalePrimary", err)
	}
	if hits := stale.hits.Load(); hits != 1 {
		t.Fatalf("fenced primary was retried %d times; want exactly 1 attempt", hits)
	}
}

// TestReadRejectsLowerEpochAnswer: once the cluster has seen epoch N, a
// replica still answering under an older era is a pre-failover node
// whose answer may interleave forked history — the read must retry
// elsewhere and the stale answer must never surface.
func TestReadRejectsLowerEpochAnswer(t *testing.T) {
	primary, staleReplica := newFakeEndpoint(t), newFakeEndpoint(t)
	primary.set(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Nepal-Epoch", "3")
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"columns":["fresh"],"applied":1,"epoch":3}`)
	})
	staleReplica.set(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"columns":["stale"],"epoch":1}`)
	})

	cl := fastCluster(t, primary, staleReplica)
	ctx := context.Background()
	// Teach the cluster the current era via a write ack.
	if _, err := cl.Ingest(ctx, nil); err != nil {
		t.Fatal(err)
	}
	// Reads rotate to the replica first, see epoch 1 < 3, and must fall
	// through to the primary rather than return the stale rows.
	for i := 0; i < 4; i++ {
		res, err := cl.Query(ctx, "q", nil)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(res.Columns) != 1 || res.Columns[0] != "fresh" {
			t.Fatalf("query %d returned stale answer: %+v", i, res)
		}
	}
	if cl.StaleReads() == 0 {
		t.Fatal("stale reads not counted")
	}
}
