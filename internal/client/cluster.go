package client

// Cluster is the multi-endpoint client: one primary for writes, a set
// of read replicas for queries. Reads round-robin across healthy
// replicas and fail over — transient transport errors and lagging
// replicas retry against the next endpoint under a per-call retry
// budget with capped jittered backoff, honoring any Retry-After the
// server sent. When every replica is down or lagging the cluster
// degrades to primary-only reads. Writes always go to the primary and
// are never blindly retried over the network (a mutation that may have
// reached the server must not be replayed); the exceptions are 429
// "overloaded" and 403 "stale_primary", both of which the server
// guarantees were rejected before execution.
//
// The cluster is failover-epoch aware: it tracks the highest primary
// epoch any response has carried, stamps it on writes (fencing a stale
// primary on contact), rejects read answers served under a lower epoch
// (ErrStaleRead — accepting one could interleave pre- and
// post-failover histories), rediscovers the current primary when the
// configured one answers "stale_primary", and Failover promotes the
// most-caught-up healthy replica rather than the first that answers.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// ClusterConfig wires a Cluster. Primary is required; Replicas may be
// empty (all reads then hit the primary).
type ClusterConfig struct {
	// Primary is the write endpoint's base URL.
	Primary string
	// Replicas are the read endpoints' base URLs.
	Replicas []string
	// HTTPClient is shared by every endpoint; nil uses each client's
	// default (30s overall timeout).
	HTTPClient *http.Client
	// RetryBudget caps the total attempts one read makes across
	// endpoints; 0 means len(Replicas)+2 (every replica once, then the
	// primary, then one more for luck).
	RetryBudget int
	// BackoffMin/BackoffMax bound the jittered exponential backoff
	// between attempts; 0 means 25ms / 1s. A server Retry-After hint
	// overrides the computed backoff when longer.
	BackoffMin, BackoffMax time.Duration
	// ReplicaCooldown is how long a replica that failed a read sits out
	// of the rotation; 0 means 3s.
	ReplicaCooldown time.Duration
}

// Cluster routes requests across a primary and its replicas. Safe for
// concurrent use.
type Cluster struct {
	cfg ClusterConfig

	mu       sync.Mutex
	primary  *Client
	replicas []*clusterReplica
	rr       atomic.Uint64

	// epoch is the highest primary epoch any response has carried — the
	// cluster's watermark of "how recent a failover have I witnessed".
	epoch atomic.Uint64

	// mReadFailovers counts reads that left their first-choice endpoint.
	mReadFailovers atomic.Int64
	// mDegraded counts reads that fell back to the primary because no
	// replica was available.
	mDegraded atomic.Int64
	// mStaleReads counts read answers rejected for carrying a lower epoch
	// than the cluster had already seen.
	mStaleReads atomic.Int64
	// mRediscoveries counts writes that rewired the primary after a
	// "stale_primary" rejection.
	mRediscoveries atomic.Int64
}

type clusterReplica struct {
	c *Client
	// downUntil is the unix-nano deadline of the replica's cooldown
	// (atomic; 0 = healthy).
	downUntil atomic.Int64
}

// NewCluster returns a cluster client. Primary must be non-empty.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Primary == "" {
		return nil, errors.New("client: cluster needs a primary endpoint")
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = len(cfg.Replicas) + 2
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 25 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	if cfg.ReplicaCooldown <= 0 {
		cfg.ReplicaCooldown = 3 * time.Second
	}
	cl := &Cluster{cfg: cfg}
	// Every endpoint client participates in the epoch exchange: each
	// stamps the cluster's highest-seen epoch on writes and feeds the
	// epoch of every response back into the maximum.
	opts := []Option{WithEpochExchange(cl.epoch.Load, cl.observeEpoch)}
	if cfg.HTTPClient != nil {
		opts = append(opts, WithHTTPClient(cfg.HTTPClient))
	}
	cl.primary = New(cfg.Primary, opts...)
	for _, url := range cfg.Replicas {
		cl.replicas = append(cl.replicas, &clusterReplica{c: New(url, opts...)})
	}
	return cl, nil
}

// observeEpoch folds one observed epoch into the cluster maximum.
func (cl *Cluster) observeEpoch(e uint64) {
	for {
		cur := cl.epoch.Load()
		if e <= cur || cl.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Epoch returns the highest primary epoch the cluster has observed.
func (cl *Cluster) Epoch() uint64 { return cl.epoch.Load() }

// Primary returns the write endpoint's client.
func (cl *Cluster) Primary() *Client {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.primary
}

// Replicas returns the read endpoints' clients, in configuration order.
func (cl *Cluster) Replicas() []*Client {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	out := make([]*Client, len(cl.replicas))
	for i, r := range cl.replicas {
		out[i] = r.c
	}
	return out
}

// ReadFailovers reports how many reads left their first-choice endpoint.
func (cl *Cluster) ReadFailovers() int64 { return cl.mReadFailovers.Load() }

// DegradedReads reports how many reads fell back to the primary because
// no replica was available.
func (cl *Cluster) DegradedReads() int64 { return cl.mDegraded.Load() }

// StaleReads reports how many read answers were rejected for carrying a
// lower epoch than the cluster had already observed.
func (cl *Cluster) StaleReads() int64 { return cl.mStaleReads.Load() }

// Rediscoveries reports how many writes rewired the primary after a
// "stale_primary" rejection.
func (cl *Cluster) Rediscoveries() int64 { return cl.mRediscoveries.Load() }

// readPlan builds the endpoint order for one read: healthy replicas
// starting at the round-robin cursor, then cooled-down replicas (better
// a maybe-stale replica than nothing), then the primary.
func (cl *Cluster) readPlan() []*clusterReplica {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	n := len(cl.replicas)
	plan := make([]*clusterReplica, 0, n+1)
	if n > 0 {
		start := int(cl.rr.Add(1)-1) % n
		now := time.Now().UnixNano()
		var cooled []*clusterReplica
		for i := 0; i < n; i++ {
			r := cl.replicas[(start+i)%n]
			if r.downUntil.Load() > now {
				cooled = append(cooled, r)
				continue
			}
			plan = append(plan, r)
		}
		plan = append(plan, cooled...)
	}
	plan = append(plan, &clusterReplica{c: cl.primary})
	return plan
}

// retryRead reports whether err warrants trying the next endpoint.
func retryRead(err error) bool {
	var te *TransportError
	if errors.As(err, &te) {
		return te.Retryable()
	}
	return errors.Is(err, ErrReplicaLagging) || errors.Is(err, ErrOverloaded) ||
		errors.Is(err, ErrReadOnly) || // endpoint list is stale: a promoted node moved
		errors.Is(err, ErrStaleRead) // answer predates the latest failover
}

// backoff sleeps before the next attempt: jittered exponential from the
// config bounds, raised to the server's Retry-After hint when present.
func (cl *Cluster) backoff(ctx context.Context, attempt int, err error) error {
	// Stop doubling once the cap is reached rather than shifting by the
	// raw attempt count: a large retry budget would overflow the shift
	// into a negative duration.
	d := cl.cfg.BackoffMin
	for i := 0; i < attempt && d < cl.cfg.BackoffMax; i++ {
		d <<= 1
	}
	if d > cl.cfg.BackoffMax {
		d = cl.cfg.BackoffMax
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	var ae *APIError
	if errors.As(err, &ae) && ae.RetryAfter > d {
		d = ae.RetryAfter
		if cap := 2 * cl.cfg.BackoffMax; d > cap {
			d = cap
		}
	}
	return sleepCtx(ctx, d)
}

// read runs one read-path call across the endpoint plan.
func (cl *Cluster) read(ctx context.Context, fn func(*Client) error) error {
	plan := cl.readPlan()
	budget := cl.cfg.RetryBudget
	var lastErr error
	for attempt := 0; attempt < budget; attempt++ {
		r := plan[attempt%len(plan)]
		if attempt > 0 {
			cl.mReadFailovers.Add(1)
		}
		if r.c == cl.Primary() && attempt > 0 {
			cl.mDegraded.Add(1)
		}
		err := fn(r.c)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryRead(err) || ctx.Err() != nil {
			return err
		}
		// Sideline the failing replica (the synthetic primary entry has
		// its cooldown discarded with it).
		r.downUntil.Store(time.Now().Add(cl.cfg.ReplicaCooldown).UnixNano())
		if attempt+1 < budget {
			if serr := cl.backoff(ctx, attempt, err); serr != nil {
				return fmt.Errorf("%w (last endpoint error: %v)", serr, lastErr)
			}
		}
	}
	return lastErr
}

// Query executes a read on the cluster: round-robin across healthy
// replicas with failover, degrading to the primary when none can serve.
// Answers served under a lower epoch than the cluster has already seen
// are rejected (ErrStaleRead) and retried elsewhere: after a failover
// the cluster never hands the caller an interleaving of the old
// primary's history and the new one's.
func (cl *Cluster) Query(ctx context.Context, query string, o *QueryOptions) (*Result, error) {
	var res *Result
	err := cl.read(ctx, func(c *Client) error {
		r, err := c.Query(ctx, query, o)
		if err != nil {
			return err
		}
		// The response already advanced cl.epoch through observeEpoch, so
		// a strict < here means some other response proved a newer era.
		if high := cl.epoch.Load(); r.Epoch > 0 && r.Epoch < high {
			cl.mStaleReads.Add(1)
			return fmt.Errorf("%w: %s answered at epoch %d, cluster has seen %d",
				ErrStaleRead, c.Base(), r.Epoch, high)
		}
		res = r
		return nil
	})
	return res, err
}

// writeRetry retries a primary write only on errors the server
// guarantees were rejected before execution: 429 "overloaded" (honoring
// Retry-After) and 403 "stale_primary" — the latter after rediscovering
// the current primary among the endpoints, since the configured one was
// superseded by a failover. Transport failures are NOT retried: the
// mutation may have been applied, and replaying it is worse than
// reporting it.
func (cl *Cluster) writeRetry(ctx context.Context, fn func(*Client) error) error {
	var lastErr error
	for attempt := 0; attempt < cl.cfg.RetryBudget; attempt++ {
		err := fn(cl.Primary())
		if err == nil {
			return nil
		}
		lastErr = err
		switch {
		case ctx.Err() != nil:
			return err
		case errors.Is(err, ErrOverloaded):
			if attempt+1 < cl.cfg.RetryBudget {
				if serr := cl.backoff(ctx, attempt, err); serr != nil {
					return fmt.Errorf("%w (last endpoint error: %v)", serr, lastErr)
				}
			}
		case errors.Is(err, ErrStalePrimary):
			// The write never executed; finding the real primary and
			// resending is safe. Without a rediscovery there is no point
			// retrying: the stale node will keep refusing.
			if !cl.rediscoverPrimary(ctx) {
				return err
			}
			cl.mRediscoveries.Add(1)
		default:
			return err
		}
	}
	return lastErr
}

// rediscoverPrimary scans the read endpoints for the true primary — the
// highest-epoch unfenced node reporting the primary role — and rewires
// the cluster onto it (the old primary leaves the write path). Returns
// false when no endpoint currently claims the role.
func (cl *Cluster) rediscoverPrimary(ctx context.Context) bool {
	cl.mu.Lock()
	replicas := append([]*clusterReplica(nil), cl.replicas...)
	cl.mu.Unlock()
	best := -1
	var bestEpoch uint64
	for i, r := range replicas {
		_, st, err := r.c.Ready(ctx)
		if err != nil || st == nil {
			continue
		}
		if st.Role != "primary" || st.Fenced || st.Epoch == 0 {
			continue
		}
		if best < 0 || st.Epoch > bestEpoch {
			best, bestEpoch = i, st.Epoch
		}
	}
	if best < 0 {
		return false
	}
	cl.observeEpoch(bestEpoch)
	cl.mu.Lock()
	cl.primary = replicas[best].c
	cl.replicas = append(append([]*clusterReplica(nil), replicas[:best]...), replicas[best+1:]...)
	cl.mu.Unlock()
	return true
}

// Ingest applies mutations through the primary.
func (cl *Cluster) Ingest(ctx context.Context, ops []server.IngestOp) (*server.IngestResponse, error) {
	var resp *server.IngestResponse
	err := cl.writeRetry(ctx, func(c *Client) error {
		r, err := c.Ingest(ctx, ops)
		if err == nil {
			resp = r
		}
		return err
	})
	return resp, err
}

// Checkpoint checkpoints the primary.
func (cl *Cluster) Checkpoint(ctx context.Context) error {
	return cl.writeRetry(ctx, func(c *Client) error { return c.Checkpoint(ctx) })
}

// Stats probes every configured endpoint's /readyz concurrently and
// returns the same map shape GET /debug/cluster serves: role, epoch,
// applied index, and lag per node, with transport failures surfaced as
// unreachable entries instead of errors. This is the client-side
// cluster view — it needs no server-side peer configuration because the
// cluster already knows its endpoints.
func (cl *Cluster) Stats(ctx context.Context) *server.ClusterResponse {
	cl.mu.Lock()
	endpoints := make([]*Client, 0, len(cl.replicas)+1)
	endpoints = append(endpoints, cl.primary)
	for _, r := range cl.replicas {
		endpoints = append(endpoints, r.c)
	}
	cl.mu.Unlock()

	resp := &server.ClusterResponse{Nodes: make(map[string]server.ClusterNode, len(endpoints))}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, c := range endpoints {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			node := server.ClusterNode{URL: c.Base()}
			if _, st, err := c.Ready(ctx); err != nil {
				node.Error = err.Error()
			} else {
				node.Reachable = true
				node.Ready = st
			}
			mu.Lock()
			resp.Nodes[c.Base()] = node
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	return resp
}

// Failover promotes a replica to primary after the primary is lost. It
// asks every replica for its replication status and promotes the MOST
// CAUGHT-UP healthy one — highest applied stream index, ties broken by
// configuration order — not the first that answers: promoting a laggard
// silently discards every acked write past its position. Diverged
// (parked) replicas are never candidates. Unreachable replicas fall to
// the back as promote-blind fallbacks, tried only when no replica could
// report status at all. The promoted node becomes the write endpoint
// and leaves the read rotation. Returns the new primary's client.
func (cl *Cluster) Failover(ctx context.Context) (*Client, error) {
	cl.mu.Lock()
	replicas := append([]*clusterReplica(nil), cl.replicas...)
	cl.mu.Unlock()
	if len(replicas) == 0 {
		return nil, errors.New("client: failover found no promotable replica: no replicas to fail over to")
	}
	type candidate struct {
		idx     int
		applied uint64
		ranked  bool
	}
	cands := make([]candidate, 0, len(replicas))
	var blind []candidate
	var lastErr error
	for i, r := range replicas {
		_, st, err := r.c.Ready(ctx)
		if err != nil || st == nil {
			// Can't rank it; keep as a last-resort blind promote target.
			lastErr = err
			blind = append(blind, candidate{idx: i})
			continue
		}
		if st.Diverged {
			lastErr = fmt.Errorf("client: replica %s parked diverged; it cannot be promoted", r.c.Base())
			continue
		}
		cands = append(cands, candidate{idx: i, applied: st.AppliedIndex, ranked: true})
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].applied > cands[b].applied })
	cands = append(cands, blind...)
	for _, cand := range cands {
		r := replicas[cand.idx]
		resp, err := r.c.Promote(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Epoch > 0 {
			cl.observeEpoch(resp.Epoch)
		}
		cl.mu.Lock()
		cl.primary = r.c
		cl.replicas = append(append([]*clusterReplica(nil), replicas[:cand.idx]...), replicas[cand.idx+1:]...)
		cl.mu.Unlock()
		return r.c, nil
	}
	if lastErr == nil {
		lastErr = errors.New("no replicas to fail over to")
	}
	return nil, fmt.Errorf("client: failover found no promotable replica: %w", lastErr)
}
