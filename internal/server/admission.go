package server

import (
	"context"
	"errors"
	"sync"

	"repro/internal/obs"
)

// ErrOverloaded is returned by the admission governor when the server is
// at its in-flight limit and the wait queue is full — the typed overload
// signal the HTTP layer maps to 429 and clients back off on. It is
// deliberately not queue-forever: an unbounded queue converts overload
// into unbounded latency, which a network inventory dashboard experiences
// as an outage anyway (Granite's admission-control argument).
var ErrOverloaded = errors.New("server: overloaded (in-flight limit reached, wait queue full)")

// admission is the two-stage admission governor: at most maxInFlight
// requests execute concurrently, at most maxQueue more wait for a slot,
// and everything beyond that is rejected immediately with ErrOverloaded.
// Waiters are admitted in arrival order (channel semantics) and give up
// when their request context is done.
type admission struct {
	slots chan struct{} // buffered; one token per executing request

	mu     sync.Mutex
	queued int64
	maxQ   int64

	admitted *obs.Counter
	rejected *obs.Counter
	inflight *obs.Gauge
	queuedG  *obs.Gauge
}

// newAdmission sizes the governor; maxInFlight < 1 means 1, maxQueue < 0
// means 0 (reject as soon as the in-flight limit is hit). The registry
// (nil ok) receives server.admitted / server.rejected counters and the
// server.in_flight / server.queued gauges.
func newAdmission(maxInFlight, maxQueue int, reg *obs.Registry) *admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		slots:    make(chan struct{}, maxInFlight),
		maxQ:     int64(maxQueue),
		admitted: reg.Counter("server.admitted"),
		rejected: reg.Counter("server.rejected"),
		inflight: reg.Gauge("server.in_flight"),
		queuedG:  reg.Gauge("server.queued"),
	}
}

// acquire admits the request or fails with ErrOverloaded (queue full) or
// the context's error (caller gave up while queued). On success the
// caller must release().
func (a *admission) acquire(ctx context.Context) error {
	// Fast path: a free slot admits without queueing.
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		a.inflight.Add(1)
		return nil
	default:
	}
	a.mu.Lock()
	if a.queued >= a.maxQ {
		a.mu.Unlock()
		a.rejected.Add(1)
		return ErrOverloaded
	}
	a.queued++
	a.mu.Unlock()
	a.queuedG.Add(1)
	defer func() {
		a.mu.Lock()
		a.queued--
		a.mu.Unlock()
		a.queuedG.Add(-1)
	}()
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		a.inflight.Add(1)
		return nil
	case <-ctx.Done():
		a.rejected.Add(1)
		return ctx.Err()
	}
}

// release returns the request's slot.
func (a *admission) release() {
	<-a.slots
	a.inflight.Add(-1)
}

// inFlight reports the executing request count.
func (a *admission) inFlight() int64 { return int64(len(a.slots)) }

// queuedNow reports the waiting request count.
func (a *admission) queuedNow() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued
}
