package server

// Replication serving: every WAL-backed server is a replication source
// (GET /v1/wal, GET /v1/wal/snapshot), and a server configured with a
// repl.Follower is a read replica — mutations are rejected with the
// typed "read_only" error, query responses carry the replica's
// applied-through watermark, reads demanding a min_timestamp wait
// (bounded) or fail typed "replica_lagging", /readyz reports lag, and
// POST /v1/promote turns the replica into a writable primary.

import (
	"context"
	"errors"
	"net/http"
	"time"

	"repro/internal/repl"
)

// defaultMaxStalenessWait bounds how long a min_timestamp read blocks on
// a lagging replica before failing typed.
const defaultMaxStalenessWait = 2 * time.Second

// defaultReadyMaxLag is the record lag under which a replica still
// answers /readyz with 200.
const defaultReadyMaxLag = 1024

// replica reports whether this server is an unpromoted read replica.
func (s *Server) replica() bool {
	return s.cfg.Follower != nil && !s.cfg.Follower.Promoted()
}

// rejectReadOnly answers mutation attempts on a replica. Returns true
// when the request was rejected.
func (s *Server) rejectReadOnly(w http.ResponseWriter, r *http.Request) bool {
	if !s.replica() {
		return false
	}
	writeErr(w, r, http.StatusForbidden, "read_only",
		"this node is a read replica; send writes to the primary (or promote it via POST /v1/promote)")
	return true
}

// maxStalenessWait is the cap on a min_timestamp read's wait.
func (s *Server) maxStalenessWait() time.Duration {
	if s.cfg.MaxStalenessWait > 0 {
		return s.cfg.MaxStalenessWait
	}
	return defaultMaxStalenessWait
}

// parseMinTimestamp accepts RFC3339(Nano) and the "2006-01-02 15:04:05"
// form the query AT clause uses.
func parseMinTimestamp(v string) (time.Time, error) {
	if ts, err := time.Parse(time.RFC3339Nano, v); err == nil {
		return ts, nil
	}
	return time.Parse("2006-01-02 15:04:05", v)
}

// waitFresh enforces a request's min_timestamp against the replication
// watermark: on a primary it is trivially satisfied; on a replica the
// request waits (bounded by MaxStalenessWait and the request deadline)
// and fails with the typed "replica_lagging" error when the replica
// cannot catch up in time. Returns false with the response written when
// the request must not proceed.
func (s *Server) waitFresh(ctx context.Context, w http.ResponseWriter, r *http.Request, minTS string) bool {
	if minTS == "" {
		return true
	}
	ts, err := parseMinTimestamp(minTS)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad_request",
			"min_timestamp must be RFC3339 or \"2006-01-02 15:04:05\": "+err.Error())
		return false
	}
	if s.cfg.Follower == nil {
		return true // the primary is always current
	}
	wctx, cancel := context.WithTimeout(ctx, s.maxStalenessWait())
	defer cancel()
	if err := s.cfg.Follower.WaitUntil(wctx, ts); err != nil {
		if errors.Is(err, repl.ErrLagging) || errors.Is(err, repl.ErrStopped) {
			// Retry-After steers clients to another replica (or the
			// primary) instead of hot-looping here.
			w.Header().Set("Retry-After", "1")
			writeErr(w, r, http.StatusServiceUnavailable, "replica_lagging", err.Error())
			return false
		}
		writeErr(w, r, http.StatusInternalServerError, "internal", err.Error())
		return false
	}
	return true
}

// stampStaleness adds the replica's applied-through watermark to a
// response: reads answered by this node reflect every mutation at or
// before it.
func (s *Server) stampStaleness(w http.ResponseWriter, resp *QueryResponse) {
	if s.cfg.Follower == nil {
		return
	}
	_, watermark := s.cfg.Follower.Applied()
	rendered := watermark.Format(repl.ClockFormat)
	w.Header().Set(repl.HeaderAppliedThrough, rendered)
	if resp != nil {
		resp.AppliedThrough = rendered
	}
}

// handleReady serves GET /readyz: 200 when this node can serve reads at
// its advertised staleness bound, 503 while it is syncing or lagging.
// Primaries (and promoted replicas) are always ready.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Follower == nil {
		writeJSON(w, http.StatusOK, ReadyResponse{Status: "ready", Role: "primary"})
		return
	}
	st := s.cfg.Follower.Status()
	resp := ReadyResponse{
		Role:         "replica",
		AppliedIndex: st.Applied,
		PrimaryNext:  st.PrimaryNext,
		LagRecords:   st.LagRecords,
		CaughtUp:     st.CaughtUp,
		Promoted:     st.Promoted,
		Reconnects:   st.Reconnects,
		Bootstraps:   st.Bootstraps,
		LastError:    st.LastError,
	}
	if !st.AppliedThrough.IsZero() {
		resp.AppliedThrough = st.AppliedThrough.Format(repl.ClockFormat)
	}
	maxLag := uint64(defaultReadyMaxLag)
	if s.cfg.ReadyMaxLag > 0 {
		maxLag = uint64(s.cfg.ReadyMaxLag)
	} else if s.cfg.ReadyMaxLag < 0 {
		maxLag = 0
	}
	switch {
	case st.Promoted:
		resp.Status, resp.Role = "ready", "primary"
	case st.LastContact.IsZero():
		resp.Status = "syncing"
	case !st.CaughtUp && st.LagRecords > maxLag:
		resp.Status = "lagging"
	default:
		resp.Status = "ready"
	}
	if resp.Status != "ready" {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePromote serves POST /v1/promote: stop replicating, checkpoint
// the replicated state into the local WAL (when present), and start
// acking writes. Idempotent.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Follower == nil {
		writeErr(w, r, http.StatusBadRequest, "bad_request", "this node is not a replica")
		return
	}
	pos, err := s.cfg.Follower.Promote()
	if err != nil {
		writeErr(w, r, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, PromoteResponse{Promoted: true, StreamPosition: pos})
}

// mountReplication wires the replication surface onto the mux: the WAL
// feed on any WAL-backed node, /readyz and /v1/promote everywhere.
func (s *Server) mountReplication() {
	if mgr := s.db.WAL(); mgr != nil {
		src := repl.NewSource(s.db.Store(), mgr)
		src.Instrument(s.reg)
		s.source = src
		s.mux.HandleFunc("GET /v1/wal", src.ServeWAL)
		s.mux.HandleFunc("GET /v1/wal/snapshot", src.ServeSnapshot)
	}
	if f := s.cfg.Follower; f != nil {
		f.Instrument(s.reg)
		s.reg.GaugeFunc("repl.follower.lag_seconds", func() float64 {
			st := f.Status()
			if st.AppliedThrough.IsZero() || st.Promoted {
				return 0
			}
			lag := s.db.Store().Now().Sub(st.AppliedThrough)
			// The replica's store clock trails the primary's; only a
			// positive gap is lag.
			return max(lag.Seconds(), 0)
		})
	}
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("POST /v1/promote", s.handlePromote)
}

// Close abruptly stops the server without draining — the kill-the-
// primary chaos path. In-flight requests are cut mid-connection and the
// DB is NOT closed cleanly; only WAL durability protects acked writes.
// Production shutdown is Shutdown.
func (s *Server) Close() error {
	return s.hs.Close()
}
