package server

// Replication serving: every WAL-backed server is a replication source
// (GET /v1/wal, GET /v1/wal/snapshot), and a server configured with a
// repl.Follower is a read replica — mutations are rejected with the
// typed "read_only" error, query responses carry the replica's
// applied-through watermark, reads demanding a min_timestamp wait
// (bounded) or fail typed "replica_lagging", /readyz reports lag, and
// POST /v1/promote turns the replica into a writable primary.
//
// Failover safety lives here too. Every node serves under a primary
// epoch; a promotion mints a strictly higher one. A primary that learns
// a higher epoch exists — from an old follower reconnecting with
// epoch= pinned to the new era, or from a client stamping X-Nepal-Epoch
// on a write — fences itself: reads keep flowing, mutations fail typed
// "stale_primary", and /readyz answers 503 "fenced" until an operator
// re-promotes it (which mints an epoch above the one that fenced it).
// POST /v1/demote is the operator-initiated form of the same fence.

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/repl"
)

// defaultMaxStalenessWait bounds how long a min_timestamp read blocks on
// a lagging replica before failing typed.
const defaultMaxStalenessWait = 2 * time.Second

// defaultReadyMaxLag is the record lag under which a replica still
// answers /readyz with 200.
const defaultReadyMaxLag = 1024

// replica reports whether this server is an unpromoted read replica.
func (s *Server) replica() bool {
	return s.cfg.Follower != nil && !s.cfg.Follower.Promoted()
}

// rejectReadOnly answers mutation attempts on a replica. Returns true
// when the request was rejected.
func (s *Server) rejectReadOnly(w http.ResponseWriter, r *http.Request) bool {
	if !s.replica() {
		return false
	}
	writeErr(w, r, http.StatusForbidden, "read_only",
		"this node is a read replica; send writes to the primary (or promote it via POST /v1/promote)")
	return true
}

// nodeEpoch returns the primary epoch this node serves under: the
// stream epoch a replica is pinned to, the WAL's durable epoch on a
// primary (including a promoted replica, whose Promote bumped it), or
// 0 for a node with no epoch at all (in-memory, never replicated).
func (s *Server) nodeEpoch() uint64 {
	if f := s.cfg.Follower; f != nil && !f.Promoted() {
		return f.Status().Epoch
	}
	if mgr := s.db.WAL(); mgr != nil {
		return mgr.Epoch()
	}
	if f := s.cfg.Follower; f != nil {
		return f.Status().Epoch
	}
	return 0
}

// fence marks this node a superseded primary. remoteEpoch is the epoch
// proving the supersession (CAS-max into fencedBy so re-promotion mints
// above the highest era seen); 0 fences without epoch evidence — the
// operator-demote case. Idempotent and monotonic: once fenced, only an
// explicit re-promotion unfences.
func (s *Server) fence(remoteEpoch uint64) {
	for {
		cur := s.fencedBy.Load()
		if remoteEpoch <= cur || s.fencedBy.CompareAndSwap(cur, remoteEpoch) {
			break
		}
	}
	s.fenced.Store(true)
}

// rejectStalePrimary answers mutation attempts on a fenced primary.
// Before deciding, it learns from the requester: a client that has
// watched a failover stamps the new primary's epoch on its writes, and
// a higher epoch than our own is proof this node was superseded — the
// write that would have split the brain is the very thing that fences
// it. Returns true when the request was rejected.
func (s *Server) rejectStalePrimary(w http.ResponseWriter, r *http.Request) bool {
	if v := r.Header.Get(HeaderEpoch); v != "" {
		if remote, err := strconv.ParseUint(v, 10, 64); err == nil {
			if own := s.nodeEpoch(); own > 0 && remote > own {
				s.fence(remote)
			}
		}
	}
	if !s.fenced.Load() {
		return false
	}
	msg := "this primary was demoted; re-promote it via POST /v1/promote or send writes to the current primary"
	if by := s.fencedBy.Load(); by > 0 {
		msg = "this primary (epoch " + strconv.FormatUint(s.nodeEpoch(), 10) +
			") was superseded by epoch " + strconv.FormatUint(by, 10) +
			"; send writes to the current primary"
	}
	writeErr(w, r, http.StatusForbidden, "stale_primary", msg)
	return true
}

// stampEpoch writes the node's primary epoch onto a response and
// returns it, so bodies can carry the same value. Epoch-less nodes
// stamp nothing.
func (s *Server) stampEpoch(w http.ResponseWriter) uint64 {
	epoch := s.nodeEpoch()
	if epoch > 0 {
		w.Header().Set(HeaderEpoch, strconv.FormatUint(epoch, 10))
	}
	return epoch
}

// maxStalenessWait is the cap on a min_timestamp read's wait.
func (s *Server) maxStalenessWait() time.Duration {
	if s.cfg.MaxStalenessWait > 0 {
		return s.cfg.MaxStalenessWait
	}
	return defaultMaxStalenessWait
}

// parseMinTimestamp accepts RFC3339(Nano) and the "2006-01-02 15:04:05"
// form the query AT clause uses.
func parseMinTimestamp(v string) (time.Time, error) {
	if ts, err := time.Parse(time.RFC3339Nano, v); err == nil {
		return ts, nil
	}
	return time.Parse("2006-01-02 15:04:05", v)
}

// waitFresh enforces a request's min_timestamp against the replication
// watermark: on a primary it is trivially satisfied; on a replica the
// request waits (bounded by MaxStalenessWait and the request deadline)
// and fails with the typed "replica_lagging" error when the replica
// cannot catch up in time. Returns false with the response written when
// the request must not proceed.
func (s *Server) waitFresh(ctx context.Context, w http.ResponseWriter, r *http.Request, minTS string) bool {
	if minTS == "" {
		return true
	}
	ts, err := parseMinTimestamp(minTS)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad_request",
			"min_timestamp must be RFC3339 or \"2006-01-02 15:04:05\": "+err.Error())
		return false
	}
	if s.cfg.Follower == nil {
		return true // the primary is always current
	}
	wctx, cancel := context.WithTimeout(ctx, s.maxStalenessWait())
	defer cancel()
	if err := s.cfg.Follower.WaitUntil(wctx, ts); err != nil {
		if errors.Is(err, repl.ErrLagging) || errors.Is(err, repl.ErrStopped) {
			// Retry-After steers clients to another replica (or the
			// primary) instead of hot-looping here.
			w.Header().Set("Retry-After", "1")
			writeErr(w, r, http.StatusServiceUnavailable, "replica_lagging", err.Error())
			return false
		}
		writeErr(w, r, http.StatusInternalServerError, "internal", err.Error())
		return false
	}
	return true
}

// stampStaleness adds read-provenance to a response: the node's primary
// epoch (all nodes), and — on replicas — the applied-through watermark,
// so reads answered by this node reflect every mutation at or before
// it. The epoch lets a failover-aware client reject answers from a node
// still serving a superseded era.
func (s *Server) stampStaleness(w http.ResponseWriter, resp *QueryResponse) {
	if epoch := s.stampEpoch(w); resp != nil {
		resp.Epoch = epoch
	}
	if s.cfg.Follower == nil {
		return
	}
	_, watermark := s.cfg.Follower.Applied()
	rendered := watermark.Format(repl.ClockFormat)
	w.Header().Set(repl.HeaderAppliedThrough, rendered)
	if resp != nil {
		resp.AppliedThrough = rendered
	}
}

// readyState computes this node's /readyz verdict: the response body
// and whether it answers 200. Shared by handleReady and the
// /debug/cluster self entry, so an operator sees the same verdict
// either way.
func (s *Server) readyState() (ReadyResponse, bool) {
	fenced := s.fenced.Load()
	if s.cfg.Follower == nil {
		resp := ReadyResponse{Status: "ready", Role: "primary", Epoch: s.nodeEpoch(), Fenced: fenced}
		if mgr := s.db.WAL(); mgr != nil {
			// A primary's applied index is its own stream end: every durably
			// logged record is applied. Lets /debug/cluster compute per-node
			// lag without a second endpoint.
			resp.AppliedIndex = mgr.NextIndex()
		}
		if fenced {
			// A fenced primary still serves reads, but it must not win a
			// readiness probe: traffic belongs on the new primary.
			resp.Status = "fenced"
			return resp, false
		}
		return resp, true
	}
	st := s.cfg.Follower.Status()
	resp := ReadyResponse{
		Role:         "replica",
		AppliedIndex: st.Applied,
		PrimaryNext:  st.PrimaryNext,
		LagRecords:   st.LagRecords,
		CaughtUp:     st.CaughtUp,
		Promoted:     st.Promoted,
		Reconnects:   st.Reconnects,
		Bootstraps:   st.Bootstraps,
		LastError:    st.LastError,
		Epoch:        s.nodeEpoch(),
		Fenced:       fenced && st.Promoted,
		Diverged:     st.Diverged,
	}
	if !st.AppliedThrough.IsZero() {
		resp.AppliedThrough = st.AppliedThrough.Format(repl.ClockFormat)
	}
	maxLag := uint64(defaultReadyMaxLag)
	if s.cfg.ReadyMaxLag > 0 {
		maxLag = uint64(s.cfg.ReadyMaxLag)
	} else if s.cfg.ReadyMaxLag < 0 {
		maxLag = 0
	}
	switch {
	case st.Promoted && fenced:
		resp.Status, resp.Role = "fenced", "primary"
	case st.Promoted:
		resp.Status, resp.Role = "ready", "primary"
	case st.Diverged:
		// The replica's history forked from its primary's log; it parked
		// rather than apply either side of the fork and must be rebuilt.
		resp.Status = "diverged"
	case st.LastContact.IsZero():
		resp.Status = "syncing"
	case !st.CaughtUp && st.LagRecords > maxLag:
		resp.Status = "lagging"
	default:
		resp.Status = "ready"
	}
	return resp, resp.Status == "ready"
}

// handleReady serves GET /readyz: 200 when this node can serve reads at
// its advertised staleness bound, 503 while it is syncing, lagging,
// fenced, or diverged. Primaries (and promoted replicas) are ready
// unless fenced.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	resp, ready := s.readyState()
	if !ready {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePromote serves POST /v1/promote: stop replicating, checkpoint
// the replicated state into the local WAL (when present), and start
// acking writes under a freshly minted epoch. Idempotent. On a fenced
// primary it is the re-promotion path: the epoch is bumped above every
// era known to have superseded this node, and the fence lifts.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Follower == nil {
		if !s.fenced.Load() {
			writeErr(w, r, http.StatusBadRequest, "bad_request", "this node is not a replica")
			return
		}
		mgr := s.db.WAL()
		if mgr == nil {
			writeErr(w, r, http.StatusBadRequest, "bad_request",
				"this fenced node has no WAL to mint a new epoch in; restart it instead")
			return
		}
		epoch := max(mgr.Epoch(), s.fencedBy.Load()) + 1
		if err := mgr.SetEpoch(epoch); err != nil {
			writeErr(w, r, http.StatusInternalServerError, "internal", err.Error())
			return
		}
		s.fenced.Store(false)
		writeJSON(w, http.StatusOK, PromoteResponse{Promoted: true, StreamPosition: mgr.NextIndex(), Epoch: epoch})
		return
	}
	pos, err := s.cfg.Follower.Promote()
	if err != nil {
		writeErr(w, r, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	epoch := s.nodeEpoch()
	if s.fenced.Load() {
		// A promoted-then-fenced replica re-promotes the same way a fenced
		// primary does: mint above the superseding era, then lift the fence.
		if mgr := s.db.WAL(); mgr != nil {
			epoch = max(epoch, s.fencedBy.Load()) + 1
			if err := mgr.SetEpoch(epoch); err != nil {
				writeErr(w, r, http.StatusInternalServerError, "internal", err.Error())
				return
			}
		}
		s.fenced.Store(false)
	}
	writeJSON(w, http.StatusOK, PromoteResponse{Promoted: true, StreamPosition: pos, Epoch: epoch})
}

// handleDemote serves POST /v1/demote: operator-initiated fencing of a
// primary — reads keep flowing, mutations fail typed "stale_primary",
// /readyz answers "fenced" — typically run on an old primary before
// bringing it back into a cluster that failed over while it was down.
// Idempotent; POST /v1/promote reverses it.
func (s *Server) handleDemote(w http.ResponseWriter, r *http.Request) {
	if s.replica() {
		writeErr(w, r, http.StatusBadRequest, "bad_request", "this node is already a read replica")
		return
	}
	s.fence(0)
	writeJSON(w, http.StatusOK, DemoteResponse{Demoted: true, Epoch: s.nodeEpoch()})
}

// mountReplication wires the replication surface onto the mux: the WAL
// feed on any WAL-backed node, /readyz, /v1/promote, and /v1/demote
// everywhere.
func (s *Server) mountReplication() {
	if mgr := s.db.WAL(); mgr != nil {
		src := repl.NewSource(s.db.Store(), mgr)
		src.Instrument(s.reg)
		// A feed request pinned to a higher epoch is proof of supersession:
		// one of this node's old followers now follows the new primary.
		// Fence immediately — before the next client write can be acked.
		src.OnStaleEpoch = s.fence
		s.source = src
		s.mux.HandleFunc("GET /v1/wal", src.ServeWAL)
		s.mux.HandleFunc("GET /v1/wal/snapshot", src.ServeSnapshot)
	}
	if f := s.cfg.Follower; f != nil {
		f.Instrument(s.reg)
		s.reg.GaugeFunc("repl.follower.lag_seconds", func() float64 {
			st := f.Status()
			if st.AppliedThrough.IsZero() || st.Promoted {
				return 0
			}
			lag := s.db.Store().Now().Sub(st.AppliedThrough)
			// The replica's store clock trails the primary's; only a
			// positive gap is lag.
			return max(lag.Seconds(), 0)
		})
	}
	s.reg.GaugeFunc("repl.epoch", func() float64 { return float64(s.nodeEpoch()) })
	s.reg.GaugeFunc("server.fenced", func() float64 {
		if s.fenced.Load() {
			return 1
		}
		return 0
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("POST /v1/promote", s.handlePromote)
	s.mux.HandleFunc("POST /v1/demote", s.handleDemote)
}

// Close abruptly stops the server without draining — the kill-the-
// primary chaos path. In-flight requests are cut mid-connection and the
// DB is NOT closed cleanly; only WAL durability protects acked writes.
// Production shutdown is Shutdown.
func (s *Server) Close() error {
	s.broadcastShutdown()
	return s.hs.Close()
}
