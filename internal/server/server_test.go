package server_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/server"
)

const (
	retrieveQ = "Retrieve P From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host()"
	selectQ   = "Select source(P).name From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id=1001)"
)

// newDemoDB opens a demo-loaded DB; extra core options apply first.
func newDemoDB(t testing.TB, opts ...core.Option) *core.DB {
	t.Helper()
	db, err := core.Open(netmodel.MustSchema(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := netmodel.BuildDemo(db.Store(), 1000); err != nil {
		t.Fatal(err)
	}
	return db
}

// newTestServer stands a server up behind httptest and returns the
// matching client.
func newTestServer(t testing.TB, db *core.DB, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	s := server.New(db, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, client.New(ts.URL)
}

func TestQueryRoundTrip(t *testing.T) {
	_, c := newTestServer(t, newDemoDB(t), server.Config{})
	ctx := context.Background()

	res, err := c.Query(ctx, retrieveQ, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("retrieve returned no rows")
	}
	p, ok := res.Rows[0].Values[0].(*client.Pathway)
	if !ok {
		t.Fatalf("value is %T, want *client.Pathway", res.Rows[0].Values[0])
	}
	if len(p.Elems) == 0 || len(p.Elems)%2 == 0 {
		t.Errorf("pathway has %d elements, want odd > 0", len(p.Elems))
	}
	if p.Rendered == "" {
		t.Error("pathway rendering missing")
	}
	if res.Metrics.EdgesScanned == 0 {
		t.Error("metrics did not cross the wire")
	}

	res, err = c.Query(ctx, selectQ, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("select returned no rows")
	}
	if _, ok := res.Rows[0].Values[0].(string); !ok {
		t.Errorf("scalar projection is %T, want string", res.Rows[0].Values[0])
	}
}

// TestQueryResultsMatchLocal pins wire fidelity: the same query answered
// locally and over the network binds the same pathways.
func TestQueryResultsMatchLocal(t *testing.T) {
	db := newDemoDB(t)
	_, c := newTestServer(t, db, server.Config{})

	local, err := db.Query(retrieveQ)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := c.Query(context.Background(), retrieveQ, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote.Rows) != len(local.Rows) {
		t.Fatalf("remote %d rows, local %d", len(remote.Rows), len(local.Rows))
	}
	localKeys := map[string]bool{}
	for _, row := range local.Rows {
		localKeys[row.Values[0].(plan.Pathway).Key()] = true
	}
	for _, row := range remote.Rows {
		key := row.Values[0].(*client.Pathway).Pathway.Key()
		if !localKeys[key] {
			t.Errorf("remote pathway %s not in local result", key)
		}
	}
}

func TestQueryAtAndConflict(t *testing.T) {
	_, c := newTestServer(t, newDemoDB(t), server.Config{})
	at := time.Now().UTC().Add(time.Minute).Format("2006-01-02 15:04:05")
	if _, err := c.Query(context.Background(), retrieveQ, &client.QueryOptions{At: at}); err != nil {
		t.Fatalf("at-query: %v", err)
	}
	_, err := c.Query(context.Background(), "AT '"+at+"' "+retrieveQ, &client.QueryOptions{At: at})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != 400 {
		t.Fatalf("double AT accepted: %v", err)
	}
}

func TestExplainModes(t *testing.T) {
	_, c := newTestServer(t, newDemoDB(t), server.Config{})
	ctx := context.Background()

	text, err := c.Explain(ctx, retrieveQ)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "Select:") || !strings.Contains(text, "RPE:") {
		t.Errorf("explain text missing plan shape:\n%s", text)
	}

	text, res, err := c.ExplainAnalyze(ctx, retrieveQ)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "time=") || !strings.Contains(text, "-- variable P") {
		t.Errorf("explain-analyze text missing annotations:\n%s", text)
	}
	if len(res.Rows) == 0 {
		t.Error("explain-analyze did not also return rows")
	}
}

func TestTypedErrors(t *testing.T) {
	_, c := newTestServer(t, newDemoDB(t), server.Config{})
	ctx := context.Background()

	_, err := c.Query(ctx, "Retrieve garbage", nil)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != 400 || ae.Code != "parse_error" {
		t.Errorf("parse error: got %v", err)
	}

	_, err = c.Query(ctx, retrieveQ, &client.QueryOptions{Limits: &server.Limits{MaxPaths: 1}})
	if !errors.Is(err, client.ErrLimit) {
		t.Errorf("limit error: got %v", err)
	}
}

func TestDeadlineOverAPI(t *testing.T) {
	db := newDemoDB(t, core.WithAccessorWrapper(func(a plan.Accessor) plan.Accessor {
		return chaos.Wrap(a, chaos.WithLatency(5*time.Millisecond))
	}))
	_, c := newTestServer(t, db, server.Config{})
	_, err := c.Query(context.Background(), retrieveQ, &client.QueryOptions{TimeoutMS: 20})
	if !errors.Is(err, client.ErrDeadline) {
		t.Fatalf("want deadline error, got %v", err)
	}
}

func TestPrepareExecuteAndCache(t *testing.T) {
	reg := obs.NewRegistry()
	s, c := newTestServer(t, newDemoDB(t), server.Config{Registry: reg})
	ctx := context.Background()

	stmt, err := c.Prepare(ctx, retrieveQ)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := stmt.Exec(ctx, nil)
		if err != nil {
			t.Fatalf("exec %d: %v", i, err)
		}
		if !res.Cached {
			t.Errorf("exec %d not served from plan cache", i)
		}
		if len(res.Rows) == 0 {
			t.Errorf("exec %d returned no rows", i)
		}
	}
	if hits := reg.Counter("server.plan_cache_hits").Value(); hits < 3 {
		t.Errorf("plan cache hits = %d, want >= 3", hits)
	}
	if s.Cache().Len() != 1 {
		t.Errorf("cache holds %d statements, want 1", s.Cache().Len())
	}

	// Ad-hoc /v1/query reuses the same cached plan.
	res, err := c.Query(ctx, retrieveQ, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Error("ad-hoc query missed the plan cache despite a prepared statement")
	}
}

func TestExecuteUnpreparedAndReprepare(t *testing.T) {
	_, c := newTestServer(t, newDemoDB(t), server.Config{PlanCacheSize: 1})
	ctx := context.Background()

	stmt, err := c.Prepare(ctx, retrieveQ)
	if err != nil {
		t.Fatal(err)
	}
	// Preparing a second statement evicts the first from the size-1 LRU.
	if _, err := c.Prepare(ctx, selectQ); err != nil {
		t.Fatal(err)
	}
	// The client transparently re-prepares and the exec succeeds.
	res, err := stmt.Exec(ctx, nil)
	if err != nil {
		t.Fatalf("exec after eviction: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Error("re-prepared exec returned no rows")
	}
}

func TestAdmissionControl(t *testing.T) {
	db := newDemoDB(t, core.WithAccessorWrapper(func(a plan.Accessor) plan.Accessor {
		return chaos.Wrap(a, chaos.WithLatency(3*time.Millisecond))
	}))
	_, c := newTestServer(t, db, server.Config{MaxInFlight: 1, MaxQueue: -1})
	ctx := context.Background()

	slow := make(chan error, 1)
	go func() {
		_, err := c.Query(ctx, retrieveQ, nil)
		slow <- err
	}()
	// Wait until the slow query holds the only slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		h, err := c.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h.InFlight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow query never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := c.Query(ctx, selectQ, nil)
	if !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("want ErrOverloaded while saturated, got %v", err)
	}
	// The in-flight query completes fine — rejection sheds, it never kills.
	if err := <-slow; err != nil {
		t.Fatalf("in-flight query failed under overload: %v", err)
	}
	// Capacity freed: the same query is admitted now.
	if _, err := c.Query(ctx, selectQ, nil); err != nil {
		t.Fatalf("query after drain: %v", err)
	}
}

func TestIngestHealthMetrics(t *testing.T) {
	_, c := newTestServer(t, newDemoDB(t), server.Config{})
	ctx := context.Background()

	resp, err := c.Ingest(ctx, []server.IngestOp{
		{Op: "insert-node", Class: "ComputeHost",
			Fields: map[string]any{"id": 9001, "name": "ing-1", "rack": "r9", "status": "Active"}},
		{Op: "insert-node", Class: "ComputeHost",
			Fields: map[string]any{"id": 9002, "name": "ing-2", "rack": "r9", "status": "Active"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Applied != 2 || len(resp.UIDs) != 2 {
		t.Fatalf("applied %d ops, uids %v", resp.Applied, resp.UIDs)
	}
	if _, err := c.Ingest(ctx, []server.IngestOp{{Op: "warp", Class: "X"}}); err == nil {
		t.Error("unknown ingest op accepted")
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Backend != core.BackendGremlin {
		t.Errorf("health = %+v", h)
	}

	if _, err := c.Query(ctx, selectQ, nil); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"server.requests", "server.plan_cache_misses", "db.queries"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics dump missing %s", want)
		}
	}
}

func TestCheckpointRequiresWAL(t *testing.T) {
	_, c := newTestServer(t, newDemoDB(t), server.Config{})
	err := c.Checkpoint(context.Background())
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != 400 {
		t.Fatalf("checkpoint without WAL: got %v", err)
	}
}
