package server

// Workload introspection serving: the per-statement statistics table
// (GET /v1/stats/statements, POST /v1/stats/reset) and the cluster-wide
// health map (GET /debug/cluster). The statistics themselves accumulate
// in internal/stats — the core observes every execution into the store
// this server wires in New — so these handlers only snapshot and
// render. The cluster view fans out to the peer URLs in Config.Peers,
// probing each node's /readyz, and folds in this node's own verdict, so
// one request against any node answers "who is primary, at what epoch,
// and how far behind is everyone else".

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/stats"
)

// defaultPeerProbeTimeout bounds each /debug/cluster peer probe when
// the config does not.
const defaultPeerProbeTimeout = 2 * time.Second

// handleStatements serves GET /v1/stats/statements: the per-digest
// workload table. Query parameters: sort=total_time|calls|mean_time
// (default total_time) and limit=N (default all tracked digests).
func (s *Server) handleStatements(w http.ResponseWriter, r *http.Request) {
	if s.stats == nil {
		writeErr(w, r, http.StatusNotFound, "not_found",
			"per-statement statistics are disabled on this server")
		return
	}
	sortBy := r.URL.Query().Get("sort")
	switch sortBy {
	case "", stats.SortTotalTime, stats.SortCalls, stats.SortMeanTime:
	default:
		writeErr(w, r, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("unknown sort %q (use %s, %s, or %s)",
				sortBy, stats.SortTotalTime, stats.SortCalls, stats.SortMeanTime))
		return
	}
	if sortBy == "" {
		sortBy = stats.SortTotalTime
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, r, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("limit must be a non-negative integer, got %q", v))
			return
		}
		limit = n
	}
	snap := s.stats.Snapshot(sortBy, limit)
	writeJSON(w, http.StatusOK, StatementStatsResponse{
		Sort:       sortBy,
		Statements: snap.Statements,
		Other:      snap.Other,
		Tracked:    snap.Tracked,
		Evicted:    snap.Evicted,
	})
}

// handleStatsReset serves POST /v1/stats/reset: discard every
// per-statement aggregate, including the "other" bucket. The registry's
// cumulative counters are untouched — reset is for bracketing an
// experiment, not for rewriting scrape history.
func (s *Server) handleStatsReset(w http.ResponseWriter, r *http.Request) {
	if s.stats == nil {
		writeErr(w, r, http.StatusNotFound, "not_found",
			"per-statement statistics are disabled on this server")
		return
	}
	s.stats.Reset()
	writeJSON(w, http.StatusOK, StatsResetResponse{OK: true})
}

// peerProbeTimeout is the cap on one /debug/cluster peer probe.
func (s *Server) peerProbeTimeout() time.Duration {
	if s.cfg.PeerProbeTimeout > 0 {
		return s.cfg.PeerProbeTimeout
	}
	return defaultPeerProbeTimeout
}

// handleCluster serves GET /debug/cluster: this node's readiness plus
// every configured peer's, probed concurrently over /readyz. A peer
// answering 503 is still "reachable" — its body says whether it is
// syncing, lagging, fenced, or diverged; only a transport failure marks
// it unreachable.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	resp := ClusterResponse{Nodes: make(map[string]ClusterNode, len(s.cfg.Peers)+1)}
	self, _ := s.readyState()
	resp.Nodes["self"] = ClusterNode{URL: "self", Self: true, Reachable: true, Ready: &self}

	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, peer := range s.cfg.Peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			node := s.probePeer(r.Context(), peer)
			mu.Lock()
			resp.Nodes[peer] = node
			mu.Unlock()
		}(peer)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, resp)
}

// probePeer fetches one peer's /readyz under the probe timeout. The
// readiness body is decoded regardless of status code: a 503 carries
// the same ReadyResponse, just with a non-"ready" verdict.
func (s *Server) probePeer(ctx context.Context, peer string) ClusterNode {
	node := ClusterNode{URL: peer}
	ctx, cancel := context.WithTimeout(ctx, s.peerProbeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/readyz", nil)
	if err != nil {
		node.Error = err.Error()
		return node
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		node.Error = err.Error()
		return node
	}
	defer res.Body.Close()
	var ready ReadyResponse
	if err := json.NewDecoder(res.Body).Decode(&ready); err != nil {
		node.Error = fmt.Sprintf("decoding /readyz body (status %d): %v", res.StatusCode, err)
		return node
	}
	node.Reachable = true
	node.Ready = &ready
	return node
}
