package server_test

import (
	"context"
	"errors"
	"net"
	"testing"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/exec"
	"repro/internal/server"
)

// TestClientSurfacesDroppedConnection serves through a chaos.FlakyListener
// that severs every connection after a handful of response bytes — the
// shape of a server dying mid-response — and asserts the client surfaces
// a typed, transient *client.TransportError, never a truncated success.
func TestClientSurfacesDroppedConnection(t *testing.T) {
	s := server.New(newDemoDB(t), server.Config{})
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Budget of 64 bytes: enough for the status line to start flowing,
	// never enough for a full query response body.
	flaky := chaos.NewFlakyListener(inner, 64, 0)
	go s.Serve(flaky)
	defer s.Shutdown(context.Background())

	c := client.New("http://" + inner.Addr().String())
	_, err = c.Query(context.Background(), retrieveQ, nil)
	if err == nil {
		t.Fatal("query over severed connection returned success")
	}
	var te *client.TransportError
	if !errors.As(err, &te) {
		t.Fatalf("want *client.TransportError, got %T: %v", err, err)
	}
	if !exec.Transient(err) {
		t.Error("transport error does not classify as transient")
	}
	if flaky.Severed() == 0 {
		t.Error("flaky listener reports no severed connections")
	}
}

// TestClientHealsAfterFlakyWindow lets the first connections through a
// fault window die, then heals the listener path by skipping injection —
// the retry pattern callers build on the Transient classification.
func TestClientHealsAfterFlakyWindow(t *testing.T) {
	s := server.New(newDemoDB(t), server.Config{})
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	flaky := chaos.NewFlakyListener(inner, 64, 0)
	go s.Serve(flaky)
	defer s.Shutdown(context.Background())

	c := client.New("http://" + inner.Addr().String())
	ctx := context.Background()

	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		if attempt == 2 {
			flaky.Heal() // outage ends
		}
		_, lastErr = c.Query(ctx, selectQ, nil)
		if lastErr == nil {
			if attempt < 2 {
				t.Fatalf("query succeeded during the outage (attempt %d)", attempt)
			}
			return
		}
		if !exec.Transient(lastErr) {
			t.Fatalf("attempt %d: non-transient error %v", attempt, lastErr)
		}
	}
	t.Fatalf("client never recovered after outage: %v", lastErr)
}

// TestConnectionRefusedIsTransport pins the other transport failure
// class: nothing listening at all.
func TestConnectionRefusedIsTransport(t *testing.T) {
	// Grab a port and release it so nothing serves there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := client.New("http://" + addr)
	_, err = c.Query(context.Background(), selectQ, nil)
	var te *client.TransportError
	if !errors.As(err, &te) {
		t.Fatalf("want *client.TransportError, got %T: %v", err, err)
	}
}
