package server_test

// Fencing tests: the server-side half of split-brain prevention. A
// primary that learns a higher epoch exists — from an operator demote,
// an epoch-carrying client, or a follower pinned to a newer era — must
// stop acking writes (typed stale_primary) while still serving reads,
// and a re-promotion must mint a strictly higher epoch to lift the
// fence.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wal"
)

func demoOp(id int64) server.IngestOp {
	return server.IngestOp{Op: "insert-node", Class: "ComputeHost",
		Fields: map[string]any{"id": id, "name": "fencing", "rack": "rz", "status": "Active"}}
}

// TestDemoteFencesPrimary: POST /v1/demote is the operator's fence —
// writes are refused as stale_primary, reads keep flowing, /readyz and
// /healthz say so, and demoting a replica is a 400.
func TestDemoteFencesPrimary(t *testing.T) {
	db := newDemoDB(t, core.WithWALOptions(t.TempDir(), wal.Options{NoSync: true}))
	t.Cleanup(func() { db.Close() })
	_, pc := newTestServer(t, db, server.Config{})
	ctx := context.Background()

	resp, err := pc.Demote(ctx)
	if err != nil {
		t.Fatalf("demote: %v", err)
	}
	if !resp.Demoted || resp.Epoch != 1 {
		t.Fatalf("demote response: %+v, want demoted at epoch 1", resp)
	}

	if _, err := pc.Ingest(ctx, []server.IngestOp{demoOp(910001)}); !errors.Is(err, client.ErrStalePrimary) {
		t.Fatalf("ingest on demoted primary: %v; want ErrStalePrimary", err)
	}
	var ae *client.APIError
	err = pc.Checkpoint(ctx)
	if !errors.Is(err, client.ErrStalePrimary) || !errors.As(err, &ae) || ae.Status != 403 {
		t.Fatalf("checkpoint on demoted primary: %v; want stale_primary 403", err)
	}

	// Reads keep serving: a fenced node is degraded, not dead.
	if res, qerr := pc.Query(ctx, selectQ, nil); qerr != nil || len(res.Rows) == 0 {
		t.Fatalf("read on fenced primary: rows=%v err=%v", res, qerr)
	}

	ready, st, err := pc.Ready(ctx)
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	if ready || st.Status != "fenced" || !st.Fenced || st.Role != "primary" {
		t.Fatalf("fenced /readyz = ready=%v %+v, want status=fenced role=primary", ready, st)
	}
	h, err := pc.Health(ctx)
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if !h.Fenced || h.Epoch != 1 {
		t.Fatalf("fenced /healthz = %+v, want fenced at epoch 1", h)
	}

	// Demote is for primaries; a replica is already read-only.
	_, rc, _ := newReplicaPair(t)
	if _, err := rc.Demote(ctx); err == nil {
		t.Fatal("demote on a replica succeeded")
	}
}

// TestClientEpochHeaderFencesStalePrimary: a mutation carrying a higher
// X-Nepal-Epoch — what an epoch-tracking client sends after observing a
// newer primary — teaches the node it was superseded. The very write
// that carries the proof is refused, and the fence latches for plain
// clients too.
func TestClientEpochHeaderFencesStalePrimary(t *testing.T) {
	db := newDemoDB(t, core.WithWALOptions(t.TempDir(), wal.Options{NoSync: true}))
	t.Cleanup(func() { db.Close() })
	_, pc := newTestServer(t, db, server.Config{})
	ctx := context.Background()

	future := client.New(pc.Base(), client.WithEpochExchange(func() uint64 { return 5 }, nil))
	if _, err := future.Ingest(ctx, []server.IngestOp{demoOp(910002)}); !errors.Is(err, client.ErrStalePrimary) {
		t.Fatalf("epoch-5 ingest against epoch-1 primary: %v; want ErrStalePrimary", err)
	}
	// The fence latched: an epoch-blind client is refused as well.
	if _, err := pc.Ingest(ctx, []server.IngestOp{demoOp(910003)}); !errors.Is(err, client.ErrStalePrimary) {
		t.Fatalf("plain ingest after fence: %v; want ErrStalePrimary", err)
	}
}

// TestRepromoteLiftsFence: promoting a fenced primary mints an epoch
// strictly above everything it has seen — its own era and the one that
// fenced it — and the node acks writes again, stamping the new epoch.
func TestRepromoteLiftsFence(t *testing.T) {
	db := newDemoDB(t, core.WithWALOptions(t.TempDir(), wal.Options{NoSync: true}))
	t.Cleanup(func() { db.Close() })
	_, pc := newTestServer(t, db, server.Config{})
	ctx := context.Background()

	// Fence via a client that has seen epoch 7.
	future := client.New(pc.Base(), client.WithEpochExchange(func() uint64 { return 7 }, nil))
	if _, err := future.Ingest(ctx, []server.IngestOp{demoOp(910004)}); !errors.Is(err, client.ErrStalePrimary) {
		t.Fatalf("fencing write: %v; want ErrStalePrimary", err)
	}

	resp, err := pc.Promote(ctx)
	if err != nil {
		t.Fatalf("re-promote of fenced primary: %v", err)
	}
	if resp.Epoch != 8 {
		t.Fatalf("re-promoted epoch = %d, want 8 (above the fencing era 7)", resp.Epoch)
	}
	ing, err := pc.Ingest(ctx, []server.IngestOp{demoOp(910005)})
	if err != nil {
		t.Fatalf("ingest after re-promote: %v", err)
	}
	if ing.Epoch != 8 {
		t.Fatalf("post-re-promote ack stamped epoch %d, want 8", ing.Epoch)
	}
	ready, st, err := pc.Ready(ctx)
	if err != nil || !ready {
		t.Fatalf("re-promoted /readyz: ready=%v err=%v", ready, err)
	}
	if st.Fenced || st.Epoch != 8 {
		t.Fatalf("re-promoted /readyz = %+v, want unfenced at epoch 8", st)
	}
}

// TestReadyzReportsDiverged: a replica parked on a forked stream must
// say so in /readyz — "diverged" is an operator-action state (rebuild
// the replica), not a transient lag.
func TestReadyzReportsDiverged(t *testing.T) {
	pdb := newDemoDB(t, core.WithWALOptions(t.TempDir(), wal.Options{NoSync: true}))
	t.Cleanup(func() { pdb.Close() })
	_, pc := newTestServer(t, pdb, server.Config{})

	cfg := repl.FollowerConfig{
		Primary:      pc.Base(),
		PollWait:     200 * time.Millisecond,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
	}
	fdb, err := core.Open(netmodel.MustSchema())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fdb.Close() })
	f := repl.NewFollower(fdb.Store(), nil, cfg)
	f.Start()
	waitCaughtUp(t, f)
	f.Stop()

	// Resume the link with a forged prefix hash: the on-disk shape of a
	// replica that applied a forked history.
	resume := f.StreamState()
	resume.Hash ^= 0xbeef
	cfg.Resume = &resume
	forked := repl.NewFollower(fdb.Store(), nil, cfg)
	forked.Start()
	t.Cleanup(forked.Stop)
	_, rc := newTestServer(t, fdb, server.Config{Follower: forked})

	deadline := time.Now().Add(10 * time.Second)
	for {
		ready, st, err := rc.Ready(context.Background())
		if err != nil {
			t.Fatalf("readyz: %v", err)
		}
		if st.Diverged {
			if ready || st.Status != "diverged" {
				t.Fatalf("diverged /readyz = ready=%v %+v, want status=diverged", ready, st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never reported diverged: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
