package server_test

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/schema"
	"repro/internal/server"
)

// ingestHost acks one insert-node over the wire and returns its id field.
func ingestHost(ctx context.Context, c *client.Client, id int) error {
	_, err := c.Ingest(ctx, []server.IngestOp{{
		Op: "insert-node", Class: "ComputeHost",
		Fields: map[string]any{
			"id": id, "name": fmt.Sprintf("host-%d", id), "rack": "r1", "status": "Active",
		},
	}})
	return err
}

// countRecoveredHosts reopens the WAL directory and counts which acked
// ids survived.
func countRecoveredHosts(t *testing.T, dir string, acked []int) (present, missing int) {
	t.Helper()
	db, err := core.Open(netmodel.MustSchema(), core.WithWAL(dir))
	if err != nil {
		t.Fatalf("recovering WAL: %v", err)
	}
	defer db.Close()
	for _, id := range acked {
		if _, ok := db.Store().LookupUnique(schema.NodeRoot, "id", int64(id)); ok {
			present++
		} else {
			missing++
		}
	}
	return present, missing
}

// TestServerKilledMidWorkloadLosesNoAckedMutation is the durability
// acceptance test: concurrent clients stream acked inserts at a
// WAL-backed server, the server is killed abruptly mid-workload (the
// listener is torn down and the DB abandoned without Close — the
// in-process analogue of SIGKILL), and recovery from the WAL directory
// must surface every mutation a client saw acknowledged.
func TestServerKilledMidWorkloadLosesNoAckedMutation(t *testing.T) {
	dir := t.TempDir()
	db, err := core.Open(netmodel.MustSchema(), core.WithWAL(dir))
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(db, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)

	c := client.New("http://" + ln.Addr().String())
	ctx := context.Background()

	const clients = 4
	const perClient = 25
	var mu sync.Mutex
	var acked []int
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				id := 10_000 + i*1_000 + j
				if err := ingestHost(ctx, c, id); err != nil {
					return // kill already landed; unacked writes may be lost
				}
				mu.Lock()
				acked = append(acked, id)
				mu.Unlock()
			}
		}(i)
	}

	// Kill mid-workload: wait until some inserts are acked, then tear the
	// listener down without draining or closing the DB.
	for {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= clients*perClient/4 {
			break
		}
		runtime.Gosched()
	}
	ln.Close()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(acked) == 0 {
		t.Fatal("no insert was acked before the kill")
	}
	present, missing := countRecoveredHosts(t, dir, acked)
	if missing > 0 {
		t.Fatalf("recovery lost %d of %d acked mutations", missing, len(acked))
	}
	t.Logf("killed mid-workload after %d acks; recovery restored all %d", len(acked), present)
}

// TestGracefulShutdownSyncsWAL exercises the clean path: Shutdown drains
// in-flight requests and closes the DB, and a reopened store holds every
// acked mutation — including ones racing the shutdown.
func TestGracefulShutdownSyncsWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := core.Open(netmodel.MustSchema(), core.WithWAL(dir))
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(db, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)

	c := client.New("http://" + ln.Addr().String())
	ctx := context.Background()

	var acked []int
	for id := 20_000; id < 20_040; id++ {
		if err := ingestHost(ctx, c, id); err != nil {
			t.Fatalf("ingest %d: %v", id, err)
		}
		acked = append(acked, id)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// Shutdown closed the DB; Close again must stay nil (idempotence).
	if err := db.Close(); err != nil {
		t.Fatalf("close after shutdown: %v", err)
	}
	present, missing := countRecoveredHosts(t, dir, acked)
	if missing > 0 {
		t.Fatalf("graceful shutdown lost %d of %d acked mutations", missing, len(acked))
	}
	if present != len(acked) {
		t.Fatalf("recovered %d, want %d", present, len(acked))
	}
}
