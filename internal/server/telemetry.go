package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
)

// Request telemetry: the middleware around the mux that gives every
// request — successful, rejected at admission, or malformed — a trace
// ID, a root span with per-phase children, exactly one access-log line,
// and (tail-sampled) a slot in the in-memory trace store. Handlers reach
// their request's record through rtFrom(ctx) to attach phase spans and
// annotate the statement and result.

// requestTelemetry is one request's mutable telemetry record. It lives
// on the request context; the middleware creates and finalizes it,
// handlers fill it in. All methods are nil-receiver safe so handlers
// never branch on whether telemetry is wired.
type requestTelemetry struct {
	traceID       string
	root          *obs.Span // nil when tracing is disabled
	admissionWait time.Duration
	statement     string
	stmtHash      string
	digest        string
	outcome       string // set by writeErr; empty means derive from status
	edges         int
	degraded      bool
	errMsg        string
}

type telemetryKey struct{}

// rtFrom returns the request's telemetry record, or nil when the
// request did not pass through the telemetry middleware.
func rtFrom(ctx context.Context) *requestTelemetry {
	rt, _ := ctx.Value(telemetryKey{}).(*requestTelemetry)
	return rt
}

// child starts a phase span under the request's root span; it returns
// nil (a valid no-op span) when tracing is disabled.
func (rt *requestTelemetry) child(name, detail string) *obs.Span {
	if rt == nil {
		return nil
	}
	return rt.root.StartChild(name, detail)
}

// id returns the request's trace ID ("" without middleware).
func (rt *requestTelemetry) id() string {
	if rt == nil {
		return ""
	}
	return rt.traceID
}

// setStatement records the statement a request executes, with its
// stable hash (the same handle /v1/prepare returns).
func (rt *requestTelemetry) setStatement(src string) {
	if rt == nil {
		return
	}
	rt.statement = src
	rt.stmtHash = Handle(src)
}

// setDigest records the statement's literal-masked fingerprint so the
// access log, trace store, and trace summaries all carry the key into
// the per-digest statistics surfaces.
func (rt *requestTelemetry) setDigest(digest string) {
	if rt == nil || digest == "" {
		return
	}
	rt.digest = digest
}

// recordResult captures result-derived telemetry: engine scan volume,
// degraded-path service, and the statement digest the engine stamped.
func (rt *requestTelemetry) recordResult(res *exec.Result) {
	if rt == nil || res == nil {
		return
	}
	rt.edges = res.Metrics.EdgesScanned
	rt.degraded = res.Degraded
	if res.Digest != "" {
		rt.digest = res.Digest
	}
}

// statusWriter captures the response status and body size for the
// access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming handlers (the
// /v1/watch SSE modes) can push events through the telemetry wrapper.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// telemetry wraps the mux with the request telemetry layer: trace-ID
// extraction/generation (X-Nepal-Trace, bare or traceparent form), the
// "Request" root span, request counting and latency, one access-log
// line per request, and trace-store capture for /v1 requests.
func (s *Server) telemetry() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.mRequests.Add(1)

		rt := &requestTelemetry{}
		rt.traceID = obs.ParseTraceID(r.Header.Get(obs.TraceHeader))
		if rt.traceID == "" {
			rt.traceID = obs.NewTraceID()
		}
		ctx := obs.WithTraceID(r.Context(), rt.traceID)
		if !s.cfg.DisableTelemetry {
			rt.root = obs.NewSpan("Request", r.Method+" "+r.URL.Path)
			ctx = obs.ContextWithSpan(ctx, rt.root)
		}
		ctx = context.WithValue(ctx, telemetryKey{}, rt)
		// Echo the trace ID before the handler writes anything, so even
		// responses that fail mid-body carry it.
		w.Header().Set(obs.TraceHeader, rt.traceID)

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		s.mux.ServeHTTP(sw, r.WithContext(ctx))

		dur := time.Since(start)
		rt.root.Finish()
		s.mLatency.Observe(float64(dur) / 1e6)

		outcome := rt.outcome
		if outcome == "" {
			if sw.status < 400 {
				outcome = "ok"
			} else {
				outcome = fmt.Sprintf("http_%d", sw.status)
			}
		}

		// The handler stamped the node's primary epoch on the response (when
		// it has one); lifting it off the header here gives every access-log
		// line its era without threading epoch through each handler.
		epoch, _ := strconv.ParseUint(sw.Header().Get(HeaderEpoch), 10, 64)

		s.accessLog.Log(obs.AccessEntry{
			Time:            start,
			TraceID:         rt.traceID,
			Method:          r.Method,
			Path:            r.URL.Path,
			Status:          sw.status,
			Outcome:         outcome,
			DurationMS:      float64(dur) / 1e6,
			AdmissionWaitMS: float64(rt.admissionWait) / 1e6,
			StatementHash:   rt.stmtHash,
			Statement:       rt.statement,
			Digest:          rt.digest,
			EdgesScanned:    rt.edges,
			Degraded:        rt.degraded,
			BytesOut:        sw.bytes,
			Epoch:           epoch,
			Error:           rt.errMsg,
		})

		// The trace store holds API requests only: scrapes of /metrics,
		// /healthz, and the trace endpoints themselves would drown the
		// traffic an operator is diagnosing.
		if !s.cfg.DisableTelemetry && strings.HasPrefix(r.URL.Path, "/v1/") {
			s.traces.Observe(&obs.RequestTrace{
				ID:            rt.traceID,
				Start:         start,
				Method:        r.Method,
				Path:          r.URL.Path,
				Statement:     rt.statement,
				StatementHash: rt.stmtHash,
				Digest:        rt.digest,
				Status:        sw.status,
				Outcome:       outcome,
				Duration:      dur,
				EdgesScanned:  rt.edges,
				Degraded:      rt.degraded,
				Error:         rt.errMsg,
				Root:          rt.root,
			})
		}
	})
}

// handleTraces serves GET /debug/traces: every retained trace, newest
// first, as summaries.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	list := s.traces.List()
	out := TraceListResponse{Traces: make([]TraceSummary, 0, len(list))}
	for _, t := range list {
		out.Traces = append(out.Traces, traceSummaryOut(t))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTraceByID serves GET /debug/traces/{id}: the full span tree of
// one retained trace, structured and rendered.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t := s.traces.Get(id)
	if t == nil {
		writeErr(w, r, http.StatusNotFound, "not_found",
			fmt.Sprintf("trace %q not retained (expired from the trace store or never sampled)", id))
		return
	}
	writeJSON(w, http.StatusOK, traceDetailOut(t))
}

func traceSummaryOut(t *obs.RequestTrace) TraceSummary {
	return TraceSummary{
		TraceID:       t.ID,
		Start:         t.Start,
		Method:        t.Method,
		Path:          t.Path,
		Statement:     t.Statement,
		StatementHash: t.StatementHash,
		Digest:        t.Digest,
		Status:        t.Status,
		Outcome:       t.Outcome,
		DurationMS:    float64(t.Duration) / 1e6,
		EdgesScanned:  t.EdgesScanned,
		Degraded:      t.Degraded,
		Error:         t.Error,
	}
}

func traceDetailOut(t *obs.RequestTrace) TraceDetail {
	return TraceDetail{
		TraceSummary: traceSummaryOut(t),
		Spans:        spanOut(t.Root),
		Rendered:     obs.RenderTree(t.Root),
	}
}

func spanOut(sp *obs.Span) *SpanNode {
	if sp == nil {
		return nil
	}
	in, out := sp.Rows()
	n := &SpanNode{
		Name:       sp.Name(),
		Detail:     sp.Detail(),
		DurationMS: float64(sp.Duration()) / 1e6,
		RowsIn:     in,
		RowsOut:    out,
		Counters:   sp.Counters(),
	}
	for _, c := range sp.Children() {
		n.Children = append(n.Children, spanOut(c))
	}
	return n
}
