package server_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/server"
)

// TestConcurrentServing drives the server the way production traffic
// does — N goroutine clients issuing a mix of ad-hoc and prepared
// queries over shared connections — while one goroutine checkpoints the
// WAL repeatedly and another cancels its queries mid-flight. Run under
// -race (the Makefile's test-race covers this package), it pins that the
// request path, plan cache, admission governor, and checkpoint rotation
// are mutually safe.
func TestConcurrentServing(t *testing.T) {
	db := newDemoDB(t, core.WithWAL(t.TempDir()))
	_, c := newTestServer(t, db, server.Config{MaxInFlight: 4, MaxQueue: 64})
	ctx := context.Background()

	const clients = 8
	const perClient = 10

	stmt, err := c.Prepare(ctx, retrieveQ)
	if err != nil {
		t.Fatal(err)
	}

	var queriers sync.WaitGroup
	for i := 0; i < clients; i++ {
		queriers.Add(1)
		go func(i int) {
			defer queriers.Done()
			for j := 0; j < perClient; j++ {
				var err error
				if (i+j)%2 == 0 {
					_, err = stmt.Exec(ctx, nil)
				} else {
					_, err = c.Query(ctx, selectQ, nil)
				}
				if err != nil {
					t.Errorf("client %d query %d: %v", i, j, err)
				}
			}
		}(i)
	}

	// Canceler: fires queries it abandons almost immediately; the only
	// acceptable outcomes are success, a deadline/cancel error, or a
	// connection torn down by the abandoned request — never a hang.
	queriers.Add(1)
	go func() {
		defer queriers.Done()
		for j := 0; j < perClient; j++ {
			cctx, cancel := context.WithTimeout(ctx, 500*time.Microsecond)
			_, err := c.Query(cctx, retrieveQ, nil)
			cancel()
			var te *client.TransportError
			var ae *client.APIError
			switch {
			case err == nil: // finished under the wire
			case errors.Is(err, context.DeadlineExceeded):
			case errors.Is(err, client.ErrDeadline):
			case errors.As(err, &te):
			case errors.As(err, &ae) && ae.Code == "canceled":
			default:
				t.Errorf("canceled query surfaced %v", err)
			}
		}
	}()

	// Checkpointer: contracts the WAL while queries fly, until the query
	// clients drain.
	stopCP := make(chan struct{})
	var cp sync.WaitGroup
	cp.Add(1)
	go func() {
		defer cp.Done()
		for {
			select {
			case <-stopCP:
				return
			default:
			}
			if err := c.Checkpoint(ctx); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	done := make(chan struct{})
	go func() { queriers.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("concurrent serving deadlocked")
	}
	close(stopCP)
	cp.Wait()
}

// TestConcurrentPrepareSameStatement hammers the plan cache's
// concurrent-miss path: many goroutines prepare the same statement at
// once; all must succeed and the cache must converge to one entry.
func TestConcurrentPrepareSameStatement(t *testing.T) {
	s, c := newTestServer(t, newDemoDB(t), server.Config{})
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stmt, err := c.Prepare(ctx, retrieveQ)
			if err != nil {
				t.Errorf("prepare: %v", err)
				return
			}
			if _, err := stmt.Exec(ctx, nil); err != nil {
				t.Errorf("exec: %v", err)
			}
		}()
	}
	wg.Wait()
	if n := s.Cache().Len(); n != 1 {
		t.Errorf("cache holds %d entries for one statement", n)
	}
}

// TestQueueBoundedUnderBurst asserts the wait queue admits up to its
// bound and rejects the rest, and that every admitted request completes.
func TestQueueBoundedUnderBurst(t *testing.T) {
	db := newDemoDB(t)
	_, c := newTestServer(t, db, server.Config{MaxInFlight: 1, MaxQueue: 2})
	ctx := context.Background()

	const burst = 24
	var rejected, completed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Query(ctx, retrieveQ, nil)
			switch {
			case err == nil:
				completed.Add(1)
			case errors.Is(err, client.ErrOverloaded):
				rejected.Add(1)
			default:
				t.Errorf("unexpected error under burst: %v", err)
			}
		}()
	}
	wg.Wait()
	if completed.Load() == 0 {
		t.Error("no request completed under burst")
	}
	t.Logf("burst of %d: %d completed, %d rejected (429)", burst, completed.Load(), rejected.Load())
	if completed.Load()+rejected.Load() != burst {
		t.Errorf("requests unaccounted for: %d + %d != %d",
			completed.Load(), rejected.Load(), burst)
	}
}
