package server_test

// Workload-introspection tests over the full stack: a concurrent mixed
// workload through real HTTP must aggregate under stable literal-masked
// digests with correct counts and percentiles, the per-digest series
// must ride /metrics, reset must clear the table, and /debug/cluster
// must map a primary/replica pair.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/wal"
)

func TestStatementStatsConcurrentWorkload(t *testing.T) {
	_, c := newTestServer(t, newDemoDB(t), server.Config{})
	ctx := context.Background()

	// Two statement shapes: literal variants of selectQ must collapse to
	// one digest; retrieveQ is a second digest.
	selectVariant := func(id int) string {
		return fmt.Sprintf("Select source(P).name From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id=%d)", id)
	}

	const workers = 8
	const perWorker = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var err error
				if i%2 == 0 {
					_, err = c.Query(ctx, selectVariant(1001+(w+i)%4), nil)
				} else {
					_, err = c.Query(ctx, retrieveQ, nil)
				}
				if err != nil {
					t.Errorf("worker %d query %d: %v", w, i, err)
				}
			}
		}(w)
	}
	wg.Wait()

	// One limit-tripped execution: the outcome must land in the digest's
	// limit bucket, not the ok count.
	_, err := c.Query(ctx, retrieveQ, &client.QueryOptions{Limits: &server.Limits{MaxEdgesScanned: 1}})
	if !errors.Is(err, client.ErrLimit) {
		t.Fatalf("expected limit error, got %v", err)
	}

	resp, err := c.StatementStats(ctx, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Sort != stats.SortTotalTime {
		t.Errorf("default sort = %q, want %q", resp.Sort, stats.SortTotalTime)
	}
	if resp.Tracked != 2 || len(resp.Statements) != 2 {
		t.Fatalf("tracked %d digests (%d rows), want 2: %+v", resp.Tracked, len(resp.Statements), resp.Statements)
	}

	byStmt := map[string]stats.StatementStats{}
	for _, row := range resp.Statements {
		if row.Digest == "" || row.Statement == "" {
			t.Fatalf("row missing digest or normalized text: %+v", row)
		}
		byStmt[row.Statement] = row
	}
	var sel, ret stats.StatementStats
	for text, row := range byStmt {
		if strings.Contains(text, "SELECT") || strings.Contains(text, "Select") {
			sel = row
		} else {
			ret = row
		}
	}
	wantSel := int64(workers * perWorker / 2)
	wantRet := int64(workers*perWorker/2) + 1 // + the limit-tripped call
	if sel.Calls != wantSel || sel.OK != wantSel {
		t.Errorf("select digest: calls=%d ok=%d, want %d/%d", sel.Calls, sel.OK, wantSel, wantSel)
	}
	if ret.Calls != wantRet || ret.OK != wantRet-1 || ret.LimitHits != 1 {
		t.Errorf("retrieve digest: calls=%d ok=%d limit=%d, want %d/%d/1", ret.Calls, ret.OK, ret.LimitHits, wantRet, wantRet-1)
	}
	for _, row := range []stats.StatementStats{sel, ret} {
		if row.TotalMS <= 0 || row.MeanMS <= 0 || row.EdgesScanned <= 0 {
			t.Errorf("digest %s: totals not accumulated: %+v", row.Digest, row)
		}
		if row.P50MS <= 0 || row.P95MS < row.P50MS || row.P99MS < row.P95MS {
			t.Errorf("digest %s: percentiles not monotone positive: p50=%v p95=%v p99=%v",
				row.Digest, row.P50MS, row.P95MS, row.P99MS)
		}
	}
	// Literal variants of selectQ hit distinct plan-cache entries but the
	// same digest; re-running one exact text produces a plan-cache hit
	// attributed to that digest.
	if _, err := c.Query(ctx, selectVariant(1001), nil); err != nil {
		t.Fatal(err)
	}
	resp, err = c.StatementStats(ctx, stats.SortCalls, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hits int64
	for _, row := range resp.Statements {
		hits += row.PlanCacheHits
	}
	if hits == 0 {
		t.Error("no plan-cache hits attributed to any digest")
	}

	// The wire response carries the digest, and it matches the stats row.
	res, err := c.Query(ctx, retrieveQ, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != ret.Digest {
		t.Errorf("query response digest %q != stats digest %q", res.Digest, ret.Digest)
	}

	// sort=calls orders by call count; limit truncates rows, not Tracked.
	resp, err = c.StatementStats(ctx, stats.SortCalls, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Statements) != 1 || resp.Tracked != 2 {
		t.Errorf("limit=1: got %d rows, tracked %d, want 1 rows / 2 tracked", len(resp.Statements), resp.Tracked)
	}

	// Unknown sort is a typed 400.
	if _, err := c.StatementStats(ctx, "bogus", 0); err == nil {
		t.Error("unknown sort accepted")
	}

	// Per-digest series ride the Prometheus exposition, bounded.
	prom, err := c.PrometheusMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom, `statement_calls_total{digest="`+ret.Digest+`"}`) {
		t.Error("per-digest statement_calls_total series missing from /metrics")
	}
	if !strings.Contains(prom, "stats_statements_tracked 2") {
		t.Error("stats_statements_tracked gauge missing from /metrics")
	}

	// The digest is stamped on retained request traces.
	traces, err := c.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range traces.Traces {
		if tr.Digest == ret.Digest {
			found = true
			break
		}
	}
	if !found {
		t.Error("no retained trace carries the statement digest")
	}

	// Reset clears the table.
	if err := c.ResetStats(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = c.StatementStats(ctx, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Tracked != 0 || len(resp.Statements) != 0 || resp.Evicted != 0 {
		t.Errorf("reset left residue: %+v", resp)
	}
}

func TestStatementStatsDisabled(t *testing.T) {
	_, c := newTestServer(t, newDemoDB(t), server.Config{StatementStatsSize: -1})
	ctx := context.Background()
	if _, err := c.Query(ctx, retrieveQ, nil); err != nil {
		t.Fatal(err)
	}
	var ae *client.APIError
	if _, err := c.StatementStats(ctx, "", 0); !errors.As(err, &ae) || ae.Code != "not_found" {
		t.Fatalf("disabled stats endpoint should 404 typed, got %v", err)
	}
	if err := c.ResetStats(ctx); !errors.As(err, &ae) || ae.Code != "not_found" {
		t.Fatalf("disabled stats reset should 404 typed, got %v", err)
	}
}

// TestClusterView stands up a WAL-backed primary and a replica whose
// Peers list names the primary plus a dead endpoint, then asserts the
// replica's /debug/cluster maps all three: itself, the reachable
// primary with role/epoch, and the unreachable peer with an error.
func TestClusterView(t *testing.T) {
	pdb := newDemoDB(t, core.WithWALOptions(t.TempDir(), wal.Options{NoSync: true}))
	t.Cleanup(func() { pdb.Close() })
	_, pc := newTestServer(t, pdb, server.Config{})

	fdb, err := core.Open(netmodel.MustSchema())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fdb.Close() })
	f := repl.NewFollower(fdb.Store(), fdb.WAL(), repl.FollowerConfig{
		Primary:      pc.Base(),
		PollWait:     200 * time.Millisecond,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
	})
	f.Start()
	t.Cleanup(f.Stop)
	deadPeer := "http://127.0.0.1:1"
	_, rc := newTestServer(t, fdb, server.Config{
		Follower:         f,
		Peers:            []string{pc.Base(), deadPeer},
		PeerProbeTimeout: 2 * time.Second,
	})
	waitCaughtUp(t, f)

	view, err := rc.ClusterView(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Nodes) != 3 {
		t.Fatalf("cluster view has %d nodes, want 3: %+v", len(view.Nodes), view.Nodes)
	}
	self := view.Nodes["self"]
	if !self.Self || !self.Reachable || self.Ready == nil || self.Ready.Role != "replica" {
		t.Errorf("self entry wrong: %+v", self)
	}
	prim := view.Nodes[pc.Base()]
	if !prim.Reachable || prim.Ready == nil {
		t.Fatalf("primary peer not probed: %+v", prim)
	}
	if prim.Ready.Role != "primary" || prim.Ready.Status != "ready" || prim.Ready.Epoch == 0 {
		t.Errorf("primary readyz wrong: %+v", prim.Ready)
	}
	if prim.Ready.AppliedIndex == 0 {
		t.Errorf("primary applied index missing from cluster view: %+v", prim.Ready)
	}
	if self.Ready.Epoch != prim.Ready.Epoch {
		t.Errorf("replica pinned to epoch %d, primary serves %d", self.Ready.Epoch, prim.Ready.Epoch)
	}
	dead := view.Nodes[deadPeer]
	if dead.Reachable || dead.Error == "" {
		t.Errorf("dead peer should be unreachable with an error: %+v", dead)
	}

	// The client-side cluster view (no server Peers needed) sees both
	// endpoints with their roles.
	cl, err := client.NewCluster(client.ClusterConfig{Primary: pc.Base(), Replicas: []string{rc.Base()}})
	if err != nil {
		t.Fatal(err)
	}
	cv := cl.Stats(context.Background())
	if len(cv.Nodes) != 2 {
		t.Fatalf("client cluster stats has %d nodes, want 2", len(cv.Nodes))
	}
	if n := cv.Nodes[pc.Base()]; !n.Reachable || n.Ready == nil || n.Ready.Role != "primary" {
		t.Errorf("client view primary wrong: %+v", n)
	}
	if n := cv.Nodes[rc.Base()]; !n.Reachable || n.Ready == nil || n.Ready.Role != "replica" {
		t.Errorf("client view replica wrong: %+v", n)
	}
}
